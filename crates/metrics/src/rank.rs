//! Rank-based discrimination metrics: AUC and the Kolmogorov–Smirnov
//! statistic.
//!
//! Both metrics measure how well a score separates defaulters (label 1)
//! from non-defaulters (label 0). They are invariant under strictly
//! increasing transformations of the score, which the property tests in
//! this module exercise.

use crate::{validate, MetricError};

/// Area under the ROC curve via the Mann–Whitney U statistic.
///
/// Ties are handled by assigning average ranks, which corresponds to
/// counting a tied (positive, negative) pair as half a concordant pair.
/// Runs in `O(n log n)`.
///
/// # Errors
///
/// Returns [`MetricError`] if the inputs are mismatched, empty, contain a
/// NaN score, or contain a single class.
///
/// # Examples
///
/// ```
/// let scores = [0.1, 0.4, 0.35, 0.8];
/// let labels = [0, 0, 1, 1];
/// let auc = lightmirm_metrics::auc(&scores, &labels).unwrap();
/// assert!((auc - 0.75).abs() < 1e-12);
/// ```
pub fn auc(scores: &[f64], labels: &[u8]) -> Result<f64, MetricError> {
    validate(scores, labels)?;
    let n = scores.len();
    let mut idx: Vec<u32> = (0..n as u32).collect();
    idx.sort_unstable_by(|&a, &b| {
        scores[a as usize]
            .partial_cmp(&scores[b as usize])
            .expect("NaN scores rejected by validate")
    });

    // Average ranks over tie groups, accumulating the rank sum of the
    // positive class.
    let mut rank_sum_pos = 0.0f64;
    let mut n_pos = 0usize;
    let mut i = 0usize;
    while i < n {
        let mut j = i;
        while j + 1 < n && scores[idx[j + 1] as usize] == scores[idx[i] as usize] {
            j += 1;
        }
        // 1-based ranks i+1 ..= j+1 share the average rank.
        let avg_rank = (i + 1 + j + 1) as f64 / 2.0;
        for &k in &idx[i..=j] {
            if labels[k as usize] != 0 {
                rank_sum_pos += avg_rank;
                n_pos += 1;
            }
        }
        i = j + 1;
    }
    let n_neg = n - n_pos;
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    Ok(u / (n_pos as f64 * n_neg as f64))
}

/// Two-sample Kolmogorov–Smirnov statistic between the score distributions
/// of the positive and negative classes.
///
/// `KS = max_t |F_pos(t) - F_neg(t)|`, the largest vertical gap between the
/// two empirical CDFs. A higher KS means stronger risk-ranking ability —
/// the headline metric of the paper's evaluation. Runs in `O(n log n)`.
///
/// # Errors
///
/// Same conditions as [`auc`].
pub fn ks(scores: &[f64], labels: &[u8]) -> Result<f64, MetricError> {
    validate(scores, labels)?;
    Ok(ks_scan(scores, labels).0)
}

/// The KS statistic together with the full gap curve `|F_pos - F_neg|`
/// evaluated after each distinct score, in ascending score order.
///
/// Returns `(ks, points)` where each point is `(score, gap)`. Useful for
/// plotting the KS separation chart that credit-risk teams use.
pub fn ks_curve(scores: &[f64], labels: &[u8]) -> Result<(f64, Vec<(f64, f64)>), MetricError> {
    validate(scores, labels)?;
    let (stat, curve) = ks_scan(scores, labels);
    Ok((stat, curve))
}

fn ks_scan(scores: &[f64], labels: &[u8]) -> (f64, Vec<(f64, f64)>) {
    let n = scores.len();
    let mut idx: Vec<u32> = (0..n as u32).collect();
    idx.sort_unstable_by(|&a, &b| {
        scores[a as usize]
            .partial_cmp(&scores[b as usize])
            .expect("NaN scores rejected by validate")
    });
    let n_pos = labels.iter().filter(|&&y| y != 0).count() as f64;
    let n_neg = n as f64 - n_pos;

    let mut cum_pos = 0.0f64;
    let mut cum_neg = 0.0f64;
    let mut best = 0.0f64;
    let mut curve = Vec::new();
    let mut i = 0usize;
    while i < n {
        let s = scores[idx[i] as usize];
        // Consume the whole tie group before evaluating the CDF gap: the
        // empirical CDFs only step at distinct score values.
        let mut j = i;
        loop {
            if labels[idx[j] as usize] != 0 {
                cum_pos += 1.0;
            } else {
                cum_neg += 1.0;
            }
            if j + 1 < n && scores[idx[j + 1] as usize] == s {
                j += 1;
            } else {
                break;
            }
        }
        let gap = (cum_pos / n_pos - cum_neg / n_neg).abs();
        if gap > best {
            best = gap;
        }
        curve.push((s, gap));
        i = j + 1;
    }
    (best, curve)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// O(n^2) reference AUC: fraction of (pos, neg) pairs ranked correctly,
    /// ties counting one half.
    fn auc_brute(scores: &[f64], labels: &[u8]) -> f64 {
        let mut concordant = 0.0;
        let mut pairs = 0.0;
        for (i, (&sp, &yp)) in scores.iter().zip(labels).enumerate() {
            if yp == 0 {
                continue;
            }
            for (j, (&sn, &yn)) in scores.iter().zip(labels).enumerate() {
                if i == j || yn != 0 {
                    continue;
                }
                pairs += 1.0;
                if sp > sn {
                    concordant += 1.0;
                } else if sp == sn {
                    concordant += 0.5;
                }
            }
        }
        concordant / pairs
    }

    /// O(n^2) reference KS: evaluate the CDF gap at every score value.
    fn ks_brute(scores: &[f64], labels: &[u8]) -> f64 {
        let n_pos = labels.iter().filter(|&&y| y != 0).count() as f64;
        let n_neg = labels.len() as f64 - n_pos;
        let mut best = 0.0f64;
        for &t in scores {
            let f_pos = scores
                .iter()
                .zip(labels)
                .filter(|(&s, &y)| y != 0 && s <= t)
                .count() as f64
                / n_pos;
            let f_neg = scores
                .iter()
                .zip(labels)
                .filter(|(&s, &y)| y == 0 && s <= t)
                .count() as f64
                / n_neg;
            best = best.max((f_pos - f_neg).abs());
        }
        best
    }

    #[test]
    fn auc_perfect_separation() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [0, 0, 1, 1];
        assert_eq!(auc(&scores, &labels).unwrap(), 1.0);
    }

    #[test]
    fn auc_perfectly_wrong() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [0, 0, 1, 1];
        assert_eq!(auc(&scores, &labels).unwrap(), 0.0);
    }

    #[test]
    fn auc_all_tied_is_half() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let labels = [0, 1, 0, 1];
        assert!((auc(&scores, &labels).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_known_value() {
        // sklearn.metrics.roc_auc_score([0,0,1,1],[0.1,0.4,0.35,0.8]) == 0.75
        let scores = [0.1, 0.4, 0.35, 0.8];
        let labels = [0, 0, 1, 1];
        assert!((auc(&scores, &labels).unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn auc_with_tie_across_classes() {
        // One tied (pos, neg) pair out of 4 pairs: AUC = (3 + 0.5)/4 ... let's
        // verify against brute force instead of hand arithmetic.
        let scores = [0.3, 0.5, 0.5, 0.9];
        let labels = [0, 0, 1, 1];
        let fast = auc(&scores, &labels).unwrap();
        assert!((fast - auc_brute(&scores, &labels)).abs() < 1e-12);
    }

    #[test]
    fn ks_perfect_separation_is_one() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [0, 0, 1, 1];
        assert!((ks(&scores, &labels).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ks_no_separation_is_zero_when_identical() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let labels = [0, 1, 0, 1];
        assert!(ks(&scores, &labels).unwrap().abs() < 1e-12);
    }

    #[test]
    fn ks_hand_computed() {
        // neg scores: {0.2, 0.4}, pos scores: {0.6, 0.8}; at t=0.4 the gap is
        // |0 - 1| = 1... they separate perfectly. Use an interleaved case:
        // neg {0.2, 0.6}, pos {0.4, 0.8}. CDF gaps after 0.2: |0-0.5|=0.5;
        // after 0.4: |0.5-0.5|=0; after 0.6: |0.5-1|=0.5; after 0.8: 0.
        let scores = [0.2, 0.6, 0.4, 0.8];
        let labels = [0, 0, 1, 1];
        assert!((ks(&scores, &labels).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ks_matches_brute_force_on_ties() {
        let scores = [0.1, 0.3, 0.3, 0.3, 0.7, 0.7, 0.9];
        let labels = [0, 0, 1, 0, 1, 0, 1];
        let fast = ks(&scores, &labels).unwrap();
        assert!((fast - ks_brute(&scores, &labels)).abs() < 1e-12);
    }

    #[test]
    fn ks_curve_reports_max() {
        let scores = [0.2, 0.6, 0.4, 0.8];
        let labels = [0, 0, 1, 1];
        let (stat, curve) = ks_curve(&scores, &labels).unwrap();
        let max_in_curve = curve.iter().map(|&(_, g)| g).fold(0.0f64, f64::max);
        assert!((stat - max_in_curve).abs() < 1e-12);
        // Distinct scores => one point per score.
        assert_eq!(curve.len(), 4);
    }

    #[test]
    fn auc_errors_propagate() {
        assert!(auc(&[0.1], &[1]).is_err());
        assert!(ks(&[], &[]).is_err());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn scored_labels() -> impl Strategy<Value = (Vec<f64>, Vec<u8>)> {
            // Generate 2..60 samples with at least one of each class, using a
            // coarse score grid so ties actually occur.
            proptest::collection::vec((0u8..=20, 0u8..=1), 2..60)
                .prop_filter("need both classes", |v| {
                    v.iter().any(|&(_, y)| y == 1) && v.iter().any(|&(_, y)| y == 0)
                })
                .prop_map(|v| {
                    let scores = v.iter().map(|&(s, _)| s as f64 / 20.0).collect();
                    let labels = v.iter().map(|&(_, y)| y).collect();
                    (scores, labels)
                })
        }

        proptest! {
            #[test]
            fn auc_in_unit_interval((scores, labels) in scored_labels()) {
                let a = auc(&scores, &labels).unwrap();
                prop_assert!((0.0..=1.0).contains(&a));
            }

            #[test]
            fn ks_in_unit_interval((scores, labels) in scored_labels()) {
                let k = ks(&scores, &labels).unwrap();
                prop_assert!((0.0..=1.0).contains(&k));
            }

            #[test]
            fn auc_matches_brute_force((scores, labels) in scored_labels()) {
                let fast = auc(&scores, &labels).unwrap();
                let slow = auc_brute(&scores, &labels);
                prop_assert!((fast - slow).abs() < 1e-10);
            }

            #[test]
            fn ks_matches_brute_force((scores, labels) in scored_labels()) {
                let fast = ks(&scores, &labels).unwrap();
                let slow = ks_brute(&scores, &labels);
                prop_assert!((fast - slow).abs() < 1e-10);
            }

            #[test]
            fn auc_invariant_under_monotone_transform((scores, labels) in scored_labels()) {
                let transformed: Vec<f64> =
                    scores.iter().map(|&s| (3.0 * s + 1.0).exp()).collect();
                let a = auc(&scores, &labels).unwrap();
                let b = auc(&transformed, &labels).unwrap();
                prop_assert!((a - b).abs() < 1e-10);
            }

            #[test]
            fn ks_invariant_under_monotone_transform((scores, labels) in scored_labels()) {
                let transformed: Vec<f64> =
                    scores.iter().map(|&s| 2.0 * s.powi(3) + s).collect();
                let a = ks(&scores, &labels).unwrap();
                let b = ks(&transformed, &labels).unwrap();
                prop_assert!((a - b).abs() < 1e-10);
            }

            #[test]
            fn auc_flips_under_negation((scores, labels) in scored_labels()) {
                let negated: Vec<f64> = scores.iter().map(|&s| -s).collect();
                let a = auc(&scores, &labels).unwrap();
                let b = auc(&negated, &labels).unwrap();
                prop_assert!((a + b - 1.0).abs() < 1e-10);
            }

            #[test]
            fn ks_invariant_under_negation((scores, labels) in scored_labels()) {
                // Reversing the score order mirrors both CDFs, leaving the
                // largest gap unchanged.
                let negated: Vec<f64> = scores.iter().map(|&s| -s).collect();
                let a = ks(&scores, &labels).unwrap();
                let b = ks(&negated, &labels).unwrap();
                prop_assert!((a - b).abs() < 1e-10);
            }
        }
    }
}
