//! Thresholded confusion-matrix statistics.

use crate::MetricError;

/// Counts of the four confusion-matrix cells at a fixed threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize)]
pub struct Confusion {
    /// Defaulters flagged as defaulters.
    pub tp: u64,
    /// Non-defaulters flagged as defaulters (good loans rejected).
    pub fp: u64,
    /// Non-defaulters approved.
    pub tn: u64,
    /// Defaulters approved (bad debt).
    pub fn_: u64,
}

impl Confusion {
    /// Tally predictions against labels with the rule
    /// "positive when `score >= threshold`".
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::LengthMismatch`] on mismatched inputs and
    /// [`MetricError::Empty`] on empty inputs. Single-class label vectors
    /// are fine here (rates that would divide by zero come back as `None`
    /// from the accessors).
    pub fn at_threshold(
        scores: &[f64],
        labels: &[u8],
        threshold: f64,
    ) -> Result<Self, MetricError> {
        if scores.len() != labels.len() {
            return Err(MetricError::LengthMismatch {
                scores: scores.len(),
                labels: labels.len(),
            });
        }
        if scores.is_empty() {
            return Err(MetricError::Empty);
        }
        if let Some(index) = scores.iter().position(|s| s.is_nan()) {
            return Err(MetricError::NanScore { index });
        }
        let mut c = Confusion::default();
        for (&s, &y) in scores.iter().zip(labels) {
            match (s >= threshold, y != 0) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, false) => c.tn += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        Ok(c)
    }

    /// Total number of samples.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// True positive rate (recall); `None` if there are no positives.
    pub fn tpr(&self) -> Option<f64> {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// False positive rate; `None` if there are no negatives.
    pub fn fpr(&self) -> Option<f64> {
        ratio(self.fp, self.fp + self.tn)
    }

    /// Precision; `None` if nothing was predicted positive.
    pub fn precision(&self) -> Option<f64> {
        ratio(self.tp, self.tp + self.fp)
    }

    /// Accuracy over all samples.
    pub fn accuracy(&self) -> f64 {
        (self.tp + self.tn) as f64 / self.total() as f64
    }

    /// F1 score; `None` when precision or recall is undefined or both are 0.
    pub fn f1(&self) -> Option<f64> {
        let p = self.precision()?;
        let r = self.tpr()?;
        if p + r == 0.0 {
            None
        } else {
            Some(2.0 * p * r / (p + r))
        }
    }
}

fn ratio(num: u64, den: u64) -> Option<f64> {
    if den == 0 {
        None
    } else {
        Some(num as f64 / den as f64)
    }
}

/// A bundle of threshold metrics for reporting.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct ThresholdMetrics {
    pub threshold: f64,
    pub accuracy: f64,
    pub tpr: Option<f64>,
    pub fpr: Option<f64>,
    pub precision: Option<f64>,
    pub f1: Option<f64>,
}

impl ThresholdMetrics {
    /// Evaluate all threshold metrics at once.
    ///
    /// # Errors
    ///
    /// Same as [`Confusion::at_threshold`].
    pub fn compute(scores: &[f64], labels: &[u8], threshold: f64) -> Result<Self, MetricError> {
        let c = Confusion::at_threshold(scores, labels, threshold)?;
        Ok(ThresholdMetrics {
            threshold,
            accuracy: c.accuracy(),
            tpr: c.tpr(),
            fpr: c.fpr(),
            precision: c.precision(),
            f1: c.f1(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_exhaustive() {
        let scores = [0.9, 0.8, 0.3, 0.1, 0.6];
        let labels = [1, 0, 1, 0, 1];
        let c = Confusion::at_threshold(&scores, &labels, 0.5).unwrap();
        assert_eq!(
            c,
            Confusion {
                tp: 2,
                fp: 1,
                tn: 1,
                fn_: 1
            }
        );
        assert_eq!(c.total(), 5);
    }

    #[test]
    fn rates_match_hand_computation() {
        let c = Confusion {
            tp: 2,
            fp: 1,
            tn: 1,
            fn_: 1,
        };
        assert!((c.tpr().unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.fpr().unwrap() - 0.5).abs() < 1e-12);
        assert!((c.precision().unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.accuracy() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn degenerate_rates_are_none() {
        let c = Confusion {
            tp: 0,
            fp: 0,
            tn: 3,
            fn_: 0,
        };
        assert!(c.tpr().is_none());
        assert!(c.precision().is_none());
        assert!(c.fpr().is_some());
    }

    #[test]
    fn f1_matches_formula() {
        let c = Confusion {
            tp: 2,
            fp: 1,
            tn: 1,
            fn_: 1,
        };
        let p = 2.0 / 3.0;
        let r = 2.0 / 3.0;
        assert!((c.f1().unwrap() - 2.0 * p * r / (p + r)).abs() < 1e-12);
    }

    #[test]
    fn threshold_boundary_is_ge() {
        // A score exactly at the threshold counts as positive.
        let c = Confusion::at_threshold(&[0.5], &[1], 0.5).unwrap();
        assert_eq!(c.tp, 1);
    }

    #[test]
    fn threshold_metrics_bundle() {
        let m = ThresholdMetrics::compute(&[0.9, 0.1], &[1, 0], 0.5).unwrap();
        assert_eq!(m.accuracy, 1.0);
        assert_eq!(m.tpr, Some(1.0));
        assert_eq!(m.fpr, Some(0.0));
    }

    #[test]
    fn single_class_is_allowed_here() {
        let c = Confusion::at_threshold(&[0.9, 0.1], &[0, 0], 0.5).unwrap();
        assert_eq!(c.fp, 1);
        assert_eq!(c.tn, 1);
        assert!(c.tpr().is_none());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn cells_partition_the_samples(
                data in proptest::collection::vec((0.0f64..1.0, 0u8..=1), 1..100),
                threshold in 0.0f64..1.0,
            ) {
                let scores: Vec<f64> = data.iter().map(|&(s, _)| s).collect();
                let labels: Vec<u8> = data.iter().map(|&(_, y)| y).collect();
                let c = Confusion::at_threshold(&scores, &labels, threshold).unwrap();
                prop_assert_eq!(c.total() as usize, data.len());
            }

            #[test]
            fn accuracy_in_unit_interval(
                data in proptest::collection::vec((0.0f64..1.0, 0u8..=1), 1..100),
                threshold in 0.0f64..1.0,
            ) {
                let scores: Vec<f64> = data.iter().map(|&(s, _)| s).collect();
                let labels: Vec<u8> = data.iter().map(|&(_, y)| y).collect();
                let c = Confusion::at_threshold(&scores, &labels, threshold).unwrap();
                prop_assert!((0.0..=1.0).contains(&c.accuracy()));
            }
        }
    }
}
