//! Evaluation metrics for loan default prediction.
//!
//! This crate implements the metrics used throughout the LightMIRM paper
//! (ICDE 2023):
//!
//! - [`auc`] — area under the ROC curve, computed from the rank statistic
//!   with proper tie handling (exactly the Mann–Whitney U estimator).
//! - [`ks`] — the two-sample Kolmogorov–Smirnov statistic between the score
//!   distributions of the positive and negative classes, the standard
//!   risk-ranking measure in credit scoring.
//! - [`roc`] — full ROC curves and threshold sweeps, used for the online
//!   false-positive-rate vs. bad-debt-rate trade-off (paper Fig. 5).
//! - [`confusion`] — thresholded confusion-matrix statistics.
//! - [`report`] — per-environment fairness aggregation producing the
//!   paper's headline numbers `mKS`, `wKS`, `mAUC`, `wAUC`
//!   (mean and worst across environments).
//! - [`bootstrap`] — percentile bootstrap confidence intervals for AUC/KS.
//! - [`calibration`] — Brier score, reliability curves, and expected
//!   calibration error (the paper's fairness notion is calibration across
//!   groups).
//! - [`drift`] — the population stability index (PSI), the standard
//!   credit-risk monitor for the covariate shift the paper analyses.
//! - [`lift`] — Gini coefficient and decile lift/gain tables.
//! - [`isotonic`] — monotone score recalibration (pool-adjacent-violators).
//!
//! All functions take plain `&[f64]` scores and `&[u8]` binary labels so
//! they are agnostic to the model that produced the scores.

pub mod bootstrap;
pub mod calibration;
pub mod confusion;
pub mod drift;
pub mod isotonic;
pub mod lift;
pub mod rank;
pub mod report;
pub mod roc;

pub use bootstrap::{bootstrap_ci, BootstrapCi};
pub use calibration::{brier_score, expected_calibration_error, reliability_curve, ReliabilityBin};
pub use confusion::{Confusion, ThresholdMetrics};
pub use drift::{psi, DriftLevel, PsiBucket, PsiReport};
pub use isotonic::IsotonicCalibrator;
pub use lift::{gini, lift_table, LiftBucket};
pub use rank::{auc, ks, ks_curve};
pub use report::{EnvReport, EnvScores, FairnessSummary};
pub use roc::{roc_curve, threshold_sweep, RocPoint, TradeoffPoint};

/// Errors produced by metric computations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricError {
    /// Scores and labels have different lengths.
    LengthMismatch { scores: usize, labels: usize },
    /// The input is empty.
    Empty,
    /// All labels belong to one class, so a discrimination metric is
    /// undefined.
    SingleClass,
    /// A score was NaN, which has no place in an ordering-based metric.
    NanScore { index: usize },
    /// A score was infinite; drift bucketing needs finite samples.
    NonFinite { index: usize },
    /// A bucketed metric was asked for fewer than two buckets.
    TooFewBuckets { n_buckets: usize },
}

impl std::fmt::Display for MetricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetricError::LengthMismatch { scores, labels } => write!(
                f,
                "scores ({scores}) and labels ({labels}) have different lengths"
            ),
            MetricError::Empty => write!(f, "empty input"),
            MetricError::SingleClass => {
                write!(f, "labels contain a single class; AUC/KS are undefined")
            }
            MetricError::NanScore { index } => write!(f, "score at index {index} is NaN"),
            MetricError::NonFinite { index } => {
                write!(f, "score at index {index} is not finite")
            }
            MetricError::TooFewBuckets { n_buckets } => {
                write!(f, "need at least two buckets, got {n_buckets}")
            }
        }
    }
}

impl std::error::Error for MetricError {}

pub(crate) fn validate(scores: &[f64], labels: &[u8]) -> Result<(), MetricError> {
    if scores.len() != labels.len() {
        return Err(MetricError::LengthMismatch {
            scores: scores.len(),
            labels: labels.len(),
        });
    }
    if scores.is_empty() {
        return Err(MetricError::Empty);
    }
    if let Some(index) = scores.iter().position(|s| s.is_nan()) {
        return Err(MetricError::NanScore { index });
    }
    let pos = labels.iter().filter(|&&y| y != 0).count();
    if pos == 0 || pos == labels.len() {
        return Err(MetricError::SingleClass);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_rejects_mismatch() {
        let err = validate(&[0.1, 0.2], &[1]).unwrap_err();
        assert_eq!(
            err,
            MetricError::LengthMismatch {
                scores: 2,
                labels: 1
            }
        );
    }

    #[test]
    fn validate_rejects_empty() {
        assert_eq!(validate(&[], &[]).unwrap_err(), MetricError::Empty);
    }

    #[test]
    fn validate_rejects_single_class() {
        assert_eq!(
            validate(&[0.1, 0.2], &[1, 1]).unwrap_err(),
            MetricError::SingleClass
        );
        assert_eq!(
            validate(&[0.1, 0.2], &[0, 0]).unwrap_err(),
            MetricError::SingleClass
        );
    }

    #[test]
    fn validate_rejects_nan() {
        assert_eq!(
            validate(&[0.1, f64::NAN], &[0, 1]).unwrap_err(),
            MetricError::NanScore { index: 1 }
        );
    }

    #[test]
    fn validate_accepts_good_input() {
        assert!(validate(&[0.1, 0.9], &[0, 1]).is_ok());
    }

    #[test]
    fn error_display_is_informative() {
        let msg = MetricError::SingleClass.to_string();
        assert!(msg.contains("single class"));
        let msg = MetricError::NonFinite { index: 3 }.to_string();
        assert!(
            msg.contains("index 3") && msg.contains("not finite"),
            "{msg}"
        );
        let msg = MetricError::TooFewBuckets { n_buckets: 1 }.to_string();
        assert!(
            msg.contains("two buckets") && msg.contains("got 1"),
            "{msg}"
        );
    }
}
