//! Probability-calibration metrics.
//!
//! The paper frames its fairness target as *calibration* across groups
//! (§II-B, citing Pleiss et al.): similar false-positive behaviour across
//! subpopulations requires comparably calibrated scores. This module
//! provides the standard instruments: the Brier score, a binned
//! reliability curve, and the expected calibration error (ECE).

use crate::{validate, MetricError};

/// One bin of a reliability curve.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct ReliabilityBin {
    /// Mean predicted probability of samples in the bin.
    pub mean_predicted: f64,
    /// Empirical positive rate of samples in the bin.
    pub observed_rate: f64,
    /// Number of samples in the bin.
    pub count: usize,
}

/// Brier score: mean squared error between predicted probabilities and
/// binary outcomes. Lower is better; a perfectly calibrated, perfectly
/// sharp model scores 0.
///
/// # Errors
///
/// Returns [`MetricError`] on mismatched/empty/NaN input (single-class
/// labels are fine — Brier is defined without both classes).
pub fn brier_score(scores: &[f64], labels: &[u8]) -> Result<f64, MetricError> {
    if scores.len() != labels.len() {
        return Err(MetricError::LengthMismatch {
            scores: scores.len(),
            labels: labels.len(),
        });
    }
    if scores.is_empty() {
        return Err(MetricError::Empty);
    }
    if let Some(index) = scores.iter().position(|s| s.is_nan()) {
        return Err(MetricError::NanScore { index });
    }
    let total: f64 = scores
        .iter()
        .zip(labels)
        .map(|(&p, &y)| (p - y as f64).powi(2))
        .sum();
    Ok(total / scores.len() as f64)
}

/// Equal-width reliability curve over `n_bins` bins of `[0, 1]`.
/// Empty bins are omitted.
///
/// # Errors
///
/// Same conditions as [`crate::auc`].
pub fn reliability_curve(
    scores: &[f64],
    labels: &[u8],
    n_bins: usize,
) -> Result<Vec<ReliabilityBin>, MetricError> {
    validate(scores, labels)?;
    assert!(n_bins >= 1, "need at least one bin");
    let mut sum_p = vec![0.0f64; n_bins];
    let mut sum_y = vec![0.0f64; n_bins];
    let mut count = vec![0usize; n_bins];
    for (&p, &y) in scores.iter().zip(labels) {
        let b = ((p * n_bins as f64) as usize).min(n_bins - 1);
        sum_p[b] += p;
        sum_y[b] += y as f64;
        count[b] += 1;
    }
    Ok((0..n_bins)
        .filter(|&b| count[b] > 0)
        .map(|b| ReliabilityBin {
            mean_predicted: sum_p[b] / count[b] as f64,
            observed_rate: sum_y[b] / count[b] as f64,
            count: count[b],
        })
        .collect())
}

/// Expected calibration error: the count-weighted mean absolute gap
/// between predicted and observed rates over the reliability bins.
///
/// # Errors
///
/// Same conditions as [`crate::auc`].
pub fn expected_calibration_error(
    scores: &[f64],
    labels: &[u8],
    n_bins: usize,
) -> Result<f64, MetricError> {
    let bins = reliability_curve(scores, labels, n_bins)?;
    let total: usize = bins.iter().map(|b| b.count).sum();
    Ok(bins
        .iter()
        .map(|b| (b.mean_predicted - b.observed_rate).abs() * b.count as f64)
        .sum::<f64>()
        / total as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brier_perfect_predictions_score_zero() {
        let scores = [0.0, 1.0, 1.0, 0.0];
        let labels = [0, 1, 1, 0];
        assert_eq!(brier_score(&scores, &labels).unwrap(), 0.0);
    }

    #[test]
    fn brier_uninformed_half_scores_quarter() {
        let scores = [0.5; 4];
        let labels = [0, 1, 0, 1];
        assert!((brier_score(&scores, &labels).unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn brier_worst_case_is_one() {
        let scores = [1.0, 0.0];
        let labels = [0, 1];
        assert_eq!(brier_score(&scores, &labels).unwrap(), 1.0);
    }

    #[test]
    fn brier_allows_single_class() {
        assert!(brier_score(&[0.2, 0.3], &[0, 0]).is_ok());
    }

    #[test]
    fn reliability_bins_partition_samples() {
        let scores = [0.05, 0.15, 0.52, 0.55, 0.95, 0.99];
        let labels = [0, 0, 1, 0, 1, 1];
        let bins = reliability_curve(&scores, &labels, 10).unwrap();
        let total: usize = bins.iter().map(|b| b.count).sum();
        assert_eq!(total, 6);
        // Scores 0.52/0.55 share a bin with observed rate 0.5.
        let mid = bins
            .iter()
            .find(|b| b.count == 2 && b.mean_predicted > 0.5 && b.mean_predicted < 0.6)
            .expect("mid bin present");
        assert!((mid.observed_rate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reliability_clamps_probability_one() {
        let scores = [1.0, 1.0];
        let labels = [1, 0];
        let bins = reliability_curve(&scores, &labels, 5).unwrap();
        assert_eq!(bins.len(), 1);
        assert_eq!(bins[0].count, 2);
    }

    #[test]
    fn ece_zero_for_perfectly_calibrated_bins() {
        // Bin [0.2, 0.3): two samples at 0.25, one positive of four -> use
        // exact match: predicted 0.25, observed 0.25 over 4 samples.
        let scores = [0.25, 0.25, 0.25, 0.25];
        let labels = [1, 0, 0, 0];
        let ece = expected_calibration_error(&scores, &labels, 10).unwrap();
        assert!(ece.abs() < 1e-12);
    }

    #[test]
    fn ece_detects_systematic_overconfidence() {
        // Predicts 0.9 everywhere but only half are positive.
        let scores = [0.9; 8];
        let labels = [1, 0, 1, 0, 1, 0, 1, 0];
        let ece = expected_calibration_error(&scores, &labels, 10).unwrap();
        assert!((ece - 0.4).abs() < 1e-12);
    }

    #[test]
    fn errors_propagate() {
        assert!(brier_score(&[0.5], &[]).is_err());
        assert!(reliability_curve(&[], &[], 5).is_err());
        assert!(brier_score(&[f64::NAN], &[1]).is_err());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn brier_in_unit_interval(
                data in proptest::collection::vec((0.0f64..=1.0, 0u8..=1), 1..100),
            ) {
                let scores: Vec<f64> = data.iter().map(|&(p, _)| p).collect();
                let labels: Vec<u8> = data.iter().map(|&(_, y)| y).collect();
                let b = brier_score(&scores, &labels).unwrap();
                prop_assert!((0.0..=1.0).contains(&b));
            }

            #[test]
            fn ece_bounded_by_one(
                data in proptest::collection::vec((0.0f64..=1.0, 0u8..=1), 2..100)
                    .prop_filter("both classes", |v| {
                        v.iter().any(|&(_, y)| y == 1) && v.iter().any(|&(_, y)| y == 0)
                    }),
            ) {
                let scores: Vec<f64> = data.iter().map(|&(p, _)| p).collect();
                let labels: Vec<u8> = data.iter().map(|&(_, y)| y).collect();
                let e = expected_calibration_error(&scores, &labels, 10).unwrap();
                prop_assert!((0.0..=1.0).contains(&e));
            }

            #[test]
            fn reliability_counts_sum_to_n(
                data in proptest::collection::vec((0.0f64..=1.0, 0u8..=1), 2..100)
                    .prop_filter("both classes", |v| {
                        v.iter().any(|&(_, y)| y == 1) && v.iter().any(|&(_, y)| y == 0)
                    }),
                n_bins in 1usize..20,
            ) {
                let scores: Vec<f64> = data.iter().map(|&(p, _)| p).collect();
                let labels: Vec<u8> = data.iter().map(|&(_, y)| y).collect();
                let bins = reliability_curve(&scores, &labels, n_bins).unwrap();
                let total: usize = bins.iter().map(|b| b.count).sum();
                prop_assert_eq!(total, data.len());
            }
        }
    }
}
