//! Percentile bootstrap confidence intervals for rank metrics.
//!
//! Offline evaluations in credit scoring routinely attach uncertainty to
//! AUC/KS point estimates; this module provides a seeded percentile
//! bootstrap so experiment outputs carry error bars.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::MetricError;

/// A percentile bootstrap confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct BootstrapCi {
    /// Point estimate on the full sample.
    pub estimate: f64,
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
    /// Number of bootstrap resamples that were scorable.
    pub resamples: usize,
}

/// Bootstrap a confidence interval for any score/label metric.
///
/// Resamples with replacement `n_boot` times; resamples that degenerate to
/// a single class are discarded (and counted out of `resamples`). `level`
/// is the two-sided confidence level, e.g. `0.95`.
///
/// # Errors
///
/// Propagates the metric's error on the full sample, and returns
/// [`MetricError::Empty`] if every resample is degenerate.
pub fn bootstrap_ci<F>(
    metric: F,
    scores: &[f64],
    labels: &[u8],
    n_boot: usize,
    level: f64,
    seed: u64,
) -> Result<BootstrapCi, MetricError>
where
    F: Fn(&[f64], &[u8]) -> Result<f64, MetricError>,
{
    let estimate = metric(scores, labels)?;
    let n = scores.len();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut stats = Vec::with_capacity(n_boot);
    let mut s_buf = vec![0.0; n];
    let mut y_buf = vec![0u8; n];
    for _ in 0..n_boot {
        for i in 0..n {
            let j = rng.gen_range(0..n);
            s_buf[i] = scores[j];
            y_buf[i] = labels[j];
        }
        if let Ok(v) = metric(&s_buf, &y_buf) {
            stats.push(v);
        }
    }
    if stats.is_empty() {
        return Err(MetricError::Empty);
    }
    stats.sort_unstable_by(|a, b| a.partial_cmp(b).expect("metric values are finite"));
    let alpha = (1.0 - level) / 2.0;
    let lo = percentile(&stats, alpha);
    let hi = percentile(&stats, 1.0 - alpha);
    Ok(BootstrapCi {
        estimate,
        lo,
        hi,
        resamples: stats.len(),
    })
}

/// Nearest-rank percentile of a sorted slice, `q` in `[0, 1]`.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let rank = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{auc, ks};

    fn demo_data(n: usize) -> (Vec<f64>, Vec<u8>) {
        // Deterministic interleaved data with moderate separation.
        let mut scores = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let y = (i % 3 == 0) as u8;
            let base = if y == 1 { 0.6 } else { 0.4 };
            scores.push(base + 0.3 * ((i * 7 % 11) as f64 / 11.0 - 0.5));
            labels.push(y);
        }
        (scores, labels)
    }

    #[test]
    fn ci_brackets_estimate() {
        let (s, y) = demo_data(200);
        let ci = bootstrap_ci(auc, &s, &y, 200, 0.95, 42).unwrap();
        assert!(ci.lo <= ci.estimate + 1e-9, "{ci:?}");
        assert!(ci.hi >= ci.estimate - 1e-9, "{ci:?}");
        assert!(ci.lo <= ci.hi);
    }

    #[test]
    fn ci_is_deterministic_per_seed() {
        let (s, y) = demo_data(100);
        let a = bootstrap_ci(ks, &s, &y, 100, 0.9, 7).unwrap();
        let b = bootstrap_ci(ks, &s, &y, 100, 0.9, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn ci_varies_with_seed() {
        let (s, y) = demo_data(100);
        let a = bootstrap_ci(ks, &s, &y, 100, 0.9, 7).unwrap();
        let b = bootstrap_ci(ks, &s, &y, 100, 0.9, 8).unwrap();
        assert_ne!((a.lo, a.hi), (b.lo, b.hi));
    }

    #[test]
    fn tighter_level_gives_narrower_interval() {
        let (s, y) = demo_data(300);
        let wide = bootstrap_ci(auc, &s, &y, 400, 0.99, 3).unwrap();
        let narrow = bootstrap_ci(auc, &s, &y, 400, 0.5, 3).unwrap();
        assert!(narrow.hi - narrow.lo <= wide.hi - wide.lo + 1e-12);
    }

    #[test]
    fn degenerate_full_sample_errors() {
        assert!(bootstrap_ci(auc, &[0.5, 0.7], &[1, 1], 10, 0.95, 0).is_err());
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 5.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
    }
}
