//! Distribution-drift metrics: PSI and score-distribution comparison.
//!
//! The paper's data analysis (§IV-B) argues covariate and concept shift
//! between the 2016–19 training years and 2020. The population stability
//! index (PSI) is the standard credit-risk instrument for quantifying
//! such drift, both on feature columns and on model scores; monitoring it
//! is how a deployed system notices that a province (e.g. Guangdong 2020)
//! has gone out of distribution.

use crate::MetricError;

/// One bucket of a PSI computation.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct PsiBucket {
    /// Upper edge of the bucket (last bucket: `+∞`).
    pub upper_edge: f64,
    /// Share of the expected (baseline) population.
    pub expected: f64,
    /// Share of the actual (current) population.
    pub actual: f64,
    /// This bucket's PSI contribution.
    pub contribution: f64,
}

/// Result of a PSI computation.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct PsiReport {
    /// Total PSI. Industry folklore: < 0.1 stable, 0.1–0.25 moderate
    /// shift, > 0.25 major shift.
    pub psi: f64,
    /// Per-bucket breakdown.
    pub buckets: Vec<PsiBucket>,
}

/// Population stability index between a baseline sample (`expected`) and a
/// current sample (`actual`), using `n_buckets` baseline-quantile buckets.
///
/// `PSI = Σ (a_i − e_i) · ln(a_i / e_i)` over bucket shares, with empty
/// shares floored at `1e-6` (the standard regularization).
///
/// # Errors
///
/// Returns [`MetricError::TooFewBuckets`] when `n_buckets < 2`,
/// [`MetricError::Empty`] if either sample is empty,
/// [`MetricError::NanScore`] on NaNs, and [`MetricError::NonFinite`] on
/// ±∞ (quarantined rows must never poison a drift report).
pub fn psi(expected: &[f64], actual: &[f64], n_buckets: usize) -> Result<PsiReport, MetricError> {
    if n_buckets < 2 {
        return Err(MetricError::TooFewBuckets { n_buckets });
    }
    if expected.is_empty() || actual.is_empty() {
        return Err(MetricError::Empty);
    }
    if let Some((index, v)) = expected
        .iter()
        .chain(actual)
        .enumerate()
        .find(|(_, v)| !v.is_finite())
    {
        return Err(if v.is_nan() {
            MetricError::NanScore { index }
        } else {
            MetricError::NonFinite { index }
        });
    }

    // Bucket edges at baseline quantiles.
    let mut sorted = expected.to_vec();
    sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let mut edges: Vec<f64> = (1..n_buckets)
        .map(|b| {
            let q = b as f64 / n_buckets as f64;
            let idx = ((q * sorted.len() as f64).ceil() as usize - 1).min(sorted.len() - 1);
            sorted[idx]
        })
        .collect();
    edges.dedup_by(|a, b| a == b);

    let bucket_of = |v: f64| -> usize { edges.iter().position(|&e| v <= e).unwrap_or(edges.len()) };
    let n_real_buckets = edges.len() + 1;
    let mut exp_counts = vec![0usize; n_real_buckets];
    let mut act_counts = vec![0usize; n_real_buckets];
    for &v in expected {
        exp_counts[bucket_of(v)] += 1;
    }
    for &v in actual {
        act_counts[bucket_of(v)] += 1;
    }

    const FLOOR: f64 = 1e-6;
    let mut total = 0.0;
    let mut buckets = Vec::with_capacity(n_real_buckets);
    for b in 0..n_real_buckets {
        let e = (exp_counts[b] as f64 / expected.len() as f64).max(FLOOR);
        let a = (act_counts[b] as f64 / actual.len() as f64).max(FLOOR);
        let contribution = (a - e) * (a / e).ln();
        total += contribution;
        buckets.push(PsiBucket {
            upper_edge: edges.get(b).copied().unwrap_or(f64::INFINITY),
            expected: e,
            actual: a,
            contribution,
        });
    }
    Ok(PsiReport {
        psi: total,
        buckets,
    })
}

/// Drift verdict bands used in credit-risk model monitoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum DriftLevel {
    /// PSI < 0.1 — population stable.
    Stable,
    /// 0.1 ≤ PSI < 0.25 — moderate shift, investigate.
    Moderate,
    /// PSI ≥ 0.25 — major shift, retrain/review.
    Major,
}

impl PsiReport {
    /// Classify the drift per the standard bands.
    pub fn level(&self) -> DriftLevel {
        if self.psi < 0.1 {
            DriftLevel::Stable
        } else if self.psi < 0.25 {
            DriftLevel::Moderate
        } else {
            DriftLevel::Major
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniformish(n: usize, offset: f64) -> Vec<f64> {
        (0..n).map(|i| (i as f64 / n as f64) + offset).collect()
    }

    #[test]
    fn identical_populations_have_zero_psi() {
        let base = uniformish(1000, 0.0);
        let report = psi(&base, &base, 10).unwrap();
        assert!(report.psi.abs() < 1e-9, "psi {}", report.psi);
        assert_eq!(report.level(), DriftLevel::Stable);
    }

    #[test]
    fn shifted_population_registers() {
        let base = uniformish(1000, 0.0);
        let shifted = uniformish(1000, 0.35);
        let report = psi(&base, &shifted, 10).unwrap();
        assert!(report.psi > 0.25, "psi {}", report.psi);
        assert_eq!(report.level(), DriftLevel::Major);
    }

    #[test]
    fn small_shift_is_moderate() {
        let base = uniformish(4000, 0.0);
        let shifted = uniformish(4000, 0.085);
        let report = psi(&base, &shifted, 10).unwrap();
        assert_eq!(report.level(), DriftLevel::Moderate, "psi {}", report.psi);
    }

    #[test]
    fn buckets_cover_both_populations() {
        let base = uniformish(500, 0.0);
        let actual = uniformish(300, 0.1);
        let report = psi(&base, &actual, 8).unwrap();
        let exp_total: f64 = report.buckets.iter().map(|b| b.expected).sum();
        let act_total: f64 = report.buckets.iter().map(|b| b.actual).sum();
        assert!((exp_total - 1.0).abs() < 1e-4);
        assert!((act_total - 1.0).abs() < 1e-4);
        assert_eq!(report.buckets.last().unwrap().upper_edge, f64::INFINITY);
    }

    #[test]
    fn constant_baseline_collapses_to_one_bucket() {
        let base = vec![5.0; 100];
        let actual = vec![5.0; 50];
        let report = psi(&base, &actual, 10).unwrap();
        assert!(report.psi.abs() < 1e-9);
        // One populated bucket plus the open-ended overflow bucket.
        assert_eq!(report.buckets.len(), 2);
        assert_eq!(report.buckets[1].actual, 1e-6);
    }

    #[test]
    fn errors_on_degenerate_inputs() {
        assert_eq!(psi(&[], &[1.0], 5).unwrap_err(), MetricError::Empty);
        assert_eq!(psi(&[1.0], &[], 5).unwrap_err(), MetricError::Empty);
        assert!(matches!(
            psi(&[1.0, f64::NAN], &[1.0], 5).unwrap_err(),
            MetricError::NanScore { .. }
        ));
    }

    #[test]
    fn rejects_single_bucket() {
        assert_eq!(
            psi(&[1.0, 2.0], &[1.0], 1).unwrap_err(),
            MetricError::TooFewBuckets { n_buckets: 1 }
        );
        assert_eq!(
            psi(&[1.0, 2.0], &[1.0], 0).unwrap_err(),
            MetricError::TooFewBuckets { n_buckets: 0 }
        );
    }

    #[test]
    fn rejects_non_finite_inputs() {
        assert_eq!(
            psi(&[1.0, f64::INFINITY], &[1.0], 5).unwrap_err(),
            MetricError::NonFinite { index: 1 }
        );
        assert_eq!(
            psi(&[1.0, 2.0], &[f64::NEG_INFINITY], 5).unwrap_err(),
            MetricError::NonFinite { index: 2 }
        );
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn psi_is_nonnegative(
                base in proptest::collection::vec(-10.0f64..10.0, 10..200),
                actual in proptest::collection::vec(-10.0f64..10.0, 10..200),
            ) {
                // Each term (a-e)ln(a/e) >= 0.
                let report = psi(&base, &actual, 10).unwrap();
                prop_assert!(report.psi >= -1e-12);
            }

            #[test]
            fn psi_symmetric_under_population_swap_direction(
                base in proptest::collection::vec(0.0f64..1.0, 50..200),
            ) {
                // PSI of a population against itself is ~0 regardless of
                // bucket count.
                for buckets in [2usize, 5, 16] {
                    let report = psi(&base, &base, buckets).unwrap();
                    prop_assert!(report.psi.abs() < 1e-9);
                }
            }

            #[test]
            fn bucket_shares_sum_to_one(
                base in proptest::collection::vec(-5.0f64..5.0, 20..300),
                actual in proptest::collection::vec(-5.0f64..5.0, 20..300),
                n_buckets in 2usize..20,
            ) {
                // Every sample lands in exactly one bucket, so each side's
                // shares sum to 1 modulo the 1e-6 flooring of empty buckets.
                let report = psi(&base, &actual, n_buckets).unwrap();
                let slack = 1e-6 * report.buckets.len() as f64 + 1e-9;
                let exp: f64 = report.buckets.iter().map(|b| b.expected).sum();
                let act: f64 = report.buckets.iter().map(|b| b.actual).sum();
                prop_assert!((exp - 1.0).abs() <= slack, "expected shares sum {exp}");
                prop_assert!((act - 1.0).abs() <= slack, "actual shares sum {act}");
            }

            #[test]
            fn psi_invariant_under_sample_permutation(
                base in proptest::collection::vec(-3.0f64..3.0, 10..150),
                actual in proptest::collection::vec(-3.0f64..3.0, 10..150),
                rot in 0usize..150,
            ) {
                // PSI only sees bucket counts, so sample order is
                // irrelevant: reversal and rotation change nothing.
                let report = psi(&base, &actual, 8).unwrap();
                let mut rev_b = base.clone();
                rev_b.reverse();
                let mut rev_a = actual.clone();
                rev_a.reverse();
                let reversed = psi(&rev_b, &rev_a, 8).unwrap();
                prop_assert_eq!(report.psi.to_bits(), reversed.psi.to_bits());
                let mut rot_b = base.clone();
                rot_b.rotate_left(rot % base.len());
                let mut rot_a = actual.clone();
                rot_a.rotate_left(rot % actual.len());
                let rotated = psi(&rot_b, &rot_a, 8).unwrap();
                prop_assert_eq!(report.psi.to_bits(), rotated.psi.to_bits());
            }

            #[test]
            fn identical_samples_have_near_zero_psi(
                base in proptest::collection::vec(-100.0f64..100.0, 5..200),
                n_buckets in 2usize..16,
            ) {
                let report = psi(&base, &base, n_buckets).unwrap();
                prop_assert!(report.psi.abs() < 1e-9, "psi {}", report.psi);
                prop_assert_eq!(report.level(), DriftLevel::Stable);
            }

            #[test]
            fn constant_baseline_returns_finite_report(
                value in -50.0f64..50.0,
                n_base in 1usize..100,
                actual in proptest::collection::vec(-50.0f64..50.0, 1..100),
                n_buckets in 2usize..12,
            ) {
                // All quantile edges dedup to one; the report must still be
                // finite with every bucket share populated or floored.
                let base = vec![value; n_base];
                let report = psi(&base, &actual, n_buckets).unwrap();
                prop_assert!(report.psi.is_finite(), "psi {}", report.psi);
                for b in &report.buckets {
                    prop_assert!(b.expected.is_finite() && b.actual.is_finite());
                    prop_assert!(b.contribution.is_finite());
                }
            }
        }
    }
}
