//! Gini coefficient and decile lift/gain analysis — the reporting
//! instruments credit-risk teams put beside AUC/KS in model documents.

use crate::{auc, validate, MetricError};

/// Gini coefficient: `2·AUC − 1`, the accuracy-ratio form used in credit
/// scoring (1 = perfect ranking, 0 = random).
///
/// # Errors
///
/// Same conditions as [`auc`].
pub fn gini(scores: &[f64], labels: &[u8]) -> Result<f64, MetricError> {
    Ok(2.0 * auc(scores, labels)? - 1.0)
}

/// One row of a decile (or other quantile) lift table.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct LiftBucket {
    /// 1-based bucket rank (1 = highest scores).
    pub rank: usize,
    /// Number of samples in the bucket.
    pub count: usize,
    /// Positives (defaults) captured in the bucket.
    pub positives: usize,
    /// Bucket positive rate.
    pub rate: f64,
    /// Lift over the base rate (`rate / base_rate`).
    pub lift: f64,
    /// Cumulative share of all positives captured through this bucket.
    pub cumulative_capture: f64,
}

/// Rank samples by descending score and split them into `n_buckets`
/// near-equal buckets; report per-bucket default rates, lift over the base
/// rate, and the cumulative gain curve.
///
/// A useful model shows monotonically decreasing lift with bucket rank and
/// a top-decile lift well above 1.
///
/// # Errors
///
/// Same conditions as [`auc`]; additionally requires
/// `n_buckets <= n_samples`.
pub fn lift_table(
    scores: &[f64],
    labels: &[u8],
    n_buckets: usize,
) -> Result<Vec<LiftBucket>, MetricError> {
    validate(scores, labels)?;
    assert!(
        n_buckets >= 1 && n_buckets <= scores.len(),
        "1 <= n_buckets <= n_samples required"
    );
    let n = scores.len();
    let mut idx: Vec<u32> = (0..n as u32).collect();
    idx.sort_unstable_by(|&a, &b| {
        scores[b as usize]
            .partial_cmp(&scores[a as usize])
            .expect("NaN rejected by validate")
    });
    let total_pos = labels.iter().filter(|&&y| y != 0).count() as f64;
    let base_rate = total_pos / n as f64;

    let mut out = Vec::with_capacity(n_buckets);
    let mut cum_pos = 0usize;
    let mut start = 0usize;
    for b in 0..n_buckets {
        // Near-equal split: bucket b covers [b*n/k, (b+1)*n/k).
        let end = (b + 1) * n / n_buckets;
        let bucket = &idx[start..end];
        let positives = bucket.iter().filter(|&&r| labels[r as usize] != 0).count();
        cum_pos += positives;
        let count = bucket.len();
        let rate = positives as f64 / count.max(1) as f64;
        out.push(LiftBucket {
            rank: b + 1,
            count,
            positives,
            rate,
            lift: rate / base_rate,
            cumulative_capture: cum_pos as f64 / total_pos,
        });
        start = end;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gini_matches_auc_identity() {
        let scores = [0.1, 0.4, 0.35, 0.8];
        let labels = [0, 0, 1, 1];
        let g = gini(&scores, &labels).unwrap();
        assert!((g - (2.0 * 0.75 - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn perfect_model_gini_is_one() {
        let g = gini(&[0.1, 0.9], &[0, 1]).unwrap();
        assert!((g - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lift_table_on_perfect_ranking() {
        // 10 samples, 2 positives at the top.
        let scores: Vec<f64> = (0..10).map(|i| 1.0 - i as f64 / 10.0).collect();
        let mut labels = vec![0u8; 10];
        labels[0] = 1;
        labels[1] = 1;
        let table = lift_table(&scores, &labels, 5).unwrap();
        assert_eq!(table.len(), 5);
        // Top bucket (2 samples) captures both positives: lift = 1.0/0.2 = 5.
        assert_eq!(table[0].positives, 2);
        assert!((table[0].lift - 5.0).abs() < 1e-12);
        assert!((table[0].cumulative_capture - 1.0).abs() < 1e-12);
        for b in &table[1..] {
            assert_eq!(b.positives, 0);
            assert!((b.cumulative_capture - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn buckets_cover_all_samples() {
        let scores: Vec<f64> = (0..103).map(|i| (i as f64 * 0.37).sin()).collect();
        let labels: Vec<u8> = (0..103).map(|i| (i % 3 == 0) as u8).collect();
        let table = lift_table(&scores, &labels, 10).unwrap();
        let total: usize = table.iter().map(|b| b.count).sum();
        assert_eq!(total, 103);
        let last = table.last().unwrap();
        assert!((last.cumulative_capture - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cumulative_capture_is_monotone() {
        let scores: Vec<f64> = (0..60).map(|i| ((i * 17) % 23) as f64).collect();
        let labels: Vec<u8> = (0..60).map(|i| (i % 4 == 0) as u8).collect();
        let table = lift_table(&scores, &labels, 6).unwrap();
        for w in table.windows(2) {
            assert!(w[1].cumulative_capture >= w[0].cumulative_capture - 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "n_buckets")]
    fn too_many_buckets_rejected() {
        let _ = lift_table(&[0.5, 0.6], &[0, 1], 3);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn gini_in_minus_one_to_one(
                data in proptest::collection::vec((0u8..=10, 0u8..=1), 2..60)
                    .prop_filter("both classes", |v| {
                        v.iter().any(|&(_, y)| y == 1) && v.iter().any(|&(_, y)| y == 0)
                    }),
            ) {
                let scores: Vec<f64> = data.iter().map(|&(s, _)| s as f64 / 10.0).collect();
                let labels: Vec<u8> = data.iter().map(|&(_, y)| y).collect();
                let g = gini(&scores, &labels).unwrap();
                prop_assert!((-1.0..=1.0).contains(&g));
            }

            #[test]
            fn lift_weighted_rates_average_to_base_rate(
                data in proptest::collection::vec((0u8..=10, 0u8..=1), 10..80)
                    .prop_filter("both classes", |v| {
                        v.iter().any(|&(_, y)| y == 1) && v.iter().any(|&(_, y)| y == 0)
                    }),
            ) {
                let scores: Vec<f64> = data.iter().map(|&(s, _)| s as f64 / 10.0).collect();
                let labels: Vec<u8> = data.iter().map(|&(_, y)| y).collect();
                let table = lift_table(&scores, &labels, 5).unwrap();
                let n: usize = table.iter().map(|b| b.count).sum();
                let base = labels.iter().filter(|&&y| y != 0).count() as f64 / n as f64;
                let avg: f64 = table.iter()
                    .map(|b| b.rate * b.count as f64)
                    .sum::<f64>() / n as f64;
                prop_assert!((avg - base).abs() < 1e-9);
            }
        }
    }
}
