//! Per-environment fairness reports: the paper's `mKS` / `wKS` / `mAUC` /
//! `wAUC` summary.
//!
//! The paper evaluates every method per province and reports the mean
//! metric (overall performance) and the worst metric (minimax fairness).
//! [`EnvReport`] computes both from per-environment score/label slices.

use crate::{auc, ks, MetricError};

/// Scores and labels for one environment (e.g. one province).
#[derive(Debug, Clone, Default)]
pub struct EnvScores {
    /// Environment name, e.g. `"Guangdong"`.
    pub name: String,
    /// Predicted default probabilities.
    pub scores: Vec<f64>,
    /// Ground-truth labels (1 = default).
    pub labels: Vec<u8>,
}

impl EnvScores {
    /// Create an environment bucket with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        EnvScores {
            name: name.into(),
            scores: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Append one scored sample.
    pub fn push(&mut self, score: f64, label: u8) {
        self.scores.push(score);
        self.labels.push(label);
    }

    /// Number of samples in this environment.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// Whether the bucket is empty.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }
}

/// Per-environment metric values.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct EnvReport {
    pub name: String,
    pub n: usize,
    pub auc: f64,
    pub ks: f64,
    /// Empirical default rate in this environment.
    pub default_rate: f64,
}

/// The paper's four headline numbers plus the per-environment breakdown.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct FairnessSummary {
    /// Mean KS across environments (`mKS`).
    pub m_ks: f64,
    /// Worst (minimum) KS across environments (`wKS`).
    pub w_ks: f64,
    /// Mean AUC across environments (`mAUC`).
    pub m_auc: f64,
    /// Worst AUC across environments (`wAUC`).
    pub w_auc: f64,
    /// Name of the environment attaining `wKS`.
    pub worst_ks_env: String,
    /// Name of the environment attaining `wAUC`.
    pub worst_auc_env: String,
    /// Per-environment details, in input order.
    pub envs: Vec<EnvReport>,
}

impl FairnessSummary {
    /// Compute the summary over a set of environments.
    ///
    /// Environments that are empty or single-class (too small to score) are
    /// skipped with no error — mirroring how the paper drops provinces with
    /// insufficient test data — but at least one environment must be
    /// scorable.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::Empty`] when no environment is scorable, and
    /// propagates NaN-score errors.
    pub fn compute(envs: &[EnvScores]) -> Result<Self, MetricError> {
        let mut reports = Vec::new();
        for e in envs {
            match (auc(&e.scores, &e.labels), ks(&e.scores, &e.labels)) {
                (Ok(a), Ok(k)) => {
                    let pos = e.labels.iter().filter(|&&y| y != 0).count();
                    reports.push(EnvReport {
                        name: e.name.clone(),
                        n: e.len(),
                        auc: a,
                        ks: k,
                        default_rate: pos as f64 / e.len() as f64,
                    });
                }
                (Err(MetricError::NanScore { index }), _)
                | (_, Err(MetricError::NanScore { index })) => {
                    return Err(MetricError::NanScore { index });
                }
                // Empty / single-class environments are unscoreable; skip.
                _ => {}
            }
        }
        if reports.is_empty() {
            return Err(MetricError::Empty);
        }
        let n = reports.len() as f64;
        let m_ks = reports.iter().map(|r| r.ks).sum::<f64>() / n;
        let m_auc = reports.iter().map(|r| r.auc).sum::<f64>() / n;
        let worst_ks = reports
            .iter()
            .min_by(|a, b| a.ks.partial_cmp(&b.ks).expect("metrics are finite"))
            .expect("nonempty");
        let worst_auc = reports
            .iter()
            .min_by(|a, b| a.auc.partial_cmp(&b.auc).expect("metrics are finite"))
            .expect("nonempty");
        Ok(FairnessSummary {
            m_ks,
            w_ks: worst_ks.ks,
            m_auc,
            w_auc: worst_auc.auc,
            worst_ks_env: worst_ks.name.clone(),
            worst_auc_env: worst_auc.name.clone(),
            envs: reports,
        })
    }

    /// Group flat prediction arrays by an environment id and compute the
    /// summary. `env_ids[i]` indexes into `env_names`.
    ///
    /// # Panics
    ///
    /// Panics if an `env_id` is out of range of `env_names` — that is a
    /// programming error in the caller, not a data condition.
    pub fn from_flat(
        scores: &[f64],
        labels: &[u8],
        env_ids: &[u16],
        env_names: &[String],
    ) -> Result<Self, MetricError> {
        assert_eq!(scores.len(), labels.len());
        assert_eq!(scores.len(), env_ids.len());
        let mut buckets: Vec<EnvScores> = env_names
            .iter()
            .map(|n| EnvScores::new(n.clone()))
            .collect();
        for ((&s, &y), &e) in scores.iter().zip(labels).zip(env_ids) {
            buckets[e as usize].push(s, y);
        }
        Self::compute(&buckets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(name: &str, scores: &[f64], labels: &[u8]) -> EnvScores {
        EnvScores {
            name: name.into(),
            scores: scores.to_vec(),
            labels: labels.to_vec(),
        }
    }

    #[test]
    fn summary_means_and_worsts() {
        // Env A: perfect separation (AUC 1, KS 1).
        // Env B: perfectly wrong (AUC 0, KS 1 -- CDFs still fully separate).
        let a = env("A", &[0.1, 0.9], &[0, 1]);
        let b = env("B", &[0.9, 0.1], &[0, 1]);
        let s = FairnessSummary::compute(&[a, b]).unwrap();
        assert!((s.m_auc - 0.5).abs() < 1e-12);
        assert_eq!(s.w_auc, 0.0);
        assert_eq!(s.worst_auc_env, "B");
        assert!((s.m_ks - 1.0).abs() < 1e-12);
        assert_eq!(s.w_ks, 1.0);
    }

    #[test]
    fn unscoreable_envs_are_skipped() {
        let good = env("A", &[0.1, 0.9], &[0, 1]);
        let single_class = env("B", &[0.5, 0.6], &[1, 1]);
        let empty = EnvScores::new("C");
        let s = FairnessSummary::compute(&[good, single_class, empty]).unwrap();
        assert_eq!(s.envs.len(), 1);
        assert_eq!(s.envs[0].name, "A");
    }

    #[test]
    fn all_unscoreable_is_an_error() {
        let single = env("B", &[0.5], &[1]);
        assert_eq!(
            FairnessSummary::compute(&[single]).unwrap_err(),
            MetricError::Empty
        );
    }

    #[test]
    fn nan_is_an_error_not_a_skip() {
        let bad = env("A", &[0.5, f64::NAN], &[0, 1]);
        assert!(matches!(
            FairnessSummary::compute(&[bad]).unwrap_err(),
            MetricError::NanScore { .. }
        ));
    }

    #[test]
    fn default_rate_reported() {
        let a = env("A", &[0.1, 0.9, 0.4, 0.8], &[0, 1, 0, 1]);
        let s = FairnessSummary::compute(&[a]).unwrap();
        assert!((s.envs[0].default_rate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn from_flat_groups_correctly() {
        let scores = [0.1, 0.9, 0.9, 0.1];
        let labels = [0, 1, 0, 1];
        let env_ids = [0u16, 0, 1, 1];
        let names = vec!["A".to_string(), "B".to_string()];
        let s = FairnessSummary::from_flat(&scores, &labels, &env_ids, &names).unwrap();
        assert_eq!(s.envs.len(), 2);
        assert_eq!(s.envs[0].auc, 1.0);
        assert_eq!(s.envs[1].auc, 0.0);
    }

    #[test]
    fn worst_is_min_over_envs() {
        let a = env("A", &[0.1, 0.9, 0.2, 0.8], &[0, 1, 0, 1]); // AUC 1
                                                                // B: pos scores {0.9, 0.2}, neg {0.1, 0.8} -> 3 of 4 pairs concordant.
        let b = env("B", &[0.1, 0.9, 0.8, 0.2], &[0, 1, 0, 1]); // AUC 0.75
        let s = FairnessSummary::compute(&[a, b]).unwrap();
        assert!((s.w_auc - 0.75).abs() < 1e-12);
        assert!((s.m_auc - 0.875).abs() < 1e-12);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn envs_strategy() -> impl Strategy<Value = Vec<EnvScores>> {
            proptest::collection::vec(
                proptest::collection::vec((0u8..=10, 0u8..=1), 2..30)
                    .prop_filter("both classes", |v| {
                        v.iter().any(|&(_, y)| y == 1) && v.iter().any(|&(_, y)| y == 0)
                    }),
                1..6,
            )
            .prop_map(|envs| {
                envs.into_iter()
                    .enumerate()
                    .map(|(i, rows)| EnvScores {
                        name: format!("env{i}"),
                        scores: rows.iter().map(|&(s, _)| s as f64 / 10.0).collect(),
                        labels: rows.iter().map(|&(_, y)| y).collect(),
                    })
                    .collect()
            })
        }

        proptest! {
            #[test]
            fn worst_le_mean(envs in envs_strategy()) {
                let s = FairnessSummary::compute(&envs).unwrap();
                prop_assert!(s.w_ks <= s.m_ks + 1e-12);
                prop_assert!(s.w_auc <= s.m_auc + 1e-12);
            }

            #[test]
            fn mean_is_between_extremes(envs in envs_strategy()) {
                let s = FairnessSummary::compute(&envs).unwrap();
                let max_ks = s.envs.iter().map(|r| r.ks).fold(f64::MIN, f64::max);
                prop_assert!(s.m_ks <= max_ks + 1e-12);
                prop_assert!(s.m_ks >= s.w_ks - 1e-12);
            }
        }
    }
}
