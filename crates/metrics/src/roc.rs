//! ROC curves and threshold trade-off sweeps.
//!
//! [`threshold_sweep`] backs the paper's online evaluation (Fig. 5): as the
//! rejection threshold moves, how many good loans are refused (false
//! positive rate) versus how much bad debt remains among approved loans.

use crate::{validate, MetricError};

/// One point of a ROC curve.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct RocPoint {
    /// Decision threshold: predict default when `score >= threshold`.
    pub threshold: f64,
    /// True positive rate (defaults correctly flagged).
    pub tpr: f64,
    /// False positive rate (good loans incorrectly flagged).
    pub fpr: f64,
}

/// One point of the online FPR vs. residual-bad-debt trade-off (paper
/// Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct TradeoffPoint {
    /// Rejection threshold applied to the companion model's score.
    pub threshold: f64,
    /// Fraction of non-defaulting applicants rejected.
    pub false_positive_rate: f64,
    /// Default rate among the loans that are still approved — the paper's
    /// "bad debt rate" after adding the companion model.
    pub residual_default_rate: f64,
    /// Fraction of all applications rejected by the companion model.
    pub rejection_rate: f64,
}

/// Compute the ROC curve at every distinct score threshold, descending.
///
/// The returned curve always starts at `(fpr=0, tpr=0)` (threshold above
/// the maximum score) and ends at `(1, 1)`.
///
/// # Errors
///
/// Returns [`MetricError`] under the same conditions as [`crate::auc`].
pub fn roc_curve(scores: &[f64], labels: &[u8]) -> Result<Vec<RocPoint>, MetricError> {
    validate(scores, labels)?;
    let n = scores.len();
    let mut idx: Vec<u32> = (0..n as u32).collect();
    idx.sort_unstable_by(|&a, &b| {
        scores[b as usize]
            .partial_cmp(&scores[a as usize])
            .expect("NaN scores rejected by validate")
    });
    let n_pos = labels.iter().filter(|&&y| y != 0).count() as f64;
    let n_neg = n as f64 - n_pos;

    let mut curve = Vec::with_capacity(n + 1);
    curve.push(RocPoint {
        threshold: f64::INFINITY,
        tpr: 0.0,
        fpr: 0.0,
    });
    let mut tp = 0.0f64;
    let mut fp = 0.0f64;
    let mut i = 0usize;
    while i < n {
        let s = scores[idx[i] as usize];
        let mut j = i;
        loop {
            if labels[idx[j] as usize] != 0 {
                tp += 1.0;
            } else {
                fp += 1.0;
            }
            if j + 1 < n && scores[idx[j + 1] as usize] == s {
                j += 1;
            } else {
                break;
            }
        }
        curve.push(RocPoint {
            threshold: s,
            tpr: tp / n_pos,
            fpr: fp / n_neg,
        });
        i = j + 1;
    }
    Ok(curve)
}

/// Sweep a grid of rejection thresholds and report the online trade-off
/// metrics at each one.
///
/// `thresholds` does not need to be sorted; each entry is evaluated
/// independently with the rule "reject when `score >= threshold`".
/// When a threshold approves zero loans the residual default rate is
/// reported as `0.0` (there is no remaining portfolio to default).
///
/// # Errors
///
/// Returns [`MetricError`] under the same conditions as [`crate::auc`].
pub fn threshold_sweep(
    scores: &[f64],
    labels: &[u8],
    thresholds: &[f64],
) -> Result<Vec<TradeoffPoint>, MetricError> {
    validate(scores, labels)?;
    let n = scores.len() as f64;
    let n_neg = labels.iter().filter(|&&y| y == 0).count() as f64;
    let mut out = Vec::with_capacity(thresholds.len());
    for &t in thresholds {
        let mut rejected = 0.0f64;
        let mut rejected_good = 0.0f64;
        let mut approved = 0.0f64;
        let mut approved_bad = 0.0f64;
        for (&s, &y) in scores.iter().zip(labels) {
            if s >= t {
                rejected += 1.0;
                if y == 0 {
                    rejected_good += 1.0;
                }
            } else {
                approved += 1.0;
                if y != 0 {
                    approved_bad += 1.0;
                }
            }
        }
        out.push(TradeoffPoint {
            threshold: t,
            false_positive_rate: if n_neg > 0.0 {
                rejected_good / n_neg
            } else {
                0.0
            },
            residual_default_rate: if approved > 0.0 {
                approved_bad / approved
            } else {
                0.0
            },
            rejection_rate: rejected / n,
        });
    }
    Ok(out)
}

/// AUC computed by trapezoidal integration of the ROC curve.
///
/// Provided as an independent cross-check of [`crate::auc`]; the two agree
/// to floating-point precision (a unit test asserts this).
pub fn auc_trapezoid(scores: &[f64], labels: &[u8]) -> Result<f64, MetricError> {
    let curve = roc_curve(scores, labels)?;
    let mut area = 0.0;
    for w in curve.windows(2) {
        area += (w[1].fpr - w[0].fpr) * (w[1].tpr + w[0].tpr) / 2.0;
    }
    Ok(area)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auc;

    #[test]
    fn roc_endpoints() {
        let scores = [0.1, 0.4, 0.35, 0.8];
        let labels = [0, 0, 1, 1];
        let curve = roc_curve(&scores, &labels).unwrap();
        let first = curve.first().unwrap();
        let last = curve.last().unwrap();
        assert_eq!((first.tpr, first.fpr), (0.0, 0.0));
        assert_eq!((last.tpr, last.fpr), (1.0, 1.0));
    }

    #[test]
    fn roc_is_monotone() {
        let scores = [0.1, 0.4, 0.35, 0.8, 0.5, 0.5, 0.2];
        let labels = [0, 0, 1, 1, 0, 1, 1];
        let curve = roc_curve(&scores, &labels).unwrap();
        for w in curve.windows(2) {
            assert!(w[1].tpr >= w[0].tpr);
            assert!(w[1].fpr >= w[0].fpr);
        }
    }

    #[test]
    fn trapezoid_auc_matches_rank_auc() {
        let scores = [0.1, 0.4, 0.35, 0.8, 0.5, 0.5, 0.2, 0.9, 0.05];
        let labels = [0, 0, 1, 1, 0, 1, 1, 0, 0];
        let a = auc(&scores, &labels).unwrap();
        let b = auc_trapezoid(&scores, &labels).unwrap();
        assert!((a - b).abs() < 1e-12, "rank {a} vs trapezoid {b}");
    }

    #[test]
    fn sweep_extreme_thresholds() {
        let scores = [0.2, 0.6, 0.4, 0.8];
        let labels = [0, 0, 1, 1];
        let pts = threshold_sweep(&scores, &labels, &[0.0, 1.1]).unwrap();
        // Threshold 0: everything rejected, nothing approved.
        assert_eq!(pts[0].rejection_rate, 1.0);
        assert_eq!(pts[0].false_positive_rate, 1.0);
        assert_eq!(pts[0].residual_default_rate, 0.0);
        // Threshold above max: everything approved; bad debt = base rate.
        assert_eq!(pts[1].rejection_rate, 0.0);
        assert_eq!(pts[1].false_positive_rate, 0.0);
        assert!((pts[1].residual_default_rate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sweep_reduces_bad_debt_with_good_model() {
        // A well-ordered model: rejecting at 0.5 removes both defaulters.
        let scores = [0.1, 0.2, 0.7, 0.9];
        let labels = [0, 0, 1, 1];
        let pts = threshold_sweep(&scores, &labels, &[0.5]).unwrap();
        assert_eq!(pts[0].residual_default_rate, 0.0);
        assert_eq!(pts[0].false_positive_rate, 0.0);
        assert_eq!(pts[0].rejection_rate, 0.5);
    }

    #[test]
    fn sweep_residual_rate_zero_when_all_rejected() {
        let scores = [0.9, 0.8];
        let labels = [1, 0];
        let pts = threshold_sweep(&scores, &labels, &[0.0]).unwrap();
        assert_eq!(pts[0].residual_default_rate, 0.0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn scored_labels() -> impl Strategy<Value = (Vec<f64>, Vec<u8>)> {
            proptest::collection::vec((0u8..=10, 0u8..=1), 2..50)
                .prop_filter("need both classes", |v| {
                    v.iter().any(|&(_, y)| y == 1) && v.iter().any(|&(_, y)| y == 0)
                })
                .prop_map(|v| {
                    (
                        v.iter().map(|&(s, _)| s as f64 / 10.0).collect(),
                        v.iter().map(|&(_, y)| y).collect(),
                    )
                })
        }

        proptest! {
            #[test]
            fn trapezoid_equals_rank_auc((scores, labels) in scored_labels()) {
                let a = auc(&scores, &labels).unwrap();
                let b = auc_trapezoid(&scores, &labels).unwrap();
                prop_assert!((a - b).abs() < 1e-10);
            }

            #[test]
            fn sweep_rates_are_probabilities((scores, labels) in scored_labels()) {
                let grid: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
                for p in threshold_sweep(&scores, &labels, &grid).unwrap() {
                    prop_assert!((0.0..=1.0).contains(&p.false_positive_rate));
                    prop_assert!((0.0..=1.0).contains(&p.residual_default_rate));
                    prop_assert!((0.0..=1.0).contains(&p.rejection_rate));
                }
            }

            #[test]
            fn rejection_rate_monotone_in_threshold((scores, labels) in scored_labels()) {
                let grid: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
                let pts = threshold_sweep(&scores, &labels, &grid).unwrap();
                for w in pts.windows(2) {
                    // Higher threshold rejects a subset.
                    prop_assert!(w[1].rejection_rate <= w[0].rejection_rate + 1e-12);
                }
            }
        }
    }
}
