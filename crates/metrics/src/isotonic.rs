//! Score calibration by isotonic regression (pool-adjacent-violators).
//!
//! Credit-risk scores feed pricing and capital models, so platforms
//! recalibrate model outputs against observed default rates. Isotonic
//! regression fits the best monotone step function from scores to
//! empirical probabilities — it can only improve calibration while
//! preserving the ranking (AUC/KS are invariant under monotone maps).

use crate::{validate, MetricError};

/// A fitted monotone calibration map.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct IsotonicCalibrator {
    /// Right edges of the calibration steps (ascending raw scores).
    thresholds: Vec<f64>,
    /// Calibrated probability of each step.
    values: Vec<f64>,
}

impl IsotonicCalibrator {
    /// Fit by pool-adjacent-violators on `(score, label)` pairs.
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::auc`].
    pub fn fit(scores: &[f64], labels: &[u8]) -> Result<Self, MetricError> {
        validate(scores, labels)?;
        let n = scores.len();
        let mut idx: Vec<u32> = (0..n as u32).collect();
        idx.sort_unstable_by(|&a, &b| {
            scores[a as usize]
                .partial_cmp(&scores[b as usize])
                .expect("NaN rejected by validate")
        });

        // PAV over blocks: each block keeps (mean, weight, max_score).
        // Samples sharing a score are pooled into one initial block so the
        // fitted map is a well-defined function of the score (ties must
        // not straddle steps), and adjacent equal-mean blocks merge into
        // one canonical step.
        struct Block {
            sum: f64,
            weight: f64,
            max_score: f64,
        }
        let mut blocks: Vec<Block> = Vec::with_capacity(n);
        let mut i = 0usize;
        while i < n {
            let score = scores[idx[i] as usize];
            let mut sum = 0.0;
            let mut weight = 0.0;
            while i < n && scores[idx[i] as usize] == score {
                sum += labels[idx[i] as usize] as f64;
                weight += 1.0;
                i += 1;
            }
            blocks.push(Block {
                sum,
                weight,
                max_score: score,
            });
            // Merge while the monotonicity constraint is violated (or the
            // means are equal, which canonicalizes the step function).
            while blocks.len() >= 2 {
                let last = blocks.len() - 1;
                let prev_mean = blocks[last - 1].sum / blocks[last - 1].weight;
                let last_mean = blocks[last].sum / blocks[last].weight;
                if prev_mean < last_mean {
                    break;
                }
                let merged = Block {
                    sum: blocks[last - 1].sum + blocks[last].sum,
                    weight: blocks[last - 1].weight + blocks[last].weight,
                    max_score: blocks[last].max_score,
                };
                blocks.truncate(last - 1);
                blocks.push(merged);
            }
        }
        Ok(IsotonicCalibrator {
            thresholds: blocks.iter().map(|b| b.max_score).collect(),
            values: blocks.iter().map(|b| b.sum / b.weight).collect(),
        })
    }

    /// Number of monotone steps.
    pub fn n_steps(&self) -> usize {
        self.values.len()
    }

    /// Map a raw score to its calibrated probability. Scores above the
    /// last fitted threshold take the last step's value.
    pub fn transform(&self, score: f64) -> f64 {
        let step = self
            .thresholds
            .partition_point(|&t| t < score)
            .min(self.values.len() - 1);
        self.values[step]
    }

    /// Calibrate a batch.
    pub fn transform_batch(&self, scores: &[f64]) -> Vec<f64> {
        scores.iter().map(|&s| self.transform(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{auc, brier_score};

    /// Systematically overconfident scores: p_raw = σ-ish transform of a
    /// true 30%-positive process.
    fn overconfident_sample(n: usize) -> (Vec<f64>, Vec<u8>) {
        let mut scores = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let h = (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
            let u = (h >> 11) as f64 / (1u64 << 53) as f64;
            let p_true = 0.1 + 0.4 * u;
            let y = (((h >> 7) % 1000) as f64 / 1000.0) < p_true;
            // Overconfident view: squash toward the extremes.
            scores.push(if p_true > 0.3 {
                0.7 + 0.3 * u
            } else {
                0.05 * u
            });
            labels.push(y as u8);
        }
        (scores, labels)
    }

    #[test]
    fn output_is_monotone_in_the_input() {
        let (s, y) = overconfident_sample(500);
        let cal = IsotonicCalibrator::fit(&s, &y).unwrap();
        let grid: Vec<f64> = (0..=100).map(|i| i as f64 / 100.0).collect();
        let out = cal.transform_batch(&grid);
        for w in out.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
    }

    #[test]
    fn calibration_improves_brier_without_changing_auc() {
        let (s, y) = overconfident_sample(2000);
        let cal = IsotonicCalibrator::fit(&s, &y).unwrap();
        let calibrated = cal.transform_batch(&s);
        let brier_raw = brier_score(&s, &y).unwrap();
        let brier_cal = brier_score(&calibrated, &y).unwrap();
        assert!(
            brier_cal < brier_raw,
            "PAV must not worsen in-sample Brier: {brier_cal:.4} vs {brier_raw:.4}"
        );
        // Ranking is preserved up to ties (ties can only merge, never flip).
        let auc_raw = auc(&s, &y).unwrap();
        let auc_cal = auc(&calibrated, &y).unwrap();
        assert!((auc_raw - auc_cal).abs() < 0.02);
    }

    #[test]
    fn perfectly_separable_data_gives_two_steps() {
        let s = [0.1, 0.2, 0.8, 0.9];
        let y = [0, 0, 1, 1];
        let cal = IsotonicCalibrator::fit(&s, &y).unwrap();
        assert_eq!(cal.n_steps(), 2);
        assert_eq!(cal.transform(0.15), 0.0);
        assert_eq!(cal.transform(0.85), 1.0);
    }

    #[test]
    fn anti_correlated_scores_collapse_to_one_step() {
        // Scores perfectly inverted vs labels: PAV pools everything into
        // the base rate.
        let s = [0.9, 0.8, 0.2, 0.1];
        let y = [0, 0, 1, 1];
        let cal = IsotonicCalibrator::fit(&s, &y).unwrap();
        assert_eq!(cal.n_steps(), 1);
        assert!((cal.transform(0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fitted_values_reproduce_block_means() {
        let s = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6];
        let y = [0, 1, 0, 1, 1, 1];
        let cal = IsotonicCalibrator::fit(&s, &y).unwrap();
        // In-sample calibrated mean must equal the base rate.
        let mean: f64 = cal.transform_batch(&s).iter().sum::<f64>() / s.len() as f64;
        let base = y.iter().filter(|&&v| v != 0).count() as f64 / y.len() as f64;
        assert!((mean - base).abs() < 1e-12);
    }

    #[test]
    fn tied_scores_share_one_step() {
        // Three tied 0.5 scores with mixed labels must map to one pooled
        // value, not straddle two steps.
        let s = [0.5, 0.5, 0.5, 0.0, 0.0];
        let y = [1, 0, 1, 0, 0];
        let cal = IsotonicCalibrator::fit(&s, &y).unwrap();
        assert!((cal.transform(0.5) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cal.transform(0.0), 0.0);
    }

    #[test]
    fn out_of_range_scores_clamp_to_edge_steps() {
        let s = [0.2, 0.4, 0.6, 0.8];
        let y = [0, 0, 1, 1];
        let cal = IsotonicCalibrator::fit(&s, &y).unwrap();
        assert_eq!(cal.transform(-5.0), cal.transform(0.2));
        assert_eq!(cal.transform(5.0), cal.transform(0.8));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn scored() -> impl Strategy<Value = (Vec<f64>, Vec<u8>)> {
            proptest::collection::vec((0u8..=20, 0u8..=1), 4..120)
                .prop_filter("both classes", |v| {
                    v.iter().any(|&(_, y)| y == 1) && v.iter().any(|&(_, y)| y == 0)
                })
                .prop_map(|v| {
                    (
                        v.iter().map(|&(s, _)| s as f64 / 20.0).collect(),
                        v.iter().map(|&(_, y)| y).collect(),
                    )
                })
        }

        proptest! {
            #[test]
            fn outputs_are_probabilities_and_monotone((s, y) in scored()) {
                let cal = IsotonicCalibrator::fit(&s, &y).unwrap();
                let mut sorted = s.clone();
                sorted.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
                let mut prev = -1.0;
                for &v in &sorted {
                    let p = cal.transform(v);
                    prop_assert!((0.0..=1.0).contains(&p));
                    prop_assert!(p >= prev - 1e-12);
                    prev = p;
                }
            }

            #[test]
            fn pav_never_hurts_in_sample_brier((s, y) in scored()) {
                let cal = IsotonicCalibrator::fit(&s, &y).unwrap();
                let calibrated = cal.transform_batch(&s);
                let raw = brier_score(&s, &y).unwrap();
                let fixed = brier_score(&calibrated, &y).unwrap();
                prop_assert!(fixed <= raw + 1e-12);
            }
        }
    }
}
