//! Composed differentiable functions and a finite-difference checker.

use crate::tape::{Tape, Var};

/// Binary cross entropy with logits:
/// `mean( softplus(z) − y ⊙ z )`, the numerically stable form of
/// `−y ln σ(z) − (1−y) ln(1−σ(z))`.
///
/// `labels` enters as a constant.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn bce_with_logits<'t>(tape: &'t Tape, logits: Var<'t>, labels: &[f64]) -> Var<'t> {
    assert_eq!(logits.value().len(), labels.len(), "labels length mismatch");
    let y = tape.constant(labels.to_vec());
    let sp = tape.softplus(logits);
    let yz = tape.mul(y, logits);
    let per_sample = tape.sub(sp, yz);
    tape.mean(per_sample)
}

/// The full logistic-regression loss `BCE(X·θ, y) + (reg/2)·θᵀθ`.
pub fn lr_loss<'t>(
    tape: &'t Tape,
    x: &[f64],
    rows: usize,
    cols: usize,
    theta: Var<'t>,
    labels: &[f64],
    reg: f64,
) -> Var<'t> {
    let z = tape.matvec(x, rows, cols, theta);
    let bce = bce_with_logits(tape, z, labels);
    if reg == 0.0 {
        return bce;
    }
    let sq = tape.mul(theta, theta);
    let l2 = tape.sum(sq);
    let penalty = tape.scale(l2, reg / 2.0);
    tape.add(bce, penalty)
}

/// Mean squared error against constant targets.
pub fn mse<'t>(tape: &'t Tape, pred: Var<'t>, targets: &[f64]) -> Var<'t> {
    assert_eq!(pred.value().len(), targets.len(), "targets length mismatch");
    let t = tape.constant(targets.to_vec());
    let diff = tape.sub(pred, t);
    let sq = tape.mul(diff, diff);
    tape.mean(sq)
}

/// Central finite-difference gradient of `f` at `x` (testing utility).
pub fn finite_diff_grad(f: impl Fn(&[f64]) -> f64, x: &[f64], eps: f64) -> Vec<f64> {
    let mut grad = Vec::with_capacity(x.len());
    let mut probe = x.to_vec();
    for i in 0..x.len() {
        probe[i] = x[i] + eps;
        let hi = f(&probe);
        probe[i] = x[i] - eps;
        let lo = f(&probe);
        probe[i] = x[i];
        grad.push((hi - lo) / (2.0 * eps));
    }
    grad
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_problem() -> (Vec<f64>, usize, usize, Vec<f64>) {
        // 6 rows × 3 cols, deterministic pseudo-random values.
        let rows = 6;
        let cols = 3;
        let x: Vec<f64> = (0..rows * cols)
            .map(|i| (((i * 2654435761_usize) % 1000) as f64 / 500.0) - 1.0)
            .collect();
        let y = vec![1.0, 0.0, 1.0, 1.0, 0.0, 0.0];
        (x, rows, cols, y)
    }

    fn eval_lr_loss(
        x: &[f64],
        rows: usize,
        cols: usize,
        y: &[f64],
        reg: f64,
        theta: &[f64],
    ) -> f64 {
        let tape = Tape::new();
        let t = tape.input(theta.to_vec());
        lr_loss(&tape, x, rows, cols, t, y, reg).scalar_value()
    }

    #[test]
    fn bce_matches_hand_formula() {
        let tape = Tape::new();
        let z = tape.input(vec![0.5, -1.0]);
        let loss = bce_with_logits(&tape, z, &[1.0, 0.0]);
        let p1 = 1.0 / (1.0 + (-0.5f64).exp());
        let p2 = 1.0 / (1.0 + (1.0f64).exp());
        let expect = (-(p1.ln()) - (1.0 - p2).ln()) / 2.0;
        assert!((loss.scalar_value() - expect).abs() < 1e-12);
    }

    #[test]
    fn lr_gradient_matches_finite_difference() {
        let (x, rows, cols, y) = demo_problem();
        let theta0 = [0.3, -0.2, 0.8];
        for reg in [0.0, 0.5] {
            let tape = Tape::new();
            let theta = tape.input(theta0.to_vec());
            let loss = lr_loss(&tape, &x, rows, cols, theta, &y, reg);
            let grad = tape.backward(loss, &[theta], false)[0].value();
            let fd = finite_diff_grad(|t| eval_lr_loss(&x, rows, cols, &y, reg, t), &theta0, 1e-5);
            for (g, f) in grad.iter().zip(&fd) {
                assert!((g - f).abs() < 1e-7, "autodiff {g} vs fd {f} (reg {reg})");
            }
        }
    }

    #[test]
    fn lr_hvp_matches_finite_difference_of_gradient() {
        let (x, rows, cols, y) = demo_problem();
        let theta0 = [0.1, 0.4, -0.6];
        let v = [0.5, -1.0, 0.25];

        // Autodiff HVP via double backward.
        let tape = Tape::new();
        let theta = tape.input(theta0.to_vec());
        let loss = lr_loss(&tape, &x, rows, cols, theta, &y, 0.3);
        let grad = tape.backward(loss, &[theta], true)[0];
        let vvar = tape.constant(v.to_vec());
        let gv = tape.dot(grad, vvar);
        let hv = tape.backward(gv, &[theta], false)[0].value();

        // Finite-difference HVP: (∇f(θ+εv) − ∇f(θ−εv)) / 2ε.
        let eps = 1e-5;
        let grad_at = |t: &[f64]| {
            let tape = Tape::new();
            let th = tape.input(t.to_vec());
            let loss = lr_loss(&tape, &x, rows, cols, th, &y, 0.3);
            tape.backward(loss, &[th], false)[0].value()
        };
        let plus: Vec<f64> = theta0.iter().zip(&v).map(|(t, d)| t + eps * d).collect();
        let minus: Vec<f64> = theta0.iter().zip(&v).map(|(t, d)| t - eps * d).collect();
        let gp = grad_at(&plus);
        let gm = grad_at(&minus);
        for i in 0..3 {
            let fd = (gp[i] - gm[i]) / (2.0 * eps);
            assert!(
                (hv[i] - fd).abs() < 1e-6,
                "HVP[{i}] autodiff {} vs fd {fd}",
                hv[i]
            );
        }
    }

    #[test]
    fn mse_value_and_gradient() {
        let tape = Tape::new();
        let pred = tape.input(vec![1.0, 3.0]);
        let loss = mse(&tape, pred, &[0.0, 1.0]);
        assert!((loss.scalar_value() - (1.0 + 4.0) / 2.0).abs() < 1e-12);
        let g = tape.backward(loss, &[pred], false)[0].value();
        assert!((g[0] - 1.0).abs() < 1e-12); // 2(1-0)/2
        assert!((g[1] - 2.0).abs() < 1e-12); // 2(3-1)/2
    }

    #[test]
    fn finite_diff_on_quadratic_is_exact() {
        let f = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
        let g = finite_diff_grad(f, &[1.0, -2.0, 3.0], 1e-6);
        for (gi, xi) in g.iter().zip(&[1.0, -2.0, 3.0]) {
            assert!((gi - 2.0 * xi).abs() < 1e-6);
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]
            #[test]
            fn gradcheck_random_lr_instances(
                theta in proptest::collection::vec(-1.5f64..1.5, 3),
                labels in proptest::collection::vec(0u8..=1, 5),
                seed in 0u64..1000,
            ) {
                let rows = labels.len();
                let cols = theta.len();
                let x: Vec<f64> = (0..rows * cols)
                    .map(|i| {
                        let h = (i as u64)
                            .wrapping_mul(0x9E3779B97F4A7C15)
                            .wrapping_add(seed.wrapping_mul(0xD1B54A32D192ED03));
                        ((h >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
                    })
                    .collect();
                let y: Vec<f64> = labels.iter().map(|&l| l as f64).collect();
                let tape = Tape::new();
                let t = tape.input(theta.clone());
                let loss = lr_loss(&tape, &x, rows, cols, t, &y, 0.1);
                let grad = tape.backward(loss, &[t], false)[0].value();
                let fd = finite_diff_grad(
                    |tt| eval_lr_loss(&x, rows, cols, &y, 0.1, tt),
                    &theta,
                    1e-5,
                );
                for (g, f) in grad.iter().zip(&fd) {
                    prop_assert!((g - f).abs() < 1e-6, "{g} vs {f}");
                }
            }
        }
    }
}
