//! `lightmirm-autodiff` — a reverse-mode autodiff tape with
//! double-backward support.
//!
//! The meta-IRM outer update differentiates through the inner SGD step,
//! which requires gradients of gradients. Rust has no mature autograd
//! crate, so this crate implements a minimal, exact engine:
//!
//! - eager 1-D tensor ops recorded on a [`Tape`];
//! - [`Tape::backward`] emits the adjoint computation as *new tape nodes*,
//!   so returned gradients are themselves differentiable — exact
//!   Hessian-vector products come from one more `backward` call;
//! - validated against central finite differences in unit and property
//!   tests ([`functional::finite_diff_grad`]).
//!
//! The production LightMIRM trainers in `lightmirm-core` use a closed-form
//! fast path for logistic regression; this crate is the generic route and
//! the cross-check (core's tests verify the analytic meta-gradient against
//! this engine).
//!
//! # Example: exact Hessian-vector product
//!
//! ```
//! use lightmirm_autodiff::{Tape, functional::lr_loss};
//!
//! let x = vec![0.5, -1.0, 1.5, 0.25]; // 2 rows × 2 cols
//! let y = vec![1.0, 0.0];
//! let tape = Tape::new();
//! let theta = tape.input(vec![0.1, -0.2]);
//! let loss = lr_loss(&tape, &x, 2, 2, theta, &y, 0.0);
//! let grad = tape.backward(loss, &[theta], true)[0];
//! let v = tape.constant(vec![1.0, 0.0]);
//! let gv = tape.dot(grad, v);
//! let hv = tape.backward(gv, &[theta], false)[0]; // H · v, exactly
//! assert_eq!(hv.value().len(), 2);
//! ```

pub mod functional;
pub mod tape;

pub use functional::{bce_with_logits, finite_diff_grad, lr_loss, mse};
pub use tape::{Tape, Var};
