//! Eager reverse-mode autodiff tape with double-backward support.
//!
//! Rust has no mature deep-learning autograd crate, and the meta-IRM
//! algorithm needs gradients *of* gradients (the outer update
//! differentiates through the inner SGD step). This module implements the
//! minimal engine that supports it:
//!
//! - values are 1-D tensors (`Vec<f64>`); a scalar is a length-1 tensor;
//! - every operation eagerly computes its value and records a node on the
//!   tape;
//! - [`Tape::backward`] walks the graph in reverse and **emits the adjoint
//!   computation as new tape nodes**, so the returned gradients are
//!   themselves differentiable — call `backward` on (functions of) them to
//!   get exact second-order quantities such as Hessian-vector products.
//!
//! Broadcasting is deliberately minimal: binary ops accept equal lengths
//! or a length-1 operand (whose adjoint is the summed elementwise
//! adjoint). Matrices appear only as constants in [`Tape::matvec`], which
//! is all logistic regression needs.

use std::cell::RefCell;

/// A handle to a value on a [`Tape`].
///
/// Cheap to copy; tied to its tape by lifetime.
#[derive(Clone, Copy)]
pub struct Var<'t> {
    tape: &'t Tape,
    id: usize,
}

impl std::fmt::Debug for Var<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Var")
            .field("id", &self.id)
            .field("value", &self.value())
            .finish()
    }
}

#[derive(Debug, Clone)]
enum Op {
    /// Leaf: either a differentiable input or a constant.
    Leaf {
        requires_grad: bool,
    },
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    Neg(usize),
    Scale(usize, f64),
    Sum(usize),
    /// Broadcast a scalar (length recorded by the node's value).
    Broadcast(usize),
    Dot(usize, usize),
    /// `X · v` with constant row-major `X` of shape `rows × cols`.
    MatVec {
        matrix: usize,
        rows: usize,
        cols: usize,
        vec: usize,
    },
    /// `Xᵀ · v` with the same constant matrix.
    MatTVec {
        matrix: usize,
        rows: usize,
        cols: usize,
        vec: usize,
    },
    Sigmoid(usize),
    Softplus(usize),
    Ln(usize),
    Exp(usize),
    Sqrt(usize),
}

struct NodeData {
    value: Vec<f64>,
    op: Op,
}

/// The autodiff tape (arena of nodes).
#[derive(Default)]
pub struct Tape {
    nodes: RefCell<Vec<NodeData>>,
    /// Constant matrices referenced by MatVec nodes (never differentiated).
    matrices: RefCell<Vec<Vec<f64>>>,
}

impl Tape {
    /// A fresh empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes currently recorded (ops executed). The complexity
    /// assertions in the core crate count these.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.borrow().is_empty()
    }

    fn push(&self, value: Vec<f64>, op: Op) -> Var<'_> {
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(NodeData { value, op });
        Var {
            tape: self,
            id: nodes.len() - 1,
        }
    }

    /// A differentiable input tensor.
    pub fn input(&self, value: Vec<f64>) -> Var<'_> {
        self.push(
            value,
            Op::Leaf {
                requires_grad: true,
            },
        )
    }

    /// A constant tensor (no gradient flows into it).
    pub fn constant(&self, value: Vec<f64>) -> Var<'_> {
        self.push(
            value,
            Op::Leaf {
                requires_grad: false,
            },
        )
    }

    /// A constant scalar.
    pub fn scalar(&self, value: f64) -> Var<'_> {
        self.constant(vec![value])
    }

    fn register_matrix(&self, matrix: Vec<f64>) -> usize {
        let mut ms = self.matrices.borrow_mut();
        ms.push(matrix);
        ms.len() - 1
    }

    /// Compute the gradients of scalar `output` with respect to `inputs`.
    ///
    /// With `create_graph = true` the adjoint pass records its own nodes,
    /// so the returned gradients can be differentiated again (this is how
    /// exact Hessian-vector products are obtained). With `false` the same
    /// nodes are recorded but the caller promises not to reuse them —
    /// there is no performance distinction in this small engine; the flag
    /// exists to document intent at call sites.
    ///
    /// # Panics
    ///
    /// Panics if `output` is not scalar (length 1) or if vars belong to a
    /// different tape.
    pub fn backward<'t>(
        &'t self,
        output: Var<'t>,
        inputs: &[Var<'t>],
        create_graph: bool,
    ) -> Vec<Var<'t>> {
        let _ = create_graph;
        assert!(std::ptr::eq(output.tape, self), "output from another tape");
        assert_eq!(output.value().len(), 1, "backward needs a scalar output");

        // The set of nodes whose adjoint we must propagate: ancestors of
        // `output`. Adjoints start as None (≡ zero).
        let frontier = output.id;
        let mut adjoint: Vec<Option<Var<'t>>> = vec![None; frontier + 1];
        adjoint[frontier] = Some(self.scalar(1.0));

        // Nodes are created in topological order, so a reverse index scan
        // is a valid reverse-topological traversal.
        for id in (0..=frontier).rev() {
            let Some(grad) = adjoint[id] else { continue };
            let op = self.nodes.borrow()[id].op.clone();
            match op {
                Op::Leaf { .. } => {}
                Op::Add(a, b) => {
                    self.accumulate(&mut adjoint, a, self.reduce_like(grad, a));
                    self.accumulate(&mut adjoint, b, self.reduce_like(grad, b));
                }
                Op::Sub(a, b) => {
                    self.accumulate(&mut adjoint, a, self.reduce_like(grad, a));
                    let neg = self.neg(grad);
                    self.accumulate(&mut adjoint, b, self.reduce_like(neg, b));
                }
                Op::Mul(a, b) => {
                    let va = Var { tape: self, id: a };
                    let vb = Var { tape: self, id: b };
                    let ga = self.mul(grad, vb);
                    let gb = self.mul(grad, va);
                    self.accumulate(&mut adjoint, a, self.reduce_like(ga, a));
                    self.accumulate(&mut adjoint, b, self.reduce_like(gb, b));
                }
                Op::Neg(a) => {
                    let g = self.neg(grad);
                    self.accumulate(&mut adjoint, a, g);
                }
                Op::Scale(a, c) => {
                    let g = self.scale(grad, c);
                    self.accumulate(&mut adjoint, a, g);
                }
                Op::Sum(a) => {
                    let n = self.nodes.borrow()[a].value.len();
                    let g = self.broadcast(grad, n);
                    self.accumulate(&mut adjoint, a, g);
                }
                Op::Broadcast(a) => {
                    let g = self.sum(grad);
                    self.accumulate(&mut adjoint, a, g);
                }
                Op::Dot(a, b) => {
                    let va = Var { tape: self, id: a };
                    let vb = Var { tape: self, id: b };
                    let n = va.value().len();
                    let gb = self.broadcast(grad, n);
                    let ga = self.mul(gb, vb);
                    let gbb = self.mul(gb, va);
                    self.accumulate(&mut adjoint, a, ga);
                    self.accumulate(&mut adjoint, b, gbb);
                }
                Op::MatVec {
                    matrix,
                    rows,
                    cols,
                    vec,
                } => {
                    // d/dv (X v) ⋅ g = Xᵀ g
                    let g = self.mat_t_vec_raw(matrix, rows, cols, grad);
                    self.accumulate(&mut adjoint, vec, g);
                }
                Op::MatTVec {
                    matrix,
                    rows,
                    cols,
                    vec,
                } => {
                    // d/dv (Xᵀ v) ⋅ g = X g
                    let g = self.mat_vec_raw(matrix, rows, cols, grad);
                    self.accumulate(&mut adjoint, vec, g);
                }
                Op::Sigmoid(a) => {
                    // s' = s (1 − s)
                    let s = Var { tape: self, id };
                    let one = self.scalar(1.0);
                    let one_minus = self.sub(one, s);
                    let sp = self.mul(s, one_minus);
                    let g = self.mul(grad, sp);
                    self.accumulate(&mut adjoint, a, g);
                }
                Op::Softplus(a) => {
                    // softplus' = sigmoid
                    let va = Var { tape: self, id: a };
                    let s = self.sigmoid(va);
                    let g = self.mul(grad, s);
                    self.accumulate(&mut adjoint, a, g);
                }
                Op::Ln(a) => {
                    let va = Var { tape: self, id: a };
                    let one = self.scalar(1.0);
                    let inv = self.divide(one, va);
                    let g = self.mul(grad, inv);
                    self.accumulate(&mut adjoint, a, g);
                }
                Op::Exp(a) => {
                    let e = Var { tape: self, id };
                    let g = self.mul(grad, e);
                    self.accumulate(&mut adjoint, a, g);
                }
                Op::Sqrt(a) => {
                    // (√x)' = 1 / (2 √x)
                    let r = Var { tape: self, id };
                    let half = self.scalar(0.5);
                    let inv = self.divide(half, r);
                    let g = self.mul(grad, inv);
                    self.accumulate(&mut adjoint, a, g);
                }
            }
        }

        inputs
            .iter()
            .map(|v| {
                assert!(std::ptr::eq(v.tape, self), "input from another tape");
                match adjoint.get(v.id).copied().flatten() {
                    Some(g) => self.materialize_like(g, v.id),
                    None => {
                        let n = self.nodes.borrow()[v.id].value.len();
                        self.constant(vec![0.0; n])
                    }
                }
            })
            .collect()
    }

    fn accumulate<'t>(&'t self, adjoint: &mut [Option<Var<'t>>], id: usize, grad: Var<'t>) {
        if id >= adjoint.len() {
            return; // node created during backward; not an ancestor
        }
        // Constants absorb no gradient; skipping them prunes the adjoint
        // graph at the leaves.
        if matches!(
            self.nodes.borrow()[id].op,
            Op::Leaf {
                requires_grad: false
            }
        ) {
            return;
        }
        adjoint[id] = Some(match adjoint[id] {
            Some(existing) => self.add(existing, grad),
            None => grad,
        });
    }

    /// If `grad` is wider than node `target` (because the target was a
    /// broadcast scalar in a binary op), reduce it by summation.
    fn reduce_like<'t>(&'t self, grad: Var<'t>, target: usize) -> Var<'t> {
        let target_len = self.nodes.borrow()[target].value.len();
        if grad.value().len() == target_len {
            grad
        } else if target_len == 1 {
            self.sum(grad)
        } else {
            panic!(
                "gradient of length {} cannot match target of length {target_len}",
                grad.value().len()
            )
        }
    }

    /// If `grad` is a scalar but the input is a vector (possible when the
    /// forward broadcast it), widen by broadcasting.
    fn materialize_like<'t>(&'t self, grad: Var<'t>, target: usize) -> Var<'t> {
        let target_len = self.nodes.borrow()[target].value.len();
        if grad.value().len() == target_len {
            grad
        } else if grad.value().len() == 1 {
            self.broadcast(grad, target_len)
        } else {
            panic!("gradient/shape mismatch")
        }
    }

    // ----- forward ops -------------------------------------------------

    fn binary_values(&self, a: Var<'_>, b: Var<'_>, f: impl Fn(f64, f64) -> f64) -> Vec<f64> {
        let nodes = self.nodes.borrow();
        let va = &nodes[a.id].value;
        let vb = &nodes[b.id].value;
        match (va.len(), vb.len()) {
            (x, y) if x == y => va.iter().zip(vb).map(|(&p, &q)| f(p, q)).collect(),
            (_, 1) => va.iter().map(|&p| f(p, vb[0])).collect(),
            (1, _) => vb.iter().map(|&q| f(va[0], q)).collect(),
            (x, y) => panic!("shape mismatch: {x} vs {y}"),
        }
    }

    /// Elementwise addition (broadcasting a scalar operand).
    pub fn add<'t>(&'t self, a: Var<'t>, b: Var<'t>) -> Var<'t> {
        let v = self.binary_values(a, b, |p, q| p + q);
        self.push(v, Op::Add(a.id, b.id))
    }

    /// Elementwise subtraction (broadcasting a scalar operand).
    pub fn sub<'t>(&'t self, a: Var<'t>, b: Var<'t>) -> Var<'t> {
        let v = self.binary_values(a, b, |p, q| p - q);
        self.push(v, Op::Sub(a.id, b.id))
    }

    /// Elementwise multiplication (broadcasting a scalar operand).
    pub fn mul<'t>(&'t self, a: Var<'t>, b: Var<'t>) -> Var<'t> {
        let v = self.binary_values(a, b, |p, q| p * q);
        self.push(v, Op::Mul(a.id, b.id))
    }

    /// Elementwise division implemented as `a * exp(-ln b)` would lose
    /// precision; instead it is its own composition `a * b⁻¹` via `Mul`
    /// and an explicit reciprocal through `Exp(Neg(Ln))` — but for
    /// simplicity and exactness we express it as `a · (1/b)` where the
    /// reciprocal is differentiated through [`Tape::ln`]/[`Tape::exp`].
    pub fn divide<'t>(&'t self, a: Var<'t>, b: Var<'t>) -> Var<'t> {
        let ln_b = self.ln(b);
        let neg = self.neg(ln_b);
        let inv = self.exp(neg);
        self.mul(a, inv)
    }

    /// Elementwise negation.
    pub fn neg<'t>(&'t self, a: Var<'t>) -> Var<'t> {
        let v = a.value().iter().map(|&p| -p).collect();
        self.push(v, Op::Neg(a.id))
    }

    /// Multiply by a compile-time constant.
    pub fn scale<'t>(&'t self, a: Var<'t>, c: f64) -> Var<'t> {
        let v = a.value().iter().map(|&p| c * p).collect();
        self.push(v, Op::Scale(a.id, c))
    }

    /// Sum to a scalar.
    pub fn sum<'t>(&'t self, a: Var<'t>) -> Var<'t> {
        let v = vec![a.value().iter().sum::<f64>()];
        self.push(v, Op::Sum(a.id))
    }

    /// Mean to a scalar.
    pub fn mean<'t>(&'t self, a: Var<'t>) -> Var<'t> {
        let n = a.value().len().max(1);
        let s = self.sum(a);
        self.scale(s, 1.0 / n as f64)
    }

    /// Broadcast a scalar to a length-`n` vector.
    ///
    /// # Panics
    ///
    /// Panics unless `a` is scalar.
    pub fn broadcast<'t>(&'t self, a: Var<'t>, n: usize) -> Var<'t> {
        assert_eq!(a.value().len(), 1, "broadcast needs a scalar");
        let v = vec![a.value()[0]; n];
        self.push(v, Op::Broadcast(a.id))
    }

    /// Inner product of two equal-length vectors (scalar output).
    pub fn dot<'t>(&'t self, a: Var<'t>, b: Var<'t>) -> Var<'t> {
        let va = a.value();
        let vb = b.value();
        assert_eq!(va.len(), vb.len(), "dot length mismatch");
        let v = vec![va.iter().zip(vb.iter()).map(|(&p, &q)| p * q).sum::<f64>()];
        self.push(v, Op::Dot(a.id, b.id))
    }

    fn mat_vec_raw<'t>(&'t self, matrix: usize, rows: usize, cols: usize, v: Var<'t>) -> Var<'t> {
        let out = {
            let ms = self.matrices.borrow();
            let x = &ms[matrix];
            let vv = v.value();
            assert_eq!(vv.len(), cols, "matvec width mismatch");
            (0..rows)
                .map(|r| {
                    x[r * cols..(r + 1) * cols]
                        .iter()
                        .zip(vv.iter())
                        .map(|(&m, &q)| m * q)
                        .sum()
                })
                .collect()
        };
        self.push(
            out,
            Op::MatVec {
                matrix,
                rows,
                cols,
                vec: v.id,
            },
        )
    }

    fn mat_t_vec_raw<'t>(&'t self, matrix: usize, rows: usize, cols: usize, v: Var<'t>) -> Var<'t> {
        let out = {
            let ms = self.matrices.borrow();
            let x = &ms[matrix];
            let vv = v.value();
            assert_eq!(vv.len(), rows, "matvec-transpose height mismatch");
            let mut acc = vec![0.0; cols];
            for (r, &g) in vv.iter().enumerate() {
                for (c, slot) in acc.iter_mut().enumerate() {
                    *slot += x[r * cols + c] * g;
                }
            }
            acc
        };
        self.push(
            out,
            Op::MatTVec {
                matrix,
                rows,
                cols,
                vec: v.id,
            },
        )
    }

    /// `X · v` where `X` is a constant row-major `rows × cols` matrix.
    ///
    /// # Panics
    ///
    /// Panics when `matrix.len() != rows * cols` or `v` is not `cols` long.
    pub fn matvec<'t>(&'t self, matrix: &[f64], rows: usize, cols: usize, v: Var<'t>) -> Var<'t> {
        assert_eq!(matrix.len(), rows * cols, "matrix shape mismatch");
        let handle = self.register_matrix(matrix.to_vec());
        self.mat_vec_raw(handle, rows, cols, v)
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid<'t>(&'t self, a: Var<'t>) -> Var<'t> {
        let v = a
            .value()
            .iter()
            .map(|&x| {
                if x >= 0.0 {
                    1.0 / (1.0 + (-x).exp())
                } else {
                    let e = x.exp();
                    e / (1.0 + e)
                }
            })
            .collect();
        self.push(v, Op::Sigmoid(a.id))
    }

    /// Elementwise softplus `ln(1 + eˣ)`, computed stably.
    pub fn softplus<'t>(&'t self, a: Var<'t>) -> Var<'t> {
        let v = a
            .value()
            .iter()
            .map(|&x| {
                if x > 0.0 {
                    x + (-x).exp().ln_1p()
                } else {
                    x.exp().ln_1p()
                }
            })
            .collect();
        self.push(v, Op::Softplus(a.id))
    }

    /// Elementwise natural logarithm.
    pub fn ln<'t>(&'t self, a: Var<'t>) -> Var<'t> {
        let v = a.value().iter().map(|&x| x.ln()).collect();
        self.push(v, Op::Ln(a.id))
    }

    /// Elementwise exponential.
    pub fn exp<'t>(&'t self, a: Var<'t>) -> Var<'t> {
        let v = a.value().iter().map(|&x| x.exp()).collect();
        self.push(v, Op::Exp(a.id))
    }

    /// Elementwise square root.
    pub fn sqrt<'t>(&'t self, a: Var<'t>) -> Var<'t> {
        let v = a.value().iter().map(|&x| x.sqrt()).collect();
        self.push(v, Op::Sqrt(a.id))
    }
}

impl<'t> Var<'t> {
    /// The current value (cloned out of the tape).
    pub fn value(&self) -> Vec<f64> {
        self.tape.nodes.borrow()[self.id].value.clone()
    }

    /// The value of a scalar var.
    ///
    /// # Panics
    ///
    /// Panics if the var is not length 1.
    pub fn scalar_value(&self) -> f64 {
        let v = self.value();
        assert_eq!(v.len(), 1, "scalar_value on a non-scalar");
        v[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_backward() {
        let t = Tape::new();
        let x = t.input(vec![2.0, 3.0]);
        let y = t.input(vec![5.0, 7.0]);
        let s = t.add(x, y);
        let total = t.sum(s);
        assert_eq!(total.scalar_value(), 17.0);
        let grads = t.backward(total, &[x, y], false);
        assert_eq!(grads[0].value(), vec![1.0, 1.0]);
        assert_eq!(grads[1].value(), vec![1.0, 1.0]);
    }

    #[test]
    fn mul_gradients() {
        let t = Tape::new();
        let x = t.input(vec![2.0, 3.0]);
        let y = t.input(vec![5.0, 7.0]);
        let p = t.mul(x, y);
        let total = t.sum(p);
        let grads = t.backward(total, &[x, y], false);
        assert_eq!(grads[0].value(), vec![5.0, 7.0]);
        assert_eq!(grads[1].value(), vec![2.0, 3.0]);
    }

    #[test]
    fn scalar_broadcast_in_binary_ops() {
        let t = Tape::new();
        let x = t.input(vec![1.0, 2.0, 3.0]);
        let c = t.input(vec![10.0]);
        let s = t.mul(x, c);
        assert_eq!(s.value(), vec![10.0, 20.0, 30.0]);
        let total = t.sum(s);
        let grads = t.backward(total, &[x, c], false);
        assert_eq!(grads[0].value(), vec![10.0, 10.0, 10.0]);
        assert_eq!(grads[1].value(), vec![6.0]); // sum of x
    }

    #[test]
    fn dot_gradients() {
        let t = Tape::new();
        let a = t.input(vec![1.0, 2.0]);
        let b = t.input(vec![3.0, 4.0]);
        let d = t.dot(a, b);
        assert_eq!(d.scalar_value(), 11.0);
        let grads = t.backward(d, &[a, b], false);
        assert_eq!(grads[0].value(), vec![3.0, 4.0]);
        assert_eq!(grads[1].value(), vec![1.0, 2.0]);
    }

    #[test]
    fn matvec_forward_and_gradient() {
        let t = Tape::new();
        // X = [[1, 2], [3, 4], [5, 6]]
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let v = t.input(vec![1.0, -1.0]);
        let out = t.matvec(&x, 3, 2, v);
        assert_eq!(out.value(), vec![-1.0, -1.0, -1.0]);
        let total = t.sum(out);
        let grads = t.backward(total, &[v], false);
        // Xᵀ·1 = column sums = [9, 12]
        assert_eq!(grads[0].value(), vec![9.0, 12.0]);
    }

    #[test]
    fn sigmoid_gradient_matches_formula() {
        let t = Tape::new();
        let x = t.input(vec![0.3, -1.2]);
        let s = t.sigmoid(x);
        let total = t.sum(s);
        let grads = t.backward(total, &[x], false);
        for (g, &xi) in grads[0].value().iter().zip(&[0.3f64, -1.2]) {
            let si = 1.0 / (1.0 + (-xi).exp());
            assert!((g - si * (1.0 - si)).abs() < 1e-12);
        }
    }

    #[test]
    fn unused_input_gets_zero_gradient() {
        let t = Tape::new();
        let x = t.input(vec![1.0]);
        let unused = t.input(vec![4.0, 5.0]);
        let y = t.mul(x, x);
        let grads = t.backward(y, &[x, unused], false);
        assert_eq!(grads[0].value(), vec![2.0]);
        assert_eq!(grads[1].value(), vec![0.0, 0.0]);
    }

    #[test]
    fn double_backward_gives_second_derivative() {
        // f(x) = x³ → f' = 3x², f'' = 6x
        let t = Tape::new();
        let x = t.input(vec![2.0]);
        let x2 = t.mul(x, x);
        let x3 = t.mul(x2, x);
        let g = t.backward(x3, &[x], true)[0];
        assert!((g.scalar_value() - 12.0).abs() < 1e-12);
        let gg = t.backward(g, &[x], false)[0];
        assert!(
            (gg.scalar_value() - 12.0 * 2.0 / 2.0).abs() < 1e-9
                || (gg.scalar_value() - 12.0).abs() < 1e-9,
            "f''(2) = 12, got {}",
            gg.scalar_value()
        );
    }

    #[test]
    fn hessian_vector_product_quadratic() {
        // f(θ) = ½ θᵀAθ with A = diag(2, 6) via elementwise ops:
        // f = 1·θ₀² + 3·θ₁². H = diag(2, 6), so H·v is exact.
        let t = Tape::new();
        let theta = t.input(vec![0.7, -0.3]);
        let coef = t.constant(vec![1.0, 3.0]);
        let sq = t.mul(theta, theta);
        let weighted = t.mul(sq, coef);
        let f = t.sum(weighted);
        let g = t.backward(f, &[theta], true)[0];
        // g = [2θ₀, 6θ₁]
        let gv = g.value();
        assert!((gv[0] - 1.4).abs() < 1e-12);
        assert!((gv[1] + 1.8).abs() < 1e-12);
        // HVP with v = [1, 1]: backward of g·v.
        let v = t.constant(vec![1.0, 1.0]);
        let gdotv = t.dot(g, v);
        let hv = t.backward(gdotv, &[theta], false)[0];
        assert_eq!(hv.value(), vec![2.0, 6.0]);
    }

    #[test]
    fn divide_matches_reciprocal() {
        let t = Tape::new();
        let a = t.input(vec![3.0]);
        let b = t.input(vec![4.0]);
        let q = t.divide(a, b);
        assert!((q.scalar_value() - 0.75).abs() < 1e-12);
        let grads = t.backward(q, &[a, b], false);
        assert!((grads[0].scalar_value() - 0.25).abs() < 1e-12);
        assert!((grads[1].scalar_value() + 3.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn softplus_is_stable_at_extremes() {
        let t = Tape::new();
        let x = t.input(vec![800.0, -800.0]);
        let s = t.softplus(x);
        let v = s.value();
        assert!((v[0] - 800.0).abs() < 1e-9);
        assert!(v[1].abs() < 1e-9);
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    #[should_panic(expected = "scalar output")]
    fn backward_rejects_vector_output() {
        let t = Tape::new();
        let x = t.input(vec![1.0, 2.0]);
        let _ = t.backward(x, &[x], false);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn binary_op_rejects_mismatched_shapes() {
        let t = Tape::new();
        let a = t.input(vec![1.0, 2.0]);
        let b = t.input(vec![1.0, 2.0, 3.0]);
        let _ = t.add(a, b);
    }

    #[test]
    fn exp_ln_sqrt_first_and_second_order_match_formulas() {
        // f(x) = exp(x) + ln(x) + sqrt(x):
        // f'  = exp(x) + 1/x + 1/(2 sqrt x)
        // f'' = exp(x) - 1/x^2 - 1/(4 x^{3/2})
        let t = Tape::new();
        let x0 = 1.7f64;
        let x = t.input(vec![x0]);
        let e = t.exp(x);
        let l = t.ln(x);
        let s = t.sqrt(x);
        let el = t.add(e, l);
        let f = t.add(el, s);
        let g = t.backward(f, &[x], true)[0];
        let expect_g = x0.exp() + 1.0 / x0 + 0.5 / x0.sqrt();
        assert!((g.scalar_value() - expect_g).abs() < 1e-10);
        let gg = t.backward(g, &[x], false)[0];
        let expect_gg = x0.exp() - 1.0 / (x0 * x0) - 0.25 / x0.powf(1.5);
        assert!(
            (gg.scalar_value() - expect_gg).abs() < 1e-8,
            "f''({x0}) = {expect_gg}, got {}",
            gg.scalar_value()
        );
    }

    #[test]
    fn sigmoid_second_derivative_via_double_backward() {
        // σ'' = σ(1-σ)(1-2σ)
        let t = Tape::new();
        let x0 = 0.4f64;
        let x = t.input(vec![x0]);
        let s = t.sigmoid(x);
        let sum = t.sum(s);
        let g = t.backward(sum, &[x], true)[0];
        let gsum = t.sum(g);
        let gg = t.backward(gsum, &[x], false)[0];
        let si = 1.0 / (1.0 + (-x0).exp());
        let expect = si * (1.0 - si) * (1.0 - 2.0 * si);
        assert!(
            (gg.scalar_value() - expect).abs() < 1e-10,
            "sigma''({x0}) = {expect}, got {}",
            gg.scalar_value()
        );
    }

    #[test]
    fn broadcast_grad_through_dot_roundtrip() {
        // y = (c·1ₙ) · v where c is a learned scalar: dy/dc = sum(v).
        let t = Tape::new();
        let c = t.input(vec![2.0]);
        let v = t.constant(vec![1.0, 2.0, 3.0]);
        let b = t.broadcast(c, 3);
        let y = t.dot(b, v);
        assert_eq!(y.scalar_value(), 12.0);
        let g = t.backward(y, &[c], false)[0];
        assert_eq!(g.scalar_value(), 6.0);
    }

    #[test]
    fn tape_len_counts_nodes() {
        let t = Tape::new();
        assert!(t.is_empty());
        let a = t.input(vec![1.0]);
        let b = t.input(vec![2.0]);
        let _ = t.add(a, b);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn mean_is_sum_over_n() {
        let t = Tape::new();
        let x = t.input(vec![1.0, 2.0, 3.0, 6.0]);
        let m = t.mean(x);
        assert_eq!(m.scalar_value(), 3.0);
        let g = t.backward(m, &[x], false)[0];
        assert_eq!(g.value(), vec![0.25; 4]);
    }
}
