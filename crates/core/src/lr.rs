//! Logistic regression over multi-hot features, with the closed-form
//! quantities meta-learning needs.
//!
//! The model is exactly the paper's Eq. (2): `ŷ = σ(θᵀx)` with `x` the
//! multi-hot GBDT encoding. Besides the loss and gradient, this module
//! provides the **Hessian-vector product**
//! `H·v = 1/n Σ σ'(θᵀxᵢ)(xᵢᵀv)xᵢ (+ reg·v)`, which makes the meta-IRM
//! outer gradient exact without a tape: the Jacobian of the inner step
//! `θ̄ = θ − α∇R(θ)` is `I − αH(θ)`, so back-propagating a vector `u`
//! through the inner step costs one HVP.
//!
//! These are the **serial reference kernels**; the trainers' hot paths
//! run the fused, chunked-parallel equivalents in [`crate::kernels`],
//! which are tested to match these bit-for-bit on a single chunk.

use crate::sparse::MultiHotMatrix;
use serde::{Deserialize, Serialize};

/// Numerically-stable logistic function.
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// A trained LR model (weights over the multi-hot feature space).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LrModel {
    /// θ — one weight per GBDT leaf.
    pub weights: Vec<f64>,
}

impl LrModel {
    /// Zero-initialized model of the given dimension.
    pub fn zeros(n_cols: usize) -> Self {
        LrModel {
            weights: vec![0.0; n_cols],
        }
    }

    /// Logit for one row.
    pub fn logit(&self, x: &MultiHotMatrix, row: usize) -> f64 {
        x.dot_row(row, &self.weights)
    }

    /// Default probability for one row.
    pub fn predict_row(&self, x: &MultiHotMatrix, row: usize) -> f64 {
        sigmoid(self.logit(x, row))
    }

    /// Default probabilities for every row, batched on the parallel
    /// scoring kernel.
    pub fn predict(&self, x: &MultiHotMatrix) -> Vec<f64> {
        let rows: Vec<u32> = (0..x.n_rows() as u32).collect();
        self.predict_rows(x, &rows)
    }

    /// Probabilities for a subset of rows, in subset order, batched on
    /// the parallel scoring kernel.
    pub fn predict_rows(&self, x: &MultiHotMatrix, rows: &[u32]) -> Vec<f64> {
        crate::kernels::predict_rows(&self.weights, x, rows)
    }
}

/// Mean binary cross entropy of `θ` over the given rows (paper Eq. (4)),
/// plus `reg/2 · ‖θ‖²`.
///
/// # Panics
///
/// Panics when `rows` is empty — callers must skip empty environments.
pub fn env_loss(theta: &[f64], x: &MultiHotMatrix, labels: &[u8], rows: &[u32], reg: f64) -> f64 {
    assert!(!rows.is_empty(), "loss over an empty environment");
    let mut total = 0.0;
    for &r in rows {
        let z = x.dot_row(r as usize, theta);
        let y = labels[r as usize] as f64;
        // Stable BCE-with-logits: softplus(z) − y z.
        let softplus = if z > 0.0 {
            z + (-z).exp().ln_1p()
        } else {
            z.exp().ln_1p()
        };
        total += softplus - y * z;
    }
    let mut loss = total / rows.len() as f64;
    if reg > 0.0 {
        loss += reg / 2.0 * theta.iter().map(|w| w * w).sum::<f64>();
    }
    loss
}

/// Gradient of [`env_loss`]: `1/n Σ (σ(θᵀxᵢ) − yᵢ) xᵢ + reg·θ`.
///
/// Writes into `out` (zeroed first) to let hot loops reuse buffers.
pub fn env_grad(
    theta: &[f64],
    x: &MultiHotMatrix,
    labels: &[u8],
    rows: &[u32],
    reg: f64,
    out: &mut [f64],
) {
    assert!(!rows.is_empty(), "gradient over an empty environment");
    debug_assert_eq!(out.len(), theta.len());
    out.fill(0.0);
    let inv_n = 1.0 / rows.len() as f64;
    for &r in rows {
        let r = r as usize;
        let z = x.dot_row(r, theta);
        let coef = (sigmoid(z) - labels[r] as f64) * inv_n;
        x.scatter_add(r, coef, out);
    }
    if reg > 0.0 {
        for (o, &w) in out.iter_mut().zip(theta) {
            *o += reg * w;
        }
    }
}

/// Hessian-vector product of [`env_loss`] at `theta` applied to `v`:
/// `H·v = 1/n Σ pᵢ(1−pᵢ)(xᵢᵀv) xᵢ + reg·v`.
pub fn env_hvp(
    theta: &[f64],
    x: &MultiHotMatrix,
    labels: &[u8],
    rows: &[u32],
    reg: f64,
    v: &[f64],
    out: &mut [f64],
) {
    let _ = labels; // the logloss Hessian does not involve the labels
    assert!(!rows.is_empty(), "HVP over an empty environment");
    debug_assert_eq!(out.len(), theta.len());
    debug_assert_eq!(v.len(), theta.len());
    out.fill(0.0);
    let inv_n = 1.0 / rows.len() as f64;
    for &r in rows {
        let r = r as usize;
        let z = x.dot_row(r, theta);
        let p = sigmoid(z);
        let xv = x.dot_row(r, v);
        let coef = p * (1.0 - p) * xv * inv_n;
        x.scatter_add(r, coef, out);
    }
    if reg > 0.0 {
        for (o, &vi) in out.iter_mut().zip(v) {
            *o += reg * vi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 6 rows, 2 nnz, 4 cols; labels chosen so classes are mixed.
    fn demo() -> (MultiHotMatrix, Vec<u8>) {
        let x = MultiHotMatrix::new(vec![0, 1, 1, 2, 2, 3, 0, 3, 0, 2, 1, 3], 2, 4).unwrap();
        let y = vec![1, 0, 1, 0, 1, 0];
        (x, y)
    }

    fn all_rows(n: usize) -> Vec<u32> {
        (0..n as u32).collect()
    }

    #[test]
    fn zero_weights_give_half_probability() {
        let (x, _) = demo();
        let model = LrModel::zeros(4);
        for p in model.predict(&x) {
            assert!((p - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn loss_at_zero_is_ln2() {
        let (x, y) = demo();
        let theta = vec![0.0; 4];
        let loss = env_loss(&theta, &x, &y, &all_rows(6), 0.0);
        assert!((loss - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn grad_matches_finite_difference() {
        let (x, y) = demo();
        let theta = vec![0.3, -0.5, 0.2, 0.9];
        let rows = all_rows(6);
        for reg in [0.0, 0.7] {
            let mut grad = vec![0.0; 4];
            env_grad(&theta, &x, &y, &rows, reg, &mut grad);
            let eps = 1e-6;
            for i in 0..4 {
                let mut plus = theta.clone();
                plus[i] += eps;
                let mut minus = theta.clone();
                minus[i] -= eps;
                let fd = (env_loss(&plus, &x, &y, &rows, reg)
                    - env_loss(&minus, &x, &y, &rows, reg))
                    / (2.0 * eps);
                assert!(
                    (grad[i] - fd).abs() < 1e-8,
                    "grad[{i}] {} vs fd {fd} (reg {reg})",
                    grad[i]
                );
            }
        }
    }

    #[test]
    fn hvp_matches_finite_difference_of_grad() {
        let (x, y) = demo();
        let theta = vec![0.1, 0.4, -0.6, 0.2];
        let v = vec![1.0, -0.5, 0.25, 2.0];
        let rows = all_rows(6);
        for reg in [0.0, 0.3] {
            let mut hv = vec![0.0; 4];
            env_hvp(&theta, &x, &y, &rows, reg, &v, &mut hv);
            let eps = 1e-6;
            let plus: Vec<f64> = theta.iter().zip(&v).map(|(t, d)| t + eps * d).collect();
            let minus: Vec<f64> = theta.iter().zip(&v).map(|(t, d)| t - eps * d).collect();
            let mut gp = vec![0.0; 4];
            let mut gm = vec![0.0; 4];
            env_grad(&plus, &x, &y, &rows, reg, &mut gp);
            env_grad(&minus, &x, &y, &rows, reg, &mut gm);
            for i in 0..4 {
                let fd = (gp[i] - gm[i]) / (2.0 * eps);
                assert!(
                    (hv[i] - fd).abs() < 1e-7,
                    "hvp[{i}] {} vs fd {fd} (reg {reg})",
                    hv[i]
                );
            }
        }
    }

    #[test]
    fn grad_and_hvp_agree_with_autodiff_engine() {
        // Cross-check the closed-form fast path against the generic tape.
        use lightmirm_autodiff::{functional::lr_loss, Tape};
        let (x, y) = demo();
        let rows = all_rows(6);
        let theta = vec![0.25, -0.4, 0.15, 0.6];
        let reg = 0.2;
        let dense = x.densify();
        let y_f: Vec<f64> = y.iter().map(|&l| l as f64).collect();

        let mut grad = vec![0.0; 4];
        env_grad(&theta, &x, &y, &rows, reg, &mut grad);
        let mut hv = vec![0.0; 4];
        let v = vec![0.3, 0.3, -1.0, 0.5];
        env_hvp(&theta, &x, &y, &rows, reg, &v, &mut hv);

        let tape = Tape::new();
        let th = tape.input(theta.clone());
        let loss = lr_loss(&tape, &dense, 6, 4, th, &y_f, reg);
        let g = tape.backward(loss, &[th], true)[0];
        for (a, b) in grad.iter().zip(g.value()) {
            assert!((a - b).abs() < 1e-10, "grad {a} vs tape {b}");
        }
        let vv = tape.constant(v.clone());
        let gv = tape.dot(g, vv);
        let tape_hv = tape.backward(gv, &[th], false)[0].value();
        for (a, b) in hv.iter().zip(tape_hv) {
            assert!((a - b).abs() < 1e-10, "hvp {a} vs tape {b}");
        }
    }

    #[test]
    fn loss_decreases_along_negative_gradient() {
        let (x, y) = demo();
        let rows = all_rows(6);
        let theta = vec![0.5, -0.5, 0.5, -0.5];
        let mut grad = vec![0.0; 4];
        env_grad(&theta, &x, &y, &rows, 0.0, &mut grad);
        let stepped: Vec<f64> = theta.iter().zip(&grad).map(|(t, g)| t - 0.1 * g).collect();
        assert!(env_loss(&stepped, &x, &y, &rows, 0.0) < env_loss(&theta, &x, &y, &rows, 0.0));
    }

    #[test]
    fn subset_rows_are_respected() {
        let (x, y) = demo();
        let theta = vec![0.3, 0.1, -0.2, 0.4];
        let full = env_loss(&theta, &x, &y, &all_rows(6), 0.0);
        let sub = env_loss(&theta, &x, &y, &[0, 1, 2], 0.0);
        assert!((full - sub).abs() > 1e-6, "subset should change the loss");
    }

    #[test]
    #[should_panic(expected = "empty environment")]
    fn empty_rows_panic() {
        let (x, y) = demo();
        let _ = env_loss(&[0.0; 4], &x, &y, &[], 0.0);
    }

    #[test]
    fn predict_rows_subset_order() {
        let (x, _) = demo();
        let model = LrModel {
            weights: vec![1.0, 2.0, 3.0, 4.0],
        };
        let ps = model.predict_rows(&x, &[3, 0]);
        assert!((ps[0] - sigmoid(5.0)).abs() < 1e-12); // row 3 touches cols 0,3
        assert!((ps[1] - sigmoid(3.0)).abs() < 1e-12); // row 0 touches cols 0,1
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn instance() -> impl Strategy<Value = (MultiHotMatrix, Vec<u8>, Vec<f64>)> {
            (2usize..12, 0u64..200).prop_map(|(rows, seed)| {
                let n_cols = 6;
                let nnz = 2;
                let idx: Vec<u32> = (0..rows * nnz)
                    .map(|i| {
                        let h = (i as u64 + 1).wrapping_mul(seed + 0x9E3779B9);
                        (h % n_cols as u64) as u32
                    })
                    .collect();
                let x = MultiHotMatrix::new(idx, nnz, n_cols).unwrap();
                let y: Vec<u8> = (0..rows).map(|i| ((i as u64 + seed) % 2) as u8).collect();
                let theta: Vec<f64> = (0..n_cols)
                    .map(|i| ((i as f64) * 0.31 - 0.8) * ((seed % 5) as f64 * 0.2 + 0.2))
                    .collect();
                (x, y, theta)
            })
        }

        proptest! {
            #[test]
            fn gradcheck((x, y, theta) in instance()) {
                let rows: Vec<u32> = (0..x.n_rows() as u32).collect();
                let mut grad = vec![0.0; theta.len()];
                env_grad(&theta, &x, &y, &rows, 0.1, &mut grad);
                let eps = 1e-6;
                for i in 0..theta.len() {
                    let mut p = theta.clone();
                    p[i] += eps;
                    let mut m = theta.clone();
                    m[i] -= eps;
                    let fd = (env_loss(&p, &x, &y, &rows, 0.1)
                        - env_loss(&m, &x, &y, &rows, 0.1)) / (2.0 * eps);
                    prop_assert!((grad[i] - fd).abs() < 1e-7);
                }
            }

            #[test]
            fn loss_is_nonnegative_without_reg((x, y, theta) in instance()) {
                let rows: Vec<u32> = (0..x.n_rows() as u32).collect();
                prop_assert!(env_loss(&theta, &x, &y, &rows, 0.0) >= 0.0);
            }

            #[test]
            fn hessian_is_positive_semidefinite((x, y, theta) in instance()) {
                // vᵀHv >= 0 for the logloss Hessian.
                let rows: Vec<u32> = (0..x.n_rows() as u32).collect();
                let v: Vec<f64> = (0..theta.len()).map(|i| (i as f64) - 2.0).collect();
                let mut hv = vec![0.0; theta.len()];
                env_hvp(&theta, &x, &y, &rows, 0.0, &v, &mut hv);
                let vhv: f64 = v.iter().zip(&hv).map(|(a, b)| a * b).sum();
                prop_assert!(vhv >= -1e-10);
            }
        }
    }
}
