//! Fused, parallel logistic-regression kernels.
//!
//! The trainers' hot path is dominated by three row-loop primitives over
//! the multi-hot matrix: the environment loss (forward), its gradient
//! (backward), and the Hessian-vector product. This module provides
//!
//! 1. **Fused single-pass kernels** — [`env_loss_grad`] computes the loss
//!    and the gradient from one `θᵀx` evaluation per row (the separate
//!    [`crate::lr::env_loss`] + [`crate::lr::env_grad`] pair computes the
//!    same logit twice), and [`env_loss_grad_cached`] additionally records
//!    the per-row logits so the outer-loop HVP at the same `θ` can skip
//!    its own logit pass via [`hvp_from_logits`];
//! 2. **Deterministic chunked execution** — every reduction splits the row
//!    slice at fixed [`CHUNK_ROWS`] boundaries, accumulates each chunk
//!    sequentially into chunk-local scratch, and merges the chunk results
//!    **sequentially in chunk order**. The reduction tree therefore
//!    depends only on the data, never on the parallel schedule, and the
//!    output is bit-identical for any thread count (including 1);
//! 3. A [`ScratchPool`] of per-environment buffers (`θ̄`, gradient, `u`,
//!    HVP, logit cache) so the env-parallel trainers allocate once per
//!    `fit` instead of once per epoch.
//!
//! The single-chunk case (`rows.len() <= CHUNK_ROWS`, which covers every
//! per-province environment in the default experiments) runs the exact
//! floating-point operation sequence of the serial reference kernels in
//! [`crate::lr`], so fusing is a pure execution-cost optimization: the
//! trainers' numeric trajectories are unchanged.

use crate::lr::sigmoid;
use crate::sparse::MultiHotMatrix;
use rayon::prelude::*;

/// Fixed chunk size of every parallel row reduction. Chunk boundaries are
/// a function of the row count alone, which is what makes the merge order
/// (and hence the result) independent of the thread count.
pub const CHUNK_ROWS: usize = 4096;

/// Kernel-layer metric handles, resolved once. Only the fused trainer
/// kernels record (per-call reduction latency + chunk counts); the
/// sites are gated on `obs::enabled()` so they fold away without the
/// `obs` feature.
struct KernelObs {
    fused_ns: crate::obs::HistogramHandle,
    fused_chunks: crate::obs::Counter,
    scratch_pools: crate::obs::Counter,
    scratch_allocs: crate::obs::Counter,
}

fn kobs() -> &'static KernelObs {
    static KOBS: std::sync::OnceLock<KernelObs> = std::sync::OnceLock::new();
    KOBS.get_or_init(|| {
        let reg = crate::obs::registry();
        KernelObs {
            fused_ns: reg.histogram("kernel_reduce_ns", &[("kernel", "fused")]),
            fused_chunks: reg.counter("kernel_reduce_chunks_total", &[("kernel", "fused")]),
            scratch_pools: reg.counter("kernel_scratch_pools_total", &[]),
            scratch_allocs: reg.counter("kernel_scratch_allocs_total", &[]),
        }
    })
}

/// One chunk of the fused forward+backward pass: accumulates the
/// unnormalized loss sum and the `inv_n`-scaled gradient over
/// `chunk_rows`, optionally recording each row's logit.
fn fused_chunk(
    theta: &[f64],
    x: &MultiHotMatrix,
    labels: &[u8],
    chunk_rows: &[u32],
    inv_n: f64,
    grad: &mut [f64],
    mut logits: Option<&mut [f64]>,
) -> f64 {
    let mut total = 0.0;
    for (k, &r) in chunk_rows.iter().enumerate() {
        let r = r as usize;
        let z = x.dot_row(r, theta);
        if let Some(ls) = logits.as_deref_mut() {
            ls[k] = z;
        }
        let y = labels[r] as f64;
        // Stable BCE-with-logits: softplus(z) − y z.
        let softplus = if z > 0.0 {
            z + (-z).exp().ln_1p()
        } else {
            z.exp().ln_1p()
        };
        total += softplus - y * z;
        let coef = (sigmoid(z) - y) * inv_n;
        x.scatter_add(r, coef, grad);
    }
    total
}

/// Apply the L2 terms and normalization shared by loss and gradient.
fn finish_loss_grad(total: f64, n_rows: usize, theta: &[f64], reg: f64, grad: &mut [f64]) -> f64 {
    if reg > 0.0 {
        for (g, &w) in grad.iter_mut().zip(theta) {
            *g += reg * w;
        }
    }
    let mut loss = total / n_rows as f64;
    if reg > 0.0 {
        loss += reg / 2.0 * theta.iter().map(|w| w * w).sum::<f64>();
    }
    loss
}

/// Fused `env_loss` + `env_grad`: one logit evaluation per row feeds both
/// the loss sum and the gradient scatter. Returns the loss; writes the
/// gradient into `grad_out` (zeroed first).
///
/// Rows are processed in fixed [`CHUNK_ROWS`] chunks, in parallel, with
/// the chunk partials merged in chunk order — the result is bit-identical
/// for any thread count, and for `rows.len() <= CHUNK_ROWS` bit-identical
/// to the serial reference pair.
///
/// # Panics
///
/// Panics when `rows` is empty — callers must skip empty environments.
pub fn env_loss_grad(
    theta: &[f64],
    x: &MultiHotMatrix,
    labels: &[u8],
    rows: &[u32],
    reg: f64,
    grad_out: &mut [f64],
) -> f64 {
    assert!(!rows.is_empty(), "loss over an empty environment");
    debug_assert_eq!(grad_out.len(), theta.len());
    grad_out.fill(0.0);
    let t0 = if crate::obs::enabled() {
        Some(std::time::Instant::now())
    } else {
        None
    };
    let inv_n = 1.0 / rows.len() as f64;
    let loss = if rows.len() <= CHUNK_ROWS {
        let total = fused_chunk(theta, x, labels, rows, inv_n, grad_out, None);
        finish_loss_grad(total, rows.len(), theta, reg, grad_out)
    } else {
        let partials: Vec<(f64, Vec<f64>)> = rows
            .par_chunks(CHUNK_ROWS)
            .map(|chunk| {
                let mut g = vec![0.0; theta.len()];
                let s = fused_chunk(theta, x, labels, chunk, inv_n, &mut g, None);
                (s, g)
            })
            .collect();
        let total = merge_partials(partials, grad_out);
        finish_loss_grad(total, rows.len(), theta, reg, grad_out)
    };
    if let Some(t0) = t0 {
        let k = kobs();
        k.fused_ns.record_duration(t0.elapsed());
        k.fused_chunks.add(rows.len().div_ceil(CHUNK_ROWS) as u64);
    }
    loss
}

/// [`env_loss_grad`] that additionally writes `θᵀx` of each row into
/// `logits_out` (position-aligned with `rows`), for reuse by
/// [`hvp_from_logits`] at the same `θ` over the same rows.
///
/// # Panics
///
/// Panics when `rows` is empty or `logits_out.len() != rows.len()`.
pub fn env_loss_grad_cached(
    theta: &[f64],
    x: &MultiHotMatrix,
    labels: &[u8],
    rows: &[u32],
    reg: f64,
    grad_out: &mut [f64],
    logits_out: &mut [f64],
) -> f64 {
    assert!(!rows.is_empty(), "loss over an empty environment");
    assert_eq!(
        logits_out.len(),
        rows.len(),
        "logit cache must match the row count"
    );
    debug_assert_eq!(grad_out.len(), theta.len());
    grad_out.fill(0.0);
    let t0 = if crate::obs::enabled() {
        Some(std::time::Instant::now())
    } else {
        None
    };
    let inv_n = 1.0 / rows.len() as f64;
    let loss = if rows.len() <= CHUNK_ROWS {
        let total = fused_chunk(theta, x, labels, rows, inv_n, grad_out, Some(logits_out));
        finish_loss_grad(total, rows.len(), theta, reg, grad_out)
    } else {
        let partials: Vec<(f64, Vec<f64>)> = rows
            .par_chunks(CHUNK_ROWS)
            .zip(logits_out.par_chunks_mut(CHUNK_ROWS))
            .map(|(chunk, lchunk)| {
                let mut g = vec![0.0; theta.len()];
                let s = fused_chunk(theta, x, labels, chunk, inv_n, &mut g, Some(lchunk));
                (s, g)
            })
            .collect();
        let total = merge_partials(partials, grad_out);
        finish_loss_grad(total, rows.len(), theta, reg, grad_out)
    };
    if let Some(t0) = t0 {
        let k = kobs();
        k.fused_ns.record_duration(t0.elapsed());
        k.fused_chunks.add(rows.len().div_ceil(CHUNK_ROWS) as u64);
    }
    loss
}

/// Ordered merge of chunk partials: chunk order, not completion order.
fn merge_partials(partials: Vec<(f64, Vec<f64>)>, out: &mut [f64]) -> f64 {
    let mut total = 0.0;
    for (s, g) in &partials {
        total += s;
        for (o, &gi) in out.iter_mut().zip(g) {
            *o += gi;
        }
    }
    total
}

/// Parallel chunked environment loss (forward only), matching
/// [`crate::lr::env_loss`] bit-for-bit on a single chunk.
///
/// # Panics
///
/// Panics when `rows` is empty.
pub fn env_loss(theta: &[f64], x: &MultiHotMatrix, labels: &[u8], rows: &[u32], reg: f64) -> f64 {
    assert!(!rows.is_empty(), "loss over an empty environment");
    let loss_chunk = |chunk: &[u32]| -> f64 {
        let mut total = 0.0;
        for &r in chunk {
            let z = x.dot_row(r as usize, theta);
            let y = labels[r as usize] as f64;
            let softplus = if z > 0.0 {
                z + (-z).exp().ln_1p()
            } else {
                z.exp().ln_1p()
            };
            total += softplus - y * z;
        }
        total
    };
    let total = if rows.len() <= CHUNK_ROWS {
        loss_chunk(rows)
    } else {
        let partials: Vec<f64> = rows.par_chunks(CHUNK_ROWS).map(loss_chunk).collect();
        partials.iter().sum() // chunk order
    };
    let mut loss = total / rows.len() as f64;
    if reg > 0.0 {
        loss += reg / 2.0 * theta.iter().map(|w| w * w).sum::<f64>();
    }
    loss
}

/// Parallel chunked gradient (backward only), matching
/// [`crate::lr::env_grad`] bit-for-bit on a single chunk.
///
/// # Panics
///
/// Panics when `rows` is empty.
pub fn env_grad(
    theta: &[f64],
    x: &MultiHotMatrix,
    labels: &[u8],
    rows: &[u32],
    reg: f64,
    out: &mut [f64],
) {
    assert!(!rows.is_empty(), "gradient over an empty environment");
    debug_assert_eq!(out.len(), theta.len());
    out.fill(0.0);
    let inv_n = 1.0 / rows.len() as f64;
    let grad_chunk = |chunk: &[u32], g: &mut [f64]| {
        for &r in chunk {
            let r = r as usize;
            let z = x.dot_row(r, theta);
            let coef = (sigmoid(z) - labels[r] as f64) * inv_n;
            x.scatter_add(r, coef, g);
        }
    };
    if rows.len() <= CHUNK_ROWS {
        grad_chunk(rows, out);
    } else {
        let partials: Vec<Vec<f64>> = rows
            .par_chunks(CHUNK_ROWS)
            .map(|chunk| {
                let mut g = vec![0.0; theta.len()];
                grad_chunk(chunk, &mut g);
                g
            })
            .collect();
        for g in &partials {
            for (o, &gi) in out.iter_mut().zip(g) {
                *o += gi;
            }
        }
    }
    if reg > 0.0 {
        for (o, &w) in out.iter_mut().zip(theta) {
            *o += reg * w;
        }
    }
}

/// Hessian-vector product reusing cached logits: with `zᵢ = θᵀxᵢ` already
/// known, `H·v = 1/n Σ σ(zᵢ)(1−σ(zᵢ))(xᵢᵀv) xᵢ + reg·v` needs only the
/// `xᵢᵀv` pass — half the sparse reads of [`crate::lr::env_hvp`].
///
/// `logits` must be position-aligned with `rows` (as produced by
/// [`env_loss_grad_cached`] at the same `θ`).
///
/// # Panics
///
/// Panics when `rows` is empty or `logits.len() != rows.len()`.
pub fn hvp_from_logits(
    logits: &[f64],
    x: &MultiHotMatrix,
    rows: &[u32],
    reg: f64,
    v: &[f64],
    out: &mut [f64],
) {
    assert!(!rows.is_empty(), "HVP over an empty environment");
    assert_eq!(
        logits.len(),
        rows.len(),
        "logit cache must match the row count"
    );
    debug_assert_eq!(out.len(), v.len());
    out.fill(0.0);
    let inv_n = 1.0 / rows.len() as f64;
    let hvp_chunk = |chunk: &[u32], lchunk: &[f64], h: &mut [f64]| {
        for (&r, &z) in chunk.iter().zip(lchunk) {
            let r = r as usize;
            let p = sigmoid(z);
            let xv = x.dot_row(r, v);
            let coef = p * (1.0 - p) * xv * inv_n;
            x.scatter_add(r, coef, h);
        }
    };
    if rows.len() <= CHUNK_ROWS {
        hvp_chunk(rows, logits, out);
    } else {
        let partials: Vec<Vec<f64>> = rows
            .par_chunks(CHUNK_ROWS)
            .zip(logits.par_chunks(CHUNK_ROWS))
            .map(|(chunk, lchunk)| {
                let mut h = vec![0.0; v.len()];
                hvp_chunk(chunk, lchunk, &mut h);
                h
            })
            .collect();
        for h in &partials {
            for (o, &hi) in out.iter_mut().zip(h) {
                *o += hi;
            }
        }
    }
    if reg > 0.0 {
        for (o, &vi) in out.iter_mut().zip(v) {
            *o += reg * vi;
        }
    }
}

/// Batch scoring: `out[k] = σ(θᵀx[rows[k]])`, row chunks in parallel.
/// Purely elementwise, so parallelism cannot affect the values.
///
/// # Panics
///
/// Panics when `out.len() != rows.len()`.
pub fn predict_rows_into(theta: &[f64], x: &MultiHotMatrix, rows: &[u32], out: &mut [f64]) {
    assert_eq!(out.len(), rows.len(), "output must match the row count");
    let score_chunk = |chunk: &[u32], ochunk: &mut [f64]| {
        for (o, &r) in ochunk.iter_mut().zip(chunk) {
            *o = sigmoid(x.dot_row(r as usize, theta));
        }
    };
    if rows.len() <= CHUNK_ROWS {
        score_chunk(rows, out);
        return;
    }
    rows.par_chunks(CHUNK_ROWS)
        .zip(out.par_chunks_mut(CHUNK_ROWS))
        .for_each(|(chunk, ochunk)| score_chunk(chunk, ochunk));
}

/// Allocating convenience wrapper over [`predict_rows_into`].
pub fn predict_rows(theta: &[f64], x: &MultiHotMatrix, rows: &[u32]) -> Vec<f64> {
    let mut out = vec![0.0; rows.len()];
    predict_rows_into(theta, x, rows, &mut out);
    out
}

/// Per-environment scratch buffers for the meta trainers: the inner-step
/// model `θ̄_m`, a gradient buffer, the meta-gradient `u`, an HVP buffer,
/// and the logit cache of the environment's rows.
#[derive(Debug, Clone)]
pub struct EnvScratch {
    /// Inner-step parameters `θ̄_m = θ − α∇R^m(θ)`.
    pub theta_bar: Vec<f64>,
    /// General-purpose gradient buffer (inner gradient, then reusable).
    pub grad: Vec<f64>,
    /// Meta-gradient `u = ∇_{θ̄} R_meta(θ̄_m)`, adjusted in place by the
    /// HVP chain term.
    pub u: Vec<f64>,
    /// Hessian-vector product buffer.
    pub hvp: Vec<f64>,
    /// `θᵀx` of every row of environment `m`, filled by the inner fused
    /// pass and reused by the outer HVP at the same `θ`.
    pub logits: Vec<f64>,
}

/// One [`EnvScratch`] per environment, allocated once per `fit` and
/// reused across epochs — replacing the per-epoch `Vec` allocations the
/// serial trainers made for `θ̄`, `u`, and the HVP buffer.
#[derive(Debug, Clone)]
pub struct ScratchPool {
    slots: Vec<EnvScratch>,
}

impl ScratchPool {
    /// Build a pool for environments with the given row counts, all
    /// parameter buffers sized `n_cols`.
    pub fn new(n_cols: usize, rows_per_env: &[usize]) -> Self {
        if crate::obs::enabled() {
            let k = kobs();
            k.scratch_pools.inc();
            k.scratch_allocs.add(rows_per_env.len() as u64);
        }
        ScratchPool {
            slots: rows_per_env
                .iter()
                .map(|&n| EnvScratch {
                    theta_bar: vec![0.0; n_cols],
                    grad: vec![0.0; n_cols],
                    u: vec![0.0; n_cols],
                    hvp: vec![0.0; n_cols],
                    logits: vec![0.0; n],
                })
                .collect(),
        }
    }

    /// Shared view of the per-environment slots.
    pub fn slots(&self) -> &[EnvScratch] {
        &self.slots
    }

    /// Mutable view of the per-environment slots (one per env, disjoint —
    /// safe to hand to an env-parallel loop).
    pub fn slots_mut(&mut self) -> &mut [EnvScratch] {
        &mut self.slots
    }

    /// Number of environments the pool serves.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lr;
    use rayon::ThreadPoolBuilder;

    /// Deterministic synthetic instance: `rows` multi-hot rows over
    /// `n_cols` columns with 2 active positions each.
    fn instance(rows: usize, n_cols: usize, seed: u64) -> (MultiHotMatrix, Vec<u8>, Vec<f64>) {
        let nnz = 2;
        let idx: Vec<u32> = (0..rows * nnz)
            .map(|i| {
                let h = (i as u64 + 1).wrapping_mul(seed.wrapping_add(0x9E37_79B9));
                (h % n_cols as u64) as u32
            })
            .collect();
        let x = MultiHotMatrix::new(idx, nnz, n_cols).unwrap();
        let y: Vec<u8> = (0..rows).map(|i| ((i as u64 + seed) % 2) as u8).collect();
        let theta: Vec<f64> = (0..n_cols)
            .map(|i| ((i as f64) * 0.31 - 0.8) * ((seed % 5) as f64 * 0.2 + 0.2))
            .collect();
        (x, y, theta)
    }

    fn all_rows(n: usize) -> Vec<u32> {
        (0..n as u32).collect()
    }

    #[test]
    fn fused_matches_separate_exactly_on_one_chunk() {
        let (x, y, theta) = instance(300, 16, 7);
        let rows = all_rows(300);
        for reg in [0.0, 0.3] {
            let mut fused_grad = vec![0.0; 16];
            let fused_loss = env_loss_grad(&theta, &x, &y, &rows, reg, &mut fused_grad);
            let sep_loss = lr::env_loss(&theta, &x, &y, &rows, reg);
            let mut sep_grad = vec![0.0; 16];
            lr::env_grad(&theta, &x, &y, &rows, reg, &mut sep_grad);
            // Single chunk: the exact same fp operation sequence.
            assert_eq!(fused_loss, sep_loss);
            assert_eq!(fused_grad, sep_grad);
        }
    }

    #[test]
    fn fused_matches_separate_across_chunks() {
        // 3 chunks: the merge reassociates the sums, so compare to 1e-12.
        let (x, y, theta) = instance(10_000, 32, 3);
        let rows = all_rows(10_000);
        let mut fused_grad = vec![0.0; 32];
        let fused_loss = env_loss_grad(&theta, &x, &y, &rows, 0.1, &mut fused_grad);
        let sep_loss = lr::env_loss(&theta, &x, &y, &rows, 0.1);
        let mut sep_grad = vec![0.0; 32];
        lr::env_grad(&theta, &x, &y, &rows, 0.1, &mut sep_grad);
        assert!((fused_loss - sep_loss).abs() < 1e-12);
        for (a, b) in fused_grad.iter().zip(&sep_grad) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn chunked_kernels_are_bitwise_identical_across_thread_counts() {
        let (x, y, theta) = instance(9_000, 24, 11);
        let rows = all_rows(9_000);
        let v: Vec<f64> = (0..24).map(|i| 0.1 * i as f64 - 1.0).collect();
        let run = |threads: usize| {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| {
                let mut grad = vec![0.0; 24];
                let mut logits = vec![0.0; rows.len()];
                let loss =
                    env_loss_grad_cached(&theta, &x, &y, &rows, 0.05, &mut grad, &mut logits);
                let mut hvp = vec![0.0; 24];
                hvp_from_logits(&logits, &x, &rows, 0.05, &v, &mut hvp);
                let preds = predict_rows(&theta, &x, &rows);
                (loss, grad, logits, hvp, preds)
            })
        };
        let serial = run(1);
        for threads in [2, 3, 5] {
            let parallel = run(threads);
            assert_eq!(serial.0, parallel.0, "loss differs at {threads} threads");
            assert_eq!(serial.1, parallel.1, "grad differs at {threads} threads");
            assert_eq!(serial.2, parallel.2, "logits differ at {threads} threads");
            assert_eq!(serial.3, parallel.3, "hvp differs at {threads} threads");
            assert_eq!(serial.4, parallel.4, "preds differ at {threads} threads");
        }
    }

    #[test]
    fn cached_hvp_matches_reference_hvp() {
        let (x, y, theta) = instance(500, 12, 9);
        let rows = all_rows(500);
        let v: Vec<f64> = (0..12).map(|i| (i as f64) * 0.2 - 1.1).collect();
        let mut grad = vec![0.0; 12];
        let mut logits = vec![0.0; 500];
        env_loss_grad_cached(&theta, &x, &y, &rows, 0.2, &mut grad, &mut logits);
        let mut cached = vec![0.0; 12];
        hvp_from_logits(&logits, &x, &rows, 0.2, &v, &mut cached);
        let mut reference = vec![0.0; 12];
        lr::env_hvp(&theta, &x, &y, &rows, 0.2, &v, &mut reference);
        assert_eq!(cached, reference);
    }

    #[test]
    fn chunked_loss_and_grad_match_reference() {
        let (x, y, theta) = instance(6_000, 20, 13);
        let rows = all_rows(6_000);
        assert!(
            (env_loss(&theta, &x, &y, &rows, 0.1) - lr::env_loss(&theta, &x, &y, &rows, 0.1))
                .abs()
                .le(&1e-12)
        );
        let mut chunked = vec![0.0; 20];
        env_grad(&theta, &x, &y, &rows, 0.1, &mut chunked);
        let mut reference = vec![0.0; 20];
        lr::env_grad(&theta, &x, &y, &rows, 0.1, &mut reference);
        for (a, b) in chunked.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn predict_rows_matches_model_predictions() {
        let (x, _, theta) = instance(200, 10, 4);
        let model = lr::LrModel {
            weights: theta.clone(),
        };
        let rows: Vec<u32> = vec![5, 0, 199, 42];
        assert_eq!(
            predict_rows(&theta, &x, &rows),
            model.predict_rows(&x, &rows)
        );
    }

    #[test]
    fn scratch_pool_shapes_follow_environments() {
        let pool = ScratchPool::new(8, &[100, 3, 77]);
        assert_eq!(pool.len(), 3);
        assert!(!pool.is_empty());
        assert_eq!(pool.slots()[0].logits.len(), 100);
        assert_eq!(pool.slots()[2].logits.len(), 77);
        assert_eq!(pool.slots()[1].theta_bar.len(), 8);
        assert_eq!(pool.slots()[1].hvp.len(), 8);
    }

    #[test]
    #[should_panic(expected = "empty environment")]
    fn fused_rejects_empty_rows() {
        let (x, y, theta) = instance(10, 8, 1);
        let mut g = vec![0.0; 8];
        let _ = env_loss_grad(&theta, &x, &y, &[], 0.0, &mut g);
    }

    #[test]
    #[should_panic(expected = "logit cache")]
    fn cached_hvp_rejects_misaligned_cache() {
        let (x, _, theta) = instance(10, 8, 1);
        let mut out = vec![0.0; 8];
        hvp_from_logits(&[0.0; 3], &x, &[0, 1], 0.0, &theta, &mut out);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn strat() -> impl Strategy<Value = (MultiHotMatrix, Vec<u8>, Vec<f64>)> {
            (2usize..40, 0u64..200).prop_map(|(rows, seed)| instance(rows, 6, seed))
        }

        proptest! {
            #[test]
            fn fused_equals_separate((x, y, theta) in strat()) {
                let rows: Vec<u32> = (0..x.n_rows() as u32).collect();
                for reg in [0.0, 0.25] {
                    let mut fused_grad = vec![0.0; theta.len()];
                    let fused_loss =
                        env_loss_grad(&theta, &x, &y, &rows, reg, &mut fused_grad);
                    let sep_loss = lr::env_loss(&theta, &x, &y, &rows, reg);
                    let mut sep_grad = vec![0.0; theta.len()];
                    lr::env_grad(&theta, &x, &y, &rows, reg, &mut sep_grad);
                    prop_assert!((fused_loss - sep_loss).abs() < 1e-12);
                    for (a, b) in fused_grad.iter().zip(&sep_grad) {
                        prop_assert!((a - b).abs() < 1e-12);
                    }
                }
            }
        }
    }
}
