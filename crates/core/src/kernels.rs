//! Fused, parallel logistic-regression kernels.
//!
//! The trainers' hot path is dominated by three row-loop primitives over
//! the multi-hot matrix: the environment loss (forward), its gradient
//! (backward), and the Hessian-vector product. This module provides
//!
//! 1. **Fused single-pass kernels** — [`env_loss_grad`] computes the loss
//!    and the gradient from one `θᵀx` evaluation per row (the separate
//!    [`crate::lr::env_loss`] + [`crate::lr::env_grad`] pair computes the
//!    same logit twice), and [`env_loss_grad_cached`] additionally records
//!    the per-row logits so the outer-loop HVP at the same `θ` can skip
//!    its own logit pass via [`hvp_from_logits`];
//! 2. **Vectorized row-block execution** — the default
//!    [`crate::simd::Backend::Simd`] backend walks each chunk in
//!    [`crate::simd::BLOCK_ROWS`]-row blocks: the touched weights are
//!    gathered into contiguous aligned lanes
//!    ([`MultiHotMatrix::gather_block`]) and the per-row `θᵀx` sums run as
//!    eight independent accumulator chains
//!    ([`crate::simd::accumulate_lanes`]) — vector adds across rows, with
//!    a scalar tail for the last `rows.len() % BLOCK_ROWS` rows. Per-row
//!    operation sequences are unchanged, so the blocked kernels are
//!    **bit-identical** to the scalar backend and to the serial reference
//!    in [`crate::lr`] (see [`crate::simd`] for the contract, and
//!    `crates/core/tests/simd_kernels.rs` for the proof);
//! 3. **Deterministic chunked execution** — every reduction splits the row
//!    slice at fixed [`CHUNK_ROWS`] boundaries, accumulates each chunk
//!    sequentially into chunk-local scratch, and merges the chunk results
//!    **sequentially in chunk order**. The reduction tree therefore
//!    depends only on the data, never on the parallel schedule, and the
//!    output is bit-identical for any thread count (including 1);
//! 4. A [`ScratchPool`] of per-environment buffers (`θ̄`, gradient, `u`,
//!    HVP, logit cache) — all 64-byte-aligned [`AlignedVec`]s — so the
//!    env-parallel trainers allocate once per `fit` instead of once per
//!    epoch.
//!
//! Every dispatching kernel has an `_on` sibling taking an explicit
//! [`Backend`], used by the bench harness and the bit-exactness suites to
//! measure and compare both paths inside one process.

use crate::lr::sigmoid;
use crate::simd::{self, sigmoid_softplus, AlignedVec, Backend, BLOCK_ROWS};
use crate::sparse::MultiHotMatrix;
use rayon::prelude::*;

/// Fixed chunk size of every parallel row reduction. Chunk boundaries are
/// a function of the row count alone, which is what makes the merge order
/// (and hence the result) independent of the thread count.
pub const CHUNK_ROWS: usize = 4096;

/// Kernel-layer metric handles, resolved once. Only the fused trainer
/// kernels record (per-call reduction latency + chunk counts); the
/// sites are gated on `obs::enabled()` so they fold away without the
/// `obs` feature.
struct KernelObs {
    fused_ns: crate::obs::HistogramHandle,
    fused_chunks: crate::obs::Counter,
    scratch_pools: crate::obs::Counter,
    scratch_allocs: crate::obs::Counter,
}

fn kobs() -> &'static KernelObs {
    static KOBS: std::sync::OnceLock<KernelObs> = std::sync::OnceLock::new();
    KOBS.get_or_init(|| {
        let reg = crate::obs::registry();
        KernelObs {
            fused_ns: reg.histogram("kernel_reduce_ns", &[("kernel", "fused")]),
            fused_chunks: reg.counter("kernel_reduce_chunks_total", &[("kernel", "fused")]),
            scratch_pools: reg.counter("kernel_scratch_pools_total", &[]),
            scratch_allocs: reg.counter("kernel_scratch_allocs_total", &[]),
        }
    })
}

/// Softplus with the reference's branch structure: `ln(1 + e^z)` computed
/// as `z + ln_1p(e^{−z})` for positive `z`.
#[inline]
fn softplus(z: f64) -> f64 {
    if z > 0.0 {
        z + (-z).exp().ln_1p()
    } else {
        z.exp().ln_1p()
    }
}

/// One chunk of the fused forward+backward pass on the selected backend:
/// accumulates the unnormalized loss sum and the `inv_n`-scaled gradient
/// over `chunk_rows`, optionally recording each row's logit.
#[allow(clippy::too_many_arguments)]
fn fused_chunk(
    backend: Backend,
    theta: &[f64],
    x: &MultiHotMatrix,
    labels: &[u8],
    chunk_rows: &[u32],
    inv_n: f64,
    grad: &mut [f64],
    logits: Option<&mut [f64]>,
) -> f64 {
    match backend {
        Backend::Simd => fused_chunk_blocked(theta, x, labels, chunk_rows, inv_n, grad, logits),
        Backend::Scalar => fused_chunk_scalar(theta, x, labels, chunk_rows, inv_n, grad, logits),
    }
}

/// Portable per-row backend (PR 1's loop, with the shared-`exp` forward).
fn fused_chunk_scalar(
    theta: &[f64],
    x: &MultiHotMatrix,
    labels: &[u8],
    chunk_rows: &[u32],
    inv_n: f64,
    grad: &mut [f64],
    mut logits: Option<&mut [f64]>,
) -> f64 {
    let mut total = 0.0;
    for (k, &r) in chunk_rows.iter().enumerate() {
        let r = r as usize;
        let z = x.dot_row(r, theta);
        if let Some(ls) = logits.as_deref_mut() {
            ls[k] = z;
        }
        let y = labels[r] as f64;
        // Stable BCE-with-logits (softplus(z) − y z) and σ(z) from one exp.
        let (sig, sp) = sigmoid_softplus(z);
        total += sp - y * z;
        let coef = (sig - y) * inv_n;
        x.scatter_add(r, coef, grad);
    }
    total
}

/// Row-block backend: gather eight rows' weights into aligned lanes, sum
/// them with eight independent accumulators, then finish each row **in
/// row order** (loss accumulation and gradient scatter), so the fp
/// operation sequence matches [`fused_chunk_scalar`] exactly.
fn fused_chunk_blocked(
    theta: &[f64],
    x: &MultiHotMatrix,
    labels: &[u8],
    chunk_rows: &[u32],
    inv_n: f64,
    grad: &mut [f64],
    mut logits: Option<&mut [f64]>,
) -> f64 {
    let mut total = 0.0;
    let mut base = 0usize;
    let mut blocks = chunk_rows.chunks_exact(BLOCK_ROWS);
    for block in &mut blocks {
        let mut zs = [0.0; BLOCK_ROWS];
        x.dot_block(block, theta, &mut zs);
        for (k, (&r, &z)) in block.iter().zip(&zs).enumerate() {
            let r = r as usize;
            if let Some(ls) = logits.as_deref_mut() {
                ls[base + k] = z;
            }
            let y = labels[r] as f64;
            let (sig, sp) = sigmoid_softplus(z);
            total += sp - y * z;
            let coef = (sig - y) * inv_n;
            x.scatter_add(r, coef, grad);
        }
        base += BLOCK_ROWS;
    }
    for (k, &r) in blocks.remainder().iter().enumerate() {
        let r = r as usize;
        let z = x.dot_row(r, theta);
        if let Some(ls) = logits.as_deref_mut() {
            ls[base + k] = z;
        }
        let y = labels[r] as f64;
        let (sig, sp) = sigmoid_softplus(z);
        total += sp - y * z;
        let coef = (sig - y) * inv_n;
        x.scatter_add(r, coef, grad);
    }
    total
}

/// Apply the L2 terms and normalization shared by loss and gradient.
fn finish_loss_grad(total: f64, n_rows: usize, theta: &[f64], reg: f64, grad: &mut [f64]) -> f64 {
    if reg > 0.0 {
        for (g, &w) in grad.iter_mut().zip(theta) {
            *g += reg * w;
        }
    }
    let mut loss = total / n_rows as f64;
    if reg > 0.0 {
        loss += reg / 2.0 * theta.iter().map(|w| w * w).sum::<f64>();
    }
    loss
}

/// Fused `env_loss` + `env_grad`: one logit evaluation per row feeds both
/// the loss sum and the gradient scatter. Returns the loss; writes the
/// gradient into `grad_out` (zeroed first). Dispatches to the backend
/// selected by [`crate::simd::backend`].
///
/// Rows are processed in fixed [`CHUNK_ROWS`] chunks, in parallel, with
/// the chunk partials merged in chunk order — the result is bit-identical
/// for any thread count and either backend, and for
/// `rows.len() <= CHUNK_ROWS` bit-identical to the serial reference pair.
///
/// # Panics
///
/// Panics when `rows` is empty — callers must skip empty environments.
pub fn env_loss_grad(
    theta: &[f64],
    x: &MultiHotMatrix,
    labels: &[u8],
    rows: &[u32],
    reg: f64,
    grad_out: &mut [f64],
) -> f64 {
    env_loss_grad_on(simd::backend(), theta, x, labels, rows, reg, grad_out)
}

/// [`env_loss_grad`] on an explicit [`Backend`].
pub fn env_loss_grad_on(
    backend: Backend,
    theta: &[f64],
    x: &MultiHotMatrix,
    labels: &[u8],
    rows: &[u32],
    reg: f64,
    grad_out: &mut [f64],
) -> f64 {
    assert!(!rows.is_empty(), "loss over an empty environment");
    debug_assert_eq!(grad_out.len(), theta.len());
    grad_out.fill(0.0);
    let t0 = if crate::obs::enabled() {
        Some(std::time::Instant::now())
    } else {
        None
    };
    let inv_n = 1.0 / rows.len() as f64;
    let loss = if rows.len() <= CHUNK_ROWS {
        let total = fused_chunk(backend, theta, x, labels, rows, inv_n, grad_out, None);
        finish_loss_grad(total, rows.len(), theta, reg, grad_out)
    } else {
        let partials: Vec<(f64, AlignedVec)> = rows
            .par_chunks(CHUNK_ROWS)
            .map(|chunk| {
                let mut g = AlignedVec::zeroed(theta.len());
                let s = fused_chunk(backend, theta, x, labels, chunk, inv_n, &mut g, None);
                (s, g)
            })
            .collect();
        let total = merge_partials(partials, grad_out);
        finish_loss_grad(total, rows.len(), theta, reg, grad_out)
    };
    if let Some(t0) = t0 {
        let k = kobs();
        k.fused_ns.record_duration(t0.elapsed());
        k.fused_chunks.add(rows.len().div_ceil(CHUNK_ROWS) as u64);
    }
    loss
}

/// [`env_loss_grad`] that additionally writes `θᵀx` of each row into
/// `logits_out` (position-aligned with `rows`), for reuse by
/// [`hvp_from_logits`] at the same `θ` over the same rows.
///
/// # Panics
///
/// Panics when `rows` is empty or `logits_out.len() != rows.len()`.
pub fn env_loss_grad_cached(
    theta: &[f64],
    x: &MultiHotMatrix,
    labels: &[u8],
    rows: &[u32],
    reg: f64,
    grad_out: &mut [f64],
    logits_out: &mut [f64],
) -> f64 {
    env_loss_grad_cached_on(
        simd::backend(),
        theta,
        x,
        labels,
        rows,
        reg,
        grad_out,
        logits_out,
    )
}

/// [`env_loss_grad_cached`] on an explicit [`Backend`].
#[allow(clippy::too_many_arguments)]
pub fn env_loss_grad_cached_on(
    backend: Backend,
    theta: &[f64],
    x: &MultiHotMatrix,
    labels: &[u8],
    rows: &[u32],
    reg: f64,
    grad_out: &mut [f64],
    logits_out: &mut [f64],
) -> f64 {
    assert!(!rows.is_empty(), "loss over an empty environment");
    assert_eq!(
        logits_out.len(),
        rows.len(),
        "logit cache must match the row count"
    );
    debug_assert_eq!(grad_out.len(), theta.len());
    grad_out.fill(0.0);
    let t0 = if crate::obs::enabled() {
        Some(std::time::Instant::now())
    } else {
        None
    };
    let inv_n = 1.0 / rows.len() as f64;
    let loss = if rows.len() <= CHUNK_ROWS {
        let total = fused_chunk(
            backend,
            theta,
            x,
            labels,
            rows,
            inv_n,
            grad_out,
            Some(logits_out),
        );
        finish_loss_grad(total, rows.len(), theta, reg, grad_out)
    } else {
        let partials: Vec<(f64, AlignedVec)> = rows
            .par_chunks(CHUNK_ROWS)
            .zip(logits_out.par_chunks_mut(CHUNK_ROWS))
            .map(|(chunk, lchunk)| {
                let mut g = AlignedVec::zeroed(theta.len());
                let s = fused_chunk(
                    backend,
                    theta,
                    x,
                    labels,
                    chunk,
                    inv_n,
                    &mut g,
                    Some(lchunk),
                );
                (s, g)
            })
            .collect();
        let total = merge_partials(partials, grad_out);
        finish_loss_grad(total, rows.len(), theta, reg, grad_out)
    };
    if let Some(t0) = t0 {
        let k = kobs();
        k.fused_ns.record_duration(t0.elapsed());
        k.fused_chunks.add(rows.len().div_ceil(CHUNK_ROWS) as u64);
    }
    loss
}

/// Ordered merge of chunk partials: chunk order, not completion order.
fn merge_partials(partials: Vec<(f64, AlignedVec)>, out: &mut [f64]) -> f64 {
    let mut total = 0.0;
    for (s, g) in &partials {
        total += s;
        for (o, &gi) in out.iter_mut().zip(g) {
            *o += gi;
        }
    }
    total
}

/// Parallel chunked environment loss (forward only), matching
/// [`crate::lr::env_loss`] bit-for-bit on a single chunk.
///
/// # Panics
///
/// Panics when `rows` is empty.
pub fn env_loss(theta: &[f64], x: &MultiHotMatrix, labels: &[u8], rows: &[u32], reg: f64) -> f64 {
    env_loss_on(simd::backend(), theta, x, labels, rows, reg)
}

/// [`env_loss`] on an explicit [`Backend`].
pub fn env_loss_on(
    backend: Backend,
    theta: &[f64],
    x: &MultiHotMatrix,
    labels: &[u8],
    rows: &[u32],
    reg: f64,
) -> f64 {
    assert!(!rows.is_empty(), "loss over an empty environment");
    let loss_chunk = |chunk: &[u32]| -> f64 {
        match backend {
            Backend::Simd => {
                let mut total = 0.0;
                let mut blocks = chunk.chunks_exact(BLOCK_ROWS);
                for block in &mut blocks {
                    let mut zs = [0.0; BLOCK_ROWS];
                    x.dot_block(block, theta, &mut zs);
                    for (&r, &z) in block.iter().zip(&zs) {
                        let y = labels[r as usize] as f64;
                        total += softplus(z) - y * z;
                    }
                }
                for &r in blocks.remainder() {
                    let z = x.dot_row(r as usize, theta);
                    let y = labels[r as usize] as f64;
                    total += softplus(z) - y * z;
                }
                total
            }
            Backend::Scalar => {
                let mut total = 0.0;
                for &r in chunk {
                    let z = x.dot_row(r as usize, theta);
                    let y = labels[r as usize] as f64;
                    total += softplus(z) - y * z;
                }
                total
            }
        }
    };
    let total = if rows.len() <= CHUNK_ROWS {
        loss_chunk(rows)
    } else {
        let partials: Vec<f64> = rows.par_chunks(CHUNK_ROWS).map(loss_chunk).collect();
        partials.iter().sum() // chunk order
    };
    let mut loss = total / rows.len() as f64;
    if reg > 0.0 {
        loss += reg / 2.0 * theta.iter().map(|w| w * w).sum::<f64>();
    }
    loss
}

/// Parallel chunked gradient (backward only), matching
/// [`crate::lr::env_grad`] bit-for-bit on a single chunk.
///
/// # Panics
///
/// Panics when `rows` is empty.
pub fn env_grad(
    theta: &[f64],
    x: &MultiHotMatrix,
    labels: &[u8],
    rows: &[u32],
    reg: f64,
    out: &mut [f64],
) {
    env_grad_on(simd::backend(), theta, x, labels, rows, reg, out)
}

/// [`env_grad`] on an explicit [`Backend`].
pub fn env_grad_on(
    backend: Backend,
    theta: &[f64],
    x: &MultiHotMatrix,
    labels: &[u8],
    rows: &[u32],
    reg: f64,
    out: &mut [f64],
) {
    assert!(!rows.is_empty(), "gradient over an empty environment");
    debug_assert_eq!(out.len(), theta.len());
    out.fill(0.0);
    let inv_n = 1.0 / rows.len() as f64;
    let grad_chunk = |chunk: &[u32], g: &mut [f64]| match backend {
        Backend::Simd => {
            let mut blocks = chunk.chunks_exact(BLOCK_ROWS);
            for block in &mut blocks {
                let mut zs = [0.0; BLOCK_ROWS];
                x.dot_block(block, theta, &mut zs);
                for (&r, &z) in block.iter().zip(&zs) {
                    let r = r as usize;
                    let coef = (sigmoid(z) - labels[r] as f64) * inv_n;
                    x.scatter_add(r, coef, g);
                }
            }
            for &r in blocks.remainder() {
                let r = r as usize;
                let z = x.dot_row(r, theta);
                let coef = (sigmoid(z) - labels[r] as f64) * inv_n;
                x.scatter_add(r, coef, g);
            }
        }
        Backend::Scalar => {
            for &r in chunk {
                let r = r as usize;
                let z = x.dot_row(r, theta);
                let coef = (sigmoid(z) - labels[r] as f64) * inv_n;
                x.scatter_add(r, coef, g);
            }
        }
    };
    if rows.len() <= CHUNK_ROWS {
        grad_chunk(rows, out);
    } else {
        let partials: Vec<AlignedVec> = rows
            .par_chunks(CHUNK_ROWS)
            .map(|chunk| {
                let mut g = AlignedVec::zeroed(theta.len());
                grad_chunk(chunk, &mut g);
                g
            })
            .collect();
        for g in &partials {
            for (o, &gi) in out.iter_mut().zip(g) {
                *o += gi;
            }
        }
    }
    if reg > 0.0 {
        for (o, &w) in out.iter_mut().zip(theta) {
            *o += reg * w;
        }
    }
}

/// Hessian-vector product reusing cached logits: with `zᵢ = θᵀxᵢ` already
/// known, `H·v = 1/n Σ σ(zᵢ)(1−σ(zᵢ))(xᵢᵀv) xᵢ + reg·v` needs only the
/// `xᵢᵀv` pass — half the sparse reads of [`crate::lr::env_hvp`].
///
/// `logits` must be position-aligned with `rows` (as produced by
/// [`env_loss_grad_cached`] at the same `θ`).
///
/// # Panics
///
/// Panics when `rows` is empty or `logits.len() != rows.len()`.
pub fn hvp_from_logits(
    logits: &[f64],
    x: &MultiHotMatrix,
    rows: &[u32],
    reg: f64,
    v: &[f64],
    out: &mut [f64],
) {
    hvp_from_logits_on(simd::backend(), logits, x, rows, reg, v, out)
}

/// [`hvp_from_logits`] on an explicit [`Backend`].
pub fn hvp_from_logits_on(
    backend: Backend,
    logits: &[f64],
    x: &MultiHotMatrix,
    rows: &[u32],
    reg: f64,
    v: &[f64],
    out: &mut [f64],
) {
    assert!(!rows.is_empty(), "HVP over an empty environment");
    assert_eq!(
        logits.len(),
        rows.len(),
        "logit cache must match the row count"
    );
    debug_assert_eq!(out.len(), v.len());
    out.fill(0.0);
    let inv_n = 1.0 / rows.len() as f64;
    let hvp_chunk = |chunk: &[u32], lchunk: &[f64], h: &mut [f64]| match backend {
        Backend::Simd => {
            let mut blocks = chunk.chunks_exact(BLOCK_ROWS);
            let mut lblocks = lchunk.chunks_exact(BLOCK_ROWS);
            for (block, lblock) in (&mut blocks).zip(&mut lblocks) {
                let mut xvs = [0.0; BLOCK_ROWS];
                x.dot_block(block, v, &mut xvs);
                for ((&r, &z), &xv) in block.iter().zip(lblock).zip(&xvs) {
                    let r = r as usize;
                    let p = sigmoid(z);
                    let coef = p * (1.0 - p) * xv * inv_n;
                    x.scatter_add(r, coef, h);
                }
            }
            for (&r, &z) in blocks.remainder().iter().zip(lblocks.remainder()) {
                let r = r as usize;
                let p = sigmoid(z);
                let xv = x.dot_row(r, v);
                let coef = p * (1.0 - p) * xv * inv_n;
                x.scatter_add(r, coef, h);
            }
        }
        Backend::Scalar => {
            for (&r, &z) in chunk.iter().zip(lchunk) {
                let r = r as usize;
                let p = sigmoid(z);
                let xv = x.dot_row(r, v);
                let coef = p * (1.0 - p) * xv * inv_n;
                x.scatter_add(r, coef, h);
            }
        }
    };
    if rows.len() <= CHUNK_ROWS {
        hvp_chunk(rows, logits, out);
    } else {
        let partials: Vec<AlignedVec> = rows
            .par_chunks(CHUNK_ROWS)
            .zip(logits.par_chunks(CHUNK_ROWS))
            .map(|(chunk, lchunk)| {
                let mut h = AlignedVec::zeroed(v.len());
                hvp_chunk(chunk, lchunk, &mut h);
                h
            })
            .collect();
        for h in &partials {
            for (o, &hi) in out.iter_mut().zip(h) {
                *o += hi;
            }
        }
    }
    if reg > 0.0 {
        for (o, &vi) in out.iter_mut().zip(v) {
            *o += reg * vi;
        }
    }
}

/// Batch scoring: `out[k] = σ(θᵀx[rows[k]])`, row chunks in parallel.
/// Purely elementwise, so neither parallelism nor the backend can affect
/// the values: the blocked path computes the dots through the same
/// blocked gather the serve engine and offline predict share
/// ([`MultiHotMatrix::dot_rows_into`]), then applies the identical
/// sigmoid per row.
///
/// # Panics
///
/// Panics when `out.len() != rows.len()`.
pub fn predict_rows_into(theta: &[f64], x: &MultiHotMatrix, rows: &[u32], out: &mut [f64]) {
    predict_rows_into_on(simd::backend(), theta, x, rows, out)
}

/// [`predict_rows_into`] on an explicit [`Backend`].
pub fn predict_rows_into_on(
    backend: Backend,
    theta: &[f64],
    x: &MultiHotMatrix,
    rows: &[u32],
    out: &mut [f64],
) {
    assert_eq!(out.len(), rows.len(), "output must match the row count");
    let score_chunk = |chunk: &[u32], ochunk: &mut [f64]| {
        x.dot_rows_into_on(backend, chunk, theta, ochunk);
        for o in ochunk.iter_mut() {
            *o = sigmoid(*o);
        }
    };
    if rows.len() <= CHUNK_ROWS {
        score_chunk(rows, out);
        return;
    }
    rows.par_chunks(CHUNK_ROWS)
        .zip(out.par_chunks_mut(CHUNK_ROWS))
        .for_each(|(chunk, ochunk)| score_chunk(chunk, ochunk));
}

/// Allocating convenience wrapper over [`predict_rows_into`].
pub fn predict_rows(theta: &[f64], x: &MultiHotMatrix, rows: &[u32]) -> Vec<f64> {
    let mut out = vec![0.0; rows.len()];
    predict_rows_into(theta, x, rows, &mut out);
    out
}

/// Per-environment scratch buffers for the meta trainers: the inner-step
/// model `θ̄_m`, a gradient buffer, the meta-gradient `u`, an HVP buffer,
/// and the logit cache of the environment's rows. All buffers are
/// 64-byte-aligned [`AlignedVec`]s so the vectorized kernels' loads and
/// stores never split cache lines; they deref to `[f64]`, so call sites
/// are unchanged.
#[derive(Debug, Clone)]
pub struct EnvScratch {
    /// Inner-step parameters `θ̄_m = θ − α∇R^m(θ)`.
    pub theta_bar: AlignedVec,
    /// General-purpose gradient buffer (inner gradient, then reusable).
    pub grad: AlignedVec,
    /// Meta-gradient `u = ∇_{θ̄} R_meta(θ̄_m)`, adjusted in place by the
    /// HVP chain term.
    pub u: AlignedVec,
    /// Hessian-vector product buffer.
    pub hvp: AlignedVec,
    /// `θᵀx` of every row of environment `m`, filled by the inner fused
    /// pass and reused by the outer HVP at the same `θ`.
    pub logits: AlignedVec,
}

/// One [`EnvScratch`] per environment, allocated once per `fit` and
/// reused across epochs — replacing the per-epoch `Vec` allocations the
/// serial trainers made for `θ̄`, `u`, and the HVP buffer.
#[derive(Debug, Clone)]
pub struct ScratchPool {
    slots: Vec<EnvScratch>,
}

impl ScratchPool {
    /// Build a pool for environments with the given row counts, all
    /// parameter buffers sized `n_cols`.
    pub fn new(n_cols: usize, rows_per_env: &[usize]) -> Self {
        if crate::obs::enabled() {
            let k = kobs();
            k.scratch_pools.inc();
            k.scratch_allocs.add(rows_per_env.len() as u64);
        }
        ScratchPool {
            slots: rows_per_env
                .iter()
                .map(|&n| EnvScratch {
                    theta_bar: AlignedVec::zeroed(n_cols),
                    grad: AlignedVec::zeroed(n_cols),
                    u: AlignedVec::zeroed(n_cols),
                    hvp: AlignedVec::zeroed(n_cols),
                    logits: AlignedVec::zeroed(n),
                })
                .collect(),
        }
    }

    /// Shared view of the per-environment slots.
    pub fn slots(&self) -> &[EnvScratch] {
        &self.slots
    }

    /// Mutable view of the per-environment slots (one per env, disjoint —
    /// safe to hand to an env-parallel loop).
    pub fn slots_mut(&mut self) -> &mut [EnvScratch] {
        &mut self.slots
    }

    /// Number of environments the pool serves.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lr;
    use rayon::ThreadPoolBuilder;

    /// Deterministic synthetic instance: `rows` multi-hot rows over
    /// `n_cols` columns with 2 active positions each.
    fn instance(rows: usize, n_cols: usize, seed: u64) -> (MultiHotMatrix, Vec<u8>, Vec<f64>) {
        let nnz = 2;
        let idx: Vec<u32> = (0..rows * nnz)
            .map(|i| {
                let h = (i as u64 + 1).wrapping_mul(seed.wrapping_add(0x9E37_79B9));
                (h % n_cols as u64) as u32
            })
            .collect();
        let x = MultiHotMatrix::new(idx, nnz, n_cols).unwrap();
        let y: Vec<u8> = (0..rows).map(|i| ((i as u64 + seed) % 2) as u8).collect();
        let theta: Vec<f64> = (0..n_cols)
            .map(|i| ((i as f64) * 0.31 - 0.8) * ((seed % 5) as f64 * 0.2 + 0.2))
            .collect();
        (x, y, theta)
    }

    fn all_rows(n: usize) -> Vec<u32> {
        (0..n as u32).collect()
    }

    #[test]
    fn fused_matches_separate_exactly_on_one_chunk() {
        let (x, y, theta) = instance(300, 16, 7);
        let rows = all_rows(300);
        for backend in [Backend::Simd, Backend::Scalar] {
            for reg in [0.0, 0.3] {
                let mut fused_grad = vec![0.0; 16];
                let fused_loss =
                    env_loss_grad_on(backend, &theta, &x, &y, &rows, reg, &mut fused_grad);
                let sep_loss = lr::env_loss(&theta, &x, &y, &rows, reg);
                let mut sep_grad = vec![0.0; 16];
                lr::env_grad(&theta, &x, &y, &rows, reg, &mut sep_grad);
                // Single chunk: the exact same fp operation sequence.
                assert_eq!(fused_loss, sep_loss, "{backend:?}");
                assert_eq!(fused_grad, sep_grad, "{backend:?}");
            }
        }
    }

    #[test]
    fn fused_matches_separate_across_chunks() {
        // 3 chunks: the merge reassociates the sums, so compare to 1e-12.
        let (x, y, theta) = instance(10_000, 32, 3);
        let rows = all_rows(10_000);
        let mut fused_grad = vec![0.0; 32];
        let fused_loss = env_loss_grad(&theta, &x, &y, &rows, 0.1, &mut fused_grad);
        let sep_loss = lr::env_loss(&theta, &x, &y, &rows, 0.1);
        let mut sep_grad = vec![0.0; 32];
        lr::env_grad(&theta, &x, &y, &rows, 0.1, &mut sep_grad);
        assert!((fused_loss - sep_loss).abs() < 1e-12);
        for (a, b) in fused_grad.iter().zip(&sep_grad) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn simd_and_scalar_backends_are_bitwise_identical() {
        // 9,000 rows: multiple chunks, and a tail not divisible by 8.
        let (x, y, theta) = instance(9_003, 24, 19);
        let rows = all_rows(9_003);
        let v: Vec<f64> = (0..24).map(|i| 0.1 * i as f64 - 1.0).collect();
        let run = |backend: Backend| {
            let mut grad = vec![0.0; 24];
            let mut logits = vec![0.0; rows.len()];
            let loss = env_loss_grad_cached_on(
                backend,
                &theta,
                &x,
                &y,
                &rows,
                0.05,
                &mut grad,
                &mut logits,
            );
            let mut hvp = vec![0.0; 24];
            hvp_from_logits_on(backend, &logits, &x, &rows, 0.05, &v, &mut hvp);
            let mut preds = vec![0.0; rows.len()];
            predict_rows_into_on(backend, &theta, &x, &rows, &mut preds);
            let mut g2 = vec![0.0; 24];
            env_grad_on(backend, &theta, &x, &y, &rows, 0.05, &mut g2);
            let l2 = env_loss_on(backend, &theta, &x, &y, &rows, 0.05);
            (loss, grad, logits, hvp, preds, g2, l2)
        };
        let simd = run(Backend::Simd);
        let scalar = run(Backend::Scalar);
        assert_eq!(simd, scalar);
    }

    #[test]
    fn chunked_kernels_are_bitwise_identical_across_thread_counts() {
        let (x, y, theta) = instance(9_000, 24, 11);
        let rows = all_rows(9_000);
        let v: Vec<f64> = (0..24).map(|i| 0.1 * i as f64 - 1.0).collect();
        let run = |threads: usize| {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| {
                let mut grad = vec![0.0; 24];
                let mut logits = vec![0.0; rows.len()];
                let loss =
                    env_loss_grad_cached(&theta, &x, &y, &rows, 0.05, &mut grad, &mut logits);
                let mut hvp = vec![0.0; 24];
                hvp_from_logits(&logits, &x, &rows, 0.05, &v, &mut hvp);
                let preds = predict_rows(&theta, &x, &rows);
                (loss, grad, logits, hvp, preds)
            })
        };
        let serial = run(1);
        for threads in [2, 3, 5] {
            let parallel = run(threads);
            assert_eq!(serial.0, parallel.0, "loss differs at {threads} threads");
            assert_eq!(serial.1, parallel.1, "grad differs at {threads} threads");
            assert_eq!(serial.2, parallel.2, "logits differ at {threads} threads");
            assert_eq!(serial.3, parallel.3, "hvp differs at {threads} threads");
            assert_eq!(serial.4, parallel.4, "preds differ at {threads} threads");
        }
    }

    #[test]
    fn cached_hvp_matches_reference_hvp() {
        let (x, y, theta) = instance(500, 12, 9);
        let rows = all_rows(500);
        let v: Vec<f64> = (0..12).map(|i| (i as f64) * 0.2 - 1.1).collect();
        let mut grad = vec![0.0; 12];
        let mut logits = vec![0.0; 500];
        env_loss_grad_cached(&theta, &x, &y, &rows, 0.2, &mut grad, &mut logits);
        let mut reference = vec![0.0; 12];
        lr::env_hvp(&theta, &x, &y, &rows, 0.2, &v, &mut reference);
        for backend in [Backend::Simd, Backend::Scalar] {
            let mut cached = vec![0.0; 12];
            hvp_from_logits_on(backend, &logits, &x, &rows, 0.2, &v, &mut cached);
            assert_eq!(cached, reference, "{backend:?}");
        }
    }

    #[test]
    fn chunked_loss_and_grad_match_reference() {
        let (x, y, theta) = instance(6_000, 20, 13);
        let rows = all_rows(6_000);
        for backend in [Backend::Simd, Backend::Scalar] {
            assert!((env_loss_on(backend, &theta, &x, &y, &rows, 0.1)
                - lr::env_loss(&theta, &x, &y, &rows, 0.1))
            .abs()
            .le(&1e-12));
            let mut chunked = vec![0.0; 20];
            env_grad_on(backend, &theta, &x, &y, &rows, 0.1, &mut chunked);
            let mut reference = vec![0.0; 20];
            lr::env_grad(&theta, &x, &y, &rows, 0.1, &mut reference);
            for (a, b) in chunked.iter().zip(&reference) {
                assert!((a - b).abs() < 1e-12, "{backend:?}");
            }
        }
    }

    #[test]
    fn predict_rows_matches_model_predictions() {
        let (x, _, theta) = instance(200, 10, 4);
        let model = lr::LrModel {
            weights: theta.clone(),
        };
        let rows: Vec<u32> = vec![5, 0, 199, 42];
        assert_eq!(
            predict_rows(&theta, &x, &rows),
            model.predict_rows(&x, &rows)
        );
    }

    #[test]
    fn scratch_pool_shapes_follow_environments() {
        let pool = ScratchPool::new(8, &[100, 3, 77]);
        assert_eq!(pool.len(), 3);
        assert!(!pool.is_empty());
        assert_eq!(pool.slots()[0].logits.len(), 100);
        assert_eq!(pool.slots()[2].logits.len(), 77);
        assert_eq!(pool.slots()[1].theta_bar.len(), 8);
        assert_eq!(pool.slots()[1].hvp.len(), 8);
    }

    #[test]
    fn scratch_pool_buffers_are_aligned() {
        let pool = ScratchPool::new(33, &[100, 7]);
        for slot in pool.slots() {
            for buf in [
                &slot.theta_bar,
                &slot.grad,
                &slot.u,
                &slot.hvp,
                &slot.logits,
            ] {
                assert_eq!(buf.as_slice().as_ptr() as usize % crate::simd::ALIGNMENT, 0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty environment")]
    fn fused_rejects_empty_rows() {
        let (x, y, theta) = instance(10, 8, 1);
        let mut g = vec![0.0; 8];
        let _ = env_loss_grad(&theta, &x, &y, &[], 0.0, &mut g);
    }

    #[test]
    #[should_panic(expected = "logit cache")]
    fn cached_hvp_rejects_misaligned_cache() {
        let (x, _, theta) = instance(10, 8, 1);
        let mut out = vec![0.0; 8];
        hvp_from_logits(&[0.0; 3], &x, &[0, 1], 0.0, &theta, &mut out);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn strat() -> impl Strategy<Value = (MultiHotMatrix, Vec<u8>, Vec<f64>)> {
            (2usize..40, 0u64..200).prop_map(|(rows, seed)| instance(rows, 6, seed))
        }

        proptest! {
            #[test]
            fn fused_equals_separate((x, y, theta) in strat()) {
                let rows: Vec<u32> = (0..x.n_rows() as u32).collect();
                for backend in [Backend::Simd, Backend::Scalar] {
                    for reg in [0.0, 0.25] {
                        let mut fused_grad = vec![0.0; theta.len()];
                        let fused_loss =
                            env_loss_grad_on(backend, &theta, &x, &y, &rows, reg, &mut fused_grad);
                        let sep_loss = lr::env_loss(&theta, &x, &y, &rows, reg);
                        let mut sep_grad = vec![0.0; theta.len()];
                        lr::env_grad(&theta, &x, &y, &rows, reg, &mut sep_grad);
                        prop_assert!((fused_loss - sep_loss).abs() < 1e-12);
                        for (a, b) in fused_grad.iter().zip(&sep_grad) {
                            prop_assert!((a - b).abs() < 1e-12);
                        }
                    }
                }
            }
        }
    }
}
