//! `lightmirm-core` — the LightMIRM paper's primary contribution.
//!
//! This crate implements, from scratch:
//!
//! - the **multi-hot design matrix** produced by the GBDT+LR transform
//!   ([`sparse`]) and the **logistic-regression** model with closed-form
//!   gradients and Hessian-vector products ([`lr`]);
//! - **fused, parallel kernels** over that matrix ([`kernels`]): a
//!   single-pass loss+gradient, a logit-caching HVP, and fixed-chunk
//!   ordered reductions that keep results bit-identical for any thread
//!   count, executed by vectorized row-block inner loops over 64-byte
//!   aligned scratch ([`simd`]) that stay bit-identical to the scalar
//!   backend;
//! - **environment-partitioned datasets** ([`mod@env`]);
//! - the **trainers** of the paper's evaluation ([`trainers`]): ERM,
//!   ERM + per-province fine-tuning, environment up-sampling, Group DRO,
//!   V-REx, IRMv1, meta-IRM (Algorithm 1, complete and sampled), and
//!   **LightMIRM** (Algorithm 2) with the meta-loss replaying queue
//!   ([`mrq`]);
//! - Table-III **step timing** and §III-F **operation accounting**
//!   ([`timing`]) — the `O(2M²)` vs `O(4M)` claims are asserted exactly in
//!   tests;
//! - the end-to-end **GBDT+LR pipeline** ([`pipeline`]), per-province
//!   **fairness evaluation** ([`eval`]), the **online replay
//!   simulator** behind Fig. 5 ([`online`]), and versioned **deployable
//!   model bundles** ([`bundle`]).
//!
//! # Quick start
//!
//! ```
//! use lightmirm_core::prelude::*;
//! use lightmirm_core::trainers::TrainConfig;
//! use loansim::{generate, temporal_split, GeneratorConfig, ProvinceCatalog};
//!
//! // A tiny synthetic world, split as the paper does (2016–19 / 2020).
//! let frame = generate(&GeneratorConfig::small(2000, 1));
//! let split = temporal_split(&frame, 2020);
//!
//! // Feature extraction (GBDT trained with ERM), then LightMIRM on top.
//! let mut fe_cfg = FeatureExtractorConfig::default();
//! fe_cfg.gbdt.n_trees = 8;
//! let extractor = FeatureExtractor::fit(&split.train, &fe_cfg).unwrap();
//! let names = ProvinceCatalog::standard().names();
//! let train = extractor.to_env_dataset(&split.train, names.clone(), None).unwrap();
//! let test = extractor.to_env_dataset(&split.test, names, None).unwrap();
//!
//! let trainer = LightMirmTrainer::new(TrainConfig { epochs: 5, ..Default::default() });
//! let out = trainer.fit(&train, None);
//! let summary = evaluate(&out.model, &test).unwrap();
//! assert!(summary.m_auc > 0.5);
//! ```

pub mod batch;
pub mod bundle;
pub mod env;
pub mod eval;
pub mod explain;
pub mod failpoint;
pub mod framing;
pub mod kernels;
pub mod lr;
pub mod mrq;
pub mod nonlinear;
pub mod obs;
pub mod online;
pub mod pipeline;
pub mod sem;
pub mod simd;
pub mod sparse;
pub mod timing;
pub mod trainers;

/// Convenient single-import surface.
pub mod prelude {
    pub use crate::batch::Batcher;
    pub use crate::bundle::{
        BundleError, BundleMetadata, ModelBundle, QuarantineFallback, QuarantinePolicy,
        QuarantinedScores, RowQuarantine, StoredModel, ValueFault,
    };
    pub use crate::env::EnvDataset;
    pub use crate::eval::{evaluate, evaluate_filtered, score_rows};
    pub use crate::explain::{explain_row, Explanation, TreeContribution};
    pub use crate::kernels::{
        env_loss_grad, env_loss_grad_cached, hvp_from_logits, EnvScratch, ScratchPool, CHUNK_ROWS,
    };
    pub use crate::lr::{env_grad, env_hvp, env_loss, sigmoid, LrModel};
    pub use crate::mrq::MetaReplayQueue;
    pub use crate::nonlinear::{light_mirm_generic, EnvObjective, LinearObjective, MlpModel};
    pub use crate::obs::{
        Counter, Gauge, HistogramHandle, MetricKey, MetricValue, MetricsRegistry, MetricsSnapshot,
    };
    pub use crate::online::{
        best_threshold, realized_profit, replay, OnlinePoint, OnlineReplay, ProfitModel,
    };
    pub use crate::pipeline::{FeatureExtractor, FeatureExtractorConfig, PipelineError};
    pub use crate::sem::SemSpec;
    pub use crate::simd::{AlignedVec, Backend, ALIGNMENT, BLOCK_ROWS};
    pub use crate::sparse::MultiHotMatrix;
    pub use crate::timing::{Histogram, OpCounter, Step, StepTimer};
    pub use crate::trainers::{
        ErmTrainer, FineTuneTrainer, GroupDroTrainer, Irmv1Trainer, LightMirmTrainer,
        MetaIrmTrainer, TrainConfig, TrainOutput, TrainedModel, UpSamplingTrainer, VRexTrainer,
    };
}

pub use prelude::*;
