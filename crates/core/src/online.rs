//! Online replay simulation — the paper's online comparison (§IV-C1,
//! Fig. 5).
//!
//! The deployment pattern at the platform is a *companion runner*: the
//! incumbent model keeps deciding as before, and the new model can
//! additionally reject applications the incumbent approved. We replay a
//! held-out stream through that decision rule and sweep the companion's
//! rejection threshold, reporting the false-positive rate (good loans
//! refused) against the residual bad-debt rate among approvals — the two
//! axes of Fig. 5.

use lightmirm_metrics::MetricError;

/// One point of the online trade-off curve.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct OnlinePoint {
    /// Companion rejection threshold τ.
    pub threshold: f64,
    /// Fraction of good (non-defaulting) applicants newly rejected by the
    /// companion among the incumbent's approvals.
    pub false_positive_rate: f64,
    /// Default rate among the loans still approved (the bad-debt rate).
    pub bad_debt_rate: f64,
    /// Fraction of incumbent approvals the companion vetoes.
    pub veto_rate: f64,
}

/// Result of an online replay.
#[derive(Debug, Clone, serde::Serialize)]
pub struct OnlineReplay {
    /// Bad-debt rate of the incumbent alone (the paper's 2.09 %).
    pub incumbent_bad_debt: f64,
    /// Trade-off curve over the swept thresholds.
    pub curve: Vec<OnlinePoint>,
}

/// Replay a stream through "incumbent approves, companion may veto".
///
/// `incumbent_scores` and `companion_scores` are default probabilities for
/// the same rows; `incumbent_threshold` fixes the incumbent's rejection
/// rule; `thresholds` is the sweep grid for the companion.
///
/// # Errors
///
/// Returns [`MetricError`] on mismatched/empty inputs.
pub fn replay(
    incumbent_scores: &[f64],
    companion_scores: &[f64],
    labels: &[u8],
    incumbent_threshold: f64,
    thresholds: &[f64],
) -> Result<OnlineReplay, MetricError> {
    if incumbent_scores.len() != labels.len() || companion_scores.len() != labels.len() {
        return Err(MetricError::LengthMismatch {
            scores: incumbent_scores.len().min(companion_scores.len()),
            labels: labels.len(),
        });
    }
    if labels.is_empty() {
        return Err(MetricError::Empty);
    }
    // Check the two arrays separately so the reported index is a real row
    // of whichever stream held the NaN (a chained scan would report a
    // companion NaN at `len + i`, an index valid in neither array).
    for scores in [incumbent_scores, companion_scores] {
        if let Some(index) = scores.iter().position(|s| s.is_nan()) {
            return Err(MetricError::NanScore { index });
        }
    }

    // The incumbent's approvals are the population the companion acts on.
    let approved: Vec<usize> = (0..labels.len())
        .filter(|&i| incumbent_scores[i] < incumbent_threshold)
        .collect();
    if approved.is_empty() {
        return Err(MetricError::Empty);
    }
    let inc_bad = approved.iter().filter(|&&i| labels[i] != 0).count() as f64;
    let incumbent_bad_debt = inc_bad / approved.len() as f64;

    let n_good = approved.iter().filter(|&&i| labels[i] == 0).count() as f64;
    let mut curve = Vec::with_capacity(thresholds.len());
    for &tau in thresholds {
        let mut vetoed = 0.0f64;
        let mut vetoed_good = 0.0f64;
        let mut kept = 0.0f64;
        let mut kept_bad = 0.0f64;
        for &i in &approved {
            if companion_scores[i] >= tau {
                vetoed += 1.0;
                if labels[i] == 0 {
                    vetoed_good += 1.0;
                }
            } else {
                kept += 1.0;
                if labels[i] != 0 {
                    kept_bad += 1.0;
                }
            }
        }
        curve.push(OnlinePoint {
            threshold: tau,
            false_positive_rate: if n_good > 0.0 {
                vetoed_good / n_good
            } else {
                0.0
            },
            bad_debt_rate: if kept > 0.0 { kept_bad / kept } else { 0.0 },
            veto_rate: vetoed / approved.len() as f64,
        });
    }
    Ok(OnlineReplay {
        incumbent_bad_debt,
        curve,
    })
}

/// Economic parameters of an approval decision.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct ProfitModel {
    /// Net margin earned on a loan that repays (as a fraction of
    /// principal, e.g. `0.06`).
    pub margin: f64,
    /// Loss given default (fraction of principal lost, e.g. `0.55`).
    pub loss_given_default: f64,
}

impl ProfitModel {
    /// Expected profit per approved unit of principal at default
    /// probability `p`: `(1 − p)·margin − p·LGD`.
    pub fn expected_profit(&self, p: f64) -> f64 {
        (1.0 - p) * self.margin - p * self.loss_given_default
    }

    /// The break-even default probability `margin / (margin + LGD)`:
    /// approving above it loses money in expectation.
    pub fn break_even_probability(&self) -> f64 {
        self.margin / (self.margin + self.loss_given_default)
    }
}

/// Realized portfolio profit of the rule "approve when `score < tau`",
/// per unit of total application volume.
pub fn realized_profit(scores: &[f64], labels: &[u8], tau: f64, economics: &ProfitModel) -> f64 {
    let mut profit = 0.0;
    for (&s, &y) in scores.iter().zip(labels) {
        if s < tau {
            profit += if y != 0 {
                -economics.loss_given_default
            } else {
                economics.margin
            };
        }
    }
    profit / scores.len().max(1) as f64
}

/// Sweep thresholds and return `(best_tau, best_profit)` under the
/// economics — the quantitative version of the paper's "domain experts
/// find a trade-off between the two indicators".
///
/// # Panics
///
/// Panics on an empty grid.
pub fn best_threshold(
    scores: &[f64],
    labels: &[u8],
    grid: &[f64],
    economics: &ProfitModel,
) -> (f64, f64) {
    assert!(!grid.is_empty(), "empty threshold grid");
    grid.iter()
        .map(|&tau| (tau, realized_profit(scores, labels, tau, economics)))
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("profits are finite"))
        .expect("nonempty grid")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Incumbent approves everyone (scores 0); companion is a perfect
    /// ranker.
    fn perfect_companion() -> (Vec<f64>, Vec<f64>, Vec<u8>) {
        let labels = vec![0, 0, 0, 0, 0, 0, 0, 0, 1, 1];
        let incumbent = vec![0.0; 10];
        let companion: Vec<f64> = labels.iter().map(|&y| 0.2 + 0.6 * y as f64).collect();
        (incumbent, companion, labels)
    }

    #[test]
    fn incumbent_bad_debt_is_base_rate_when_it_approves_all() {
        let (inc, comp, y) = perfect_companion();
        let out = replay(&inc, &comp, &y, 0.5, &[0.5]).unwrap();
        assert!((out.incumbent_bad_debt - 0.2).abs() < 1e-12);
    }

    #[test]
    fn perfect_companion_zeroes_bad_debt_without_fp() {
        let (inc, comp, y) = perfect_companion();
        let out = replay(&inc, &comp, &y, 0.5, &[0.5]).unwrap();
        let p = out.curve[0];
        assert_eq!(p.bad_debt_rate, 0.0);
        assert_eq!(p.false_positive_rate, 0.0);
        assert!((p.veto_rate - 0.2).abs() < 1e-12);
    }

    #[test]
    fn loose_threshold_keeps_everything() {
        let (inc, comp, y) = perfect_companion();
        let out = replay(&inc, &comp, &y, 0.5, &[1.1]).unwrap();
        let p = out.curve[0];
        assert!((p.bad_debt_rate - 0.2).abs() < 1e-12);
        assert_eq!(p.veto_rate, 0.0);
    }

    #[test]
    fn tight_threshold_vetoes_everything() {
        let (inc, comp, y) = perfect_companion();
        let out = replay(&inc, &comp, &y, 0.5, &[0.0]).unwrap();
        let p = out.curve[0];
        assert_eq!(p.veto_rate, 1.0);
        assert_eq!(p.bad_debt_rate, 0.0);
        assert_eq!(p.false_positive_rate, 1.0);
    }

    #[test]
    fn companion_only_acts_on_incumbent_approvals() {
        // Incumbent rejects the two worst applicants itself; companion
        // metrics are computed on the remaining 8.
        let labels = vec![0, 0, 0, 0, 0, 0, 1, 1, 1, 1];
        let incumbent: Vec<f64> = (0..10).map(|i| if i >= 8 { 0.9 } else { 0.1 }).collect();
        let companion: Vec<f64> = labels.iter().map(|&y| 0.3 + 0.4 * y as f64).collect();
        let out = replay(&incumbent, &companion, &labels, 0.5, &[0.5]).unwrap();
        // Approvals: rows 0..8 (6 good, 2 bad): incumbent bad debt 0.25.
        assert!((out.incumbent_bad_debt - 0.25).abs() < 1e-12);
        let p = out.curve[0];
        assert_eq!(p.bad_debt_rate, 0.0); // companion vetoes rows 6, 7
        assert!((p.veto_rate - 0.25).abs() < 1e-12);
    }

    #[test]
    fn curve_fpr_monotone_in_threshold() {
        let (inc, comp, y) = perfect_companion();
        let grid: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
        let out = replay(&inc, &comp, &y, 0.5, &grid).unwrap();
        for w in out.curve.windows(2) {
            assert!(w[1].false_positive_rate <= w[0].false_positive_rate + 1e-12);
        }
    }

    #[test]
    fn break_even_matches_formula() {
        let econ = ProfitModel {
            margin: 0.06,
            loss_given_default: 0.54,
        };
        assert!((econ.break_even_probability() - 0.1).abs() < 1e-12);
        assert!(econ.expected_profit(0.1).abs() < 1e-12);
        assert!(econ.expected_profit(0.05) > 0.0);
        assert!(econ.expected_profit(0.2) < 0.0);
    }

    #[test]
    fn realized_profit_counts_only_approvals() {
        let econ = ProfitModel {
            margin: 0.1,
            loss_given_default: 0.5,
        };
        let scores = [0.1, 0.9, 0.2, 0.8];
        let labels = [0, 1, 1, 0];
        // tau = 0.5 approves rows 0 (good) and 2 (bad).
        let p = realized_profit(&scores, &labels, 0.5, &econ);
        assert!((p - (0.1 - 0.5) / 4.0).abs() < 1e-12);
        // tau = 0 approves nothing.
        assert_eq!(realized_profit(&scores, &labels, 0.0, &econ), 0.0);
    }

    #[test]
    fn best_threshold_prefers_profitable_books() {
        let econ = ProfitModel {
            margin: 0.1,
            loss_given_default: 0.5,
        };
        // A perfect ranker: defaults all score above 0.5.
        let scores = [0.1, 0.2, 0.3, 0.4, 0.9, 0.95];
        let labels = [0, 0, 0, 0, 1, 1];
        let grid: Vec<f64> = (0..=20).map(|i| i as f64 / 20.0).collect();
        let (tau, profit) = best_threshold(&scores, &labels, &grid, &econ);
        // Optimal: approve the four goods, reject both defaulters.
        assert!((0.45..=0.9).contains(&tau), "tau {tau}");
        assert!((profit - 4.0 * 0.1 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn veto_rate_is_monotone_non_increasing_in_tau() {
        // Deterministic pseudo-random scores with ties and exact boundary
        // values, swept on a fine grid: raising τ can only shrink the
        // vetoed set because the rule is `score >= τ`.
        let n = 200;
        let labels: Vec<u8> = (0..n).map(|i| (i % 5 == 0) as u8).collect();
        let incumbent = vec![0.0; n];
        let companion: Vec<f64> = (0..n)
            .map(|i| {
                let h = (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                ((h >> 32) % 101) as f64 / 100.0 // includes exact 0.0 and 1.0
            })
            .collect();
        let grid: Vec<f64> = (0..=100).map(|i| i as f64 / 100.0).collect();
        let out = replay(&incumbent, &companion, &labels, 0.5, &grid).unwrap();
        for w in out.curve.windows(2) {
            assert!(
                w[1].veto_rate <= w[0].veto_rate,
                "veto rate rose from tau {} to {}: {} -> {}",
                w[0].threshold,
                w[1].threshold,
                w[0].veto_rate,
                w[1].veto_rate
            );
            assert!(w[1].false_positive_rate <= w[0].false_positive_rate);
        }
    }

    #[test]
    fn tau_zero_vetoes_every_approval_exactly() {
        // Probabilities are >= 0, so `s >= 0.0` holds for every row: the
        // companion at τ = 0 must veto the entire approved book, exactly.
        let labels = vec![0, 1, 0, 1, 0];
        let incumbent = vec![0.0; 5];
        let companion = vec![0.0, 0.25, 0.5, 0.75, 1.0]; // boundary scores included
        let out = replay(&incumbent, &companion, &labels, 0.5, &[0.0]).unwrap();
        let p = out.curve[0];
        assert_eq!(p.veto_rate, 1.0);
        assert_eq!(p.false_positive_rate, 1.0);
        assert_eq!(p.bad_debt_rate, 0.0); // nothing is kept
    }

    #[test]
    fn tau_one_vetoes_exactly_the_certain_defaults() {
        // Sigmoid outputs can round to exactly 1.0 for extreme logits; the
        // `>=` rule must still veto those rows at τ = 1, and only those.
        let labels = vec![0, 1, 0, 1];
        let incumbent = vec![0.0; 4];
        let companion = vec![0.3, 1.0, 0.999_999, 1.0];
        let out = replay(&incumbent, &companion, &labels, 0.5, &[1.0]).unwrap();
        let p = out.curve[0];
        assert!((p.veto_rate - 0.5).abs() < 1e-12); // rows 1 and 3 only
        assert_eq!(p.false_positive_rate, 0.0); // both vetoed rows default
        assert_eq!(p.bad_debt_rate, 0.0); // no defaulter scores below 1.0
                                          // And when no score reaches 1.0, τ = 1 vetoes nothing at all.
        let soft = vec![0.3, 0.9, 0.999_999, 0.95];
        let out = replay(&incumbent, &soft, &labels, 0.5, &[1.0]).unwrap();
        assert_eq!(out.curve[0].veto_rate, 0.0);
        assert!((out.curve[0].bad_debt_rate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn nan_index_points_into_the_offending_array() {
        let labels = vec![0, 1, 0];
        let good = vec![0.1, 0.2, 0.3];
        let mut bad = good.clone();
        bad[1] = f64::NAN;
        // A companion NaN at row 1 must report index 1, not len + 1.
        assert_eq!(
            replay(&good, &bad, &labels, 0.5, &[0.5]).unwrap_err(),
            MetricError::NanScore { index: 1 }
        );
        assert_eq!(
            replay(&bad, &good, &labels, 0.5, &[0.5]).unwrap_err(),
            MetricError::NanScore { index: 1 }
        );
    }

    #[test]
    fn errors_on_degenerate_inputs() {
        assert!(replay(&[], &[], &[], 0.5, &[0.5]).is_err());
        assert!(replay(&[0.1], &[0.1], &[1, 0], 0.5, &[0.5]).is_err());
        // Incumbent rejects everyone: no approval population.
        assert!(replay(&[0.9, 0.9], &[0.1, 0.1], &[0, 1], 0.5, &[0.5]).is_err());
    }
}
