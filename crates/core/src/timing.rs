//! Step-level timing and operation accounting.
//!
//! Table III of the paper breaks one training epoch into five steps —
//! loading data, transforming the format, inner optimization, calculating
//! the meta-losses, backward propagation — and §III-F counts "atomic
//! env-loss operations" (one forward or backward pass over one
//! environment). [`StepTimer`] reproduces the former, [`OpCounter`] the
//! latter; the complexity claims (O(2M²) vs O(4M)) are asserted on
//! [`OpCounter`] in tests so they hold exactly, not just in wall-clock.

use std::time::{Duration, Instant};

/// The five steps of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize)]
pub enum Step {
    /// Loading the (already materialized) environment batches.
    LoadData,
    /// Transforming raw features into the multi-hot format.
    TransformFormat,
    /// Inner-loop optimization (per-env loss + gradient + step).
    InnerOptimization,
    /// Calculating the meta-losses.
    MetaLoss,
    /// The outer backward propagation and parameter update.
    Backward,
}

impl Step {
    /// All steps in Table III order.
    pub const ALL: [Step; 5] = [
        Step::LoadData,
        Step::TransformFormat,
        Step::InnerOptimization,
        Step::MetaLoss,
        Step::Backward,
    ];

    /// Table III row label.
    pub fn label(self) -> &'static str {
        match self {
            Step::LoadData => "loading data",
            Step::TransformFormat => "transforming the format",
            Step::InnerOptimization => "inner optimization",
            Step::MetaLoss => "calculating the meta-losses",
            Step::Backward => "backward propagation",
        }
    }
}

/// Accumulates wall-clock time per step.
#[derive(Debug, Clone, Default)]
pub struct StepTimer {
    totals: [Duration; 5],
    epoch_total: Duration,
}

impl StepTimer {
    /// Fresh timer with all steps at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Time a closure and charge it to `step`.
    pub fn time<T>(&mut self, step: Step, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        let dt = start.elapsed();
        self.totals[step_index(step)] += dt;
        self.epoch_total += dt;
        out
    }

    /// Total time charged to a step.
    pub fn total(&self, step: Step) -> Duration {
        self.totals[step_index(step)]
    }

    /// Sum of all charged time (the "whole epoch" row).
    pub fn epoch_total(&self) -> Duration {
        self.epoch_total
    }

    /// Fraction of total time per step (paper Fig. 7). Returns zeros when
    /// nothing was timed.
    pub fn proportions(&self) -> [f64; 5] {
        let total = self.epoch_total.as_secs_f64();
        let mut out = [0.0; 5];
        if total > 0.0 {
            for (o, d) in out.iter_mut().zip(&self.totals) {
                *o = d.as_secs_f64() / total;
            }
        }
        out
    }

    /// Merge another timer's accumulations into this one.
    pub fn merge(&mut self, other: &StepTimer) {
        for (a, b) in self.totals.iter_mut().zip(&other.totals) {
            *a += *b;
        }
        self.epoch_total += other.epoch_total;
    }
}

fn step_index(step: Step) -> usize {
    Step::ALL
        .iter()
        .position(|&s| s == step)
        .expect("step in ALL")
}

/// Counts atomic env-loss operations exactly as the paper's §III-F does:
/// one unit per forward (loss) or backward (gradient) pass over one
/// environment. The paper's per-iteration totals — `2M²` for meta-IRM,
/// `4M` for LightMIRM — are `forward + backward` here; Hessian-vector
/// products (the second-order cost the paper mentions but leaves out of
/// its operation count) are tracked separately in `hvp`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct OpCounter {
    /// Forward passes (env losses).
    pub forward: u64,
    /// Backward passes (env gradients).
    pub backward: u64,
    /// Hessian-vector products (second-order backward passes).
    pub hvp: u64,
}

impl OpCounter {
    /// Fresh counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` forward passes.
    pub fn add_forward(&mut self, n: u64) {
        self.forward += n;
    }

    /// Record `n` backward passes.
    pub fn add_backward(&mut self, n: u64) {
        self.backward += n;
    }

    /// Record `n` Hessian-vector products.
    pub fn add_hvp(&mut self, n: u64) {
        self.hvp += n;
    }

    /// First-order atomic operations — the quantity §III-F counts.
    pub fn total(&self) -> u64 {
        self.forward + self.backward
    }

    /// Everything, including second-order passes.
    pub fn total_with_hvp(&self) -> u64 {
        self.total() + self.hvp
    }
}

/// A fixed-footprint power-of-two histogram for serving telemetry
/// (request latencies in nanoseconds, queue depths in requests).
///
/// Values are binned by bit length: bucket `b` covers `[2^(b−1), 2^b)`
/// (bucket 0 holds exactly zero). 64 buckets cover the full `u64` range,
/// so recording never saturates or allocates — cheap enough to sit inside
/// the scoring engine's request path. Quantiles are resolved to the upper
/// bound of the containing bucket, i.e. within 2× of the true value,
/// which is the precision latency percentiles are quoted at.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        let bucket = 64 - value.leading_zeros() as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Record a [`Duration`] in nanoseconds.
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded values (exact, from the running sum).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The quantile `q ∈ [0, 1]`, resolved to the upper bound of the
    /// bucket containing it, clamped to the recorded min/max. Returns 0
    /// when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = match b {
                    0 => 0,
                    64 => u64::MAX,
                    _ => (1u64 << b) - 1,
                };
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The raw per-bucket counts (65 power-of-two buckets; see type docs).
    pub fn bucket_counts(&self) -> &[u64; 65] {
        &self.buckets
    }

    /// Sum of all recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Rebuild a histogram from exported parts (the inverse of reading
    /// [`bucket_counts`](Self::bucket_counts)/[`sum`](Self::sum)/
    /// [`min`](Self::min)/[`max`](Self::max)). The count is derived from
    /// the buckets so the pair can never disagree; empty buckets yield an
    /// empty histogram regardless of `min`/`max`.
    pub fn from_parts(buckets: [u64; 65], sum: u64, min: u64, max: u64) -> Histogram {
        let count: u64 = buckets.iter().sum();
        if count == 0 {
            return Histogram::default();
        }
        Histogram {
            buckets,
            count,
            sum,
            min,
            max,
        }
    }

    /// Merge another histogram's observations into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_accumulates_per_step() {
        let mut t = StepTimer::new();
        let v = t.time(Step::MetaLoss, || {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(v, 42);
        t.time(Step::InnerOptimization, || {
            std::thread::sleep(Duration::from_millis(1));
        });
        assert!(t.total(Step::MetaLoss) >= Duration::from_millis(5));
        assert!(t.total(Step::LoadData).is_zero());
        assert!(t.epoch_total() >= t.total(Step::MetaLoss));
    }

    #[test]
    fn proportions_sum_to_one_when_timed() {
        let mut t = StepTimer::new();
        t.time(Step::LoadData, || {
            std::thread::sleep(Duration::from_millis(2))
        });
        t.time(Step::Backward, || {
            std::thread::sleep(Duration::from_millis(2))
        });
        let p = t.proportions();
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn proportions_zero_when_untimed() {
        let t = StepTimer::new();
        assert_eq!(t.proportions(), [0.0; 5]);
    }

    #[test]
    fn merge_adds_totals() {
        let mut a = StepTimer::new();
        a.time(Step::MetaLoss, || {
            std::thread::sleep(Duration::from_millis(1))
        });
        let mut b = StepTimer::new();
        b.time(Step::MetaLoss, || {
            std::thread::sleep(Duration::from_millis(1))
        });
        let before = a.total(Step::MetaLoss);
        a.merge(&b);
        assert!(a.total(Step::MetaLoss) > before);
    }

    #[test]
    fn op_counter_totals() {
        let mut c = OpCounter::new();
        c.add_forward(3);
        c.add_backward(2);
        assert_eq!(c.total(), 5);
        assert_eq!(c.forward, 3);
        assert_eq!(c.backward, 2);
    }

    #[test]
    fn step_labels_match_table_iii() {
        assert_eq!(Step::MetaLoss.label(), "calculating the meta-losses");
        assert_eq!(Step::ALL.len(), 5);
    }

    #[test]
    fn histogram_empty_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn histogram_quantiles_are_within_a_bucket() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        // p50's true value is 500; the bucket upper bound is 511.
        let p50 = h.quantile(0.5);
        assert!((500..=1023).contains(&p50), "p50 {p50}");
        // p99 true value 990, bucket upper bound 1023 clamped to max 1000.
        let p99 = h.quantile(0.99);
        assert!((990..=1000).contains(&p99), "p99 {p99}");
        // Quantiles never move backwards.
        assert!(h.quantile(0.99) >= h.quantile(0.5));
        assert!((h.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_handles_extremes() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    #[test]
    fn histogram_merge_combines_counts() {
        let mut a = Histogram::new();
        a.record(10);
        let mut b = Histogram::new();
        b.record(1000);
        b.record_duration(Duration::from_nanos(3));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 3);
        assert_eq!(a.max(), 1000);
    }
}
