//! Robustness baselines: Group DRO, V-REx, and IRMv1.
//!
//! Group DRO and V-REx both need every environment's loss *and* gradient at
//! the same `θ` each epoch, so they run one fused
//! [`kernels::env_loss_grad`] pass per environment — environments in
//! parallel — and then apply their per-environment coefficients in a serial
//! env-order merge, keeping results bit-identical for any thread count.

use crate::env::EnvDataset;
use crate::kernels;
use crate::lr::{env_loss, sigmoid, LrModel};
use crate::sparse::MultiHotMatrix;
use crate::timing::{OpCounter, Step, StepTimer};
use crate::trainers::{active_envs_checked, EpochObserver, TrainConfig, TrainOutput, TrainedModel};
use rayon::prelude::*;

/// Group Distributionally Robust Optimization (Sagawa et al.):
/// exponentiated-gradient ascent on group weights `q`, descent on the
/// `q`-weighted loss — optimizing the worst group.
#[derive(Debug, Clone)]
pub struct GroupDroTrainer {
    pub config: TrainConfig,
    /// Step size of the exponentiated-gradient update on `q`.
    pub group_step: f64,
}

impl GroupDroTrainer {
    /// Build with the given config and group step size.
    pub fn new(config: TrainConfig, group_step: f64) -> Self {
        GroupDroTrainer { config, group_step }
    }

    /// Train by alternating the `q` ascent and the θ descent.
    pub fn fit(&self, data: &EnvDataset, mut observer: Option<EpochObserver<'_>>) -> TrainOutput {
        let mut timer = StepTimer::new();
        let mut ops = OpCounter::new();
        let envs = active_envs_checked(data);
        let mut model = LrModel::zeros(data.n_cols());
        let mut q = vec![1.0 / envs.len() as f64; envs.len()];
        // Per-environment (loss, gradient) slots, reused every epoch.
        let mut env_state: Vec<(f64, Vec<f64>)> = envs
            .iter()
            .map(|_| (0.0, vec![0.0; data.n_cols()]))
            .collect();
        let mut weighted = vec![0.0; data.n_cols()];
        let mut momentum = crate::trainers::Momentum::new(data.n_cols(), self.config.momentum);
        for epoch in 0..self.config.epochs {
            // One fused pass per environment at the current θ: the loss
            // feeds the q ascent, the gradient the descent, and the logits
            // are computed once.
            timer.time(Step::Backward, || {
                let weights = &model.weights;
                env_state.par_iter_mut().enumerate().for_each(|(i, slot)| {
                    let (loss, grad) = slot;
                    *loss = kernels::env_loss_grad(
                        weights,
                        &data.x,
                        &data.labels,
                        data.env_rows(envs[i]),
                        self.config.reg,
                        grad,
                    );
                });
            });
            ops.add_forward(envs.len() as u64);
            ops.add_backward(envs.len() as u64);
            // Ascent on q: q_m ∝ q_m exp(η L_m).
            for (qi, (l, _)) in q.iter_mut().zip(&env_state) {
                *qi *= (self.group_step * l).exp();
            }
            let z: f64 = q.iter().sum();
            for qi in q.iter_mut() {
                *qi /= z;
            }
            // Descent on the q-weighted loss, merged serially in env order.
            weighted.fill(0.0);
            for (i, (_, grad)) in env_state.iter().enumerate() {
                for (w, &g) in weighted.iter_mut().zip(grad) {
                    *w += q[i] * g;
                }
            }
            momentum.step(&mut model.weights, self.config.outer_lr, &weighted);
            if let Some(obs) = observer.as_mut() {
                obs(epoch, &model);
            }
        }
        TrainOutput {
            model: TrainedModel::Global(model),
            timer,
            ops,
            epochs_run: self.config.epochs,
        }
    }

    /// The final group weights are internal state; expose the trainer's
    /// worst-group focus for diagnostics by recomputing them.
    pub fn group_weights(&self, data: &EnvDataset, model: &LrModel) -> Vec<f64> {
        let envs = data.active_envs();
        let losses: Vec<f64> = envs
            .iter()
            .map(|&m| {
                env_loss(
                    &model.weights,
                    &data.x,
                    &data.labels,
                    data.env_rows(m),
                    self.config.reg,
                )
            })
            .collect();
        let max = losses.iter().cloned().fold(f64::MIN, f64::max);
        let exp: Vec<f64> = losses
            .iter()
            .map(|&l| (self.group_step * (l - max)).exp())
            .collect();
        let z: f64 = exp.iter().sum();
        exp.into_iter().map(|e| e / z).collect()
    }
}

/// V-REx (Krueger et al.): minimize `mean_m R_m + λ_v · Var_m(R_m)`, the
/// variance pushing per-environment risks together.
#[derive(Debug, Clone)]
pub struct VRexTrainer {
    pub config: TrainConfig,
    /// Variance penalty weight λ_v.
    pub variance_weight: f64,
}

impl VRexTrainer {
    /// Build with the given config and variance weight.
    pub fn new(config: TrainConfig, variance_weight: f64) -> Self {
        VRexTrainer {
            config,
            variance_weight,
        }
    }

    /// Train on the variance-penalized objective.
    pub fn fit(&self, data: &EnvDataset, mut observer: Option<EpochObserver<'_>>) -> TrainOutput {
        let mut timer = StepTimer::new();
        let mut ops = OpCounter::new();
        let envs = active_envs_checked(data);
        let m_count = envs.len() as f64;
        let mut model = LrModel::zeros(data.n_cols());
        // Per-environment (loss, gradient) slots, reused every epoch.
        let mut env_state: Vec<(f64, Vec<f64>)> = envs
            .iter()
            .map(|_| (0.0, vec![0.0; data.n_cols()]))
            .collect();
        let mut total = vec![0.0; data.n_cols()];
        let mut momentum = crate::trainers::Momentum::new(data.n_cols(), self.config.momentum);
        for epoch in 0..self.config.epochs {
            // Both the risks (for the variance coefficients) and the
            // gradients are taken at the same θ — one fused pass per env.
            timer.time(Step::Backward, || {
                let weights = &model.weights;
                env_state.par_iter_mut().enumerate().for_each(|(i, slot)| {
                    let (loss, grad) = slot;
                    *loss = kernels::env_loss_grad(
                        weights,
                        &data.x,
                        &data.labels,
                        data.env_rows(envs[i]),
                        self.config.reg,
                        grad,
                    );
                });
            });
            ops.add_forward(envs.len() as u64);
            ops.add_backward(envs.len() as u64);
            let mean = env_state.iter().map(|(l, _)| l).sum::<f64>() / m_count;
            // ∂/∂R_m [mean + λ_v var] = 1/M + λ_v · 2 (R_m − mean)/M.
            total.fill(0.0);
            for (loss, grad) in &env_state {
                let coef = 1.0 / m_count + self.variance_weight * 2.0 * (loss - mean) / m_count;
                for (t, &g) in total.iter_mut().zip(grad) {
                    *t += coef * g;
                }
            }
            momentum.step(&mut model.weights, self.config.outer_lr, &total);
            if let Some(obs) = observer.as_mut() {
                obs(epoch, &model);
            }
        }
        TrainOutput {
            model: TrainedModel::Global(model),
            timer,
            ops,
            epochs_run: self.config.epochs,
        }
    }
}

/// IRMv1 (Arjovsky et al.): the penalty `‖∇_{w|w=1} R_m(w·θ)‖²` per
/// environment, in closed form for logistic regression. Included because
/// the paper positions meta-IRM as the fix for IRMv1's brittleness.
#[derive(Debug, Clone)]
pub struct Irmv1Trainer {
    pub config: TrainConfig,
    /// IRM penalty weight.
    pub penalty_weight: f64,
}

impl Irmv1Trainer {
    /// Build with the given config and penalty weight.
    pub fn new(config: TrainConfig, penalty_weight: f64) -> Self {
        Irmv1Trainer {
            config,
            penalty_weight,
        }
    }

    /// The per-environment dummy-classifier gradient
    /// `D_m = d/dw R_m(w·θ)|_{w=1} = 1/n Σ (σ(zᵢ) − yᵢ) zᵢ`
    /// and its θ-gradient
    /// `∇_θ D_m = 1/n Σ [σ'(zᵢ) zᵢ + (σ(zᵢ) − yᵢ)] xᵢ`.
    fn dummy_grad(
        theta: &[f64],
        x: &MultiHotMatrix,
        labels: &[u8],
        rows: &[u32],
        out: &mut [f64],
    ) -> f64 {
        out.fill(0.0);
        let inv_n = 1.0 / rows.len() as f64;
        let mut d = 0.0;
        for &r in rows {
            let r = r as usize;
            let z = x.dot_row(r, theta);
            let p = sigmoid(z);
            let resid = p - labels[r] as f64;
            d += resid * z * inv_n;
            let coef = (p * (1.0 - p) * z + resid) * inv_n;
            x.scatter_add(r, coef, out);
        }
        d
    }

    /// Train on `Σ_m R_m/M + penalty · Σ_m D_m²/M`.
    pub fn fit(&self, data: &EnvDataset, mut observer: Option<EpochObserver<'_>>) -> TrainOutput {
        let mut timer = StepTimer::new();
        let mut ops = OpCounter::new();
        let envs = active_envs_checked(data);
        let m_count = envs.len() as f64;
        let mut model = LrModel::zeros(data.n_cols());
        let mut grad = vec![0.0; data.n_cols()];
        let mut dummy = vec![0.0; data.n_cols()];
        let mut total = vec![0.0; data.n_cols()];
        let mut momentum = crate::trainers::Momentum::new(data.n_cols(), self.config.momentum);
        for epoch in 0..self.config.epochs {
            total.fill(0.0);
            for &m in &envs {
                let rows = data.env_rows(m);
                timer.time(Step::Backward, || {
                    kernels::env_grad(
                        &model.weights,
                        &data.x,
                        &data.labels,
                        rows,
                        self.config.reg,
                        &mut grad,
                    );
                });
                ops.add_backward(1);
                let d = timer.time(Step::MetaLoss, || {
                    Self::dummy_grad(&model.weights, &data.x, &data.labels, rows, &mut dummy)
                });
                ops.add_forward(1);
                for ((t, &g), &dg) in total.iter_mut().zip(&grad).zip(&dummy) {
                    *t += (g + self.penalty_weight * 2.0 * d * dg) / m_count;
                }
            }
            momentum.step(&mut model.weights, self.config.outer_lr, &total);
            if let Some(obs) = observer.as_mut() {
                obs(epoch, &model);
            }
        }
        TrainOutput {
            model: TrainedModel::Global(model),
            timer,
            ops,
            epochs_run: self.config.epochs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two environments: env 0 large & easy, env 1 small & differently
    /// distributed (its positives also carry column 3).
    fn toy() -> EnvDataset {
        let mut idx = Vec::new();
        let mut labels = Vec::new();
        let mut envs = Vec::new();
        for i in 0..240 {
            let env = (i % 4 == 0) as u16;
            let y = (i % 3 == 0) as u8;
            let signal = if env == 0 {
                if y == 1 {
                    0u32
                } else {
                    1
                }
            } else {
                // The small env's signal lives in different leaves.
                if y == 1 {
                    2
                } else {
                    3
                }
            };
            let marker = if env == 1 { 5u32 } else { 4 };
            idx.extend_from_slice(&[signal, marker]);
            labels.push(y);
            envs.push(env);
        }
        let x = MultiHotMatrix::new(idx, 2, 6).unwrap();
        EnvDataset::new(x, labels, envs, vec!["big".into(), "small".into()]).unwrap()
    }

    fn cfg(epochs: usize) -> TrainConfig {
        TrainConfig {
            epochs,
            outer_lr: 1.0,
            ..Default::default()
        }
    }

    fn env_losses(model: &LrModel, data: &EnvDataset) -> Vec<f64> {
        data.active_envs()
            .iter()
            .map(|&m| env_loss(&model.weights, &data.x, &data.labels, data.env_rows(m), 0.0))
            .collect()
    }

    #[test]
    fn group_dro_reduces_worst_group_loss() {
        let data = toy();
        let erm = crate::trainers::ErmTrainer::new(cfg(80)).fit(&data, None);
        let dro = GroupDroTrainer::new(cfg(80), 0.5).fit(&data, None);
        let worst = |m: &LrModel| env_losses(m, &data).into_iter().fold(f64::MIN, f64::max);
        assert!(
            worst(dro.model.global()) <= worst(erm.model.global()) + 1e-6,
            "DRO worst-group loss should not exceed ERM's"
        );
    }

    #[test]
    fn group_dro_weights_concentrate_on_worst_group() {
        let data = toy();
        let out = GroupDroTrainer::new(cfg(10), 1.0).fit(&data, None);
        let trainer = GroupDroTrainer::new(cfg(10), 1.0);
        let q = trainer.group_weights(&data, out.model.global());
        let losses = env_losses(out.model.global(), &data);
        let worst_env = losses
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let best_q = q
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(worst_env, best_q);
        assert!((q.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn vrex_narrows_the_risk_gap() {
        let data = toy();
        let plain = VRexTrainer::new(cfg(80), 0.0).fit(&data, None);
        let penalized = VRexTrainer::new(cfg(80), 10.0).fit(&data, None);
        let gap = |m: &LrModel| {
            let l = env_losses(m, &data);
            (l[0] - l[1]).abs()
        };
        assert!(
            gap(penalized.model.global()) <= gap(plain.model.global()) + 1e-9,
            "variance penalty should shrink the env-risk gap"
        );
    }

    #[test]
    fn vrex_zero_weight_equals_upsampling() {
        // With λ_v = 0 the objective is exactly the balanced mean risk.
        let data = toy();
        let a = VRexTrainer::new(cfg(20), 0.0).fit(&data, None);
        let b = crate::trainers::UpSamplingTrainer::new(cfg(20)).fit(&data, None);
        for (x, y) in a
            .model
            .global()
            .weights
            .iter()
            .zip(&b.model.global().weights)
        {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn irmv1_dummy_gradient_matches_finite_difference() {
        let data = toy();
        let rows = data.env_rows(0);
        let theta: Vec<f64> = (0..6).map(|i| 0.2 * i as f64 - 0.5).collect();
        let mut dummy = vec![0.0; 6];
        let d = Irmv1Trainer::dummy_grad(&theta, &data.x, &data.labels, rows, &mut dummy);
        // Finite difference of w ↦ R(w·θ) at w = 1.
        let eps = 1e-6;
        let loss_at_w = |w: f64| {
            let scaled: Vec<f64> = theta.iter().map(|t| w * t).collect();
            env_loss(&scaled, &data.x, &data.labels, rows, 0.0)
        };
        let fd = (loss_at_w(1.0 + eps) - loss_at_w(1.0 - eps)) / (2.0 * eps);
        assert!((d - fd).abs() < 1e-7, "dummy grad {d} vs fd {fd}");
        // And ∇_θ D via finite differences.
        for i in 0..6 {
            let mut plus = theta.clone();
            plus[i] += eps;
            let mut minus = theta.clone();
            minus[i] -= eps;
            let mut scratch = vec![0.0; 6];
            let dp = Irmv1Trainer::dummy_grad(&plus, &data.x, &data.labels, rows, &mut scratch);
            let dm = Irmv1Trainer::dummy_grad(&minus, &data.x, &data.labels, rows, &mut scratch);
            let fd = (dp - dm) / (2.0 * eps);
            assert!(
                (dummy[i] - fd).abs() < 1e-6,
                "∇D[{i}] {} vs fd {fd}",
                dummy[i]
            );
        }
    }

    #[test]
    fn irmv1_trains_to_reasonable_accuracy() {
        let data = toy();
        let out = Irmv1Trainer::new(cfg(80), 0.5).fit(&data, None);
        let rows = data.all_rows();
        let ps = out.model.predict_rows(&data.x, &rows, &data.env_ids);
        let acc = ps
            .iter()
            .zip(&data.labels)
            .filter(|&(&p, &y)| (p >= 0.5) == (y != 0))
            .count() as f64
            / rows.len() as f64;
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn op_counts_scale_linearly_in_envs() {
        let data = toy();
        let epochs = 7u64;
        let m = data.active_envs().len() as u64;
        let dro = GroupDroTrainer::new(cfg(epochs as usize), 0.5).fit(&data, None);
        assert_eq!(dro.ops.total(), epochs * 2 * m);
        let vrex = VRexTrainer::new(cfg(epochs as usize), 1.0).fit(&data, None);
        assert_eq!(vrex.ops.total(), epochs * 2 * m);
        let irm = Irmv1Trainer::new(cfg(epochs as usize), 1.0).fit(&data, None);
        assert_eq!(irm.ops.total(), epochs * 2 * m);
    }
}
