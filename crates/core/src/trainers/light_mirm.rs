//! LightMIRM (paper Algorithm 2): meta-IRM accelerated by environment
//! sampling and meta-loss replaying.
//!
//! Per outer iteration, for every environment `m`:
//!
//! 1. **Inner step** as in meta-IRM (lines 6–7);
//! 2. **Environment sampling** (line 8) — draw one `s_m ≠ m`;
//! 3. **Meta-loss replaying** (lines 9–10) — compute only
//!    `R^{s_m}(θ̄_m)`, push it into the per-environment MRQ, and read the
//!    decayed recombination as the approximate meta-loss;
//! 4. **Outer update** (lines 12–13) — as meta-IRM, except gradients flow
//!    only through the newest queue entry ("only the last element in the
//!    queue has gradients"), so the backward cost is `O(M)`.
//!
//! Per-iteration first-order op count: `M` (line 6) + `M` (line 7) + `M`
//! (line 9) + `M` (line 13) = `4M`, asserted exactly in tests against
//! meta-IRM's `2M²`.
//!
//! Execution: each phase runs env-parallel on the fused kernels of
//! [`crate::kernels`] (lines 6–7 are one fused pass that also caches the
//! logits the line-13 HVP reuses), all `s_m` are drawn up front on the
//! serial RNG stream, and per-environment contributions merge in env
//! order — training is bit-identical for any thread count.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

use crate::env::EnvDataset;
use crate::kernels::{self, EnvScratch, ScratchPool};
use crate::lr::LrModel;
use crate::mrq::MetaReplayQueue;
use crate::timing::{OpCounter, Step, StepTimer};
use crate::trainers::{
    active_envs_checked, axpy_neg, sigma_coefficients, EpochObserver, MetaObs, TrainConfig,
    TrainOutput, TrainedModel,
};

/// LightMIRM trainer.
#[derive(Debug, Clone)]
pub struct LightMirmTrainer {
    pub config: TrainConfig,
    /// Length `L` of the meta-loss replaying queue (paper default 5).
    pub mrq_len: usize,
    /// Decay coefficient γ of Eq. (9) (paper default 0.9).
    pub gamma: f64,
}

impl LightMirmTrainer {
    /// Build with the paper's default MRQ length 5 and γ = 0.9.
    pub fn new(config: TrainConfig) -> Self {
        Self::with_mrq(config, 5, 0.9)
    }

    /// Build with explicit MRQ length and decay (the ablations of
    /// Fig. 9 and Table IV).
    ///
    /// # Panics
    ///
    /// Panics when `mrq_len == 0` or `gamma` is outside `(0, 1]`.
    pub fn with_mrq(config: TrainConfig, mrq_len: usize, gamma: f64) -> Self {
        assert!(mrq_len >= 1, "MRQ length must be positive");
        assert!(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0, 1]");
        LightMirmTrainer {
            config,
            mrq_len,
            gamma,
        }
    }

    /// Train per Algorithm 2, starting from the zero head.
    pub fn fit(&self, data: &EnvDataset, observer: Option<EpochObserver<'_>>) -> TrainOutput {
        self.fit_warm(data, LrModel::zeros(data.n_cols()), observer)
    }

    /// Train per Algorithm 2 from an explicit initial head — the online
    /// adaptation warm start: the serving layer seeds the retrain with
    /// the champion's weights so few epochs over a small labeled buffer
    /// suffice. `fit` is exactly `fit_warm` from the zero head, so the
    /// two are bit-identical on that initialization.
    ///
    /// # Panics
    ///
    /// Panics when `init.weights.len() != data.n_cols()`.
    pub fn fit_warm(
        &self,
        data: &EnvDataset,
        init: LrModel,
        mut observer: Option<EpochObserver<'_>>,
    ) -> TrainOutput {
        assert_eq!(
            init.weights.len(),
            data.n_cols(),
            "warm-start head dimension must match the dataset"
        );
        let mut timer = StepTimer::new();
        let mut ops = OpCounter::new();
        let envs = timer.time(Step::LoadData, || active_envs_checked(data));
        let n_cols = data.n_cols();
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let mut model = init;

        // One MRQ per environment, zero-initialized (Algorithm 2 line 1).
        let mut queues: Vec<MetaReplayQueue> = envs
            .iter()
            .map(|_| MetaReplayQueue::new(self.mrq_len))
            .collect();

        // Per-environment scratch (θ̄, gradients, u, HVP, logit cache),
        // allocated once and reused every epoch.
        let env_sizes: Vec<usize> = envs.iter().map(|&m| data.env_rows(m).len()).collect();
        let mut pool = ScratchPool::new(n_cols, &env_sizes);
        let mut outer = vec![0.0; n_cols];
        let mut momentum = crate::trainers::Momentum::new(n_cols, self.config.momentum);
        let mobs = MetaObs::new("lightmirm", &envs);

        for epoch in 0..self.config.epochs {
            let _epoch_span = crate::span!("train_epoch", trainer = "lightmirm", epoch = epoch);
            // ---- sample s_m ≠ m: line 8 ----------------------------------
            // All draws happen up front on the single ChaCha stream, so
            // the sampling sequence is independent of the parallel
            // schedule below. `s_m ≠ m` is drawn directly by index shift
            // (one uniform over the M−1 other positions) instead of a
            // rejection loop.
            let sampled: Vec<usize> = if envs.len() == 1 {
                vec![envs[0]] // degenerate single-env world: self is the only option
            } else {
                (0..envs.len())
                    .map(|i| {
                        let j = rng.gen_range(0..envs.len() - 1);
                        envs[if j >= i { j + 1 } else { j }]
                    })
                    .collect()
            };

            // ---- inner step: lines 6–7, env-parallel --------------------
            // One fused pass per environment yields R^m(θ) (line 6) and
            // ∇R^m(θ) (line 7) while caching the logits the outer HVP at
            // the same θ will reuse. The paper's accounting still charges
            // one forward and one backward per environment.
            timer.time(Step::InnerOptimization, || {
                let weights = &model.weights;
                let mobs = mobs.as_ref();
                pool.slots_mut()
                    .par_iter_mut()
                    .enumerate()
                    .for_each(|(i, slot)| {
                        let _span = crate::span!("inner_step", env = envs[i]);
                        let t0 = mobs.map(|_| std::time::Instant::now());
                        let EnvScratch {
                            theta_bar,
                            grad,
                            logits,
                            ..
                        } = slot;
                        let _inner_loss = kernels::env_loss_grad_cached(
                            weights,
                            &data.x,
                            &data.labels,
                            data.env_rows(envs[i]),
                            self.config.reg,
                            grad,
                            logits,
                        );
                        theta_bar.copy_from_slice(weights);
                        axpy_neg(theta_bar, self.config.inner_lr, grad);
                        if let (Some(mo), Some(t0)) = (mobs, t0) {
                            mo.inner_step[i].record_duration(t0.elapsed());
                        }
                    });
            });
            ops.add_forward(envs.len() as u64);
            ops.add_backward(envs.len() as u64);
            if let Some(mo) = &mobs {
                for &s in &sampled {
                    if let Some(pos) = envs.iter().position(|&e| e == s) {
                        mo.sampled_env[pos].inc();
                    }
                }
            }

            // ---- replay: lines 9–10, env-parallel -----------------------
            let sampled_losses: Vec<f64> = timer.time(Step::MetaLoss, || {
                pool.slots()
                    .par_iter()
                    .enumerate()
                    .map(|(i, slot)| {
                        kernels::env_loss(
                            &slot.theta_bar,
                            &data.x,
                            &data.labels,
                            data.env_rows(sampled[i]),
                            self.config.reg,
                        )
                    })
                    .collect()
            });
            ops.add_forward(envs.len() as u64);
            for (queue, &loss) in queues.iter_mut().zip(&sampled_losses) {
                queue.push(loss);
            }

            // R_meta per env: the decay-normalized replayed loss.
            let meta_losses: Vec<f64> =
                queues.iter().map(|q| q.replayed_mean(self.gamma)).collect();
            if let Some(mo) = &mobs {
                mo.mrq_push.add(envs.len() as u64);
                mo.mrq_replay.add(envs.len() as u64);
                mo.record_sigma(&meta_losses);
            }

            // ---- outer update: lines 12–13 ------------------------------
            // Gradient flows only through the newest queue entry,
            // R^{s_m}(θ̄_m), whose weight inside the replayed mean is
            // `newest_weight`.
            let coefs = sigma_coefficients(&meta_losses, self.config.lambda);
            let w_news: Vec<f64> = queues.iter().map(|q| q.newest_weight(self.gamma)).collect();
            let outer_t0 = mobs.as_ref().map(|_| std::time::Instant::now());
            timer.time(Step::Backward, || {
                pool.slots_mut()
                    .par_iter_mut()
                    .enumerate()
                    .for_each(|(i, slot)| {
                        let EnvScratch {
                            theta_bar,
                            u,
                            hvp,
                            logits,
                            ..
                        } = slot;
                        kernels::env_grad(
                            theta_bar,
                            &data.x,
                            &data.labels,
                            data.env_rows(sampled[i]),
                            self.config.reg,
                            u,
                        );
                        // Chain through the inner step: u − α H_m(θ) u.
                        // The Hessian is at θ over env m's rows — exactly
                        // where the inner pass cached the logits.
                        kernels::hvp_from_logits(
                            logits,
                            &data.x,
                            data.env_rows(envs[i]),
                            self.config.reg,
                            u,
                            hvp,
                        );
                        for (ui, &h) in u.iter_mut().zip(hvp.iter()) {
                            *ui -= self.config.inner_lr * h;
                        }
                    });
            });
            ops.add_backward(envs.len() as u64);
            ops.add_hvp(envs.len() as u64);
            // Ordered merge: environments accumulate in env order, so the
            // outer gradient is independent of the parallel schedule.
            outer.fill(0.0);
            for (i, slot) in pool.slots().iter().enumerate() {
                let scale = coefs[i] * w_news[i];
                for (o, &ui) in outer.iter_mut().zip(&slot.u) {
                    *o += scale * ui;
                }
            }
            momentum.step(&mut model.weights, self.config.outer_lr, &outer);
            if let (Some(mo), Some(t0)) = (&mobs, outer_t0) {
                mo.outer_step.record_duration(t0.elapsed());
                mo.epochs.inc();
            }
            if let Some(obs) = observer.as_mut() {
                obs(epoch, &model);
            }
        }
        TrainOutput {
            model: TrainedModel::Global(model),
            timer,
            ops,
            epochs_run: self.config.epochs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::MultiHotMatrix;
    use crate::trainers::MetaIrmTrainer;

    /// Same anti-causal toy as the meta-IRM tests: invariant leaves 0/1,
    /// spurious leaves 2/3 that flip direction in env 2.
    fn irm_toy(rows_per_env: &[usize]) -> EnvDataset {
        let mut idx = Vec::new();
        let mut labels = Vec::new();
        let mut envs = Vec::new();
        let mut counter = 0usize;
        for (env, &n) in rows_per_env.iter().enumerate() {
            for _ in 0..n {
                counter += 1;
                let y = (counter % 2) as u8;
                let noise = counter.wrapping_mul(2654435761).is_multiple_of(4);
                let inv = if (y == 1) != noise { 0u32 } else { 1 };
                let spur_aligned = env < 2;
                let spur = if (y == 1) == spur_aligned { 2u32 } else { 3 };
                idx.extend_from_slice(&[inv, spur]);
                labels.push(y);
                envs.push(env as u16);
            }
        }
        let x = MultiHotMatrix::new(idx, 2, 4).unwrap();
        let names = (0..rows_per_env.len()).map(|i| format!("e{i}")).collect();
        EnvDataset::new(x, labels, envs, names).unwrap()
    }

    fn cfg(epochs: usize) -> TrainConfig {
        TrainConfig {
            epochs,
            inner_lr: 0.3,
            outer_lr: 1.0,
            lambda: 0.5,
            reg: 1e-4,
            momentum: 0.0,
            seed: 5,
        }
    }

    fn spurious_ratio(model: &LrModel) -> f64 {
        let inv = (model.weights[0] - model.weights[1]).abs();
        let spur = (model.weights[2] - model.weights[3]).abs();
        spur / inv.max(1e-9)
    }

    #[test]
    fn op_count_is_exactly_4m_per_epoch() {
        let data = irm_toy(&[50, 50, 50, 50]);
        let epochs = 3u64;
        let m = 4u64;
        let out = LightMirmTrainer::new(cfg(epochs as usize)).fit(&data, None);
        assert_eq!(out.ops.total(), epochs * 4 * m);
        assert_eq!(out.ops.hvp, epochs * m);
    }

    #[test]
    fn linear_vs_quadratic_scaling() {
        // The §III-F claim: as M grows, LightMIRM ops grow linearly and
        // meta-IRM ops quadratically.
        for m in [3usize, 5, 8] {
            let data = irm_toy(&vec![40; m]);
            let light = LightMirmTrainer::new(cfg(1)).fit(&data, None);
            let meta = MetaIrmTrainer::new(cfg(1)).fit(&data, None);
            assert_eq!(light.ops.total(), 4 * m as u64);
            assert_eq!(meta.ops.total(), 2 * (m * m) as u64);
        }
    }

    #[test]
    fn light_mirm_avoids_spurious_features() {
        let data = irm_toy(&[300, 300, 100]);
        let erm = crate::trainers::ErmTrainer::new(cfg(60)).fit(&data, None);
        let light = LightMirmTrainer::new(cfg(60)).fit(&data, None);
        let r_erm = spurious_ratio(erm.model.global());
        let r_light = spurious_ratio(light.model.global());
        assert!(
            r_light < r_erm,
            "LightMIRM spurious reliance {r_light:.3} should be below ERM's {r_erm:.3}"
        );
    }

    #[test]
    fn tracks_complete_meta_irm_on_the_toy() {
        // Fig. 6's qualitative claim: LightMIRM reaches the quality of the
        // complete meta-IRM. On this toy, compare the invariant-feature
        // alignment of both after training.
        let data = irm_toy(&[200, 200, 200]);
        let meta = MetaIrmTrainer::new(cfg(40)).fit(&data, None);
        let light = LightMirmTrainer::new(cfg(40)).fit(&data, None);
        let r_meta = spurious_ratio(meta.model.global());
        let r_light = spurious_ratio(light.model.global());
        assert!(
            (r_light - r_meta).abs() < 0.3,
            "light {r_light:.3} vs meta {r_meta:.3} should be in the same regime"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let data = irm_toy(&[80, 80, 80]);
        let a = LightMirmTrainer::new(cfg(6)).fit(&data, None);
        let b = LightMirmTrainer::new(cfg(6)).fit(&data, None);
        assert_eq!(a.model.global().weights, b.model.global().weights);
        let mut other = cfg(6);
        other.seed = 1234;
        let c = LightMirmTrainer::new(other).fit(&data, None);
        assert_ne!(a.model.global().weights, c.model.global().weights);
    }

    #[test]
    fn mrq_length_one_equals_pure_sampling_semantics() {
        // With L = 1 the replayed mean is exactly the newest sampled loss;
        // the trainer still runs and matches the 4M op count.
        let data = irm_toy(&[60, 60, 60]);
        let out = LightMirmTrainer::with_mrq(cfg(4), 1, 0.9).fit(&data, None);
        assert_eq!(out.ops.total(), 4 * 4 * 3);
    }

    #[test]
    fn gamma_one_is_uniform_replay() {
        let data = irm_toy(&[60, 60, 60]);
        // Should train without numerical issues at the γ = 1 boundary.
        let out = LightMirmTrainer::with_mrq(cfg(10), 5, 1.0).fit(&data, None);
        assert!(out.model.global().weights.iter().all(|w| w.is_finite()));
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn rejects_gamma_above_one() {
        let _ = LightMirmTrainer::with_mrq(cfg(1), 5, 1.5);
    }

    #[test]
    #[should_panic(expected = "MRQ length")]
    fn rejects_zero_queue() {
        let _ = LightMirmTrainer::with_mrq(cfg(1), 0, 0.9);
    }

    #[test]
    fn single_environment_degenerates_gracefully() {
        let data = irm_toy(&[100]);
        let out = LightMirmTrainer::new(cfg(5)).fit(&data, None);
        assert!(out.model.global().weights.iter().all(|w| w.is_finite()));
    }

    #[test]
    fn fit_warm_from_zeros_is_bit_identical_to_fit() {
        let data = irm_toy(&[80, 80, 80]);
        let cold = LightMirmTrainer::new(cfg(6)).fit(&data, None);
        let warm =
            LightMirmTrainer::new(cfg(6)).fit_warm(&data, LrModel::zeros(data.n_cols()), None);
        assert_eq!(cold.model.global().weights, warm.model.global().weights);
    }

    #[test]
    fn fit_warm_starts_from_the_given_head() {
        let data = irm_toy(&[80, 80, 80]);
        let init = LrModel {
            weights: (0..data.n_cols()).map(|i| 0.25 * i as f64).collect(),
        };
        // Zero epochs: the warm start must come back untouched.
        let out = LightMirmTrainer::new(cfg(0)).fit_warm(&data, init.clone(), None);
        assert_eq!(out.model.global().weights, init.weights);
        // And a different init must steer a short run elsewhere.
        let warm = LightMirmTrainer::new(cfg(3)).fit_warm(&data, init, None);
        let cold = LightMirmTrainer::new(cfg(3)).fit(&data, None);
        assert_ne!(warm.model.global().weights, cold.model.global().weights);
    }

    #[test]
    #[should_panic(expected = "warm-start head dimension")]
    fn fit_warm_rejects_dimension_mismatch() {
        let data = irm_toy(&[40, 40]);
        let _ = LightMirmTrainer::new(cfg(1)).fit_warm(&data, LrModel::zeros(3), None);
    }

    #[test]
    fn observer_called_every_epoch() {
        let data = irm_toy(&[60, 60]);
        let mut count = 0usize;
        let mut obs = |_e: usize, _m: &LrModel| count += 1;
        LightMirmTrainer::new(cfg(7)).fit(&data, Some(&mut obs));
        assert_eq!(count, 7);
    }
}
