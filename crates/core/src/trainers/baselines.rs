//! ERM, ERM + per-province fine-tuning, and environment up-sampling.
//!
//! Gradients run on the chunked-parallel kernels of [`crate::kernels`];
//! the up-sampling trainer additionally computes its per-environment
//! gradients env-parallel and merges them in env order, so results are
//! bit-identical for any thread count.

use rayon::prelude::*;

use crate::env::EnvDataset;
use crate::kernels;
use crate::lr::LrModel;
use crate::timing::{OpCounter, Step, StepTimer};
use crate::trainers::{
    active_envs_checked, axpy_neg, EpochObserver, MetaObs, TrainConfig, TrainOutput, TrainedModel,
};

/// Plain Empirical Risk Minimization on the pooled binary cross entropy
/// (the paper's primary baseline): full-batch gradient descent by
/// default, mini-batch SGD when a batch size is set (paper footnote 6).
#[derive(Debug, Clone)]
pub struct ErmTrainer {
    pub config: TrainConfig,
    /// Mini-batch size; `None` = full batch.
    pub batch_size: Option<usize>,
}

impl ErmTrainer {
    /// Build with the given config (full-batch).
    pub fn new(config: TrainConfig) -> Self {
        ErmTrainer {
            config,
            batch_size: None,
        }
    }

    /// Build a mini-batch SGD variant.
    pub fn with_batch_size(config: TrainConfig, batch_size: usize) -> Self {
        ErmTrainer {
            config,
            batch_size: Some(batch_size),
        }
    }

    /// Train on the pooled data, ignoring environments.
    pub fn fit(&self, data: &EnvDataset, mut observer: Option<EpochObserver<'_>>) -> TrainOutput {
        let mut timer = StepTimer::new();
        let mut ops = OpCounter::new();
        let rows = timer.time(Step::LoadData, || data.all_rows());
        let batcher = self
            .batch_size
            .map(|b| crate::batch::Batcher::new(&rows, b, self.config.seed));
        let mut model = LrModel::zeros(data.n_cols());
        let mut grad = vec![0.0; data.n_cols()];
        let mut momentum = crate::trainers::Momentum::new(data.n_cols(), self.config.momentum);
        let mobs = MetaObs::new("erm", &[]);
        for epoch in 0..self.config.epochs {
            let _epoch_span = crate::span!("train_epoch", trainer = "erm", epoch = epoch);
            let epoch_t0 = mobs.as_ref().map(|_| std::time::Instant::now());
            match &batcher {
                None => {
                    timer.time(Step::Backward, || {
                        kernels::env_grad(
                            &model.weights,
                            &data.x,
                            &data.labels,
                            &rows,
                            self.config.reg,
                            &mut grad,
                        );
                    });
                    ops.add_forward(1);
                    ops.add_backward(1);
                    momentum.step(&mut model.weights, self.config.outer_lr, &grad);
                }
                Some(batcher) => {
                    for batch in batcher.epoch(epoch) {
                        timer.time(Step::Backward, || {
                            kernels::env_grad(
                                &model.weights,
                                &data.x,
                                &data.labels,
                                &batch,
                                self.config.reg,
                                &mut grad,
                            );
                        });
                        ops.add_forward(1);
                        ops.add_backward(1);
                        momentum.step(&mut model.weights, self.config.outer_lr, &grad);
                    }
                }
            }
            if let (Some(mo), Some(t0)) = (&mobs, epoch_t0) {
                mo.outer_step.record_duration(t0.elapsed());
                mo.epochs.inc();
            }
            if let Some(obs) = observer.as_mut() {
                obs(epoch, &model);
            }
        }
        TrainOutput {
            model: TrainedModel::Global(model),
            timer,
            ops,
            epochs_run: self.config.epochs,
        }
    }
}

/// ERM followed by per-province fine-tuning: each environment gets extra
/// gradient steps on its own data only, and is evaluated with its own copy
/// (paper §IV-A1, "ERM + fine-tuning").
#[derive(Debug, Clone)]
pub struct FineTuneTrainer {
    pub config: TrainConfig,
    /// Extra epochs of per-environment fine-tuning.
    pub finetune_epochs: usize,
    /// Learning rate for the fine-tuning phase (usually smaller than the
    /// main rate — fine-tuning on a small province easily overfits, the
    /// instability the paper observes).
    pub finetune_lr: f64,
}

impl FineTuneTrainer {
    /// Build with the given config and fine-tuning schedule.
    pub fn new(config: TrainConfig, finetune_epochs: usize, finetune_lr: f64) -> Self {
        FineTuneTrainer {
            config,
            finetune_epochs,
            finetune_lr,
        }
    }

    /// Train the base ERM model, then fine-tune one copy per environment.
    pub fn fit(&self, data: &EnvDataset, observer: Option<EpochObserver<'_>>) -> TrainOutput {
        let base_out = ErmTrainer::new(self.config.clone()).fit(data, observer);
        let base = base_out.model.global().clone();
        let mut timer = base_out.timer;
        let mut ops = base_out.ops;

        let mut per_env: Vec<Option<LrModel>> = vec![None; data.n_envs()];
        let mut grad = vec![0.0; data.n_cols()];
        for m in active_envs_checked(data) {
            let rows = data.env_rows(m);
            // A province whose training slice is single-class cannot be
            // fine-tuned meaningfully; keep the base model for it.
            let pos = rows
                .iter()
                .filter(|&&r| data.labels[r as usize] != 0)
                .count();
            if pos == 0 || pos == rows.len() {
                continue;
            }
            let mut model = base.clone();
            for _ in 0..self.finetune_epochs {
                timer.time(Step::Backward, || {
                    kernels::env_grad(
                        &model.weights,
                        &data.x,
                        &data.labels,
                        rows,
                        self.config.reg,
                        &mut grad,
                    );
                });
                ops.add_forward(1);
                ops.add_backward(1);
                axpy_neg(&mut model.weights, self.finetune_lr, &grad);
            }
            per_env[m] = Some(model);
        }
        TrainOutput {
            model: TrainedModel::PerEnv { base, per_env },
            timer,
            ops,
            epochs_run: base_out.epochs_run + self.finetune_epochs,
        }
    }
}

/// Environment up-sampling: each environment contributes equally to the
/// loss regardless of size, i.e. the objective is the mean of the
/// per-environment risks (equivalent to up-sampling small provinces).
#[derive(Debug, Clone)]
pub struct UpSamplingTrainer {
    pub config: TrainConfig,
}

impl UpSamplingTrainer {
    /// Build with the given config.
    pub fn new(config: TrainConfig) -> Self {
        UpSamplingTrainer { config }
    }

    /// Train on the environment-balanced objective `1/M Σ_m R_m`.
    pub fn fit(&self, data: &EnvDataset, mut observer: Option<EpochObserver<'_>>) -> TrainOutput {
        let mut timer = StepTimer::new();
        let mut ops = OpCounter::new();
        let envs = active_envs_checked(data);
        let m_count = envs.len() as f64;
        let mut model = LrModel::zeros(data.n_cols());
        let mut total_grad = vec![0.0; data.n_cols()];
        // One gradient buffer per environment, reused every epoch.
        let mut env_grads = vec![vec![0.0; data.n_cols()]; envs.len()];
        let mut momentum = crate::trainers::Momentum::new(data.n_cols(), self.config.momentum);
        for epoch in 0..self.config.epochs {
            timer.time(Step::Backward, || {
                let weights = &model.weights;
                env_grads.par_iter_mut().enumerate().for_each(|(i, grad)| {
                    kernels::env_grad(
                        weights,
                        &data.x,
                        &data.labels,
                        data.env_rows(envs[i]),
                        self.config.reg,
                        grad,
                    );
                });
            });
            ops.add_forward(envs.len() as u64);
            ops.add_backward(envs.len() as u64);
            // Ordered merge in env order: thread-count independent.
            total_grad.fill(0.0);
            for grad in &env_grads {
                for (t, &g) in total_grad.iter_mut().zip(grad) {
                    *t += g / m_count;
                }
            }
            momentum.step(&mut model.weights, self.config.outer_lr, &total_grad);
            if let Some(obs) = observer.as_mut() {
                obs(epoch, &model);
            }
        }
        TrainOutput {
            model: TrainedModel::Global(model),
            timer,
            ops,
            epochs_run: self.config.epochs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::MultiHotMatrix;

    /// A 2-env toy: feature 0 is predictive everywhere; feature 2 helps in
    /// env 0 only. Multi-hot rows: [signal_leaf, env_leaf].
    fn toy() -> EnvDataset {
        // Columns: 0 = "risky leaf", 1 = "safe leaf", 2/3 = env-marker leaves.
        let mut idx = Vec::new();
        let mut labels = Vec::new();
        let mut envs = Vec::new();
        for i in 0..200 {
            let env = (i % 4 == 0) as u16; // env 1 has 25% of rows
            let y = (i % 3 == 0) as u8;
            let signal = if y == 1 { 0u32 } else { 1 };
            let marker = if env == 1 { 3u32 } else { 2 };
            idx.extend_from_slice(&[signal, marker]);
            labels.push(y);
            envs.push(env);
        }
        let x = MultiHotMatrix::new(idx, 2, 4).unwrap();
        EnvDataset::new(x, labels, envs, vec!["big".into(), "small".into()]).unwrap()
    }

    fn quick_config() -> TrainConfig {
        TrainConfig {
            epochs: 60,
            outer_lr: 1.0,
            ..Default::default()
        }
    }

    fn accuracy(model: &TrainedModel, data: &EnvDataset) -> f64 {
        let rows = data.all_rows();
        let ps = model.predict_rows(&data.x, &rows, &data.env_ids);
        ps.iter()
            .zip(&data.labels)
            .filter(|&(&p, &y)| (p >= 0.5) == (y != 0))
            .count() as f64
            / rows.len() as f64
    }

    #[test]
    fn erm_learns_separable_toy() {
        let data = toy();
        let out = ErmTrainer::new(quick_config()).fit(&data, None);
        assert!(accuracy(&out.model, &data) > 0.95);
    }

    #[test]
    fn erm_counts_two_ops_per_epoch() {
        let data = toy();
        let out = ErmTrainer::new(quick_config()).fit(&data, None);
        assert_eq!(out.ops.total(), 2 * quick_config().epochs as u64);
        assert_eq!(out.ops.hvp, 0);
    }

    #[test]
    fn erm_observer_sees_every_epoch() {
        let data = toy();
        let mut seen = Vec::new();
        let mut obs = |epoch: usize, _m: &LrModel| seen.push(epoch);
        ErmTrainer::new(quick_config()).fit(&data, Some(&mut obs));
        assert_eq!(seen.len(), quick_config().epochs);
        assert_eq!(seen[0], 0);
    }

    #[test]
    fn erm_loss_decreases() {
        let data = toy();
        let mut losses = Vec::new();
        let rows = data.all_rows();
        let mut obs = |_e: usize, m: &LrModel| {
            losses.push(crate::lr::env_loss(
                &m.weights,
                &data.x,
                &data.labels,
                &rows,
                0.0,
            ));
        };
        ErmTrainer::new(quick_config()).fit(&data, Some(&mut obs));
        assert!(losses.last().unwrap() < losses.first().unwrap());
    }

    #[test]
    fn minibatch_erm_learns_the_toy() {
        let data = toy();
        let mut cfg = quick_config();
        cfg.outer_lr = 0.3;
        cfg.momentum = 0.0;
        let out = ErmTrainer::with_batch_size(cfg, 32).fit(&data, None);
        assert!(accuracy(&out.model, &data) > 0.95);
        // 200 rows / 32 per batch = 7 batches per epoch.
        assert_eq!(out.ops.total(), 2 * 7 * quick_config().epochs as u64);
    }

    #[test]
    fn minibatch_erm_is_deterministic() {
        let data = toy();
        let a = ErmTrainer::with_batch_size(quick_config(), 16).fit(&data, None);
        let b = ErmTrainer::with_batch_size(quick_config(), 16).fit(&data, None);
        assert_eq!(a.model.global().weights, b.model.global().weights);
    }

    #[test]
    fn finetune_produces_per_env_models() {
        let data = toy();
        let out = FineTuneTrainer::new(quick_config(), 10, 0.2).fit(&data, None);
        match &out.model {
            TrainedModel::PerEnv { per_env, .. } => {
                assert!(per_env[0].is_some());
                assert!(per_env[1].is_some());
            }
            _ => panic!("expected per-env model"),
        }
        assert!(accuracy(&out.model, &data) > 0.95);
    }

    #[test]
    fn finetune_improves_env_specific_fit() {
        let data = toy();
        let base = ErmTrainer::new(quick_config()).fit(&data, None);
        let tuned = FineTuneTrainer::new(quick_config(), 25, 0.3).fit(&data, None);
        // Fine-tuned env-1 model should fit env 1 at least as well as the base.
        let rows1 = data.env_rows(1);
        let loss = |m: &LrModel| crate::lr::env_loss(&m.weights, &data.x, &data.labels, rows1, 0.0);
        let base_loss = loss(base.model.global());
        let tuned_loss = match &tuned.model {
            TrainedModel::PerEnv { per_env, .. } => loss(per_env[1].as_ref().unwrap()),
            _ => unreachable!(),
        };
        assert!(tuned_loss <= base_loss + 1e-9);
    }

    #[test]
    fn upsampling_learns_and_balances() {
        let data = toy();
        let out = UpSamplingTrainer::new(quick_config()).fit(&data, None);
        assert!(accuracy(&out.model, &data) > 0.9);
        // 2 ops per env per epoch.
        assert_eq!(out.ops.total(), 2 * 2 * quick_config().epochs as u64);
    }

    #[test]
    fn upsampling_weights_envs_equally() {
        // Env sizes differ 3:1; the balanced gradient equals the mean of
        // per-env gradients, not the pooled gradient. Check via one step.
        let data = toy();
        let mut cfg = quick_config();
        cfg.epochs = 1;
        cfg.reg = 0.0;
        let up = UpSamplingTrainer::new(cfg.clone()).fit(&data, None);
        let erm = ErmTrainer::new(cfg).fit(&data, None);
        let wu = &up.model.global().weights;
        let we = &erm.model.global().weights;
        // The env-marker columns (2, 3) receive different mass under the
        // two weightings.
        assert!(
            (wu[3] - we[3]).abs() > 1e-6,
            "balanced and pooled steps should differ on the small env's marker"
        );
    }
}
