//! Trainers: ERM and the fairness/robustness baselines of Table I, plus
//! the paper's meta-IRM (Algorithm 1) and LightMIRM (Algorithm 2).
//!
//! Every trainer consumes an [`EnvDataset`] and produces a [`TrainOutput`]
//! with the learned model, the Table-III step timings, the §III-F
//! operation counts, and space for an epoch observer to record training
//! curves (paper Figs. 6 and 8).

mod baselines;
mod light_mirm;
mod meta_irm;
mod robust;

pub use baselines::{ErmTrainer, FineTuneTrainer, UpSamplingTrainer};
pub use light_mirm::LightMirmTrainer;
pub use meta_irm::MetaIrmTrainer;
pub use robust::{GroupDroTrainer, Irmv1Trainer, VRexTrainer};

use crate::env::EnvDataset;
use crate::lr::LrModel;
use crate::timing::{OpCounter, StepTimer};

/// Hyper-parameters shared by all trainers.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct TrainConfig {
    /// Outer-loop epochs (full passes over the environments).
    pub epochs: usize,
    /// Inner-loop learning rate α (meta trainers only).
    pub inner_lr: f64,
    /// Outer/main learning rate β.
    pub outer_lr: f64,
    /// Weight λ of the meta-loss standard-deviation penalty σ.
    pub lambda: f64,
    /// L2 regularization on θ.
    pub reg: f64,
    /// Heavy-ball momentum on the outer/main update (0 disables).
    pub momentum: f64,
    /// RNG seed for environment sampling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 40,
            inner_lr: 0.5,
            outer_lr: 1.0,
            lambda: 0.5,
            reg: 1e-4,
            momentum: 0.0,
            seed: 17,
        }
    }
}

/// Heavy-ball update state: `v ← μv + g`, `θ ← θ − lr·v`.
#[derive(Debug, Clone)]
pub(crate) struct Momentum {
    velocity: Vec<f64>,
    mu: f64,
}

impl Momentum {
    pub(crate) fn new(dim: usize, mu: f64) -> Self {
        Momentum {
            velocity: vec![0.0; dim],
            mu,
        }
    }

    /// Apply one momentum step of `grad` to `theta`.
    pub(crate) fn step(&mut self, theta: &mut [f64], lr: f64, grad: &[f64]) {
        if self.mu == 0.0 {
            axpy_neg(theta, lr, grad);
            return;
        }
        for ((v, t), &g) in self.velocity.iter_mut().zip(theta.iter_mut()).zip(grad) {
            *v = self.mu * *v + g;
            *t -= lr * *v;
        }
    }
}

/// A trained predictor: a single global model, or a per-environment family
/// (the "ERM + fine-tuning" baseline evaluates each province with its own
/// fine-tuned copy).
#[derive(Debug, Clone)]
pub enum TrainedModel {
    /// One model scores every row.
    Global(LrModel),
    /// Per-environment fine-tuned copies with a global fallback for
    /// environments unseen in training.
    PerEnv {
        base: LrModel,
        per_env: Vec<Option<LrModel>>,
    },
}

impl TrainedModel {
    /// Score a set of rows, routing each through the appropriate model.
    pub fn predict_rows(
        &self,
        x: &crate::sparse::MultiHotMatrix,
        rows: &[u32],
        env_ids: &[u16],
    ) -> Vec<f64> {
        match self {
            TrainedModel::Global(model) => model.predict_rows(x, rows),
            TrainedModel::PerEnv { base, per_env } => rows
                .iter()
                .map(|&r| {
                    let env = env_ids[r as usize] as usize;
                    let model = per_env.get(env).and_then(Option::as_ref).unwrap_or(base);
                    model.predict_row(x, r as usize)
                })
                .collect(),
        }
    }

    /// The global (or base) model.
    pub fn global(&self) -> &LrModel {
        match self {
            TrainedModel::Global(m) => m,
            TrainedModel::PerEnv { base, .. } => base,
        }
    }
}

/// Everything a training run produces.
#[derive(Debug, Clone)]
pub struct TrainOutput {
    /// The learned predictor.
    pub model: TrainedModel,
    /// Table-III step timings accumulated over all epochs.
    pub timer: StepTimer,
    /// §III-F operation counts accumulated over all epochs.
    pub ops: OpCounter,
    /// Epochs actually run.
    pub epochs_run: usize,
}

/// Called after every epoch with `(epoch_index, current_model)`; used by
/// the experiment harness to record test-metric curves (Figs. 6/8).
pub type EpochObserver<'a> = &'a mut dyn FnMut(usize, &LrModel);

/// Pre-resolved metric handles for a training run — the trainers'
/// bridge to [`crate::obs`]. Constructed once per `fit` (`None` when
/// the `obs` feature is off, so instrumented sites reduce to a
/// `Option::is_some` check on a value known to be `None`), holding one
/// inner-step histogram and one sampled-`s_m` counter per environment
/// so env-parallel phases record into disjoint handles.
///
/// Everything recorded here is observation only: nothing in the
/// training path reads these values back, which is what keeps model
/// outputs bit-identical with `obs` on or off.
pub(crate) struct MetaObs {
    /// Per-env inner-step latency (`train_inner_step_ns{trainer,env}`),
    /// indexed like the trainer's `envs` vector.
    pub(crate) inner_step: Vec<crate::obs::HistogramHandle>,
    /// Outer-update latency per epoch (`train_outer_step_ns{trainer}`).
    pub(crate) outer_step: crate::obs::HistogramHandle,
    /// Meta-loss σ of the latest epoch (`train_meta_loss_sigma{trainer}`).
    pub(crate) meta_sigma: crate::obs::Gauge,
    /// MRQ pushes (`train_mrq_push_total{trainer}`).
    pub(crate) mrq_push: crate::obs::Counter,
    /// MRQ replayed-mean reads (`train_mrq_replay_total{trainer}`).
    pub(crate) mrq_replay: crate::obs::Counter,
    /// How often each env was drawn as `s_m`
    /// (`train_sampled_env_total{trainer,env}`), indexed like `envs`.
    pub(crate) sampled_env: Vec<crate::obs::Counter>,
    /// Epochs completed (`train_epochs_total{trainer}`).
    pub(crate) epochs: crate::obs::Counter,
}

impl MetaObs {
    /// Resolve the handles against the global registry; `None` when the
    /// `obs` feature is off.
    pub(crate) fn new(trainer: &str, envs: &[usize]) -> Option<MetaObs> {
        if !crate::obs::enabled() {
            return None;
        }
        let reg = crate::obs::registry();
        Some(MetaObs {
            inner_step: envs
                .iter()
                .map(|&m| {
                    reg.histogram(
                        "train_inner_step_ns",
                        &[("trainer", trainer), ("env", &m.to_string())],
                    )
                })
                .collect(),
            outer_step: reg.histogram("train_outer_step_ns", &[("trainer", trainer)]),
            meta_sigma: reg.gauge("train_meta_loss_sigma", &[("trainer", trainer)]),
            mrq_push: reg.counter("train_mrq_push_total", &[("trainer", trainer)]),
            mrq_replay: reg.counter("train_mrq_replay_total", &[("trainer", trainer)]),
            sampled_env: envs
                .iter()
                .map(|&m| {
                    reg.counter(
                        "train_sampled_env_total",
                        &[("trainer", trainer), ("env", &m.to_string())],
                    )
                })
                .collect(),
            epochs: reg.counter("train_epochs_total", &[("trainer", trainer)]),
        })
    }

    /// Record the per-epoch meta-loss spread (σ of Eq. (7)).
    pub(crate) fn record_sigma(&self, meta_losses: &[f64]) {
        self.meta_sigma.set(std_dev(meta_losses));
    }
}

/// The number of active environments `M` of a dataset.
///
/// # Panics
///
/// Panics when no environment has data.
pub(crate) fn active_envs_checked(data: &EnvDataset) -> Vec<usize> {
    let envs = data.active_envs();
    assert!(!envs.is_empty(), "dataset has no populated environment");
    envs
}

/// In-place `θ ← θ − lr · g`, through the vectorized lane loop
/// (bit-identical to the scalar `*t -= lr * g` form: IEEE sign flips
/// and `a + (−b)` vs `a − b` are exact).
pub(crate) fn axpy_neg(theta: &mut [f64], lr: f64, grad: &[f64]) {
    crate::simd::axpy_neg(theta, lr, grad);
}

/// Standard deviation with the paper's `1/M` normalization (Eq. (7)).
pub(crate) fn std_dev(values: &[f64]) -> f64 {
    let m = values.len() as f64;
    let mean = values.iter().sum::<f64>() / m;
    (values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / m).sqrt()
}

/// The outer-gradient coefficient `∂(Σ R/M + λσ)/∂R_m`
/// `= 1/M + λ (R_m − R̄)/(M σ)`, with the σ term dropped when σ = 0.
pub(crate) fn sigma_coefficients(meta_losses: &[f64], lambda: f64) -> Vec<f64> {
    let m = meta_losses.len() as f64;
    let mean = meta_losses.iter().sum::<f64>() / m;
    let sigma = std_dev(meta_losses);
    meta_losses
        .iter()
        .map(|&r| {
            let mut c = 1.0 / m;
            if sigma > 1e-12 {
                c += lambda * (r - mean) / (m * sigma);
            }
            c
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::MultiHotMatrix;

    #[test]
    fn std_dev_matches_hand_computation() {
        // values 1, 3: mean 2, var (1+1)/2 = 1.
        assert!((std_dev(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
        assert_eq!(std_dev(&[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn sigma_coefficients_sum_to_one_when_sigma_zero() {
        let c = sigma_coefficients(&[2.0, 2.0, 2.0], 0.7);
        for ci in &c {
            assert!((ci - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sigma_coefficients_push_up_above_mean_losses() {
        let c = sigma_coefficients(&[1.0, 3.0], 1.0);
        // Env with higher meta-loss gets a larger coefficient.
        assert!(c[1] > c[0]);
        // And the base 1/M is preserved in the sum.
        assert!((c.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn axpy_neg_steps_against_gradient() {
        let mut theta = vec![1.0, 2.0];
        axpy_neg(&mut theta, 0.5, &[2.0, -2.0]);
        assert_eq!(theta, vec![0.0, 3.0]);
    }

    #[test]
    fn per_env_model_routes_and_falls_back() {
        let x = MultiHotMatrix::new(vec![0, 1, 0, 1, 0, 1], 2, 2).unwrap();
        let base = LrModel {
            weights: vec![0.0, 0.0],
        };
        let special = LrModel {
            weights: vec![10.0, 10.0],
        };
        let model = TrainedModel::PerEnv {
            base: base.clone(),
            per_env: vec![Some(special), None],
        };
        let env_ids = vec![0u16, 1, 7];
        let ps = model.predict_rows(&x, &[0, 1, 2], &env_ids);
        assert!(ps[0] > 0.99); // env 0 uses the special model
        assert!((ps[1] - 0.5).abs() < 1e-12); // env 1 falls back to base
        assert!((ps[2] - 0.5).abs() < 1e-12); // env 7 outside catalog: base
    }

    #[test]
    fn global_model_predicts_directly() {
        let x = MultiHotMatrix::new(vec![0, 1], 2, 2).unwrap();
        let model = TrainedModel::Global(LrModel {
            weights: vec![1.0, 1.0],
        });
        let ps = model.predict_rows(&x, &[0], &[0]);
        assert!((ps[0] - crate::lr::sigmoid(2.0)).abs() < 1e-12);
    }
}
