//! Meta-IRM (paper Algorithm 1): MAML-style bi-level IRM with exact
//! second-order outer gradients.
//!
//! Per outer iteration, for every environment `m`:
//!
//! 1. **Inner step** — `θ̄_m = θ − α ∇R^m(θ)` (lines 6–7);
//! 2. **Meta-loss** — `R_meta(θ̄_m)` over the other environments (line 8);
//!    the sampled variant (`meta-IRM(S)` in Tables II/VI) averages over a
//!    random subset of `S` environments instead of all `M−1`;
//! 3. **Outer update** (lines 10–11) —
//!    `θ ← θ − β ∇_θ(Σ_m R_meta(θ̄_m)/M + λσ)` where σ is the std of the
//!    meta-losses. The gradient is exact: the Jacobian of the inner step
//!    is `I − αH_m(θ)`, applied with one Hessian-vector product per
//!    environment.
//!
//! Deviation noted in DESIGN.md §5: meta-losses are averaged (not summed)
//! over their environments so the outer learning rate is comparable
//! across `M`, `S`, and LightMIRM — the optimizer geometry is unchanged.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

use crate::env::EnvDataset;
use crate::kernels::{self, EnvScratch, ScratchPool};
use crate::lr::LrModel;
use crate::timing::{OpCounter, Step, StepTimer};
use crate::trainers::{
    active_envs_checked, axpy_neg, sigma_coefficients, EpochObserver, MetaObs, TrainConfig,
    TrainOutput, TrainedModel,
};

/// Meta-IRM trainer; `sample_size: None` is the complete Algorithm 1,
/// `Some(s)` the sampled variant the paper calls `meta-IRM(s)`.
#[derive(Debug, Clone)]
pub struct MetaIrmTrainer {
    pub config: TrainConfig,
    /// Number of environments sampled per meta-loss (`None` = all `M−1`).
    pub sample_size: Option<usize>,
    /// How a `sample_size` subset is drawn. The paper's `meta-IRM(s)`
    /// baseline restricts meta-losses to a *fixed* pool of `s` provinces —
    /// the naive way to cut the quadratic cost — which is what LightMIRM's
    /// per-iteration *re-sampling* (plus replay) is designed to beat.
    pub resample_each_iter: bool,
    /// Drop the Hessian-vector product (first-order MAML ablation).
    pub first_order: bool,
}

impl MetaIrmTrainer {
    /// Complete meta-IRM.
    pub fn new(config: TrainConfig) -> Self {
        MetaIrmTrainer {
            config,
            sample_size: None,
            resample_each_iter: false,
            first_order: false,
        }
    }

    /// Sampled meta-IRM(`s`) with a fixed province pool (the paper's
    /// Table II baseline).
    pub fn with_sample_size(config: TrainConfig, s: usize) -> Self {
        assert!(s >= 1, "sample size must be positive");
        MetaIrmTrainer {
            config,
            sample_size: Some(s),
            resample_each_iter: false,
            first_order: false,
        }
    }

    /// Sampled meta-IRM(`s`) that redraws the subset per environment and
    /// iteration (an ablation between the fixed pool and LightMIRM).
    pub fn with_resampling(config: TrainConfig, s: usize) -> Self {
        assert!(s >= 1, "sample size must be positive");
        MetaIrmTrainer {
            config,
            sample_size: Some(s),
            resample_each_iter: true,
            first_order: false,
        }
    }

    /// Train per Algorithm 1.
    pub fn fit(&self, data: &EnvDataset, mut observer: Option<EpochObserver<'_>>) -> TrainOutput {
        let mut timer = StepTimer::new();
        let mut ops = OpCounter::new();
        let envs = timer.time(Step::LoadData, || active_envs_checked(data));
        let n_cols = data.n_cols();
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let mut model = LrModel::zeros(n_cols);

        // The fixed province pool of meta-IRM(s): drawn once.
        let fixed_pool: Option<Vec<usize>> = match self.sample_size {
            Some(s) if !self.resample_each_iter && s < envs.len() => {
                let mut pool = envs.clone();
                pool.shuffle(&mut rng);
                pool.truncate(s.max(2)); // pool\{m} must be nonempty
                Some(pool)
            }
            _ => None,
        };

        // Per-environment scratch (θ̄, gradients, u, HVP, logit cache),
        // allocated once and reused every epoch.
        let env_sizes: Vec<usize> = envs.iter().map(|&m| data.env_rows(m).len()).collect();
        let mut pool = ScratchPool::new(n_cols, &env_sizes);
        let mut outer = vec![0.0; n_cols];
        let mut momentum = crate::trainers::Momentum::new(n_cols, self.config.momentum);
        let mobs = MetaObs::new("meta-irm", &envs);

        for epoch in 0..self.config.epochs {
            let _epoch_span = crate::span!("train_epoch", trainer = "meta-irm", epoch = epoch);
            // others[i] = environments included in R_meta(θ̄_{envs[i]}).
            // Subsets are drawn up front on the serial RNG stream (in the
            // same per-env order as before), keeping the draw sequence
            // independent of the parallel schedule.
            let others: Vec<Vec<usize>> = envs
                .iter()
                .map(|&m| {
                    if let Some(pool) = &fixed_pool {
                        pool.iter().copied().filter(|&e| e != m).collect()
                    } else {
                        let mut pool: Vec<usize> =
                            envs.iter().copied().filter(|&e| e != m).collect();
                        match self.sample_size {
                            Some(s) if s < pool.len() => {
                                pool.shuffle(&mut rng);
                                pool.truncate(s);
                                pool
                            }
                            _ => pool,
                        }
                    }
                })
                .collect();

            // ---- inner loop: lines 5–7, env-parallel -------------------
            // One fused pass per environment computes R^m(θ) (line 6, one
            // forward op) together with ∇R^m(θ) (line 7, one backward op),
            // caching the logits the line-10 HVP at the same θ reuses.
            timer.time(Step::InnerOptimization, || {
                let weights = &model.weights;
                let mobs = mobs.as_ref();
                pool.slots_mut()
                    .par_iter_mut()
                    .enumerate()
                    .for_each(|(i, slot)| {
                        let _span = crate::span!("inner_step", env = envs[i]);
                        let t0 = mobs.map(|_| std::time::Instant::now());
                        let EnvScratch {
                            theta_bar,
                            grad,
                            logits,
                            ..
                        } = slot;
                        let _inner_loss = kernels::env_loss_grad_cached(
                            weights,
                            &data.x,
                            &data.labels,
                            data.env_rows(envs[i]),
                            self.config.reg,
                            grad,
                            logits,
                        );
                        theta_bar.copy_from_slice(weights);
                        axpy_neg(theta_bar, self.config.inner_lr, grad);
                        if let (Some(mo), Some(t0)) = (mobs, t0) {
                            mo.inner_step[i].record_duration(t0.elapsed());
                        }
                    });
            });
            ops.add_forward(envs.len() as u64);
            ops.add_backward(envs.len() as u64);

            // ---- meta-losses: line 8, env-parallel ----------------------
            let meta_losses: Vec<f64> = timer.time(Step::MetaLoss, || {
                pool.slots()
                    .par_iter()
                    .enumerate()
                    .map(|(i, slot)| {
                        let sum: f64 = others[i]
                            .iter()
                            .map(|&e| {
                                kernels::env_loss(
                                    &slot.theta_bar,
                                    &data.x,
                                    &data.labels,
                                    data.env_rows(e),
                                    self.config.reg,
                                )
                            })
                            .sum();
                        sum / others[i].len().max(1) as f64
                    })
                    .collect()
            });
            ops.add_forward(others.iter().map(|o| o.len() as u64).sum());

            // ---- outer update: lines 10–11 ------------------------------
            if let Some(mo) = &mobs {
                mo.record_sigma(&meta_losses);
            }
            let coefs = sigma_coefficients(&meta_losses, self.config.lambda);
            let outer_t0 = mobs.as_ref().map(|_| std::time::Instant::now());
            timer.time(Step::Backward, || {
                pool.slots_mut()
                    .par_iter_mut()
                    .enumerate()
                    .for_each(|(i, slot)| {
                        let EnvScratch {
                            theta_bar,
                            grad,
                            u,
                            hvp,
                            logits,
                        } = slot;
                        // u = ∇_{θ̄} R_meta(θ̄_m): mean of env gradients at θ̄_m.
                        u.fill(0.0);
                        let k = others[i].len().max(1) as f64;
                        for &e in &others[i] {
                            kernels::env_grad(
                                theta_bar,
                                &data.x,
                                &data.labels,
                                data.env_rows(e),
                                self.config.reg,
                                grad,
                            );
                            for (ui, &g) in u.iter_mut().zip(grad.iter()) {
                                *ui += g / k;
                            }
                        }
                        // Chain through the inner step: Jᵀu = u − α H_m(θ) u.
                        if !self.first_order {
                            kernels::hvp_from_logits(
                                logits,
                                &data.x,
                                data.env_rows(envs[i]),
                                self.config.reg,
                                u,
                                hvp,
                            );
                            for (ui, &h) in u.iter_mut().zip(hvp.iter()) {
                                *ui -= self.config.inner_lr * h;
                            }
                        }
                    });
            });
            ops.add_backward(others.iter().map(|o| o.len() as u64).sum());
            if !self.first_order {
                ops.add_hvp(envs.len() as u64);
            }
            // Ordered merge: environments accumulate in env order, so the
            // outer gradient is independent of the parallel schedule.
            outer.fill(0.0);
            for (i, slot) in pool.slots().iter().enumerate() {
                for (o, &ui) in outer.iter_mut().zip(&slot.u) {
                    *o += coefs[i] * ui;
                }
            }
            momentum.step(&mut model.weights, self.config.outer_lr, &outer);
            if let (Some(mo), Some(t0)) = (&mobs, outer_t0) {
                mo.outer_step.record_duration(t0.elapsed());
                mo.epochs.inc();
            }
            if let Some(obs) = observer.as_mut() {
                obs(epoch, &model);
            }
        }
        TrainOutput {
            model: TrainedModel::Global(model),
            timer,
            ops,
            epochs_run: self.config.epochs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lr::{env_grad, env_loss};
    use crate::sparse::MultiHotMatrix;

    /// Three environments. Column 0/1 carry the *invariant* signal (same
    /// direction everywhere). Columns 2/3 carry a *spurious* signal whose
    /// direction flips in env 2 — an ERM model pooled over the data keeps
    /// using it; an invariant learner must not.
    fn irm_toy(rows_per_env: &[usize]) -> EnvDataset {
        let mut idx = Vec::new();
        let mut labels = Vec::new();
        let mut envs = Vec::new();
        let mut counter = 0usize;
        for (env, &n) in rows_per_env.iter().enumerate() {
            for _ in 0..n {
                counter += 1;
                let y = (counter % 2) as u8;
                // Invariant leaf: always aligned with the label, but noisy
                // (flips 25% of the time).
                let noise = counter.wrapping_mul(2654435761).is_multiple_of(4);
                let inv = if (y == 1) != noise { 0u32 } else { 1 };
                // Spurious leaf: aligned with the label in envs 0/1,
                // anti-aligned in env 2.
                let spur_aligned = env < 2;
                let spur = if (y == 1) == spur_aligned { 2u32 } else { 3 };
                idx.extend_from_slice(&[inv, spur]);
                labels.push(y);
                envs.push(env as u16);
            }
        }
        let x = MultiHotMatrix::new(idx, 2, 4).unwrap();
        let names = (0..rows_per_env.len()).map(|i| format!("e{i}")).collect();
        EnvDataset::new(x, labels, envs, names).unwrap()
    }

    fn cfg(epochs: usize) -> TrainConfig {
        TrainConfig {
            epochs,
            inner_lr: 0.3,
            outer_lr: 1.0,
            lambda: 0.5,
            reg: 1e-4,
            momentum: 0.0,
            seed: 5,
        }
    }

    /// Reliance on the spurious leaves: |w₂ − w₃| compared against the
    /// invariant reliance |w₀ − w₁|.
    fn spurious_ratio(model: &LrModel) -> f64 {
        let inv = (model.weights[0] - model.weights[1]).abs();
        let spur = (model.weights[2] - model.weights[3]).abs();
        spur / inv.max(1e-9)
    }

    #[test]
    fn meta_irm_relies_less_on_spurious_features_than_erm() {
        let data = irm_toy(&[300, 300, 100]);
        let erm = crate::trainers::ErmTrainer::new(cfg(60)).fit(&data, None);
        let meta = MetaIrmTrainer::new(cfg(60)).fit(&data, None);
        let r_erm = spurious_ratio(erm.model.global());
        let r_meta = spurious_ratio(meta.model.global());
        assert!(
            r_meta < r_erm,
            "meta-IRM spurious reliance {r_meta:.3} should be below ERM's {r_erm:.3}"
        );
    }

    #[test]
    fn op_count_matches_2m_squared() {
        let data = irm_toy(&[60, 60, 60]);
        let epochs = 3u64;
        let out = MetaIrmTrainer::new(cfg(epochs as usize)).fit(&data, None);
        let m = 3u64;
        // Lines 6+7: 2M; line 8: M(M−1); line 11: M(M−1). Total 2M².
        assert_eq!(out.ops.total(), epochs * 2 * m * m);
        // One HVP per environment per epoch (second-order, counted apart).
        assert_eq!(out.ops.hvp, epochs * m);
    }

    #[test]
    fn resampled_variant_reduces_op_count() {
        let data = irm_toy(&[60, 60, 60, 60, 60]);
        let epochs = 2u64;
        let m = 5u64;
        let s = 2u64;
        let out =
            MetaIrmTrainer::with_resampling(cfg(epochs as usize), s as usize).fit(&data, None);
        // 2M inner + M·S meta + M·S backward.
        assert_eq!(out.ops.total(), epochs * (2 * m + 2 * m * s));
    }

    #[test]
    fn fixed_pool_variant_reduces_op_count() {
        let data = irm_toy(&[60, 60, 60, 60, 60]);
        let epochs = 2u64;
        let out = MetaIrmTrainer::with_sample_size(cfg(epochs as usize), 2).fit(&data, None);
        // Pool of 2 provinces: members see pool\{m} of size 1 (2 envs),
        // non-members see 2 (3 envs) -> 8 meta ops per pass, twice
        // (forward + backward), plus 2M inner ops.
        assert_eq!(out.ops.total(), epochs * (2 * 5 + 2 * 8));
    }

    #[test]
    fn fixed_pool_is_deterministic_and_seed_dependent() {
        let data = irm_toy(&[60, 60, 60, 60, 60]);
        let a = MetaIrmTrainer::with_sample_size(cfg(3), 2).fit(&data, None);
        let b = MetaIrmTrainer::with_sample_size(cfg(3), 2).fit(&data, None);
        assert_eq!(a.model.global().weights, b.model.global().weights);
    }

    #[test]
    fn sample_size_larger_than_pool_degrades_to_complete() {
        let data = irm_toy(&[60, 60, 60]);
        let complete = MetaIrmTrainer::new(cfg(4)).fit(&data, None);
        let oversampled = MetaIrmTrainer::with_sample_size(cfg(4), 99).fit(&data, None);
        assert_eq!(complete.ops.total(), oversampled.ops.total());
        // And identical trajectories (no sampling randomness engaged).
        for (a, b) in complete
            .model
            .global()
            .weights
            .iter()
            .zip(&oversampled.model.global().weights)
        {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let data = irm_toy(&[80, 80, 80]);
        let a = MetaIrmTrainer::with_resampling(cfg(5), 1).fit(&data, None);
        let b = MetaIrmTrainer::with_resampling(cfg(5), 1).fit(&data, None);
        assert_eq!(a.model.global().weights, b.model.global().weights);
        let mut other = cfg(5);
        other.seed = 99;
        let c = MetaIrmTrainer::with_resampling(other, 1).fit(&data, None);
        assert_ne!(a.model.global().weights, c.model.global().weights);
    }

    #[test]
    fn outer_gradient_matches_finite_difference_of_outer_objective() {
        // One outer step from a fixed θ must equal θ − β ∇L(θ) with
        // L(θ) = Σ_m R_meta(θ̄_m(θ))/M + λσ(θ). We verify ∇L by finite
        // differences, exercising the HVP chain end to end.
        let data = irm_toy(&[40, 40, 40]);
        let config = TrainConfig {
            epochs: 1,
            inner_lr: 0.2,
            outer_lr: 1.0,
            lambda: 0.4,
            reg: 0.01,
            momentum: 0.0,
            seed: 3,
        };
        let envs = data.active_envs();

        // The outer objective as a pure function of θ (complete variant).
        let objective = |theta: &[f64]| -> f64 {
            let mut metas = Vec::new();
            let mut g = vec![0.0; theta.len()];
            for &m in &envs {
                env_grad(
                    theta,
                    &data.x,
                    &data.labels,
                    data.env_rows(m),
                    config.reg,
                    &mut g,
                );
                let bar: Vec<f64> = theta
                    .iter()
                    .zip(&g)
                    .map(|(t, gi)| t - config.inner_lr * gi)
                    .collect();
                let others: Vec<usize> = envs.iter().copied().filter(|&e| e != m).collect();
                let mean = others
                    .iter()
                    .map(|&e| env_loss(&bar, &data.x, &data.labels, data.env_rows(e), config.reg))
                    .sum::<f64>()
                    / others.len() as f64;
                metas.push(mean);
            }
            let mean = metas.iter().sum::<f64>() / metas.len() as f64;
            let sigma = crate::trainers::std_dev(&metas);
            mean + config.lambda * sigma
        };

        // Start from a nonzero θ to make the check nondegenerate: run two
        // ERM epochs first.
        let warm = crate::trainers::ErmTrainer::new(TrainConfig {
            epochs: 2,
            ..config.clone()
        })
        .fit(&data, None);
        let theta0 = warm.model.global().weights.clone();

        // One meta-IRM outer step starting from θ0. We reproduce it by
        // setting epochs = 1 and initial weights θ0 — the trainer always
        // starts from zero, so instead extract the update direction by
        // diffing. To inject θ0 we retrain with epochs=1 on a shifted
        // dataset is overkill; rather, recompute the exact update with the
        // internals: run the trainer once from zero and separately check
        // at θ = 0.
        let _ = theta0; // the check below uses θ = 0, where ERM warmup is unnecessary
        let out = MetaIrmTrainer::new(config.clone()).fit(&data, None);
        let stepped = &out.model.global().weights;

        // Finite-difference ∇L at θ = 0.
        let zero = vec![0.0; data.n_cols()];
        let eps = 1e-5;
        for i in 0..data.n_cols() {
            let mut plus = zero.clone();
            plus[i] += eps;
            let mut minus = zero.clone();
            minus[i] -= eps;
            let fd = (objective(&plus) - objective(&minus)) / (2.0 * eps);
            let update = -stepped[i] / config.outer_lr; // θ₁ = −β∇L(0)
            assert!(
                (update - fd).abs() < 1e-5,
                "outer grad[{i}]: trainer {update:.8} vs fd {fd:.8}"
            );
        }
    }

    #[test]
    fn first_order_variant_differs_but_still_trains() {
        let data = irm_toy(&[120, 120, 120]);
        let mut full = MetaIrmTrainer::new(cfg(20));
        let mut fo = MetaIrmTrainer::new(cfg(20));
        full.first_order = false;
        fo.first_order = true;
        let a = full.fit(&data, None);
        let b = fo.fit(&data, None);
        assert_ne!(a.model.global().weights, b.model.global().weights);
        assert_eq!(b.ops.hvp, 0);
        assert!(a.ops.hvp > 0);
    }
}
