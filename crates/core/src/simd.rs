//! SIMD row-block kernel support: aligned storage, backend dispatch, and
//! the shared vectorizable primitives of the LR hot path.
//!
//! The scalar kernels in [`crate::lr`] process one row at a time; every
//! row's `θᵀx` is a chain of `nnz_per_row` dependent additions, so the
//! CPU spends the whole loop waiting on add latency. This module provides
//! the building blocks for the **row-block** rewrite in
//! [`crate::kernels`]:
//!
//! - [`AlignedVec`] — a 64-byte-aligned `f64` buffer (one cache line /
//!   one AVX-512 register) adopted by `ScratchPool` and the per-block
//!   gather scratch, so vector loads never split cache lines;
//! - [`BLOCK_ROWS`]-wide structure-of-arrays helpers —
//!   [`accumulate_lanes`] sums gathered weight lanes column-wise with
//!   [`BLOCK_ROWS`] independent accumulators (8-way ILP, auto-vectorized
//!   to AVX adds), and [`axpy`] / [`axpy_neg`] are explicit lane-chunked
//!   elementwise updates;
//! - [`sigmoid_softplus`] — the fused forward nonlinearity that derives
//!   `σ(z)` and `softplus(z)` from **one** `exp` (the scalar reference
//!   computes two) while producing bit-identical values;
//! - [`Backend`] selection — a `simd` cargo feature picks the compile-time
//!   default, the `LIGHTMIRM_KERNEL` environment variable overrides it at
//!   startup, and [`force_backend`] overrides both at runtime (used by
//!   the bench harness to measure both paths in one process).
//!
//! # Determinism contract
//!
//! The blocked kernels are **bit-identical** to the serial reference:
//! vectorization happens *across* the rows of a block (independent
//! accumulator per row), never *within* a row's reduction, so every
//! per-row floating-point operation sequence — the `θᵀx` addition order,
//! the `exp`/`ln_1p` calls, the scatter order into the gradient — is
//! exactly the scalar kernel's. Lane order inside each
//! [`crate::kernels::CHUNK_ROWS`] chunk is fixed by the row order, and
//! the chunk merge is ordered (PR 1's contract), so results do not depend
//! on the backend, the thread count, or the batch split. Tests in
//! `crates/core/tests/simd_kernels.rs` assert exact equality.

use std::alloc::{alloc, alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::ptr::NonNull;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Rows processed per block by the vectorized kernels. Eight rows give
/// eight independent accumulator chains — enough to hide f64 add latency
/// — and fill two AVX2 (or one AVX-512) register per lane step.
pub const BLOCK_ROWS: usize = 8;

/// Alignment of [`AlignedVec`] storage: one cache line, and the natural
/// alignment of an AVX-512 register.
pub const ALIGNMENT: usize = 64;

// ---------------------------------------------------------------------------
// AlignedVec
// ---------------------------------------------------------------------------

/// A heap `f64` buffer whose storage is always [`ALIGNMENT`]-byte aligned.
///
/// Behaves like a fixed-capacity-then-growable `Vec<f64>` for the subset
/// of operations the kernel layer needs (zero-fill construction, resize,
/// slice access). Dereferences to `[f64]`, so existing kernel signatures
/// taking `&[f64]` / `&mut [f64]` accept it unchanged.
pub struct AlignedVec {
    ptr: NonNull<f64>,
    len: usize,
    cap: usize,
}

// SAFETY: AlignedVec owns its allocation exclusively, like Vec<f64>.
unsafe impl Send for AlignedVec {}
unsafe impl Sync for AlignedVec {}

impl AlignedVec {
    /// An empty buffer (no allocation).
    pub fn new() -> Self {
        AlignedVec {
            // Dangling but well-aligned: never dereferenced while cap == 0.
            ptr: NonNull::new(std::ptr::without_provenance_mut(ALIGNMENT)).expect("nonzero"),
            len: 0,
            cap: 0,
        }
    }

    /// A zero-filled buffer of `len` elements.
    pub fn zeroed(len: usize) -> Self {
        if len == 0 {
            return AlignedVec::new();
        }
        let layout = Self::layout(len);
        // SAFETY: layout has nonzero size (len > 0).
        let raw = unsafe { alloc_zeroed(layout) } as *mut f64;
        let Some(ptr) = NonNull::new(raw) else {
            handle_alloc_error(layout);
        };
        AlignedVec { ptr, len, cap: len }
    }

    /// A buffer holding a copy of `src`.
    pub fn from_slice(src: &[f64]) -> Self {
        let mut v = Self::zeroed(src.len());
        v.as_mut_slice().copy_from_slice(src);
        v
    }

    fn layout(cap: usize) -> Layout {
        Layout::from_size_align(cap * std::mem::size_of::<f64>(), ALIGNMENT)
            .expect("aligned layout within isize::MAX")
    }

    /// Number of initialized elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Allocated capacity in elements.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Shared slice view.
    pub fn as_slice(&self) -> &[f64] {
        // SAFETY: ptr is valid for len initialized elements (or dangling
        // with len == 0, which from_raw_parts permits for empty slices).
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// Mutable slice view.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        // SAFETY: as for as_slice; &mut self gives exclusive access.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }

    /// Grow or shrink to `new_len`, filling new elements with `value`.
    /// Growth reallocates to exactly `new_len` or double the current
    /// capacity, whichever is larger; shrinking never reallocates.
    pub fn resize(&mut self, new_len: usize, value: f64) {
        if new_len > self.cap {
            self.reallocate(new_len.max(self.cap * 2));
        }
        if new_len > self.len {
            // SAFETY: capacity covers new_len; fill the tail before
            // exposing it through len.
            unsafe {
                for i in self.len..new_len {
                    self.ptr.as_ptr().add(i).write(value);
                }
            }
        }
        self.len = new_len;
    }

    fn reallocate(&mut self, new_cap: usize) {
        debug_assert!(new_cap > self.cap);
        let new_layout = Self::layout(new_cap);
        // SAFETY: new_layout has nonzero size (new_cap > cap >= 0).
        let raw = unsafe { alloc(new_layout) } as *mut f64;
        let Some(new_ptr) = NonNull::new(raw) else {
            handle_alloc_error(new_layout);
        };
        if self.cap > 0 {
            // SAFETY: both regions are valid for len elements and
            // disjoint (fresh allocation).
            unsafe {
                std::ptr::copy_nonoverlapping(self.ptr.as_ptr(), new_ptr.as_ptr(), self.len);
                dealloc(self.ptr.as_ptr() as *mut u8, Self::layout(self.cap));
            }
        }
        self.ptr = new_ptr;
        self.cap = new_cap;
    }
}

impl Drop for AlignedVec {
    fn drop(&mut self) {
        if self.cap > 0 {
            // SAFETY: ptr was allocated with exactly this layout.
            unsafe { dealloc(self.ptr.as_ptr() as *mut u8, Self::layout(self.cap)) }
        }
    }
}

impl Default for AlignedVec {
    fn default() -> Self {
        AlignedVec::new()
    }
}

impl Clone for AlignedVec {
    fn clone(&self) -> Self {
        AlignedVec::from_slice(self.as_slice())
    }
}

impl std::fmt::Debug for AlignedVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(self.as_slice(), f)
    }
}

impl PartialEq for AlignedVec {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::ops::Deref for AlignedVec {
    type Target = [f64];
    fn deref(&self) -> &[f64] {
        self.as_slice()
    }
}

impl std::ops::DerefMut for AlignedVec {
    fn deref_mut(&mut self) -> &mut [f64] {
        self.as_mut_slice()
    }
}

impl<'a> IntoIterator for &'a AlignedVec {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<'a> IntoIterator for &'a mut AlignedVec {
    type Item = &'a mut f64;
    type IntoIter = std::slice::IterMut<'a, f64>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_mut_slice().iter_mut()
    }
}

impl From<Vec<f64>> for AlignedVec {
    fn from(v: Vec<f64>) -> Self {
        AlignedVec::from_slice(&v)
    }
}

// ---------------------------------------------------------------------------
// Backend dispatch
// ---------------------------------------------------------------------------

/// Which kernel implementation the hot path runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Row-block vectorized kernels (gather + structure-of-arrays lanes).
    Simd,
    /// The portable per-row scalar kernels (PR 1's implementation).
    Scalar,
}

impl Backend {
    /// Stable lowercase name (`"simd"` / `"scalar"`) for reports.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Simd => "simd",
            Backend::Scalar => "scalar",
        }
    }
}

/// Runtime override: 0 = none, 1 = scalar, 2 = simd.
static FORCED: AtomicU8 = AtomicU8::new(0);

fn default_backend() -> Backend {
    static DEFAULT: OnceLock<Backend> = OnceLock::new();
    *DEFAULT.get_or_init(|| match std::env::var("LIGHTMIRM_KERNEL") {
        Ok(v) if v.eq_ignore_ascii_case("scalar") => Backend::Scalar,
        Ok(v) if v.eq_ignore_ascii_case("simd") || v.eq_ignore_ascii_case("blocked") => {
            Backend::Simd
        }
        Ok(v) => {
            eprintln!(
                "LIGHTMIRM_KERNEL={v:?} not recognized (expected \"simd\" or \"scalar\"); \
                 using the compiled default"
            );
            compiled_default()
        }
        Err(_) => compiled_default(),
    })
}

fn compiled_default() -> Backend {
    if cfg!(feature = "simd") {
        Backend::Simd
    } else {
        Backend::Scalar
    }
}

/// The backend the dispatching kernels in [`crate::kernels`] will use:
/// a [`force_backend`] override if set, else `LIGHTMIRM_KERNEL` from the
/// environment (read once), else the `simd` cargo feature's default.
pub fn backend() -> Backend {
    match FORCED.load(Ordering::Relaxed) {
        1 => Backend::Scalar,
        2 => Backend::Simd,
        _ => default_backend(),
    }
}

/// Force every subsequent dispatching kernel call onto `b`, overriding
/// the feature flag and the environment. Intended for benches and tests
/// that compare both paths in one process; kernel calls already in
/// flight keep the backend they resolved at entry.
pub fn force_backend(b: Backend) {
    FORCED.store(
        match b {
            Backend::Scalar => 1,
            Backend::Simd => 2,
        },
        Ordering::Relaxed,
    );
}

/// Drop a [`force_backend`] override, returning to the default policy.
pub fn clear_forced_backend() {
    FORCED.store(0, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Block primitives
// ---------------------------------------------------------------------------

/// Fused `(σ(z), softplus(z))` from one `exp`.
///
/// Bit-identical to [`crate::lr::sigmoid`] and the reference softplus
/// (`if z > 0 { z + ln_1p(exp(−z)) } else { ln_1p(exp(z)) }`): both
/// derive from the same `exp(−|z|)` the reference computes, merely
/// sharing the evaluation. At `z == 0` both formulations yield exactly
/// `0.5` and `ln 2`.
#[inline]
pub fn sigmoid_softplus(z: f64) -> (f64, f64) {
    if z > 0.0 {
        let e = (-z).exp();
        (1.0 / (1.0 + e), z + e.ln_1p())
    } else {
        let e = z.exp();
        (e / (1.0 + e), e.ln_1p())
    }
}

/// Column-wise accumulation of gathered weight lanes: with `lanes` laid
/// out `[nnz][BLOCK_ROWS]` (lane `j` of row `k` at `j * BLOCK_ROWS + k`),
/// adds lane `j` into `acc[k]` for `j = 0..nnz` **in `j` order** — each
/// row's additions follow the exact sequence of the scalar
/// `dot_row`, so the result is bit-identical; only the eight rows
/// proceed in parallel (independent accumulators → vector adds).
///
/// # Panics
///
/// Panics (debug) when `lanes.len()` is not `nnz * BLOCK_ROWS`.
#[inline]
pub fn accumulate_lanes(lanes: &[f64], acc: &mut [f64; BLOCK_ROWS]) {
    debug_assert!(lanes.len().is_multiple_of(BLOCK_ROWS));
    for lane in lanes.chunks_exact(BLOCK_ROWS) {
        for k in 0..BLOCK_ROWS {
            acc[k] += lane[k];
        }
    }
}

/// Elementwise `out[i] += a * x[i]`, lane-chunked so the compiler emits
/// vector mul+add. Each element is independent and the operation order
/// per element is unchanged, so this is bit-identical to the scalar loop
/// (no FMA contraction: `a * x` and `+` stay separate rounded ops).
///
/// # Panics
///
/// Panics (debug) when lengths differ.
#[inline]
pub fn axpy(out: &mut [f64], a: f64, x: &[f64]) {
    debug_assert_eq!(out.len(), x.len());
    let n = out.len() - out.len() % BLOCK_ROWS;
    let (out_blocks, out_tail) = out.split_at_mut(n);
    let (x_blocks, x_tail) = x.split_at(n);
    for (ob, xb) in out_blocks
        .chunks_exact_mut(BLOCK_ROWS)
        .zip(x_blocks.chunks_exact(BLOCK_ROWS))
    {
        for k in 0..BLOCK_ROWS {
            ob[k] += a * xb[k];
        }
    }
    for (o, &xi) in out_tail.iter_mut().zip(x_tail) {
        *o += a * xi;
    }
}

/// Elementwise `out[i] -= a * x[i]` (the inner-step update
/// `θ̄ = θ − α∇R`), lane-chunked like [`axpy`].
#[inline]
pub fn axpy_neg(out: &mut [f64], a: f64, x: &[f64]) {
    axpy(out, -a, x);
}

/// Run `f` with a thread-local [`AlignedVec`] gather scratch of at least
/// `n` elements (contents unspecified on entry; `f` must fully overwrite
/// what it reads). Reuses one allocation per thread across kernel calls,
/// so staged per-block gathers (e.g. via
/// [`crate::sparse::MultiHotMatrix::gather_block`]) cost no heap traffic
/// in steady state. Calls must not nest on one thread — the scratch is a
/// single per-thread cell.
pub fn with_gather_scratch<R>(n: usize, f: impl FnOnce(&mut [f64]) -> R) -> R {
    use std::cell::RefCell;
    thread_local! {
        static SCRATCH: RefCell<AlignedVec> = RefCell::new(AlignedVec::new());
    }
    SCRATCH.with(|cell| {
        let mut buf = cell.borrow_mut();
        if buf.len() < n {
            buf.resize(n, 0.0);
        }
        f(&mut buf[..n])
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_vec_storage_is_64_byte_aligned() {
        for len in [1usize, 3, 8, 64, 1000] {
            let v = AlignedVec::zeroed(len);
            assert_eq!(v.as_slice().as_ptr() as usize % ALIGNMENT, 0, "len {len}");
        }
        // The empty buffer's (dangling) pointer keeps the invariant too.
        let empty = AlignedVec::new();
        assert_eq!(empty.as_slice().as_ptr() as usize % ALIGNMENT, 0);
    }

    #[test]
    fn aligned_vec_zero_fill_and_len() {
        let v = AlignedVec::zeroed(37);
        assert_eq!(v.len(), 37);
        assert!(!v.is_empty());
        assert!(v.iter().all(|&x| x == 0.0));
        assert!(AlignedVec::new().is_empty());
    }

    #[test]
    fn aligned_vec_clone_is_deep_and_aligned() {
        let mut a = AlignedVec::from_slice(&[1.0, -2.5, 3.25]);
        let b = a.clone();
        a[0] = 99.0;
        assert_eq!(b.as_slice(), &[1.0, -2.5, 3.25]);
        assert_eq!(b.as_slice().as_ptr() as usize % ALIGNMENT, 0);
        assert_ne!(a, b);
        assert_eq!(b, AlignedVec::from(vec![1.0, -2.5, 3.25]));
    }

    #[test]
    fn aligned_vec_grow_preserves_prefix_and_alignment() {
        let mut v = AlignedVec::from_slice(&[1.0, 2.0]);
        v.resize(5, 7.0);
        assert_eq!(v.as_slice(), &[1.0, 2.0, 7.0, 7.0, 7.0]);
        assert!(v.capacity() >= 5);
        // Growth doubles at least, so repeated small grows amortize.
        let cap_after_first = v.capacity();
        v.resize(cap_after_first + 1, 0.0);
        assert!(v.capacity() >= cap_after_first * 2);
        assert_eq!(v.as_slice().as_ptr() as usize % ALIGNMENT, 0);
        // Shrinking keeps the allocation and truncates the view.
        v.resize(2, 0.0);
        assert_eq!(v.as_slice(), &[1.0, 2.0]);
        assert!(v.capacity() >= cap_after_first);
    }

    #[test]
    fn aligned_vec_deref_supports_slice_ops() {
        let mut v = AlignedVec::zeroed(4);
        v.fill(2.0);
        v[3] = -1.0;
        let sum: f64 = v.iter().sum();
        assert_eq!(sum, 5.0);
        let collected: Vec<f64> = (&v).into_iter().copied().collect();
        assert_eq!(collected, vec![2.0, 2.0, 2.0, -1.0]);
        for x in &mut v {
            *x += 1.0;
        }
        assert_eq!(v.as_slice(), &[3.0, 3.0, 3.0, 0.0]);
        assert_eq!(format!("{v:?}"), "[3.0, 3.0, 3.0, 0.0]");
    }

    #[test]
    fn sigmoid_softplus_matches_reference_bitwise() {
        for z in [
            -700.0, -30.0, -2.0, -1e-12, -0.0, 0.0, 1e-12, 0.5, 2.0, 30.0, 700.0,
        ] {
            let (sig, sp) = sigmoid_softplus(z);
            let ref_sig = crate::lr::sigmoid(z);
            let ref_sp = if z > 0.0 {
                z + (-z).exp().ln_1p()
            } else {
                z.exp().ln_1p()
            };
            assert_eq!(sig.to_bits(), ref_sig.to_bits(), "sigmoid at z={z}");
            assert_eq!(sp.to_bits(), ref_sp.to_bits(), "softplus at z={z}");
        }
        let (sig, sp) = sigmoid_softplus(f64::NAN);
        assert!(sig.is_nan() && sp.is_nan());
    }

    #[test]
    fn accumulate_lanes_matches_sequential_dot_order() {
        // lanes[j][k] summed in j order must equal the scalar fold.
        let nnz = 5;
        let lanes: Vec<f64> = (0..nnz * BLOCK_ROWS)
            .map(|i| (i as f64) * 0.1 - 1.7)
            .collect();
        let mut acc = [0.0; BLOCK_ROWS];
        accumulate_lanes(&lanes, &mut acc);
        for k in 0..BLOCK_ROWS {
            let mut reference = 0.0;
            for j in 0..nnz {
                reference += lanes[j * BLOCK_ROWS + k];
            }
            assert_eq!(acc[k].to_bits(), reference.to_bits(), "row {k}");
        }
    }

    #[test]
    fn axpy_matches_scalar_loop_bitwise() {
        let x: Vec<f64> = (0..19).map(|i| (i as f64) * 0.3 - 2.0).collect();
        let mut out: Vec<f64> = (0..19).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let mut reference = out.clone();
        axpy(&mut out, 0.37, &x);
        for (r, &xi) in reference.iter_mut().zip(&x) {
            *r += 0.37 * xi;
        }
        assert_eq!(out, reference);
        let mut neg = vec![1.0; 19];
        axpy_neg(&mut neg, 2.0, &x);
        for (n, &xi) in neg.iter().zip(&x) {
            assert_eq!(n.to_bits(), (1.0 - 2.0 * xi).to_bits());
        }
    }

    #[test]
    fn backend_force_and_clear_round_trip() {
        // Serialized within this test: other tests in this binary do not
        // touch the override.
        let initial = backend();
        force_backend(Backend::Scalar);
        assert_eq!(backend(), Backend::Scalar);
        assert_eq!(backend().name(), "scalar");
        force_backend(Backend::Simd);
        assert_eq!(backend(), Backend::Simd);
        assert_eq!(backend().name(), "simd");
        clear_forced_backend();
        assert_eq!(backend(), initial);
    }

    #[test]
    fn gather_scratch_reuses_and_grows() {
        let p1 = with_gather_scratch(16, |b| {
            b.fill(1.0);
            assert_eq!(b.len(), 16);
            b.as_ptr() as usize
        });
        assert_eq!(p1 % ALIGNMENT, 0);
        with_gather_scratch(8, |b| assert_eq!(b.len(), 8));
        with_gather_scratch(4096, |b| {
            assert_eq!(b.len(), 4096);
            assert_eq!(b.as_ptr() as usize % ALIGNMENT, 0);
        });
    }
}
