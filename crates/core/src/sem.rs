//! Parameterized structural-equation-model (SEM) scenario families for
//! the IRM stress-lab.
//!
//! This module promotes the ad-hoc two-environment SEM that used to
//! live inside `tests/irm_unit.rs` into a first-class, reusable
//! generator. Every scenario is a [`SemSpec`]: a list of environments,
//! each with its own row count, spurious correlation, and label base
//! rate, sharing one invariant correlation. Sampling is driven by a
//! splitmix64-style counter hash — no RNG state, no dependency on
//! iteration order — so a spec is a pure value: the same spec always
//! produces the same [`EnvDataset`], bit for bit, on any thread count.
//!
//! The generative model, discretized to the crate's multi-hot encoding
//! (columns 0/1 one-hot the invariant variable, 2/3 the spurious one):
//!
//! ```text
//! y        ~ Bernoulli(π_m)                                (per env m)
//! x_inv    = y        with probability (1 + ρ_inv) / 2     (all envs)
//! x_spur   = y        with probability (1 + ρ_m) / 2       (per env m)
//! ```
//!
//! Scenario families built from this spec:
//!
//! - **spurious sweeps** ([`SemSpec::flip`]): two environments whose
//!   spurious correlation flips sign with asymmetric magnitude, so the
//!   pooled correlation stays away from zero — the canonical IRM
//!   temptation;
//! - **label shift** ([`SemSpec::new`] with per-env `label_rates`):
//!   the class prior moves across environments while the mechanism
//!   `P(x | y)` stays fixed;
//! - **many-environment long tails** ([`long_tail`]): a skewed
//!   environment-size distribution where a few large environments
//!   agree on the spurious sign and many small ones disagree, so the
//!   pooled gradient is dominated by the head.
//!
//! Bit-stability contract: with `seed == 0` and a 0.5 label rate, the
//! sampled stream is identical to the original `irm_unit.rs` helper
//! (salts 1/2/3, label drawn as `pct % 2`). The invariance battery's
//! verdicts are pinned against those exact draws; do not change the
//! hash, the salt derivation, or the 0.5-rate label path without
//! re-blessing the battery.

use crate::env::EnvDataset;
use crate::lr::LrModel;
use crate::sparse::MultiHotMatrix;
use crate::trainers::TrainedModel;

/// Deterministic per-row percent draw in `0..100` (splitmix64-style
/// hash). Reproducible without any RNG state: the draw depends only on
/// `(counter, salt)`.
pub fn pct(counter: u64, salt: u64) -> u64 {
    let mut z = counter
        .wrapping_add(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
    (z >> 33) % 100
}

/// A fully parameterized SEM scenario. See the module docs for the
/// generative model.
#[derive(Debug, Clone, PartialEq)]
pub struct SemSpec {
    /// Rows drawn for each environment.
    pub rows_per_env: Vec<usize>,
    /// Correlation of the invariant feature with the label (all envs).
    pub rho_inv: f64,
    /// Per-environment correlation of the spurious feature.
    pub rho_spur: Vec<f64>,
    /// Per-environment label base rate `π_m = P(y = 1)`.
    pub label_rates: Vec<f64>,
    /// Stream seed. Seed 0 reproduces the legacy `irm_unit.rs` stream.
    pub seed: u64,
}

impl SemSpec {
    /// Full constructor; panics on malformed specs (mismatched lengths,
    /// correlations outside `[-1, 1]`, rates outside `(0, 1)`).
    pub fn new(
        rows_per_env: Vec<usize>,
        rho_inv: f64,
        rho_spur: Vec<f64>,
        label_rates: Vec<f64>,
        seed: u64,
    ) -> Self {
        assert_eq!(rows_per_env.len(), rho_spur.len(), "one rho_spur per env");
        assert_eq!(
            rows_per_env.len(),
            label_rates.len(),
            "one label rate per env"
        );
        assert!(!rows_per_env.is_empty(), "at least one environment");
        assert!((-1.0..=1.0).contains(&rho_inv), "rho_inv in [-1, 1]");
        for &r in &rho_spur {
            assert!((-1.0..=1.0).contains(&r), "rho_spur in [-1, 1]");
        }
        for &p in &label_rates {
            assert!(p > 0.0 && p < 1.0, "label rate in (0, 1)");
        }
        Self {
            rows_per_env,
            rho_inv,
            rho_spur,
            label_rates,
            seed,
        }
    }

    /// The classic sign-flip family: balanced labels, seed 0 — the
    /// exact spec the invariance battery has always pinned.
    pub fn flip(rows_per_env: &[usize], rho_inv: f64, rho_spur: &[f64]) -> Self {
        let rates = vec![0.5; rows_per_env.len()];
        Self::new(rows_per_env.to_vec(), rho_inv, rho_spur.to_vec(), rates, 0)
    }

    /// Re-seed the stream (returns a new spec; specs are values).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total rows across all environments.
    pub fn n_rows(&self) -> usize {
        self.rows_per_env.iter().sum()
    }

    /// Environment-size-weighted mean spurious correlation — the pooled
    /// signal a plain ERM fit sees.
    pub fn pooled_rho_spur(&self) -> f64 {
        let total: f64 = self.rows_per_env.iter().map(|&n| n as f64).sum();
        self.rows_per_env
            .iter()
            .zip(&self.rho_spur)
            .map(|(&n, &r)| n as f64 * r)
            .sum::<f64>()
            / total.max(1.0)
    }

    /// Salt for draw stream `k` (1 = label, 2 = invariant, 3 = spurious).
    /// Seed 0 yields the raw salts 1/2/3 the legacy helper used; other
    /// seeds shift every stream by a splitmix64 increment.
    fn salt(&self, k: u64) -> u64 {
        self.seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(k)
    }

    /// Sample the spec into an environment-partitioned dataset.
    /// Deterministic: same spec, same bytes.
    pub fn sample(&self) -> EnvDataset {
        let p_inv = (50.0 * (1.0 + self.rho_inv)) as u64;
        let (s_y, s_inv, s_spur) = (self.salt(1), self.salt(2), self.salt(3));
        let mut idx = Vec::with_capacity(2 * self.n_rows());
        let mut labels = Vec::with_capacity(self.n_rows());
        let mut envs = Vec::with_capacity(self.n_rows());
        let mut counter = 0u64;
        for (m, &n) in self.rows_per_env.iter().enumerate() {
            let p_spur = (50.0 * (1.0 + self.rho_spur[m])) as u64;
            let rate = self.label_rates[m];
            let p_y = (100.0 * rate).round() as u64;
            for _ in 0..n {
                counter += 1;
                // The 0.5-rate label path MUST stay `pct % 2`: that is
                // the stream the legacy battery pinned its verdicts on.
                let y = if rate == 0.5 {
                    (pct(counter, s_y) % 2) as u8
                } else {
                    u8::from(pct(counter, s_y) < p_y)
                };
                let x_inv = if pct(counter, s_inv) < p_inv {
                    y
                } else {
                    1 - y
                };
                let x_spur = if pct(counter, s_spur) < p_spur {
                    y
                } else {
                    1 - y
                };
                idx.push(if x_inv == 1 { 0u32 } else { 1 });
                idx.push(if x_spur == 1 { 2u32 } else { 3 });
                labels.push(y);
                envs.push(m as u16);
            }
        }
        let x = MultiHotMatrix::new(idx, 2, 4).unwrap();
        let names = (0..self.rows_per_env.len())
            .map(|m| format!("env{m}"))
            .collect();
        EnvDataset::new(x, labels, envs, names).unwrap()
    }
}

/// The canonical battery instance: spurious correlation flips from
/// +0.9 to −0.2 across two equal environments (pooled mean ≈ +0.35).
/// The asymmetric magnitudes matter: a symmetric ±ρ flip is already
/// cancelled by env-balanced gradient averaging, so only an asymmetric
/// flip isolates the invariance penalty.
pub fn canonical_battery() -> SemSpec {
    SemSpec::flip(&[300, 300], 0.5, &[0.9, -0.2])
}

/// Many-environment long tail: two large environments agree on a
/// strong positive spurious correlation, four small ones reverse it.
/// The pooled mean (≈ +0.46) is dominated by the head, so ERM latches;
/// the skewed tail carries the sign disagreement an invariance penalty
/// needs, spread across environments an order of magnitude smaller than
/// the head.
pub fn long_tail(seed: u64) -> SemSpec {
    SemSpec::new(
        vec![400, 200, 100, 80, 50, 30],
        0.5,
        vec![0.9, 0.7, -0.4, -0.3, -0.5, -0.4],
        vec![0.5; 6],
        seed,
    )
}

/// How much a model leans on the spurious feature relative to the
/// invariant one: `|w2 − w3| / |w0 − w1|`. Zero means full invariance.
pub fn spurious_ratio(model: &LrModel) -> f64 {
    let inv = (model.weights[0] - model.weights[1]).abs();
    let spur = (model.weights[2] - model.weights[3]).abs();
    spur / inv.max(1e-9)
}

/// Mean binary log-loss (nats) of a trained model over a whole dataset.
/// At `rho_inv = 0.5` the invariant-only optimum is the Bernoulli(0.75)
/// entropy ≈ 0.562 nats.
pub fn log_loss(model: &TrainedModel, data: &EnvDataset) -> f64 {
    let rows: Vec<u32> = (0..data.n_rows() as u32).collect();
    let scores = model.predict_rows(&data.x, &rows, &data.env_ids);
    scores
        .iter()
        .zip(&data.labels)
        .map(|(p, &y)| {
            let p = p.clamp(1e-12, 1.0 - 1e-12);
            if y == 1 {
                -p.ln()
            } else {
                -(1.0 - p).ln()
            }
        })
        .sum::<f64>()
        / rows.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The original `irm_unit.rs` generator, kept verbatim as the
    /// bit-stability oracle for the seed-0 / 0.5-rate path.
    fn legacy_sem(rows_per_env: &[usize], rho_inv: f64, rho_spur: &[f64]) -> EnvDataset {
        let p_inv = (50.0 * (1.0 + rho_inv)) as u64;
        let mut idx = Vec::new();
        let mut labels = Vec::new();
        let mut envs = Vec::new();
        let mut counter = 0u64;
        for (m, &n) in rows_per_env.iter().enumerate() {
            let p_spur = (50.0 * (1.0 + rho_spur[m])) as u64;
            for _ in 0..n {
                counter += 1;
                let y = (pct(counter, 1) % 2) as u8;
                let x_inv = if pct(counter, 2) < p_inv { y } else { 1 - y };
                let x_spur = if pct(counter, 3) < p_spur { y } else { 1 - y };
                idx.push(if x_inv == 1 { 0u32 } else { 1 });
                idx.push(if x_spur == 1 { 2u32 } else { 3 });
                labels.push(y);
                envs.push(m as u16);
            }
        }
        let x = MultiHotMatrix::new(idx, 2, 4).unwrap();
        let names = (0..rows_per_env.len()).map(|m| format!("env{m}")).collect();
        EnvDataset::new(x, labels, envs, names).unwrap()
    }

    #[test]
    fn seed_zero_reproduces_the_legacy_battery_stream() {
        for (sizes, rhos) in [
            (vec![300usize, 300], vec![0.9, -0.2]),
            (vec![600], vec![-0.9]),
            (vec![400, 300], vec![0.9, -0.2]),
        ] {
            let new = SemSpec::flip(&sizes, 0.5, &rhos).sample();
            let old = legacy_sem(&sizes, 0.5, &rhos);
            assert_eq!(new.labels, old.labels, "labels diverged for {sizes:?}");
            assert_eq!(new.env_ids, old.env_ids, "env ids diverged for {sizes:?}");
            assert_eq!(
                new.x.indices(),
                old.x.indices(),
                "feature stream diverged for {sizes:?}"
            );
        }
    }

    #[test]
    fn sampling_is_deterministic_and_seed_sensitive() {
        let spec = canonical_battery().with_seed(7);
        let a = spec.sample();
        let b = spec.sample();
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.x.indices(), b.x.indices());
        let c = canonical_battery().with_seed(8).sample();
        assert_ne!(a.labels, c.labels, "different seeds must shift the stream");
    }

    #[test]
    fn label_shift_hits_the_target_base_rates() {
        let spec = SemSpec::new(vec![4000, 4000], 0.5, vec![0.9, -0.2], vec![0.3, 0.7], 3);
        let data = spec.sample();
        for (m, &want) in spec.label_rates.iter().enumerate() {
            let rows = data.env_rows(m);
            let got = rows
                .iter()
                .map(|&r| data.labels[r as usize] as f64)
                .sum::<f64>()
                / rows.len() as f64;
            assert!(
                (got - want).abs() < 0.03,
                "env {m}: empirical rate {got:.3} misses target {want:.3}"
            );
        }
    }

    #[test]
    fn sampled_correlations_match_the_spec() {
        // Empirical corr(x, y) for a binary symmetric channel with flip
        // probability (1 − ρ)/2 is ρ itself; check both features.
        let spec = SemSpec::flip(&[8000, 8000], 0.5, &[0.9, -0.2]);
        let data = spec.sample();
        for (m, &rho) in spec.rho_spur.iter().enumerate() {
            let rows = data.env_rows(m);
            let mut agree_inv = 0usize;
            let mut agree_spur = 0usize;
            for &r in rows {
                let y = data.labels[r as usize];
                let cols = data.x.row(r as usize);
                let x_inv = u8::from(cols[0] == 0);
                let x_spur = u8::from(cols[1] == 2);
                agree_inv += usize::from(x_inv == y);
                agree_spur += usize::from(x_spur == y);
            }
            let n = rows.len() as f64;
            let rho_inv_hat = 2.0 * agree_inv as f64 / n - 1.0;
            let rho_spur_hat = 2.0 * agree_spur as f64 / n - 1.0;
            assert!(
                (rho_inv_hat - spec.rho_inv).abs() < 0.04,
                "env {m}: invariant corr {rho_inv_hat:.3} misses {:.3}",
                spec.rho_inv
            );
            assert!(
                (rho_spur_hat - rho).abs() < 0.04,
                "env {m}: spurious corr {rho_spur_hat:.3} misses {rho:.3}"
            );
        }
    }

    #[test]
    fn long_tail_pools_positive_while_the_tail_disagrees() {
        let spec = long_tail(0);
        assert!(
            spec.pooled_rho_spur() > 0.4,
            "head must dominate the pooled signal"
        );
        assert!(
            spec.rho_spur.iter().any(|&r| r < 0.0),
            "tail must reverse the spurious sign"
        );
        let data = spec.sample();
        assert_eq!(data.n_envs(), 6);
        let sizes = data.env_sizes();
        assert!(sizes[0] > 10 * sizes[5], "sizes must be heavily skewed");
    }
}
