//! The Meta-loss Replaying Queue (MRQ) — the paper's Eq. (8)–(9).
//!
//! A fixed-length FIFO per environment that stores the meta-losses of the
//! environments sampled in previous iterations. The approximate meta-loss
//! recombines the stored losses with geometric decay γ so recent losses
//! count more; gradients flow only through the newest entry.

/// One environment's replay queue.
#[derive(Debug, Clone, PartialEq)]
pub struct MetaReplayQueue {
    /// `entries[0]` is the oldest slot, `entries[L-1]` the newest. Slots
    /// are zero-initialized, matching Algorithm 2 line 1.
    entries: Vec<f64>,
    /// How many slots currently hold a real (pushed) loss.
    filled: usize,
}

impl MetaReplayQueue {
    /// A zeroed queue of length `len`.
    ///
    /// # Panics
    ///
    /// Panics when `len == 0`.
    pub fn new(len: usize) -> Self {
        assert!(len >= 1, "MRQ length must be positive");
        MetaReplayQueue {
            entries: vec![0.0; len],
            filled: 0,
        }
    }

    /// Queue capacity `L`.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.filled == 0
    }

    /// Number of slots holding real losses.
    pub fn filled(&self) -> usize {
        self.filled
    }

    /// Push the newest sampled loss, shifting everything forward
    /// (Eq. (8)): `H_m^i ← H_m^{i+1}` then `H_m^L ← loss`.
    pub fn push(&mut self, loss: f64) {
        self.entries.rotate_left(1);
        *self.entries.last_mut().expect("len >= 1") = loss;
        self.filled = (self.filled + 1).min(self.entries.len());
    }

    /// The paper's replayed meta-loss (Eq. (9)): `Σᵢ γ^{L−i} · H_m^i`,
    /// summed over the whole queue including still-zero slots (exactly
    /// Algorithm 2: slots are initialized to zero and contribute nothing).
    pub fn replayed_sum(&self, gamma: f64) -> f64 {
        let l = self.entries.len();
        self.entries
            .iter()
            .enumerate()
            .map(|(i, &h)| gamma.powi((l - 1 - i) as i32) * h)
            .sum()
    }

    /// Decay-normalized replayed loss: the weighted *mean* over the slots
    /// that hold real losses, `Σ γ^{L−i} Hᵢ / Σ γ^{L−i}`.
    ///
    /// This variant keeps the meta-loss on the same scale regardless of
    /// queue fill and length, which lets one outer learning rate serve
    /// every configuration (see DESIGN.md §5); experiments use it, while
    /// [`MetaReplayQueue::replayed_sum`] is the verbatim Eq. (9).
    pub fn replayed_mean(&self, gamma: f64) -> f64 {
        if self.filled == 0 {
            return 0.0;
        }
        let l = self.entries.len();
        let start = l - self.filled;
        let mut num = 0.0;
        let mut den = 0.0;
        for (i, &h) in self.entries.iter().enumerate().skip(start) {
            let w = gamma.powi((l - 1 - i) as i32);
            num += w * h;
            den += w;
        }
        num / den
    }

    /// Weight of the newest entry inside [`MetaReplayQueue::replayed_mean`]
    /// — the only term gradients flow through (γ⁰ / Σ γ^{L−i}).
    pub fn newest_weight(&self, gamma: f64) -> f64 {
        if self.filled == 0 {
            return 0.0;
        }
        let l = self.entries.len();
        let start = l - self.filled;
        let den: f64 = (start..l).map(|i| gamma.powi((l - 1 - i) as i32)).sum();
        1.0 / den
    }

    /// The newest stored loss (0.0 before any push).
    pub fn newest(&self) -> f64 {
        *self.entries.last().expect("len >= 1")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_shifts_fifo() {
        let mut q = MetaReplayQueue::new(3);
        q.push(1.0);
        q.push(2.0);
        q.push(3.0);
        q.push(4.0);
        assert_eq!(q.entries, vec![2.0, 3.0, 4.0]);
        assert_eq!(q.newest(), 4.0);
        assert_eq!(q.filled(), 3);
    }

    #[test]
    fn zero_initialized_slots_contribute_nothing_to_sum() {
        let mut q = MetaReplayQueue::new(4);
        q.push(2.0);
        // Only the newest slot is nonzero: weight γ⁰ = 1.
        assert!((q.replayed_sum(0.5) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn replayed_sum_matches_eq9() {
        let mut q = MetaReplayQueue::new(3);
        q.push(1.0);
        q.push(2.0);
        q.push(3.0);
        let gamma: f64 = 0.9;
        let expect = gamma.powi(2) * 1.0 + gamma.powi(1) * 2.0 + 3.0;
        assert!((q.replayed_sum(gamma) - expect).abs() < 1e-12);
    }

    #[test]
    fn replayed_mean_is_weighted_average() {
        let mut q = MetaReplayQueue::new(3);
        q.push(1.0);
        q.push(2.0);
        let gamma: f64 = 0.5;
        // Filled slots: weights γ¹ for 1.0, γ⁰ for 2.0.
        let expect = (0.5 * 1.0 + 1.0 * 2.0) / 1.5;
        assert!((q.replayed_mean(gamma) - expect).abs() < 1e-12);
    }

    #[test]
    fn replayed_mean_of_constant_is_constant() {
        let mut q = MetaReplayQueue::new(5);
        for _ in 0..7 {
            q.push(3.25);
        }
        for gamma in [0.1, 0.5, 0.9, 1.0] {
            assert!((q.replayed_mean(gamma) - 3.25).abs() < 1e-12);
        }
    }

    #[test]
    fn gamma_one_is_uniform_mean() {
        let mut q = MetaReplayQueue::new(3);
        q.push(1.0);
        q.push(2.0);
        q.push(6.0);
        assert!((q.replayed_mean(1.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn small_gamma_emphasizes_newest() {
        let mut q = MetaReplayQueue::new(3);
        q.push(100.0);
        q.push(100.0);
        q.push(1.0);
        // γ→0 forgets history.
        assert!((q.replayed_mean(1e-9) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn newest_weight_sums_against_history() {
        let mut q = MetaReplayQueue::new(4);
        q.push(1.0);
        assert!((q.newest_weight(0.9) - 1.0).abs() < 1e-12);
        q.push(1.0);
        let expect = 1.0 / (1.0 + 0.9);
        assert!((q.newest_weight(0.9) - expect).abs() < 1e-12);
    }

    #[test]
    fn length_one_degrades_to_plain_sampling() {
        // Paper §IV-E1: MRQ of length 1 is meta-IRM sampling one province.
        let mut q = MetaReplayQueue::new(1);
        q.push(5.0);
        assert_eq!(q.replayed_mean(0.9), 5.0);
        assert_eq!(q.replayed_sum(0.9), 5.0);
        q.push(7.0);
        assert_eq!(q.replayed_mean(0.9), 7.0);
    }

    #[test]
    fn empty_queue_reports_zero() {
        let q = MetaReplayQueue::new(3);
        assert!(q.is_empty());
        assert_eq!(q.replayed_mean(0.9), 0.0);
        assert_eq!(q.newest_weight(0.9), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_length_rejected() {
        let _ = MetaReplayQueue::new(0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn mean_is_bounded_by_extremes(
                losses in proptest::collection::vec(0.0f64..10.0, 1..12),
                len in 1usize..6,
                gamma in 0.05f64..1.0,
            ) {
                let mut q = MetaReplayQueue::new(len);
                for &l in &losses {
                    q.push(l);
                }
                let k = losses.len().min(len);
                let window = &losses[losses.len() - k..];
                let lo = window.iter().cloned().fold(f64::MAX, f64::min);
                let hi = window.iter().cloned().fold(f64::MIN, f64::max);
                let m = q.replayed_mean(gamma);
                prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
            }

            #[test]
            fn filled_never_exceeds_len(
                pushes in 0usize..20,
                len in 1usize..6,
            ) {
                let mut q = MetaReplayQueue::new(len);
                for i in 0..pushes {
                    q.push(i as f64);
                }
                prop_assert_eq!(q.filled(), pushes.min(len));
                // Capacity is an invariant too: pushing never grows L.
                prop_assert_eq!(q.len(), len);
            }

            /// The queue is exactly the last `min(k, L)` pushes in order,
            /// zero-padded at the old end (Eq. (8) for arbitrary streams).
            #[test]
            fn window_is_the_newest_pushes_in_order(
                losses in proptest::collection::vec(-10.0f64..10.0, 0..16),
                len in 1usize..7,
            ) {
                let mut q = MetaReplayQueue::new(len);
                for &l in &losses {
                    q.push(l);
                }
                let k = losses.len().min(len);
                let mut expect = vec![0.0; len - k];
                expect.extend_from_slice(&losses[losses.len() - k..]);
                prop_assert_eq!(&q.entries, &expect);
            }

            /// Eq. (9) verbatim: the replayed sum applies weight γ^{L−1−i}
            /// to slot i — checked against an independently accumulated
            /// reference (running product instead of `powi`).
            #[test]
            fn replay_weights_are_exact_gamma_powers(
                losses in proptest::collection::vec(-5.0f64..5.0, 1..16),
                len in 1usize..7,
                gamma in 0.05f64..1.0,
            ) {
                let mut q = MetaReplayQueue::new(len);
                for &l in &losses {
                    q.push(l);
                }
                let mut expect = 0.0;
                let mut weight = 1.0; // γ⁰ for the newest slot
                for &h in q.entries.iter().rev() {
                    expect += weight * h;
                    weight *= gamma;
                }
                prop_assert!((q.replayed_sum(gamma) - expect).abs() < 1e-9);
            }

            /// The meta-gradient property behind Algorithm 2: only the
            /// newest entry is a live variable. Perturbing the final push
            /// by δ moves `replayed_mean` by exactly `newest_weight · δ`
            /// (and `replayed_sum` by δ, weight γ⁰ = 1), for ANY push
            /// history — older entries behave as constants.
            #[test]
            fn gradient_flows_only_through_newest_entry(
                history in proptest::collection::vec(-5.0f64..5.0, 0..16),
                last in -5.0f64..5.0,
                delta in 0.01f64..2.0,
                len in 1usize..7,
                gamma in 0.05f64..1.0,
            ) {
                let mut base = MetaReplayQueue::new(len);
                let mut bumped = MetaReplayQueue::new(len);
                for &l in &history {
                    base.push(l);
                    bumped.push(l);
                }
                base.push(last);
                bumped.push(last + delta);
                let dmean = bumped.replayed_mean(gamma) - base.replayed_mean(gamma);
                prop_assert!(
                    (dmean - base.newest_weight(gamma) * delta).abs() < 1e-9,
                    "d(mean)/d(newest) = {} but newest_weight = {}",
                    dmean / delta,
                    base.newest_weight(gamma)
                );
                let dsum = bumped.replayed_sum(gamma) - base.replayed_sum(gamma);
                prop_assert!((dsum - delta).abs() < 1e-9);
            }
        }
    }
}
