//! Seeded mini-batch iteration.
//!
//! The paper's environments can be consumed "in a mini-batch manner"
//! (footnote 6); [`Batcher`] provides the deterministic, reshuffled batch
//! schedule the SGD variants of the trainers use.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Deterministic mini-batch scheduler over a fixed row set.
#[derive(Debug, Clone)]
pub struct Batcher {
    rows: Vec<u32>,
    batch_size: usize,
    seed: u64,
}

impl Batcher {
    /// Create a scheduler over `rows` with the given batch size.
    ///
    /// # Panics
    ///
    /// Panics when `batch_size == 0` or `rows` is empty.
    pub fn new(rows: &[u32], batch_size: usize, seed: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        assert!(!rows.is_empty(), "cannot batch an empty row set");
        Batcher {
            rows: rows.to_vec(),
            batch_size,
            seed,
        }
    }

    /// Number of batches per epoch (last batch may be short).
    pub fn batches_per_epoch(&self) -> usize {
        self.rows.len().div_ceil(self.batch_size)
    }

    /// The shuffled batches of one epoch. Each epoch uses an independent,
    /// deterministic permutation derived from `(seed, epoch)`.
    pub fn epoch(&self, epoch: usize) -> Vec<Vec<u32>> {
        let mut shuffled = self.rows.clone();
        let mut rng =
            ChaCha8Rng::seed_from_u64(self.seed ^ (epoch as u64).wrapping_mul(0x9E3779B97F4A7C15));
        shuffled.shuffle(&mut rng);
        shuffled
            .chunks(self.batch_size)
            .map(<[u32]>::to_vec)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_partition_the_rows() {
        let rows: Vec<u32> = (0..103).collect();
        let b = Batcher::new(&rows, 10, 3);
        assert_eq!(b.batches_per_epoch(), 11);
        let batches = b.epoch(0);
        assert_eq!(batches.len(), 11);
        let mut all: Vec<u32> = batches.concat();
        all.sort_unstable();
        assert_eq!(all, rows);
        assert_eq!(batches.last().unwrap().len(), 3);
    }

    #[test]
    fn epochs_reshuffle_deterministically() {
        let rows: Vec<u32> = (0..50).collect();
        let b = Batcher::new(&rows, 8, 9);
        assert_eq!(b.epoch(0), b.epoch(0));
        assert_ne!(b.epoch(0), b.epoch(1));
        let c = Batcher::new(&rows, 8, 10);
        assert_ne!(b.epoch(0), c.epoch(0));
    }

    #[test]
    fn batch_size_larger_than_rows_is_one_batch() {
        let rows: Vec<u32> = (0..5).collect();
        let b = Batcher::new(&rows, 100, 1);
        assert_eq!(b.batches_per_epoch(), 1);
        assert_eq!(b.epoch(7).len(), 1);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_size_rejected() {
        let _ = Batcher::new(&[1], 0, 0);
    }

    #[test]
    #[should_panic(expected = "empty row set")]
    fn empty_rows_rejected() {
        let _ = Batcher::new(&[], 4, 0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn every_epoch_is_a_permutation(
                n in 1usize..200,
                batch in 1usize..50,
                seed in 0u64..100,
                epoch in 0usize..5,
            ) {
                let rows: Vec<u32> = (0..n as u32).collect();
                let b = Batcher::new(&rows, batch, seed);
                let mut all: Vec<u32> = b.epoch(epoch).concat();
                all.sort_unstable();
                prop_assert_eq!(all, rows);
            }
        }
    }
}
