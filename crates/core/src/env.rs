//! Environment-partitioned datasets: the `D = {D_1, …, D_M}` of the paper.

use crate::sparse::MultiHotMatrix;

/// A dataset whose rows are grouped into environments (provinces).
#[derive(Debug, Clone)]
pub struct EnvDataset {
    /// Multi-hot design matrix (GBDT leaf encoding).
    pub x: MultiHotMatrix,
    /// Binary default labels, aligned with `x` rows.
    pub labels: Vec<u8>,
    /// Environment id of every row.
    pub env_ids: Vec<u16>,
    /// `rows_of[m]` = row indices of environment `m`. Environments with no
    /// rows have empty vectors and are skipped by trainers.
    rows_of: Vec<Vec<u32>>,
    /// Environment display names, indexed by id.
    pub env_names: Vec<String>,
}

/// Errors from dataset assembly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvError {
    /// Labels / env ids don't match the matrix rows.
    LengthMismatch {
        rows: usize,
        labels: usize,
        env_ids: usize,
    },
    /// An env id exceeds the name catalog.
    UnknownEnv { id: u16, catalog: usize },
}

impl std::fmt::Display for EnvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnvError::LengthMismatch {
                rows,
                labels,
                env_ids,
            } => write!(
                f,
                "matrix has {rows} rows but {labels} labels / {env_ids} env ids"
            ),
            EnvError::UnknownEnv { id, catalog } => {
                write!(f, "env id {id} outside catalog of size {catalog}")
            }
        }
    }
}

impl std::error::Error for EnvError {}

impl EnvDataset {
    /// Assemble a dataset, grouping rows by environment.
    ///
    /// # Errors
    ///
    /// See [`EnvError`].
    pub fn new(
        x: MultiHotMatrix,
        labels: Vec<u8>,
        env_ids: Vec<u16>,
        env_names: Vec<String>,
    ) -> Result<Self, EnvError> {
        if labels.len() != x.n_rows() || env_ids.len() != x.n_rows() {
            return Err(EnvError::LengthMismatch {
                rows: x.n_rows(),
                labels: labels.len(),
                env_ids: env_ids.len(),
            });
        }
        if let Some(&bad) = env_ids.iter().find(|&&e| e as usize >= env_names.len()) {
            return Err(EnvError::UnknownEnv {
                id: bad,
                catalog: env_names.len(),
            });
        }
        let mut rows_of = vec![Vec::new(); env_names.len()];
        for (r, &e) in env_ids.iter().enumerate() {
            rows_of[e as usize].push(r as u32);
        }
        Ok(EnvDataset {
            x,
            labels,
            env_ids,
            rows_of,
            env_names,
        })
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.x.n_rows()
    }

    /// Parameter dimension of the LR model over this dataset.
    pub fn n_cols(&self) -> usize {
        self.x.n_cols()
    }

    /// Total number of environments in the catalog (including empty ones).
    pub fn n_envs(&self) -> usize {
        self.rows_of.len()
    }

    /// Row indices of environment `m` (possibly empty).
    pub fn env_rows(&self, m: usize) -> &[u32] {
        &self.rows_of[m]
    }

    /// Ids of environments that actually have rows — trainers iterate
    /// these; the paper's `M` is their count. Environments with a single
    /// sample are included (loss is defined) — only empty ones are
    /// dropped.
    pub fn active_envs(&self) -> Vec<usize> {
        (0..self.rows_of.len())
            .filter(|&m| !self.rows_of[m].is_empty())
            .collect()
    }

    /// All row indices (the pooled ERM view).
    pub fn all_rows(&self) -> Vec<u32> {
        (0..self.n_rows() as u32).collect()
    }

    /// Per-environment sample counts.
    pub fn env_sizes(&self) -> Vec<usize> {
        self.rows_of.iter().map(Vec::len).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> EnvDataset {
        let x = MultiHotMatrix::new(vec![0, 1, 1, 2, 0, 2, 2, 3], 2, 4).unwrap();
        EnvDataset::new(
            x,
            vec![1, 0, 1, 0],
            vec![0, 2, 0, 2],
            vec!["A".into(), "B".into(), "C".into()],
        )
        .unwrap()
    }

    #[test]
    fn grouping_by_env() {
        let d = demo();
        assert_eq!(d.env_rows(0), &[0, 2]);
        assert_eq!(d.env_rows(1), &[] as &[u32]);
        assert_eq!(d.env_rows(2), &[1, 3]);
        assert_eq!(d.active_envs(), vec![0, 2]);
        assert_eq!(d.env_sizes(), vec![2, 0, 2]);
    }

    #[test]
    fn accessors() {
        let d = demo();
        assert_eq!(d.n_rows(), 4);
        assert_eq!(d.n_cols(), 4);
        assert_eq!(d.n_envs(), 3);
        assert_eq!(d.all_rows(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn rejects_length_mismatch() {
        let x = MultiHotMatrix::new(vec![0, 1], 2, 4).unwrap();
        let err = EnvDataset::new(x, vec![1, 0], vec![0], vec!["A".into()]).unwrap_err();
        assert!(matches!(err, EnvError::LengthMismatch { .. }));
    }

    #[test]
    fn rejects_unknown_env() {
        let x = MultiHotMatrix::new(vec![0, 1], 2, 4).unwrap();
        let err = EnvDataset::new(x, vec![1], vec![5], vec!["A".into()]).unwrap_err();
        assert_eq!(err, EnvError::UnknownEnv { id: 5, catalog: 1 });
    }
}
