//! The multi-hot design matrix produced by the GBDT+LR transform.
//!
//! Every row has exactly `nnz_per_row` active columns (one leaf per tree),
//! all with implicit value 1.0. Storing only the active column indices
//! makes the logistic-regression forward/backward passes `O(rows × trees)`
//! instead of `O(rows × total_leaves)`.
//!
//! The constructor validates every index against `n_cols` once; the
//! blocked gather ([`MultiHotMatrix::gather_block`]) relies on that
//! invariant to read the weight vector without per-element bounds checks.

use crate::simd::{self, Backend, BLOCK_ROWS};

/// A binary matrix with a fixed number of ones per row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiHotMatrix {
    n_cols: usize,
    nnz_per_row: usize,
    /// Row-major active indices: row `i` owns
    /// `indices[i*nnz_per_row..(i+1)*nnz_per_row]`.
    indices: Vec<u32>,
}

/// Errors from matrix construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// `indices.len()` is not a multiple of `nnz_per_row`.
    RaggedRows { len: usize, nnz_per_row: usize },
    /// An index is out of the column range.
    IndexOutOfRange { index: u32, n_cols: usize },
    /// `nnz_per_row` was zero.
    EmptyRows,
}

impl std::fmt::Display for SparseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SparseError::RaggedRows { len, nnz_per_row } => {
                write!(
                    f,
                    "{len} indices is not a multiple of {nnz_per_row} per row"
                )
            }
            SparseError::IndexOutOfRange { index, n_cols } => {
                write!(f, "column index {index} out of range {n_cols}")
            }
            SparseError::EmptyRows => write!(f, "nnz_per_row must be positive"),
        }
    }
}

impl std::error::Error for SparseError {}

impl MultiHotMatrix {
    /// Wrap flat row-major indices.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError`] on ragged input or out-of-range indices.
    pub fn new(indices: Vec<u32>, nnz_per_row: usize, n_cols: usize) -> Result<Self, SparseError> {
        if nnz_per_row == 0 {
            return Err(SparseError::EmptyRows);
        }
        if !indices.len().is_multiple_of(nnz_per_row) {
            return Err(SparseError::RaggedRows {
                len: indices.len(),
                nnz_per_row,
            });
        }
        if let Some(&bad) = indices.iter().find(|&&i| i as usize >= n_cols) {
            return Err(SparseError::IndexOutOfRange { index: bad, n_cols });
        }
        Ok(MultiHotMatrix {
            n_cols,
            nnz_per_row,
            indices,
        })
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.indices.len() / self.nnz_per_row
    }

    /// Number of columns (the LR parameter dimension `N`).
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Active positions per row (the number of GBDT trees).
    pub fn nnz_per_row(&self) -> usize {
        self.nnz_per_row
    }

    /// The full flat row-major index stream (row `i` owns the slice
    /// `[i*nnz_per_row, (i+1)*nnz_per_row)`). Used by golden-style tests
    /// to compare two matrices byte for byte.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Active column indices of one row.
    pub fn row(&self, row: usize) -> &[u32] {
        &self.indices[row * self.nnz_per_row..(row + 1) * self.nnz_per_row]
    }

    /// `θᵀx` for a multi-hot row: the sum of the touched weights.
    pub fn dot_row(&self, row: usize, weights: &[f64]) -> f64 {
        debug_assert_eq!(weights.len(), self.n_cols);
        self.row(row).iter().map(|&i| weights[i as usize]).sum()
    }

    /// Batch `θᵀx` over a row subset: `out[k] = dot_row(rows[k], weights)`.
    /// Offline predict and the serve engine's `score_batch` both route
    /// through this one inner loop; on the SIMD backend it runs
    /// [`BLOCK_ROWS`]-row blocks through [`MultiHotMatrix::gather_block`]
    /// with a scalar tail, bit-identical to the per-row path (the lane
    /// sums add the same weights in the same order as [`Self::dot_row`]).
    ///
    /// # Panics
    ///
    /// Panics when `out.len() != rows.len()`.
    pub fn dot_rows_into(&self, rows: &[u32], weights: &[f64], out: &mut [f64]) {
        self.dot_rows_into_on(simd::backend(), rows, weights, out)
    }

    /// [`Self::dot_rows_into`] on an explicit [`Backend`].
    pub fn dot_rows_into_on(
        &self,
        backend: Backend,
        rows: &[u32],
        weights: &[f64],
        out: &mut [f64],
    ) {
        assert_eq!(out.len(), rows.len(), "output must match the row count");
        match backend {
            Backend::Simd => {
                let mut blocks = rows.chunks_exact(BLOCK_ROWS);
                let mut outs = out.chunks_exact_mut(BLOCK_ROWS);
                for (block, ob) in (&mut blocks).zip(&mut outs) {
                    let mut acc = [0.0; BLOCK_ROWS];
                    self.dot_block(block, weights, &mut acc);
                    ob.copy_from_slice(&acc);
                }
                for (o, &r) in outs.into_remainder().iter_mut().zip(blocks.remainder()) {
                    *o = self.dot_row(r as usize, weights);
                }
            }
            Backend::Scalar => {
                for (o, &r) in out.iter_mut().zip(rows) {
                    *o = self.dot_row(r as usize, weights);
                }
            }
        }
    }

    /// `θᵀx` of a full [`BLOCK_ROWS`]-row block: `acc[k] += ` the dot of
    /// row `rows[k]`, all eight rows advanced one active column per
    /// outer step. Eight independent accumulator chains give the CPU
    /// cross-row ILP without staging the weights through a scratch
    /// buffer; each row's additions happen in the same ascending-`j`
    /// order as [`Self::dot_row`]'s sequential fold, so the result is
    /// bit-identical to eight scalar dots.
    ///
    /// # Panics
    ///
    /// Panics when `rows.len() != BLOCK_ROWS` or
    /// `weights.len() != n_cols`.
    pub fn dot_block(&self, rows: &[u32], weights: &[f64], acc: &mut [f64; BLOCK_ROWS]) {
        let nnz = self.nnz_per_row;
        assert_eq!(rows.len(), BLOCK_ROWS, "dot_block needs a full block");
        assert_eq!(weights.len(), self.n_cols, "weight vector shape");
        let mut base = [0usize; BLOCK_ROWS];
        for (b, &r) in base.iter_mut().zip(rows) {
            *b = r as usize * nnz;
            assert!(*b + nnz <= self.indices.len(), "row in range");
        }
        for j in 0..nnz {
            for k in 0..BLOCK_ROWS {
                // SAFETY: base[k] + j < base[k] + nnz <= indices.len()
                // (asserted above), and the constructor rejected any
                // index >= n_cols == weights.len().
                unsafe {
                    let c = *self.indices.get_unchecked(base[k] + j);
                    acc[k] += *weights.get_unchecked(c as usize);
                }
            }
        }
    }

    /// Gather the touched weights of a [`BLOCK_ROWS`]-row block into
    /// structure-of-arrays lanes: `lanes[j * BLOCK_ROWS + k]` holds the
    /// weight of row `rows[k]`'s `j`-th active column, so
    /// [`simd::accumulate_lanes`] can sum all eight rows with vector adds
    /// while preserving each row's sequential `j`-order.
    ///
    /// # Panics
    ///
    /// Panics when `rows.len() != BLOCK_ROWS`,
    /// `lanes.len() != nnz_per_row * BLOCK_ROWS`, or
    /// `weights.len() != n_cols`.
    pub fn gather_block(&self, rows: &[u32], weights: &[f64], lanes: &mut [f64]) {
        let nnz = self.nnz_per_row;
        assert_eq!(rows.len(), BLOCK_ROWS, "gather_block needs a full block");
        assert_eq!(lanes.len(), nnz * BLOCK_ROWS, "lane buffer shape");
        assert_eq!(weights.len(), self.n_cols, "weight vector shape");
        for (k, &r) in rows.iter().enumerate() {
            let idx = self.row(r as usize);
            for (j, &c) in idx.iter().enumerate() {
                // SAFETY: the constructor rejected any index >= n_cols and
                // the asserts above pin weights.len() == n_cols and
                // lanes.len() == nnz * BLOCK_ROWS with j < nnz, k < BLOCK_ROWS.
                unsafe {
                    *lanes.get_unchecked_mut(j * BLOCK_ROWS + k) =
                        *weights.get_unchecked(c as usize);
                }
            }
        }
    }

    /// Scatter-add `coef` into the touched weights of a row
    /// (`out += coef · x_row`).
    pub fn scatter_add(&self, row: usize, coef: f64, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.n_cols);
        for &i in self.row(row) {
            out[i as usize] += coef;
        }
    }

    /// Densify one row (testing / interop).
    pub fn densify_row(&self, row: usize) -> Vec<f64> {
        let mut out = vec![0.0; self.n_cols];
        for &i in self.row(row) {
            out[i as usize] += 1.0;
        }
        out
    }

    /// Densify the whole matrix, row-major (testing / interop).
    pub fn densify(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n_rows() * self.n_cols);
        for r in 0..self.n_rows() {
            out.extend_from_slice(&self.densify_row(r));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> MultiHotMatrix {
        // 3 rows, 2 active per row, 5 columns.
        MultiHotMatrix::new(vec![0, 2, 1, 3, 2, 4], 2, 5).unwrap()
    }

    #[test]
    fn shape_accessors() {
        let m = demo();
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.n_cols(), 5);
        assert_eq!(m.nnz_per_row(), 2);
        assert_eq!(m.row(1), &[1, 3]);
    }

    #[test]
    fn dot_row_sums_touched_weights() {
        let m = demo();
        let w = [1.0, 10.0, 100.0, 1000.0, 10000.0];
        assert_eq!(m.dot_row(0, &w), 101.0);
        assert_eq!(m.dot_row(1, &w), 1010.0);
        assert_eq!(m.dot_row(2, &w), 10100.0);
    }

    #[test]
    fn dot_rows_into_matches_per_row_dots() {
        let m = demo();
        let w = [1.0, 10.0, 100.0, 1000.0, 10000.0];
        let rows = [2u32, 0, 1];
        let mut out = vec![0.0; 3];
        m.dot_rows_into(&rows, &w, &mut out);
        assert_eq!(out, vec![10100.0, 101.0, 1010.0]);
    }

    #[test]
    fn blocked_and_scalar_dot_rows_are_bitwise_identical() {
        // 19 rows: two full blocks plus an odd tail of 3.
        let n_cols = 9;
        let nnz = 3;
        let indices: Vec<u32> = (0..19 * nnz)
            .map(|i| ((i as u64).wrapping_mul(0x9E37_79B9) % n_cols as u64) as u32)
            .collect();
        let m = MultiHotMatrix::new(indices, nnz, n_cols).unwrap();
        let w: Vec<f64> = (0..n_cols).map(|i| (i as f64) * 0.73 - 2.1).collect();
        let rows: Vec<u32> = (0..19u32).rev().collect();
        let mut blocked = vec![0.0; 19];
        let mut scalar = vec![0.0; 19];
        m.dot_rows_into_on(Backend::Simd, &rows, &w, &mut blocked);
        m.dot_rows_into_on(Backend::Scalar, &rows, &w, &mut scalar);
        assert_eq!(blocked, scalar);
    }

    #[test]
    fn gather_block_lays_out_lanes_column_major() {
        // 8 rows, 2 active per row, over 4 columns.
        let indices: Vec<u32> = (0..16).map(|i| (i % 4) as u32).collect();
        let m = MultiHotMatrix::new(indices, 2, 4).unwrap();
        let w = [10.0, 20.0, 30.0, 40.0];
        let rows: Vec<u32> = (0..8).collect();
        let mut lanes = vec![0.0; 16];
        m.gather_block(&rows, &w, &mut lanes);
        for (k, &r) in rows.iter().enumerate() {
            let idx = m.row(r as usize);
            for (j, &c) in idx.iter().enumerate() {
                assert_eq!(lanes[j * BLOCK_ROWS + k], w[c as usize]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "full block")]
    fn gather_block_rejects_partial_blocks() {
        let m = MultiHotMatrix::new(vec![0, 1, 2, 3], 1, 5).unwrap();
        let mut lanes = vec![0.0; BLOCK_ROWS];
        m.gather_block(&[0, 1], &[0.0; 5], &mut lanes);
    }

    #[test]
    fn scatter_add_accumulates() {
        let m = demo();
        let mut out = vec![0.0; 5];
        m.scatter_add(0, 2.0, &mut out);
        m.scatter_add(1, -1.0, &mut out);
        assert_eq!(out, vec![2.0, -1.0, 2.0, -1.0, 0.0]);
    }

    #[test]
    fn densify_matches_sparse_ops() {
        let m = demo();
        let dense = m.densify();
        let w = [0.5, -1.0, 2.0, 0.0, 3.0];
        for r in 0..3 {
            let direct = m.dot_row(r, &w);
            let via_dense: f64 = dense[r * 5..(r + 1) * 5]
                .iter()
                .zip(&w)
                .map(|(&x, &wi)| x * wi)
                .sum();
            assert!((direct - via_dense).abs() < 1e-12);
        }
    }

    #[test]
    fn rejects_ragged() {
        assert_eq!(
            MultiHotMatrix::new(vec![0, 1, 2], 2, 5).unwrap_err(),
            SparseError::RaggedRows {
                len: 3,
                nnz_per_row: 2
            }
        );
    }

    #[test]
    fn rejects_out_of_range() {
        assert_eq!(
            MultiHotMatrix::new(vec![0, 9], 2, 5).unwrap_err(),
            SparseError::IndexOutOfRange {
                index: 9,
                n_cols: 5
            }
        );
    }

    #[test]
    fn rejects_zero_nnz() {
        assert_eq!(
            MultiHotMatrix::new(vec![], 0, 5).unwrap_err(),
            SparseError::EmptyRows
        );
    }

    #[test]
    fn empty_matrix_is_fine() {
        let m = MultiHotMatrix::new(vec![], 3, 10).unwrap();
        assert_eq!(m.n_rows(), 0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn dense_and_sparse_dot_agree(
                rows in 1usize..10,
                nnz in 1usize..5,
                seed in 0u64..500,
            ) {
                let n_cols = 12;
                let indices: Vec<u32> = (0..rows * nnz)
                    .map(|i| {
                        let h = (i as u64 + 1).wrapping_mul(seed.wrapping_add(0x9E3779B9));
                        (h % n_cols as u64) as u32
                    })
                    .collect();
                let m = MultiHotMatrix::new(indices, nnz, n_cols).unwrap();
                let w: Vec<f64> = (0..n_cols).map(|i| (i as f64) * 0.37 - 1.1).collect();
                let dense = m.densify();
                for r in 0..rows {
                    let direct = m.dot_row(r, &w);
                    let via: f64 = dense[r * n_cols..(r + 1) * n_cols]
                        .iter().zip(&w).map(|(&x, &wi)| x * wi).sum();
                    prop_assert!((direct - via).abs() < 1e-10);
                }
            }
        }
    }
}
