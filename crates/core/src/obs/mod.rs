//! `core::obs` — zero-dependency observability: metrics, tracing, export.
//!
//! Three pieces:
//!
//! - [`metrics`]: a lock-sharded [`MetricsRegistry`] of counters, gauges
//!   and [`crate::timing::Histogram`]s, read out as sorted, mergeable
//!   [`MetricsSnapshot`]s;
//! - [`trace`]: `span!`/`event!` macros feeding a bounded ring buffer
//!   and pluggable sinks (JSON-lines file, stderr pretty-printer, no-op);
//! - [`export`]: Prometheus-text and JSON renderers for snapshots.
//!
//! # Feature gating and the determinism guarantee
//!
//! The types here always compile, so exporters, the serve engine, and
//! tests can name them unconditionally. What the `obs` cargo feature
//! controls is [`enabled()`] — a `const fn` the instrumented call sites
//! in the trainers, kernels, and scoring engine branch on. With the
//! feature off, `enabled()` is `const false`, the branches fold away,
//! and instrumentation costs nothing.
//!
//! Instrumentation is **observation only**: metric and trace values are
//! derived from the computation (and from wall-clock time), but no code
//! path ever reads them back to make a decision. Model outputs are
//! therefore bit-identical with `obs` on or off, and with any trace
//! sink attached — `crates/core/tests/obs_determinism.rs` proves it the
//! same way `parallel_determinism.rs` proves thread-count independence.
//!
//! # Quick use
//!
//! ```
//! use lightmirm_core::obs;
//!
//! // Handles are resolved once, then recorded through cheaply.
//! let hits = obs::registry().counter("mrq_hits_total", &[("env", "3")]);
//! hits.inc();
//!
//! // Spans bracket a scope; recording is on only with the `obs` feature.
//! {
//!     let _span = lightmirm_core::span!("inner_step", env = 3);
//!     // ... work ...
//! }
//!
//! let text = obs::export::to_prometheus_text(&obs::registry().snapshot());
//! assert!(text.contains("mrq_hits_total"));
//! ```

pub mod export;
pub mod metrics;
pub mod profile;
pub mod trace;

pub use metrics::{
    Counter, Gauge, HistogramHandle, HistogramSnapshot, MetricEntry, MetricKey, MetricValue,
    MetricsRegistry, MetricsSnapshot,
};
pub use profile::{Profile, ProfileEdge, SiteProfile, StackPath};
pub use trace::{JsonLinesSink, NoopSink, SpanGuard, StderrPrettySink, TraceEvent, TraceSink};

use std::sync::OnceLock;

/// Whether the `obs` cargo feature is compiled in. `const`, so
/// `if obs::enabled() { ... }` folds away entirely when off.
#[must_use]
pub const fn enabled() -> bool {
    cfg!(feature = "obs")
}

static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();

/// The process-global metrics registry.
pub fn registry() -> &'static MetricsRegistry {
    REGISTRY.get_or_init(MetricsRegistry::new)
}

/// The process-global tracer (re-exported from [`trace`]).
pub fn tracer() -> &'static trace::Tracer {
    trace::tracer()
}
