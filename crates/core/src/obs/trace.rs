//! Lightweight span/event tracing with a ring-buffer recorder.
//!
//! A *span* brackets a region of work: `let _s = span!("inner_step",
//! env = m);` opens it and the guard's drop closes it, recording one
//! [`TraceEvent`] carrying the span's duration, the recording thread's
//! ordinal, and its nesting depth on that thread. An *event* is an
//! instant point (`event!("mrq_hit", env = m)`). Both are no-ops —
//! the macro bodies constant-fold away — unless the `obs` cargo
//! feature is on.
//!
//! Events land in a bounded in-memory ring (the flight recorder, newest
//! ~64k events) and are fanned out to any attached [`TraceSink`]s:
//! a JSON-lines file writer, a stderr pretty-printer, or a no-op.
//! Durations and thread ordinals are observability data only — nothing
//! in the traced code paths reads them back, which is what keeps
//! tracing deterministic-safe.

use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default ring capacity (events).
pub const RING_CAPACITY: usize = 65_536;

/// What a trace record marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum EventKind {
    /// A completed span (duration in `dur_ns`).
    Span,
    /// An instant event (`dur_ns` = 0).
    Event,
}

/// One recorded span or event.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct TraceEvent {
    /// Global record sequence number (assignment order, not span-open
    /// order — spans are recorded when they *close*).
    pub seq: u64,
    /// Ordinal of the recording thread (0, 1, 2… in first-record order).
    pub thread: u64,
    /// Span nesting depth on the recording thread when this record was
    /// made (a span's own depth, i.e. 0 for a top-level span).
    pub depth: u32,
    /// Span or instant event.
    pub kind: EventKind,
    /// The site name passed to `span!`/`event!`.
    pub name: String,
    /// The `key = value` fields, rendered to strings.
    pub fields: Vec<(String, String)>,
    /// Span duration in nanoseconds (0 for instant events).
    pub dur_ns: u64,
}

/// Receives every recorded event. Implementations must tolerate being
/// called from any thread.
pub trait TraceSink: Send + Sync {
    /// Called once per recorded event.
    fn on_event(&self, event: &TraceEvent);
    /// Flush buffered output (called when the sink is detached).
    fn flush(&self) {}
}

/// Discards everything. Attaching it exercises the fan-out path with
/// zero observable effect — used by the determinism tests.
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn on_event(&self, _event: &TraceEvent) {}
}

/// Writes each event as one JSON object per line.
pub struct JsonLinesSink {
    w: Mutex<std::io::BufWriter<std::fs::File>>,
}

impl JsonLinesSink {
    /// Create (truncate) `path` and write JSON lines to it.
    ///
    /// # Errors
    ///
    /// Propagates the file-creation error.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(JsonLinesSink {
            w: Mutex::new(std::io::BufWriter::new(file)),
        })
    }
}

impl TraceSink for JsonLinesSink {
    fn on_event(&self, event: &TraceEvent) {
        let line = serde_json::to_string(event).unwrap_or_default();
        let mut w = self
            .w
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let _ = writeln!(w, "{line}");
    }

    fn flush(&self) {
        let mut w = self
            .w
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let _ = w.flush();
    }
}

/// Pretty-prints events to stderr, indented by nesting depth.
pub struct StderrPrettySink;

impl TraceSink for StderrPrettySink {
    fn on_event(&self, event: &TraceEvent) {
        let indent = "  ".repeat(event.depth as usize);
        let fields: Vec<String> = event
            .fields
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        let fields = if fields.is_empty() {
            String::new()
        } else {
            format!(" [{}]", fields.join(" "))
        };
        match event.kind {
            EventKind::Span => eprintln!(
                "[trace t{} #{:>6}] {indent}{} {:.3}ms{fields}",
                event.thread,
                event.seq,
                event.name,
                event.dur_ns as f64 / 1e6
            ),
            EventKind::Event => eprintln!(
                "[trace t{} #{:>6}] {indent}• {}{fields}",
                event.thread, event.seq, event.name
            ),
        }
    }
}

/// The global trace recorder: sequence counter, bounded ring, sinks.
pub struct Tracer {
    seq: AtomicU64,
    next_thread: AtomicU64,
    next_sink_id: AtomicU64,
    has_sink: AtomicBool,
    ring: Mutex<VecDeque<TraceEvent>>,
    sinks: Mutex<Vec<(u64, Arc<dyn TraceSink>)>>,
}

thread_local! {
    static THREAD_ORD: std::cell::Cell<u64> = const { std::cell::Cell::new(u64::MAX) };
    static DEPTH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

static TRACER: OnceLock<Tracer> = OnceLock::new();

/// The process-global tracer.
pub fn tracer() -> &'static Tracer {
    TRACER.get_or_init(|| Tracer {
        seq: AtomicU64::new(0),
        next_thread: AtomicU64::new(0),
        next_sink_id: AtomicU64::new(0),
        has_sink: AtomicBool::new(false),
        ring: Mutex::new(VecDeque::with_capacity(1024)),
        sinks: Mutex::new(Vec::new()),
    })
}

impl Tracer {
    fn thread_ordinal(&self) -> u64 {
        THREAD_ORD.with(|c| {
            let v = c.get();
            if v != u64::MAX {
                return v;
            }
            let v = self.next_thread.fetch_add(1, Ordering::Relaxed);
            c.set(v);
            v
        })
    }

    fn record(
        &self,
        kind: EventKind,
        name: &str,
        fields: Vec<(String, String)>,
        dur_ns: u64,
        depth: u32,
    ) {
        let event = TraceEvent {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            thread: self.thread_ordinal(),
            depth,
            kind,
            name: name.to_string(),
            fields,
            dur_ns,
        };
        {
            let mut ring = self
                .ring
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if ring.len() == RING_CAPACITY {
                ring.pop_front();
            }
            ring.push_back(event.clone());
        }
        if self.has_sink.load(Ordering::Relaxed) {
            let sinks = self
                .sinks
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for (_, sink) in sinks.iter() {
                sink.on_event(&event);
            }
        }
    }

    /// Attach a sink; returns an id for [`remove_sink`](Self::remove_sink).
    pub fn add_sink(&self, sink: Arc<dyn TraceSink>) -> u64 {
        let id = self.next_sink_id.fetch_add(1, Ordering::Relaxed);
        let mut sinks = self
            .sinks
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        sinks.push((id, sink));
        self.has_sink.store(true, Ordering::Relaxed);
        id
    }

    /// Detach a sink (flushing it first). Unknown ids are ignored.
    pub fn remove_sink(&self, id: u64) {
        let mut sinks = self
            .sinks
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(pos) = sinks.iter().position(|(i, _)| *i == id) {
            let (_, sink) = sinks.remove(pos);
            sink.flush();
        }
        self.has_sink.store(!sinks.is_empty(), Ordering::Relaxed);
    }

    /// Copy of the ring's current contents, oldest first.
    pub fn ring_snapshot(&self) -> Vec<TraceEvent> {
        self.ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }

    /// Drop all buffered events (sinks stay attached).
    pub fn clear_ring(&self) {
        self.ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
    }
}

/// Open guard returned by [`span!`](crate::span). Records the span on drop.
pub struct SpanGuard {
    name: &'static str,
    fields: Vec<(String, String)>,
    start: Instant,
    depth: u32,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let dur_ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        DEPTH.with(|d| d.set(self.depth));
        tracer().record(
            EventKind::Span,
            self.name,
            std::mem::take(&mut self.fields),
            dur_ns,
            self.depth,
        );
    }
}

/// Open a span (called by the `span!` macro; prefer the macro).
pub fn span_guard(name: &'static str, fields: Vec<(String, String)>) -> SpanGuard {
    let depth = DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v
    });
    SpanGuard {
        name,
        fields,
        start: Instant::now(),
        depth,
    }
}

/// Record an instant event (called by the `event!` macro).
pub fn instant_event(name: &str, fields: Vec<(String, String)>) {
    let depth = DEPTH.with(std::cell::Cell::get);
    tracer().record(EventKind::Event, name, fields, 0, depth);
}

/// Open a span bracketing the enclosing scope. Bind the guard:
/// `let _span = span!("inner_step", env = m);` — dropping it records
/// the span. Compiles to nothing when the `obs` feature is off (the
/// guard is `Option<SpanGuard>` and the fields are never rendered).
#[macro_export]
macro_rules! span {
    ($name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::obs::enabled() {
            Some($crate::obs::trace::span_guard(
                $name,
                vec![$((stringify!($k).to_string(), format!("{}", $v))),*],
            ))
        } else {
            None
        }
    };
}

/// Record an instant trace event. Compiles to nothing when the `obs`
/// feature is off.
#[macro_export]
macro_rules! event {
    ($name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::obs::enabled() {
            $crate::obs::trace::instant_event(
                $name,
                vec![$((stringify!($k).to_string(), format!("{}", $v))),*],
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // The tracer is process-global and the test harness runs tests in
    // parallel, so these tests filter for their own (unique) span names
    // instead of assuming exclusive ownership of the ring/sinks.

    #[test]
    fn spans_nest_and_record_depth() {
        let t = tracer();
        {
            let _outer = span_guard("trace_test_outer", vec![]);
            {
                let _inner = span_guard("trace_test_inner", vec![("env".into(), "3".into())]);
            }
        }
        instant_event("trace_test_tick", vec![]);
        let ring = t.ring_snapshot();
        let mine: Vec<&TraceEvent> = ring
            .iter()
            .filter(|e| e.name.starts_with("trace_test_"))
            .collect();
        let names: Vec<&str> = mine.iter().map(|e| e.name.as_str()).collect();
        // Spans record at close: inner first, then outer, then the event.
        assert_eq!(
            names,
            ["trace_test_inner", "trace_test_outer", "trace_test_tick"]
        );
        assert_eq!(mine[0].depth, 1);
        assert_eq!(mine[0].kind, EventKind::Span);
        assert_eq!(mine[0].fields, [("env".to_string(), "3".to_string())]);
        assert_eq!(mine[1].depth, 0);
        assert_eq!(mine[2].kind, EventKind::Event);
        assert!(mine[0].seq < mine[1].seq && mine[1].seq < mine[2].seq);
        assert_eq!(mine[0].thread, mine[1].thread);
    }

    #[test]
    fn sinks_receive_events_and_detach() {
        struct CountSink(AtomicU64);
        impl TraceSink for CountSink {
            fn on_event(&self, e: &TraceEvent) {
                if e.name.starts_with("sink_test_") {
                    self.0.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let sink = Arc::new(CountSink(AtomicU64::new(0)));
        let t = tracer();
        let id = t.add_sink(sink.clone());
        instant_event("sink_test_a", vec![]);
        instant_event("sink_test_b", vec![]);
        t.remove_sink(id);
        instant_event("sink_test_c", vec![]);
        assert_eq!(sink.0.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn trace_event_serializes_to_json() {
        let ev = TraceEvent {
            seq: 7,
            thread: 1,
            depth: 2,
            kind: EventKind::Span,
            name: "inner_step".into(),
            fields: vec![("env".into(), "0".into())],
            dur_ns: 1234,
        };
        let json = serde_json::to_string(&ev).unwrap();
        assert!(json.contains("\"inner_step\""), "{json}");
        assert!(json.contains("1234"), "{json}");
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["seq"], 7u64);
    }
}
