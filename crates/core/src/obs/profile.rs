//! Span profiler: aggregate the trace ring into per-site profiles.
//!
//! The flight recorder ([`crate::obs::trace`]) keeps the newest ~64k
//! spans/events. This module folds that ring into actionable hot-path
//! attribution: per-site call counts, total and self wall time, p50/p99
//! from [`crate::timing::Histogram`], parent→child call edges, and
//! flamegraph-collapsed stack lines (`a;b;c <self_us>`, one per stack
//! path) that feed straight into `inferno`/`flamegraph.pl`/speedscope.
//!
//! Reconstruction exploits how spans record: a span is recorded when it
//! *closes*, carrying its own depth on the recording thread, and
//! children close before their parent. So, scanning one thread's records
//! in sequence order, a closing span at depth `d` is the parent of every
//! not-yet-adopted closed span at depth `d + 1` seen so far — no span
//! ids needed. Spans whose parents never closed inside the ring window
//! (truncation, still-open spans) are kept as roots.

use super::trace::{EventKind, TraceEvent};
use crate::timing::Histogram;
use serde::Serialize;
use std::collections::BTreeMap;

/// Aggregated statistics for one `span!` site (by name).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SiteProfile {
    /// The span name.
    pub name: String,
    /// Number of recorded (closed) spans.
    pub count: u64,
    /// Total wall time across all closures, nanoseconds.
    pub total_ns: u64,
    /// Wall time not attributed to child spans, nanoseconds.
    pub self_ns: u64,
    /// Median span duration (power-of-two bucket resolution).
    pub p50_ns: u64,
    /// 99th-percentile span duration.
    pub p99_ns: u64,
    /// Longest single span.
    pub max_ns: u64,
}

/// One aggregated parent→child call edge.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ProfileEdge {
    /// Parent site name.
    pub parent: String,
    /// Child site name.
    pub child: String,
    /// Number of child closures under this parent.
    pub count: u64,
    /// Total child wall time under this parent, nanoseconds.
    pub total_ns: u64,
}

/// One collapsed stack path (for flamegraphs).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StackPath {
    /// `;`-joined site names, root first.
    pub path: String,
    /// Self time accumulated on this exact path, microseconds.
    pub self_us: u64,
}

/// The aggregated profile of a span ring.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Profile {
    /// Number of span records aggregated.
    pub spans: u64,
    /// Per-site statistics, sorted by name.
    pub sites: Vec<SiteProfile>,
    /// Parent→child edges, sorted by (parent, child).
    pub edges: Vec<ProfileEdge>,
    /// Collapsed stack paths, sorted by path.
    pub paths: Vec<StackPath>,
    /// Instant-event counts by name, sorted.
    pub events: Vec<(String, u64)>,
}

/// One reconstructed span occurrence in the call forest.
struct Node {
    name: String,
    dur_ns: u64,
    children: Vec<usize>,
}

#[derive(Default)]
struct SiteAcc {
    count: u64,
    total_ns: u64,
    child_ns: u64,
    max_ns: u64,
    hist: Histogram,
}

impl Profile {
    /// Aggregate a slice of trace records (e.g. a
    /// [`ring_snapshot`](crate::obs::trace::Tracer::ring_snapshot)),
    /// assumed ordered by `seq` as the ring provides.
    pub fn build(records: &[TraceEvent]) -> Profile {
        let mut nodes: Vec<Node> = Vec::new();
        // Per-thread completed subtree roots awaiting a parent:
        // (depth, node index), in record order.
        let mut pending: BTreeMap<u64, Vec<(u32, usize)>> = BTreeMap::new();
        let mut event_counts: BTreeMap<String, u64> = BTreeMap::new();

        for ev in records {
            if ev.kind == EventKind::Event {
                *event_counts.entry(ev.name.clone()).or_insert(0) += 1;
                continue;
            }
            let slot = pending.entry(ev.thread).or_default();
            // Adopt every completed subtree one level deeper: children
            // close before their parent, so anything still pending at
            // depth+1 on this thread belongs to this span.
            let mut children = Vec::new();
            slot.retain(|&(d, idx)| {
                if d == ev.depth + 1 {
                    children.push(idx);
                    false
                } else {
                    true
                }
            });
            let idx = nodes.len();
            nodes.push(Node {
                name: ev.name.clone(),
                dur_ns: ev.dur_ns,
                children,
            });
            slot.push((ev.depth, idx));
        }

        // Per-site accumulation.
        let mut sites: BTreeMap<String, SiteAcc> = BTreeMap::new();
        let mut edges: BTreeMap<(String, String), (u64, u64)> = BTreeMap::new();
        for node in &nodes {
            let acc = sites.entry(node.name.clone()).or_default();
            acc.count += 1;
            acc.total_ns += node.dur_ns;
            acc.max_ns = acc.max_ns.max(node.dur_ns);
            acc.hist.record(node.dur_ns);
            for &c in &node.children {
                let child = &nodes[c];
                sites.entry(node.name.clone()).or_default().child_ns += child.dur_ns;
                let e = edges
                    .entry((node.name.clone(), child.name.clone()))
                    .or_insert((0, 0));
                e.0 += 1;
                e.1 += child.dur_ns;
            }
        }

        // Collapsed stacks: depth-first from the leftover roots (any
        // pending entry whose parent never closed is a root).
        let roots: Vec<usize> = pending
            .values()
            .flat_map(|v| v.iter().map(|&(_, idx)| idx))
            .collect();
        let mut paths: BTreeMap<String, u64> = BTreeMap::new();
        let mut stack: Vec<(usize, String)> =
            roots.iter().map(|&r| (r, nodes[r].name.clone())).collect();
        while let Some((idx, path)) = stack.pop() {
            let node = &nodes[idx];
            let child_ns: u64 = node.children.iter().map(|&c| nodes[c].dur_ns).sum();
            let self_ns = node.dur_ns.saturating_sub(child_ns);
            *paths.entry(path.clone()).or_insert(0) += self_ns / 1_000;
            for &c in &node.children {
                stack.push((c, format!("{path};{}", nodes[c].name)));
            }
        }

        Profile {
            spans: nodes.len() as u64,
            sites: sites
                .into_iter()
                .map(|(name, acc)| SiteProfile {
                    name,
                    count: acc.count,
                    total_ns: acc.total_ns,
                    self_ns: acc.total_ns.saturating_sub(acc.child_ns),
                    p50_ns: acc.hist.quantile(0.5),
                    p99_ns: acc.hist.quantile(0.99),
                    max_ns: acc.max_ns,
                })
                .collect(),
            edges: edges
                .into_iter()
                .map(|((parent, child), (count, total_ns))| ProfileEdge {
                    parent,
                    child,
                    count,
                    total_ns,
                })
                .collect(),
            paths: paths
                .into_iter()
                .map(|(path, self_us)| StackPath { path, self_us })
                .collect(),
            events: event_counts.into_iter().collect(),
        }
    }

    /// Aggregate the global tracer's current ring.
    pub fn from_ring() -> Profile {
        Profile::build(&super::tracer().ring_snapshot())
    }

    /// Flamegraph-collapsed text: one `path self_us` line per stack
    /// path, sorted — the input format of `flamegraph.pl --collapsed`
    /// and speedscope.
    pub fn to_collapsed(&self) -> String {
        let mut out = String::new();
        for p in &self.paths {
            out.push_str(&p.path);
            out.push(' ');
            out.push_str(&p.self_us.to_string());
            out.push('\n');
        }
        out
    }

    /// Pretty-printed JSON of the whole profile.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_default()
    }

    /// Write the profile to `path`: JSON when the extension is `.json`,
    /// flamegraph-collapsed text otherwise (the same convention as
    /// [`super::export::write_snapshot`]).
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        let text = if path.extension().is_some_and(|e| e == "json") {
            self.to_json()
        } else {
            self.to_collapsed()
        };
        std::fs::write(path, text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(seq: u64, thread: u64, depth: u32, name: &str, dur_ns: u64) -> TraceEvent {
        TraceEvent {
            seq,
            thread,
            depth,
            kind: EventKind::Span,
            name: name.to_string(),
            fields: vec![],
            dur_ns,
        }
    }

    fn instant(seq: u64, thread: u64, name: &str) -> TraceEvent {
        TraceEvent {
            seq,
            thread,
            depth: 0,
            kind: EventKind::Event,
            name: name.to_string(),
            fields: vec![],
            dur_ns: 0,
        }
    }

    /// Two `outer` calls, each with one `inner` child, plus an instant.
    fn demo_ring() -> Vec<TraceEvent> {
        vec![
            span(0, 0, 1, "inner", 300),
            span(1, 0, 0, "outer", 1_000),
            instant(2, 0, "tick"),
            span(3, 0, 1, "inner", 500),
            span(4, 0, 0, "outer", 2_000),
        ]
    }

    #[test]
    fn profile_aggregates_sites_and_edges() {
        let p = Profile::build(&demo_ring());
        assert_eq!(p.spans, 4);
        let outer = p.sites.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(outer.count, 2);
        assert_eq!(outer.total_ns, 3_000);
        assert_eq!(outer.self_ns, 3_000 - 800);
        assert_eq!(outer.max_ns, 2_000);
        let inner = p.sites.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(inner.count, 2);
        assert_eq!(inner.total_ns, 800);
        assert_eq!(inner.self_ns, 800, "leaf spans keep all their time");
        assert_eq!(p.edges.len(), 1);
        assert_eq!(p.edges[0].parent, "outer");
        assert_eq!(p.edges[0].child, "inner");
        assert_eq!(p.edges[0].count, 2);
        assert_eq!(p.edges[0].total_ns, 800);
        assert_eq!(p.events, vec![("tick".to_string(), 1)]);
    }

    #[test]
    fn site_totals_reconcile_with_ring_durations() {
        let ring = demo_ring();
        let p = Profile::build(&ring);
        for site in &p.sites {
            let expect: u64 = ring
                .iter()
                .filter(|e| e.kind == EventKind::Span && e.name == site.name)
                .map(|e| e.dur_ns)
                .sum();
            assert_eq!(site.total_ns, expect, "site {}", site.name);
        }
        // All wall time is attributed exactly once as self time.
        let total_self: u64 = p.sites.iter().map(|s| s.self_ns).sum();
        let total_root: u64 = ring
            .iter()
            .filter(|e| e.kind == EventKind::Span && e.depth == 0)
            .map(|e| e.dur_ns)
            .sum();
        assert_eq!(total_self, total_root);
    }

    #[test]
    fn threads_are_reconstructed_independently() {
        // Identical shapes on two threads, interleaved in seq order.
        let ring = vec![
            span(0, 0, 1, "inner", 100_000),
            span(1, 1, 1, "inner", 200_000),
            span(2, 1, 0, "outer", 1_000_000),
            span(3, 0, 0, "outer", 1_000_000),
        ];
        let p = Profile::build(&ring);
        let edge = &p.edges[0];
        assert_eq!((edge.count, edge.total_ns), (2, 300_000));
        // One shared path per site, both threads' self time folded in.
        assert_eq!(p.paths.len(), 2);
        let outer_path = p.paths.iter().find(|s| s.path == "outer").unwrap();
        assert_eq!(outer_path.self_us, 900 + 800);
    }

    #[test]
    fn orphans_survive_ring_truncation_as_roots() {
        // The parent's close fell off the ring: the child is a root.
        let ring = vec![span(0, 0, 3, "deep", 400)];
        let p = Profile::build(&ring);
        assert_eq!(p.paths.len(), 1);
        assert_eq!(p.paths[0].path, "deep");
        assert_eq!(p.sites[0].self_ns, 400);
    }

    #[test]
    fn collapsed_output_parses_as_path_space_integer() {
        let p = Profile::build(&demo_ring());
        let text = p.to_collapsed();
        assert!(!text.is_empty());
        for line in text.lines() {
            let (path, n) = line.rsplit_once(' ').expect("space separator");
            assert!(!path.is_empty() && !path.contains(' '), "path {path:?}");
            let _: u64 = n.parse().expect("integer self_us");
            for frame in path.split(';') {
                assert!(!frame.is_empty(), "empty frame in {path:?}");
            }
        }
        // The nested path is present with ';' separators.
        assert!(
            text.lines().any(|l| l.starts_with("outer;inner ")),
            "{text}"
        );
    }

    #[test]
    fn profile_json_is_well_formed() {
        let p = Profile::build(&demo_ring());
        let v: serde_json::Value = serde_json::from_str(&p.to_json()).unwrap();
        assert_eq!(v["spans"], 4u64);
        assert!(v["sites"].as_array().is_some_and(|s| s.len() == 2));
        assert!(v["edges"].as_array().is_some_and(|e| e.len() == 1));
    }
}
