//! Snapshot exporters: Prometheus text exposition + JSON.
//!
//! The Prometheus renderer follows the text exposition format:
//! a `# TYPE` line per metric family, then one sample line per series
//! (`name{labels} value`). Histograms render as cumulative
//! `_bucket{le="..."}` series over the power-of-two bucket upper bounds
//! (`le` is inclusive, so bucket `b`'s bound is `2^b − 1`), a final
//! `le="+Inf"`, plus `_sum` and `_count`. Snapshots are sorted, so the
//! rendered text is deterministic for a given snapshot.

use super::metrics::{HistogramSnapshot, MetricEntry, MetricValue, MetricsSnapshot};
use std::fmt::Write as _;

/// Escape a label value per the exposition format.
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Render `{k1="v1",k2="v2"}` (empty string when no labels).
fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Format a gauge value the way Prometheus expects.
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

fn render_histogram(out: &mut String, entry: &MetricEntry, h: &HistogramSnapshot) {
    let name = &entry.key.name;
    let labels = &entry.key.labels;
    let mut cumulative = 0u64;
    let highest = h.buckets.iter().rposition(|&n| n > 0).unwrap_or(0);
    for (b, &n) in h.buckets.iter().enumerate().take(highest + 1) {
        cumulative += n;
        let le = match b {
            0 => "0".to_string(),
            64 => fmt_f64(u64::MAX as f64),
            _ => format!("{}", (1u64 << b) - 1),
        };
        let lb = label_block(labels, Some(("le", &le)));
        let _ = writeln!(out, "{name}_bucket{lb} {cumulative}");
    }
    let lb = label_block(labels, Some(("le", "+Inf")));
    let _ = writeln!(out, "{name}_bucket{lb} {}", h.count);
    let lb = label_block(labels, None);
    let _ = writeln!(out, "{name}_sum{lb} {}", h.sum);
    let _ = writeln!(out, "{name}_count{lb} {}", h.count);
}

/// Render a snapshot in the Prometheus text exposition format.
pub fn to_prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last_name: Option<&str> = None;
    for entry in &snap.metrics {
        let name = entry.key.name.as_str();
        if last_name != Some(name) {
            let kind = match &entry.value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "histogram",
            };
            let _ = writeln!(out, "# TYPE {name} {kind}");
            last_name = Some(name);
        }
        match &entry.value {
            MetricValue::Counter(v) => {
                let lb = label_block(&entry.key.labels, None);
                let _ = writeln!(out, "{name}{lb} {v}");
            }
            MetricValue::Gauge(v) => {
                let lb = label_block(&entry.key.labels, None);
                let _ = writeln!(out, "{name}{lb} {}", fmt_f64(*v));
            }
            MetricValue::Histogram(h) => render_histogram(&mut out, entry, h),
        }
    }
    out
}

/// Render a snapshot as pretty-printed JSON.
pub fn to_json(snap: &MetricsSnapshot) -> String {
    serde_json::to_string_pretty(snap).unwrap_or_default()
}

/// Write a snapshot to `path`: JSON when the extension is `.json`,
/// Prometheus text otherwise.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_snapshot(path: &std::path::Path, snap: &MetricsSnapshot) -> std::io::Result<()> {
    let text = if path.extension().is_some_and(|e| e == "json") {
        to_json(snap)
    } else {
        to_prometheus_text(snap)
    };
    std::fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::metrics::MetricsRegistry;

    #[test]
    fn prometheus_text_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("requests_total", &[("env", "a")]).add(3);
        reg.gauge("sigma", &[]).set(0.25);
        let h = reg.histogram("latency_ns", &[]);
        h.record(0);
        h.record(5);
        h.record(1000);
        let text = to_prometheus_text(&reg.snapshot());
        assert!(text.contains("# TYPE requests_total counter"), "{text}");
        assert!(text.contains("requests_total{env=\"a\"} 3"), "{text}");
        assert!(text.contains("# TYPE sigma gauge"), "{text}");
        assert!(text.contains("sigma 0.25"), "{text}");
        assert!(text.contains("# TYPE latency_ns histogram"), "{text}");
        // Cumulative buckets: le="0" sees the zero, le="7" adds the 5,
        // le="1023" adds the 1000; +Inf equals the total count.
        assert!(text.contains("latency_ns_bucket{le=\"0\"} 1"), "{text}");
        assert!(text.contains("latency_ns_bucket{le=\"7\"} 2"), "{text}");
        assert!(text.contains("latency_ns_bucket{le=\"1023\"} 3"), "{text}");
        assert!(text.contains("latency_ns_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("latency_ns_sum 1005"), "{text}");
        assert!(text.contains("latency_ns_count 3"), "{text}");
    }

    #[test]
    fn type_line_emitted_once_per_family() {
        let reg = MetricsRegistry::new();
        reg.counter("x_total", &[("env", "0")]).inc();
        reg.counter("x_total", &[("env", "1")]).inc();
        let text = to_prometheus_text(&reg.snapshot());
        assert_eq!(text.matches("# TYPE x_total counter").count(), 1, "{text}");
        assert_eq!(text.matches("x_total{env=").count(), 2, "{text}");
    }

    #[test]
    fn json_roundtrips_counter_values() {
        let reg = MetricsRegistry::new();
        reg.counter("c_total", &[("k", "v")]).add(7);
        let json = to_json(&reg.snapshot());
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let metrics = v["metrics"].as_array().unwrap();
        assert_eq!(metrics.len(), 1);
        assert_eq!(metrics[0]["name"], "c_total");
        assert_eq!(metrics[0]["labels"]["k"], "v");
        assert_eq!(metrics[0]["type"], "counter");
        assert_eq!(metrics[0]["value"], 7u64);
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = MetricsRegistry::new();
        reg.counter("c", &[("p", "a\"b\\c")]).inc();
        let text = to_prometheus_text(&reg.snapshot());
        assert!(text.contains(r#"c{p="a\"b\\c"} 1"#), "{text}");
    }
}
