//! Lock-sharded metrics registry with static handles.
//!
//! The registry is a name → metric map split across 16 shards, each
//! behind its own mutex; the shard is picked by an FNV-1a hash of the
//! metric *name* so lookups for different metrics rarely contend.
//! Lookups are not the hot path anyway: call sites resolve a
//! [`Counter`]/[`Gauge`]/[`HistogramHandle`] **once** (at trainer or
//! engine construction) and then record through the handle — an atomic
//! add for counters/gauges, an uncontended mutex around a fixed-size
//! [`Histogram`] for distributions. Handles stay live after a
//! [`MetricsRegistry::reset`]; they just no longer appear in snapshots.
//!
//! Snapshots ([`MetricsSnapshot`]) are plain data, sorted by
//! `(name, labels)` so their rendered form is deterministic, and they
//! merge with the same semantics as live metrics: counters add,
//! histograms bucket-merge, gauges take the incoming value. The
//! `snapshot ∘ merge = merge ∘ snapshot` equivalence is property-tested.

use crate::timing::Histogram;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

const SHARDS: usize = 16;

/// FNV-1a over the metric name; picks the shard.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A metric's identity: name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name (Prometheus-compatible: `[a-zA-Z_][a-zA-Z0-9_]*`).
    pub name: String,
    /// Label pairs, sorted by label name.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Build a key; labels are sorted so `[("a","1"),("b","2")]` and
    /// `[("b","2"),("a","1")]` identify the same metric.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }
}

impl serde::Serialize for MetricKey {
    fn to_value(&self) -> serde::value::Value {
        use serde::value::{Map, Value};
        let mut labels = Map::new();
        for (k, v) in &self.labels {
            labels.insert(k.clone(), Value::String(v.clone()));
        }
        let mut m = Map::new();
        m.insert("name".into(), Value::String(self.name.clone()));
        m.insert("labels".into(), Value::Object(labels));
        Value::Object(m)
    }
}

/// Monotonically increasing counter. Cloning shares the underlying cell.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A detached counter (not registered anywhere); useful in tests.
    pub fn detached() -> Self {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-value gauge holding an `f64`. Cloning shares the cell.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A detached gauge (not registered anywhere).
    pub fn detached() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Handle to a registered [`Histogram`]. Cloning shares the histogram.
#[derive(Debug, Clone)]
pub struct HistogramHandle(Arc<Mutex<Histogram>>);

impl HistogramHandle {
    /// A detached histogram handle (not registered anywhere).
    pub fn detached() -> Self {
        HistogramHandle(Arc::new(Mutex::new(Histogram::new())))
    }

    fn lock(&self) -> MutexGuard<'_, Histogram> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.lock().record(value);
    }

    /// Record a duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.lock().record_duration(d);
    }

    /// Copy of the current histogram state.
    pub fn read(&self) -> Histogram {
        self.lock().clone()
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(HistogramHandle),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }

    fn value(&self) -> MetricValue {
        match self {
            Metric::Counter(c) => MetricValue::Counter(c.get()),
            Metric::Gauge(g) => MetricValue::Gauge(g.get()),
            Metric::Histogram(h) => {
                MetricValue::Histogram(HistogramSnapshot::from_histogram(&h.read()))
            }
        }
    }
}

/// Exported state of one histogram: the 65 power-of-two bucket counts
/// plus the exact running sum and the observed min/max.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (65 entries; bucket `b` covers `[2^(b−1), 2^b)`,
    /// bucket 0 holds exactly zero).
    pub buckets: Vec<u64>,
    /// Total observations (= sum of `buckets`).
    pub count: u64,
    /// Saturating sum of observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Snapshot a live histogram.
    pub fn from_histogram(h: &Histogram) -> Self {
        HistogramSnapshot {
            buckets: h.bucket_counts().to_vec(),
            count: h.count(),
            sum: h.sum(),
            min: h.min(),
            max: h.max(),
        }
    }

    /// Rebuild a live [`Histogram`] carrying the same observations.
    pub fn to_histogram(&self) -> Histogram {
        let mut buckets = [0u64; 65];
        for (dst, src) in buckets.iter_mut().zip(&self.buckets) {
            *dst = *src;
        }
        Histogram::from_parts(buckets, self.sum, self.min, self.max)
    }

    /// Merge another snapshot's observations into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        let mut h = self.to_histogram();
        h.merge(&other.to_histogram());
        *self = HistogramSnapshot::from_histogram(&h);
    }

    /// Quantile of the recorded distribution (bucket-upper-bound
    /// resolution, clamped to min/max, like [`Histogram::quantile`]).
    pub fn quantile(&self, q: f64) -> u64 {
        self.to_histogram().quantile(q)
    }

    /// Mean of the recorded values.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// One metric's exported value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic counter reading.
    Counter(u64),
    /// Last-set gauge reading.
    Gauge(f64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

impl MetricValue {
    fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }

    /// Counter reading, if this is a counter.
    pub fn as_counter(&self) -> Option<u64> {
        match self {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Gauge reading, if this is a gauge.
    pub fn as_gauge(&self) -> Option<f64> {
        match self {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// Histogram state, if this is a histogram.
    pub fn as_histogram(&self) -> Option<&HistogramSnapshot> {
        match self {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }
}

impl serde::Serialize for MetricValue {
    fn to_value(&self) -> serde::value::Value {
        use serde::value::{Map, Value};
        let mut m = Map::new();
        m.insert("type".into(), Value::String(self.kind().to_string()));
        match self {
            MetricValue::Counter(v) => {
                m.insert("value".into(), Value::UInt(*v));
            }
            MetricValue::Gauge(v) => {
                m.insert("value".into(), Value::Float(*v));
            }
            MetricValue::Histogram(h) => {
                m.insert(
                    "buckets".into(),
                    Value::Array(h.buckets.iter().map(|&b| Value::UInt(b)).collect()),
                );
                m.insert("count".into(), Value::UInt(h.count));
                m.insert("sum".into(), Value::UInt(h.sum));
                m.insert("min".into(), Value::UInt(h.min));
                m.insert("max".into(), Value::UInt(h.max));
            }
        }
        Value::Object(m)
    }
}

/// One `(key, value)` pair in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricEntry {
    /// The metric's identity.
    pub key: MetricKey,
    /// Its value at snapshot time.
    pub value: MetricValue,
}

impl serde::Serialize for MetricEntry {
    fn to_value(&self) -> serde::value::Value {
        use serde::value::{Map, Value};
        let key = self.key.to_value();
        let val = self.value.to_value();
        let mut m = Map::new();
        if let (Value::Object(k), Value::Object(v)) = (key, val) {
            for (kk, vv) in k.iter() {
                m.insert(kk.clone(), vv.clone());
            }
            for (kk, vv) in v.iter() {
                m.insert(kk.clone(), vv.clone());
            }
        }
        Value::Object(m)
    }
}

/// A point-in-time copy of every registered metric, sorted by
/// `(name, labels)` so exports are deterministic.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize)]
pub struct MetricsSnapshot {
    /// The metrics, sorted by key.
    pub metrics: Vec<MetricEntry>,
}

impl MetricsSnapshot {
    /// Look up a metric by name and labels.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricValue> {
        let key = MetricKey::new(name, labels);
        self.metrics
            .binary_search_by(|e| e.key.cmp(&key))
            .ok()
            .map(|i| &self.metrics[i].value)
    }

    /// All entries sharing `name` (any labels), in label order.
    pub fn get_all(&self, name: &str) -> Vec<&MetricEntry> {
        self.metrics.iter().filter(|e| e.key.name == name).collect()
    }

    /// Merge another snapshot: counters add, histograms bucket-merge,
    /// gauges take `other`'s value; keys only in `other` are inserted.
    ///
    /// # Panics
    ///
    /// When the same key carries different metric kinds in the two
    /// snapshots — that is a naming bug, not a runtime condition.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for entry in &other.metrics {
            match self.metrics.binary_search_by(|e| e.key.cmp(&entry.key)) {
                Ok(i) => {
                    let mine = &mut self.metrics[i].value;
                    match (mine, &entry.value) {
                        (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += *b,
                        (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a = *b,
                        (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
                        (mine, theirs) => panic!(
                            "metric {:?} kind mismatch: {} vs {}",
                            entry.key,
                            mine.kind(),
                            theirs.kind()
                        ),
                    }
                }
                Err(i) => self.metrics.insert(i, entry.clone()),
            }
        }
    }
}

/// The lock-sharded registry. See the module docs for the design.
pub struct MetricsRegistry {
    shards: [Mutex<BTreeMap<MetricKey, Metric>>; SHARDS],
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry {
            shards: std::array::from_fn(|_| Mutex::new(BTreeMap::new())),
        }
    }

    fn shard(&self, name: &str) -> MutexGuard<'_, BTreeMap<MetricKey, Metric>> {
        let idx = (fnv1a(name) % SHARDS as u64) as usize;
        self.shards[idx]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Resolve (or register) a counter. Cache the handle; don't call
    /// this on a hot path.
    ///
    /// # Panics
    ///
    /// When the key is already registered with a different kind.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = MetricKey::new(name, labels);
        let mut shard = self.shard(name);
        let metric = shard
            .entry(key.clone())
            .or_insert_with(|| Metric::Counter(Counter::detached()));
        match metric {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric {key:?} already registered as {}", other.kind()),
        }
    }

    /// Resolve (or register) a gauge.
    ///
    /// # Panics
    ///
    /// When the key is already registered with a different kind.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = MetricKey::new(name, labels);
        let mut shard = self.shard(name);
        let metric = shard
            .entry(key.clone())
            .or_insert_with(|| Metric::Gauge(Gauge::detached()));
        match metric {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric {key:?} already registered as {}", other.kind()),
        }
    }

    /// Resolve (or register) a histogram.
    ///
    /// # Panics
    ///
    /// When the key is already registered with a different kind.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> HistogramHandle {
        let key = MetricKey::new(name, labels);
        let mut shard = self.shard(name);
        let metric = shard
            .entry(key.clone())
            .or_insert_with(|| Metric::Histogram(HistogramHandle::detached()));
        match metric {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric {key:?} already registered as {}", other.kind()),
        }
    }

    /// Snapshot every registered metric, sorted by key.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut metrics = Vec::new();
        for shard in &self.shards {
            let shard = shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for (key, metric) in shard.iter() {
                metrics.push(MetricEntry {
                    key: key.clone(),
                    value: metric.value(),
                });
            }
        }
        metrics.sort_by(|a, b| a.key.cmp(&b.key));
        MetricsSnapshot { metrics }
    }

    /// Fold a snapshot into the live metrics (counters add, histograms
    /// merge, gauges set) — registering any keys not yet present. Dual
    /// of [`MetricsSnapshot::merge`]: `snapshot ∘ merge = merge ∘
    /// snapshot`, which the proptests pin.
    ///
    /// # Panics
    ///
    /// When a key is live with a different kind than the snapshot's.
    pub fn merge_snapshot(&self, snap: &MetricsSnapshot) {
        for entry in &snap.metrics {
            match &entry.value {
                MetricValue::Counter(v) => {
                    self.counter_keyed(&entry.key).add(*v);
                }
                MetricValue::Gauge(v) => {
                    self.gauge_keyed(&entry.key).set(*v);
                }
                MetricValue::Histogram(h) => {
                    let handle = self.histogram_keyed(&entry.key);
                    let mut guard = handle.lock();
                    guard.merge(&h.to_histogram());
                }
            }
        }
    }

    fn counter_keyed(&self, key: &MetricKey) -> Counter {
        let mut shard = self.shard(&key.name);
        match shard
            .entry(key.clone())
            .or_insert_with(|| Metric::Counter(Counter::detached()))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric {key:?} already registered as {}", other.kind()),
        }
    }

    fn gauge_keyed(&self, key: &MetricKey) -> Gauge {
        let mut shard = self.shard(&key.name);
        match shard
            .entry(key.clone())
            .or_insert_with(|| Metric::Gauge(Gauge::detached()))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric {key:?} already registered as {}", other.kind()),
        }
    }

    fn histogram_keyed(&self, key: &MetricKey) -> HistogramHandle {
        let mut shard = self.shard(&key.name);
        match shard
            .entry(key.clone())
            .or_insert_with(|| Metric::Histogram(HistogramHandle::detached()))
        {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric {key:?} already registered as {}", other.kind()),
        }
    }

    /// Drop every registered metric. Existing handles keep working but
    /// are no longer reachable from snapshots — used by tests and by the
    /// CLI between commands in one process.
    pub fn reset(&self) {
        for shard in &self.shards {
            shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_record_and_snapshot_sorted() {
        let reg = MetricsRegistry::new();
        reg.counter("b_total", &[]).add(3);
        reg.counter("a_total", &[("env", "1")]).inc();
        reg.counter("a_total", &[("env", "0")]).inc();
        reg.gauge("g", &[]).set(2.5);
        reg.histogram("h_ns", &[]).record(100);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.metrics.iter().map(|e| e.key.name.as_str()).collect();
        assert_eq!(names, ["a_total", "a_total", "b_total", "g", "h_ns"]);
        assert_eq!(snap.metrics[0].key.labels, [("env".into(), "0".into())]);
        assert_eq!(
            snap.get("b_total", &[]).and_then(MetricValue::as_counter),
            Some(3)
        );
        assert_eq!(
            snap.get("g", &[]).and_then(MetricValue::as_gauge),
            Some(2.5)
        );
        let h = snap.get("h_ns", &[]).and_then(MetricValue::as_histogram);
        assert_eq!(h.map(|h| h.count), Some(1));
    }

    #[test]
    fn same_key_shares_the_cell() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x", &[("k", "v")]);
        let b = reg.counter("x", &[("k", "v")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
    }

    #[test]
    fn label_order_is_normalized() {
        let reg = MetricsRegistry::new();
        reg.counter("x", &[("b", "2"), ("a", "1")]).inc();
        reg.counter("x", &[("a", "1"), ("b", "2")]).inc();
        assert_eq!(reg.snapshot().metrics.len(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflicts_panic() {
        let reg = MetricsRegistry::new();
        reg.counter("x", &[]).inc();
        let _ = reg.gauge("x", &[]);
    }

    #[test]
    fn snapshot_merge_semantics() {
        let mut a = MetricsSnapshot::default();
        let reg = MetricsRegistry::new();
        reg.counter("c", &[]).add(2);
        reg.gauge("g", &[]).set(1.0);
        reg.histogram("h", &[]).record(8);
        a.merge(&reg.snapshot());
        reg.reset();
        reg.counter("c", &[]).add(5);
        reg.gauge("g", &[]).set(9.0);
        reg.histogram("h", &[]).record(16);
        a.merge(&reg.snapshot());
        assert_eq!(a.get("c", &[]).and_then(MetricValue::as_counter), Some(7));
        assert_eq!(a.get("g", &[]).and_then(MetricValue::as_gauge), Some(9.0));
        let h = a.get("h", &[]).and_then(MetricValue::as_histogram).unwrap();
        assert_eq!((h.count, h.min, h.max), (2, 8, 16));
    }

    #[test]
    fn histogram_snapshot_roundtrips() {
        let mut h = Histogram::new();
        for v in [0, 1, 5, 1000, u64::MAX] {
            h.record(v);
        }
        let snap = HistogramSnapshot::from_histogram(&h);
        let back = snap.to_histogram();
        assert_eq!(back.count(), h.count());
        assert_eq!(back.min(), h.min());
        assert_eq!(back.max(), h.max());
        assert_eq!(back.sum(), h.sum());
        assert_eq!(back.quantile(0.5), h.quantile(0.5));
    }
}
