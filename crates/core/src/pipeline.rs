//! The end-to-end GBDT+LR pipeline of paper Fig. 2.
//!
//! A LightGBM-style ensemble is trained with ERM on the pooled training
//! data (the feature-extraction module, blue box); every tree then maps a
//! raw row to a leaf index, and the concatenated one-hot encodings become
//! the multi-hot input of the LR module (yellow box), which is trained
//! with any of the [`crate::trainers`].

use lightmirm_gbdt::{Gbdt, GbdtConfig, GbdtError, GrowConfig};
use loansim::LoanFrame;

use crate::env::{EnvDataset, EnvError};
use crate::sparse::{MultiHotMatrix, SparseError};
use crate::timing::{Step, StepTimer};

/// Configuration of the feature-extraction module.
#[derive(Debug, Clone)]
pub struct FeatureExtractorConfig {
    /// GBDT hyper-parameters. The pipeline default uses many small trees
    /// (64 × 8 leaves), which factorizes the leaf features and suits the
    /// downstream LR better than few deep trees.
    pub gbdt: GbdtConfig,
}

impl Default for FeatureExtractorConfig {
    fn default() -> Self {
        FeatureExtractorConfig {
            gbdt: GbdtConfig {
                n_trees: 64,
                learning_rate: 0.15,
                max_bins: 64,
                grow: GrowConfig {
                    max_leaves: 8,
                    min_data_in_leaf: 40,
                    lambda_l2: 1.0,
                    min_gain: 1e-6,
                },
                ..Default::default()
            },
        }
    }
}

/// A fitted feature extractor (trained GBDT).
#[derive(Debug, Clone)]
pub struct FeatureExtractor {
    gbdt: Gbdt,
}

impl FeatureExtractor {
    /// Train the GBDT on a frame's raw features with ERM (cross entropy on
    /// the pooled data, as §III-C prescribes).
    ///
    /// # Errors
    ///
    /// Propagates [`GbdtError`] from training.
    pub fn fit(frame: &LoanFrame, config: &FeatureExtractorConfig) -> Result<Self, GbdtError> {
        let gbdt = Gbdt::fit(
            frame.feature_matrix(),
            frame.n_features(),
            &frame.label,
            &config.gbdt,
        )?;
        Ok(FeatureExtractor { gbdt })
    }

    /// The underlying ensemble.
    pub fn gbdt(&self) -> &Gbdt {
        &self.gbdt
    }

    /// Dimension `N` of the multi-hot feature space.
    pub fn n_leaf_features(&self) -> usize {
        self.gbdt.total_leaves()
    }

    /// Transform a frame into the multi-hot design matrix.
    ///
    /// # Errors
    ///
    /// Propagates [`SparseError`] (cannot occur for indices produced by a
    /// consistent ensemble; surfaced for honesty).
    pub fn transform(&self, frame: &LoanFrame) -> Result<MultiHotMatrix, SparseError> {
        let indices = self.gbdt.transform_batch(frame.feature_matrix());
        MultiHotMatrix::new(indices, self.gbdt.n_trees(), self.gbdt.total_leaves())
    }

    /// Transform and assemble an [`EnvDataset`] (provinces as envs), with
    /// the transform charged to the Table-III `TransformFormat` step.
    ///
    /// # Errors
    ///
    /// Propagates transform and assembly errors.
    pub fn to_env_dataset(
        &self,
        frame: &LoanFrame,
        env_names: Vec<String>,
        timer: Option<&mut StepTimer>,
    ) -> Result<EnvDataset, PipelineError> {
        let x = match timer {
            Some(t) => t.time(Step::TransformFormat, || self.transform(frame))?,
            None => self.transform(frame)?,
        };
        let env = EnvDataset::new(x, frame.label.clone(), frame.province.clone(), env_names)?;
        Ok(env)
    }
}

/// Errors from pipeline assembly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// GBDT training failed.
    Gbdt(GbdtError),
    /// Transform produced an invalid matrix.
    Sparse(SparseError),
    /// Environment assembly failed.
    Env(EnvError),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Gbdt(e) => write!(f, "feature extractor: {e}"),
            PipelineError::Sparse(e) => write!(f, "transform: {e}"),
            PipelineError::Env(e) => write!(f, "environment assembly: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<GbdtError> for PipelineError {
    fn from(e: GbdtError) -> Self {
        PipelineError::Gbdt(e)
    }
}

impl From<SparseError> for PipelineError {
    fn from(e: SparseError) -> Self {
        PipelineError::Sparse(e)
    }
}

impl From<EnvError> for PipelineError {
    fn from(e: EnvError) -> Self {
        PipelineError::Env(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loansim::{generate, GeneratorConfig};

    fn small_world() -> LoanFrame {
        generate(&GeneratorConfig::small(3000, 71))
    }

    fn quick_extractor(frame: &LoanFrame) -> FeatureExtractor {
        let mut cfg = FeatureExtractorConfig::default();
        cfg.gbdt.n_trees = 10;
        FeatureExtractor::fit(frame, &cfg).unwrap()
    }

    #[test]
    fn extractor_fits_and_transforms() {
        let frame = small_world();
        let ex = quick_extractor(&frame);
        let x = ex.transform(&frame).unwrap();
        assert_eq!(x.n_rows(), frame.len());
        assert_eq!(x.nnz_per_row(), 10);
        assert_eq!(x.n_cols(), ex.n_leaf_features());
    }

    #[test]
    fn transform_indices_stay_in_per_tree_ranges() {
        let frame = small_world();
        let ex = quick_extractor(&frame);
        let x = ex.transform(&frame).unwrap();
        for r in 0..x.n_rows().min(50) {
            let row = x.row(r);
            // Strictly increasing across trees (disjoint offset ranges).
            for w in row.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn env_dataset_assembles_with_province_names() {
        let frame = small_world();
        let ex = quick_extractor(&frame);
        let names = loansim::ProvinceCatalog::standard().names();
        let data = ex.to_env_dataset(&frame, names, None).unwrap();
        assert_eq!(data.n_rows(), frame.len());
        assert!(data.active_envs().len() > 5);
    }

    #[test]
    fn transform_is_charged_to_the_timer() {
        let frame = small_world();
        let ex = quick_extractor(&frame);
        let names = loansim::ProvinceCatalog::standard().names();
        let mut timer = StepTimer::new();
        let _ = ex.to_env_dataset(&frame, names, Some(&mut timer)).unwrap();
        assert!(timer.total(Step::TransformFormat) > std::time::Duration::ZERO);
    }

    #[test]
    fn gbdt_scores_beat_chance_on_train() {
        let frame = small_world();
        let ex = quick_extractor(&frame);
        let probs = ex.gbdt().predict_proba_batch(frame.feature_matrix());
        let auc = lightmirm_metrics::auc(&probs, &frame.label).unwrap();
        assert!(auc > 0.7, "GBDT train AUC {auc}");
    }
}
