//! Zero-copy scoring-request framing over the vendored `bytes` crate.
//!
//! The wire format the serving front end and the load generator share.
//! A trace (or a network read) lands in one [`Bytes`] allocation;
//! decoding walks it frame by frame, and each [`Frame`]'s payloads —
//! env-id halfwords and feature words — are `Bytes` **slices of that
//! same allocation**, not copies. Typed `Vec<u16>`/`Vec<f32>` buffers
//! materialize only at the moment a request is actually submitted to an
//! engine, so framing costs one pass over the payload regardless of how
//! long the frame sits queued.
//!
//! ## Frame layout (version 1, all integers little-endian)
//!
//! | offset | size | field |
//! |--------|------|-------|
//! | 0      | 4    | magic `LMRQ` |
//! | 4      | 1    | version (1) |
//! | 5      | 1    | priority (0 = Low, 1 = Normal, 2 = High) |
//! | 6      | 2    | route key (tenant/province) |
//! | 8      | 4    | rows |
//! | 12     | 4    | features per row |
//! | 16     | 4    | deadline in ms from submission (0 = none) |
//! | 20     | 2·rows | env ids, u16 each |
//! | …      | 4·rows·features | feature values, f32 each |

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Frame magic: `LMRQ` ("LightMIRM request").
pub const FRAME_MAGIC: [u8; 4] = *b"LMRQ";
/// Current frame version.
pub const FRAME_VERSION: u8 = 1;
/// Fixed header size in bytes.
pub const HEADER_BYTES: usize = 20;

/// Fixed-size frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Shedding class: 0 = Low, 1 = Normal, 2 = High (the serve crate
    /// maps this onto its `Priority`; core stays dependency-free).
    pub priority: u8,
    /// Routing key (tenant or province id) for the shard router.
    pub route_key: u16,
    /// Rows in the payload.
    pub rows: u32,
    /// Feature values per row.
    pub n_features: u32,
    /// Answer-by budget in milliseconds from submission; 0 = none.
    pub deadline_ms: u32,
}

/// Why a frame failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer does not start with [`FRAME_MAGIC`].
    BadMagic([u8; 4]),
    /// Unsupported version byte.
    BadVersion(u8),
    /// The buffer ends before the frame does.
    Truncated {
        /// Bytes the frame needs from the cursor.
        need: usize,
        /// Bytes actually remaining.
        have: usize,
    },
    /// `rows × n_features` overflows the address space — a corrupt or
    /// hostile header.
    PayloadOverflow,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            FrameError::BadVersion(v) => write!(f, "unsupported frame version {v}"),
            FrameError::Truncated { need, have } => {
                write!(f, "truncated frame: need {need} bytes, have {have}")
            }
            FrameError::PayloadOverflow => write!(f, "frame payload size overflows"),
        }
    }
}

impl std::error::Error for FrameError {}

/// One decoded frame. Payload accessors materialize typed vectors; the
/// `*_bytes` accessors expose the shared-allocation slices for callers
/// that relay without touching the values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The fixed header.
    pub header: FrameHeader,
    env_ids: Bytes,
    features: Bytes,
}

impl Frame {
    /// Materialize the env-id payload.
    pub fn env_ids(&self) -> Vec<u16> {
        let mut buf = self.env_ids.clone();
        (0..self.header.rows).map(|_| buf.get_u16_le()).collect()
    }

    /// Materialize the feature payload (row-major).
    pub fn features(&self) -> Vec<f32> {
        let mut buf = self.features.clone();
        let n = self.header.rows as usize * self.header.n_features as usize;
        (0..n).map(|_| buf.get_f32_le()).collect()
    }

    /// The raw env-id bytes (slice of the decoded buffer's allocation).
    pub fn env_id_bytes(&self) -> &Bytes {
        &self.env_ids
    }

    /// The raw feature bytes (slice of the decoded buffer's allocation).
    pub fn feature_bytes(&self) -> &Bytes {
        &self.features
    }
}

/// Append one frame to `buf`.
///
/// # Panics
///
/// Panics when `features.len() != env_ids.len() × n_features` or the
/// row count exceeds `u32` — caller bugs, not wire conditions.
pub fn encode_frame(
    buf: &mut BytesMut,
    priority: u8,
    route_key: u16,
    deadline_ms: u32,
    n_features: u32,
    env_ids: &[u16],
    features: &[f32],
) {
    let rows = u32::try_from(env_ids.len()).expect("row count fits u32");
    assert_eq!(
        features.len(),
        env_ids.len() * n_features as usize,
        "features must be rows × n_features"
    );
    buf.extend_from_slice(&FRAME_MAGIC);
    buf.put_u8(FRAME_VERSION);
    buf.put_u8(priority);
    buf.put_u16_le(route_key);
    buf.put_u32_le(rows);
    buf.put_u32_le(n_features);
    buf.put_u32_le(deadline_ms);
    for &e in env_ids {
        buf.put_u16_le(e);
    }
    for &x in features {
        buf.put_u32_le(x.to_bits());
    }
}

/// Decode one frame from the cursor, advancing past it. The returned
/// payloads are slices sharing `buf`'s allocation.
///
/// # Errors
///
/// See [`FrameError`]; on error the cursor position is unspecified and
/// the stream should be abandoned.
pub fn decode_frame(buf: &mut Bytes) -> Result<Frame, FrameError> {
    if buf.remaining() < HEADER_BYTES {
        return Err(FrameError::Truncated {
            need: HEADER_BYTES,
            have: buf.remaining(),
        });
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if magic != FRAME_MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let version = buf.get_u8();
    if version != FRAME_VERSION {
        return Err(FrameError::BadVersion(version));
    }
    let header = FrameHeader {
        priority: buf.get_u8(),
        route_key: buf.get_u16_le(),
        rows: buf.get_u32_le(),
        n_features: buf.get_u32_le(),
        deadline_ms: buf.get_u32_le(),
    };
    let env_len = header.rows as usize * 2;
    let feat_len = (header.rows as u64)
        .checked_mul(u64::from(header.n_features))
        .and_then(|v| v.checked_mul(4))
        .and_then(|v| usize::try_from(v).ok())
        .ok_or(FrameError::PayloadOverflow)?;
    let need = env_len + feat_len;
    if buf.remaining() < need {
        return Err(FrameError::Truncated {
            need,
            have: buf.remaining(),
        });
    }
    let env_ids = buf.slice(0..env_len);
    buf.advance(env_len);
    let features = buf.slice(0..feat_len);
    buf.advance(feat_len);
    Ok(Frame {
        header,
        env_ids,
        features,
    })
}

/// Iterate the frames of a multi-frame buffer (a loadgen trace, a
/// connection's read buffer). Yields `Err` once on a malformed tail and
/// then stops.
pub struct FrameReader {
    buf: Bytes,
    dead: bool,
}

impl FrameReader {
    /// A reader over `buf` from its current cursor.
    pub fn new(buf: Bytes) -> Self {
        FrameReader { buf, dead: false }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }
}

impl Iterator for FrameReader {
    type Item = Result<Frame, FrameError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.dead || self.buf.remaining() == 0 {
            return None;
        }
        match decode_frame(&mut self.buf) {
            Ok(frame) => Some(Ok(frame)),
            Err(e) => {
                self.dead = true;
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rows: usize, n_features: u32, key: u16) -> (Vec<u16>, Vec<f32>) {
        let env_ids: Vec<u16> = (0..rows).map(|i| (key + i as u16) % 7).collect();
        let features: Vec<f32> = (0..rows * n_features as usize)
            .map(|i| (i as f32) * 0.25 - 3.0)
            .collect();
        (env_ids, features)
    }

    #[test]
    fn frame_roundtrip_is_exact() {
        let (env_ids, features) = sample(5, 3, 11);
        let mut buf = BytesMut::new();
        encode_frame(&mut buf, 2, 11, 250, 3, &env_ids, &features);
        let mut bytes = buf.freeze();
        let frame = decode_frame(&mut bytes).expect("decodes");
        assert_eq!(bytes.remaining(), 0, "cursor consumed the frame");
        assert_eq!(
            frame.header,
            FrameHeader {
                priority: 2,
                route_key: 11,
                rows: 5,
                n_features: 3,
                deadline_ms: 250,
            }
        );
        assert_eq!(frame.env_ids(), env_ids);
        // f32 payload must round-trip bit-exactly, not approximately.
        let decoded = frame.features();
        assert_eq!(decoded.len(), features.len());
        for (a, b) in decoded.iter().zip(&features) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn reader_walks_a_multi_frame_trace() {
        let mut buf = BytesMut::new();
        for key in 0u16..4 {
            let (env_ids, features) = sample(2 + key as usize, 2, key);
            encode_frame(&mut buf, 1, key, 0, 2, &env_ids, &features);
        }
        let frames: Vec<Frame> = FrameReader::new(buf.freeze())
            .collect::<Result<_, _>>()
            .expect("all frames decode");
        assert_eq!(frames.len(), 4);
        assert_eq!(frames[3].header.route_key, 3);
        assert_eq!(frames[3].header.rows, 5);
    }

    #[test]
    fn truncated_and_corrupt_frames_fail_loudly() {
        let (env_ids, features) = sample(4, 2, 1);
        let mut buf = BytesMut::new();
        encode_frame(&mut buf, 0, 1, 0, 2, &env_ids, &features);
        let whole = buf.freeze();

        let mut cut = whole.slice(0..whole.len() - 3);
        assert!(matches!(
            decode_frame(&mut cut),
            Err(FrameError::Truncated { .. })
        ));

        let mut corrupted = whole.to_vec();
        corrupted[0] = b'X';
        let mut bad = Bytes::from(corrupted);
        assert!(matches!(
            decode_frame(&mut bad),
            Err(FrameError::BadMagic(_))
        ));

        let mut reader = FrameReader::new(whole.slice(0..HEADER_BYTES + 1));
        assert!(reader.next().expect("one item").is_err());
        assert!(reader.next().is_none(), "reader stops after an error");
    }

    #[test]
    fn payload_slices_share_the_trace_allocation() {
        // The accessor contract: env/feature bytes come from the decoded
        // buffer, positioned exactly over the payload regions.
        let (env_ids, features) = sample(3, 2, 9);
        let mut buf = BytesMut::new();
        encode_frame(&mut buf, 1, 9, 0, 2, &env_ids, &features);
        let whole = buf.freeze();
        let mut cursor = whole.clone();
        let frame = decode_frame(&mut cursor).expect("decodes");
        assert_eq!(
            frame.env_id_bytes().as_slice(),
            &whole.as_slice()[HEADER_BYTES..HEADER_BYTES + 6]
        );
        assert_eq!(
            frame.feature_bytes().as_slice(),
            &whole.as_slice()[HEADER_BYTES + 6..]
        );
    }
}
