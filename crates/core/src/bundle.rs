//! Deployable model bundles: the artifact the paper's platform ships.
//!
//! A scoring service needs the GBDT feature extractor and the LR head
//! together, versioned, with enough metadata to audit which world and
//! hyper-parameters produced them. [`ModelBundle`] serializes the pair to
//! a single JSON document and checks versions on load.

use lightmirm_gbdt::Gbdt;
use serde::{Deserialize, Serialize};

use crate::lr::LrModel;
use crate::sparse::MultiHotMatrix;
use crate::trainers::TrainedModel;

/// Format version of the bundle layout.
pub const BUNDLE_VERSION: u32 = 1;

/// Serializable form of [`TrainedModel`].
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub enum StoredModel {
    /// One global LR head.
    Global(LrModel),
    /// Per-environment fine-tuned heads with a global fallback.
    PerEnv {
        base: LrModel,
        per_env: Vec<Option<LrModel>>,
    },
}

impl From<&TrainedModel> for StoredModel {
    fn from(m: &TrainedModel) -> Self {
        match m {
            TrainedModel::Global(model) => StoredModel::Global(model.clone()),
            TrainedModel::PerEnv { base, per_env } => StoredModel::PerEnv {
                base: base.clone(),
                per_env: per_env.clone(),
            },
        }
    }
}

impl From<StoredModel> for TrainedModel {
    fn from(m: StoredModel) -> Self {
        match m {
            StoredModel::Global(model) => TrainedModel::Global(model),
            StoredModel::PerEnv { base, per_env } => TrainedModel::PerEnv { base, per_env },
        }
    }
}

/// Free-form provenance recorded with a bundle.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq)]
pub struct BundleMetadata {
    /// Trainer name, e.g. `"LightMIRM(L=5,g=0.9)"`.
    pub trainer: String,
    /// World/train seed.
    pub seed: u64,
    /// Free-form notes (dataset description, validation metrics, …).
    pub notes: String,
}

/// The deployable artifact: extractor + head + provenance.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ModelBundle {
    version: u32,
    /// The GBDT feature extractor (raw features → leaf indices).
    pub extractor: Gbdt,
    /// The trained LR head over the leaf space.
    pub model: StoredModel,
    /// Provenance.
    pub metadata: BundleMetadata,
}

/// Errors from bundle persistence.
#[derive(Debug)]
pub enum BundleError {
    /// The JSON did not parse.
    Malformed(serde_json::Error),
    /// The format version is unsupported.
    VersionMismatch { found: u32, supported: u32 },
    /// Extractor and head disagree on the leaf-space dimension.
    DimensionMismatch { leaves: usize, weights: usize },
}

impl std::fmt::Display for BundleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BundleError::Malformed(e) => write!(f, "malformed bundle: {e}"),
            BundleError::VersionMismatch { found, supported } => {
                write!(f, "bundle version {found}, supported {supported}")
            }
            BundleError::DimensionMismatch { leaves, weights } => write!(
                f,
                "extractor has {leaves} leaves but head has {weights} weights"
            ),
        }
    }
}

impl std::error::Error for BundleError {}

impl ModelBundle {
    /// Assemble a bundle.
    ///
    /// # Errors
    ///
    /// Returns [`BundleError::DimensionMismatch`] when the head's weight
    /// vector does not match the extractor's leaf count.
    pub fn new(
        extractor: Gbdt,
        model: &TrainedModel,
        metadata: BundleMetadata,
    ) -> Result<Self, BundleError> {
        let leaves = extractor.total_leaves();
        let weights = model.global().weights.len();
        if leaves != weights {
            return Err(BundleError::DimensionMismatch { leaves, weights });
        }
        Ok(ModelBundle {
            version: BUNDLE_VERSION,
            extractor,
            model: StoredModel::from(model),
            metadata,
        })
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("bundle types serialize infallibly")
    }

    /// Parse and validate a bundle.
    ///
    /// # Errors
    ///
    /// See [`BundleError`].
    pub fn from_json(text: &str) -> Result<Self, BundleError> {
        let bundle: ModelBundle = serde_json::from_str(text).map_err(BundleError::Malformed)?;
        if bundle.version != BUNDLE_VERSION {
            return Err(BundleError::VersionMismatch {
                found: bundle.version,
                supported: BUNDLE_VERSION,
            });
        }
        let leaves = bundle.extractor.total_leaves();
        let weights = match &bundle.model {
            StoredModel::Global(m) => m.weights.len(),
            StoredModel::PerEnv { base, .. } => base.weights.len(),
        };
        if leaves != weights {
            return Err(BundleError::DimensionMismatch { leaves, weights });
        }
        Ok(bundle)
    }

    /// Number of raw input features the extractor expects per row.
    pub fn n_features(&self) -> usize {
        self.extractor.n_features()
    }

    /// Score a batch of raw rows end to end on the kernel batch path:
    /// one GBDT leaf transform over the whole batch, then the
    /// chunk-parallel [`crate::kernels::predict_rows_into`] per head.
    ///
    /// `features` is row-major with [`ModelBundle::n_features`] values per
    /// row; `env_ids[k]` selects the per-environment head for row `k` when
    /// present. Scoring is purely elementwise per row, so the returned
    /// values are bit-identical to calling [`ModelBundle::score`] row by
    /// row — and independent of how a stream is split into batches, which
    /// is the serving engine's determinism guarantee.
    ///
    /// # Panics
    ///
    /// Panics when `features.len() != env_ids.len() * n_features`.
    pub fn score_batch(&self, features: &[f32], env_ids: &[u16]) -> Vec<f64> {
        let nf = self.n_features();
        assert_eq!(
            features.len(),
            env_ids.len() * nf,
            "features must hold n_features values per env_id"
        );
        let n = env_ids.len();
        if n == 0 {
            return Vec::new();
        }
        let indices = self.extractor.transform_batch(features);
        let x = MultiHotMatrix::new(
            indices,
            self.extractor.n_trees(),
            self.extractor.total_leaves(),
        )
        .expect("extractor produces well-formed leaf indices");
        let mut out = vec![0.0; n];
        match &self.model {
            StoredModel::Global(m) => {
                let rows: Vec<u32> = (0..n as u32).collect();
                crate::kernels::predict_rows_into(&m.weights, &x, &rows, &mut out);
            }
            StoredModel::PerEnv { base, per_env } => {
                // Group the batch rows by head so each head runs one
                // batched kernel call over its rows.
                let mut by_env: std::collections::BTreeMap<u16, Vec<u32>> =
                    std::collections::BTreeMap::new();
                for (k, &e) in env_ids.iter().enumerate() {
                    by_env.entry(e).or_default().push(k as u32);
                }
                let mut scores = Vec::new();
                for (e, rows) in &by_env {
                    let head = per_env
                        .get(*e as usize)
                        .and_then(Option::as_ref)
                        .unwrap_or(base);
                    scores.resize(rows.len(), 0.0);
                    crate::kernels::predict_rows_into(&head.weights, &x, rows, &mut scores);
                    for (&r, &s) in rows.iter().zip(&scores) {
                        out[r as usize] = s;
                    }
                }
            }
        }
        out
    }

    /// Score one raw feature row end to end (extract leaves, apply the
    /// head). `env_id` selects the per-environment head when present.
    pub fn score(&self, raw_row: &[f32], env_id: u16) -> f64 {
        let mut leaf_buf = Vec::new();
        self.extractor.transform_row(raw_row, &mut leaf_buf);
        let head = match &self.model {
            StoredModel::Global(m) => m,
            StoredModel::PerEnv { base, per_env } => per_env
                .get(env_id as usize)
                .and_then(Option::as_ref)
                .unwrap_or(base),
        };
        let z: f64 = leaf_buf.iter().map(|&i| head.weights[i as usize]).sum();
        crate::lr::sigmoid(z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightmirm_gbdt::{GbdtConfig, GrowConfig};

    fn demo_parts() -> (Gbdt, Vec<f32>, Vec<u8>) {
        let n = 400;
        let mut feats = Vec::with_capacity(n * 2);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let x = (i % 100) as f32 / 100.0;
            feats.extend_from_slice(&[x, (i % 7) as f32]);
            labels.push((x > 0.5) as u8);
        }
        let gbdt = Gbdt::fit(
            &feats,
            2,
            &labels,
            &GbdtConfig {
                n_trees: 4,
                learning_rate: 0.3,
                max_bins: 16,
                grow: GrowConfig {
                    max_leaves: 4,
                    min_data_in_leaf: 10,
                    lambda_l2: 1.0,
                    min_gain: 1e-6,
                },
                ..Default::default()
            },
        )
        .expect("toy fits");
        (gbdt, feats, labels)
    }

    fn demo_bundle() -> (ModelBundle, Vec<f32>) {
        let (gbdt, feats, _) = demo_parts();
        let model = TrainedModel::Global(LrModel {
            weights: (0..gbdt.total_leaves())
                .map(|i| (i as f64) * 0.1 - 0.5)
                .collect(),
        });
        let bundle = ModelBundle::new(
            gbdt,
            &model,
            BundleMetadata {
                trainer: "test".into(),
                seed: 1,
                notes: "demo".into(),
            },
        )
        .expect("dimensions match");
        (bundle, feats)
    }

    #[test]
    fn json_round_trip_preserves_scores() {
        let (bundle, feats) = demo_bundle();
        let json = bundle.to_json();
        let back = ModelBundle::from_json(&json).expect("valid bundle");
        assert_eq!(bundle, back);
        for row in feats.chunks_exact(2).take(20) {
            assert_eq!(bundle.score(row, 0), back.score(row, 0));
        }
    }

    #[test]
    fn scores_are_probabilities() {
        let (bundle, feats) = demo_bundle();
        for row in feats.chunks_exact(2) {
            let p = bundle.score(row, 3);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn rejects_dimension_mismatch_on_build() {
        let (gbdt, _, _) = demo_parts();
        let model = TrainedModel::Global(LrModel {
            weights: vec![0.0; 3],
        });
        assert!(matches!(
            ModelBundle::new(gbdt, &model, BundleMetadata::default()),
            Err(BundleError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn rejects_version_mismatch_on_load() {
        let (bundle, _) = demo_bundle();
        let json = bundle.to_json().replace("\"version\":1", "\"version\":99");
        assert!(matches!(
            ModelBundle::from_json(&json),
            Err(BundleError::VersionMismatch { found: 99, .. })
        ));
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            ModelBundle::from_json("not json"),
            Err(BundleError::Malformed(_))
        ));
    }

    #[test]
    fn score_batch_is_bit_identical_to_per_row_score() {
        let (bundle, feats) = demo_bundle();
        let n = feats.len() / 2;
        let env_ids: Vec<u16> = (0..n).map(|i| (i % 3) as u16).collect();
        let batch = bundle.score_batch(&feats, &env_ids);
        assert_eq!(batch.len(), n);
        for (k, row) in feats.chunks_exact(2).enumerate() {
            assert_eq!(batch[k], bundle.score(row, env_ids[k]));
        }
        // Splitting the same stream differently cannot change the values.
        let (a, b) = feats.split_at(2 * (n / 3));
        let mut split = bundle.score_batch(a, &env_ids[..n / 3]);
        split.extend(bundle.score_batch(b, &env_ids[n / 3..]));
        assert_eq!(batch, split);
        assert!(bundle.score_batch(&[], &[]).is_empty());
    }

    #[test]
    fn score_batch_routes_per_env_heads() {
        let (gbdt, feats, _) = demo_parts();
        let dim = gbdt.total_leaves();
        let model = TrainedModel::PerEnv {
            base: LrModel {
                weights: vec![0.0; dim],
            },
            per_env: vec![Some(LrModel {
                weights: vec![10.0; dim],
            })],
        };
        let bundle = ModelBundle::new(gbdt, &model, BundleMetadata::default()).expect("ok");
        let n = feats.len() / 2;
        let env_ids: Vec<u16> = (0..n).map(|i| (i % 2) as u16).collect();
        let batch = bundle.score_batch(&feats, &env_ids);
        for (k, row) in feats.chunks_exact(2).enumerate() {
            assert_eq!(batch[k], bundle.score(row, env_ids[k]));
        }
    }

    #[test]
    #[should_panic(expected = "n_features")]
    fn score_batch_rejects_misaligned_features() {
        let (bundle, feats) = demo_bundle();
        let _ = bundle.score_batch(&feats[..3], &[0]);
    }

    #[test]
    fn per_env_bundle_routes_heads() {
        let (gbdt, feats, _) = demo_parts();
        let dim = gbdt.total_leaves();
        let base = LrModel {
            weights: vec![0.0; dim],
        };
        let hot = LrModel {
            weights: vec![10.0; dim],
        };
        let model = TrainedModel::PerEnv {
            base: base.clone(),
            per_env: vec![Some(hot), None],
        };
        let bundle = ModelBundle::new(gbdt, &model, BundleMetadata::default()).expect("ok");
        let row = &feats[0..2];
        assert!(bundle.score(row, 0) > 0.99); // env 0: hot head
        assert!((bundle.score(row, 1) - 0.5).abs() < 1e-12); // env 1: base
        assert!((bundle.score(row, 42) - 0.5).abs() < 1e-12); // unknown env
    }
}
