//! Deployable model bundles: the artifact the paper's platform ships.
//!
//! A scoring service needs the GBDT feature extractor and the LR head
//! together, versioned, with enough metadata to audit which world and
//! hyper-parameters produced them. [`ModelBundle`] serializes the pair to
//! a single JSON document and checks versions on load.
//!
//! Two robustness layers live here:
//!
//! - **Durable persistence** — [`ModelBundle::save_to_path`] writes a
//!   CRC-32-checksummed envelope atomically (`tmp` + rename), and
//!   [`ModelBundle::load_from_path`] verifies length and checksum before
//!   parsing, mapping truncation and bit rot to [`BundleError::Corrupt`]
//!   instead of a confusing parse error (or, worse, a silent success).
//! - **Input quarantine** — [`ModelBundle::score_batch_quarantined`]
//!   splits non-finite / out-of-range rows out of a batch, scores the
//!   clean remainder bit-identically to an all-clean batch, and reports
//!   per-row verdicts, so one bad row cannot poison its neighbors.

use std::path::Path;

use lightmirm_gbdt::Gbdt;
use serde::{Deserialize, Serialize};

use crate::failpoint;

use crate::lr::LrModel;
use crate::sparse::MultiHotMatrix;
use crate::trainers::TrainedModel;

/// Format version of the bundle layout.
pub const BUNDLE_VERSION: u32 = 1;

/// Serializable form of [`TrainedModel`].
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub enum StoredModel {
    /// One global LR head.
    Global(LrModel),
    /// Per-environment fine-tuned heads with a global fallback.
    PerEnv {
        base: LrModel,
        per_env: Vec<Option<LrModel>>,
    },
}

impl From<&TrainedModel> for StoredModel {
    fn from(m: &TrainedModel) -> Self {
        match m {
            TrainedModel::Global(model) => StoredModel::Global(model.clone()),
            TrainedModel::PerEnv { base, per_env } => StoredModel::PerEnv {
                base: base.clone(),
                per_env: per_env.clone(),
            },
        }
    }
}

impl From<StoredModel> for TrainedModel {
    fn from(m: StoredModel) -> Self {
        match m {
            StoredModel::Global(model) => TrainedModel::Global(model),
            StoredModel::PerEnv { base, per_env } => TrainedModel::PerEnv { base, per_env },
        }
    }
}

/// Free-form provenance recorded with a bundle.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq)]
pub struct BundleMetadata {
    /// Trainer name, e.g. `"LightMIRM(L=5,g=0.9)"`.
    pub trainer: String,
    /// World/train seed.
    pub seed: u64,
    /// Free-form notes (dataset description, validation metrics, …).
    pub notes: String,
}

/// Evenly-spaced quantile sketch of a one-dimensional sample.
///
/// `points[k]` is the `k/(len-1)` quantile of the summarized sample, so
/// the points form an equi-probable pseudo-sample of the distribution:
/// feeding them to [`lightmirm_metrics::drift::psi`] as the `expected`
/// side reconstructs the baseline bucket shares without shipping the raw
/// training data inside the bundle.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct QuantileSketch {
    /// Quantile points, ascending.
    pub points: Vec<f64>,
    /// Number of finite samples the sketch summarizes.
    pub count: u64,
}

impl QuantileSketch {
    /// Sketch `samples` with `n_points` evenly spaced quantiles.
    /// Non-finite samples (e.g. quarantined-row fallback scores) are
    /// skipped. Returns `None` when nothing finite remains or
    /// `n_points < 2`.
    pub fn from_samples(samples: &[f64], n_points: usize) -> Option<Self> {
        if n_points < 2 {
            return None;
        }
        let mut finite: Vec<f64> = samples.iter().copied().filter(|v| v.is_finite()).collect();
        if finite.is_empty() {
            return None;
        }
        finite.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite"));
        let n = finite.len();
        let points = (0..n_points)
            .map(|k| {
                let q = k as f64 / (n_points - 1) as f64;
                finite[((q * (n - 1) as f64).round()) as usize]
            })
            .collect();
        Some(QuantileSketch {
            points,
            count: n as u64,
        })
    }
}

/// Baseline sketch of one monitored feature column.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct FeatureBaseline {
    /// Raw feature column index.
    pub column: u32,
    /// Sketch of the column's training-time distribution.
    pub sketch: QuantileSketch,
}

/// Training-time distributions for one environment.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct EnvBaseline {
    /// Environment id the sketches describe.
    pub env_id: u16,
    /// Sketch of the model score distribution.
    pub scores: QuantileSketch,
    /// Sketches of the monitored feature columns (aligned with
    /// [`DriftBaseline::columns`]; a column that was all-NaN in this
    /// environment is absent).
    pub features: Vec<FeatureBaseline>,
}

/// Train-time drift baseline stored inside a [`ModelBundle`].
///
/// Captured once at train time and carried in the versioned bundle
/// payload (the CRC envelope covers it); legacy bundles simply have no
/// baseline and load with `None`. The serve-side drift sentinel
/// compares live sliding windows against these sketches with windowed
/// PSI.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct DriftBaseline {
    /// Monitored raw feature columns (top-k by extractor split gain).
    pub columns: Vec<u32>,
    /// Per-environment baselines, sorted by `env_id`.
    pub envs: Vec<EnvBaseline>,
}

impl DriftBaseline {
    /// Pick the top-`k` columns by split-gain importance (ties broken by
    /// lower column index), skipping zero-importance columns.
    pub fn top_k_columns(importance: &[f64], k: usize) -> Vec<u32> {
        let mut ranked: Vec<usize> = (0..importance.len())
            .filter(|&c| importance[c] > 0.0)
            .collect();
        ranked.sort_by(|&a, &b| {
            importance[b]
                .partial_cmp(&importance[a])
                .expect("finite gain")
                .then(a.cmp(&b))
        });
        ranked.truncate(k);
        ranked.sort_unstable();
        ranked.into_iter().map(|c| c as u32).collect()
    }

    /// Capture per-environment sketches of model scores and the given
    /// feature columns from a training set. `features` is row-major with
    /// `n_features` values per row, aligned with `scores`/`env_ids`.
    ///
    /// # Panics
    ///
    /// Panics when `scores`, `env_ids`, and `features` disagree on the
    /// row count or a requested column is out of range.
    pub fn capture(
        scores: &[f64],
        env_ids: &[u16],
        features: &[f32],
        n_features: usize,
        columns: &[u32],
        sketch_points: usize,
    ) -> Self {
        assert_eq!(scores.len(), env_ids.len(), "one score per row");
        assert_eq!(
            features.len(),
            env_ids.len() * n_features,
            "features must hold n_features values per row"
        );
        assert!(
            columns.iter().all(|&c| (c as usize) < n_features),
            "monitored column out of range"
        );
        let mut env_rows: std::collections::BTreeMap<u16, Vec<usize>> =
            std::collections::BTreeMap::new();
        for (r, &e) in env_ids.iter().enumerate() {
            env_rows.entry(e).or_default().push(r);
        }
        let envs = env_rows
            .into_iter()
            .filter_map(|(env_id, rows)| {
                let env_scores: Vec<f64> = rows.iter().map(|&r| scores[r]).collect();
                let score_sketch = QuantileSketch::from_samples(&env_scores, sketch_points)?;
                let feats = columns
                    .iter()
                    .filter_map(|&c| {
                        let vals: Vec<f64> = rows
                            .iter()
                            .map(|&r| f64::from(features[r * n_features + c as usize]))
                            .collect();
                        QuantileSketch::from_samples(&vals, sketch_points)
                            .map(|sketch| FeatureBaseline { column: c, sketch })
                    })
                    .collect();
                Some(EnvBaseline {
                    env_id,
                    scores: score_sketch,
                    features: feats,
                })
            })
            .collect();
        DriftBaseline {
            columns: columns.to_vec(),
            envs,
        }
    }

    /// The baseline for `env_id`, when captured.
    pub fn env(&self, env_id: u16) -> Option<&EnvBaseline> {
        self.envs.iter().find(|e| e.env_id == env_id)
    }
}

/// Provenance of an online-adapted bundle: which champion it descends
/// from, what drift triggered the retrain, and how much labeled data fed
/// it. Carried inside the CRC envelope so lineage survives (and is
/// integrity-checked with) the payload.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct BundleLineage {
    /// CRC-32 of the parent bundle's JSON payload
    /// ([`ModelBundle::payload_crc32`]) — the adapted bundle's ancestry
    /// pointer.
    pub parent_crc32: u32,
    /// Environment whose drift escalation triggered the retrain.
    pub trigger_env: u16,
    /// The PSI value that crossed the Major band.
    pub trigger_psi: f64,
    /// Labeled rows consumed by the warm-started retrain.
    pub rows_used: u64,
    /// Adaptation generation: the shipped champion is 0, each promoted
    /// challenger increments.
    pub generation: u32,
}

/// The deployable artifact: extractor + head + provenance.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ModelBundle {
    version: u32,
    /// The GBDT feature extractor (raw features → leaf indices).
    pub extractor: Gbdt,
    /// The trained LR head over the leaf space.
    pub model: StoredModel,
    /// Provenance.
    pub metadata: BundleMetadata,
    /// Train-time drift baseline for the serve-side sentinel. `None` on
    /// legacy bundles (the field deserializes to `None` when absent) and
    /// on bundles built without baseline capture.
    pub baseline: Option<DriftBaseline>,
    /// Adaptation lineage. `None` on train-time bundles and on legacy
    /// bundles (absent field deserializes to `None`); `Some` on bundles
    /// produced by the serve-side adaptation loop.
    pub lineage: Option<BundleLineage>,
}

/// Errors from bundle persistence.
#[derive(Debug)]
pub enum BundleError {
    /// The JSON did not parse.
    Malformed(serde_json::Error),
    /// The format version is unsupported.
    VersionMismatch { found: u32, supported: u32 },
    /// Extractor and head disagree on the leaf-space dimension.
    DimensionMismatch { leaves: usize, weights: usize },
    /// The checksummed envelope failed verification: truncated payload,
    /// bit-flipped bytes, or a malformed header.
    Corrupt(String),
    /// Reading or writing the bundle file failed.
    Io(std::io::Error),
}

impl std::fmt::Display for BundleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BundleError::Malformed(e) => write!(f, "malformed bundle: {e}"),
            BundleError::VersionMismatch { found, supported } => {
                write!(f, "bundle version {found}, supported {supported}")
            }
            BundleError::DimensionMismatch { leaves, weights } => write!(
                f,
                "extractor has {leaves} leaves but head has {weights} weights"
            ),
            BundleError::Corrupt(detail) => write!(f, "corrupt bundle: {detail}"),
            BundleError::Io(e) => write!(f, "bundle io: {e}"),
        }
    }
}

impl std::error::Error for BundleError {}

impl From<std::io::Error> for BundleError {
    fn from(e: std::io::Error) -> Self {
        BundleError::Io(e)
    }
}

/// CRC-32 (IEEE 802.3, reflected), the envelope checksum. Table-driven;
/// the table is built at compile time.
fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xedb8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc = TABLE[((crc ^ u32::from(b)) & 0xff) as usize] ^ (crc >> 8);
    }
    crc ^ 0xffff_ffff
}

/// First token of the checksummed on-disk envelope.
const ENVELOPE_MAGIC: &str = "LMIRM-BUNDLE";

/// What to do with a quarantined row's score slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QuarantineFallback {
    /// Leave `f64::NAN` in the slot; the caller must consult the
    /// verdicts (a serving layer typically turns this into a structured
    /// per-request error).
    Error,
    /// Substitute this prior default probability (e.g. the environment's
    /// base rate) so downstream consumers keep a usable, clearly
    /// conservative score.
    PriorScore(f64),
}

/// Validation policy for [`ModelBundle::score_batch_quarantined`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuarantinePolicy {
    /// Quarantine rows with any `|feature| > max_abs` (non-finite values
    /// are always quarantined regardless).
    pub max_abs: Option<f32>,
    /// Score slot treatment for quarantined rows.
    pub fallback: QuarantineFallback,
}

impl Default for QuarantinePolicy {
    fn default() -> Self {
        QuarantinePolicy {
            max_abs: None,
            fallback: QuarantineFallback::Error,
        }
    }
}

/// Why a row was quarantined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueFault {
    /// NaN or ±infinity.
    NonFinite,
    /// Magnitude above the policy's `max_abs` bound.
    OutOfRange,
}

/// One quarantined row's verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowQuarantine {
    /// Row index within the scored batch.
    pub row: u32,
    /// First offending feature column.
    pub col: u32,
    /// What was wrong with it.
    pub fault: ValueFault,
}

/// Result of a quarantining batch score: position-aligned scores plus
/// the verdicts for every quarantined row (sorted by row).
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantinedScores {
    /// One score per input row. Quarantined rows hold the policy's
    /// fallback value ([`QuarantineFallback::Error`] leaves `f64::NAN`).
    pub scores: Vec<f64>,
    /// Verdicts for the quarantined rows; empty means the batch was
    /// clean and scored on the ordinary fast path.
    pub quarantined: Vec<RowQuarantine>,
}

impl ModelBundle {
    /// Assemble a bundle.
    ///
    /// # Errors
    ///
    /// Returns [`BundleError::DimensionMismatch`] when the head's weight
    /// vector does not match the extractor's leaf count.
    pub fn new(
        extractor: Gbdt,
        model: &TrainedModel,
        metadata: BundleMetadata,
    ) -> Result<Self, BundleError> {
        let leaves = extractor.total_leaves();
        let weights = model.global().weights.len();
        if leaves != weights {
            return Err(BundleError::DimensionMismatch { leaves, weights });
        }
        Ok(ModelBundle {
            version: BUNDLE_VERSION,
            extractor,
            model: StoredModel::from(model),
            metadata,
            baseline: None,
            lineage: None,
        })
    }

    /// Attach a train-time drift baseline (builder style).
    #[must_use]
    pub fn with_baseline(mut self, baseline: DriftBaseline) -> Self {
        self.baseline = Some(baseline);
        self
    }

    /// Attach an adaptation lineage record (builder style).
    #[must_use]
    pub fn with_lineage(mut self, lineage: BundleLineage) -> Self {
        self.lineage = Some(lineage);
        self
    }

    /// CRC-32 of this bundle's JSON payload — the same checksum the
    /// on-disk envelope header carries, usable as a stable identity for
    /// lineage records ([`BundleLineage::parent_crc32`]).
    pub fn payload_crc32(&self) -> u32 {
        crc32(self.to_json().as_bytes())
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("bundle types serialize infallibly")
    }

    /// Parse and validate a bundle.
    ///
    /// # Errors
    ///
    /// See [`BundleError`].
    pub fn from_json(text: &str) -> Result<Self, BundleError> {
        let bundle: ModelBundle = serde_json::from_str(text).map_err(BundleError::Malformed)?;
        if bundle.version != BUNDLE_VERSION {
            return Err(BundleError::VersionMismatch {
                found: bundle.version,
                supported: BUNDLE_VERSION,
            });
        }
        let leaves = bundle.extractor.total_leaves();
        let weights = match &bundle.model {
            StoredModel::Global(m) => m.weights.len(),
            StoredModel::PerEnv { base, .. } => base.weights.len(),
        };
        if leaves != weights {
            return Err(BundleError::DimensionMismatch { leaves, weights });
        }
        Ok(bundle)
    }

    /// Number of raw input features the extractor expects per row.
    pub fn n_features(&self) -> usize {
        self.extractor.n_features()
    }

    /// Score a batch of raw rows end to end on the kernel batch path:
    /// one GBDT leaf transform over the whole batch, then the
    /// chunk-parallel [`crate::kernels::predict_rows_into`] per head.
    ///
    /// `features` is row-major with [`ModelBundle::n_features`] values per
    /// row; `env_ids[k]` selects the per-environment head for row `k` when
    /// present. Scoring is purely elementwise per row, so the returned
    /// values are bit-identical to calling [`ModelBundle::score`] row by
    /// row — and independent of how a stream is split into batches, which
    /// is the serving engine's determinism guarantee.
    ///
    /// # Panics
    ///
    /// Panics when `features.len() != env_ids.len() * n_features`, or
    /// when any feature value is non-finite — a NaN input would
    /// otherwise propagate silently into the sigmoid output. Callers
    /// scoring untrusted rows should use
    /// [`ModelBundle::score_batch_quarantined`], which isolates bad rows
    /// instead of panicking.
    pub fn score_batch(&self, features: &[f32], env_ids: &[u16]) -> Vec<f64> {
        let nf = self.n_features();
        assert_eq!(
            features.len(),
            env_ids.len() * nf,
            "features must hold n_features values per env_id"
        );
        if let Some(i) = features.iter().position(|v| !v.is_finite()) {
            panic!(
                "non-finite feature at row {}, column {}: \
                 quarantine inputs via score_batch_quarantined",
                i / nf.max(1),
                i % nf.max(1)
            );
        }
        let n = env_ids.len();
        if n == 0 {
            return Vec::new();
        }
        let indices = self.extractor.transform_batch(features);
        let x = MultiHotMatrix::new(
            indices,
            self.extractor.n_trees(),
            self.extractor.total_leaves(),
        )
        .expect("extractor produces well-formed leaf indices");
        let mut out = vec![0.0; n];
        match &self.model {
            StoredModel::Global(m) => {
                let rows: Vec<u32> = (0..n as u32).collect();
                crate::kernels::predict_rows_into(&m.weights, &x, &rows, &mut out);
            }
            StoredModel::PerEnv { base, per_env } => {
                // Group the batch rows by head so each head runs one
                // batched kernel call over its rows.
                let mut by_env: std::collections::BTreeMap<u16, Vec<u32>> =
                    std::collections::BTreeMap::new();
                for (k, &e) in env_ids.iter().enumerate() {
                    by_env.entry(e).or_default().push(k as u32);
                }
                let mut scores = Vec::new();
                for (e, rows) in &by_env {
                    let head = per_env
                        .get(*e as usize)
                        .and_then(Option::as_ref)
                        .unwrap_or(base);
                    scores.resize(rows.len(), 0.0);
                    crate::kernels::predict_rows_into(&head.weights, &x, rows, &mut scores);
                    for (&r, &s) in rows.iter().zip(&scores) {
                        out[r as usize] = s;
                    }
                }
            }
        }
        out
    }

    /// Validation-first batch scoring: split out rows the policy
    /// quarantines (non-finite always; `|x| > max_abs` when bounded),
    /// score the clean remainder, and report per-row verdicts.
    ///
    /// Scoring is elementwise per row, so the clean rows' scores are
    /// **bit-identical** to scoring an all-clean batch (or each row
    /// individually) — a bad row never perturbs its batch neighbors.
    /// Quarantined rows receive the policy's fallback value.
    ///
    /// # Panics
    ///
    /// Panics when `features.len() != env_ids.len() * n_features`.
    pub fn score_batch_quarantined(
        &self,
        features: &[f32],
        env_ids: &[u16],
        policy: &QuarantinePolicy,
    ) -> QuarantinedScores {
        let nf = self.n_features();
        assert_eq!(
            features.len(),
            env_ids.len() * nf,
            "features must hold n_features values per env_id"
        );
        let n = env_ids.len();
        let mut quarantined = Vec::new();
        for r in 0..n {
            let row = &features[r * nf..(r + 1) * nf];
            let fault = row.iter().enumerate().find_map(|(c, &v)| {
                if !v.is_finite() {
                    Some((c, ValueFault::NonFinite))
                } else if policy.max_abs.is_some_and(|bound| v.abs() > bound) {
                    Some((c, ValueFault::OutOfRange))
                } else {
                    None
                }
            });
            if let Some((col, fault)) = fault {
                quarantined.push(RowQuarantine {
                    row: r as u32,
                    col: col as u32,
                    fault,
                });
            }
        }
        if quarantined.is_empty() {
            return QuarantinedScores {
                scores: self.score_batch(features, env_ids),
                quarantined,
            };
        }
        // Pack the clean rows, score them, scatter the results back.
        let mut bad = vec![false; n];
        for q in &quarantined {
            bad[q.row as usize] = true;
        }
        let clean_n = n - quarantined.len();
        let mut clean_features = Vec::with_capacity(clean_n * nf);
        let mut clean_envs = Vec::with_capacity(clean_n);
        let mut clean_rows = Vec::with_capacity(clean_n);
        for r in 0..n {
            if !bad[r] {
                clean_features.extend_from_slice(&features[r * nf..(r + 1) * nf]);
                clean_envs.push(env_ids[r]);
                clean_rows.push(r);
            }
        }
        let clean_scores = self.score_batch(&clean_features, &clean_envs);
        let fallback = match policy.fallback {
            QuarantineFallback::Error => f64::NAN,
            QuarantineFallback::PriorScore(p) => p,
        };
        let mut scores = vec![fallback; n];
        for (r, s) in clean_rows.into_iter().zip(clean_scores) {
            scores[r] = s;
        }
        QuarantinedScores {
            scores,
            quarantined,
        }
    }

    /// Serialize to the durable on-disk envelope: a header line carrying
    /// the format version, payload CRC-32, and payload length, followed
    /// by the JSON document. [`ModelBundle::from_envelope`] verifies all
    /// three before parsing.
    pub fn to_envelope(&self) -> String {
        let payload = self.to_json();
        let crc = crc32(payload.as_bytes());
        format!(
            "{ENVELOPE_MAGIC} v{BUNDLE_VERSION} crc32={crc:08x} len={}\n{payload}",
            payload.len()
        )
    }

    /// Parse either the checksummed envelope or (for backward
    /// compatibility) a bare JSON bundle document.
    ///
    /// # Errors
    ///
    /// [`BundleError::Corrupt`] when the envelope header is malformed,
    /// the payload is truncated, or the checksum does not match; the
    /// [`ModelBundle::from_json`] errors otherwise.
    pub fn from_envelope(text: &str) -> Result<Self, BundleError> {
        let Some(rest) = text.strip_prefix(ENVELOPE_MAGIC) else {
            // Legacy bare-JSON bundle: no integrity metadata to check.
            return Self::from_json(text);
        };
        let (header, payload) = rest
            .split_once('\n')
            .ok_or_else(|| BundleError::Corrupt("envelope has no payload line".into()))?;
        let fields: Vec<&str> = header.split_whitespace().collect();
        let [version, crc_field, len_field] = fields[..] else {
            return Err(BundleError::Corrupt(format!(
                "envelope header has {} fields, expected 3",
                fields.len()
            )));
        };
        let found_version: u32 = version
            .strip_prefix('v')
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| BundleError::Corrupt(format!("bad envelope version {version:?}")))?;
        if found_version != BUNDLE_VERSION {
            return Err(BundleError::VersionMismatch {
                found: found_version,
                supported: BUNDLE_VERSION,
            });
        }
        let expected_crc = crc_field
            .strip_prefix("crc32=")
            .and_then(|v| u32::from_str_radix(v, 16).ok())
            .ok_or_else(|| BundleError::Corrupt(format!("bad checksum field {crc_field:?}")))?;
        let expected_len: usize = len_field
            .strip_prefix("len=")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| BundleError::Corrupt(format!("bad length field {len_field:?}")))?;
        if payload.len() != expected_len {
            return Err(BundleError::Corrupt(format!(
                "payload truncated: {} bytes, header says {expected_len}",
                payload.len()
            )));
        }
        let found_crc = crc32(payload.as_bytes());
        if found_crc != expected_crc {
            return Err(BundleError::Corrupt(format!(
                "checksum mismatch: payload crc32 {found_crc:08x}, header says {expected_crc:08x}"
            )));
        }
        Self::from_json(payload)
    }

    /// Write the checksummed envelope atomically and durably: the bytes
    /// go to a `<path>.tmp` sibling first, the tmp file is fsynced, and
    /// only then is it renamed into place — so a crash mid-write never
    /// leaves a truncated bundle at `path` (the incumbent file survives
    /// intact), and a power loss just after the rename cannot surface a
    /// correctly-named file with unflushed contents. The parent
    /// directory is fsynced after the rename so the directory entry
    /// itself is durable.
    ///
    /// # Errors
    ///
    /// [`BundleError::Io`] on filesystem failure.
    pub fn save_to_path(&self, path: &Path) -> Result<(), BundleError> {
        use std::io::Write;
        let data = self.to_envelope();
        let bytes = data.as_bytes();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        // Failpoint: simulate a crash partway through the write — the
        // tmp file is left truncated and the rename never happens.
        let cut = match failpoint::fire("bundle::partial_write") {
            Some(failpoint::Fault::IoError) => bytes.len() / 2,
            _ => bytes.len(),
        };
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(&bytes[..cut])?;
        if cut < bytes.len() {
            return Err(BundleError::Io(std::io::Error::other(
                "injected partial write",
            )));
        }
        // Flush file contents to stable storage *before* the rename:
        // rename-then-sync can expose a durable name pointing at
        // not-yet-durable bytes after a crash.
        failpoint::io_point("bundle::fsync")?;
        file.sync_all()?;
        drop(file);
        failpoint::io_point("bundle::rename")?;
        std::fs::rename(&tmp, path)?;
        // Make the rename itself durable: fsync the parent directory so
        // the new directory entry survives a crash.
        let parent = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        failpoint::io_point("bundle::dir_sync")?;
        std::fs::File::open(parent)?.sync_all()?;
        Ok(())
    }

    /// Read and verify a bundle written by [`ModelBundle::save_to_path`]
    /// (or a legacy bare-JSON file).
    ///
    /// # Errors
    ///
    /// [`BundleError::Io`] on read failure; the
    /// [`ModelBundle::from_envelope`] errors otherwise.
    pub fn load_from_path(path: &Path) -> Result<Self, BundleError> {
        failpoint::io_point("bundle::read")?;
        let text = std::fs::read_to_string(path)?;
        Self::from_envelope(&text)
    }

    /// Score one raw feature row end to end (extract leaves, apply the
    /// head). `env_id` selects the per-environment head when present.
    pub fn score(&self, raw_row: &[f32], env_id: u16) -> f64 {
        let mut leaf_buf = Vec::new();
        self.extractor.transform_row(raw_row, &mut leaf_buf);
        let head = match &self.model {
            StoredModel::Global(m) => m,
            StoredModel::PerEnv { base, per_env } => per_env
                .get(env_id as usize)
                .and_then(Option::as_ref)
                .unwrap_or(base),
        };
        let z: f64 = leaf_buf.iter().map(|&i| head.weights[i as usize]).sum();
        crate::lr::sigmoid(z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightmirm_gbdt::{GbdtConfig, GrowConfig};

    fn demo_parts() -> (Gbdt, Vec<f32>, Vec<u8>) {
        let n = 400;
        let mut feats = Vec::with_capacity(n * 2);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let x = (i % 100) as f32 / 100.0;
            feats.extend_from_slice(&[x, (i % 7) as f32]);
            labels.push((x > 0.5) as u8);
        }
        let gbdt = Gbdt::fit(
            &feats,
            2,
            &labels,
            &GbdtConfig {
                n_trees: 4,
                learning_rate: 0.3,
                max_bins: 16,
                grow: GrowConfig {
                    max_leaves: 4,
                    min_data_in_leaf: 10,
                    lambda_l2: 1.0,
                    min_gain: 1e-6,
                },
                ..Default::default()
            },
        )
        .expect("toy fits");
        (gbdt, feats, labels)
    }

    fn demo_bundle() -> (ModelBundle, Vec<f32>) {
        let (gbdt, feats, _) = demo_parts();
        let model = TrainedModel::Global(LrModel {
            weights: (0..gbdt.total_leaves())
                .map(|i| (i as f64) * 0.1 - 0.5)
                .collect(),
        });
        let bundle = ModelBundle::new(
            gbdt,
            &model,
            BundleMetadata {
                trainer: "test".into(),
                seed: 1,
                notes: "demo".into(),
            },
        )
        .expect("dimensions match");
        (bundle, feats)
    }

    #[test]
    fn json_round_trip_preserves_scores() {
        let (bundle, feats) = demo_bundle();
        let json = bundle.to_json();
        let back = ModelBundle::from_json(&json).expect("valid bundle");
        assert_eq!(bundle, back);
        for row in feats.chunks_exact(2).take(20) {
            assert_eq!(bundle.score(row, 0), back.score(row, 0));
        }
    }

    #[test]
    fn scores_are_probabilities() {
        let (bundle, feats) = demo_bundle();
        for row in feats.chunks_exact(2) {
            let p = bundle.score(row, 3);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn rejects_dimension_mismatch_on_build() {
        let (gbdt, _, _) = demo_parts();
        let model = TrainedModel::Global(LrModel {
            weights: vec![0.0; 3],
        });
        assert!(matches!(
            ModelBundle::new(gbdt, &model, BundleMetadata::default()),
            Err(BundleError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn rejects_version_mismatch_on_load() {
        let (bundle, _) = demo_bundle();
        let json = bundle.to_json().replace("\"version\":1", "\"version\":99");
        assert!(matches!(
            ModelBundle::from_json(&json),
            Err(BundleError::VersionMismatch { found: 99, .. })
        ));
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            ModelBundle::from_json("not json"),
            Err(BundleError::Malformed(_))
        ));
    }

    #[test]
    fn score_batch_is_bit_identical_to_per_row_score() {
        let (bundle, feats) = demo_bundle();
        let n = feats.len() / 2;
        let env_ids: Vec<u16> = (0..n).map(|i| (i % 3) as u16).collect();
        let batch = bundle.score_batch(&feats, &env_ids);
        assert_eq!(batch.len(), n);
        for (k, row) in feats.chunks_exact(2).enumerate() {
            assert_eq!(batch[k], bundle.score(row, env_ids[k]));
        }
        // Splitting the same stream differently cannot change the values.
        let (a, b) = feats.split_at(2 * (n / 3));
        let mut split = bundle.score_batch(a, &env_ids[..n / 3]);
        split.extend(bundle.score_batch(b, &env_ids[n / 3..]));
        assert_eq!(batch, split);
        assert!(bundle.score_batch(&[], &[]).is_empty());
    }

    #[test]
    fn score_batch_routes_per_env_heads() {
        let (gbdt, feats, _) = demo_parts();
        let dim = gbdt.total_leaves();
        let model = TrainedModel::PerEnv {
            base: LrModel {
                weights: vec![0.0; dim],
            },
            per_env: vec![Some(LrModel {
                weights: vec![10.0; dim],
            })],
        };
        let bundle = ModelBundle::new(gbdt, &model, BundleMetadata::default()).expect("ok");
        let n = feats.len() / 2;
        let env_ids: Vec<u16> = (0..n).map(|i| (i % 2) as u16).collect();
        let batch = bundle.score_batch(&feats, &env_ids);
        for (k, row) in feats.chunks_exact(2).enumerate() {
            assert_eq!(batch[k], bundle.score(row, env_ids[k]));
        }
    }

    #[test]
    #[should_panic(expected = "n_features")]
    fn score_batch_rejects_misaligned_features() {
        let (bundle, feats) = demo_bundle();
        let _ = bundle.score_batch(&feats[..3], &[0]);
    }

    #[test]
    #[should_panic(expected = "non-finite feature at row 1, column 0")]
    fn score_batch_panics_on_nan_instead_of_propagating() {
        let (bundle, feats) = demo_bundle();
        let mut feats = feats[..8].to_vec();
        feats[2] = f32::NAN;
        let _ = bundle.score_batch(&feats, &[0, 0, 0, 0]);
    }

    #[test]
    fn quarantine_isolates_bad_rows_and_keeps_clean_rows_bit_identical() {
        let (bundle, feats) = demo_bundle();
        let n = 32;
        let clean = feats[..n * 2].to_vec();
        let env_ids: Vec<u16> = (0..n).map(|i| (i % 3) as u16).collect();
        let all_clean = bundle.score_batch(&clean, &env_ids);

        // Poison rows 3 (NaN), 10 (+inf), 20 (-inf) in a copy.
        let mut mixed = clean.clone();
        mixed[3 * 2] = f32::NAN;
        mixed[10 * 2 + 1] = f32::INFINITY;
        mixed[20 * 2] = f32::NEG_INFINITY;
        let out = bundle.score_batch_quarantined(&mixed, &env_ids, &QuarantinePolicy::default());
        let bad_rows: Vec<u32> = out.quarantined.iter().map(|q| q.row).collect();
        assert_eq!(bad_rows, [3, 10, 20]);
        assert!(out
            .quarantined
            .iter()
            .all(|q| q.fault == ValueFault::NonFinite));
        for (r, reference) in all_clean.iter().enumerate() {
            if bad_rows.contains(&(r as u32)) {
                assert!(out.scores[r].is_nan(), "fallback Error leaves NaN at {r}");
            } else {
                // The regression guarantee: a bad neighbor cannot change
                // a clean row's score by even one ULP.
                assert_eq!(
                    out.scores[r].to_bits(),
                    reference.to_bits(),
                    "clean row {r} drifted next to quarantined rows"
                );
            }
        }

        // PriorScore fallback substitutes the configured prior.
        let prior = bundle.score_batch_quarantined(
            &mixed,
            &env_ids,
            &QuarantinePolicy {
                fallback: QuarantineFallback::PriorScore(0.03),
                ..QuarantinePolicy::default()
            },
        );
        assert_eq!(prior.scores[3], 0.03);
        assert_eq!(prior.scores[4].to_bits(), all_clean[4].to_bits());
    }

    #[test]
    fn quarantine_max_abs_bound_flags_out_of_range() {
        let (bundle, feats) = demo_bundle();
        let mut rows = feats[..8].to_vec();
        rows[5] = 1e9;
        let out = bundle.score_batch_quarantined(
            &rows,
            &[0, 0, 0, 0],
            &QuarantinePolicy {
                max_abs: Some(1e6),
                fallback: QuarantineFallback::Error,
            },
        );
        assert_eq!(out.quarantined.len(), 1);
        assert_eq!(out.quarantined[0].row, 2);
        assert_eq!(out.quarantined[0].col, 1);
        assert_eq!(out.quarantined[0].fault, ValueFault::OutOfRange);
    }

    #[test]
    fn quarantine_of_clean_batch_is_fast_path_identical() {
        let (bundle, feats) = demo_bundle();
        let env_ids: Vec<u16> = (0..feats.len() / 2).map(|i| (i % 2) as u16).collect();
        let plain = bundle.score_batch(&feats, &env_ids);
        let checked =
            bundle.score_batch_quarantined(&feats, &env_ids, &QuarantinePolicy::default());
        assert!(checked.quarantined.is_empty());
        assert_eq!(plain, checked.scores);
    }

    #[test]
    fn envelope_round_trips_and_detects_tampering() {
        let (bundle, _) = demo_bundle();
        let env = bundle.to_envelope();
        assert!(env.starts_with("LMIRM-BUNDLE v1 crc32="));
        let back = ModelBundle::from_envelope(&env).expect("valid envelope");
        assert_eq!(bundle, back);
        // Legacy bare JSON still loads.
        let legacy = ModelBundle::from_envelope(&bundle.to_json()).expect("legacy");
        assert_eq!(bundle, legacy);
        // One flipped payload byte trips the checksum.
        let mut bytes = env.into_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let tampered = String::from_utf8(bytes).expect("still utf8");
        assert!(matches!(
            ModelBundle::from_envelope(&tampered),
            Err(BundleError::Corrupt(_))
        ));
    }

    #[test]
    fn quantile_sketch_is_sorted_and_skips_non_finite() {
        let mut samples: Vec<f64> = (0..500).map(|i| f64::from(i % 97) / 97.0).collect();
        samples.push(f64::NAN);
        samples.push(f64::INFINITY);
        let sketch = QuantileSketch::from_samples(&samples, 32).expect("sketch");
        assert_eq!(sketch.points.len(), 32);
        assert_eq!(sketch.count, 500);
        assert!(sketch.points.windows(2).all(|w| w[0] <= w[1]));
        assert!(sketch.points.iter().all(|p| p.is_finite()));
        assert!(QuantileSketch::from_samples(&[f64::NAN], 8).is_none());
        assert!(QuantileSketch::from_samples(&[1.0, 2.0], 1).is_none());
    }

    #[test]
    fn top_k_columns_ranks_by_gain() {
        let imp = [0.0, 5.0, 1.0, 5.0, 3.0];
        assert_eq!(DriftBaseline::top_k_columns(&imp, 3), vec![1, 3, 4]);
        // Zero-importance columns never make the cut, even with room.
        assert_eq!(DriftBaseline::top_k_columns(&imp, 10), vec![1, 2, 3, 4]);
    }

    #[test]
    fn baseline_capture_sketches_each_env() {
        let n = 300;
        let env_ids: Vec<u16> = (0..n).map(|i| (i % 3) as u16).collect();
        let scores: Vec<f64> = (0..n).map(|i| f64::from(i as u32) / n as f64).collect();
        let features: Vec<f32> = (0..n * 2).map(|i| (i % 13) as f32).collect();
        let baseline = DriftBaseline::capture(&scores, &env_ids, &features, 2, &[0, 1], 16);
        assert_eq!(baseline.envs.len(), 3);
        for env in 0..3u16 {
            let eb = baseline.env(env).expect("env captured");
            assert_eq!(eb.scores.count, 100);
            assert_eq!(eb.features.len(), 2);
        }
        assert!(baseline.env(9).is_none());
    }

    #[test]
    fn bundle_baseline_round_trips_through_envelope() {
        let (bundle, feats) = demo_bundle();
        let n = feats.len() / 2;
        let env_ids: Vec<u16> = (0..n).map(|i| (i % 2) as u16).collect();
        let scores = bundle.score_batch(&feats, &env_ids);
        let baseline = DriftBaseline::capture(&scores, &env_ids, &feats, 2, &[0, 1], 24);
        let bundle = bundle.with_baseline(baseline.clone());
        let back = ModelBundle::from_envelope(&bundle.to_envelope()).expect("valid");
        assert_eq!(back.baseline.as_ref(), Some(&baseline));
        assert_eq!(bundle, back);
    }

    #[test]
    fn lineage_round_trips_through_envelope() {
        let (bundle, _) = demo_bundle();
        let parent_crc32 = bundle.payload_crc32();
        let lineage = BundleLineage {
            parent_crc32,
            trigger_env: 7,
            trigger_psi: 0.31,
            rows_used: 4096,
            generation: 2,
        };
        let adapted = bundle.clone().with_lineage(lineage.clone());
        // Lineage changes the payload, and therefore the identity hash.
        assert_ne!(adapted.payload_crc32(), parent_crc32);
        let back = ModelBundle::from_envelope(&adapted.to_envelope()).expect("valid");
        assert_eq!(back.lineage.as_ref(), Some(&lineage));
        assert_eq!(adapted, back);
    }

    #[test]
    fn legacy_bundle_without_lineage_field_loads_as_none() {
        let (bundle, _) = demo_bundle();
        let json = bundle.to_json();
        // A pre-lineage bundle document has no such key at all.
        let legacy = json.replace(",\"lineage\":null", "");
        assert_ne!(json, legacy, "lineage field should serialize");
        let back = ModelBundle::from_json(&legacy).expect("legacy bundle loads");
        assert_eq!(back.lineage, None);
        assert_eq!(bundle, back);
    }

    #[test]
    fn legacy_bundle_without_baseline_field_loads_as_none() {
        let (bundle, _) = demo_bundle();
        let json = bundle.to_json();
        // A pre-baseline bundle document has no such key at all.
        let legacy = json.replace(",\"baseline\":null", "");
        assert_ne!(json, legacy, "baseline field should serialize last");
        let back = ModelBundle::from_json(&legacy).expect("legacy bundle loads");
        assert_eq!(back.baseline, None);
        assert_eq!(bundle, back);
    }

    #[test]
    fn per_env_bundle_routes_heads() {
        let (gbdt, feats, _) = demo_parts();
        let dim = gbdt.total_leaves();
        let base = LrModel {
            weights: vec![0.0; dim],
        };
        let hot = LrModel {
            weights: vec![10.0; dim],
        };
        let model = TrainedModel::PerEnv {
            base: base.clone(),
            per_env: vec![Some(hot), None],
        };
        let bundle = ModelBundle::new(gbdt, &model, BundleMetadata::default()).expect("ok");
        let row = &feats[0..2];
        assert!(bundle.score(row, 0) > 0.99); // env 0: hot head
        assert!((bundle.score(row, 1) - 0.5).abs() < 1e-12); // env 1: base
        assert!((bundle.score(row, 42) - 0.5).abs() < 1e-12); // unknown env
    }
}
