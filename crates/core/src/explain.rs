//! Prediction explanations — the paper's §II-B argument for the GBDT+LR
//! architecture is that it stays explainable and auditable, and lending
//! regulations require *reason codes* for adverse decisions.
//!
//! The decomposition is exact: the LR logit is a sum of one weight per
//! tree (`z = Σ_t θ[leaf_t]`), and each leaf is reached through a
//! root-to-leaf path of raw-feature comparisons. Attributing each tree's
//! weight to the raw features on its path yields an additive,
//! faithful-by-construction explanation of the score.

use lightmirm_gbdt::{Gbdt, Node, Tree};

use crate::lr::{sigmoid, LrModel};

/// One tree's contribution to a score.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct TreeContribution {
    /// Tree index.
    pub tree: usize,
    /// Global leaf index (the LR column).
    pub leaf: u32,
    /// LR weight of that leaf — the tree's additive logit contribution.
    pub weight: f64,
    /// Raw features compared on the root-to-leaf path, in path order
    /// (deduplicated, order of first use).
    pub path_features: Vec<u32>,
}

/// An additive explanation of one prediction.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct Explanation {
    /// The predicted default probability.
    pub probability: f64,
    /// The logit being decomposed (`Σ contributions.weight`).
    pub logit: f64,
    /// Per-tree contributions, sorted by descending |weight|.
    pub contributions: Vec<TreeContribution>,
    /// Per-raw-feature attribution: each tree's weight split equally over
    /// its path features, summed across trees. Length = raw feature count.
    pub feature_attribution: Vec<f64>,
}

impl Explanation {
    /// The `k` raw features pushing the score most toward default
    /// (largest positive attribution) — the adverse-action reason codes.
    pub fn top_risk_features(&self, k: usize) -> Vec<(u32, f64)> {
        let mut ranked: Vec<(u32, f64)> = self
            .feature_attribution
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a > 0.0)
            .map(|(f, &a)| (f as u32, a))
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("attributions are finite"));
        ranked.truncate(k);
        ranked
    }
}

/// Collect the raw features compared on the root-to-leaf path of `row`.
fn path_features(tree: &Tree, row: &[f32]) -> Vec<u32> {
    let mut features = Vec::new();
    let mut node = 0usize;
    loop {
        match tree.nodes()[node] {
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                if !features.contains(&feature) {
                    features.push(feature);
                }
                let v = row[feature as usize];
                node = if v <= threshold {
                    left as usize
                } else {
                    right as usize
                };
            }
            Node::Leaf { .. } => return features,
        }
    }
}

/// Explain one raw feature row under a GBDT extractor and LR head.
///
/// # Panics
///
/// Panics if the head's dimension does not match the extractor's leaf
/// count, or the row width does not match the extractor.
pub fn explain_row(gbdt: &Gbdt, head: &LrModel, row: &[f32]) -> Explanation {
    assert_eq!(
        head.weights.len(),
        gbdt.total_leaves(),
        "head dimension must match the extractor"
    );
    let mut leaf_buf = Vec::new();
    gbdt.transform_row(row, &mut leaf_buf);

    let mut contributions = Vec::with_capacity(leaf_buf.len());
    let mut attribution = vec![0.0f64; gbdt.n_features()];
    let mut logit = 0.0;
    for (t, &leaf) in leaf_buf.iter().enumerate() {
        let weight = head.weights[leaf as usize];
        logit += weight;
        let path = path_features(gbdt.tree(t), row);
        if !path.is_empty() {
            let share = weight / path.len() as f64;
            for &f in &path {
                attribution[f as usize] += share;
            }
        }
        contributions.push(TreeContribution {
            tree: t,
            leaf,
            weight,
            path_features: path,
        });
    }
    contributions.sort_by(|a, b| {
        b.weight
            .abs()
            .partial_cmp(&a.weight.abs())
            .expect("weights are finite")
    });
    Explanation {
        probability: sigmoid(logit),
        logit,
        contributions,
        feature_attribution: attribution,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightmirm_gbdt::{GbdtConfig, GrowConfig};

    /// Feature 0 drives the label; feature 1 is constant noise.
    fn fitted_parts() -> (Gbdt, LrModel, Vec<f32>) {
        let n = 600;
        let mut feats = Vec::with_capacity(n * 2);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let x = (i % 100) as f32 / 100.0;
            feats.extend_from_slice(&[x, 1.0]);
            labels.push((x > 0.5) as u8);
        }
        let gbdt = Gbdt::fit(
            &feats,
            2,
            &labels,
            &GbdtConfig {
                n_trees: 6,
                learning_rate: 0.3,
                max_bins: 32,
                grow: GrowConfig {
                    max_leaves: 4,
                    min_data_in_leaf: 10,
                    lambda_l2: 1.0,
                    min_gain: 1e-6,
                },
                ..Default::default()
            },
        )
        .expect("fits");
        // A hand-made head: weight = +1 for leaves whose one-hot column is
        // even, −1 otherwise (arbitrary but fixed).
        let head = LrModel {
            weights: (0..gbdt.total_leaves())
                .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
                .collect(),
        };
        (gbdt, head, feats)
    }

    #[test]
    fn decomposition_is_exact() {
        let (gbdt, head, feats) = fitted_parts();
        for row in feats.chunks_exact(2).take(30) {
            let ex = explain_row(&gbdt, &head, row);
            let sum: f64 = ex.contributions.iter().map(|c| c.weight).sum();
            assert!((ex.logit - sum).abs() < 1e-12);
            assert!((ex.probability - sigmoid(ex.logit)).abs() < 1e-12);
            // And matches direct scoring through the head.
            let mut leaves = Vec::new();
            gbdt.transform_row(row, &mut leaves);
            let direct: f64 = leaves.iter().map(|&l| head.weights[l as usize]).sum();
            assert!((ex.logit - direct).abs() < 1e-12);
        }
    }

    #[test]
    fn attribution_concentrates_on_the_informative_feature() {
        let (gbdt, head, feats) = fitted_parts();
        let ex = explain_row(&gbdt, &head, &feats[0..2]);
        // Splits only ever use feature 0 (feature 1 is constant), so all
        // attribution mass sits there.
        assert_eq!(ex.feature_attribution[1], 0.0);
        let total: f64 = ex.feature_attribution.iter().sum();
        assert!((total - ex.logit).abs() < 1e-9);
    }

    #[test]
    fn attribution_mass_conserves_the_logit() {
        let (gbdt, head, feats) = fitted_parts();
        for row in feats.chunks_exact(2).take(10) {
            let ex = explain_row(&gbdt, &head, row);
            // Stump trees (no splits) contribute weight without a path;
            // all non-stump weight must land in the attribution vector.
            let pathless: f64 = ex
                .contributions
                .iter()
                .filter(|c| c.path_features.is_empty())
                .map(|c| c.weight)
                .sum();
            let attributed: f64 = ex.feature_attribution.iter().sum();
            assert!((attributed + pathless - ex.logit).abs() < 1e-9);
        }
    }

    #[test]
    fn top_risk_features_are_positive_and_sorted() {
        let (gbdt, head, feats) = fitted_parts();
        let ex = explain_row(&gbdt, &head, &feats[0..2]);
        let top = ex.top_risk_features(5);
        for w in top.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        for (_, a) in &top {
            assert!(*a > 0.0);
        }
    }

    #[test]
    fn contributions_sorted_by_magnitude() {
        let (gbdt, head, feats) = fitted_parts();
        let ex = explain_row(&gbdt, &head, &feats[4..6]);
        for w in ex.contributions.windows(2) {
            assert!(w[0].weight.abs() >= w[1].weight.abs());
        }
    }
}
