//! Evaluation glue: score a trained model on a test frame and produce the
//! paper's per-province fairness summary.

use lightmirm_metrics::{EnvScores, FairnessSummary, MetricError};

use crate::env::EnvDataset;
use crate::trainers::TrainedModel;

/// Score every row of `data` and summarize per environment
/// (`mKS`/`wKS`/`mAUC`/`wAUC`).
///
/// Environments with too little test data to score are skipped inside
/// [`FairnessSummary::compute`], mirroring the paper's evaluation.
///
/// # Errors
///
/// Propagates [`MetricError`] when nothing is scorable.
pub fn evaluate(model: &TrainedModel, data: &EnvDataset) -> Result<FairnessSummary, MetricError> {
    evaluate_filtered(model, data, 0)
}

/// Like [`evaluate`], but environments with fewer than `min_rows` test
/// samples are excluded from the summary. With a downsampled synthetic
/// world (the paper's platform has 1.4 M rows; default experiments here
/// use ~100 k) the smallest provinces hold only tens of test rows, and a
/// KS over 30 samples is noise — the experiment harness filters them the
/// way the platform's evaluation drops provinces with insufficient data.
///
/// # Errors
///
/// Propagates [`MetricError`] when nothing is scorable.
pub fn evaluate_filtered(
    model: &TrainedModel,
    data: &EnvDataset,
    min_rows: usize,
) -> Result<FairnessSummary, MetricError> {
    let mut buckets: Vec<EnvScores> = data
        .env_names
        .iter()
        .map(|n| EnvScores::new(n.clone()))
        .collect();
    let rows = data.all_rows();
    let scores = model.predict_rows(&data.x, &rows, &data.env_ids);
    for (&r, &s) in rows.iter().zip(&scores) {
        let r = r as usize;
        buckets[data.env_ids[r] as usize].push(s, data.labels[r]);
    }
    buckets.retain(|b| b.len() >= min_rows);
    FairnessSummary::compute(&buckets)
}

/// Scores and labels for a subset of rows — the building block of the
/// special-province analyses (Guangdong, Hubei H1/H2).
pub fn score_rows(model: &TrainedModel, data: &EnvDataset, rows: &[u32]) -> (Vec<f64>, Vec<u8>) {
    let scores = model.predict_rows(&data.x, rows, &data.env_ids);
    let labels = rows.iter().map(|&r| data.labels[r as usize]).collect();
    (scores, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lr::LrModel;
    use crate::sparse::MultiHotMatrix;

    fn scored_world() -> (EnvDataset, TrainedModel) {
        // Column 0 active for positives, column 1 for negatives. A model
        // with w = [1, -1] ranks perfectly.
        let mut idx = Vec::new();
        let mut labels = Vec::new();
        let mut envs = Vec::new();
        for i in 0..40 {
            let y = (i % 2) as u8;
            idx.extend_from_slice(&[if y == 1 { 0u32 } else { 1 }, 2]);
            labels.push(y);
            envs.push((i % 3) as u16);
        }
        let x = MultiHotMatrix::new(idx, 2, 3).unwrap();
        let data =
            EnvDataset::new(x, labels, envs, vec!["A".into(), "B".into(), "C".into()]).unwrap();
        let model = TrainedModel::Global(LrModel {
            weights: vec![1.0, -1.0, 0.0],
        });
        (data, model)
    }

    #[test]
    fn perfect_model_scores_perfectly_everywhere() {
        let (data, model) = scored_world();
        let summary = evaluate(&model, &data).unwrap();
        assert_eq!(summary.envs.len(), 3);
        assert!((summary.m_auc - 1.0).abs() < 1e-12);
        assert!((summary.w_ks - 1.0).abs() < 1e-12);
    }

    #[test]
    fn score_rows_subsets() {
        let (data, model) = scored_world();
        let rows: Vec<u32> = (0..10).collect();
        let (scores, labels) = score_rows(&model, &data, &rows);
        assert_eq!(scores.len(), 10);
        assert_eq!(labels.len(), 10);
        // Positive rows get higher scores.
        for (s, y) in scores.iter().zip(&labels) {
            if *y == 1 {
                assert!(*s > 0.5);
            } else {
                assert!(*s < 0.5);
            }
        }
    }

    #[test]
    fn filtering_drops_small_environments() {
        let (data, model) = scored_world();
        // Envs A/B/C get 14/13/13 rows; a 14-row floor keeps only A.
        let summary = evaluate_filtered(&model, &data, 14).unwrap();
        assert_eq!(summary.envs.len(), 1);
        assert_eq!(summary.envs[0].name, "A");
        // An impossible floor errors out instead of returning nonsense.
        assert!(evaluate_filtered(&model, &data, 1000).is_err());
    }

    #[test]
    fn empty_env_names_still_summarize_present_envs() {
        let (data, model) = scored_world();
        // All three envs have data here; summary covers them all.
        let summary = evaluate(&model, &data).unwrap();
        let names: Vec<&str> = summary.envs.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["A", "B", "C"]);
    }
}
