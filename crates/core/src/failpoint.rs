//! Deterministic failpoint injection for chaos testing.
//!
//! A *failpoint* is a named site in production code where the test
//! harness can inject a fault: a panic, a delay, or an I/O error. Sites
//! are compiled in only under the `failpoints` cargo feature — without
//! it every entry point in this module is an inlined no-op, so release
//! builds carry zero overhead and zero injected behavior.
//!
//! Determinism is the design constraint: the whole plan is driven by an
//! explicit seed and per-site hit counters, never by wall-clock time or
//! ambient randomness, so a chaos run replays identically. The faults a
//! site fires are a pure function of `(seed, site name, hit index)`;
//! thread interleaving can change *which worker* observes a fault but
//! never *how many* faults fire or at which hit indices.
//!
//! ```ignore
//! lightmirm_core::failpoint::configure(42);
//! lightmirm_core::failpoint::set(
//!     "serve::score_batch",
//!     FailMode::FirstK { k: 2, fault: Fault::Panic },
//! );
//! // ... drive the system; exactly two scoring dispatches panic ...
//! lightmirm_core::failpoint::clear();
//! ```

/// The injected behavior when a site fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic at the site (caught by the component's recovery path).
    Panic,
    /// Sleep this many milliseconds before continuing.
    Delay(u64),
    /// Surface an injected `std::io::Error` from the site.
    IoError,
}

/// When a configured site fires its fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FailMode {
    /// Never fire (same as removing the site's configuration).
    Off,
    /// Fire on every hit.
    Always(Fault),
    /// Fire on the first `k` hits, then go quiet.
    FirstK { k: u64, fault: Fault },
    /// Fire on every `n`-th hit (1-indexed: hits n, 2n, 3n, …).
    Every { n: u64, fault: Fault },
    /// Fire with probability `p` per hit, drawn from the site's seeded
    /// RNG — deterministic for a fixed seed and hit sequence.
    Prob { p: f64, fault: Fault },
}

#[cfg(feature = "failpoints")]
mod imp {
    use super::{FailMode, Fault};
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Mutex, OnceLock};

    struct Site {
        mode: FailMode,
        hits: u64,
        rng: u64,
    }

    struct Registry {
        seed: u64,
        sites: HashMap<String, Site>,
        log: Vec<String>,
    }

    static ENABLED: AtomicBool = AtomicBool::new(false);
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();

    fn registry() -> &'static Mutex<Registry> {
        REGISTRY.get_or_init(|| {
            Mutex::new(Registry {
                seed: 0,
                sites: HashMap::new(),
                log: Vec::new(),
            })
        })
    }

    fn lock() -> std::sync::MutexGuard<'static, Registry> {
        registry().lock().unwrap_or_else(|p| p.into_inner())
    }

    /// FNV-1a, so a site's RNG stream depends on its name.
    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Reset the plan: drop all sites and the fired-fault log, and fix
    /// the seed every subsequently `set` site derives its RNG from.
    pub fn configure(seed: u64) {
        let mut r = lock();
        r.seed = seed;
        r.sites.clear();
        r.log.clear();
        ENABLED.store(false, Ordering::SeqCst);
    }

    /// Configure one site's firing schedule.
    pub fn set(site: &str, mode: FailMode) {
        let mut r = lock();
        let rng = r.seed ^ fnv1a(site);
        r.sites
            .insert(site.to_string(), Site { mode, hits: 0, rng });
        ENABLED.store(true, Ordering::SeqCst);
    }

    /// Remove every site; all failpoints become no-ops again.
    pub fn clear() {
        let mut r = lock();
        r.sites.clear();
        ENABLED.store(false, Ordering::SeqCst);
    }

    /// The log of fired faults, as `"site hit=N fault"` lines, in fire
    /// order — the chaos run's replayable trace.
    pub fn fired_log() -> Vec<String> {
        lock().log.clone()
    }

    /// Evaluate a site: count the hit and return the fault to inject,
    /// if this hit fires.
    pub fn fire(site: &str) -> Option<Fault> {
        if !ENABLED.load(Ordering::Relaxed) {
            return None;
        }
        let mut r = lock();
        let s = r.sites.get_mut(site)?;
        s.hits += 1;
        let hit = s.hits;
        let fault = match s.mode {
            FailMode::Off => None,
            FailMode::Always(f) => Some(f),
            FailMode::FirstK { k, fault } => (hit <= k).then_some(fault),
            FailMode::Every { n, fault } => (n > 0 && hit % n == 0).then_some(fault),
            FailMode::Prob { p, fault } => {
                let draw = splitmix64(&mut s.rng) as f64 / u64::MAX as f64;
                (draw < p).then_some(fault)
            }
        };
        if let Some(f) = fault {
            r.log.push(format!("{site} hit={hit} {f:?}"));
        }
        fault
    }
}

#[cfg(feature = "failpoints")]
pub use imp::{clear, configure, fire, fired_log, set};

#[cfg(not(feature = "failpoints"))]
mod imp_noop {
    use super::{FailMode, Fault};

    #[inline(always)]
    pub fn configure(_seed: u64) {}
    #[inline(always)]
    pub fn set(_site: &str, _mode: FailMode) {}
    #[inline(always)]
    pub fn clear() {}
    #[inline(always)]
    pub fn fired_log() -> Vec<String> {
        Vec::new()
    }
    #[inline(always)]
    pub fn fire(_site: &str) -> Option<Fault> {
        None
    }
}

#[cfg(not(feature = "failpoints"))]
pub use imp_noop::{clear, configure, fire, fired_log, set};

/// Panic/delay site: panics or sleeps if the site fires with those
/// faults; an `IoError` fault at a non-I/O site is ignored.
#[inline]
pub fn pause_or_panic(site: &str) {
    match fire(site) {
        Some(Fault::Panic) => panic!("failpoint {site:?} injected panic"),
        Some(Fault::Delay(ms)) => std::thread::sleep(std::time::Duration::from_millis(ms)),
        Some(Fault::IoError) | None => {}
    }
}

/// I/O site: returns the injected error if the site fires with
/// `IoError`; `Panic`/`Delay` behave as at [`pause_or_panic`].
///
/// # Errors
///
/// The injected [`std::io::Error`] when the site fires.
#[inline]
pub fn io_point(site: &str) -> std::io::Result<()> {
    match fire(site) {
        Some(Fault::IoError) => Err(std::io::Error::other(format!(
            "failpoint {site:?} injected io error"
        ))),
        Some(Fault::Panic) => panic!("failpoint {site:?} injected panic"),
        Some(Fault::Delay(ms)) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            Ok(())
        }
        None => Ok(()),
    }
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;

    /// The registry is process-global; serialize tests that touch it.
    static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn schedules_are_deterministic_and_counted() {
        let _g = GUARD.lock().unwrap_or_else(|p| p.into_inner());
        configure(7);
        set(
            "a",
            FailMode::FirstK {
                k: 2,
                fault: Fault::Panic,
            },
        );
        set(
            "b",
            FailMode::Every {
                n: 3,
                fault: Fault::Delay(1),
            },
        );
        let fires_a: Vec<bool> = (0..5).map(|_| fire("a").is_some()).collect();
        let fires_b: Vec<bool> = (0..6).map(|_| fire("b").is_some()).collect();
        assert_eq!(fires_a, [true, true, false, false, false]);
        assert_eq!(fires_b, [false, false, true, false, false, true]);
        assert_eq!(fired_log().len(), 4);
        clear();
        assert_eq!(fire("a"), None);
    }

    #[test]
    fn prob_mode_replays_identically_for_a_seed() {
        let _g = GUARD.lock().unwrap_or_else(|p| p.into_inner());
        let run = |seed: u64| -> Vec<bool> {
            configure(seed);
            set(
                "p",
                FailMode::Prob {
                    p: 0.5,
                    fault: Fault::Panic,
                },
            );
            let v = (0..64).map(|_| fire("p").is_some()).collect();
            clear();
            v
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12), "different seeds should differ");
        let fired = run(11).iter().filter(|&&f| f).count();
        assert!((10..55).contains(&fired), "p=0.5 fired {fired}/64");
    }
}
