//! Nonlinear predictors under LightMIRM — the paper's footnote 3: unlike
//! IRMv1, the meta-learned formulation "does not assume the linearity of
//! the prediction model".
//!
//! This module delivers that generality:
//!
//! - [`EnvObjective`] abstracts what the bi-level loop needs from a model
//!   family: per-environment loss, gradient, and Hessian-vector product
//!   over a flat parameter vector;
//! - [`MlpModel`] is a one-hidden-layer tanh network over the multi-hot
//!   leaf features, with exact backprop gradients and a central
//!   finite-difference HVP (two extra gradient evaluations — the standard
//!   approximation when an R-operator is not implemented);
//! - [`light_mirm_generic`] runs Algorithm 2 against any [`EnvObjective`].
//!
//! The linear fast path in [`crate::trainers`] remains the production
//! trainer; a test here shows the MLP head solving a leaf-interaction
//! (XOR) problem that no linear head can represent, trained with the same
//! LightMIRM loop.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::env::EnvDataset;
use crate::lr::sigmoid;
use crate::mrq::MetaReplayQueue;
use crate::trainers::TrainConfig;

/// What the generic bi-level loop needs from a model family.
pub trait EnvObjective {
    /// Flat parameter dimension.
    fn dim(&self) -> usize;

    /// Mean loss of `theta` over the given rows.
    fn loss(&self, theta: &[f64], rows: &[u32]) -> f64;

    /// Gradient of [`EnvObjective::loss`], written into `out`.
    fn grad(&self, theta: &[f64], rows: &[u32], out: &mut [f64]);

    /// Hessian-vector product of the loss at `theta` applied to `v`.
    /// The default implementation is a central finite difference of the
    /// gradient — exact up to `O(ε²)` and always available.
    fn hvp(&self, theta: &[f64], rows: &[u32], v: &[f64], out: &mut [f64]) {
        let eps = 1e-5;
        let mut plus = theta.to_vec();
        let mut minus = theta.to_vec();
        for ((p, m), &vi) in plus.iter_mut().zip(minus.iter_mut()).zip(v) {
            *p += eps * vi;
            *m -= eps * vi;
        }
        let mut g_plus = vec![0.0; theta.len()];
        let mut g_minus = vec![0.0; theta.len()];
        self.grad(&plus, rows, &mut g_plus);
        self.grad(&minus, rows, &mut g_minus);
        for ((o, gp), gm) in out.iter_mut().zip(&g_plus).zip(&g_minus) {
            *o = (gp - gm) / (2.0 * eps);
        }
    }
}

/// The linear (logistic-regression) objective as an [`EnvObjective`] —
/// the production fast path expressed through the generic interface, used
/// to verify that [`light_mirm_generic`] and
/// [`crate::trainers::LightMirmTrainer`] are the same algorithm.
pub struct LinearObjective<'d> {
    data: &'d EnvDataset,
    /// L2 regularization.
    pub reg: f64,
}

impl<'d> LinearObjective<'d> {
    /// Build the linear objective over a dataset.
    pub fn new(data: &'d EnvDataset, reg: f64) -> Self {
        LinearObjective { data, reg }
    }
}

impl EnvObjective for LinearObjective<'_> {
    fn dim(&self) -> usize {
        self.data.n_cols()
    }

    fn loss(&self, theta: &[f64], rows: &[u32]) -> f64 {
        crate::lr::env_loss(theta, &self.data.x, &self.data.labels, rows, self.reg)
    }

    fn grad(&self, theta: &[f64], rows: &[u32], out: &mut [f64]) {
        crate::lr::env_grad(theta, &self.data.x, &self.data.labels, rows, self.reg, out);
    }

    fn hvp(&self, theta: &[f64], rows: &[u32], v: &[f64], out: &mut [f64]) {
        crate::lr::env_hvp(
            theta,
            &self.data.x,
            &self.data.labels,
            rows,
            self.reg,
            v,
            out,
        );
    }
}

/// A one-hidden-layer tanh MLP over multi-hot rows:
/// `p = σ(b₂ + w₂ · tanh(b₁ + W₁ x))`.
///
/// Parameters are flattened as `[W₁ (hidden × n_cols, row-major) | b₁ |
/// w₂ | b₂]`.
pub struct MlpModel<'d> {
    data: &'d EnvDataset,
    hidden: usize,
    /// L2 regularization.
    pub reg: f64,
}

impl<'d> MlpModel<'d> {
    /// Build an MLP objective over a dataset with `hidden` units.
    pub fn new(data: &'d EnvDataset, hidden: usize, reg: f64) -> Self {
        assert!(hidden >= 1, "need at least one hidden unit");
        MlpModel { data, hidden, reg }
    }

    /// Small random initialization (scaled by fan-in), seeded.
    pub fn init(&self, seed: u64) -> Vec<f64> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = self.data.n_cols();
        let scale = 1.0 / (self.data.x.nnz_per_row() as f64).sqrt();
        let mut theta = vec![0.0; self.dim()];
        for w in theta.iter_mut().take(self.hidden * n) {
            *w = (rng.gen::<f64>() - 0.5) * 2.0 * scale;
        }
        // b1 breaks hidden-unit symmetry; w2 starts small, b2 zero.
        for j in 0..self.hidden {
            theta[self.hidden * n + j] = (rng.gen::<f64>() - 0.5) * 0.2;
            theta[self.hidden * n + self.hidden + j] = (rng.gen::<f64>() - 0.5) * 0.2;
        }
        theta
    }

    fn split<'t>(&self, theta: &'t [f64]) -> (&'t [f64], &'t [f64], &'t [f64], f64) {
        let n = self.data.n_cols();
        let h = self.hidden;
        let (w1, rest) = theta.split_at(h * n);
        let (b1, rest) = rest.split_at(h);
        let (w2, rest) = rest.split_at(h);
        (w1, b1, w2, rest[0])
    }

    /// Forward pass for one row; returns `(hidden activations, p)`.
    fn forward(&self, theta: &[f64], row: usize, hidden_buf: &mut [f64]) -> f64 {
        let (w1, b1, w2, b2) = self.split(theta);
        let n = self.data.n_cols();
        let mut z = b2;
        for j in 0..self.hidden {
            let mut pre = b1[j];
            for &i in self.data.x.row(row) {
                pre += w1[j * n + i as usize];
            }
            let h = pre.tanh();
            hidden_buf[j] = h;
            z += w2[j] * h;
        }
        sigmoid(z)
    }

    /// Probability predictions for a row set.
    pub fn predict_rows(&self, theta: &[f64], rows: &[u32]) -> Vec<f64> {
        let mut hidden = vec![0.0; self.hidden];
        rows.iter()
            .map(|&r| self.forward(theta, r as usize, &mut hidden))
            .collect()
    }
}

impl EnvObjective for MlpModel<'_> {
    fn dim(&self) -> usize {
        self.hidden * self.data.n_cols() + 2 * self.hidden + 1
    }

    fn loss(&self, theta: &[f64], rows: &[u32]) -> f64 {
        assert!(!rows.is_empty(), "loss over an empty environment");
        let mut hidden = vec![0.0; self.hidden];
        let mut total = 0.0;
        for &r in rows {
            let p = self
                .forward(theta, r as usize, &mut hidden)
                .clamp(1e-12, 1.0 - 1e-12);
            let y = self.data.labels[r as usize] as f64;
            total -= y * p.ln() + (1.0 - y) * (1.0 - p).ln();
        }
        let mut loss = total / rows.len() as f64;
        if self.reg > 0.0 {
            loss += self.reg / 2.0 * theta.iter().map(|w| w * w).sum::<f64>();
        }
        loss
    }

    fn grad(&self, theta: &[f64], rows: &[u32], out: &mut [f64]) {
        assert!(!rows.is_empty(), "gradient over an empty environment");
        debug_assert_eq!(out.len(), self.dim());
        out.fill(0.0);
        let (_, _, w2, _) = self.split(theta);
        let n = self.data.n_cols();
        let h = self.hidden;
        let inv_n = 1.0 / rows.len() as f64;
        let mut hidden = vec![0.0; h];
        for &r in rows {
            let r = r as usize;
            let p = self.forward(theta, r, &mut hidden);
            let resid = (p - self.data.labels[r] as f64) * inv_n;
            // Output layer.
            out[h * n + h + h] += resid; // b2 (single trailing slot)
            for j in 0..h {
                out[h * n + h + j] += resid * hidden[j]; // w2
                let dpre = resid * w2[j] * (1.0 - hidden[j] * hidden[j]);
                out[h * n + j] += dpre; // b1
                for &i in self.data.x.row(r) {
                    out[j * n + i as usize] += dpre; // W1
                }
            }
        }
        if self.reg > 0.0 {
            for (o, &w) in out.iter_mut().zip(theta) {
                *o += self.reg * w;
            }
        }
    }
}

/// Algorithm 2 over any [`EnvObjective`]: environment sampling, the MRQ,
/// σ-weighted outer steps, gradients through the inner step via the
/// objective's HVP. Returns the trained flat parameter vector.
pub fn light_mirm_generic<O: EnvObjective>(
    objective: &O,
    data: &EnvDataset,
    theta0: Vec<f64>,
    config: &TrainConfig,
    mrq_len: usize,
    gamma: f64,
) -> Vec<f64> {
    let envs = data.active_envs();
    assert!(!envs.is_empty(), "no populated environment");
    let dim = objective.dim();
    assert_eq!(theta0.len(), dim, "theta0 must match the objective dim");
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut theta = theta0;
    let mut queues: Vec<MetaReplayQueue> =
        envs.iter().map(|_| MetaReplayQueue::new(mrq_len)).collect();

    let mut inner_grad = vec![0.0; dim];
    let mut u = vec![0.0; dim];
    let mut hvp_buf = vec![0.0; dim];
    let mut outer = vec![0.0; dim];

    for _epoch in 0..config.epochs {
        let mut theta_bars: Vec<Vec<f64>> = Vec::with_capacity(envs.len());
        let mut sampled: Vec<usize> = Vec::with_capacity(envs.len());
        for (i, &m) in envs.iter().enumerate() {
            objective.grad(&theta, data.env_rows(m), &mut inner_grad);
            let mut bar = theta.clone();
            for (b, &g) in bar.iter_mut().zip(&inner_grad) {
                *b -= config.inner_lr * g;
            }
            theta_bars.push(bar);
            let s_m = if envs.len() == 1 {
                m
            } else {
                loop {
                    let cand = envs[rng.gen_range(0..envs.len())];
                    if cand != m {
                        break cand;
                    }
                }
            };
            sampled.push(s_m);
            let loss = objective.loss(&theta_bars[i], data.env_rows(s_m));
            queues[i].push(loss);
        }
        let metas: Vec<f64> = queues.iter().map(|q| q.replayed_mean(gamma)).collect();
        let coefs = crate::trainers::sigma_coefficients(&metas, config.lambda);
        outer.fill(0.0);
        for (i, &m) in envs.iter().enumerate() {
            let w_new = queues[i].newest_weight(gamma);
            objective.grad(&theta_bars[i], data.env_rows(sampled[i]), &mut u);
            objective.hvp(&theta, data.env_rows(m), &u, &mut hvp_buf);
            let scale = coefs[i] * w_new;
            for ((o, &ui), &hv) in outer.iter_mut().zip(&u).zip(&hvp_buf) {
                *o += scale * (ui - config.inner_lr * hv);
            }
        }
        for (t, &g) in theta.iter_mut().zip(&outer) {
            *t -= config.outer_lr * g;
        }
    }
    theta
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::MultiHotMatrix;

    /// Two binary "leaf" features (columns 0/1 on or off via paired
    /// columns); label = XOR. A linear head cannot express XOR of leaf
    /// indicators; the MLP can.
    fn xor_world() -> EnvDataset {
        let mut idx = Vec::new();
        let mut labels = Vec::new();
        let mut envs = Vec::new();
        for k in 0..400usize {
            let a = (k / 2) % 2;
            let b = k % 2;
            // Columns: feature A -> 0 (off) / 1 (on); feature B -> 2/3.
            idx.extend_from_slice(&[a as u32, 2 + b as u32]);
            labels.push((a ^ b) as u8);
            envs.push((k % 2) as u16);
        }
        let x = MultiHotMatrix::new(idx, 2, 4).expect("well-formed");
        EnvDataset::new(x, labels, envs, vec!["e0".into(), "e1".into()]).expect("aligned")
    }

    fn fd_grad(model: &MlpModel<'_>, theta: &[f64], rows: &[u32]) -> Vec<f64> {
        let eps = 1e-6;
        (0..theta.len())
            .map(|i| {
                let mut plus = theta.to_vec();
                plus[i] += eps;
                let mut minus = theta.to_vec();
                minus[i] -= eps;
                (model.loss(&plus, rows) - model.loss(&minus, rows)) / (2.0 * eps)
            })
            .collect()
    }

    #[test]
    fn mlp_gradient_matches_finite_difference() {
        let data = xor_world();
        let model = MlpModel::new(&data, 3, 0.01);
        let theta = model.init(5);
        let rows = data.env_rows(0);
        let mut grad = vec![0.0; model.dim()];
        model.grad(&theta, rows, &mut grad);
        let fd = fd_grad(&model, &theta, rows);
        for (i, (g, f)) in grad.iter().zip(&fd).enumerate() {
            assert!((g - f).abs() < 1e-6, "grad[{i}]: {g} vs fd {f}");
        }
    }

    #[test]
    fn mlp_hvp_matches_directional_fd_of_gradient() {
        let data = xor_world();
        let model = MlpModel::new(&data, 3, 0.01);
        let theta = model.init(7);
        let rows = data.env_rows(1);
        let v: Vec<f64> = (0..model.dim())
            .map(|i| ((i % 5) as f64 - 2.0) / 5.0)
            .collect();
        let mut hv = vec![0.0; model.dim()];
        model.hvp(&theta, rows, &v, &mut hv);
        // vᵀHv must match the second directional derivative of the loss.
        let eps = 1e-4;
        let step = |s: f64| -> Vec<f64> { theta.iter().zip(&v).map(|(t, d)| t + s * d).collect() };
        let second_dir = (model.loss(&step(eps), rows) - 2.0 * model.loss(&theta, rows)
            + model.loss(&step(-eps), rows))
            / (eps * eps);
        let vhv: f64 = v.iter().zip(&hv).map(|(a, b)| a * b).sum();
        assert!(
            (vhv - second_dir).abs() < 1e-3 * (1.0 + second_dir.abs()),
            "vHv {vhv} vs directional {second_dir}"
        );
    }

    #[test]
    fn linear_head_cannot_learn_xor_but_mlp_can() {
        let data = xor_world();
        let rows = data.all_rows();
        let labels = &data.labels;

        // Linear head (the production trainer) plateaus at chance.
        let linear = crate::trainers::LightMirmTrainer::new(TrainConfig {
            epochs: 200,
            inner_lr: 0.2,
            outer_lr: 0.5,
            momentum: 0.0,
            reg: 0.0,
            ..Default::default()
        })
        .fit(&data, None);
        let linear_acc = linear
            .model
            .predict_rows(&data.x, &rows, &data.env_ids)
            .iter()
            .zip(labels)
            .filter(|&(&p, &y)| (p >= 0.5) == (y != 0))
            .count() as f64
            / rows.len() as f64;
        assert!(
            linear_acc < 0.6,
            "a linear head must not solve XOR (acc {linear_acc})"
        );

        // MLP head under the same LightMIRM loop solves it.
        let model = MlpModel::new(&data, 6, 1e-5);
        let theta = light_mirm_generic(
            &model,
            &data,
            model.init(3),
            &TrainConfig {
                epochs: 400,
                inner_lr: 0.3,
                outer_lr: 1.5,
                lambda: 0.1,
                momentum: 0.0,
                reg: 0.0,
                seed: 3,
            },
            5,
            0.9,
        );
        let mlp_acc = model
            .predict_rows(&theta, &rows)
            .iter()
            .zip(labels)
            .filter(|&(&p, &y)| (p >= 0.5) == (y != 0))
            .count() as f64
            / rows.len() as f64;
        assert!(
            mlp_acc > 0.95,
            "the MLP head should solve XOR under LightMIRM (acc {mlp_acc})"
        );
    }

    #[test]
    fn generic_loop_with_linear_objective_matches_production_trainer() {
        // The same seeds drive the same sampling sequence, so the generic
        // loop over LinearObjective must reproduce LightMirmTrainer's
        // weights bit for bit.
        let data = xor_world();
        let cfg = TrainConfig {
            epochs: 12,
            inner_lr: 0.2,
            outer_lr: 0.4,
            lambda: 0.5,
            reg: 1e-3,
            momentum: 0.0,
            seed: 21,
        };
        let production = crate::trainers::LightMirmTrainer::new(cfg.clone()).fit(&data, None);
        let objective = LinearObjective::new(&data, cfg.reg);
        let generic =
            light_mirm_generic(&objective, &data, vec![0.0; objective.dim()], &cfg, 5, 0.9);
        assert_eq!(production.model.global().weights, generic);
    }

    #[test]
    fn generic_loop_is_deterministic() {
        let data = xor_world();
        let model = MlpModel::new(&data, 3, 1e-4);
        let cfg = TrainConfig {
            epochs: 10,
            momentum: 0.0,
            ..Default::default()
        };
        let a = light_mirm_generic(&model, &data, model.init(9), &cfg, 5, 0.9);
        let b = light_mirm_generic(&model, &data, model.init(9), &cfg, 5, 0.9);
        assert_eq!(a, b);
    }

    #[test]
    fn predictions_are_probabilities() {
        let data = xor_world();
        let model = MlpModel::new(&data, 4, 0.0);
        let theta = model.init(11);
        for p in model.predict_rows(&theta, &data.all_rows()) {
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
