//! Observability must be observation-only: model outputs are
//! bit-identical whether metrics/tracing are recording or not, and
//! whether any trace sink is attached.
//!
//! The sibling of `parallel_determinism.rs`: that test proves thread
//! count cannot change outputs; this one proves instrumentation cannot.
//! Within one compiled configuration it varies everything that can vary
//! at runtime (sinks attached/detached, registry populated/reset,
//! repeated runs). Across the `obs` feature boundary the guarantee is
//! `cfg`-folding — `obs::enabled()` is `const` — and CI runs this suite
//! with the feature both on and off; the weights asserted here are also
//! pinned against literal goldens so the two CI configurations cannot
//! silently diverge from each other.

use std::sync::Arc;

use lightmirm_core::obs;
use lightmirm_core::prelude::*;
use lightmirm_core::trainers::TrainConfig;

/// The anti-causal toy used across the trainer tests: invariant leaves
/// 0/1, spurious leaves 2/3 flipping in the last environment.
fn toy(rows_per_env: &[usize]) -> EnvDataset {
    let mut idx = Vec::new();
    let mut labels = Vec::new();
    let mut envs = Vec::new();
    let mut counter = 0usize;
    for (env, &n) in rows_per_env.iter().enumerate() {
        for _ in 0..n {
            counter += 1;
            let y = (counter % 2) as u8;
            let noise = counter.wrapping_mul(2654435761).is_multiple_of(4);
            let inv = if (y == 1) != noise { 0u32 } else { 1 };
            let spur_aligned = env < 2;
            let spur = if (y == 1) == spur_aligned { 2u32 } else { 3 };
            idx.extend_from_slice(&[inv, spur]);
            labels.push(y);
            envs.push(env as u16);
        }
    }
    let x = MultiHotMatrix::new(idx, 2, 4).unwrap();
    let names = (0..rows_per_env.len()).map(|i| format!("e{i}")).collect();
    EnvDataset::new(x, labels, envs, names).unwrap()
}

fn cfg() -> TrainConfig {
    TrainConfig {
        epochs: 12,
        inner_lr: 0.3,
        outer_lr: 1.0,
        lambda: 0.5,
        reg: 1e-4,
        momentum: 0.0,
        seed: 5,
    }
}

fn weight_bits(weights: &[f64]) -> Vec<u64> {
    weights.iter().map(|w| w.to_bits()).collect()
}

fn train_all(data: &EnvDataset) -> Vec<Vec<u64>> {
    vec![
        weight_bits(
            &LightMirmTrainer::new(cfg())
                .fit(data, None)
                .model
                .global()
                .weights,
        ),
        weight_bits(
            &MetaIrmTrainer::new(cfg())
                .fit(data, None)
                .model
                .global()
                .weights,
        ),
        weight_bits(
            &ErmTrainer::new(cfg())
                .fit(data, None)
                .model
                .global()
                .weights,
        ),
    ]
}

#[test]
fn outputs_are_bit_identical_with_any_sink_attached() {
    let data = toy(&[120, 120, 80]);

    // 1. Bare: whatever state the global tracer/registry are in.
    let bare = train_all(&data);

    // 2. With a JSON-lines file sink attached (every span is serialized
    //    and written while training runs).
    let path = std::env::temp_dir().join("lightmirm-obs-determinism-trace.jsonl");
    let sink = obs::JsonLinesSink::create(&path).expect("trace file");
    let id = obs::tracer().add_sink(Arc::new(sink));
    let with_file_sink = train_all(&data);
    obs::tracer().remove_sink(id);

    // 3. With the no-op sink (exercises the fan-out path alone).
    let id = obs::tracer().add_sink(Arc::new(obs::NoopSink));
    let with_noop_sink = train_all(&data);
    obs::tracer().remove_sink(id);

    // 4. Detached again.
    let detached = train_all(&data);

    assert_eq!(bare, with_file_sink, "JSON-lines sink perturbed training");
    assert_eq!(bare, with_noop_sink, "no-op sink perturbed training");
    assert_eq!(bare, detached, "sink removal perturbed training");

    // With the feature on, the file sink must actually have seen spans —
    // otherwise this test proved nothing about the recording path.
    if obs::enabled() {
        let trace = std::fs::read_to_string(&path).expect("trace readable");
        assert!(
            trace.lines().any(|l| l.contains("inner_step")),
            "expected inner_step spans in the trace, got {} lines",
            trace.lines().count()
        );
    }
}

#[test]
fn outputs_are_bit_identical_across_registry_states() {
    let data = toy(&[100, 100]);
    let first = train_all(&data);
    // A populated registry (handles now exist and hold counts) must not
    // change anything; nor must clearing it mid-stream.
    let second = train_all(&data);
    obs::registry().reset();
    let third = train_all(&data);
    assert_eq!(first, second, "registry population perturbed training");
    assert_eq!(first, third, "registry reset perturbed training");
}

#[test]
fn golden_weights_match_across_feature_configurations() {
    // Literal goldens: CI runs this test with `obs` on AND off; both
    // configurations must land on these exact bits. (If an intentional
    // numeric change lands, regenerate with the printed actual values —
    // in BOTH configurations.)
    let data = toy(&[60, 60]);
    let out = LightMirmTrainer::new(cfg()).fit(&data, None);
    let got = weight_bits(&out.model.global().weights);
    let golden_file = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/obs_determinism_weights.txt"
    );
    let rendered = got
        .iter()
        .map(|b| format!("{b:016x}"))
        .collect::<Vec<_>>()
        .join(" ");
    if std::env::var_os("LIGHTMIRM_BLESS").is_some() {
        std::fs::write(golden_file, format!("{rendered}\n")).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(golden_file).unwrap_or_else(|e| {
        panic!("missing golden snapshot {golden_file} ({e}); regenerate with LIGHTMIRM_BLESS=1")
    });
    let expected_bits: Vec<u64> = expected
        .split_whitespace()
        .map(|t| u64::from_str_radix(t, 16).expect("hex weight"))
        .collect();
    assert_eq!(
        got, expected_bits,
        "weights diverged from golden; if intentional, regenerate with \
         LIGHTMIRM_BLESS=1 in BOTH feature configurations (actual: {rendered})"
    );
}
