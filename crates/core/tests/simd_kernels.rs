//! Bit-exactness of the vectorized row-block kernel backend.
//!
//! The `simd` backend promises to be an *implementation detail*: for any
//! shape (including odd tails and row counts that are not a multiple of
//! `BLOCK_ROWS`), any thread count, and any kernel, it must produce the
//! same bits as the portable scalar backend — and, on a single chunk, the
//! same bits as the serial reference in `lr`. These tests enforce that
//! promise with property tests over random shapes and with full trainer
//! runs forced onto each backend.
//!
//! Tests that flip the process-wide backend override serialize on
//! [`BACKEND_LOCK`]; everything else pins the backend per call via the
//! `_on` kernel variants, which need no global state.

use lightmirm_core::kernels::{
    env_grad_on, env_loss_grad_cached_on, env_loss_grad_on, env_loss_on, hvp_from_logits_on,
    predict_rows_into_on,
};
use lightmirm_core::prelude::*;
use lightmirm_core::simd::{clear_forced_backend, force_backend};
use lightmirm_core::trainers::TrainConfig;
use proptest::prelude::*;
use rayon::ThreadPoolBuilder;
use std::sync::Mutex;

/// Serializes tests that set the process-wide forced backend.
static BACKEND_LOCK: Mutex<()> = Mutex::new(());

/// Deterministic multi-hot instance: `rows` rows, `nnz` active columns
/// each, hashed indices, alternating-ish labels.
fn instance(rows: usize, n_cols: usize, nnz: usize, seed: u64) -> (MultiHotMatrix, Vec<u8>) {
    let idx: Vec<u32> = (0..rows * nnz)
        .map(|i| {
            let h = (i as u64 + 1).wrapping_mul(seed | 1).rotate_left(17);
            (h % n_cols as u64) as u32
        })
        .collect();
    let x = MultiHotMatrix::new(idx, nnz, n_cols).expect("well-formed");
    let y: Vec<u8> = (0..rows)
        .map(|i| ((i as u64).wrapping_mul(seed | 1) >> 7).is_multiple_of(3) as u8)
        .collect();
    (x, y)
}

fn theta_for(n_cols: usize, seed: u64) -> Vec<f64> {
    (0..n_cols)
        .map(|i| ((i as f64) * 0.37 - 1.2) * (0.1 + (seed % 7) as f64 * 0.15))
        .collect()
}

/// Every kernel on one backend, returning all outputs for comparison.
type KernelOutputs = (f64, Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>, f64);

fn run_all(
    backend: Backend,
    x: &MultiHotMatrix,
    y: &[u8],
    theta: &[f64],
    rows: &[u32],
    reg: f64,
) -> KernelOutputs {
    let n = theta.len();
    let v: Vec<f64> = (0..n).map(|i| 0.21 * i as f64 - 0.9).collect();
    let mut grad = vec![0.0; n];
    let mut logits = vec![0.0; rows.len()];
    let loss = env_loss_grad_cached_on(backend, theta, x, y, rows, reg, &mut grad, &mut logits);
    let mut hvp = vec![0.0; n];
    hvp_from_logits_on(backend, &logits, x, rows, reg, &v, &mut hvp);
    let mut preds = vec![0.0; rows.len()];
    predict_rows_into_on(backend, theta, x, rows, &mut preds);
    let mut g2 = vec![0.0; n];
    env_grad_on(backend, theta, x, y, rows, reg, &mut g2);
    let l2 = env_loss_on(backend, theta, x, y, rows, reg);
    (loss, grad, logits, hvp, preds, g2, l2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SIMD == scalar to the bit across random shapes: row counts that
    /// are not multiples of the block width, nnz from 1 (degenerate) up
    /// past a vector register, shuffled row subsets, with and without L2.
    #[test]
    fn simd_matches_scalar_bitwise(
        rows in 1usize..600,
        n_cols in 2usize..40,
        nnz in 1usize..20,
        seed in 0u64..1000,
        reg_choice in 0usize..3,
    ) {
        let reg = [0.0, 0.05, 1.3][reg_choice];
        let (x, y) = instance(rows, n_cols, nnz, seed);
        let theta = theta_for(n_cols, seed);
        // Shuffled subset so gathers are not contiguous.
        let mut subset: Vec<u32> = (0..rows as u32).collect();
        subset.reverse();
        subset.rotate_left(seed as usize % rows);
        let simd = run_all(Backend::Simd, &x, &y, &theta, &subset, reg);
        let scalar = run_all(Backend::Scalar, &x, &y, &theta, &subset, reg);
        prop_assert_eq!(simd, scalar);
    }

    /// On a single chunk, the SIMD backend is bit-identical to the serial
    /// reference implementations in `lr` (the chunked-reduction contract
    /// from PR 1, extended to the blocked backend).
    #[test]
    fn simd_matches_serial_reference_bitwise(
        rows in 1usize..300,
        nnz in 1usize..12,
        seed in 0u64..1000,
    ) {
        let n_cols = 16;
        let (x, y) = instance(rows, n_cols, nnz, seed);
        let theta = theta_for(n_cols, seed);
        let all: Vec<u32> = (0..rows as u32).collect();
        let mut grad = vec![0.0; n_cols];
        let loss = env_loss_grad_on(Backend::Simd, &theta, &x, &y, &all, 0.1, &mut grad);
        let mut ref_grad = vec![0.0; n_cols];
        env_grad(&theta, &x, &y, &all, 0.1, &mut ref_grad);
        prop_assert_eq!(loss, env_loss(&theta, &x, &y, &all, 0.1));
        prop_assert_eq!(grad, ref_grad);
    }
}

/// Multi-chunk shapes stay backend-invariant under rayon pools of 1 and
/// 4 workers (the chunk merge is ordered, the backend only changes the
/// inner loop).
#[test]
fn simd_is_thread_and_backend_invariant_across_chunks() {
    let rows = CHUNK_ROWS * 2 + 777; // three chunks, odd tail
    let (x, y) = instance(rows, 48, 8, 5);
    let theta = theta_for(48, 5);
    let all: Vec<u32> = (0..rows as u32).collect();
    let mut outputs = Vec::new();
    for threads in [1usize, 4] {
        let pool = ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        for backend in [Backend::Simd, Backend::Scalar] {
            outputs.push(pool.install(|| run_all(backend, &x, &y, &theta, &all, 0.01)));
        }
    }
    for other in &outputs[1..] {
        assert_eq!(&outputs[0], other);
    }
}

/// Full trainer trajectories are identical under the forced SIMD and
/// scalar backends — the acceptance criterion stated directly.
#[test]
fn trainer_trajectories_identical_across_backends() {
    let _guard = BACKEND_LOCK.lock().expect("backend lock");
    let n_envs = 3u16;
    let rows_per_env = 900usize;
    let n_cols = 24;
    let nnz = 4;
    let mut idx = Vec::new();
    let mut labels = Vec::new();
    let mut envs = Vec::new();
    for env in 0..n_envs {
        for r in 0..rows_per_env {
            let h = ((r as u64 + 1) << 3 | env as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            for j in 0..nnz {
                idx.push(((h >> (13 + 5 * j)) % n_cols as u64) as u32);
            }
            labels.push(((h >> 9) % 5 < 2) as u8);
            envs.push(env);
        }
    }
    let x = MultiHotMatrix::new(idx, nnz, n_cols).expect("well-formed");
    let names = (0..n_envs).map(|e| format!("env{e}")).collect();
    let data = EnvDataset::new(x, labels, envs, names).expect("aligned");
    let cfg = TrainConfig {
        epochs: 5,
        inner_lr: 0.3,
        outer_lr: 0.7,
        lambda: 0.5,
        reg: 1e-3,
        momentum: 0.9,
        seed: 11,
    };
    let fit_on = |backend: Backend| {
        force_backend(backend);
        let light = LightMirmTrainer::new(cfg.clone()).fit(&data, None);
        let meta = MetaIrmTrainer::new(cfg.clone()).fit(&data, None);
        let erm = ErmTrainer::new(cfg.clone()).fit(&data, None);
        clear_forced_backend();
        (
            light.model.global().weights.clone(),
            meta.model.global().weights.clone(),
            erm.model.global().weights.clone(),
        )
    };
    let simd = fit_on(Backend::Simd);
    let scalar = fit_on(Backend::Scalar);
    assert!(simd.0.iter().any(|w| *w != 0.0), "training must move θ");
    assert_eq!(simd, scalar);
}

/// Serve-path scoring (shared `dot_rows_into` inner loop) is backend-
/// invariant on shuffled row subsets with a non-multiple-of-8 length.
#[test]
fn dot_rows_into_backend_invariant_on_subsets() {
    let (x, _) = instance(101, 30, 7, 42);
    let theta = theta_for(30, 42);
    let rows: Vec<u32> = (0..101u32).filter(|r| r % 3 != 1).collect();
    let mut blocked = vec![0.0; rows.len()];
    let mut scalar = vec![0.0; rows.len()];
    x.dot_rows_into_on(Backend::Simd, &rows, &theta, &mut blocked);
    x.dot_rows_into_on(Backend::Scalar, &rows, &theta, &mut scalar);
    assert_eq!(blocked, scalar);
}

/// The env-var dispatch accepts the documented names and the forced
/// override wins over everything.
#[test]
fn forced_backend_overrides_default() {
    let _guard = BACKEND_LOCK.lock().expect("backend lock");
    force_backend(Backend::Scalar);
    assert_eq!(lightmirm_core::simd::backend(), Backend::Scalar);
    force_backend(Backend::Simd);
    assert_eq!(lightmirm_core::simd::backend(), Backend::Simd);
    clear_forced_backend();
}
