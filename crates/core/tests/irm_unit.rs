//! The synthetic-SEM invariance battery.
//!
//! Each test draws data from a two-environment linear structural
//! equation model (SEM) with one invariant cause and one spurious
//! feature whose correlation with the label **flips sign** across
//! environments while staying positive in the pooled data. A pooled
//! (ERM) fit latches onto the spurious feature; an invariance-seeking
//! trainer (meta-IRM, LightMIRM) must not. The battery pins both
//! directions:
//!
//! - LightMIRM and meta-IRM drive the spurious weight toward zero;
//! - ERM demonstrably does NOT (the inverted assertion — if ERM ever
//!   stops loading on the spurious feature, the SEM no longer
//!   discriminates and every other test here is vacuous);
//! - `λ → 0` collapses LightMIRM back to ERM-like weights, confirming
//!   the invariance penalty — not the meta machinery — is what does the
//!   work.
//!
//! The SEM itself lives in `lightmirm_core::sem` (shared with the
//! stress-lab scorecard in `lightmirm-experiments`); see that module's
//! docs for the generative model. All specs here use seed 0, which is
//! bit-identical to the private helper this file used to carry — same
//! draws, same verdicts.

use lightmirm_core::prelude::*;
use lightmirm_core::sem::{canonical_battery, log_loss, spurious_ratio, SemSpec};
use lightmirm_core::trainers::TrainConfig;

/// The canonical battery instance: the spurious correlation flips from
/// +0.9 to −0.2 across two equal environments (env-mean ≈ +0.35). The
/// asymmetric magnitudes matter: a symmetric `±ρ` flip is already
/// cancelled by env-balanced gradient averaging (λ = 0 would look
/// invariant for the wrong reason); here, only the meta-loss σ penalty
/// can reject the spurious feature, which is exactly what the battery
/// must isolate.
fn sem_battery() -> EnvDataset {
    canonical_battery().sample()
}

fn cfg(lambda: f64) -> TrainConfig {
    TrainConfig {
        epochs: 60,
        inner_lr: 0.3,
        outer_lr: 1.0,
        lambda,
        reg: 1e-4,
        momentum: 0.0,
        seed: 5,
    }
}

#[test]
fn erm_latches_onto_the_spurious_feature() {
    // The inverted assertion: ERM MUST fail invariance here. If this
    // stops holding, the SEM has lost its spurious pooled correlation
    // and the rest of the battery proves nothing.
    let data = sem_battery();
    let erm = ErmTrainer::new(cfg(0.5)).fit(&data, None);
    let r = spurious_ratio(erm.model.global());
    assert!(
        r > 0.25,
        "ERM spurious ratio {r:.3} too low — the SEM no longer tempts a pooled fit"
    );
}

#[test]
fn light_mirm_drives_the_spurious_weight_toward_zero() {
    let data = sem_battery();
    let erm = ErmTrainer::new(cfg(0.5)).fit(&data, None);
    let light = LightMirmTrainer::new(cfg(0.5)).fit(&data, None);
    let r_erm = spurious_ratio(erm.model.global());
    let r_light = spurious_ratio(light.model.global());
    assert!(
        r_light < 0.15,
        "LightMIRM spurious ratio {r_light:.3} should be near zero"
    );
    assert!(
        r_light < 0.5 * r_erm,
        "LightMIRM ({r_light:.3}) should cut ERM's spurious reliance ({r_erm:.3}) at least in half"
    );
}

#[test]
fn meta_irm_drives_the_spurious_weight_toward_zero() {
    let data = sem_battery();
    let erm = ErmTrainer::new(cfg(0.5)).fit(&data, None);
    let meta = MetaIrmTrainer::new(cfg(0.5)).fit(&data, None);
    let r_erm = spurious_ratio(erm.model.global());
    let r_meta = spurious_ratio(meta.model.global());
    assert!(
        r_meta < 0.15,
        "meta-IRM spurious ratio {r_meta:.3} should be near zero"
    );
    assert!(
        r_meta < 0.5 * r_erm,
        "meta-IRM ({r_meta:.3}) should cut ERM's spurious reliance ({r_erm:.3}) at least in half"
    );
}

#[test]
fn lambda_zero_recovers_erm_like_weights() {
    // With λ = 0 the meta-loss σ penalty vanishes and LightMIRM should
    // exploit the pooled spurious correlation just like ERM — the
    // invariance comes from the penalty, not the meta plumbing.
    let data = sem_battery();
    let erm = ErmTrainer::new(cfg(0.0)).fit(&data, None);
    let light0 = LightMirmTrainer::new(cfg(0.0)).fit(&data, None);
    let r_erm = spurious_ratio(erm.model.global());
    let r_light0 = spurious_ratio(light0.model.global());
    assert!(
        r_light0 > 0.6 * r_erm,
        "λ=0 LightMIRM ({r_light0:.3}) should stay in ERM's spurious regime ({r_erm:.3})"
    );
}

#[test]
fn invariance_transfers_to_an_unseen_flipped_environment() {
    // Deploy-time claim behind the paper's loan setting: a model that
    // ignored the spurious feature keeps discriminating when a new
    // environment reverses it; the pooled fit degrades.
    let train = sem_battery();
    let erm = ErmTrainer::new(cfg(0.5)).fit(&train, None);
    let light = LightMirmTrainer::new(cfg(0.5)).fit(&train, None);

    // A held-out environment where the spurious correlation is strongly
    // reversed relative to the pooled training data. 0/1 accuracy is too
    // coarse here — both models' decisions follow the invariant feature's
    // sign — but the spurious weight corrupts ERM's *probabilities*, so
    // log-loss separates them.
    let test = SemSpec::flip(&[600], 0.5, &[-0.9]).sample();
    let ll_erm = log_loss(&erm.model, &test);
    let ll_light = log_loss(&light.model, &test);
    assert!(
        ll_light < ll_erm,
        "LightMIRM log-loss ({ll_light:.3}) should beat ERM's ({ll_erm:.3}) on the flipped environment"
    );
    // The invariant-only optimum at ρ_inv = 0.5 is the Bernoulli(0.75)
    // entropy ≈ 0.562 nats; the invariant learner should land near it.
    assert!(
        ll_light < 0.65,
        "LightMIRM log-loss {ll_light:.3} should approach the invariant ceiling (≈0.562)"
    );
}

#[test]
fn battery_is_robust_across_sem_resamples() {
    // Shift the hash salt stream by regenerating with different sizes:
    // the qualitative ordering must not hinge on one lucky draw.
    for sizes in [[200usize, 200], [500, 500], [400, 300]] {
        let data = SemSpec::flip(&sizes, 0.5, &[0.9, -0.2]).sample();
        let erm = ErmTrainer::new(cfg(0.5)).fit(&data, None);
        let light = LightMirmTrainer::new(cfg(0.5)).fit(&data, None);
        let r_erm = spurious_ratio(erm.model.global());
        let r_light = spurious_ratio(light.model.global());
        assert!(
            r_light < r_erm,
            "sizes {sizes:?}: LightMIRM ({r_light:.3}) must stay below ERM ({r_erm:.3})"
        );
    }
}
