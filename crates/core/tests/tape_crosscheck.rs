//! End-to-end cross-check of the production meta-IRM trainer against the
//! generic autodiff engine.
//!
//! The trainer computes the outer gradient with closed forms (analytic
//! env gradients plus one Hessian-vector product per environment). Here
//! the *entire* outer objective of Algorithm 1 —
//! `L(θ) = 1/M Σ_m R_meta(θ̄_m(θ)) + λ σ(θ)` with
//! `θ̄_m = θ − α ∇R^m(θ)` — is instead built as one differentiable tape
//! expression, and a single reverse pass must reproduce the trainer's
//! first update step exactly (up to float noise).

use lightmirm_autodiff::{functional::bce_with_logits, Tape, Var};
use lightmirm_core::prelude::*;
use lightmirm_core::trainers::TrainConfig;

/// A small 3-environment world with both-class labels per environment.
fn tiny_world() -> EnvDataset {
    let n_cols = 5;
    let mut idx = Vec::new();
    let mut labels = Vec::new();
    let mut envs = Vec::new();
    let mut k = 0u64;
    for env in 0..3u16 {
        for _ in 0..30 {
            k += 1;
            // Hash-driven labels and index pairs, biased per environment,
            // so gradients at θ = 0 are nonzero and differ across envs.
            let h = k.wrapping_mul(0x9E3779B97F4A7C15) ^ (env as u64) << 17;
            let y = ((h >> 7) % 10 < 3 + 2 * env as u64) as u8;
            let a = ((h >> 13) % n_cols as u64) as u32;
            let b = ((h >> 29) % n_cols as u64) as u32;
            idx.extend_from_slice(&[a, b]);
            labels.push(y);
            envs.push(env);
        }
    }
    let x = MultiHotMatrix::new(idx, 2, n_cols).expect("well-formed");
    EnvDataset::new(x, labels, envs, vec!["a".into(), "b".into(), "c".into()]).expect("aligned")
}

/// Dense row-major matrix of one environment's rows.
fn densify_env(data: &EnvDataset, env: usize) -> (Vec<f64>, Vec<f64>, usize) {
    let rows = data.env_rows(env);
    let mut x = Vec::with_capacity(rows.len() * data.n_cols());
    let mut y = Vec::with_capacity(rows.len());
    for &r in rows {
        x.extend(data.x.densify_row(r as usize));
        y.push(data.labels[r as usize] as f64);
    }
    (x, y, rows.len())
}

/// `R^m(θ)` as a tape expression: BCE over the env's dense rows plus the
/// L2 term.
fn env_loss_on_tape<'t>(
    tape: &'t Tape,
    x: &[f64],
    y: &[f64],
    rows: usize,
    cols: usize,
    theta: Var<'t>,
    reg: f64,
) -> Var<'t> {
    let z = tape.matvec(x, rows, cols, theta);
    let bce = bce_with_logits(tape, z, y);
    let sq = tape.mul(theta, theta);
    let l2 = tape.sum(sq);
    let penalty = tape.scale(l2, reg / 2.0);
    tape.add(bce, penalty)
}

#[test]
fn trainer_outer_step_matches_full_tape_gradient() {
    let data = tiny_world();
    let config = TrainConfig {
        epochs: 1,
        inner_lr: 0.25,
        outer_lr: 1.0,
        lambda: 0.6,
        reg: 0.05,
        momentum: 0.0,
        seed: 4,
    };

    // Production trainer: one outer step from θ = 0 gives θ₁ = −β ∇L(0).
    let out = MetaIrmTrainer::new(config.clone()).fit(&data, None);
    let stepped = &out.model.global().weights;

    // Tape: build L(θ) at θ = 0 in one graph and take one reverse pass.
    let n_cols = data.n_cols();
    let envs = data.active_envs();
    let dense: Vec<(Vec<f64>, Vec<f64>, usize)> =
        envs.iter().map(|&m| densify_env(&data, m)).collect();

    let tape = Tape::new();
    let theta = tape.input(vec![0.0; n_cols]);

    // Inner steps: θ̄_m = θ − α ∇R^m(θ), with the inner gradient produced
    // by the tape itself (create_graph) so second-order terms flow.
    let mut theta_bars = Vec::new();
    for (x, y, rows) in &dense {
        let inner = env_loss_on_tape(&tape, x, y, *rows, n_cols, theta, config.reg);
        let grad = tape.backward(inner, &[theta], true)[0];
        let scaled = tape.scale(grad, config.inner_lr);
        theta_bars.push(tape.sub(theta, scaled));
    }

    // Meta losses: mean over the other environments, evaluated at θ̄_m.
    let mut metas = Vec::new();
    for (i, &bar) in theta_bars.iter().enumerate() {
        let mut sum: Option<Var<'_>> = None;
        let mut count = 0.0;
        for (j, (x, y, rows)) in dense.iter().enumerate() {
            if i == j {
                continue;
            }
            let term = env_loss_on_tape(&tape, x, y, *rows, n_cols, bar, config.reg);
            sum = Some(match sum {
                Some(s) => tape.add(s, term),
                None => term,
            });
            count += 1.0;
        }
        metas.push(tape.scale(sum.expect("≥2 envs"), 1.0 / count));
    }

    // Outer objective: mean of metas + λ·σ (paper Eq. (7): 1/M inside).
    let m = metas.len() as f64;
    let mut total: Option<Var<'_>> = None;
    for &r in &metas {
        total = Some(match total {
            Some(t) => tape.add(t, r),
            None => r,
        });
    }
    let mean = tape.scale(total.expect("nonempty"), 1.0 / m);
    let mut var_sum: Option<Var<'_>> = None;
    for &r in &metas {
        let d = tape.sub(r, mean);
        let sq = tape.mul(d, d);
        var_sum = Some(match var_sum {
            Some(v) => tape.add(v, sq),
            None => sq,
        });
    }
    let variance = tape.scale(var_sum.expect("nonempty"), 1.0 / m);
    let sigma = tape.sqrt(variance);
    let sigma_term = tape.scale(sigma, config.lambda);
    let objective = tape.add(mean, sigma_term);

    let grad = tape.backward(objective, &[theta], false)[0].value();
    for (i, (&s, &g)) in stepped.iter().zip(&grad).enumerate() {
        let expected = -config.outer_lr * g;
        assert!(
            (s - expected).abs() < 1e-9,
            "θ₁[{i}]: trainer {s:.10} vs tape {expected:.10}"
        );
    }
}

#[test]
fn light_mirm_first_step_matches_tape_gradient() {
    // For LightMIRM's first iteration every queue holds exactly one
    // sampled loss, so R_meta(θ̄_m) = R^{s_m}(θ̄_m) exactly and the full
    // objective is expressible on the tape once the sampled environments
    // are known. We recover them from the trainer's determinism: re-run
    // the same seeded RNG sequence it uses.
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    let data = tiny_world();
    let config = TrainConfig {
        epochs: 1,
        inner_lr: 0.2,
        outer_lr: 1.0,
        lambda: 0.3,
        reg: 0.02,
        momentum: 0.0,
        seed: 11,
    };
    let out = LightMirmTrainer::new(config.clone()).fit(&data, None);
    let stepped = &out.model.global().weights;

    // Reproduce the trainer's sampling: for each env position in order,
    // one index-shift draw over the other M−1 environments (the trainer's
    // exact procedure and RNG — one `gen_range` per environment).
    let envs = data.active_envs();
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let sampled: Vec<usize> = (0..envs.len())
        .map(|i| {
            let j = rng.gen_range(0..envs.len() - 1);
            envs[if j >= i { j + 1 } else { j }]
        })
        .collect();

    let n_cols = data.n_cols();
    let dense: Vec<(Vec<f64>, Vec<f64>, usize)> =
        envs.iter().map(|&m| densify_env(&data, m)).collect();
    let tape = Tape::new();
    let theta = tape.input(vec![0.0; n_cols]);
    let mut metas = Vec::new();
    for (i, _) in envs.iter().enumerate() {
        let (x, y, rows) = &dense[i];
        let inner = env_loss_on_tape(&tape, x, y, *rows, n_cols, theta, config.reg);
        let grad = tape.backward(inner, &[theta], true)[0];
        let scaled = tape.scale(grad, config.inner_lr);
        let bar = tape.sub(theta, scaled);
        let s_idx = envs
            .iter()
            .position(|&e| e == sampled[i])
            .expect("sampled env");
        let (sx, sy, srows) = &dense[s_idx];
        metas.push(env_loss_on_tape(
            &tape, sx, sy, *srows, n_cols, bar, config.reg,
        ));
    }
    let m = metas.len() as f64;
    let mut total: Option<Var<'_>> = None;
    for &r in &metas {
        total = Some(match total {
            Some(t) => tape.add(t, r),
            None => r,
        });
    }
    let mean = tape.scale(total.expect("nonempty"), 1.0 / m);
    let mut var_sum: Option<Var<'_>> = None;
    for &r in &metas {
        let d = tape.sub(r, mean);
        let sq = tape.mul(d, d);
        var_sum = Some(match var_sum {
            Some(v) => tape.add(v, sq),
            None => sq,
        });
    }
    let variance = tape.scale(var_sum.expect("nonempty"), 1.0 / m);
    let sigma = tape.sqrt(variance);
    let sigma_term = tape.scale(sigma, config.lambda);
    let objective = tape.add(mean, sigma_term);
    let grad = tape.backward(objective, &[theta], false)[0].value();

    for (i, (&s, &g)) in stepped.iter().zip(&grad).enumerate() {
        let expected = -config.outer_lr * g;
        assert!(
            (s - expected).abs() < 1e-9,
            "θ₁[{i}]: trainer {s:.10} vs tape {expected:.10}"
        );
    }
}
