//! Bit-level reproducibility of the parallel training paths.
//!
//! The kernel layer promises that thread count is *not* part of the model:
//! fixed 4096-row chunk boundaries, sequential accumulation within a chunk,
//! and chunk-ordered merges make every reduction independent of how the
//! chunks were scheduled. These tests train full models inside explicit
//! rayon pools of different sizes and require the learned weights to be
//! identical to the last bit.

use lightmirm_core::prelude::*;
use lightmirm_core::trainers::TrainConfig;
use rayon::ThreadPoolBuilder;

/// Multi-env world with `rows_per_env` rows per environment. With
/// `rows_per_env > CHUNK_ROWS` the per-env kernels split into several
/// chunks, exercising the ordered chunk merge under real scheduling.
fn world(n_envs: u16, rows_per_env: usize, n_cols: usize) -> EnvDataset {
    let nnz = 3;
    let mut idx = Vec::new();
    let mut labels = Vec::new();
    let mut envs = Vec::new();
    let mut k = 0u64;
    for env in 0..n_envs {
        for _ in 0..rows_per_env {
            k += 1;
            let h = k.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ ((env as u64) << 23);
            let y = ((h >> 11) % 10 < 4 + (env as u64 % 3)) as u8;
            for j in 0..nnz {
                idx.push(((h >> (17 + 7 * j)) % n_cols as u64) as u32);
            }
            labels.push(y);
            envs.push(env);
        }
    }
    let x = MultiHotMatrix::new(idx, nnz, n_cols).expect("well-formed");
    let names = (0..n_envs).map(|e| format!("env{e}")).collect();
    EnvDataset::new(x, labels, envs, names).expect("aligned")
}

fn config(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        inner_lr: 0.3,
        outer_lr: 0.8,
        lambda: 0.4,
        reg: 1e-3,
        momentum: 0.9,
        seed: 23,
    }
}

/// Run `fit` inside a dedicated pool of `threads` workers and return the
/// final global weights.
fn weights_with_threads(threads: usize, fit: impl Fn() -> TrainOutput + Send + Sync) -> Vec<f64> {
    let pool = ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool");
    let out = pool.install(&fit);
    out.model.global().weights.clone()
}

fn assert_thread_invariant(label: &str, fit: impl Fn() -> TrainOutput + Send + Sync) {
    let serial = weights_with_threads(1, &fit);
    assert!(
        serial.iter().any(|w| *w != 0.0),
        "{label}: training should move the weights"
    );
    for threads in [2, 4] {
        let parallel = weights_with_threads(threads, &fit);
        assert_eq!(
            serial, parallel,
            "{label}: weights must be bit-identical at {threads} threads"
        );
    }
}

#[test]
fn light_mirm_weights_are_thread_count_invariant() {
    let data = world(4, 60, 12);
    assert_thread_invariant("LightMIRM", || {
        LightMirmTrainer::new(config(6)).fit(&data, None)
    });
}

#[test]
fn meta_irm_weights_are_thread_count_invariant() {
    let data = world(4, 60, 12);
    assert_thread_invariant("meta-IRM", || {
        MetaIrmTrainer::new(config(5)).fit(&data, None)
    });
}

#[test]
fn erm_weights_are_thread_count_invariant_across_chunks() {
    // One environment above CHUNK_ROWS so the pooled gradient spans
    // multiple chunks and the chunk-ordered merge is actually exercised.
    let data = world(2, CHUNK_ROWS + 500, 16);
    assert_thread_invariant("ERM", || ErmTrainer::new(config(3)).fit(&data, None));
}

#[test]
fn robust_baseline_weights_are_thread_count_invariant() {
    let data = world(3, 80, 10);
    assert_thread_invariant("GroupDRO", || {
        GroupDroTrainer::new(config(4), 0.5).fit(&data, None)
    });
    assert_thread_invariant("V-REx", || {
        VRexTrainer::new(config(4), 2.0).fit(&data, None)
    });
}
