//! Bundle durability: the corruption matrix. Every way an on-disk
//! bundle can rot — truncation, bit flips, version skew, a crash
//! mid-write — must map to the *right* [`BundleError`] variant, and the
//! incumbent file must survive any failed save untouched.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

use lightmirm_core::prelude::*;
use lightmirm_core::trainers::TrainConfig;
use loansim::{generate, temporal_split, GeneratorConfig, ProvinceCatalog};

/// A scratch file path that cleans itself up.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let mut p = std::env::temp_dir();
        p.push(format!(
            "lightmirm-durability-{}-{tag}-{seq}.bundle",
            std::process::id()
        ));
        Scratch(p)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
        let mut tmp = self.0.as_os_str().to_owned();
        tmp.push(".tmp");
        let _ = std::fs::remove_file(PathBuf::from(tmp));
    }
}

fn demo_bundle() -> (ModelBundle, Vec<f32>, Vec<u16>) {
    let frame = generate(&GeneratorConfig::small(4_000, 97));
    let split = temporal_split(&frame, 2020);
    let mut fe = FeatureExtractorConfig::default();
    fe.gbdt.n_trees = 4;
    let extractor = FeatureExtractor::fit(&split.train, &fe).expect("GBDT trains");
    let train = extractor
        .to_env_dataset(&split.train, ProvinceCatalog::standard().names(), None)
        .expect("train transform");
    let out = ErmTrainer::new(TrainConfig {
        epochs: 3,
        ..Default::default()
    })
    .fit(&train, None);
    let bundle = ModelBundle::new(
        extractor.gbdt().clone(),
        &out.model,
        BundleMetadata::default(),
    )
    .expect("dimensions match");
    let mut features = Vec::new();
    let mut env_ids = Vec::new();
    for k in 0..16 {
        features.extend_from_slice(split.test.row(k));
        env_ids.push(split.test.province[k]);
    }
    (bundle, features, env_ids)
}

#[test]
fn save_load_round_trip_is_bit_identical() {
    let (bundle, features, env_ids) = demo_bundle();
    let path = Scratch::new("roundtrip");
    bundle.save_to_path(&path.0).expect("save");
    let reloaded = ModelBundle::load_from_path(&path.0).expect("load");
    let a = bundle.score_batch(&features, &env_ids);
    let b = reloaded.score_batch(&features, &env_ids);
    let bits = |v: &[f64]| v.iter().map(|s| s.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&a), bits(&b), "reload must not perturb a single bit");
    // The atomic write leaves no tmp droppings behind.
    let mut tmp = path.0.as_os_str().to_owned();
    tmp.push(".tmp");
    assert!(!PathBuf::from(tmp).exists(), "tmp file leaked after rename");
}

#[test]
fn truncated_files_are_corrupt_not_misparsed() {
    let (bundle, _, _) = demo_bundle();
    let path = Scratch::new("truncate");
    bundle.save_to_path(&path.0).expect("save");
    let full = std::fs::read(&path.0).expect("read back");
    // Cut at several depths: mid-header (past the magic, so the file
    // is unambiguously an envelope), just after it, and partway through
    // the JSON payload.
    for cut in [14, 64, full.len() / 2, full.len() - 1] {
        std::fs::write(&path.0, &full[..cut]).expect("write truncated");
        let err = ModelBundle::load_from_path(&path.0).expect_err("truncation must not load");
        assert!(
            matches!(err, BundleError::Corrupt(_)),
            "cut at {cut} bytes gave {err}, expected Corrupt"
        );
    }
}

#[test]
fn bit_flips_anywhere_in_the_payload_are_corrupt() {
    let (bundle, _, _) = demo_bundle();
    let path = Scratch::new("bitflip");
    bundle.save_to_path(&path.0).expect("save");
    let full = std::fs::read(&path.0).expect("read back");
    let header_end = full.iter().position(|&b| b == b'\n').expect("header line");
    // Flip a low bit at several payload offsets (keeps the file UTF-8).
    for frac in [0, 1, 2, 3] {
        let payload_len = full.len() - header_end - 1;
        let at = header_end + 1 + frac * payload_len / 4;
        let mut bytes = full.clone();
        bytes[at] ^= 0x01;
        std::fs::write(&path.0, &bytes).expect("write tampered");
        let err = ModelBundle::load_from_path(&path.0).expect_err("bit rot must not load");
        assert!(
            matches!(err, BundleError::Corrupt(_)),
            "flip at byte {at} gave {err}, expected Corrupt"
        );
    }
}

#[test]
fn version_skew_is_reported_as_version_mismatch() {
    let (bundle, _, _) = demo_bundle();
    let path = Scratch::new("skew");
    // Future envelope version: the header is checked before the payload.
    let env = bundle.to_envelope().replacen(" v1 ", " v9 ", 1);
    std::fs::write(&path.0, env).expect("write skewed");
    assert!(matches!(
        ModelBundle::load_from_path(&path.0),
        Err(BundleError::VersionMismatch {
            found: 9,
            supported: 1
        })
    ));
    // Future payload version inside a valid envelope (re-enveloped so
    // the checksum passes and the JSON-level check does the rejecting).
    let skewed_json = bundle.to_json().replace("\"version\":1", "\"version\":7");
    std::fs::write(&path.0, &skewed_json).expect("write legacy-style skew");
    assert!(matches!(
        ModelBundle::load_from_path(&path.0),
        Err(BundleError::VersionMismatch { found: 7, .. })
    ));
}

#[test]
fn legacy_bare_json_bundles_still_load() {
    let (bundle, features, env_ids) = demo_bundle();
    let path = Scratch::new("legacy");
    std::fs::write(&path.0, bundle.to_json()).expect("write legacy");
    let loaded = ModelBundle::load_from_path(&path.0).expect("legacy load");
    assert_eq!(
        loaded.score_batch(&features, &env_ids),
        bundle.score_batch(&features, &env_ids)
    );
}

#[test]
fn missing_files_surface_io_errors() {
    let path = Scratch::new("missing");
    assert!(matches!(
        ModelBundle::load_from_path(&path.0),
        Err(BundleError::Io(_))
    ));
}

/// The failpoint registry is process-global; serialize the tests that
/// program it so parallel test threads cannot cross their schedules.
#[cfg(feature = "failpoints")]
static FAILPOINT_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// The crash-mid-write story, driven by failpoints: a save that dies
/// partway (at the write, the data fsync, or the rename) must leave the
/// incumbent bundle intact and loadable — atomicity is the whole point
/// of tmp + fsync + rename.
#[cfg(feature = "failpoints")]
#[test]
fn interrupted_saves_never_clobber_the_incumbent() {
    use lightmirm_core::failpoint::{self, FailMode, Fault};

    let _serial = FAILPOINT_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let (bundle, features, env_ids) = demo_bundle();
    let incumbent_scores = bundle.score_batch(&features, &env_ids);
    let path = Scratch::new("crash");
    bundle.save_to_path(&path.0).expect("incumbent saved");

    for site in ["bundle::partial_write", "bundle::fsync", "bundle::rename"] {
        failpoint::configure(11);
        failpoint::set(site, FailMode::Always(Fault::IoError));
        let err = bundle
            .save_to_path(&path.0)
            .expect_err("injected crash must surface");
        assert!(matches!(err, BundleError::Io(_)), "{site} gave {err}");
        failpoint::clear();

        let survivor = ModelBundle::load_from_path(&path.0)
            .unwrap_or_else(|e| panic!("incumbent lost after {site}: {e}"));
        assert_eq!(
            survivor.score_batch(&features, &env_ids),
            incumbent_scores,
            "incumbent perturbed after {site}"
        );
    }

    // Injected read failures surface as Io, not Corrupt.
    failpoint::configure(12);
    failpoint::set("bundle::read", FailMode::Always(Fault::IoError));
    assert!(matches!(
        ModelBundle::load_from_path(&path.0),
        Err(BundleError::Io(_))
    ));
    failpoint::clear();
}

/// The directory fsync runs *after* the rename: when it fails, the new
/// bytes are already in place (and loadable), but the caller must still
/// see the error — the rename's own durability is not yet guaranteed,
/// and a promotion gated on `save_to_path` must not commit.
#[cfg(feature = "failpoints")]
#[test]
fn dir_sync_failure_surfaces_even_though_the_rename_landed() {
    use lightmirm_core::failpoint::{self, FailMode, Fault};

    let _serial = FAILPOINT_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let (bundle, features, env_ids) = demo_bundle();
    let path = Scratch::new("dirsync");

    failpoint::configure(13);
    failpoint::set("bundle::dir_sync", FailMode::Always(Fault::IoError));
    let err = bundle
        .save_to_path(&path.0)
        .expect_err("dir-sync failure must surface");
    assert!(matches!(err, BundleError::Io(_)), "{err}");
    failpoint::clear();

    let landed = ModelBundle::load_from_path(&path.0).expect("renamed bytes are readable");
    assert_eq!(
        landed.score_batch(&features, &env_ids),
        bundle.score_batch(&features, &env_ids)
    );
}
