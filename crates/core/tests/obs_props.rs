//! Property tests for the observability primitives: the power-of-two
//! [`Histogram`] behind every latency metric, and the
//! [`MetricsRegistry`] / [`MetricsSnapshot`] merge algebra the exporters
//! and the CLI's cross-engine folding rely on.

use lightmirm_core::obs::{HistogramSnapshot, MetricValue, MetricsRegistry};
use lightmirm_core::timing::Histogram;
use proptest::prelude::*;

/// Field-wise histogram equality (the type deliberately doesn't derive
/// `PartialEq`; snapshots do).
fn hist_eq(a: &Histogram, b: &Histogram) -> bool {
    a.bucket_counts() == b.bucket_counts()
        && a.count() == b.count()
        && a.sum() == b.sum()
        && a.min() == b.min()
        && a.max() == b.max()
}

fn from_values(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// The exact bucket a value must land in: 0 for zero, else
/// `64 − leading_zeros` so bucket `b` covers `[2^(b−1), 2^b)`.
fn expected_bucket(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

proptest! {
    #[test]
    fn histogram_merge_is_associative(
        a in proptest::collection::vec(0u64..1 << 40, 0..50),
        b in proptest::collection::vec(0u64..1 << 40, 0..50),
        c in proptest::collection::vec(0u64..1 << 40, 0..50),
    ) {
        let (ha, hb, hc) = (from_values(&a), from_values(&b), from_values(&c));
        // (a ⊕ b) ⊕ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a ⊕ (b ⊕ c)
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert!(hist_eq(&left, &right));
    }

    #[test]
    fn histogram_merge_equals_recording_concatenation(
        a in proptest::collection::vec(0u64..1 << 40, 0..60),
        b in proptest::collection::vec(0u64..1 << 40, 0..60),
    ) {
        let mut merged = from_values(&a);
        merged.merge(&from_values(&b));
        let concat: Vec<u64> = a.iter().chain(&b).copied().collect();
        prop_assert!(hist_eq(&merged, &from_values(&concat)));
    }

    #[test]
    fn power_of_two_boundaries_land_exactly(k in 1u32..63) {
        // 2^k − 1 is the last value of bucket k; 2^k the first of k+1.
        let below = (1u64 << k) - 1;
        let at = 1u64 << k;
        let h = from_values(&[below, at]);
        prop_assert_eq!(h.bucket_counts()[k as usize], 1);
        prop_assert_eq!(h.bucket_counts()[k as usize + 1], 1);
        prop_assert_eq!(expected_bucket(below), k as usize);
        prop_assert_eq!(expected_bucket(at), k as usize + 1);
    }

    #[test]
    fn every_value_lands_in_its_derived_bucket(v in 0u64..u64::MAX) {
        let h = from_values(&[v]);
        prop_assert_eq!(h.bucket_counts()[expected_bucket(v)], 1);
        prop_assert_eq!(h.count(), 1);
        // A single observation pins every quantile to itself.
        prop_assert_eq!(h.quantile(0.0), v);
        prop_assert_eq!(h.quantile(1.0), v);
    }

    #[test]
    fn quantiles_are_bracketed_by_min_and_max(
        values in proptest::collection::vec(0u64..1 << 30, 1..80),
        q in 0.0f64..1.0,
    ) {
        let h = from_values(&values);
        let est = h.quantile(q);
        prop_assert!(est >= h.min());
        prop_assert!(est <= h.max());
    }

    #[test]
    fn snapshot_roundtrip_preserves_histograms(
        values in proptest::collection::vec(0u64..1 << 40, 0..60),
    ) {
        let h = from_values(&values);
        let snap = HistogramSnapshot::from_histogram(&h);
        prop_assert!(hist_eq(&h, &snap.to_histogram()));
    }

    #[test]
    fn snapshot_after_merge_equals_merge_after_snapshot(
        a in proptest::collection::vec((0usize..4, 1u64..1000), 0..40),
        b in proptest::collection::vec((0usize..4, 1u64..1000), 0..40),
    ) {
        // Names 0/1 are counters, 2/3 histograms, spread across shards.
        let names = ["alpha_total", "beta_total", "gamma_ns", "delta_ns"];
        let fill = |ops: &[(usize, u64)]| {
            let reg = MetricsRegistry::new();
            for &(which, v) in ops {
                match which {
                    0 | 1 => reg.counter(names[which], &[]).add(v),
                    _ => reg.histogram(names[which], &[]).record(v),
                }
            }
            reg
        };
        let (ra, rb) = (fill(&a), fill(&b));
        let (sa, sb) = (ra.snapshot(), rb.snapshot());

        // merge-after-snapshot: fold both snapshots into a live registry.
        let live = MetricsRegistry::new();
        live.merge_snapshot(&sa);
        live.merge_snapshot(&sb);

        // snapshot-after-merge: merge the two frozen snapshots.
        let mut frozen = sa.clone();
        frozen.merge(&sb);

        prop_assert_eq!(live.snapshot(), frozen);
    }

    #[test]
    fn snapshot_merge_adds_counters_and_bucket_counts(
        a in proptest::collection::vec(1u64..1000, 0..40),
        b in proptest::collection::vec(1u64..1000, 0..40),
    ) {
        let reg_a = MetricsRegistry::new();
        let reg_b = MetricsRegistry::new();
        for &v in &a {
            reg_a.counter("n_total", &[]).add(v);
            reg_a.histogram("lat_ns", &[]).record(v);
        }
        for &v in &b {
            reg_b.counter("n_total", &[]).add(v);
            reg_b.histogram("lat_ns", &[]).record(v);
        }
        let mut merged = reg_a.snapshot();
        merged.merge(&reg_b.snapshot());
        let total: u64 = a.iter().chain(&b).sum();
        match merged.get("n_total", &[]) {
            Some(MetricValue::Counter(v)) => prop_assert_eq!(*v, total),
            other => prop_assert!(false, "expected counter, got {:?}", other),
        }
        match merged.get("lat_ns", &[]) {
            Some(MetricValue::Histogram(h)) => {
                prop_assert_eq!(h.count, (a.len() + b.len()) as u64);
                prop_assert_eq!(h.sum, total);
            }
            other => prop_assert!(false, "expected histogram, got {:?}", other),
        }
    }
}

#[test]
fn counters_are_monotone_under_concurrent_increments() {
    let reg = MetricsRegistry::new();
    let counter = reg.counter("spins_total", &[]);
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let c = counter.clone();
            s.spawn(move || {
                for _ in 0..PER_THREAD {
                    c.inc();
                }
            });
        }
        // Reader thread: every observed value must be >= the previous.
        let c = counter.clone();
        s.spawn(move || {
            let mut last = 0u64;
            for _ in 0..1_000 {
                let now = c.get();
                assert!(now >= last, "counter went backwards: {last} -> {now}");
                last = now;
            }
        });
    });
    assert_eq!(counter.get(), THREADS as u64 * PER_THREAD);
}
