//! End-to-end checks for the CLI's observability surface: `--metrics-out`
//! and `--trace-out` on `train` and `serve-replay`, driven through the
//! real binary (`CARGO_BIN_EXE_lightmirm`), plus the degraded-mode flags
//! (`--deadline-ms`, `--shed-watermark`/`--priority`) that must leave
//! nonzero fault counters behind.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lightmirm"))
}

fn tdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("lightmirm-obs-cli").join(name);
    std::fs::create_dir_all(&dir).expect("test dir");
    dir
}

fn run_ok(args: &[&str]) -> String {
    let out = bin().args(args).output().expect("spawn lightmirm");
    assert!(
        out.status.success(),
        "lightmirm {:?} failed:\nstdout: {}\nstderr: {}",
        args,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

/// Generate a small world and train a bundle. 1000 rows keeps the 2020
/// replay stream (~1/5 of rows) well under the engine's 256-row default
/// batch, which the deadline test below relies on.
fn world_and_model(dir: &std::path::Path) -> (String, String) {
    let world = dir.join("world.bin").to_string_lossy().into_owned();
    let model = dir.join("model.json").to_string_lossy().into_owned();
    run_ok(&["generate", "--out", &world, "--rows", "1000", "--seed", "9"]);
    run_ok(&[
        "train",
        "--data",
        &world,
        "--out",
        &model,
        "--method",
        "lightmirm",
        "--trees",
        "6",
        "--epochs",
        "8",
    ]);
    (world, model)
}

/// A permissive Prometheus text-format check: every line is a comment or
/// `name[{labels}] value` with a numeric value.
fn assert_parses_as_prometheus(text: &str) {
    assert!(!text.trim().is_empty(), "empty exposition");
    for line in text.lines() {
        if line.starts_with('#') {
            assert!(
                line.starts_with("# TYPE ") || line.starts_with("# HELP "),
                "bad comment line: {line}"
            );
            continue;
        }
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("sample line has no value: {line}");
        });
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf" || value == "NaN",
            "unparseable value {value:?} in line: {line}"
        );
        let name_part = series.split('{').next().unwrap();
        assert!(
            name_part
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "bad metric name in line: {line}"
        );
    }
}

/// Every line of a `--trace-out` file must be a standalone JSON object
/// with the span schema.
fn parse_trace(path: &std::path::Path) -> Vec<serde_json::Value> {
    let text = std::fs::read_to_string(path).expect("trace file");
    assert!(!text.trim().is_empty(), "empty trace");
    text.lines()
        .map(|line| {
            let v: serde_json::Value =
                serde_json::from_str(line).unwrap_or_else(|e| panic!("bad trace line {line}: {e}"));
            assert!(
                v["name"].as_str().is_some(),
                "trace event without name: {line}"
            );
            assert!(
                v["thread"].as_u64().is_some(),
                "trace event without thread: {line}"
            );
            v
        })
        .collect()
}

#[test]
fn train_metrics_out_emits_prometheus_text_and_trace_jsonl() {
    let dir = tdir("train");
    let world = dir.join("world.bin").to_string_lossy().into_owned();
    let model = dir.join("model.json").to_string_lossy().into_owned();
    let metrics = dir.join("train.prom");
    let trace = dir.join("train.jsonl");
    run_ok(&["generate", "--out", &world, "--rows", "1000", "--seed", "9"]);
    run_ok(&[
        "train",
        "--data",
        &world,
        "--out",
        &model,
        "--method",
        "lightmirm",
        "--trees",
        "6",
        "--epochs",
        "8",
        "--metrics-out",
        metrics.to_str().unwrap(),
        "--trace-out",
        trace.to_str().unwrap(),
    ]);

    let text = std::fs::read_to_string(&metrics).expect("metrics file");
    assert_parses_as_prometheus(&text);
    // Per-env inner-step latency histograms with trainer/env labels.
    assert!(
        text.contains("# TYPE train_inner_step_ns histogram"),
        "missing inner-step histogram TYPE line:\n{text}"
    );
    assert!(text.contains("train_inner_step_ns_bucket{"), "{text}");
    assert!(text.contains("trainer=\"lightmirm\""), "{text}");
    assert!(text.contains("le=\"+Inf\""), "{text}");
    // MRQ counters, epoch counter, outer-step histogram, kernel timings.
    for name in [
        "train_mrq_push_total",
        "train_mrq_replay_total",
        "train_sampled_env_total",
        "train_outer_step_ns",
        "train_epochs_total",
        "train_meta_loss_sigma",
        "kernel_reduce_ns_bucket",
        "kernel_reduce_chunks_total",
    ] {
        assert!(text.contains(name), "metrics missing {name}:\n{text}");
    }

    let events = parse_trace(&trace);
    let names: Vec<&str> = events.iter().filter_map(|e| e["name"].as_str()).collect();
    assert!(names.contains(&"train_epoch"), "no train_epoch span");
    assert!(names.contains(&"inner_step"), "no inner_step span");
    // Spans carry their duration and nesting depth.
    let inner = events
        .iter()
        .find(|e| e["name"] == "inner_step")
        .expect("inner_step event");
    assert!(
        inner["dur_ns"].as_u64().is_some(),
        "span without duration: {inner}"
    );
    assert!(
        inner["depth"].as_u64().unwrap() >= 1,
        "inner_step not nested"
    );
}

#[test]
fn serve_replay_shed_watermark_leaves_nonzero_counters() {
    let dir = tdir("shed");
    let (world, model) = world_and_model(&dir);
    let replay = dir.join("replay.json").to_string_lossy().into_owned();
    let metrics = dir.join("serve.json");
    let trace = dir.join("serve.jsonl");
    // shed_rows = ceil(4096 × 0.0002) = 1 < any 2-row chunk, so every
    // low-priority submission sheds deterministically; the CLI escalates
    // each to Normal and the replay still completes.
    run_ok(&[
        "serve-replay",
        "--model",
        &model,
        "--data",
        &world,
        "--out",
        &replay,
        "--chunk",
        "2",
        "--grid",
        "5",
        "--priority",
        "low",
        "--shed-watermark",
        "0.0002",
        "--metrics-out",
        metrics.to_str().unwrap(),
        "--trace-out",
        trace.to_str().unwrap(),
    ]);

    let snap: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&metrics).expect("metrics"))
            .expect("metrics JSON");
    let entries = snap["metrics"].as_array().expect("metrics array");
    let counter = |name: &str| -> u64 {
        entries
            .iter()
            .find(|e| e["name"] == name)
            .unwrap_or_else(|| panic!("metric {name} missing"))["value"]
            .as_u64()
            .unwrap_or_else(|| panic!("metric {name} is not a counter"))
    };
    assert!(counter("serve_shed_total") > 0, "no sheds recorded");
    assert!(counter("serve_requests_total") > 0);
    assert!(counter("serve_rows_scored_total") > 0);
    // The histogram families the issue names must be present in full
    // bucket form.
    for name in [
        "serve_queue_depth_rows",
        "serve_batch_rows",
        "serve_request_latency_ns",
        "serve_enqueue_to_reply_ns",
        "serve_score_ns",
    ] {
        let h = entries
            .iter()
            .find(|e| e["name"] == name)
            .unwrap_or_else(|| panic!("histogram {name} missing"));
        assert_eq!(h["type"], "histogram", "{name} is not a histogram");
        assert!(h["buckets"].as_array().is_some(), "{name} lost its buckets");
    }
    // Engine spans made it to the trace.
    let events = parse_trace(&trace);
    assert!(
        events.iter().any(|e| e["name"] == "process_batch"),
        "no process_batch spans in serve trace"
    );
    // The replay output itself is still complete and well-formed.
    let replayed: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&replay).expect("replay")).unwrap();
    assert_eq!(replayed["curve"].as_array().unwrap().len(), 6);
}

#[test]
fn serve_replay_deadline_expiry_is_counted_and_recovered() {
    let dir = tdir("deadline");
    let (world, model) = world_and_model(&dir);
    let replay = dir.join("replay.json").to_string_lossy().into_owned();
    let metrics = dir.join("deadline.prom");
    // The ~200-row 2020 stream never fills the 256-row default batch, so
    // the first dispatch waits out the full 2ms `max_wait`; a 1ms
    // deadline is then already gone and the batch drops whole. The CLI
    // rescores every expired chunk without a deadline, so the replay
    // still completes while `serve_deadline_expired_total` records the
    // pressure.
    run_ok(&[
        "serve-replay",
        "--model",
        &model,
        "--data",
        &world,
        "--out",
        &replay,
        "--chunk",
        "2",
        "--grid",
        "5",
        "--deadline-ms",
        "1",
        "--metrics-out",
        metrics.to_str().unwrap(),
    ]);
    let text = std::fs::read_to_string(&metrics).expect("metrics file");
    assert_parses_as_prometheus(&text);
    // The full serve_* family must appear in the text exposition: fault
    // counters (zero or not) and the occupancy/latency histograms.
    for name in [
        "serve_shed_total",
        "serve_deadline_expired_total",
        "serve_quarantined_rows_total",
        "serve_poisoned_total",
        "serve_worker_panics_total",
        "serve_reloads_total",
        "serve_queue_depth_rows_bucket",
        "serve_batch_rows_bucket",
        "serve_enqueue_to_reply_ns_bucket",
        "serve_score_ns_bucket",
    ] {
        assert!(text.contains(name), "metrics missing {name}:\n{text}");
    }
    let expired = text
        .lines()
        .find_map(|l| l.strip_prefix("serve_deadline_expired_total "))
        .expect("serve_deadline_expired_total missing")
        .parse::<f64>()
        .expect("numeric counter");
    assert!(expired > 0.0, "deadline counter stayed zero:\n{text}");
    // Recovery: the written curve is intact despite the expiries.
    let replayed: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&replay).expect("replay")).unwrap();
    assert_eq!(replayed["curve"].as_array().unwrap().len(), 6);
    assert!(replayed["rows"].as_u64().unwrap() > 0);
}
