//! End-to-end CLI surface for the supervised adaptation loop:
//! `serve-replay --adapt` turns the shifted province's Major drift into a
//! warm retrain + promotion, writes the transition event log, embeds an
//! `adapt` block in the replay JSON, and persists the adapted bundle
//! (with its lineage record) through `--adapt-out`.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

use loansim::{generate, GeneratorConfig, LoanFrame};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lightmirm"))
}

fn tdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("lightmirm-adapt-cli").join(name);
    std::fs::create_dir_all(&dir).expect("test dir");
    dir
}

fn run_ok(args: &[&str]) -> String {
    let out = bin().args(args).output().expect("spawn lightmirm");
    assert!(
        out.status.success(),
        "lightmirm {:?} failed:\nstdout: {}\nstderr: {}",
        args,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

/// Same controlled world as the drift CLI suite: the two best-sampled
/// provinces replay their pre-2020 rows as the 2020 stream, one verbatim
/// and one pushed +3.0 out of distribution.
fn controlled_world(path: &Path) -> (u16, u16) {
    let frame = generate(&GeneratorConfig::small(6_000, 17));
    let mut counts: BTreeMap<u16, usize> = BTreeMap::new();
    for r in 0..frame.len() {
        if frame.year[r] < 2020 {
            *counts.entry(frame.province[r]).or_default() += 1;
        }
    }
    let mut by_count: Vec<(u16, usize)> = counts.into_iter().collect();
    by_count.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    let (stable_p, shifted_p) = (by_count[0].0, by_count[1].0);

    let mut world = LoanFrame::with_width(frame.n_features());
    for r in 0..frame.len() {
        if frame.year[r] >= 2020 {
            continue;
        }
        let (h, p, v, l) = (
            frame.half[r],
            frame.province[r],
            frame.vehicle[r],
            frame.label[r],
        );
        world
            .push(frame.row(r), frame.year[r], h, p, v, l)
            .expect("row fits");
        if p == stable_p {
            world
                .push(frame.row(r), 2020, h, p, v, l)
                .expect("row fits");
        } else if p == shifted_p {
            let shifted: Vec<f32> = frame.row(r).iter().map(|x| x + 3.0).collect();
            world.push(&shifted, 2020, h, p, v, l).expect("row fits");
        }
    }
    std::fs::write(path, world.to_bytes()).expect("world file");
    (stable_p, shifted_p)
}

#[test]
fn serve_replay_adapt_promotes_logs_and_persists_lineage() {
    let dir = tdir("promote");
    let world = dir.join("world.bin");
    let model = dir.join("model.json").to_string_lossy().into_owned();
    let replay = dir.join("replay.json");
    let adapted = dir.join("adapted.json");
    let log = dir.join("adapt.jsonl");
    let (_stable_p, shifted_p) = controlled_world(&world);

    run_ok(&[
        "train",
        "--data",
        world.to_str().unwrap(),
        "--out",
        &model,
        "--method",
        "lightmirm",
        "--trees",
        "6",
        "--epochs",
        "8",
    ]);

    // Guard -1.0: any successfully retrained + probed challenger
    // promotes, so the test asserts the machinery end to end without
    // betting on the tiny retrain beating the champion's canary AUC.
    let msg = run_ok(&[
        "serve-replay",
        "--model",
        &model,
        "--data",
        world.to_str().unwrap(),
        "--out",
        replay.to_str().unwrap(),
        "--chunk",
        "7",
        "--grid",
        "5",
        "--adapt",
        "--adapt-min-rows",
        "150",
        "--adapt-epochs",
        "4",
        "--adapt-guard",
        "-1.0",
        "--adapt-cooldown",
        "60",
        "--adapt-out",
        adapted.to_str().unwrap(),
        "--adapt-log",
        log.to_str().unwrap(),
    ]);
    assert!(msg.contains("adaptation:"), "{msg}");
    assert!(msg.contains("adaptation event log"), "{msg}");

    // The replay JSON gains an `adapt` block recording a promotion.
    let report: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&replay).expect("replay file"))
            .expect("replay JSON");
    let adapt = &report["adapt"];
    assert!(adapt.as_object().is_some(), "no adapt block: {report}");
    assert!(
        adapt["generation"].as_u64().expect("generation") >= 1,
        "no promotion happened: {adapt}"
    );
    assert_eq!(
        adapt["promotions"].as_u64(),
        adapt["generation"].as_u64(),
        "{adapt}"
    );

    // The event log is JSONL and walks Observe → Retrain → Probe →
    // Canary → Promote for the shifted province.
    let log_text = std::fs::read_to_string(&log).expect("event log");
    let stages: Vec<(String, Option<u64>)> = log_text
        .lines()
        .map(|l| {
            let e: serde_json::Value = serde_json::from_str(l).expect("event line");
            (
                e["stage"].as_str().expect("stage").to_string(),
                e["env"].as_u64(),
            )
        })
        .collect();
    for want in ["retrain", "probe", "canary", "promote"] {
        assert!(
            stages
                .iter()
                .any(|(s, env)| s == want && *env == Some(u64::from(shifted_p))),
            "stage {want} for province {shifted_p} missing: {stages:?}"
        );
    }

    // The adapted bundle was persisted through the CRC envelope with a
    // lineage record pointing at its parent.
    let bundle_text = std::fs::read_to_string(&adapted).expect("adapted bundle");
    assert!(bundle_text.starts_with("LMIRM-BUNDLE v1"), "{bundle_text}");
    assert!(bundle_text.contains("\"parent_crc32\""), "no lineage");
    assert!(bundle_text.contains("\"trigger_psi\""), "no lineage");
}

#[test]
fn serve_replay_rejects_adapt_with_reload_model() {
    let dir = tdir("exclusive");
    let world = dir.join("world.bin");
    let model = dir.join("model.json").to_string_lossy().into_owned();
    controlled_world(&world);
    run_ok(&[
        "train",
        "--data",
        world.to_str().unwrap(),
        "--out",
        &model,
        "--method",
        "erm",
        "--trees",
        "4",
        "--epochs",
        "3",
    ]);
    let out = bin()
        .args([
            "serve-replay",
            "--model",
            &model,
            "--data",
            world.to_str().unwrap(),
            "--out",
            dir.join("replay.json").to_str().unwrap(),
            "--adapt",
            "--reload-model",
            &model,
        ])
        .output()
        .expect("spawn lightmirm");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("mutually exclusive"), "{stderr}");
}
