//! End-to-end drift + profiling CLI surface: `train` captures a drift
//! baseline into the bundle, `serve-replay --drift-out` writes a
//! per-province PSI report that flags a shifted province as `Major`
//! while an in-distribution province stays `Stable`, drift gauges reach
//! `--metrics-out`, and `--profile-out` writes parseable
//! flamegraph-collapsed text.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

use loansim::{generate, GeneratorConfig, LoanFrame};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lightmirm"))
}

fn tdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("lightmirm-drift-cli").join(name);
    std::fs::create_dir_all(&dir).expect("test dir");
    dir
}

fn run_ok(args: &[&str]) -> String {
    let out = bin().args(args).output().expect("spawn lightmirm");
    assert!(
        out.status.success(),
        "lightmirm {:?} failed:\nstdout: {}\nstderr: {}",
        args,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

/// A world whose 2020 stream is controlled, not generated: the two
/// best-sampled provinces replay their own pre-2020 rows as the 2020
/// stream — one verbatim (in distribution by construction), one with
/// every feature pushed +3.0 out of distribution. The generator's own
/// 2020 rows are dropped because it synthesizes a real COVID shift.
fn controlled_world(path: &Path) -> (u16, u16) {
    let frame = generate(&GeneratorConfig::small(6_000, 17));
    let mut counts: BTreeMap<u16, usize> = BTreeMap::new();
    for r in 0..frame.len() {
        if frame.year[r] < 2020 {
            *counts.entry(frame.province[r]).or_default() += 1;
        }
    }
    let mut by_count: Vec<(u16, usize)> = counts.into_iter().collect();
    by_count.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    let (stable_p, shifted_p) = (by_count[0].0, by_count[1].0);

    let mut world = LoanFrame::with_width(frame.n_features());
    for r in 0..frame.len() {
        if frame.year[r] >= 2020 {
            continue;
        }
        let (h, p, v, l) = (
            frame.half[r],
            frame.province[r],
            frame.vehicle[r],
            frame.label[r],
        );
        world
            .push(frame.row(r), frame.year[r], h, p, v, l)
            .expect("row fits");
        if p == stable_p {
            world
                .push(frame.row(r), 2020, h, p, v, l)
                .expect("row fits");
        } else if p == shifted_p {
            let shifted: Vec<f32> = frame.row(r).iter().map(|x| x + 3.0).collect();
            world.push(&shifted, 2020, h, p, v, l).expect("row fits");
        }
    }
    std::fs::write(path, world.to_bytes()).expect("world file");
    (stable_p, shifted_p)
}

/// The drift levels reported for one province, by signal name.
fn signal_levels(report: &serde_json::Value, env: u16) -> BTreeMap<String, String> {
    let entry = report["envs"]
        .as_array()
        .expect("envs array")
        .iter()
        .find(|e| e["env_id"].as_u64() == Some(u64::from(env)))
        .unwrap_or_else(|| panic!("province {env} missing from report: {report}"));
    assert!(entry["checks"].as_u64().unwrap() >= 1, "{entry}");
    entry["signals"]
        .as_array()
        .expect("signals array")
        .iter()
        .map(|s| {
            (
                s["signal"].as_str().expect("signal name").to_string(),
                s["level"].as_str().expect("signal level").to_string(),
            )
        })
        .collect()
}

#[test]
fn serve_replay_drift_out_flags_the_shifted_province() {
    let dir = tdir("replay");
    let world = dir.join("world.bin");
    let model = dir.join("model.json").to_string_lossy().into_owned();
    let replay = dir.join("replay.json").to_string_lossy().into_owned();
    let drift = dir.join("drift.json");
    let metrics = dir.join("metrics.prom");
    let profile = dir.join("profile.txt");
    let (stable_p, shifted_p) = controlled_world(&world);

    let msg = run_ok(&[
        "train",
        "--data",
        world.to_str().unwrap(),
        "--out",
        &model,
        "--method",
        "lightmirm",
        "--trees",
        "6",
        "--epochs",
        "8",
    ]);
    assert!(msg.contains("drift baseline:"), "{msg}");

    let msg = run_ok(&[
        "serve-replay",
        "--model",
        &model,
        "--data",
        world.to_str().unwrap(),
        "--out",
        &replay,
        "--chunk",
        "7",
        "--grid",
        "5",
        "--drift-out",
        drift.to_str().unwrap(),
        "--metrics-out",
        metrics.to_str().unwrap(),
        "--profile-out",
        profile.to_str().unwrap(),
    ]);
    assert!(msg.contains("drift report"), "{msg}");

    let report: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&drift).expect("drift file"))
            .expect("drift JSON");
    // The in-distribution province is Stable on every signal; the
    // shifted one escalates to Major.
    let stable = signal_levels(&report, stable_p);
    assert!(!stable.is_empty());
    assert!(
        stable.values().all(|l| l == "Stable"),
        "province {stable_p} should be stable: {stable:?}"
    );
    let shifted = signal_levels(&report, shifted_p);
    assert!(
        shifted.values().any(|l| l == "Major"),
        "province {shifted_p} should be flagged: {shifted:?}"
    );
    // Signals cover the score and at least one monitored feature column.
    assert!(shifted.contains_key("score"), "{shifted:?}");
    assert!(
        shifted.keys().any(|s| s.starts_with("feature_")),
        "{shifted:?}"
    );

    // The sentinel's gauges reach the metrics exposition.
    let text = std::fs::read_to_string(&metrics).expect("metrics file");
    assert!(text.contains("drift_psi{"), "no drift_psi gauges:\n{text}");

    // The span profile is flamegraph-collapsed text: `path <self_us>`
    // per line, with the engine's process_batch site present.
    let collapsed = std::fs::read_to_string(&profile).expect("profile file");
    assert!(!collapsed.trim().is_empty(), "empty profile");
    for line in collapsed.lines() {
        let (path, us) = line.rsplit_once(' ').expect("path <us> line");
        assert!(!path.is_empty(), "empty stack path: {line}");
        us.parse::<u64>()
            .unwrap_or_else(|e| panic!("bad self-us in {line}: {e}"));
    }
    assert!(collapsed.contains("process_batch"), "{collapsed}");
}

#[test]
fn score_drift_out_writes_report_and_baseline_cols_zero_monitors_scores_only() {
    let dir = tdir("score");
    let world = dir.join("world.bin");
    let model = dir.join("model.json").to_string_lossy().into_owned();
    let scores = dir.join("scores.csv").to_string_lossy().into_owned();
    let drift = dir.join("drift.json");
    controlled_world(&world);
    run_ok(&[
        "train",
        "--data",
        world.to_str().unwrap(),
        "--out",
        &model,
        "--method",
        "erm",
        "--trees",
        "6",
        "--epochs",
        "5",
    ]);
    run_ok(&[
        "score",
        "--model",
        &model,
        "--data",
        world.to_str().unwrap(),
        "--out",
        &scores,
        "--drift-out",
        drift.to_str().unwrap(),
    ]);
    let report: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&drift).expect("drift file"))
            .expect("drift JSON");
    assert!(
        !report["envs"].as_array().expect("envs").is_empty(),
        "score over the full frame should populate windows: {report}"
    );

    // `--baseline-cols 0` keeps the score sketch but monitors no
    // feature columns.
    let bare = dir.join("bare.json").to_string_lossy().into_owned();
    run_ok(&[
        "train",
        "--data",
        world.to_str().unwrap(),
        "--out",
        &bare,
        "--method",
        "erm",
        "--trees",
        "6",
        "--epochs",
        "5",
        "--baseline-cols",
        "0",
    ]);
    let drift2 = dir.join("drift_bare.json");
    let msg = run_ok(&[
        "score",
        "--model",
        &bare,
        "--data",
        world.to_str().unwrap(),
        "--out",
        &scores,
        "--drift-out",
        drift2.to_str().unwrap(),
    ]);
    let report2: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&drift2).expect("drift file"))
            .expect("drift JSON");
    // --baseline-cols 0 still sketches scores, so the report is
    // populated; it just monitors no feature columns.
    assert!(msg.contains("drift report"), "{msg}");
    assert!(report2["envs"]
        .as_array()
        .expect("envs")
        .iter()
        .all(|e| e["signals"]
            .as_array()
            .unwrap()
            .iter()
            .all(|s| s["signal"] == "score")));
}
