//! `lightmirm` — command-line workflow for the LightMIRM reproduction.
//!
//! ```text
//! lightmirm generate --out world.bin [--rows 50000] [--seed 7]
//! lightmirm train    --data world.bin --out model.json
//!                    [--method lightmirm|meta-irm|erm] [--trees 64]
//!                    [--epochs 60] [--mrq-len 5] [--gamma 0.9] ...
//! lightmirm score    --model model.json --data world.bin --out scores.csv
//!                    [--batch 256] [--workers 2]
//! lightmirm serve-replay --model model.json --data world.bin --out replay.json
//!                    [--batch 256] [--workers 2] [--chunk 1] [--grid 40]
//!                    [--shards 4] [--loadgen-trace flash-crowd]
//! lightmirm evaluate --model model.json --data world.bin [--min-rows 50]
//! lightmirm audit    --model model.json --baseline a.bin --current b.bin
//! lightmirm explain  --model model.json --data world.bin --row N [--top 5]
//! lightmirm stress-lab [--quick|--full] [--out results/stresslab]
//! ```
//!
//! Data files use the `loansim` binary format, or CSV when the path ends
//! in `.csv`. Models are versioned JSON bundles (extractor + LR head +
//! provenance).

mod args;
mod commands;

fn main() {
    let parsed = match args::ParsedArgs::parse(std::env::args().skip(1)) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: lightmirm <generate|train|score|serve-replay|evaluate|audit|explain|stress-lab> --flag value ..."
            );
            std::process::exit(2);
        }
    };
    let mut stdout = std::io::stdout();
    if let Err(e) = commands::run(&parsed, &mut stdout) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
