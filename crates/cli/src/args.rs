//! Minimal dependency-free flag parsing: `--key value` pairs plus a
//! leading subcommand.

use std::collections::BTreeMap;

/// A parsed command line: subcommand plus `--key value` flags.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ParsedArgs {
    /// The subcommand (first non-flag token).
    pub command: String,
    flags: BTreeMap<String, String>,
}

/// Errors from parsing or flag extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand given.
    MissingCommand,
    /// A `--flag` appeared without a value.
    MissingValue(String),
    /// A positional token appeared where a flag was expected.
    UnexpectedToken(String),
    /// A required flag is absent.
    MissingFlag(&'static str),
    /// A flag's value failed to parse.
    BadValue { flag: String, value: String },
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "missing subcommand"),
            ArgError::MissingValue(flag) => write!(f, "flag {flag} needs a value"),
            ArgError::UnexpectedToken(tok) => write!(f, "unexpected token {tok}"),
            ArgError::MissingFlag(flag) => write!(f, "required flag --{flag} missing"),
            ArgError::BadValue { flag, value } => {
                write!(f, "cannot parse --{flag} value {value:?}")
            }
        }
    }
}

impl std::error::Error for ArgError {}

impl ParsedArgs {
    /// Parse tokens (without the program name).
    ///
    /// # Errors
    ///
    /// See [`ArgError`].
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Self, ArgError> {
        let mut iter = tokens.into_iter();
        let command = iter.next().ok_or(ArgError::MissingCommand)?;
        if command.starts_with("--") {
            return Err(ArgError::UnexpectedToken(command));
        }
        let mut flags = BTreeMap::new();
        while let Some(tok) = iter.next() {
            let Some(key) = tok.strip_prefix("--") else {
                return Err(ArgError::UnexpectedToken(tok));
            };
            let value = iter
                .next()
                .ok_or_else(|| ArgError::MissingValue(tok.clone()))?;
            flags.insert(key.to_string(), value);
        }
        Ok(ParsedArgs { command, flags })
    }

    /// A required string flag.
    ///
    /// # Errors
    ///
    /// [`ArgError::MissingFlag`] when absent.
    pub fn required(&self, flag: &'static str) -> Result<&str, ArgError> {
        self.flags
            .get(flag)
            .map(String::as_str)
            .ok_or(ArgError::MissingFlag(flag))
    }

    /// An optional string flag.
    pub fn optional(&self, flag: &str) -> Option<&str> {
        self.flags.get(flag).map(String::as_str)
    }

    /// An optional parsed flag with a default.
    ///
    /// # Errors
    ///
    /// [`ArgError::BadValue`] when present but unparsable.
    pub fn get_or<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, ArgError> {
        match self.flags.get(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                flag: flag.to_string(),
                value: v.clone(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let a = ParsedArgs::parse(toks("train --rows 100 --method lightmirm")).unwrap();
        assert_eq!(a.command, "train");
        assert_eq!(a.required("method").unwrap(), "lightmirm");
        assert_eq!(a.get_or("rows", 0usize).unwrap(), 100);
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = ParsedArgs::parse(toks("generate")).unwrap();
        assert_eq!(a.get_or("seed", 7u64).unwrap(), 7);
        assert!(a.optional("out").is_none());
    }

    #[test]
    fn errors_are_specific() {
        assert_eq!(
            ParsedArgs::parse(Vec::<String>::new()).unwrap_err(),
            ArgError::MissingCommand
        );
        assert_eq!(
            ParsedArgs::parse(toks("train --rows")).unwrap_err(),
            ArgError::MissingValue("--rows".into())
        );
        assert_eq!(
            ParsedArgs::parse(toks("train stray")).unwrap_err(),
            ArgError::UnexpectedToken("stray".into())
        );
        assert_eq!(
            ParsedArgs::parse(toks("--rows 5")).unwrap_err(),
            ArgError::UnexpectedToken("--rows".into())
        );
        let a = ParsedArgs::parse(toks("train --rows x")).unwrap();
        assert!(matches!(
            a.get_or("rows", 0usize),
            Err(ArgError::BadValue { .. })
        ));
        assert_eq!(
            a.required("model").unwrap_err(),
            ArgError::MissingFlag("model")
        );
    }

    #[test]
    fn later_flags_override_earlier() {
        let a = ParsedArgs::parse(toks("x --k 1 --k 2")).unwrap();
        assert_eq!(a.get_or("k", 0u32).unwrap(), 2);
    }
}
