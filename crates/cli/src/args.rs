//! Minimal dependency-free flag parsing: `--key value` pairs plus a
//! leading subcommand. A small closed set of flags ([`BOOLEAN_FLAGS`])
//! is valueless: presence means `true`.

use std::collections::BTreeMap;

/// Flags that take no value — their presence alone means `true`.
/// Keeping the set closed preserves the strict `--key value` grammar
/// everywhere else (a typo like `--rows` with no value stays an error).
const BOOLEAN_FLAGS: &[&str] = &["quick", "full", "adapt"];

/// A parsed command line: subcommand plus `--key value` flags.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ParsedArgs {
    /// The subcommand (first non-flag token).
    pub command: String,
    flags: BTreeMap<String, String>,
}

/// Errors from parsing or flag extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand given.
    MissingCommand,
    /// A `--flag` appeared without a value.
    MissingValue(String),
    /// A positional token appeared where a flag was expected.
    UnexpectedToken(String),
    /// A required flag is absent.
    MissingFlag(&'static str),
    /// A flag's value failed to parse.
    BadValue { flag: String, value: String },
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "missing subcommand"),
            ArgError::MissingValue(flag) => write!(f, "flag {flag} needs a value"),
            ArgError::UnexpectedToken(tok) => write!(f, "unexpected token {tok}"),
            ArgError::MissingFlag(flag) => write!(f, "required flag --{flag} missing"),
            ArgError::BadValue { flag, value } => {
                write!(f, "cannot parse --{flag} value {value:?}")
            }
        }
    }
}

impl std::error::Error for ArgError {}

impl ParsedArgs {
    /// Parse tokens (without the program name).
    ///
    /// # Errors
    ///
    /// See [`ArgError`].
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Self, ArgError> {
        let mut iter = tokens.into_iter();
        let command = iter.next().ok_or(ArgError::MissingCommand)?;
        if command.starts_with("--") {
            return Err(ArgError::UnexpectedToken(command));
        }
        let mut flags = BTreeMap::new();
        while let Some(tok) = iter.next() {
            let Some(key) = tok.strip_prefix("--") else {
                return Err(ArgError::UnexpectedToken(tok));
            };
            if BOOLEAN_FLAGS.contains(&key) {
                flags.insert(key.to_string(), "true".to_string());
                continue;
            }
            let value = iter
                .next()
                .filter(|v| !v.starts_with("--"))
                .ok_or_else(|| ArgError::MissingValue(tok.clone()))?;
            flags.insert(key.to_string(), value);
        }
        Ok(ParsedArgs { command, flags })
    }

    /// A required string flag.
    ///
    /// # Errors
    ///
    /// [`ArgError::MissingFlag`] when absent.
    pub fn required(&self, flag: &'static str) -> Result<&str, ArgError> {
        self.flags
            .get(flag)
            .map(String::as_str)
            .ok_or(ArgError::MissingFlag(flag))
    }

    /// An optional string flag.
    pub fn optional(&self, flag: &str) -> Option<&str> {
        self.flags.get(flag).map(String::as_str)
    }

    /// Whether a [`BOOLEAN_FLAGS`] switch was given.
    pub fn switch(&self, flag: &str) -> bool {
        debug_assert!(
            BOOLEAN_FLAGS.contains(&flag),
            "{flag} is not a boolean flag"
        );
        self.flags.contains_key(flag)
    }

    /// An optional parsed flag with a default.
    ///
    /// # Errors
    ///
    /// [`ArgError::BadValue`] when present but unparsable.
    pub fn get_or<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, ArgError> {
        match self.flags.get(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                flag: flag.to_string(),
                value: v.clone(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let a = ParsedArgs::parse(toks("train --rows 100 --method lightmirm")).unwrap();
        assert_eq!(a.command, "train");
        assert_eq!(a.required("method").unwrap(), "lightmirm");
        assert_eq!(a.get_or("rows", 0usize).unwrap(), 100);
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = ParsedArgs::parse(toks("generate")).unwrap();
        assert_eq!(a.get_or("seed", 7u64).unwrap(), 7);
        assert!(a.optional("out").is_none());
    }

    #[test]
    fn errors_are_specific() {
        assert_eq!(
            ParsedArgs::parse(Vec::<String>::new()).unwrap_err(),
            ArgError::MissingCommand
        );
        assert_eq!(
            ParsedArgs::parse(toks("train --rows")).unwrap_err(),
            ArgError::MissingValue("--rows".into())
        );
        assert_eq!(
            ParsedArgs::parse(toks("train stray")).unwrap_err(),
            ArgError::UnexpectedToken("stray".into())
        );
        assert_eq!(
            ParsedArgs::parse(toks("--rows 5")).unwrap_err(),
            ArgError::UnexpectedToken("--rows".into())
        );
        let a = ParsedArgs::parse(toks("train --rows x")).unwrap();
        assert!(matches!(
            a.get_or("rows", 0usize),
            Err(ArgError::BadValue { .. })
        ));
        assert_eq!(
            a.required("model").unwrap_err(),
            ArgError::MissingFlag("model")
        );
    }

    #[test]
    fn boolean_switches_take_no_value() {
        let a = ParsedArgs::parse(toks("stress-lab --full --out results/x")).unwrap();
        assert!(a.switch("full"));
        assert!(!a.switch("quick"));
        assert_eq!(a.optional("out"), Some("results/x"));
        // A trailing switch must not swallow a missing value error
        // for ordinary flags.
        assert_eq!(
            ParsedArgs::parse(toks("stress-lab --out --quick")).unwrap_err(),
            ArgError::MissingValue("--out".into())
        );
        let b = ParsedArgs::parse(toks("stress-lab --quick")).unwrap();
        assert!(b.switch("quick"));
    }

    #[test]
    fn later_flags_override_earlier() {
        let a = ParsedArgs::parse(toks("x --k 1 --k 2")).unwrap();
        assert_eq!(a.get_or("k", 0u32).unwrap(), 2);
    }
}
