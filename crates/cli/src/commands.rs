//! Subcommand implementations, written as functions over parsed args so
//! unit tests drive them without spawning processes.

use std::path::Path;

use lightmirm_core::bundle::DriftBaseline;
use lightmirm_core::obs;
use lightmirm_core::prelude::*;
use lightmirm_core::trainers::TrainConfig;
use lightmirm_metrics::{auc, ks, lift_table, psi};
use lightmirm_serve::loadgen::{
    replay as replay_trace, synthesize_trace, TraceConfig, TracePattern,
};
use lightmirm_serve::{
    AdaptConfig, EngineConfig, EngineStats, FeedConfig, LabelFeed, MonitorConfig, Priority,
    PromotionController, ScoreError, ScoringEngine, ShardConfig, ShardedEngine, SubmitError,
    SubmitOptions,
};
use loansim::{generate, temporal_split, GeneratorConfig, LoanFrame, ProvinceCatalog, Schema};

use crate::args::{ArgError, ParsedArgs};

/// Top-level CLI errors.
#[derive(Debug)]
pub enum CliError {
    Args(ArgError),
    Io(std::io::Error),
    Data(String),
    UnknownCommand(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::Io(e) => write!(f, "io: {e}"),
            CliError::Data(msg) => write!(f, "{msg}"),
            CliError::UnknownCommand(cmd) => write!(
                f,
                "unknown command {cmd:?}; expected generate | train | score | serve-replay | evaluate | audit | explain | stress-lab"
            ),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

/// Dispatch a parsed command line. `out` receives human-readable output
/// (stdout in production, a buffer in tests).
///
/// Every subcommand honors three observability flags: `--trace-out
/// p.jsonl` streams spans and events to a JSON-lines file for the
/// command's duration, `--metrics-out p` writes a final snapshot of the
/// global [`lightmirm_core::obs`] registry (Prometheus text, or JSON when
/// the path ends in `.json`), and `--profile-out p` aggregates the trace
/// ring into a span profile (JSON for `.json` paths, flamegraph-collapsed
/// text otherwise). Commands that run a scoring engine fold its `serve_*`
/// telemetry into the registry before the snapshot.
///
/// # Errors
///
/// Returns [`CliError`] for argument, IO, and data problems.
pub fn run(args: &ParsedArgs, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let trace_sink = match args.optional("trace-out") {
        Some(path) => {
            let sink = obs::JsonLinesSink::create(Path::new(path))?;
            Some(obs::tracer().add_sink(std::sync::Arc::new(sink)))
        }
        None => None,
    };
    let result = dispatch(args, out);
    if let Some(id) = trace_sink {
        // Detaching flushes the sink's buffered lines.
        obs::tracer().remove_sink(id);
    }
    if result.is_ok() {
        if let Some(path) = args.optional("metrics-out") {
            obs::export::write_snapshot(Path::new(path), &obs::registry().snapshot())?;
        }
        if let Some(path) = args.optional("profile-out") {
            obs::Profile::from_ring().write(Path::new(path))?;
        }
    }
    result
}

fn dispatch(args: &ParsedArgs, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    match args.command.as_str() {
        "generate" => cmd_generate(args, out),
        "train" => cmd_train(args, out),
        "score" => cmd_score(args, out),
        "serve-replay" => cmd_serve_replay(args, out),
        "evaluate" => cmd_evaluate(args, out),
        "audit" => cmd_audit(args, out),
        "explain" => cmd_explain(args, out),
        "stress-lab" => cmd_stress_lab(args, out),
        other => Err(CliError::UnknownCommand(other.to_string())),
    }
}

fn load_frame(path: &str) -> Result<LoanFrame, CliError> {
    let raw = std::fs::read(path)?;
    if path.ends_with(".csv") {
        loansim::from_csv(
            std::str::from_utf8(&raw).map_err(|e| CliError::Data(format!("{path}: {e}")))?,
        )
        .map_err(|e| CliError::Data(format!("{path}: {e}")))
    } else {
        LoanFrame::from_bytes(bytes::Bytes::from(raw))
            .map_err(|e| CliError::Data(format!("{path}: {e}")))
    }
}

fn save_frame(frame: &LoanFrame, path: &str) -> Result<(), CliError> {
    if path.ends_with(".csv") {
        std::fs::write(path, loansim::to_csv(frame, &Schema::standard()))?;
    } else {
        std::fs::write(path, frame.to_bytes())?;
    }
    Ok(())
}

fn load_bundle(path: &str) -> Result<ModelBundle, CliError> {
    ModelBundle::load_from_path(Path::new(path)).map_err(|e| match e {
        BundleError::Io(io) => CliError::Io(io),
        other => CliError::Data(format!("{path}: {other}")),
    })
}

/// `generate --out world.bin [--rows N] [--seed S]` — synthesize a world.
/// A `.csv` suffix writes CSV instead of the binary format.
fn cmd_generate(args: &ParsedArgs, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let path = args.required("out")?;
    let rows = args.get_or("rows", 50_000usize)?;
    let seed = args.get_or("seed", 7u64)?;
    let frame = generate(&GeneratorConfig {
        rows,
        seed,
        ..Default::default()
    });
    save_frame(&frame, path)?;
    writeln!(
        out,
        "wrote {} rows x {} features to {path} (default rate {:.2}%)",
        frame.len(),
        frame.n_features(),
        frame.default_rate() * 100.0
    )?;
    Ok(())
}

fn parse_train_config(args: &ParsedArgs) -> Result<TrainConfig, ArgError> {
    Ok(TrainConfig {
        epochs: args.get_or("epochs", 60)?,
        inner_lr: args.get_or("inner-lr", 0.1)?,
        outer_lr: args.get_or("outer-lr", 0.3)?,
        lambda: args.get_or("lambda", 0.5)?,
        reg: args.get_or("reg", 1e-4)?,
        momentum: args.get_or("momentum", 0.0)?,
        seed: args.get_or("seed", 7)?,
    })
}

/// `train --data world.bin --out model.json [--method lightmirm|meta-irm|erm]
/// [--trees N] [--epochs N] [--mrq-len L] [--gamma G] [--batch-size B] …`
/// — fit the GBDT extractor on pre-2020 rows and the chosen LR head
/// (mini-batch SGD for ERM when `--batch-size` is set), and write a
/// bundle.
fn cmd_train(args: &ParsedArgs, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let data_path = args.required("data")?;
    let model_path = args.required("out")?;
    let method = args.optional("method").unwrap_or("lightmirm").to_string();
    let trees = args.get_or("trees", 64usize)?;
    let frame = load_frame(data_path)?;
    let split = temporal_split(&frame, 2020);
    if split.train.is_empty() {
        return Err(CliError::Data("no pre-2020 training rows in data".into()));
    }

    let mut fe = FeatureExtractorConfig::default();
    fe.gbdt.n_trees = trees;
    let extractor = FeatureExtractor::fit(&split.train, &fe)
        .map_err(|e| CliError::Data(format!("GBDT: {e}")))?;
    let names = ProvinceCatalog::standard().names();
    let train = extractor
        .to_env_dataset(&split.train, names, None)
        .map_err(|e| CliError::Data(format!("transform: {e}")))?;

    let tc = parse_train_config(args)?;
    let output = match method.as_str() {
        "erm" => {
            let erm_tc = TrainConfig {
                outer_lr: args.get_or("outer-lr", 0.05)?,
                momentum: args.get_or("momentum", 0.9)?,
                ..tc.clone()
            };
            match args.get_or("batch-size", 0usize)? {
                0 => ErmTrainer::new(erm_tc).fit(&train, None),
                b => ErmTrainer::with_batch_size(erm_tc, b).fit(&train, None),
            }
        }
        "meta-irm" => MetaIrmTrainer::new(tc.clone()).fit(&train, None),
        "lightmirm" => {
            let mrq_len = args.get_or("mrq-len", 5usize)?;
            let gamma = args.get_or("gamma", 0.9f64)?;
            LightMirmTrainer::with_mrq(tc.clone(), mrq_len, gamma).fit(&train, None)
        }
        other => {
            return Err(CliError::Data(format!(
                "unknown method {other:?}; expected erm | meta-irm | lightmirm"
            )))
        }
    };

    let bundle = ModelBundle::new(
        extractor.gbdt().clone(),
        &output.model,
        BundleMetadata {
            trainer: method.clone(),
            seed: tc.seed,
            notes: format!(
                "trained on {} rows from {data_path}; {} env-loss ops",
                split.train.len(),
                output.ops.total()
            ),
        },
    )
    .map_err(|e| CliError::Data(e.to_string()))?;
    // Drift baseline for the serve-side sentinel: per-province quantile
    // sketches of the bundle's own training-row scores plus the
    // `--baseline-cols` highest-gain feature columns (0 disables).
    let baseline_cols = args.get_or("baseline-cols", 4usize)?;
    let nf = bundle.n_features();
    let mut feats = Vec::with_capacity(split.train.len() * nf);
    let mut envs = Vec::with_capacity(split.train.len());
    for r in 0..split.train.len() {
        feats.extend_from_slice(split.train.row(r));
        envs.push(split.train.province[r]);
    }
    let train_scores = bundle.score_batch(&feats, &envs);
    let columns =
        DriftBaseline::top_k_columns(extractor.gbdt().feature_importance(), baseline_cols);
    let baseline = DriftBaseline::capture(&train_scores, &envs, &feats, nf, &columns, 64);
    let n_baseline_envs = baseline.envs.len();
    let bundle = bundle.with_baseline(baseline);
    // Checksummed + atomic: a crash mid-write cannot leave a truncated
    // bundle where a scoring service would pick it up.
    bundle
        .save_to_path(Path::new(model_path))
        .map_err(|e| CliError::Data(format!("{model_path}: {e}")))?;
    writeln!(
        out,
        "trained {method} on {} rows ({} env-loss ops); bundle at {model_path}",
        split.train.len(),
        output.ops.total()
    )?;
    writeln!(
        out,
        "drift baseline: {n_baseline_envs} provinces, {} monitored columns",
        columns.len()
    )?;
    Ok(())
}

/// Parse the common engine flags (`--batch` / `--workers` /
/// `--deadline-ms` / `--shed-watermark` / `--max-attempts` /
/// `--priority`) into an [`EngineConfig`] plus per-request submit
/// options, shared by the single-engine and sharded front ends.
fn engine_config_from_flags(args: &ParsedArgs) -> Result<(EngineConfig, SubmitOptions), CliError> {
    let defaults = EngineConfig::default();
    let max_batch = args.get_or("batch", defaults.max_batch)?;
    let workers = args.get_or("workers", defaults.workers)?;
    let shed_watermark = args.get_or("shed-watermark", defaults.shed_watermark)?;
    let max_attempts = args.get_or("max-attempts", defaults.max_attempts)?;
    if !(shed_watermark > 0.0 && shed_watermark <= 1.0) {
        return Err(CliError::Data(format!(
            "--shed-watermark {shed_watermark} must be in (0, 1]"
        )));
    }
    if max_attempts == 0 {
        return Err(CliError::Data("--max-attempts must be positive".into()));
    }
    let deadline_ms = args.get_or("deadline-ms", 0u64)?;
    let priority = match args.optional("priority").unwrap_or("normal") {
        "low" => Priority::Low,
        "normal" => Priority::Normal,
        "high" => Priority::High,
        other => {
            return Err(CliError::Data(format!(
                "--priority {other:?} must be low | normal | high"
            )))
        }
    };
    let opts = SubmitOptions {
        deadline: (deadline_ms > 0).then(|| std::time::Duration::from_millis(deadline_ms)),
        priority,
    };
    let cfg = EngineConfig {
        max_batch,
        workers,
        shed_watermark,
        max_attempts,
        queue_capacity: defaults.queue_capacity.max(max_batch),
        // Arm the drift sentinel; it stays dormant for bundles
        // without a train-time baseline. Observation-only, so
        // scores are unaffected either way.
        monitor: Some(MonitorConfig::default()),
        ..defaults
    };
    Ok((cfg, opts))
}

/// Build an engine plus per-request submit options from the common
/// engine flags.
fn engine_from_flags(
    args: &ParsedArgs,
    bundle: ModelBundle,
) -> Result<(ScoringEngine, SubmitOptions), CliError> {
    let (cfg, opts) = engine_config_from_flags(args)?;
    Ok((ScoringEngine::new(bundle, cfg), opts))
}

/// Build the sharded front end from the same engine flags plus
/// `--shards N`.
fn sharded_from_flags(
    args: &ParsedArgs,
    bundle: &ModelBundle,
    shards: usize,
) -> Result<(ShardedEngine, SubmitOptions), CliError> {
    let (engine, opts) = engine_config_from_flags(args)?;
    let sharded = ShardedEngine::new(
        bundle,
        &ShardConfig {
            shards,
            engine,
            ..ShardConfig::default()
        },
    );
    Ok((sharded, opts))
}

/// Honor `--drift-out p.json`: force a final PSI check on every
/// environment with enough window samples and write the sentinel's
/// per-environment report (score drift plus per-signal breakdown) as
/// JSON. Bundles without a baseline write an empty report.
fn write_drift_report(
    args: &ParsedArgs,
    engine: &ScoringEngine,
    out: &mut dyn std::io::Write,
) -> Result<(), CliError> {
    let Some(path) = args.optional("drift-out") else {
        return Ok(());
    };
    match engine.drift_monitor() {
        Some(monitor) => {
            monitor.check_now();
            let report = monitor.drift_report();
            std::fs::write(
                Path::new(path),
                serde_json::to_string_pretty(&report).expect("drift report serializes"),
            )?;
            writeln!(
                out,
                "drift report ({} provinces) at {path}",
                report.envs.len()
            )?;
        }
        None => {
            std::fs::write(Path::new(path), "{\"envs\":[]}\n")?;
            writeln!(
                out,
                "bundle carries no drift baseline; empty drift report at {path}"
            )?;
        }
    }
    Ok(())
}

/// Slice one `n`-row request starting at `r` out of `frame`.
fn chunk_rows(frame: &LoanFrame, nf: usize, r: usize, n: usize) -> (Vec<f32>, Vec<u16>) {
    let mut features = Vec::with_capacity(n * nf);
    let mut env_ids = Vec::with_capacity(n);
    for k in r..r + n {
        features.extend_from_slice(frame.row(k));
        env_ids.push(frame.province[k]);
    }
    (features, env_ids)
}

/// Push `frame` through `engine` as requests of `chunk` rows and return
/// the scores in row order. Blocking submits provide the backpressure:
/// the whole frame never sits in memory twice. Degraded-mode outcomes
/// recover — a [`SubmitError::Shed`] low-priority request is resubmitted
/// at [`Priority::Normal`], and a request answering
/// [`ScoreError::DeadlineExceeded`] is rescored without a deadline (the
/// replay must stay complete; the engine's shed/expired counters still
/// record the pressure). Hard failures (poisoning, quarantine, engine
/// death) surface as [`CliError::Data`] instead of panicking.
fn score_through_engine(
    engine: &ScoringEngine,
    frame: &LoanFrame,
    chunk: usize,
    opts: SubmitOptions,
) -> Result<Vec<f64>, CliError> {
    let nf = engine.bundle().n_features();
    let chunk = chunk.max(1).min(engine.config().queue_capacity);
    let mut pending = Vec::with_capacity(frame.len().div_ceil(chunk));
    let mut r = 0usize;
    while r < frame.len() {
        let n = chunk.min(frame.len() - r);
        let (features, env_ids) = chunk_rows(frame, nf, r, n);
        let submitted = match engine.submit_with(features, env_ids, opts) {
            Err(SubmitError::Shed) => {
                // Shed at the watermark: this driver must deliver every
                // row, so escalate the chunk to Normal and try again.
                let (features, env_ids) = chunk_rows(frame, nf, r, n);
                let normal = SubmitOptions {
                    priority: Priority::Normal,
                    ..opts
                };
                engine.submit_with(features, env_ids, normal)
            }
            other => other,
        };
        pending.push((
            r,
            n,
            submitted.map_err(|e| CliError::Data(format!("submit of rows {r}..{}: {e}", r + n)))?,
        ));
        r += n;
    }
    let mut scores = Vec::with_capacity(frame.len());
    for (start, n, p) in pending {
        match p.wait() {
            Ok(got) => scores.extend(got),
            Err(ScoreError::DeadlineExceeded) => {
                // The deadline lapsed while queued; rescore this chunk
                // without one so the output stays complete. Waiting
                // in submit order keeps `scores` row-aligned.
                let (features, env_ids) = chunk_rows(frame, nf, start, n);
                let patient = SubmitOptions {
                    deadline: None,
                    priority: Priority::Normal,
                };
                let got = engine
                    .submit_with(features, env_ids, patient)
                    .map_err(|e| CliError::Data(format!("deadline retry of row {start}: {e}")))?
                    .wait()
                    .map_err(|e| CliError::Data(format!("deadline retry of row {start}: {e}")))?;
                scores.extend(got);
            }
            Err(e) => return Err(CliError::Data(format!("request at row {start}: {e}"))),
        }
    }
    Ok(scores)
}

/// The `--adapt` serving loop: score the stream chunk by chunk, feed each
/// answered chunk's now-observed labels into the [`LabelFeed`], and step
/// the [`PromotionController`] after every chunk — so a Major drift
/// escalation mid-stream can trigger a warm retrain, probe + canary
/// validation, and hot promotion (or rollback) while the replay is still
/// running. Unlike [`score_through_engine`], the stream cannot be fully
/// pre-submitted: adaptation reacts to labels that only "arrive" once a
/// chunk has been served.
fn parse_adapt_flags(args: &ParsedArgs) -> Result<(AdaptConfig, FeedConfig, usize), CliError> {
    let d = AdaptConfig::default();
    let cfg = AdaptConfig {
        min_rows: args.get_or("adapt-min-rows", d.min_rows)?,
        train: TrainConfig {
            epochs: args.get_or("adapt-epochs", d.train.epochs)?,
            seed: args.get_or("seed", d.train.seed)?,
            ..d.train.clone()
        },
        guard_min_auc_gain: args.get_or("adapt-guard", d.guard_min_auc_gain)?,
        cooldown_steps: args.get_or("adapt-cooldown", d.cooldown_steps)?,
        save_path: args.optional("adapt-out").map(std::path::PathBuf::from),
        ..d
    };
    let fd = FeedConfig::default();
    let feed_cfg = FeedConfig {
        max_rows_per_env: args.get_or("feed-rows", fd.max_rows_per_env)?,
        max_bytes: args.get_or("feed-bytes", fd.max_bytes)?,
    };
    let step_every = args.get_or("adapt-every", 1usize)?.max(1);
    Ok((cfg, feed_cfg, step_every))
}

fn serve_adaptively(
    args: &ParsedArgs,
    engine: &ScoringEngine,
    stream: &LoanFrame,
    chunk: usize,
    opts: SubmitOptions,
) -> Result<(Vec<f64>, PromotionController), CliError> {
    let (cfg, feed_cfg, step_every) = parse_adapt_flags(args)?;
    let feed = LabelFeed::new(engine.bundle().n_features(), feed_cfg);
    let mut controller = PromotionController::new(engine.bundle(), cfg);

    let chunk = chunk.max(1).min(engine.config().queue_capacity);
    let mut scores = Vec::with_capacity(stream.len());
    let mut r = 0usize;
    let mut chunks = 0usize;
    while r < stream.len() {
        let n = chunk.min(stream.len() - r);
        let rows: Vec<usize> = (r..r + n).collect();
        scores.extend(score_through_engine(
            engine,
            &stream.select(&rows),
            chunk,
            opts,
        )?);
        for k in r..r + n {
            feed.push(stream.province[k], stream.row(k), stream.label[k]);
        }
        chunks += 1;
        if chunks.is_multiple_of(step_every) {
            controller.step(engine, &feed);
        }
        r += n;
    }
    Ok((scores, controller))
}

/// Route one chunk through the sharded front end by its first row's
/// province, escalating a shed low-priority submit to Normal exactly
/// like [`score_through_engine`]. Returns the shard that accepted the
/// chunk alongside the pending scores.
fn submit_chunk_sharded(
    sharded: &ShardedEngine,
    frame: &LoanFrame,
    nf: usize,
    r: usize,
    n: usize,
    opts: SubmitOptions,
) -> Result<(usize, lightmirm_serve::PendingScores), CliError> {
    let key = frame.province[r];
    let (features, env_ids) = chunk_rows(frame, nf, r, n);
    let submitted = match sharded.submit(key, features, env_ids, opts) {
        Err(SubmitError::Shed) => {
            let (features, env_ids) = chunk_rows(frame, nf, r, n);
            let normal = SubmitOptions {
                priority: Priority::Normal,
                ..opts
            };
            sharded.submit(key, features, env_ids, normal)
        }
        other => other,
    };
    submitted.map_err(|e| CliError::Data(format!("submit of rows {r}..{}: {e}", r + n)))
}

/// [`score_through_engine`] over the sharded front end. Chunks are
/// pre-submitted for pipelining and routed by their first row's
/// province; since every shard serves the same bundle, the scores are
/// bit-identical to the single-engine path for any shard count.
fn score_through_sharded(
    sharded: &ShardedEngine,
    frame: &LoanFrame,
    chunk: usize,
    opts: SubmitOptions,
) -> Result<Vec<f64>, CliError> {
    let nf = sharded.shard(0).bundle().n_features();
    let chunk = chunk.max(1).min(sharded.shard(0).config().queue_capacity);
    let mut pending = Vec::with_capacity(frame.len().div_ceil(chunk));
    let mut r = 0usize;
    while r < frame.len() {
        let n = chunk.min(frame.len() - r);
        let (_, p) = submit_chunk_sharded(sharded, frame, nf, r, n, opts)?;
        pending.push((r, n, p));
        r += n;
    }
    let mut scores = Vec::with_capacity(frame.len());
    for (start, n, p) in pending {
        match p.wait() {
            Ok(got) => scores.extend(got),
            Err(ScoreError::DeadlineExceeded) => {
                let patient = SubmitOptions {
                    deadline: None,
                    priority: Priority::Normal,
                };
                let (_, retry) = submit_chunk_sharded(sharded, frame, nf, start, n, patient)?;
                let got = retry
                    .wait()
                    .map_err(|e| CliError::Data(format!("deadline retry of row {start}: {e}")))?;
                scores.extend(got);
            }
            Err(e) => return Err(CliError::Data(format!("request at row {start}: {e}"))),
        }
    }
    Ok(scores)
}

/// The `--adapt` loop over the sharded front end: every shard owns its
/// own [`LabelFeed`] and [`PromotionController`], fed only by the
/// chunks that shard actually served — a drift escalation on one
/// shard's traffic retrains and promotes on that shard alone, leaving
/// the other shards' champions untouched. With `--adapt-out p`, shard
/// `i` persists its promoted bundle to `p.shard<i>`.
fn serve_adaptively_sharded(
    args: &ParsedArgs,
    sharded: &ShardedEngine,
    stream: &LoanFrame,
    chunk: usize,
    opts: SubmitOptions,
) -> Result<(Vec<f64>, Vec<PromotionController>), CliError> {
    let (cfg, feed_cfg, step_every) = parse_adapt_flags(args)?;
    let nf = sharded.shard(0).bundle().n_features();
    let n_shards = sharded.shards();
    let feeds: Vec<LabelFeed> = (0..n_shards)
        .map(|_| LabelFeed::new(nf, feed_cfg.clone()))
        .collect();
    let mut controllers: Vec<PromotionController> = (0..n_shards)
        .map(|i| {
            let cfg = AdaptConfig {
                save_path: cfg
                    .save_path
                    .as_ref()
                    .map(|p| p.with_extension(format!("shard{i}"))),
                ..cfg.clone()
            };
            PromotionController::new(sharded.shard(i).bundle(), cfg)
        })
        .collect();

    let chunk = chunk.max(1).min(sharded.shard(0).config().queue_capacity);
    let mut scores = Vec::with_capacity(stream.len());
    let mut r = 0usize;
    let mut chunks = 0usize;
    while r < stream.len() {
        let n = chunk.min(stream.len() - r);
        let (shard, p) = submit_chunk_sharded(sharded, stream, nf, r, n, opts)?;
        let got = match p.wait() {
            Ok(got) => got,
            Err(ScoreError::DeadlineExceeded) => {
                let patient = SubmitOptions {
                    deadline: None,
                    priority: Priority::Normal,
                };
                let (_, retry) = submit_chunk_sharded(sharded, stream, nf, r, n, patient)?;
                retry
                    .wait()
                    .map_err(|e| CliError::Data(format!("deadline retry of row {r}: {e}")))?
            }
            Err(e) => return Err(CliError::Data(format!("request at row {r}: {e}"))),
        };
        scores.extend(got);
        for k in r..r + n {
            feeds[shard].push(stream.province[k], stream.row(k), stream.label[k]);
        }
        chunks += 1;
        if chunks.is_multiple_of(step_every) {
            controllers[shard].step(sharded.shard(shard), &feeds[shard]);
        }
        r += n;
    }
    Ok((scores, controllers))
}

/// Write one controller's adaptation summary (optional event log,
/// human-readable line) and return its JSON block. `label` is empty for
/// the single-engine loop and `" (shard i)"` per shard; the event log
/// path gets a `.shard<i>` extension in sharded mode so logs don't
/// clobber each other.
fn adapt_summary(
    controller: &PromotionController,
    label: &str,
    log_path: Option<&Path>,
    out: &mut dyn std::io::Write,
) -> Result<serde_json::Value, CliError> {
    if let Some(path) = log_path {
        controller.write_event_log(path)?;
        writeln!(
            out,
            "adaptation event log ({} events) at {}",
            controller.events().len(),
            path.display()
        )?;
    }
    let count = |stage: &str| {
        controller
            .events()
            .iter()
            .filter(|e| e.stage == stage)
            .count()
    };
    let (promotions, rollbacks) = (count("promote"), count("rollback"));
    writeln!(
        out,
        "adaptation{label}: {} steps, generation {}, {promotions} promotion(s), \
         {rollbacks} rollback(s)",
        controller.steps(),
        controller.generation()
    )?;
    Ok(serde_json::json!({
        "steps": controller.steps(),
        "generation": controller.generation(),
        "promotions": promotions,
        "rollbacks": rollbacks,
        "events": controller.events().len(),
    }))
}

fn write_engine_summary(
    out: &mut dyn std::io::Write,
    label: &str,
    stats: &EngineStats,
) -> std::io::Result<()> {
    writeln!(
        out,
        "{label}: {} requests, mean batch {:.1} rows, latency p50 {:.1}us p99 {:.1}us \
         (enqueue-to-reply p50 {:.1}us p99 {:.1}us, score p50 {:.1}us/batch)",
        stats.requests,
        stats.batch_rows_mean,
        stats.latency_p50_ns as f64 / 1_000.0,
        stats.latency_p99_ns as f64 / 1_000.0,
        stats.enqueue_to_reply_p50_ns as f64 / 1_000.0,
        stats.enqueue_to_reply_p99_ns as f64 / 1_000.0,
        stats.score_p50_ns as f64 / 1_000.0
    )
}

/// `score --model model.json --data world.bin --out scores.csv
/// [--batch 256] [--workers 2] [--deadline-ms D] [--shed-watermark W]
/// [--priority low|normal|high] [--metrics-out M] [--trace-out T]
/// [--drift-out D]` — batch scoring through the micro-batched engine.
/// Scores are bit-identical for any `--batch`/`--workers` choice;
/// `--drift-out` writes the drift sentinel's final per-province PSI
/// report as JSON.
fn cmd_score(args: &ParsedArgs, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let bundle = load_bundle(args.required("model")?)?;
    let frame = load_frame(args.required("data")?)?;
    let out_path = args.required("out")?;
    let (engine, opts) = engine_from_flags(args, bundle)?;
    let scores = score_through_engine(&engine, &frame, engine.config().max_batch, opts)?;
    // Fold the engine's serve_* telemetry into the global registry so a
    // trailing `--metrics-out` snapshot carries it.
    obs::registry().merge_snapshot(&engine.metrics_snapshot());
    write_drift_report(args, &engine, out)?;
    let stats = engine.shutdown();
    let mut text = String::from("row,province,score\n");
    for (r, score) in scores.iter().enumerate() {
        text.push_str(&format!("{r},{},{score:.6}\n", frame.province[r]));
    }
    std::fs::write(Path::new(out_path), text)?;
    writeln!(out, "scored {} rows into {out_path}", frame.len())?;
    write_engine_summary(out, "engine", &stats)?;
    Ok(())
}

/// `serve-replay --model model.json --data world.bin --out replay.json
/// [--batch 256] [--workers 2] [--chunk 1] [--grid 40]
/// [--deadline-ms D] [--shed-watermark W] [--reload-model new.json]
/// [--drift-out D]` —
/// the Fig. 5 online companion sweep with the companion scored live
/// through the serving engine: the held-out 2020 stream arrives as
/// `--chunk`-row requests, the incumbent (the raw GBDT scorer) approves
/// below the 70th percentile of its own scores, and the companion's veto
/// threshold is swept over a `--grid`-point curve. With `--reload-model`
/// the engine hot-reloads that bundle halfway through the stream after
/// probe validation; a corrupt or invalid candidate is rejected and the
/// incumbent keeps serving.
///
/// With `--adapt` the supervised adaptation loop runs alongside the
/// replay: each served chunk's labels feed a bounded per-province
/// [`LabelFeed`], and a [`PromotionController`] steps once per chunk —
/// Major drift triggers a warm-started LightMIRM retrain of the LR head
/// (leaf transform frozen), validated through the probe-batch reload
/// path and an AUC canary guard before promotion, with automatic
/// rollback to the pristine champion otherwise. Knobs:
/// `--adapt-min-rows N` (labeled rows required before retraining),
/// `--adapt-epochs E`, `--adapt-guard G` (minimum challenger AUC gain),
/// `--adapt-cooldown S`, `--adapt-every K` (controller step cadence in
/// chunks), `--feed-rows R` / `--feed-bytes B` (buffer caps),
/// `--adapt-out path` (persist the promoted bundle + lineage), and
/// `--adapt-log path` (transition event JSONL). Mutually exclusive with
/// `--reload-model`.
///
/// `--shards N` serves the stream through the sharded front end
/// instead of one engine: chunks route by province, `--reload-model`
/// pushes to every shard, and `--adapt` runs one controller per shard
/// (see [`serve_adaptively_sharded`]). Scores stay bit-identical to the
/// single-engine path. `--loadgen-trace PATTERN` switches to synthetic
/// trace replay entirely (see [`cmd_loadgen_replay`]).
fn cmd_serve_replay(args: &ParsedArgs, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    // `--loadgen-trace` switches to synthetic-trace replay: no `--data`
    // stream, no Fig. 5 curve — throughput and tail latency instead.
    if args.optional("loadgen-trace").is_some() {
        return cmd_loadgen_replay(args, out);
    }
    let bundle = load_bundle(args.required("model")?)?;
    let frame = load_frame(args.required("data")?)?;
    let out_path = args.required("out")?;
    let chunk = args.get_or("chunk", 1usize)?;
    let grid_points = args.get_or("grid", 40usize)?.max(1);

    let stream_rows = frame.filter_rows(|y, _, _| y == 2020);
    if stream_rows.is_empty() {
        return Err(CliError::Data("no 2020 rows to replay".into()));
    }
    let stream = frame.select(&stream_rows);

    // The incumbent: the platform's existing scorer, stood in by the raw
    // GBDT extractor, approving below the 70th percentile of its scores.
    let incumbent = bundle
        .extractor
        .predict_proba_batch(stream.feature_matrix());
    let mut sorted = incumbent.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));
    let incumbent_threshold = sorted[(sorted.len() as f64 * 0.70) as usize];

    let shards = args.get_or("shards", 1usize)?;
    if shards == 0 {
        return Err(CliError::Data("--shards must be positive".into()));
    }
    if args.switch("adapt") && args.optional("reload-model").is_some() {
        return Err(CliError::Data(
            "--adapt and --reload-model are mutually exclusive".into(),
        ));
    }
    let adapt_log = args.optional("adapt-log").map(Path::new);

    // The companion: the bundle served live through the engine — one
    // engine by default, or the sharded front end under `--shards N`
    // (chunks routed by their first row's province; scores are
    // bit-identical either way since every shard serves the same
    // bundle).
    let (companion, adapt_json, stats_list) = if shards == 1 {
        let (engine, opts) = engine_from_flags(args, bundle)?;
        let mut adaptation: Option<PromotionController> = None;
        let companion = if args.switch("adapt") {
            let (scores, controller) = serve_adaptively(args, &engine, &stream, chunk, opts)?;
            adaptation = Some(controller);
            scores
        } else {
            match args.optional("reload-model") {
                None => score_through_engine(&engine, &stream, chunk, opts)?,
                Some(reload_path) => {
                    // Serve the first half, hot-reload mid-stream, serve the rest.
                    let half = stream.len() / 2;
                    let first: Vec<usize> = (0..half).collect();
                    let rest: Vec<usize> = (half..stream.len()).collect();
                    let mut scores =
                        score_through_engine(&engine, &stream.select(&first), chunk, opts)?;
                    let probe_features = stream.row(0).to_vec();
                    let probe_envs = vec![stream.province[0]];
                    match ModelBundle::load_from_path(Path::new(reload_path)) {
                        Ok(candidate) => {
                            match engine.reload(candidate, &probe_features, &probe_envs) {
                                Ok(()) => writeln!(out, "hot-reloaded bundle from {reload_path}")?,
                                Err(e) => writeln!(
                                    out,
                                    "reload of {reload_path} rejected ({e}); incumbent keeps serving"
                                )?,
                            }
                        }
                        Err(e) => writeln!(
                            out,
                            "reload of {reload_path} refused ({e}); incumbent keeps serving"
                        )?,
                    }
                    scores.extend(score_through_engine(
                        &engine,
                        &stream.select(&rest),
                        chunk,
                        opts,
                    )?);
                    scores
                }
            }
        };
        // As in `score`: surface serve_* telemetry through `--metrics-out`.
        obs::registry().merge_snapshot(&engine.metrics_snapshot());
        write_drift_report(args, &engine, out)?;
        let stats = engine.shutdown();
        let adapt_json = match &adaptation {
            None => None,
            Some(controller) => Some(adapt_summary(controller, "", adapt_log, out)?),
        };
        (companion, adapt_json, vec![stats])
    } else {
        let (sharded, opts) = sharded_from_flags(args, &bundle, shards)?;
        let mut adaptation: Option<Vec<PromotionController>> = None;
        let companion = if args.switch("adapt") {
            let (scores, controllers) =
                serve_adaptively_sharded(args, &sharded, &stream, chunk, opts)?;
            adaptation = Some(controllers);
            scores
        } else {
            match args.optional("reload-model") {
                None => score_through_sharded(&sharded, &stream, chunk, opts)?,
                Some(reload_path) => {
                    // Same mid-stream hot reload, pushed to every shard.
                    let half = stream.len() / 2;
                    let first: Vec<usize> = (0..half).collect();
                    let rest: Vec<usize> = (half..stream.len()).collect();
                    let mut scores =
                        score_through_sharded(&sharded, &stream.select(&first), chunk, opts)?;
                    let probe_features = stream.row(0).to_vec();
                    let probe_envs = vec![stream.province[0]];
                    match ModelBundle::load_from_path(Path::new(reload_path)) {
                        Ok(candidate) => {
                            match sharded.reload_all(&candidate, &probe_features, &probe_envs) {
                                Ok(()) => writeln!(
                                    out,
                                    "hot-reloaded bundle from {reload_path} on all {shards} shards"
                                )?,
                                Err((i, e)) => writeln!(
                                    out,
                                    "reload of {reload_path} rejected by shard {i} ({e}); \
                                     shards {i}.. keep their incumbent"
                                )?,
                            }
                        }
                        Err(e) => writeln!(
                            out,
                            "reload of {reload_path} refused ({e}); incumbent keeps serving"
                        )?,
                    }
                    scores.extend(score_through_sharded(
                        &sharded,
                        &stream.select(&rest),
                        chunk,
                        opts,
                    )?);
                    scores
                }
            }
        };
        for i in 0..sharded.shards() {
            obs::registry().merge_snapshot(&sharded.shard(i).metrics_snapshot());
        }
        write_drift_report_sharded(args, &sharded, out)?;
        let stats = sharded.shutdown();
        let adapt_json = match &adaptation {
            None => None,
            Some(controllers) => {
                let mut blocks = Vec::with_capacity(controllers.len());
                for (i, controller) in controllers.iter().enumerate() {
                    let log = adapt_log.map(|p| p.with_extension(format!("shard{i}")));
                    blocks.push(adapt_summary(
                        controller,
                        &format!(" (shard {i})"),
                        log.as_deref(),
                        out,
                    )?);
                }
                Some(serde_json::Value::Array(blocks))
            }
        };
        (companion, adapt_json, stats)
    };

    let grid: Vec<f64> = (0..=grid_points)
        .map(|i| i as f64 / grid_points as f64)
        .collect();
    let replayed = replay(
        &incumbent,
        &companion,
        &stream.label,
        incumbent_threshold,
        &grid,
    )
    .map_err(|e| CliError::Data(e.to_string()))?;

    let mut report = serde_json::json!({
        "rows": stream.len(),
        "incumbent_threshold": incumbent_threshold,
        "incumbent_bad_debt": replayed.incumbent_bad_debt,
        "curve": replayed.curve,
    });
    if let serde_json::Value::Object(map) = &mut report {
        if shards == 1 {
            // The historical single-engine schema, unchanged.
            map.insert("engine".into(), serde_json::json!(&stats_list[0]));
        } else {
            map.insert("shards".into(), serde_json::json!(shards));
            map.insert("shard_engines".into(), serde_json::json!(&stats_list));
        }
    }
    // Only present under `--adapt`, keeping the default report unchanged.
    if let (Some(adapt), serde_json::Value::Object(map)) = (adapt_json, &mut report) {
        map.insert("adapt".into(), adapt);
    }
    std::fs::write(
        Path::new(out_path),
        serde_json::to_string_pretty(&report).expect("replay output serializes"),
    )?;

    writeln!(
        out,
        "served {} rows in {}-row requests; incumbent bad debt {:.2}%",
        stream.len(),
        chunk.max(1),
        replayed.incumbent_bad_debt * 100.0
    )?;
    let best = replayed
        .curve
        .iter()
        .min_by(|a, b| a.bad_debt_rate.total_cmp(&b.bad_debt_rate))
        .expect("nonempty grid");
    writeln!(
        out,
        "best companion point: tau={:.3} bad debt {:.2}% (FPR {:.1}%, veto {:.1}%)",
        best.threshold,
        best.bad_debt_rate * 100.0,
        best.false_positive_rate * 100.0,
        best.veto_rate * 100.0
    )?;
    if shards == 1 {
        write_engine_summary(out, "engine", &stats_list[0])?;
    } else {
        for (i, stats) in stats_list.iter().enumerate() {
            write_engine_summary(out, &format!("shard {i}"), stats)?;
        }
    }
    writeln!(out, "curve written to {out_path}")?;
    Ok(())
}

/// Honor `--drift-out p.json` for the sharded front end: every shard's
/// sentinel reports independently (each shard saw only its routed
/// slice), bundled as `{"shards": [report, ...]}`.
fn write_drift_report_sharded(
    args: &ParsedArgs,
    sharded: &ShardedEngine,
    out: &mut dyn std::io::Write,
) -> Result<(), CliError> {
    let Some(path) = args.optional("drift-out") else {
        return Ok(());
    };
    let reports: Vec<serde_json::Value> = (0..sharded.shards())
        .map(|i| match sharded.shard(i).drift_monitor() {
            Some(monitor) => {
                monitor.check_now();
                serde_json::to_value(&monitor.drift_report())
            }
            None => serde_json::json!({ "envs": Vec::<serde_json::Value>::new() }),
        })
        .collect();
    std::fs::write(
        Path::new(path),
        serde_json::to_string_pretty(&serde_json::json!({ "shards": reports }))
            .expect("drift report serializes"),
    )?;
    writeln!(
        out,
        "per-shard drift report ({} shards) at {path}",
        sharded.shards()
    )?;
    Ok(())
}

/// `serve-replay --loadgen-trace diurnal|flash-crowd|mixed-priority|skewed
/// --model model.json --out report.json [--shards N] [--submitters T]
/// [--loadgen-events E] [--loadgen-seed S]` — replay a deterministic
/// synthetic trace (the same generator the `loadgen` bench bin drives)
/// through the sharded front end and write aggregate throughput, p99 /
/// p99.9 enqueue-to-reply latency, and the replay's score digest. The
/// digest is a pure function of trace and bundle — identical across
/// shard, worker, and submitter counts — so two runs can be diffed for
/// determinism from the report alone.
fn cmd_loadgen_replay(args: &ParsedArgs, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let pattern_name = args.required("loadgen-trace")?;
    let pattern = TracePattern::parse(pattern_name).ok_or_else(|| {
        CliError::Data(format!(
            "--loadgen-trace {pattern_name:?} must be diurnal | flash-crowd | \
             mixed-priority | skewed"
        ))
    })?;
    let bundle = load_bundle(args.required("model")?)?;
    let out_path = args.required("out")?;
    let shards = args.get_or("shards", 4usize)?;
    if shards == 0 {
        return Err(CliError::Data("--shards must be positive".into()));
    }
    let submitters = args.get_or("submitters", 2usize)?.max(1);
    let envs = ProvinceCatalog::standard().names().len() as u16;
    let mut tc = TraceConfig::quick(pattern, bundle.n_features() as u32, envs);
    tc.events = args.get_or("loadgen-events", tc.events)?;
    tc.seed = args.get_or("loadgen-seed", tc.seed)?;
    let trace = synthesize_trace(&tc);

    let (sharded, _) = sharded_from_flags(args, &bundle, shards)?;
    let outcome = replay_trace(&sharded, trace, submitters)
        .map_err(|e| CliError::Data(format!("trace replay: {e}")))?;
    let tail = sharded.merged_enqueue_to_reply();
    let p99_us = tail.quantile(0.99) as f64 / 1_000.0;
    let p999_us = tail.quantile(0.999) as f64 / 1_000.0;
    let stats = sharded.shutdown();
    let digest = outcome.score_digest();

    let report = serde_json::json!({
        "pattern": pattern.name(),
        "seed": tc.seed,
        "shards": shards,
        "submitters": submitters,
        "events": outcome.events,
        "rows": outcome.rows,
        "retried_sheds": outcome.retried_sheds,
        "secs": outcome.elapsed.as_secs_f64(),
        "aggregate_rows_per_sec": outcome.rows_per_sec(),
        "enqueue_to_reply_p99_us": p99_us,
        "enqueue_to_reply_p999_us": p999_us,
        "score_digest": format!("{digest:016x}"),
        "shard_engines": &stats,
    });
    std::fs::write(
        Path::new(out_path),
        serde_json::to_string_pretty(&report).expect("report serializes"),
    )?;
    writeln!(
        out,
        "replayed {} trace: {} rows over {} events across {shards} shard(s), \
         {:.0} rows/s, p99 {p99_us:.1}us, p99.9 {p999_us:.1}us, digest {digest:016x}",
        pattern.name(),
        outcome.rows,
        outcome.events,
        outcome.rows_per_sec()
    )?;
    writeln!(out, "trace report written to {out_path}")?;
    Ok(())
}

/// `evaluate --model model.json --data world.bin [--min-rows N]` — the
/// paper's mKS/wKS/mAUC/wAUC per-province summary on the 2020 slice.
fn cmd_evaluate(args: &ParsedArgs, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let bundle = load_bundle(args.required("model")?)?;
    let frame = load_frame(args.required("data")?)?;
    let min_rows = args.get_or("min-rows", 50usize)?;
    let test_rows = frame.filter_rows(|y, _, _| y == 2020);
    if test_rows.is_empty() {
        return Err(CliError::Data("no 2020 rows to evaluate".into()));
    }
    let test = frame.select(&test_rows);
    let catalog = ProvinceCatalog::standard();
    let mut buckets: Vec<lightmirm_metrics::EnvScores> = catalog
        .names()
        .into_iter()
        .map(lightmirm_metrics::EnvScores::new)
        .collect();
    for r in 0..test.len() {
        let score = bundle.score(test.row(r), test.province[r]);
        buckets[test.province[r] as usize].push(score, test.label[r]);
    }
    buckets.retain(|b| b.len() >= min_rows);
    let summary = lightmirm_metrics::FairnessSummary::compute(&buckets)
        .map_err(|e| CliError::Data(e.to_string()))?;
    writeln!(
        out,
        "provinces evaluated: {} (>= {min_rows} rows each)",
        summary.envs.len()
    )?;
    writeln!(
        out,
        "mKS {:.4}  wKS {:.4} ({})  mAUC {:.4}  wAUC {:.4} ({})",
        summary.m_ks,
        summary.w_ks,
        summary.worst_ks_env,
        summary.m_auc,
        summary.w_auc,
        summary.worst_auc_env
    )?;

    // Pooled decile lift table (the standard model-documentation view).
    let mut scores = Vec::with_capacity(test.len());
    for r in 0..test.len() {
        scores.push(bundle.score(test.row(r), test.province[r]));
    }
    if let Ok(table) = lift_table(&scores, &test.label, 10) {
        writeln!(out, "\ndecile lift (1 = riskiest):")?;
        for b in &table {
            writeln!(
                out,
                "  {:>2}: rate {:>6.2}%  lift {:>5.2}  cum.capture {:>5.1}%",
                b.rank,
                b.rate * 100.0,
                b.lift,
                b.cumulative_capture * 100.0
            )?;
        }
    }
    Ok(())
}

/// `audit --model model.json --baseline base.bin --current cur.bin` —
/// score-drift PSI plus discrimination on both slices.
fn cmd_audit(args: &ParsedArgs, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let bundle = load_bundle(args.required("model")?)?;
    let baseline = load_frame(args.required("baseline")?)?;
    let current = load_frame(args.required("current")?)?;
    let score_all = |frame: &LoanFrame| -> Vec<f64> {
        (0..frame.len())
            .map(|r| bundle.score(frame.row(r), frame.province[r]))
            .collect()
    };
    let base_scores = score_all(&baseline);
    let cur_scores = score_all(&current);
    let drift = psi(&base_scores, &cur_scores, 10).map_err(|e| CliError::Data(e.to_string()))?;
    writeln!(out, "score PSI: {:.4} ({:?})", drift.psi, drift.level())?;
    for (name, scores, frame) in [
        ("baseline", &base_scores, &baseline),
        ("current", &cur_scores, &current),
    ] {
        match (ks(scores, &frame.label), auc(scores, &frame.label)) {
            (Ok(k), Ok(a)) => writeln!(
                out,
                "{name}: KS {k:.4} AUC {a:.4} over {} rows",
                frame.len()
            )?,
            _ => writeln!(out, "{name}: discrimination unscorable (single class?)")?,
        }
    }
    Ok(())
}

/// `explain --model model.json --data world.bin --row N [--top K]` —
/// additive reason codes for one application's score (the adverse-action
/// explanation lending regulations require).
fn cmd_explain(args: &ParsedArgs, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let bundle = load_bundle(args.required("model")?)?;
    let frame = load_frame(args.required("data")?)?;
    let row = args.get_or("row", 0usize)?;
    let top = args.get_or("top", 5usize)?;
    if row >= frame.len() {
        return Err(CliError::Data(format!(
            "row {row} out of range ({} rows)",
            frame.len()
        )));
    }
    let head = match &bundle.model {
        lightmirm_core::bundle::StoredModel::Global(m) => m.clone(),
        lightmirm_core::bundle::StoredModel::PerEnv { base, per_env } => per_env
            .get(frame.province[row] as usize)
            .and_then(Option::as_ref)
            .unwrap_or(base)
            .clone(),
    };
    let ex = lightmirm_core::explain::explain_row(&bundle.extractor, &head, frame.row(row));
    let schema = Schema::standard();
    let catalog = ProvinceCatalog::standard();
    writeln!(
        out,
        "row {row} ({}, {}): default probability {:.2}% (logit {:+.4}), actual label {}",
        catalog.get(frame.province[row]).name,
        frame.year[row],
        ex.probability * 100.0,
        ex.logit,
        frame.label[row]
    )?;
    let reasons = ex.top_risk_features(top);
    if reasons.is_empty() {
        writeln!(
            out,
            "no positive risk drivers (all attributions pull toward approval)"
        )?;
    } else {
        writeln!(out, "top risk drivers (reason codes):")?;
        for (f, attribution) in reasons {
            let name = schema
                .features()
                .get(f as usize)
                .map(|d| d.name.as_str())
                .unwrap_or("?");
            writeln!(out, "  {name:<24} {attribution:+.4}")?;
        }
    }
    Ok(())
}

/// `stress-lab`: run the IRM stress-lab scenario grid from
/// `lightmirm_experiments::stresslab` and write the per-trainer
/// scorecard (`scorecard.json`) plus a human-readable verdict table.
///
/// Flags: `--quick` (default) or `--full` selects the grid;
/// `--out DIR` overrides the output directory. The quick grid is the
/// regression-gated one pinned at `results/stresslab/scorecard.json`.
fn cmd_stress_lab(args: &ParsedArgs, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    use lightmirm_experiments::stresslab::{self, Grid};
    if args.switch("quick") && args.switch("full") {
        return Err(CliError::Data(
            "choose one of --quick / --full, not both".into(),
        ));
    }
    let grid = if args.switch("full") {
        Grid::Full
    } else {
        Grid::Quick
    };
    let out_dir = args.get_or("out", "results/stresslab".to_string())?;
    let card = stresslab::compute_scorecard(grid);
    std::fs::create_dir_all(&out_dir)?;
    let path = Path::new(&out_dir).join("scorecard.json");
    let text = serde_json::to_string_pretty(&card)
        .map_err(|e| CliError::Data(format!("serialize scorecard: {e}")))?;
    std::fs::write(&path, text + "\n")?;
    let n_scenarios = card["scenarios"].as_array().map_or(0, Vec::len);
    writeln!(
        out,
        "stress-lab: {} grid, {} scenarios -> {}",
        grid.name(),
        n_scenarios,
        path.display()
    )?;
    for t in card["trainers"]
        .as_array()
        .ok_or_else(|| CliError::Data("scorecard has no trainers".into()))?
    {
        let verdicts: String = t["cells"]
            .as_array()
            .map(|cells| {
                cells
                    .iter()
                    .map(|c| if c["pass"] == true { 'P' } else { 'F' })
                    .collect()
            })
            .unwrap_or_default();
        writeln!(
            out,
            "  {:<14} pass {}/{n_scenarios} [{verdicts}]  crossover_n {}",
            t["name"].as_str().unwrap_or("?"),
            t["n_pass"].as_u64().unwrap_or(0),
            t["crossover"]["crossover_n"]
                .as_u64()
                .map_or("never".to_string(), |n| n.to_string()),
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("lightmirm-cli-tests");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir.join(name).to_string_lossy().into_owned()
    }

    fn run_line(line: &str) -> Result<String, CliError> {
        let args = ParsedArgs::parse(line.split_whitespace().map(String::from)).expect("parses");
        let mut buf = Vec::new();
        run(&args, &mut buf)?;
        Ok(String::from_utf8(buf).expect("utf8 output"))
    }

    #[test]
    fn full_workflow_generate_train_score_evaluate_audit() {
        let data = tmp("world.bin");
        let model = tmp("model.json");
        let scores = tmp("scores.csv");

        let msg = run_line(&format!("generate --out {data} --rows 6000 --seed 3")).unwrap();
        assert!(msg.contains("6000 rows"));

        let msg = run_line(&format!(
            "train --data {data} --out {model} --method lightmirm --trees 8 --epochs 15"
        ))
        .unwrap();
        assert!(msg.contains("lightmirm"), "{msg}");

        let msg = run_line(&format!(
            "score --model {model} --data {data} --out {scores}"
        ))
        .unwrap();
        assert!(msg.contains("scored 6000 rows"));
        let written = std::fs::read_to_string(&scores).unwrap();
        assert!(written.starts_with("row,province,score\n"));
        assert_eq!(written.lines().count(), 6001);

        let msg = run_line(&format!(
            "evaluate --model {model} --data {data} --min-rows 20"
        ))
        .unwrap();
        assert!(msg.contains("mKS"), "{msg}");

        let msg = run_line(&format!(
            "audit --model {model} --baseline {data} --current {data}"
        ))
        .unwrap();
        assert!(msg.contains("score PSI: 0.0000"), "{msg}");

        // Explain the riskiest loan: the top-scoring row must have at
        // least one positive attribution driving its score up.
        let riskiest = written
            .lines()
            .skip(1)
            .max_by(|a, b| {
                let score = |l: &str| l.rsplit(',').next().unwrap().parse::<f64>().unwrap();
                score(a).total_cmp(&score(b))
            })
            .and_then(|l| l.split(',').next())
            .unwrap()
            .to_string();
        let msg = run_line(&format!(
            "explain --model {model} --data {data} --row {riskiest} --top 4"
        ))
        .unwrap();
        assert!(msg.contains("default probability"), "{msg}");
        assert!(msg.contains("reason codes"), "{msg}");
    }

    #[test]
    fn score_is_identical_for_any_batch_and_worker_count() {
        let data = tmp("world_det.bin");
        let model = tmp("model_det.json");
        run_line(&format!("generate --out {data} --rows 4000 --seed 11")).unwrap();
        run_line(&format!(
            "train --data {data} --out {model} --method erm --trees 6 --epochs 5"
        ))
        .unwrap();
        let mut outputs = Vec::new();
        for (batch, workers) in [(1, 1), (64, 2), (256, 4)] {
            let scores = tmp(&format!("scores_b{batch}_w{workers}.csv"));
            run_line(&format!(
                "score --model {model} --data {data} --out {scores} \
                 --batch {batch} --workers {workers}"
            ))
            .unwrap();
            outputs.push(std::fs::read_to_string(&scores).unwrap());
        }
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[1], outputs[2]);
    }

    #[test]
    fn serve_replay_writes_curve_and_engine_stats() {
        let data = tmp("world_replay.bin");
        let model = tmp("model_replay.json");
        let replay_out = tmp("replay.json");
        run_line(&format!("generate --out {data} --rows 6000 --seed 13")).unwrap();
        run_line(&format!(
            "train --data {data} --out {model} --method lightmirm --trees 8 --epochs 10"
        ))
        .unwrap();
        let msg = run_line(&format!(
            "serve-replay --model {model} --data {data} --out {replay_out} \
             --chunk 3 --workers 2 --grid 10"
        ))
        .unwrap();
        assert!(msg.contains("incumbent bad debt"), "{msg}");
        assert!(msg.contains("engine:"), "{msg}");
        let json: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&replay_out).unwrap()).unwrap();
        assert_eq!(json["curve"].as_array().unwrap().len(), 11);
        let served = json["engine"]["rows_scored"].as_u64().unwrap();
        assert_eq!(served, json["rows"].as_u64().unwrap());
        // τ = 0 vetoes every approval: the leftmost curve point is total.
        assert_eq!(json["curve"][0]["veto_rate"].as_f64().unwrap(), 1.0);
    }

    #[test]
    fn generate_csv_round_trips_through_train() {
        let data = tmp("world.csv");
        let model = tmp("model2.json");
        run_line(&format!("generate --out {data} --rows 3000 --seed 5")).unwrap();
        let msg = run_line(&format!(
            "train --data {data} --out {model} --method erm --trees 6 --epochs 5"
        ))
        .unwrap();
        assert!(msg.contains("erm"));
    }

    #[test]
    fn unknown_command_and_method_error() {
        assert!(matches!(
            run_line("frobnicate --x 1"),
            Err(CliError::UnknownCommand(_))
        ));
        let data = tmp("world3.bin");
        run_line(&format!("generate --out {data} --rows 2000 --seed 1")).unwrap();
        let model = tmp("model3.json");
        let err =
            run_line(&format!("train --data {data} --out {model} --method magic")).unwrap_err();
        assert!(matches!(err, CliError::Data(_)));
    }

    #[test]
    fn stress_lab_writes_a_conformant_scorecard() {
        let out_dir = tmp("stresslab");
        let msg = run_line(&format!("stress-lab --quick --out {out_dir}")).unwrap();
        assert!(msg.contains("stress-lab: quick grid"), "{msg}");
        assert!(msg.contains("LightMIRM"), "{msg}");
        // The CLI must emit exactly the pinned scorecard: same grid,
        // same deterministic numbers as the experiments bin.
        let written: serde_json::Value = serde_json::from_str(
            &std::fs::read_to_string(std::path::Path::new(&out_dir).join("scorecard.json"))
                .unwrap(),
        )
        .unwrap();
        let pinned: serde_json::Value = serde_json::from_str(
            &std::fs::read_to_string(concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../results/stresslab/scorecard.json"
            ))
            .unwrap(),
        )
        .unwrap();
        assert_eq!(
            written, pinned,
            "CLI scorecard must match the pinned snapshot"
        );
        // Both grid switches at once is a user error.
        assert!(matches!(
            run_line(&format!("stress-lab --quick --full --out {out_dir}")),
            Err(CliError::Data(_))
        ));
    }

    #[test]
    fn missing_files_surface_io_errors() {
        assert!(matches!(
            run_line("score --model /nonexistent.json --data /nonexistent.bin --out /tmp/x"),
            Err(CliError::Io(_))
        ));
    }
}
