//! Tier-1 golden conformance: rerun the pinned seeded pipeline and fail
//! if any Table I/II metric drifts from `results/golden/table_metrics.json`
//! beyond the documented tolerance. The numeric stack is deterministic
//! end to end, so unchanged code reproduces the snapshot bit-exactly; a
//! failure here means a numeric behavior change that must either be fixed
//! or acknowledged by regenerating the snapshot (see EXPERIMENTS.md).

use lightmirm_experiments::golden;

fn pinned_snapshot() -> serde_json::Value {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../results/golden/table_metrics.json");
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); regenerate with \
             `cargo run --release -p lightmirm-experiments --bin golden`",
            path.display()
        )
    });
    serde_json::from_str(&text).expect("snapshot parses")
}

#[test]
fn seeded_pipeline_matches_golden_snapshot() {
    let pinned = pinned_snapshot();
    let fresh = golden::compute_golden();
    let drift = golden::compare_golden(&pinned, &fresh);
    assert!(
        drift.is_empty(),
        "golden conformance drift:\n  {}\nIf this change is intentional, regenerate \
         results/golden/table_metrics.json with the `golden` binary and commit it.",
        drift.join("\n  ")
    );
}

#[test]
fn comparator_flags_a_perturbed_snapshot() {
    // The harness must demonstrably fail when a metric is wrong: perturb
    // one pinned value past the tolerance and require a drift report.
    let pinned = pinned_snapshot();
    let perturbed = golden::perturb_first_method(&pinned, "m_auc", 1e-4);
    let drift = golden::compare_golden(&pinned, &perturbed);
    assert_eq!(drift.len(), 1, "exactly the perturbed metric: {drift:?}");
    assert!(drift[0].contains("m_auc"), "{}", drift[0]);
}
