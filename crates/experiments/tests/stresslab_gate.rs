//! Tier-1 regression gate for the IRM stress-lab scorecard.
//!
//! Recomputes the quick-grid scorecard and compares it against the
//! pinned snapshot (`results/stresslab/scorecard.json`) at the golden
//! tolerance — every SEM draw, trainer update, and metric is
//! deterministic, so any drift is a real numeric change and any verdict
//! flip is a regression in an invariance claim. Also proves the gate
//! actually bites: a deliberately weakened LightMIRM (λ = 0) must flip
//! previously-passing scenarios to fail and trip the comparator.
//!
//! Regenerate the snapshot after an *intentional* change with
//! `cargo run --release -p lightmirm-experiments --bin stresslab -- --quick`
//! (policy in EXPERIMENTS.md).

use std::sync::OnceLock;

use lightmirm_experiments::stresslab::{
    compare_scorecard, compute_scorecard, compute_scorecard_with, default_trainers, Grid,
};
use serde_json::Value;

fn pinned() -> Value {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/stresslab/scorecard.json"
    );
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("pinned scorecard missing at {path}: {e}"));
    serde_json::from_str(&text).expect("pinned scorecard parses")
}

/// The quick grid recomputed once and shared by every test in this
/// binary (the sweep trains 8 trainers × 6 scenarios + crossover).
fn fresh() -> &'static Value {
    static FRESH: OnceLock<Value> = OnceLock::new();
    FRESH.get_or_init(|| compute_scorecard(Grid::Quick))
}

#[test]
fn quick_scorecard_matches_the_pinned_snapshot() {
    let drift = compare_scorecard(&pinned(), fresh());
    assert!(
        drift.is_empty(),
        "stress-lab scorecard drifted from results/stresslab/scorecard.json \
         ({} finding(s)):\n  {}\nIf the change is intentional, regenerate with \
         `cargo run --release -p lightmirm-experiments --bin stresslab -- --quick` \
         and commit the refreshed snapshot.",
        drift.len(),
        drift.join("\n  ")
    );
}

#[test]
fn light_mirm_passes_where_erm_fails() {
    // The acceptance claim of the stress-lab, asserted directly on the
    // pinned card: LightMIRM clears every spurious-sweep and long-tail
    // scenario; plain ERM fails every one of them.
    let card = pinned();
    let scenarios: Vec<(String, String)> = card["scenarios"]
        .as_array()
        .expect("scenarios")
        .iter()
        .map(|s| {
            (
                s["id"].as_str().unwrap().to_string(),
                s["family"].as_str().unwrap().to_string(),
            )
        })
        .collect();
    let gated: Vec<&String> = scenarios
        .iter()
        .filter(|(_, fam)| fam == "spurious_sweep" || fam == "long_tail")
        .map(|(id, _)| id)
        .collect();
    assert!(
        gated.len() >= 4,
        "expected ≥ 4 gated scenarios, got {gated:?}"
    );
    let verdict = |trainer: &str, scenario: &str| -> bool {
        card["trainers"]
            .as_array()
            .expect("trainers")
            .iter()
            .find(|t| t["name"] == trainer)
            .unwrap_or_else(|| panic!("{trainer} missing from scorecard"))["cells"]
            .as_array()
            .expect("cells")
            .iter()
            .find(|c| c["scenario"] == scenario)
            .unwrap_or_else(|| panic!("{trainer} × {scenario} missing"))["pass"]
            .as_bool()
            .expect("pass flag")
    };
    for sid in gated {
        assert!(verdict("LightMIRM", sid), "LightMIRM must pass {sid}");
        assert!(
            !verdict("ERM", sid),
            "ERM must fail {sid} or the scenario proves nothing"
        );
    }
}

#[test]
fn a_weakened_trainer_flips_the_gate_to_fail() {
    // λ = 0 turns LightMIRM's invariance penalty off; its cells must
    // regress and the comparator must say so loudly. Only the weakened
    // trainer is recomputed; its entry is spliced into the pinned card
    // so the comparison isolates the one trainer under test.
    let mut weak = default_trainers();
    let lm = weak
        .iter_mut()
        .find(|t| t.name == "LightMIRM")
        .expect("LightMIRM in default trainers");
    lm.lambda = 0.0;
    let weak_lm = weak
        .into_iter()
        .filter(|t| t.name == "LightMIRM")
        .collect::<Vec<_>>();
    let weak_card = compute_scorecard_with(Grid::Quick, &weak_lm);
    let weak_entry = weak_card["trainers"].as_array().expect("trainers")[0].clone();

    let pinned_card = pinned();
    let mut trainers = pinned_card["trainers"]
        .as_array()
        .expect("trainers")
        .clone();
    let idx = trainers
        .iter()
        .position(|t| t["name"] == "LightMIRM")
        .expect("LightMIRM pinned");
    trainers[idx] = weak_entry;
    let mut root = pinned_card.as_object().expect("object").clone();
    root.insert("trainers".into(), Value::Array(trainers));
    let sabotaged = Value::Object(root);

    let drift = compare_scorecard(&pinned_card, &sabotaged);
    let regressions: Vec<&String> = drift
        .iter()
        .filter(|d| d.starts_with("REGRESSION LightMIRM"))
        .collect();
    assert!(
        !regressions.is_empty(),
        "weakening λ to 0 must trip the regression gate; drift was: {drift:?}"
    );
    // Specifically: previously-passing spurious-sweep cells now fail.
    assert!(
        regressions.iter().any(|d| d.contains("spur_strong")),
        "expected a spur_strong regression, got {regressions:?}"
    );
}

#[test]
fn scorecard_roundtrips_through_json_bit_exactly() {
    // The pinned file is the serialized form; the gate only works if
    // serialization is lossless (float_roundtrip semantics).
    let card = fresh();
    let text = serde_json::to_string_pretty(card).expect("serialize");
    let back: Value = serde_json::from_str(&text).expect("parse back");
    assert_eq!(&back, card, "scorecard JSON round-trip must be lossless");
    assert!(
        compare_scorecard(card, &back).is_empty(),
        "round-tripped scorecard must conform to itself"
    );
}
