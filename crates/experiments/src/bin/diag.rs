//! Diagnostics: GBDT ceiling, LR convergence, and signal levels.
//! Not a paper artifact — a tuning aid.

use lightmirm_core::prelude::*;
use lightmirm_experiments::{build_world, ExpConfig};
use lightmirm_metrics::{auc, ks};

fn main() {
    let cfg = ExpConfig::from_args();
    let world = build_world(&cfg);
    println!(
        "world: {} train / {} test rows, {} leaf features",
        world.train.n_rows(),
        world.test.n_rows(),
        world.train.n_cols()
    );

    // GBDT ceiling: the extractor's own scores on train and test.
    let gb_train = world
        .extractor
        .gbdt()
        .predict_proba_batch(world.frame_train.feature_matrix());
    let gb_test = world
        .extractor
        .gbdt()
        .predict_proba_batch(world.frame_test.feature_matrix());
    println!(
        "GBDT train AUC {:.4} KS {:.4} | test AUC {:.4} KS {:.4}",
        auc(&gb_train, &world.frame_train.label).unwrap(),
        ks(&gb_train, &world.frame_train.label).unwrap(),
        auc(&gb_test, &world.frame_test.label).unwrap(),
        ks(&gb_test, &world.frame_test.label).unwrap(),
    );

    // ERM LR convergence trace.
    let mut bc = cfg.baseline_config();
    bc.epochs = 600;
    let rows_train = world.train.all_rows();
    let rows_test = world.test.all_rows();
    let mut trace: Vec<(usize, f64, f64, f64)> = Vec::new();
    let mut obs = |epoch: usize, model: &LrModel| {
        if epoch.is_multiple_of(50) || epoch == 599 {
            let train_loss = env_loss(
                &model.weights,
                &world.train.x,
                &world.train.labels,
                &rows_train,
                0.0,
            );
            let p = model.predict_rows(&world.test.x, &rows_test);
            let labels: Vec<u8> = rows_test
                .iter()
                .map(|&r| world.test.labels[r as usize])
                .collect();
            trace.push((
                epoch,
                train_loss,
                auc(&p, &labels).unwrap(),
                ks(&p, &labels).unwrap(),
            ));
        }
    };
    ErmTrainer::new(bc).fit(&world.train, Some(&mut obs));
    println!("\nERM LR convergence (epoch, train loss, test AUC, test KS):");
    for (e, l, a, k) in &trace {
        println!("  {e:>4}  {l:.4}  {a:.4}  {k:.4}");
    }
}
