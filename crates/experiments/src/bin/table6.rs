//! Table VI — the i.i.d. setting: random 80/20 split instead of the
//! temporal one, eliminating the time shift so the comparison isolates
//! cross-province fairness (paper: all scores rise; complete meta-IRM has
//! the best means; LightMIRM the best wKS).

use lightmirm_experiments::{
    build_world_from_frames, fmt_row, print_header, reference, run_method, summarize, write_json,
    ExpConfig, Method,
};
use loansim::{generate, random_split, GeneratorConfig};

fn main() {
    let cfg = ExpConfig::from_args();
    let frame = generate(&GeneratorConfig {
        rows: cfg.rows,
        seed: cfg.seed,
        ..Default::default()
    });
    let split = random_split(&frame, 0.8, cfg.seed);
    let world = build_world_from_frames(&cfg, split.train, split.test);

    let methods = [
        Method::UpSampling,
        Method::GroupDro,
        Method::VRex,
        Method::MetaIrm(Some(5)),
        Method::MetaIrm(None),
        Method::light_mirm_default(),
    ];

    print_header("Table VI (paper reference, i.i.d. split)");
    for &(name, mks, wks, mauc, wauc) in reference::TABLE_VI {
        println!("{name:<22} {mks:>7.4} {wks:>7.4} {mauc:>7.4} {wauc:>7.4}");
    }

    print_header("Table VI (measured, i.i.d. split)");
    let mut rows = Vec::new();
    for method in methods {
        let run = run_method(&cfg, &world, method, None);
        let s = summarize(&cfg, &world, &run);
        println!(
            "{}  [{:.1}s]",
            fmt_row(&method.name(), &s),
            run.wall_seconds
        );
        rows.push(serde_json::json!({
            "method": method.name(),
            "mKS": s.m_ks, "wKS": s.w_ks, "mAUC": s.m_auc, "wAUC": s.w_auc,
        }));
    }
    write_json(&cfg, "table6", &serde_json::json!({ "rows": rows }));
}
