//! Regenerate EXPERIMENTS.md from the JSON artifacts in `results/`.
//!
//! Run the `all` binary first (or any subset); this binary assembles the
//! paper-vs-measured record. Missing artifacts are reported as "not run".

use lightmirm_experiments::{load_json, reference, ExpConfig};
use serde_json::Value;
use std::fmt::Write as _;

fn main() {
    let cfg = ExpConfig::from_args();
    let mut md = String::new();
    let push = |md: &mut String, s: &str| md.push_str(s);

    push(&mut md, "# EXPERIMENTS — paper vs measured\n\n");
    push(
        &mut md,
        "Regenerate with `cargo run --release -p lightmirm-experiments --bin all`\n\
         followed by `--bin report`. Measured numbers come from the synthetic\n\
         `loansim` world (DESIGN.md §2 documents the substitution); the\n\
         reproduction contract is the *shape* of each result, not absolute\n\
         values. All runs are seeded and deterministic.\n\n",
    );

    metric_table(
        &mut md,
        &cfg,
        "Table I — main comparison (temporal split: train 2016–19, test 2020)",
        "table1",
        reference::TABLE_I,
        "Shape check: ERM worst-tier wKS; fine-tuning lifts wKS; Group DRO\n\
         weakest on means; the meta family clearly ahead on wKS. LightMIRM is\n\
         best on mKS/mAUC/wAUC and within noise of complete meta-IRM's wKS at\n\
         roughly a tenth of its cost (wall seconds in results/table1.json).\n",
    );

    metric_table(
        &mut md,
        &cfg,
        "Table II — meta-IRM sampling variants vs LightMIRM",
        "table2",
        reference::TABLE_II,
        "Shape check: fixed-pool sampling (S=10/5) degrades wKS below the\n\
         complete meta-IRM; LightMIRM beats every variant at a fraction of the\n\
         cost (wall seconds in results/table2.json).\n",
    );

    table3(&mut md, &cfg);
    table4(&mut md, &cfg);
    table5(&mut md, &cfg);

    metric_table(
        &mut md,
        &cfg,
        "Table VI — i.i.d. random split",
        "table6",
        reference::TABLE_VI,
        "Shape check: every score exceeds its temporal-split counterpart\n\
         (no time shift); the meta family keeps the best worst-case numbers.\n",
    );

    ablation(&mut md, &cfg);
    fig1(&mut md, &cfg);
    fig4(&mut md, &cfg);
    fig5(&mut md, &cfg);
    fig6(&mut md, &cfg);
    fig7(&mut md, &cfg);
    fig9(&mut md, &cfg);
    fig10(&mut md, &cfg);
    fig11(&mut md, &cfg);

    std::fs::write("EXPERIMENTS.md", &md).expect("write EXPERIMENTS.md");
    println!("EXPERIMENTS.md written ({} bytes)", md.len());
}

fn metric_table(
    md: &mut String,
    cfg: &ExpConfig,
    title: &str,
    artifact: &str,
    paper: &[reference::MetricRow],
    shape_note: &str,
) {
    let _ = writeln!(md, "## {title}\n");
    let Some(data) = load_json(cfg, artifact) else {
        let _ = writeln!(md, "*not run — `--bin {artifact}`*\n");
        return;
    };
    let _ = writeln!(
        md,
        "| method | paper mKS | ours mKS | paper wKS | ours wKS | paper mAUC | ours mAUC | paper wAUC | ours wAUC |"
    );
    let _ = writeln!(md, "|---|---|---|---|---|---|---|---|---|");
    let rows = data["rows"].as_array().expect("rows");
    for &(name, p_mks, p_wks, p_mauc, p_wauc) in paper {
        let ours = rows.iter().find(|r| r["method"] == name);
        let fmt = |v: Option<&Value>, key: &str| {
            v.map(|r| format!("{:.4}", r[key].as_f64().expect("metric")))
                .unwrap_or_else(|| "—".into())
        };
        let _ = writeln!(
            md,
            "| {name} | {p_mks:.4} | {} | {p_wks:.4} | {} | {p_mauc:.4} | {} | {p_wauc:.4} | {} |",
            fmt(ours, "mKS"),
            fmt(ours, "wKS"),
            fmt(ours, "mAUC"),
            fmt(ours, "wAUC"),
        );
    }
    // Methods we ran that the paper table does not list (e.g. IRMv1).
    for r in rows {
        let name = r["method"].as_str().expect("name");
        if !paper.iter().any(|&(p, ..)| p == name) {
            let _ = writeln!(
                md,
                "| {name} (extension) | — | {:.4} | — | {:.4} | — | {:.4} | — | {:.4} |",
                r["mKS"].as_f64().expect("mKS"),
                r["wKS"].as_f64().expect("wKS"),
                r["mAUC"].as_f64().expect("mAUC"),
                r["wAUC"].as_f64().expect("wAUC"),
            );
        }
    }
    let _ = writeln!(md, "\n{shape_note}");
}

fn table3(md: &mut String, cfg: &ExpConfig) {
    let _ = writeln!(md, "## Table III — time per training step\n");
    let Some(data) = load_json(cfg, "table3") else {
        let _ = writeln!(md, "*not run — `--bin table3`*\n");
        return;
    };
    let _ = writeln!(
        md,
        "| step | paper meta-IRM | ours | paper meta-IRM(5) | ours | paper LightMIRM | ours |"
    );
    let _ = writeln!(md, "|---|---|---|---|---|---|---|");
    let measured = data["measured_seconds_per_epoch"].as_array().expect("rows");
    for (i, &(step, a, b, c)) in reference::TABLE_III.iter().enumerate() {
        if step == "the whole epoch" {
            // Units differ (paper reports epoch totals in seconds at 1.4M
            // rows); keep as seconds per epoch at our scale.
            let _ = writeln!(
                md,
                "| {step} | {a:.0} s | {:.3} s | {b:.0} s | {:.3} s | {c:.0} s | {:.3} s |",
                measured[0]["steps"][i].as_f64().expect("s"),
                measured[1]["steps"][i].as_f64().expect("s"),
                measured[2]["steps"][i].as_f64().expect("s"),
            );
        } else {
            let _ = writeln!(
                md,
                "| {step} | {a:.4} | {:.4} | {b:.4} | {:.4} | {c:.4} | {:.4} |",
                measured[0]["steps"][i].as_f64().expect("s"),
                measured[1]["steps"][i].as_f64().expect("s"),
                measured[2]["steps"][i].as_f64().expect("s"),
            );
        }
    }
    let _ = writeln!(
        md,
        "\nWhole-epoch speedup meta-IRM → LightMIRM: **{:.1}×** (paper ≈ 12×);\n\
         meta-loss step speedup: **{:.1}×** (paper ≈ 30×). Exact §III-F op\n\
         counts per epoch (asserted in tests): meta-IRM {}, meta-IRM(5) {},\n\
         LightMIRM {}.\n",
        data["epoch_speedup"].as_f64().expect("speedup"),
        data["meta_loss_speedup"].as_f64().expect("speedup"),
        measured[0]["ops_per_epoch"],
        measured[1]["ops_per_epoch"],
        measured[2]["ops_per_epoch"],
    );
}

fn table4(md: &mut String, cfg: &ExpConfig) {
    let _ = writeln!(md, "## Table IV — MRQ decay weight γ ablation\n");
    let Some(data) = load_json(cfg, "table4") else {
        let _ = writeln!(md, "*not run — `--bin table4`*\n");
        return;
    };
    let _ = writeln!(md, "| γ | paper mKS | ours mKS | paper wKS | ours wKS |");
    let _ = writeln!(md, "|---|---|---|---|---|");
    for &(gamma, p_mks, p_wks, _, _) in reference::TABLE_IV {
        let ours = data["rows"]
            .as_array()
            .expect("rows")
            .iter()
            .find(|r| (r["gamma"].as_f64().expect("gamma") - gamma).abs() < 1e-9);
        let fmt = |key: &str| {
            ours.map(|r| format!("{:.4}", r[key].as_f64().expect("metric")))
                .unwrap_or_else(|| "—".into())
        };
        let _ = writeln!(
            md,
            "| {gamma} | {p_mks:.4} | {} | {p_wks:.4} | {} |",
            fmt("mKS"),
            fmt("wKS")
        );
    }
    let _ = writeln!(
        md,
        "\nShape check: differences are third-decimal in the paper too; the\n\
         operative claims are γ=1 weakest (no recency weighting) and interior\n\
         γ stable. Seed-averaged over {} worlds.\n",
        data["seeds"]
    );
}

fn table5(md: &mut String, cfg: &ExpConfig) {
    let _ = writeln!(md, "## Table V — Guangdong 2020 (OOD province)\n");
    let Some(data) = load_json(cfg, "table5") else {
        let _ = writeln!(md, "*not run — `--bin table5`*\n");
        return;
    };
    let _ = writeln!(md, "| method | paper KS | ours KS | paper AUC | ours AUC |");
    let _ = writeln!(md, "|---|---|---|---|---|");
    for &(name, p_ks, p_auc) in reference::TABLE_V {
        let ours = data["rows"]
            .as_array()
            .expect("rows")
            .iter()
            .find(|r| r["method"] == name);
        let fmt = |key: &str| {
            ours.map(|r| format!("{:.4}", r[key].as_f64().expect("metric")))
                .unwrap_or_else(|| "—".into())
        };
        let _ = writeln!(
            md,
            "| {name} | {p_ks:.4} | {} | {p_auc:.4} | {} |",
            fmt("KS"),
            fmt("AUC")
        );
    }
    let _ = writeln!(
        md,
        "\nShape check: the slice's channel correlations shifted with its halved\n\
         share, and the invariant learners hold up best — LightMIRM has the\n\
         top AUC and the meta family the top KS tier, with ERM and Group DRO\n\
         at the bottom.\n",
    );
}

fn ablation(md: &mut String, cfg: &ExpConfig) {
    let _ = writeln!(md, "## Extension ablations (not in the paper)\n");
    let Some(data) = load_json(cfg, "ablation") else {
        let _ = writeln!(md, "*not run — `--bin ablation`*\n");
        return;
    };
    let _ = writeln!(md, "| variant | mKS | wKS | mAUC | wAUC | mean wall s |");
    let _ = writeln!(md, "|---|---|---|---|---|---|");
    for r in data["rows"].as_array().expect("rows") {
        let _ = writeln!(
            md,
            "| {} | {:.4} | {:.4} | {:.4} | {:.4} | {:.1} |",
            r["variant"].as_str().expect("variant"),
            r["mKS"].as_f64().expect("mKS"),
            r["wKS"].as_f64().expect("wKS"),
            r["mAUC"].as_f64().expect("mAUC"),
            r["wAUC"].as_f64().expect("wAUC"),
            r["wall_seconds"].as_f64().expect("wall"),
        );
    }
    let _ = writeln!(
        md,
        "\nDesign-choice checks: the exact second-order chain vs the first-order\n\
         approximation, the σ-penalty strength λ, and fixed-pool vs\n\
         per-iteration resampling at S = 5 (what the MRQ adds on top of plain\n\
         resampling). Seed-averaged over {} worlds.\n",
        data["seeds"]
    );
}

fn fig1(md: &mut String, cfg: &ExpConfig) {
    let _ = writeln!(md, "## Fig. 1 — province-wise KS of the ERM model\n");
    let Some(data) = load_json(cfg, "fig1") else {
        let _ = writeln!(md, "*not run — `--bin fig1`*\n");
        return;
    };
    let provinces = data["provinces"].as_array().expect("provinces");
    let best = provinces.first().expect("nonempty");
    let worst = provinces.last().expect("nonempty");
    let _ = writeln!(
        md,
        "Paper: performance varies sharply by province; Xinjiang 39.05 % worse\n\
         than Heilongjiang. Measured: best {} KS {:.4}, worst {} KS {:.4} —\n\
         a {:.1} % relative spread; full per-province list in\n\
         `results/fig1.json`.\n",
        best["name"].as_str().expect("name"),
        best["ks"].as_f64().expect("ks"),
        worst["name"].as_str().expect("name"),
        worst["ks"].as_f64().expect("ks"),
        (1.0 - worst["ks"].as_f64().expect("ks") / best["ks"].as_f64().expect("ks")) * 100.0
    );
}

fn fig4(md: &mut String, cfg: &ExpConfig) {
    let _ = writeln!(md, "## Fig. 4 — vehicle-type mix by year\n");
    let Some(data) = load_json(cfg, "fig4") else {
        let _ = writeln!(md, "*not run — `--bin fig4`*\n");
        return;
    };
    let _ = writeln!(
        md,
        "Paper: the mix changes year to year (SUVs up, sedans down; trucks\n\
         concentrated in trade-heavy provinces). Measured total-variation\n\
         drift 2016→2020: **{:.3}**; per-year shares in `results/fig4.json`.\n",
        data["tv_drift"].as_f64().expect("drift")
    );
}

fn fig5(md: &mut String, cfg: &ExpConfig) {
    let _ = writeln!(md, "## Fig. 5 — online companion replay\n");
    let Some(data) = load_json(cfg, "fig5") else {
        let _ = writeln!(md, "*not run — `--bin fig5`*\n");
        return;
    };
    let _ = writeln!(
        md,
        "Paper: incumbent bad debt 2.09 % → 0.73 % at τ = 0.5 (−63 %), with a\n\
         steep-then-flat FPR/bad-debt curve. Measured: incumbent {:.2} %;\n\
         the ≥63 %-reduction operating point is τ = {:.3} → {:.2} % bad debt\n\
         at {:.1} % FPR (score scales differ; the curve shape in\n\
         `results/fig5.json` matches: steep early, flat late).\n",
        data["incumbent_bad_debt"].as_f64().expect("rate") * 100.0,
        data["matched_threshold"].as_f64().expect("tau"),
        data["incumbent_bad_debt"].as_f64().expect("rate")
            * (1.0 - data["matched_reduction"].as_f64().expect("red"))
            * 100.0,
        data["matched_fpr"].as_f64().expect("fpr") * 100.0,
    );
}

fn fig6(md: &mut String, cfg: &ExpConfig) {
    let _ = writeln!(md, "## Fig. 6 / Fig. 8 — training curves\n");
    let Some(data) = load_json(cfg, "table2") else {
        let _ = writeln!(md, "*not run — `--bin table2`*\n");
        return;
    };
    let curves = data["curves_fig6_fig8"].as_array().expect("curves");
    let series = |name: &str, key: &str| -> Vec<f64> {
        curves
            .iter()
            .find(|c| c["method"] == name)
            .map(|c| {
                c[key]
                    .as_array()
                    .expect("series")
                    .iter()
                    .map(|v| v.as_f64().expect("f64"))
                    .collect()
            })
            .unwrap_or_default()
    };
    let light = series("LightMIRM(our)", "test_ks");
    let meta = series("meta-IRM", "test_ks");
    let meta_final = *meta.last().expect("nonempty");
    let near_parity = light
        .iter()
        .position(|&l| l > meta_final - 0.002)
        .map(|e| e.to_string())
        .unwrap_or_else(|| "never".into());
    let _ = writeln!(
        md,
        "Paper: complete meta-IRM converges fastest; LightMIRM starts below it\n\
         and overtakes after ~9 epochs. Measured (seed-averaged pooled test\n\
         KS): LightMIRM starts below the complete meta-IRM and converges to\n\
         within 0.002 of its final KS by epoch **{near_parity}** ({:.4} vs\n\
         {:.4} at the end) — parity at a tenth of the cost rather than a\n\
         strict crossover; the per-province fairness metrics (Table II) favor\n\
         LightMIRM. Full KS (Fig. 6) and AUC (Fig. 8) series per method in\n\
         `results/table2.json`.\n",
        light.last().expect("nonempty"),
        meta_final,
    );
}

fn fig7(md: &mut String, cfg: &ExpConfig) {
    let _ = writeln!(md, "## Fig. 7 — share of epoch time per step\n");
    let Some(data) = load_json(cfg, "table3") else {
        let _ = writeln!(md, "*not run — `--bin table3`*\n");
        return;
    };
    let measured = data["measured_seconds_per_epoch"].as_array().expect("rows");
    let share = |row: usize, step: usize| {
        let steps = measured[row]["steps"].as_array().expect("steps");
        steps[step].as_f64().expect("f64") / steps[5].as_f64().expect("f64") * 100.0
    };
    let _ = writeln!(
        md,
        "Paper: the meta-loss calculation dominates complete meta-IRM's epoch\n\
         and shrinks to a sliver under LightMIRM. Measured meta-loss share:\n\
         meta-IRM **{:.1} %**, meta-IRM(5) **{:.1} %**, LightMIRM **{:.1} %**.\n",
        share(0, 3),
        share(1, 3),
        share(2, 3)
    );
}

fn fig9(md: &mut String, cfg: &ExpConfig) {
    let _ = writeln!(md, "## Fig. 9 — MRQ length ablation\n");
    let Some(data) = load_json(cfg, "fig9") else {
        let _ = writeln!(md, "*not run — `--bin fig9`*\n");
        return;
    };
    let _ = writeln!(
        md,
        "Paper: L = 1 worst; best mKS at L = 7, best wKS at L = 5; stable\n\
         around the optimum. Measured (seed-averaged over {} worlds): best\n\
         mKS at L = {}, best wKS at L = {}; per-L values in\n\
         `results/fig9.json`.\n",
        data["seeds"], data["best_mean_len"], data["best_worst_len"]
    );
}

fn fig10(md: &mut String, cfg: &ExpConfig) {
    let _ = writeln!(md, "## Fig. 10 — Guangdong transaction share\n");
    let Some(data) = load_json(cfg, "fig10") else {
        let _ = writeln!(md, "*not run — `--bin fig10`*\n");
        return;
    };
    let _ = writeln!(
        md,
        "Paper: Guangdong's 2020 share is about half its 2016–19 level.\n\
         Measured: 2020 share is **{:.0} %** of the 2016–19 average; series\n\
         in `results/fig10.json`.\n",
        data["ratio_2020_vs_pre"].as_f64().expect("ratio") * 100.0
    );
}

fn fig11(md: &mut String, cfg: &ExpConfig) {
    let _ = writeln!(md, "## Fig. 11 — Hubei 2020 H1/H2 (COVID concept shift)\n");
    let Some(data) = load_json(cfg, "fig11") else {
        let _ = writeln!(md, "*not run — `--bin fig11`*\n");
        return;
    };
    let _ = writeln!(md, "| method | ours KS H1 | ours KS H2 |");
    let _ = writeln!(md, "|---|---|---|");
    for r in data["rows"].as_array().expect("rows") {
        let _ = writeln!(
            md,
            "| {} | {:.4} | {:.4} |",
            r["method"].as_str().expect("name"),
            r["ks_h1"].as_f64().expect("h1"),
            r["ks_h2"].as_f64().expect("h2")
        );
    }
    let _ = writeln!(
        md,
        "\nPaper: every method drops in H1 (LightMIRM best, 0.5152); ERM's\n\
         H1↔H2 swing is the widest as the old patterns roll back in H2.\n\
         Shape check: ERM worst in H1, largest gap; LightMIRM top-tier H1.\n",
    );
}
