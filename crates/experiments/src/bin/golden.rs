//! Regenerate the golden conformance snapshot
//! (`results/golden/table_metrics.json`) from the pinned configuration in
//! `lightmirm_experiments::golden`. Run this only when a numeric change is
//! intentional, and commit the refreshed snapshot together with the change
//! that caused it (policy in EXPERIMENTS.md).

use lightmirm_experiments::golden;

fn main() {
    let out_dir = std::env::args()
        .skip(1)
        .skip_while(|a| a != "--out")
        .nth(1)
        .unwrap_or_else(|| "results/golden".to_string());
    let snapshot = golden::compute_golden();
    std::fs::create_dir_all(&out_dir).expect("create golden dir");
    let path = std::path::Path::new(&out_dir).join("table_metrics.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&snapshot).expect("serialize") + "\n",
    )
    .expect("write snapshot");
    println!("[written] {}", path.display());
    for m in snapshot["methods"].as_array().expect("methods array") {
        println!(
            "  {:<22} mKS {:.4}  wKS {:.4}  mAUC {:.4}  wAUC {:.4}",
            m["name"].as_str().unwrap_or("?"),
            m["m_ks"].as_f64().unwrap_or(f64::NAN),
            m["w_ks"].as_f64().unwrap_or(f64::NAN),
            m["m_auc"].as_f64().unwrap_or(f64::NAN),
            m["w_auc"].as_f64().unwrap_or(f64::NAN),
        );
    }
}
