//! Table V — performance on Guangdong's 2020 slice, the
//! out-of-distribution province whose transaction share halved
//! (paper: LightMIRM best KS 0.6539 and best AUC). Seed-averaged.

use lightmirm_core::eval::score_rows;
use lightmirm_experiments::{
    build_seed_worlds, reference, run_method, write_json, ExpConfig, Method,
};
use lightmirm_metrics::{auc, ks};

fn main() {
    let cfg = ExpConfig::from_args();
    let worlds = build_seed_worlds(&cfg);

    let methods = [
        Method::Erm,
        Method::UpSampling,
        Method::GroupDro,
        Method::VRex,
        Method::MetaIrm(None),
        Method::light_mirm_default(),
    ];

    println!("\n== Table V (paper reference) ==");
    println!("{:<18} {:>7} {:>7}", "method", "KS", "AUC");
    for &(name, k, a) in reference::TABLE_V {
        println!("{name:<18} {k:>7.4} {a:>7.4}");
    }

    println!(
        "\n== Table V (measured, Guangdong 2020, {} seeds) ==",
        cfg.n_seeds
    );
    println!("{:<18} {:>7} {:>7}", "method", "KS", "AUC");
    let mut out_rows = Vec::new();
    for method in methods {
        let mut sum_k = 0.0;
        let mut sum_a = 0.0;
        for (c, world) in &worlds {
            let gd = world
                .catalog
                .id_of("Guangdong")
                .expect("Guangdong in catalog");
            let rows: Vec<u32> = world.test.env_rows(gd as usize).to_vec();
            let run = run_method(c, world, method, None);
            let (scores, labels) = score_rows(&run.output.model, &world.test, &rows);
            sum_k += ks(&scores, &labels).expect("Guangdong KS");
            sum_a += auc(&scores, &labels).expect("Guangdong AUC");
        }
        let n = worlds.len() as f64;
        let (k, a) = (sum_k / n, sum_a / n);
        println!("{:<18} {k:>7.4} {a:>7.4}", method.name());
        out_rows.push(serde_json::json!({
            "method": method.name(), "KS": k, "AUC": a,
        }));
    }
    write_json(
        &cfg,
        "table5",
        &serde_json::json!({ "rows": out_rows, "seeds": cfg.n_seeds }),
    );
}
