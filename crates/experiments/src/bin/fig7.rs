//! Fig. 7 — the proportion of each step in the total epoch time
//! (the meta-loss calculation dominating the complete meta-IRM). Reuses
//! `results/table3.json` when present.

use lightmirm_experiments::{load_or_compute, runs, ExpConfig};

fn main() {
    let cfg = ExpConfig::from_args();
    let data = load_or_compute(&cfg, "table3", || runs::compute_timing(&cfg));

    println!("\n== Fig. 7: per-step share of epoch time ==");
    let labels = data["labels"].as_array().expect("labels");
    for row in data["measured_seconds_per_epoch"].as_array().expect("rows") {
        let name = row["method"].as_str().expect("method");
        let steps: Vec<f64> = row["steps"]
            .as_array()
            .expect("steps")
            .iter()
            .map(|v| v.as_f64().expect("f64"))
            .collect();
        let total = steps[5].max(1e-12);
        println!("{name}:");
        for (i, label) in labels.iter().take(5).enumerate() {
            let pct = steps[i] / total * 100.0;
            let bar = "#".repeat((pct / 2.0) as usize);
            println!("  {:<28} {pct:5.1}% {bar}", label.as_str().expect("label"));
        }
    }
}
