//! Fig. 9 — ablation on the MRQ length: LightMIRM with L ∈ 1..=9,
//! reporting mean and worst KS (paper: best mKS at L = 7, best wKS at
//! L = 5, L = 1 clearly worst). Seed-averaged (`--seeds`).

use lightmirm_experiments::{
    build_seed_worlds, print_header, reference, run_method_avg, write_json, ExpConfig, Method,
};

fn main() {
    let cfg = ExpConfig::from_args();
    let worlds = build_seed_worlds(&cfg);

    print_header(&format!(
        "Fig. 9: MRQ length ablation (measured, {} seeds)",
        cfg.n_seeds
    ));
    let mut rows = Vec::new();
    for len in 1..=9usize {
        let (mks, wks, mauc, wauc, _) = run_method_avg(&worlds, Method::LightMirm(len, 90));
        println!("L={len}                   {mks:>7.4} {wks:>7.4} {mauc:>7.4} {wauc:>7.4}");
        rows.push(serde_json::json!({
            "len": len, "mKS": mks, "wKS": wks, "mAUC": mauc, "wAUC": wauc,
        }));
    }

    let best_by = |key: &str| {
        rows.iter()
            .max_by(|a, b| {
                a[key]
                    .as_f64()
                    .expect("metric")
                    .partial_cmp(&b[key].as_f64().expect("metric"))
                    .expect("finite")
            })
            .expect("nonempty")["len"]
            .clone()
    };
    let best_mean = best_by("mKS");
    let best_worst = best_by("wKS");
    println!(
        "\nbest mKS at L={best_mean} (paper: {}), best wKS at L={best_worst} (paper: {})",
        reference::FIG9_BEST_MEAN_LEN,
        reference::FIG9_BEST_WORST_LEN
    );

    write_json(
        &cfg,
        "fig9",
        &serde_json::json!({
            "rows": rows,
            "best_mean_len": best_mean,
            "best_worst_len": best_worst,
            "seeds": cfg.n_seeds,
        }),
    );
}
