//! Run every table/figure regenerator in sequence, writing all JSON
//! artifacts to the output directory. The per-artifact binaries can also
//! be run standalone; this driver exists so
//! `cargo run --release -p lightmirm-experiments --bin all`
//! refreshes everything EXPERIMENTS.md reports.

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bins = [
        "fig1", "fig4", "fig5", "table1", "table2", "fig6", "fig8", "table3", "fig7", "fig9",
        "table4", "fig10", "table5", "fig11", "table6", "ablation",
    ];
    let me = std::env::current_exe().expect("current exe path");
    let dir = me.parent().expect("exe directory");
    for bin in bins {
        println!("\n################ {bin} ################");
        let status = Command::new(dir.join(bin))
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
    println!("\nAll experiments completed.");
}
