//! Fig. 8 — performance (test AUC) of the meta-IRM variants and LightMIRM
//! during training. Reuses `results/table2.json` when present.

use lightmirm_experiments::{load_or_compute, runs, ExpConfig};

fn main() {
    let cfg = ExpConfig::from_args();
    let data = load_or_compute(&cfg, "table2", || runs::compute_sampling_comparison(&cfg));

    println!("\n== Fig. 8: test-AUC curves ==");
    for c in data["curves_fig6_fig8"].as_array().expect("curves") {
        let name = c["method"].as_str().expect("method");
        let shown: Vec<String> = c["test_auc"]
            .as_array()
            .expect("test_auc")
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 4 == 0)
            .map(|(_, v)| format!("{:.3}", v.as_f64().expect("f64")))
            .collect();
        println!("{name:<14} {}", shown.join(" "));
    }
}
