//! Fig. 1 — province-wise performance of an ERM-trained model: the
//! motivating unfairness evidence. The paper's map shows KS varying
//! sharply by province, with Xinjiang 39.05 % worse than Heilongjiang.

use lightmirm_core::evaluate;
use lightmirm_experiments::{build_world, reference, run_method, write_json, ExpConfig, Method};

fn main() {
    let cfg = ExpConfig::from_args();
    let world = build_world(&cfg);
    let run = run_method(&cfg, &world, Method::Erm, None);
    // No row floor here: the figure shows every province, noisy or not.
    let summary = evaluate(&run.output.model, &world.test).expect("scorable test split");

    println!("\n== Fig. 1: province-wise KS of the ERM model (2020 test) ==");
    let mut envs = summary.envs.clone();
    envs.sort_by(|a, b| b.ks.partial_cmp(&a.ks).expect("finite KS"));
    for e in &envs {
        let bar = "#".repeat((e.ks * 40.0) as usize);
        println!("{:<14} KS {:.4}  n={:<5} {bar}", e.name, e.ks, e.n);
    }

    let get = |name: &str| envs.iter().find(|e| e.name == name).map(|e| e.ks);
    if let (Some(xj), Some(hlj)) = (get("Xinjiang"), get("Heilongjiang")) {
        let gap = 1.0 - xj / hlj;
        println!(
            "\nXinjiang vs Heilongjiang relative KS gap: {:.2}% (paper: {:.2}%)",
            gap * 100.0,
            reference::FIG1_XINJIANG_GAP * 100.0
        );
    }
    let min = envs.last().expect("nonempty");
    let max = envs.first().expect("nonempty");
    println!(
        "spread: best {} {:.4} / worst {} {:.4} ({:.1}% relative)",
        max.name,
        max.ks,
        min.name,
        min.ks,
        (1.0 - min.ks / max.ks) * 100.0
    );

    write_json(
        &cfg,
        "fig1",
        &serde_json::json!({
            "provinces": envs,
            "paper_xinjiang_gap": reference::FIG1_XINJIANG_GAP,
        }),
    );
}
