//! Fig. 4 — the distribution of vehicle types per year (concept-drift
//! evidence in the data analysis section).

use lightmirm_experiments::{write_json, ExpConfig};
use loansim::{format_vehicle_mix, generate, vehicle_mix_by_year, GeneratorConfig};

fn main() {
    let cfg = ExpConfig::from_args();
    let frame = generate(&GeneratorConfig {
        rows: cfg.rows,
        seed: cfg.seed,
        ..Default::default()
    });
    let (years, mix) = vehicle_mix_by_year(&frame);
    println!("\n== Fig. 4: vehicle-type distribution by year ==");
    print!("{}", format_vehicle_mix(&years, &mix));

    // The paper's qualitative claims: the mix changes year over year.
    let first = mix.first().expect("years present");
    let last = mix.last().expect("years present");
    let drift: f64 = first
        .iter()
        .zip(last)
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
        / 2.0;
    println!(
        "total-variation drift {first_year}->{last_year}: {drift:.3}",
        first_year = years.first().unwrap(),
        last_year = years.last().unwrap()
    );

    write_json(
        &cfg,
        "fig4",
        &serde_json::json!({ "years": years, "mix": mix, "tv_drift": drift }),
    );
}
