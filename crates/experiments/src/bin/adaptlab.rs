//! Adaptation lab — the Fig. 10/11-style covariate + concept shift
//! replay behind DESIGN.md §5j, frozen as a JSON artifact.
//!
//! One province's 2020 stream is pushed out of distribution (+3.0 on
//! the drift baseline's monitored columns) *and* concept-shifted
//! (labels inverted); a second province stays in distribution. The
//! frozen champion degrades on the shifted province; the supervised
//! adaptation loop (`serve::adapt`) retrains the LR head warm-started
//! from the champion and promotes the challenger through probe +
//! canary. The artifact records how much of the lost AUC the adapted
//! generation recovers, alongside the full promotion event log.
//!
//! The tier-1 proof of the same story is `crates/serve/tests/adapt.rs`;
//! this bin exists to regenerate the numbers at arbitrary scale:
//!
//! ```text
//! cargo run --release -p lightmirm-experiments --bin adaptlab -- \
//!     --rows 20000 --trees 16 --epochs 20
//! ```

use std::collections::BTreeMap;
use std::time::Duration;

use lightmirm_core::bundle::DriftBaseline;
use lightmirm_core::prelude::*;
use lightmirm_experiments::{write_json, ExpConfig};
use lightmirm_metrics::rank::auc;
use lightmirm_serve::{
    AdaptConfig, EngineConfig, FeedConfig, LabelFeed, MonitorConfig, PromotionController,
    ScoringEngine,
};
use loansim::{generate, temporal_split, GeneratorConfig, ProvinceCatalog};

fn main() {
    let cfg = ExpConfig::from_args();
    let frame = generate(&GeneratorConfig::small(cfg.rows, cfg.seed));
    let split = temporal_split(&frame, 2020);

    let mut fe = FeatureExtractorConfig::default();
    fe.gbdt.n_trees = cfg.trees;
    let extractor = FeatureExtractor::fit(&split.train, &fe).expect("GBDT trains");
    let names = ProvinceCatalog::standard().names();
    let train = extractor
        .to_env_dataset(&split.train, names, None)
        .expect("train transform");
    let out = LightMirmTrainer::new(cfg.train_config()).fit(&train, None);
    let bundle = ModelBundle::new(
        extractor.gbdt().clone(),
        &out.model,
        BundleMetadata {
            trainer: "LightMIRM".into(),
            seed: cfg.seed,
            notes: "adaptlab champion".into(),
        },
    )
    .expect("dimensions match");

    // Drift baseline over the champion's own training scores, the way
    // `lightmirm train` captures it.
    let nf = bundle.n_features();
    let mut feats = Vec::with_capacity(split.train.len() * nf);
    let mut envs = Vec::with_capacity(split.train.len());
    for k in 0..split.train.len() {
        feats.extend_from_slice(split.train.row(k));
        envs.push(split.train.province[k]);
    }
    let train_scores = bundle.score_batch(&feats, &envs);
    let columns = DriftBaseline::top_k_columns(extractor.gbdt().feature_importance(), 4);
    let baseline = DriftBaseline::capture(&train_scores, &envs, &feats, nf, &columns, 64);
    let bundle = bundle.with_baseline(baseline);

    // The two best-sampled training provinces: one stays in
    // distribution, the other takes the covariate + concept shift.
    let mut counts = BTreeMap::new();
    for &p in &split.train.province {
        *counts.entry(p).or_insert(0usize) += 1;
    }
    let mut by_count: Vec<(u16, usize)> = counts.into_iter().collect();
    by_count.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    let (stable_env, shifted_env) = (by_count[0].0, by_count[1].0);
    let shift_cols: Vec<usize> = bundle
        .baseline
        .as_ref()
        .expect("baseline captured")
        .columns
        .iter()
        .map(|&c| c as usize)
        .collect();

    let mut s_feats = Vec::new();
    let mut s_envs = Vec::new();
    let mut s_labels = Vec::new();
    let (mut clean_feats, mut clean_envs, mut clean_labels) = (Vec::new(), Vec::new(), vec![]);
    for k in 0..split.train.len() {
        let p = split.train.province[k];
        if p == stable_env {
            s_feats.extend_from_slice(split.train.row(k));
            s_envs.push(p);
            s_labels.push(split.train.label[k]);
        } else if p == shifted_env {
            let mut row = split.train.row(k).to_vec();
            for &c in &shift_cols {
                row[c] += 3.0;
            }
            s_feats.extend_from_slice(&row);
            s_envs.push(p);
            s_labels.push(1 - split.train.label[k]);
            clean_feats.extend_from_slice(split.train.row(k));
            clean_envs.push(p);
            clean_labels.push(split.train.label[k]);
        }
    }

    // Frozen-champion reference points on the shifted province.
    let clean_scores = bundle.score_batch(&clean_feats, &clean_envs);
    let clean_auc = auc(&clean_scores, &clean_labels).expect("two classes");
    let mut shifted_feats = Vec::new();
    let mut shifted_envs = Vec::new();
    let mut shifted_labels = Vec::new();
    for k in 0..s_envs.len() {
        if s_envs[k] == shifted_env {
            shifted_feats.extend_from_slice(&s_feats[k * nf..(k + 1) * nf]);
            shifted_envs.push(shifted_env);
            shifted_labels.push(s_labels[k]);
        }
    }
    let degraded_scores = bundle.score_batch(&shifted_feats, &shifted_envs);
    let degraded_auc = auc(&degraded_scores, &shifted_labels).expect("two classes");
    let lost = clean_auc - degraded_auc;

    // The adaptive replay: serve chunks, feed labels, step the
    // controller — the CLI's `serve-replay --adapt` loop in miniature.
    let engine = ScoringEngine::new(
        bundle.clone(),
        EngineConfig {
            max_batch: 128,
            max_wait: Duration::from_millis(1),
            queue_capacity: 1 << 20,
            workers: 2,
            monitor: Some(MonitorConfig {
                window: 1 << 16,
                min_samples: 64,
                check_every: 128,
                n_buckets: 10,
            }),
            ..EngineConfig::default()
        },
    );
    let feed = LabelFeed::new(nf, FeedConfig::default());
    let mut controller = PromotionController::new(
        engine.bundle(),
        AdaptConfig {
            min_rows: 256,
            train: cfg.train_config(),
            // One promotion, then hold: the artifact reports the first
            // adapted generation, not a promotion cascade.
            cooldown_steps: u64::MAX,
            ..AdaptConfig::default()
        },
    );
    let chunk = 64usize;
    let mut r = 0usize;
    while r < s_envs.len() {
        let n = chunk.min(s_envs.len() - r);
        engine
            .submit(
                s_feats[r * nf..(r + n) * nf].to_vec(),
                s_envs[r..r + n].to_vec(),
            )
            .expect("accepted")
            .wait()
            .expect("scored");
        for k in r..r + n {
            feed.push(s_envs[k], &s_feats[k * nf..(k + 1) * nf], s_labels[k]);
        }
        controller.step(&engine, &feed);
        r += n;
    }

    let adapted = controller.champion();
    let adapted_scores = adapted.score_batch(&shifted_feats, &shifted_envs);
    let adapted_auc = auc(&adapted_scores, &shifted_labels).expect("two classes");
    let recovered = adapted_auc - degraded_auc;
    engine.shutdown();

    println!("\n== Adaptation lab: covariate + concept shift on province {shifted_env} ==");
    println!("{:<26} {:>8.4}", "champion AUC (pre-shift)", clean_auc);
    println!("{:<26} {:>8.4}", "champion AUC (shifted)", degraded_auc);
    println!("{:<26} {:>8.4}", "adapted AUC (shifted)", adapted_auc);
    println!(
        "{:<26} {:>8.4}  ({:.0}% of {:.4} lost)",
        "recovered",
        recovered,
        if lost > 0.0 {
            100.0 * recovered / lost
        } else {
            0.0
        },
        lost
    );
    println!(
        "generations: {}, events: {}",
        controller.generation(),
        controller.events().len()
    );

    let lineage = adapted.lineage.as_ref().map(|l| {
        serde_json::json!({
            "parent_crc32": l.parent_crc32,
            "trigger_env": l.trigger_env,
            "trigger_psi": l.trigger_psi,
            "rows_used": l.rows_used,
            "generation": l.generation,
        })
    });
    let value = serde_json::json!({
        "rows": cfg.rows,
        "seed": cfg.seed,
        "trees": cfg.trees,
        "epochs": cfg.epochs,
        "stable_env": stable_env,
        "shifted_env": shifted_env,
        "clean_auc": clean_auc,
        "degraded_auc": degraded_auc,
        "adapted_auc": adapted_auc,
        "auc_lost": lost,
        "auc_recovered": recovered,
        "generation": controller.generation(),
        "steps": controller.steps(),
        "lineage": lineage,
        "events": controller.events(),
    });
    write_json(&cfg, "adaptlab", &value);
}
