//! Fig. 11 — Hubei province in 2020: COVID hits in H1 (strong concept
//! shift) and recovers in H2. Methods that learned invariant features hold
//! up in H1; ERM collapses in H1 and rebounds in H2 as the old patterns
//! roll back. Seed-averaged.

use lightmirm_core::eval::score_rows;
use lightmirm_experiments::{build_seed_worlds, run_method, write_json, ExpConfig, Method};
use lightmirm_metrics::ks;

fn main() {
    let cfg = ExpConfig::from_args();
    let worlds = build_seed_worlds(&cfg);

    let methods = [
        Method::Erm,
        Method::UpSampling,
        Method::GroupDro,
        Method::VRex,
        Method::MetaIrm(None),
        Method::light_mirm_default(),
    ];

    println!(
        "\n== Fig. 11: KS on Hubei 2020 (measured, {} seeds) ==",
        cfg.n_seeds
    );
    println!("{:<18} {:>8} {:>8} {:>8}", "method", "H1", "H2", "|gap|");
    let mut rows = Vec::new();
    for method in methods {
        let mut sum1 = 0.0;
        let mut sum2 = 0.0;
        for (c, world) in &worlds {
            let hubei = world.catalog.id_of("Hubei").expect("Hubei in catalog");
            let all_rows = world.test.env_rows(hubei as usize);
            let split = |want: u8| -> Vec<u32> {
                all_rows
                    .iter()
                    .copied()
                    .filter(|&r| world.frame_test.half[r as usize] == want)
                    .collect()
            };
            let run = run_method(c, world, method, None);
            let ks_of = |subset: &[u32]| {
                let (scores, labels) = score_rows(&run.output.model, &world.test, subset);
                ks(&scores, &labels).expect("Hubei KS")
            };
            sum1 += ks_of(&split(0));
            sum2 += ks_of(&split(1));
        }
        let n = worlds.len() as f64;
        let (k1, k2) = (sum1 / n, sum2 / n);
        println!(
            "{:<18} {k1:>8.4} {k2:>8.4} {:>8.4}",
            method.name(),
            (k1 - k2).abs()
        );
        rows.push(serde_json::json!({
            "method": method.name(), "ks_h1": k1, "ks_h2": k2,
        }));
    }
    println!("\npaper: LightMIRM best H1 KS (0.5152); ERM worst-tier in H1 but");
    println!("       best in H2 (distribution rolls back).");
    write_json(
        &cfg,
        "fig11",
        &serde_json::json!({ "rows": rows, "seeds": cfg.n_seeds }),
    );
}
