//! Table IV — ablation on the MRQ decay weight γ ∈ {0.1 … 1.0}
//! (paper: γ = 1 worst almost everywhere; interior values trade off).
//! Seed-averaged (`--seeds`).

use lightmirm_experiments::{
    build_seed_worlds, print_header, reference, run_method_avg, write_json, ExpConfig, Method,
};

fn main() {
    let cfg = ExpConfig::from_args();
    let worlds = build_seed_worlds(&cfg);

    print_header("Table IV (paper reference)");
    for &(gamma, mks, wks, mauc, wauc) in reference::TABLE_IV {
        println!("gamma={gamma:<16} {mks:>7.4} {wks:>7.4} {mauc:>7.4} {wauc:>7.4}");
    }

    print_header(&format!("Table IV (measured, {} seeds)", cfg.n_seeds));
    let mut rows = Vec::new();
    for gamma_x100 in [10u32, 30, 50, 70, 90, 100] {
        let (mks, wks, mauc, wauc, _) = run_method_avg(&worlds, Method::LightMirm(5, gamma_x100));
        let gamma = gamma_x100 as f64 / 100.0;
        println!("gamma={gamma:<16} {mks:>7.4} {wks:>7.4} {mauc:>7.4} {wauc:>7.4}");
        rows.push(serde_json::json!({
            "gamma": gamma, "mKS": mks, "wKS": wks, "mAUC": mauc, "wAUC": wauc,
        }));
    }
    write_json(
        &cfg,
        "table4",
        &serde_json::json!({ "rows": rows, "seeds": cfg.n_seeds }),
    );
}
