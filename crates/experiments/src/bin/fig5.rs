//! Fig. 5 / §IV-C1 — the online comparison: replaying a held-out 2020
//! stream through "incumbent approves, LightMIRM companion may veto",
//! sweeping the companion threshold and reporting FPR vs residual bad
//! debt. The paper reports 2.09 % bad debt reduced to 0.73 % at τ = 0.5.

use lightmirm_core::prelude::*;
use lightmirm_experiments::{build_world, reference, run_method, write_json, ExpConfig, Method};

fn main() {
    let cfg = ExpConfig::from_args();
    let world = build_world(&cfg);

    // The incumbent: the platform's existing model. We stand in a weaker,
    // older-generation scorer — the raw GBDT extractor trained with ERM —
    // whose threshold is set to approve most applications (matching the
    // paper's low online rejection regime).
    let incumbent: Vec<f64> = world
        .extractor
        .gbdt()
        .predict_proba_batch(world.frame_test.feature_matrix());

    // The companion: LightMIRM over the leaf features.
    let run = run_method(&cfg, &world, Method::light_mirm_default(), None);
    let rows = world.test.all_rows();
    let companion = run
        .output
        .model
        .predict_rows(&world.test.x, &rows, &world.test.env_ids);

    // Incumbent approves below the 70th percentile of its own scores — a
    // conservative book that keeps the approved portfolio's bad-debt rate
    // in the low single digits, the regime of the paper's online test.
    let mut sorted = incumbent.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));
    let incumbent_threshold = sorted[(sorted.len() as f64 * 0.70) as usize];

    let grid: Vec<f64> = (0..=40).map(|i| i as f64 / 40.0).collect();
    let replayed = replay(
        &incumbent,
        &companion,
        &world.test.labels,
        incumbent_threshold,
        &grid,
    )
    .expect("replay succeeds on the test stream");

    println!("\n== Fig. 5: online replay (threshold sweep) ==");
    println!(
        "incumbent bad debt: {:.2}% (paper: {:.2}%)",
        replayed.incumbent_bad_debt * 100.0,
        reference::ONLINE_INCUMBENT_BAD_DEBT * 100.0
    );
    println!("{:>6} {:>8} {:>9} {:>7}", "tau", "FPR", "bad debt", "veto");
    for p in replayed.curve.iter().step_by(4) {
        println!(
            "{:>6.2} {:>7.2}% {:>8.2}% {:>6.2}%",
            p.threshold,
            p.false_positive_rate * 100.0,
            p.bad_debt_rate * 100.0,
            p.veto_rate * 100.0
        );
    }
    // The paper quotes the operating point "threshold 0.5" on its own
    // score scale, where the companion cut bad debt by 63 %. Our score
    // scale differs (different calibration), so we report the operating
    // point that achieves the same 63 % reduction and what it costs.
    let target = replayed.incumbent_bad_debt * (1.0 - 0.63);
    let matched = replayed
        .curve
        .iter()
        .filter(|p| p.bad_debt_rate <= target)
        .max_by(|a, b| a.threshold.partial_cmp(&b.threshold).expect("finite"))
        .expect("sweep reaches the target at tau=0");
    let reduction = 1.0 - matched.bad_debt_rate / replayed.incumbent_bad_debt;
    println!(
        "\npaper-matched operating point (>=63% bad-debt reduction):\n  \
         tau={:.3}: bad debt {:.2}% -> {:.2}% ({:.0}% reduction) \
         at FPR {:.1}%, veto rate {:.1}%",
        matched.threshold,
        replayed.incumbent_bad_debt * 100.0,
        matched.bad_debt_rate * 100.0,
        reduction * 100.0,
        matched.false_positive_rate * 100.0,
        matched.veto_rate * 100.0
    );

    write_json(
        &cfg,
        "fig5",
        &serde_json::json!({
            "incumbent_bad_debt": replayed.incumbent_bad_debt,
            "curve": replayed.curve,
            "matched_threshold": matched.threshold,
            "matched_reduction": reduction,
            "matched_fpr": matched.false_positive_rate,
            "paper_incumbent": reference::ONLINE_INCUMBENT_BAD_DEBT,
            "paper_companion": reference::ONLINE_COMPANION_BAD_DEBT,
        }),
    );
}
