//! Table II — LightMIRM vs meta-IRM under different sampling budgets
//! (final metrics). Shares its run with Figs. 6 and 8 via
//! `results/table2.json`.

use lightmirm_experiments::{load_or_compute, print_header, reference, runs, ExpConfig};

fn main() {
    let cfg = ExpConfig::from_args();
    let data = load_or_compute(&cfg, "table2", || runs::compute_sampling_comparison(&cfg));

    print_header("Table II (paper reference)");
    for &(name, mks, wks, mauc, wauc) in reference::TABLE_II {
        println!("{name:<22} {mks:>7.4} {wks:>7.4} {mauc:>7.4} {wauc:>7.4}");
    }

    print_header("Table II (measured)");
    for row in data["rows"].as_array().expect("rows") {
        println!(
            "{:<22} {:>7.4} {:>7.4} {:>7.4} {:>7.4}  [{:.1}s]",
            row["method"].as_str().expect("method"),
            row["mKS"].as_f64().expect("mKS"),
            row["wKS"].as_f64().expect("wKS"),
            row["mAUC"].as_f64().expect("mAUC"),
            row["wAUC"].as_f64().expect("wAUC"),
            row["wall_seconds"].as_f64().expect("wall"),
        );
    }
}
