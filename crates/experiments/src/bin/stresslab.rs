//! Run the IRM stress-lab and (re)generate the pinned scorecard
//! (`results/stresslab/scorecard.json`).
//!
//! Flags: `--quick` (default) or `--full` selects the scenario grid;
//! `--out DIR` overrides the output directory. The quick grid is the
//! one the tier-1 gate (`tests/stresslab_gate.rs`) pins — regenerate it
//! only for an *intentional* change, and say why in the commit message
//! (policy in EXPERIMENTS.md).

use lightmirm_experiments::stresslab::{self, Grid};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut grid = Grid::Quick;
    let mut out_dir = "results/stresslab".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => grid = Grid::Quick,
            "--full" => grid = Grid::Full,
            "--out" => {
                i += 1;
                out_dir = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--out needs a directory");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown flag {other}; usage: stresslab [--quick|--full] [--out DIR]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let card = stresslab::compute_scorecard(grid);
    std::fs::create_dir_all(&out_dir).expect("create stresslab dir");
    let path = std::path::Path::new(&out_dir).join("scorecard.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&card).expect("serialize") + "\n",
    )
    .expect("write scorecard");
    println!("[written] {} ({} grid)", path.display(), grid.name());

    let n_scenarios = card["scenarios"].as_array().map_or(0, Vec::len);
    for t in card["trainers"].as_array().expect("trainers array") {
        let cells = t["cells"].as_array().expect("cells");
        let verdicts: String = cells
            .iter()
            .map(|c| if c["pass"] == true { 'P' } else { 'F' })
            .collect();
        println!(
            "  {:<14} pass {}/{n_scenarios} [{verdicts}]  crossover_n {}",
            t["name"].as_str().unwrap_or("?"),
            t["n_pass"].as_u64().unwrap_or(0),
            t["crossover"]["crossover_n"]
                .as_u64()
                .map_or("never".to_string(), |n| n.to_string()),
        );
    }
}
