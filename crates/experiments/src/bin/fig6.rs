//! Fig. 6 — evolution of the test KS during training for meta-IRM
//! variants and LightMIRM (the paper observes LightMIRM starting below the
//! complete meta-IRM and overtaking it after ~9 epochs). Reuses
//! `results/table2.json` when present.

use lightmirm_experiments::{load_or_compute, runs, ExpConfig};

fn main() {
    let cfg = ExpConfig::from_args();
    let data = load_or_compute(&cfg, "table2", || runs::compute_sampling_comparison(&cfg));

    println!("\n== Fig. 6: test-KS curves ==");
    let curves = data["curves_fig6_fig8"].as_array().expect("curves");
    for c in curves {
        let name = c["method"].as_str().expect("method");
        let series: Vec<f64> = c["test_ks"]
            .as_array()
            .expect("test_ks")
            .iter()
            .map(|v| v.as_f64().expect("f64"))
            .collect();
        let shown: Vec<String> = series
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 4 == 0)
            .map(|(_, v)| format!("{v:.3}"))
            .collect();
        println!("{name:<14} {}", shown.join(" "));
    }

    // Crossover analysis: first epoch where LightMIRM's KS exceeds the
    // complete meta-IRM's.
    let series_of = |name: &str| -> Vec<f64> {
        curves
            .iter()
            .find(|c| c["method"] == name)
            .expect("method present")["test_ks"]
            .as_array()
            .expect("series")
            .iter()
            .map(|v| v.as_f64().expect("f64"))
            .collect()
    };
    let light = series_of("LightMIRM(our)");
    let meta = series_of("meta-IRM");
    let meta_final = *meta.last().expect("nonempty");
    let crossover = light
        .iter()
        .zip(&meta)
        .position(|(l, m)| l > m)
        .map(|e| e.to_string())
        .unwrap_or_else(|| "never".into());
    let near_parity = light
        .iter()
        .position(|&l| l > meta_final - 0.002)
        .map(|e| e.to_string())
        .unwrap_or_else(|| "never".into());
    println!(
        "\nLightMIRM starts below the complete meta-IRM (paper Fig. 6 shape);\n\
         strict pooled-KS crossover epoch: {crossover} (paper: ~9);\n\
         epoch reaching within 0.002 of complete meta-IRM's final KS: {near_parity}.\n\
         Final gap: {:.4} (LightMIRM) vs {:.4} (complete).",
        light.last().expect("nonempty"),
        meta_final
    );
}
