//! Table III — time per training step for meta-IRM, meta-IRM(5), and
//! LightMIRM. Shares its run with Fig. 7 via `results/table3.json`.

use lightmirm_experiments::{load_or_compute, reference, runs, ExpConfig};

fn main() {
    let cfg = ExpConfig::from_args();
    let data = load_or_compute(&cfg, "table3", || runs::compute_timing(&cfg));

    println!("\n== Table III (paper reference, seconds per operation) ==");
    println!(
        "{:<28} {:>10} {:>12} {:>10}",
        "step", "meta-IRM", "meta-IRM(5)", "LightMIRM"
    );
    for &(step, a, b, c) in reference::TABLE_III {
        println!("{step:<28} {a:>10.4} {b:>12.4} {c:>10.4}");
    }

    println!("\n== Table III (measured, seconds per epoch) ==");
    println!(
        "{:<28} {:>10} {:>12} {:>10}",
        "step", "meta-IRM", "meta-IRM(5)", "LightMIRM"
    );
    let measured = data["measured_seconds_per_epoch"].as_array().expect("rows");
    let labels = data["labels"].as_array().expect("labels");
    for (i, label) in labels.iter().enumerate() {
        let v = |j: usize| measured[j]["steps"][i].as_f64().expect("step");
        println!(
            "{:<28} {:>10.4} {:>12.4} {:>10.4}",
            label.as_str().expect("label"),
            v(0),
            v(1),
            v(2)
        );
    }
    println!(
        "\nops/epoch: meta-IRM {} | meta-IRM(5) {} | LightMIRM {}",
        measured[0]["ops_per_epoch"], measured[1]["ops_per_epoch"], measured[2]["ops_per_epoch"]
    );
    println!(
        "whole-epoch speedup meta-IRM/LightMIRM: {:.1}x (paper: ~12x)",
        data["epoch_speedup"].as_f64().expect("speedup")
    );
    println!(
        "meta-loss speedup: {:.1}x (paper: ~30x)",
        data["meta_loss_speedup"].as_f64().expect("speedup")
    );
}
