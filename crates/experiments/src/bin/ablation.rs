//! Design-choice ablations beyond the paper's own (extension):
//!
//! 1. **Second-order term** — meta-IRM/LightMIRM with the exact
//!    `I − αH` chain vs the first-order (FOMAML-style) approximation,
//!    quantifying what the paper's "second-order gradients" cost buys;
//! 2. **σ penalty strength** — λ ∈ {0, 0.5, 2} (λ = 0 removes Eq. (7));
//! 3. **Sampling scheme** — fixed province pool vs per-iteration
//!    resampling for meta-IRM(5), isolating what the MRQ adds on top of
//!    plain resampling.

use lightmirm_core::prelude::*;
use lightmirm_experiments::{build_seed_worlds, summarize, write_json, ExpConfig};

fn main() {
    let cfg = ExpConfig::from_args();
    let worlds = build_seed_worlds(&cfg);
    let mut rows = Vec::new();

    let mut run = |name: &str, make: &dyn Fn(&ExpConfig) -> TrainOutputFactory| {
        let mut acc = [0.0f64; 4];
        let mut wall = 0.0;
        for (c, world) in &worlds {
            let start = std::time::Instant::now();
            let out = make(c).fit_on(&world.train);
            wall += start.elapsed().as_secs_f64();
            let s = summarize(
                c,
                world,
                &lightmirm_experiments::MethodRun {
                    method: lightmirm_experiments::Method::light_mirm_default(),
                    output: out,
                    wall_seconds: 0.0,
                },
            );
            acc[0] += s.m_ks;
            acc[1] += s.w_ks;
            acc[2] += s.m_auc;
            acc[3] += s.w_auc;
        }
        let n = worlds.len() as f64;
        println!(
            "{name:<34} {:>7.4} {:>7.4} {:>7.4} {:>7.4}  [{:.1}s]",
            acc[0] / n,
            acc[1] / n,
            acc[2] / n,
            acc[3] / n,
            wall / n
        );
        rows.push(serde_json::json!({
            "variant": name,
            "mKS": acc[0] / n, "wKS": acc[1] / n,
            "mAUC": acc[2] / n, "wAUC": acc[3] / n,
            "wall_seconds": wall / n,
        }));
    };

    println!(
        "\n== Ablations (measured, {} seeds) ==\n{:<34} {:>7} {:>7} {:>7} {:>7}",
        cfg.n_seeds, "variant", "mKS", "wKS", "mAUC", "wAUC"
    );

    // 1. Second-order vs first-order.
    run("LightMIRM (full second-order)", &|c| {
        TrainOutputFactory::Light(LightMirmTrainer::new(c.train_config()))
    });
    run("meta-IRM (full second-order)", &|c| {
        TrainOutputFactory::Meta(MetaIrmTrainer::new(c.train_config()))
    });
    run("meta-IRM (first-order)", &|c| {
        let mut t = MetaIrmTrainer::new(c.train_config());
        t.first_order = true;
        TrainOutputFactory::Meta(t)
    });

    // 2. σ penalty strength.
    for lambda in [0.0, 0.5, 2.0] {
        run(&format!("LightMIRM lambda={lambda}"), &move |c| {
            let mut tc = c.train_config();
            tc.lambda = lambda;
            TrainOutputFactory::Light(LightMirmTrainer::new(tc))
        });
    }

    // 3. Fixed pool vs per-iteration resampling at S = 5.
    run("meta-IRM(5) fixed pool", &|c| {
        TrainOutputFactory::Meta(MetaIrmTrainer::with_sample_size(c.train_config(), 5))
    });
    run("meta-IRM(5) resampled", &|c| {
        TrainOutputFactory::Meta(MetaIrmTrainer::with_resampling(c.train_config(), 5))
    });

    write_json(
        &cfg,
        "ablation",
        &serde_json::json!({ "rows": rows, "seeds": cfg.n_seeds }),
    );
}

/// Small dispatch helper so closures can return either trainer type.
enum TrainOutputFactory {
    Meta(MetaIrmTrainer),
    Light(LightMirmTrainer),
}

impl TrainOutputFactory {
    fn fit_on(&self, data: &EnvDataset) -> TrainOutput {
        match self {
            TrainOutputFactory::Meta(t) => t.fit(data, None),
            TrainOutputFactory::Light(t) => t.fit(data, None),
        }
    }
}
