//! Fig. 10 — Guangdong's transaction share from 2016 to 2020 (the
//! covariate shift motivating the Table V OOD analysis).

use lightmirm_experiments::{write_json, ExpConfig};
use loansim::{generate, province_share_by_year, GeneratorConfig, ProvinceCatalog};

fn main() {
    let cfg = ExpConfig::from_args();
    let frame = generate(&GeneratorConfig {
        rows: cfg.rows,
        seed: cfg.seed,
        ..Default::default()
    });
    let catalog = ProvinceCatalog::standard();
    let gd = catalog.id_of("Guangdong").expect("Guangdong in catalog") as usize;
    let (years, share) = province_share_by_year(&frame, catalog.len());

    println!("\n== Fig. 10: Guangdong transaction share by year ==");
    let mut series = Vec::new();
    for (y, row) in years.iter().zip(&share) {
        let pct = row[gd] * 100.0;
        let bar = "#".repeat((pct * 2.0) as usize);
        println!("{y}: {pct:5.2}% {bar}");
        series.push(serde_json::json!({"year": y, "share": row[gd]}));
    }
    let pre = share[..4].iter().map(|r| r[gd]).sum::<f64>() / 4.0;
    let last = share.last().expect("2020 present")[gd];
    println!(
        "\n2020 share is {:.0}% of the 2016-19 average (paper: ~50%)",
        last / pre * 100.0
    );
    write_json(
        &cfg,
        "fig10",
        &serde_json::json!({ "series": series, "ratio_2020_vs_pre": last / pre }),
    );
}
