//! Table I — main comparison: 7 paper methods (+ IRMv1 as an extension)
//! × {mKS, wKS, mAUC, wAUC} on the temporal split (train 2016–19, test
//! 2020). Seed-averaged (`--seeds`).

use lightmirm_experiments::{
    build_seed_worlds, print_header, reference, run_method_avg, write_json, ExpConfig, Method,
};

fn main() {
    let cfg = ExpConfig::from_args();
    let worlds = build_seed_worlds(&cfg);
    let (first_cfg, first_world) = &worlds[0];
    let _ = first_cfg;
    println!(
        "world: {} train rows / {} test rows / {} leaf features / {} train envs ({} seeds)",
        first_world.train.n_rows(),
        first_world.test.n_rows(),
        first_world.train.n_cols(),
        first_world.train.active_envs().len(),
        cfg.n_seeds,
    );

    let methods = [
        Method::Erm,
        Method::ErmFineTune,
        Method::UpSampling,
        Method::GroupDro,
        Method::VRex,
        Method::Irmv1,
        Method::MetaIrm(None),
        Method::light_mirm_default(),
    ];

    print_header("Table I (paper reference)");
    for &(name, mks, wks, mauc, wauc) in reference::TABLE_I {
        println!("{name:<22} {mks:>7.4} {wks:>7.4} {mauc:>7.4} {wauc:>7.4}");
    }

    print_header(&format!("Table I (measured, {} seeds)", cfg.n_seeds));
    let mut rows = Vec::new();
    for method in methods {
        let (mks, wks, mauc, wauc, wall) = run_method_avg(&worlds, method);
        println!(
            "{:<22} {mks:>7.4} {wks:>7.4} {mauc:>7.4} {wauc:>7.4}  [{wall:.1}s]",
            method.name()
        );
        rows.push(serde_json::json!({
            "method": method.name(),
            "mKS": mks, "wKS": wks, "mAUC": mauc, "wAUC": wauc,
            "wall_seconds": wall,
        }));
    }
    write_json(
        &cfg,
        "table1",
        &serde_json::json!({ "rows": rows, "seeds": cfg.n_seeds }),
    );
}
