//! Golden conformance snapshots.
//!
//! A pinned, fully deterministic seeded run of the paper's Table I/II
//! method comparison, frozen into `results/golden/table_metrics.json`.
//! The tier-1 test `tests/golden_conformance.rs` reruns the identical
//! pipeline and fails when any metric drifts beyond [`TOLERANCE`] — the
//! regression tripwire for every numeric layer at once (data generator,
//! GBDT, transform, kernels, trainers, evaluation).
//!
//! Regenerate after an *intentional* numeric change with
//! `cargo run --release -p lightmirm-experiments --bin golden`, and say
//! why in the commit message (policy in EXPERIMENTS.md).

use crate::{build_world, run_method, summarize, ExpConfig, Method};

/// Drift tolerance for golden comparisons. Every stage of the pipeline is
/// deterministic (fixed seeds, ordered chunked reductions), so unchanged
/// code reproduces the snapshot *bit-exactly* — JSON round-trips through
/// `float_roundtrip` parsing without loss. The epsilon only forgives
/// last-bit differences from a legitimately reordered-but-equivalent
/// compile (e.g. a new rustc fusing operations differently).
pub const TOLERANCE: f64 = 1e-9;

/// The pinned world/training configuration. Small enough for tier-1
/// (seconds, not minutes), large enough that every method trains and all
/// provinces clear the evaluation floor. Changing ANY field invalidates
/// the snapshot — regenerate it in the same commit.
pub fn golden_config() -> ExpConfig {
    ExpConfig {
        rows: 10_000,
        seed: 7,
        epochs: 6,
        baseline_epochs: 10,
        trees: 8,
        min_eval_rows: 20,
        n_seeds: 1,
        out_dir: std::path::PathBuf::from("results"),
    }
}

/// The methods pinned by the snapshot: the Table I comparison minus the
/// O(M²) complete meta-IRM (too slow for tier-1), plus the Table II
/// sampled variants.
pub fn golden_methods() -> Vec<Method> {
    vec![
        Method::Erm,
        Method::UpSampling,
        Method::GroupDro,
        Method::VRex,
        Method::MetaIrm(Some(5)),
        Method::MetaIrm(Some(10)),
        Method::light_mirm_default(),
    ]
}

/// Run the pinned pipeline and return the snapshot document.
pub fn compute_golden() -> serde_json::Value {
    let cfg = golden_config();
    let world = build_world(&cfg);
    let methods: Vec<serde_json::Value> = golden_methods()
        .into_iter()
        .map(|m| {
            let run = run_method(&cfg, &world, m, None);
            let s = summarize(&cfg, &world, &run);
            serde_json::json!({
                "name": m.name(),
                "m_ks": s.m_ks,
                "w_ks": s.w_ks,
                "m_auc": s.m_auc,
                "w_auc": s.w_auc,
            })
        })
        .collect();
    serde_json::json!({
        "snapshot": "table_metrics",
        "tolerance": TOLERANCE,
        "config": serde_json::json!({
            "rows": cfg.rows,
            "seed": cfg.seed,
            "epochs": cfg.epochs,
            "baseline_epochs": cfg.baseline_epochs,
            "trees": cfg.trees,
            "min_eval_rows": cfg.min_eval_rows,
        }),
        "methods": methods,
    })
}

/// Compare a freshly computed snapshot against the pinned one. Returns a
/// human-readable drift report, empty when conformant.
pub fn compare_golden(pinned: &serde_json::Value, fresh: &serde_json::Value) -> Vec<String> {
    let mut drift = Vec::new();
    let tolerance = pinned["tolerance"].as_f64().unwrap_or(TOLERANCE);
    let empty = Vec::new();
    let pinned_methods = pinned["methods"].as_array().unwrap_or(&empty);
    let fresh_methods = fresh["methods"].as_array().unwrap_or(&empty);
    if pinned_methods.is_empty() {
        drift.push("pinned snapshot has no methods".into());
    }
    for p in pinned_methods {
        let name = p["name"].as_str().unwrap_or("?");
        let Some(f) = fresh_methods.iter().find(|f| f["name"] == p["name"]) else {
            drift.push(format!("{name}: missing from fresh run"));
            continue;
        };
        for metric in ["m_ks", "w_ks", "m_auc", "w_auc"] {
            let (want, got) = (p[metric].as_f64(), f[metric].as_f64());
            match (want, got) {
                (Some(want), Some(got)) if (want - got).abs() <= tolerance => {}
                (Some(want), Some(got)) => drift.push(format!(
                    "{name}.{metric}: pinned {want:.12} vs fresh {got:.12} \
                     (|Δ| {:.3e} > {tolerance:.0e})",
                    (want - got).abs()
                )),
                _ => drift.push(format!("{name}.{metric}: not a number in one snapshot")),
            }
        }
    }
    drift
}

/// A copy of `snapshot` with `methods[0].<metric>` shifted by `delta` —
/// the perturbation hook the conformance test uses to prove the
/// comparator actually fails on wrong numbers. Rebuilds the tree
/// functionally (the vendored `Value` has no mutable indexing).
///
/// # Panics
///
/// Panics when the snapshot lacks a leading method with `metric`.
pub fn perturb_first_method(
    snapshot: &serde_json::Value,
    metric: &str,
    delta: f64,
) -> serde_json::Value {
    use serde_json::Value;
    let mut methods = snapshot["methods"]
        .as_array()
        .expect("snapshot has methods")
        .clone();
    let mut first = methods
        .first()
        .and_then(Value::as_object)
        .expect("leading method object")
        .clone();
    let old = first
        .get(metric)
        .and_then(Value::as_f64)
        .unwrap_or_else(|| panic!("leading method has metric {metric}"));
    first.insert(metric.to_string(), Value::Float(old + delta));
    methods[0] = Value::Object(first);
    let mut root = snapshot.as_object().expect("snapshot object").clone();
    root.insert("methods".to_string(), Value::Array(methods));
    Value::Object(root)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_snapshot() -> serde_json::Value {
        let erm = serde_json::json!({
            "name": "ERM", "m_ks": 0.5, "w_ks": 0.4, "m_auc": 0.8, "w_auc": 0.7,
        });
        serde_json::json!({
            "tolerance": 1e-9,
            "methods": vec![erm],
        })
    }

    #[test]
    fn identical_snapshots_conform() {
        let s = fake_snapshot();
        assert!(compare_golden(&s, &s).is_empty());
    }

    #[test]
    fn drift_beyond_tolerance_is_reported() {
        let pinned = fake_snapshot();
        let fresh = perturb_first_method(&pinned, "m_auc", 1e-3);
        let drift = compare_golden(&pinned, &fresh);
        assert_eq!(drift.len(), 1);
        assert!(drift[0].contains("ERM.m_auc"), "{}", drift[0]);
    }

    #[test]
    fn drift_within_tolerance_is_forgiven() {
        let pinned = fake_snapshot();
        let fresh = perturb_first_method(&pinned, "m_ks", 1e-13);
        assert!(compare_golden(&pinned, &fresh).is_empty());
    }

    #[test]
    fn missing_methods_are_reported() {
        let pinned = fake_snapshot();
        let fresh = serde_json::json!({"methods": Vec::<serde_json::Value>::new()});
        let drift = compare_golden(&pinned, &fresh);
        assert!(drift.iter().any(|d| d.contains("missing")), "{drift:?}");
    }
}
