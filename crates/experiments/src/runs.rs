//! Shared multi-binary computations: the Table II / Fig. 6 / Fig. 8
//! sampling comparison and the Table III / Fig. 7 timing run. Binaries
//! call these through [`crate::load_or_compute`] so the figure views reuse
//! the table runs' JSON instead of retraining.

use lightmirm_core::prelude::*;
use lightmirm_metrics::{auc, ks};

use crate::{build_seed_worlds, build_world, run_method, summarize, ExpConfig, Method};

/// Train the Table II methods (meta-IRM complete/20/10/5, LightMIRM) with
/// per-epoch test KS/AUC curves, averaged over `cfg.n_seeds` worlds.
/// Feeds Table II, Fig. 6, and Fig. 8.
pub fn compute_sampling_comparison(cfg: &ExpConfig) -> serde_json::Value {
    let worlds = build_seed_worlds(cfg);
    let methods = [
        Method::MetaIrm(None),
        Method::MetaIrm(Some(20)),
        Method::MetaIrm(Some(10)),
        Method::MetaIrm(Some(5)),
        Method::light_mirm_default(),
    ];

    let mut table_rows = Vec::new();
    let mut curves = Vec::new();
    for method in methods {
        let mut acc = [0.0f64; 4];
        let mut wall = 0.0;
        let mut ops = None;
        let mut ks_curve: Vec<f64> = vec![0.0; cfg.epochs];
        let mut auc_curve: Vec<f64> = vec![0.0; cfg.epochs];
        for (c, world) in &worlds {
            let rows_test = world.test.all_rows();
            let labels_test: Vec<u8> = rows_test
                .iter()
                .map(|&r| world.test.labels[r as usize])
                .collect();
            let mut obs = |epoch: usize, model: &LrModel| {
                let p = model.predict_rows(&world.test.x, &rows_test);
                ks_curve[epoch] += ks(&p, &labels_test).expect("test KS");
                auc_curve[epoch] += auc(&p, &labels_test).expect("test AUC");
            };
            let run = run_method(c, world, method, Some(&mut obs));
            let s = summarize(c, world, &run);
            acc[0] += s.m_ks;
            acc[1] += s.w_ks;
            acc[2] += s.m_auc;
            acc[3] += s.w_auc;
            wall += run.wall_seconds;
            ops.get_or_insert(run.output.ops);
        }
        let n = worlds.len() as f64;
        for v in ks_curve.iter_mut().chain(auc_curve.iter_mut()) {
            *v /= n;
        }
        table_rows.push(serde_json::json!({
            "method": method.name(),
            "mKS": acc[0] / n, "wKS": acc[1] / n,
            "mAUC": acc[2] / n, "wAUC": acc[3] / n,
            "wall_seconds": wall / n,
            "ops": ops.expect("at least one seed"),
        }));
        curves.push(serde_json::json!({
            "method": method.name(),
            "epochs": (0..cfg.epochs).collect::<Vec<_>>(),
            "test_ks": ks_curve,
            "test_auc": auc_curve,
        }));
    }
    serde_json::json!({
        "rows": table_rows,
        "curves_fig6_fig8": curves,
        "seeds": cfg.n_seeds,
    })
}

/// Time the Table III methods step by step. Feeds Table III and Fig. 7.
pub fn compute_timing(cfg: &ExpConfig) -> serde_json::Value {
    let mut cfg = cfg.clone();
    // Per-epoch cost is stationary; a few epochs give clean averages.
    cfg.epochs = cfg.epochs.min(10);
    let world = build_world(&cfg);
    let labels = [
        "loading data",
        "transforming the format",
        "inner optimization",
        "calculating the meta-losses",
        "backward propagation",
        "the whole epoch",
    ];
    let mut measured = Vec::new();
    for (name, method) in [
        ("meta-IRM", Method::MetaIrm(None)),
        ("meta-IRM(5)", Method::MetaIrm(Some(5))),
        ("LightMIRM", Method::light_mirm_default()),
    ] {
        // Re-transform the frames so the TransformFormat step is charged
        // per run (in training itself the transform happens once up front).
        let mut timer = StepTimer::new();
        let _ = world
            .extractor
            .to_env_dataset(&world.frame_train, world.names.clone(), Some(&mut timer))
            .expect("transform");
        let run = run_method(&cfg, &world, method, None);
        timer.merge(&run.output.timer);
        let per_epoch = |d: std::time::Duration| d.as_secs_f64() / cfg.epochs as f64;
        let steps = [
            per_epoch(timer.total(Step::LoadData)),
            per_epoch(timer.total(Step::TransformFormat)),
            per_epoch(timer.total(Step::InnerOptimization)),
            per_epoch(timer.total(Step::MetaLoss)),
            per_epoch(timer.total(Step::Backward)),
            per_epoch(timer.epoch_total()),
        ];
        measured.push(serde_json::json!({
            "method": name,
            "steps": steps,
            "ops_per_epoch": run.output.ops.total() / cfg.epochs as u64,
            "hvp_per_epoch": run.output.ops.hvp / cfg.epochs as u64,
        }));
    }
    let step_of = |i: usize, j: usize| measured[i]["steps"][j].as_f64().expect("step time");
    serde_json::json!({
        "labels": labels,
        "measured_seconds_per_epoch": measured,
        "epoch_speedup": step_of(0, 5) / step_of(2, 5),
        "meta_loss_speedup": step_of(0, 3) / step_of(2, 3),
        "epochs_timed": cfg.epochs,
    })
}
