//! The IRM stress-lab: parameterized SEM scenario batteries with
//! regression-gated trainer scorecards.
//!
//! The invariance battery in `crates/core/tests/irm_unit.rs` pins one
//! SEM instance. *What Is Missing in IRM Training and Evaluation?*
//! (Zhang et al.) shows IRM verdicts flip with batch size and
//! environment regime, and *Empirical or Invariant Risk Minimization?*
//! (Ahuja et al.) predicts an ERM-vs-IRM crossover in sample size — so
//! one instance is not evidence. This module runs **every trainer**
//! across a grid of [`lightmirm_core::sem`] scenario families:
//!
//! - **spurious_sweep** — strength/sign sweeps of the flipping spurious
//!   correlation (the canonical IRM temptation at several intensities);
//! - **label_shift** — the class prior moves across environments while
//!   the feature mechanism stays fixed;
//! - **long_tail** — six environments with heavily skewed sizes where
//!   the big head agrees on the spurious sign and the small tail
//!   disagrees;
//! - **batch_regime** — the canonical SEM with ERM forced through
//!   mini-batch SGD (the invariance verdict must not hinge on the
//!   full-batch reference);
//! - **crossover** — OOD log-loss per trainer over a sweep of
//!   per-environment sample sizes, reporting the smallest size at which
//!   each trainer beats ERM out-of-distribution.
//!
//! The output is a machine-readable per-trainer scorecard pinned at
//! `results/stresslab/scorecard.json` and regression-gated by the
//! tier-1 test `tests/stresslab_gate.rs`, exactly like the golden
//! Table I/II snapshot: every number is deterministic (hash-driven SEM,
//! ordered chunked reductions), so the comparison runs at the golden
//! [`TOLERANCE`] and any verdict flip is a hard failure. The scorecard
//! deliberately contains **no timestamps or wall-clock fields** — it
//! must be byte-identical across `RAYON_NUM_THREADS` settings and
//! kernel backends.
//!
//! Regenerate after an *intentional* change with
//! `cargo run --release -p lightmirm-experiments --bin stresslab -- --quick`
//! and say why in the commit message (policy in EXPERIMENTS.md).

use lightmirm_core::prelude::*;
use lightmirm_core::sem::{self, log_loss, spurious_ratio, SemSpec};
use lightmirm_core::trainers::TrainConfig;
use serde_json::Value;

pub use crate::golden::TOLERANCE;

/// Scorecard schema version; bump on structural change.
pub const SCORECARD_VERSION: u64 = 1;

/// A cell passes when the trainer keeps the spurious-to-invariant
/// weight ratio under this line. Sits between the battery's invariant
/// bound (0.15) and its ERM latch bound (0.25).
pub const PASS_SPURIOUS_RATIO: f64 = 0.20;

/// A cell additionally requires OOD log-loss at or under this line. Two
/// jobs: a degenerate all-zero model has a perfect spurious ratio but
/// sits at ln 2 ≈ 0.693, and must not count as invariant; and an
/// invariant learner should land near the invariant-only optimum
/// (Bernoulli(0.75) entropy ≈ 0.562 nats at ρ_inv = 0.5). The verdict
/// deliberately uses log-loss, not AUC: with four discrete score
/// levels, OOD AUC is dominated by how ties break on the *sign* of a
/// near-zero spurious weight, so it swings wildly between equally
/// invariant models. AUC is still recorded per cell as a pinned
/// diagnostic.
pub const PASS_MAX_OOD_LOG_LOSS: f64 = 0.68;

/// Scenario-grid size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Grid {
    /// Tier-1 / CI grid: seconds.
    Quick,
    /// Extended sweep for offline investigation.
    Full,
}

impl Grid {
    pub fn name(self) -> &'static str {
        match self {
            Grid::Quick => "quick",
            Grid::Full => "full",
        }
    }
}

/// One stress scenario: a training SEM, a held-out environment whose
/// spurious correlation reverses the pooled training sign, and an
/// optional mini-batch override for the ERM reference.
#[derive(Debug, Clone)]
pub struct Scenario {
    pub id: &'static str,
    pub family: &'static str,
    pub train: SemSpec,
    pub ood: SemSpec,
    /// `Some(b)` forces the ERM trainer through mini-batch SGD.
    pub erm_batch: Option<usize>,
}

fn scenario(
    id: &'static str,
    family: &'static str,
    train: SemSpec,
    ood_rho: f64,
    erm_batch: Option<usize>,
) -> Scenario {
    // The OOD stream is seeded away from every training stream so a
    // scenario never evaluates on its own draws.
    let ood_seed = 1000 + train.seed;
    let ood = SemSpec::flip(&[600], 0.5, &[ood_rho]).with_seed(ood_seed);
    Scenario {
        id,
        family,
        train,
        ood,
        erm_batch,
    }
}

/// The scenario battery for a grid. Quick keeps tier-1 in seconds;
/// full widens every family. Both cover ≥ 4 families.
pub fn scenarios(grid: Grid) -> Vec<Scenario> {
    let flip =
        |sizes: &[usize], rhos: &[f64], seed: u64| SemSpec::flip(sizes, 0.5, rhos).with_seed(seed);
    let mut v = vec![
        scenario(
            "spur_strong",
            "spurious_sweep",
            flip(&[300, 300], &[0.9, -0.2], 11),
            -0.9,
            None,
        ),
        scenario(
            "spur_moderate",
            "spurious_sweep",
            flip(&[300, 300], &[0.7, -0.3], 12),
            -0.9,
            None,
        ),
        scenario(
            "spur_reversed",
            "spurious_sweep",
            flip(&[300, 300], &[-0.9, 0.2], 13),
            0.9,
            None,
        ),
        scenario(
            "label_shift_35_65",
            "label_shift",
            SemSpec::new(vec![300, 300], 0.5, vec![0.9, -0.2], vec![0.35, 0.65], 14),
            -0.9,
            None,
        ),
        scenario(
            "long_tail_head_heavy",
            "long_tail",
            sem::long_tail(15),
            -0.9,
            None,
        ),
        scenario(
            "batch_b032",
            "batch_regime",
            flip(&[300, 300], &[0.9, -0.2], 16),
            -0.9,
            Some(32),
        ),
    ];
    if grid == Grid::Full {
        v.extend([
            scenario(
                "spur_asym",
                "spurious_sweep",
                flip(&[300, 300], &[0.8, -0.1], 21),
                -0.9,
                None,
            ),
            scenario(
                "spur_faint",
                "spurious_sweep",
                flip(&[300, 300], &[0.4, -0.15], 22),
                -0.9,
                None,
            ),
            scenario(
                "label_shift_20_80",
                "label_shift",
                SemSpec::new(vec![300, 300], 0.5, vec![0.9, -0.2], vec![0.2, 0.8], 24),
                -0.9,
                None,
            ),
            scenario(
                "long_tail_reseeded",
                "long_tail",
                sem::long_tail(25),
                -0.9,
                None,
            ),
            scenario(
                "batch_b008",
                "batch_regime",
                flip(&[300, 300], &[0.9, -0.2], 26),
                -0.9,
                Some(8),
            ),
            scenario(
                "batch_b128",
                "batch_regime",
                flip(&[300, 300], &[0.9, -0.2], 27),
                -0.9,
                Some(128),
            ),
        ]);
    }
    v
}

/// Per-environment sample sizes for the Ahuja-style crossover sweep.
pub fn crossover_sizes(grid: Grid) -> Vec<usize> {
    match grid {
        Grid::Quick => vec![60, 150, 400],
        Grid::Full => vec![30, 60, 150, 400, 800],
    }
}

/// The trainer families under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainerKind {
    Erm,
    UpSampling,
    FineTune,
    GroupDro,
    VRex,
    Irmv1,
    MetaIrm,
    LightMirm,
}

/// A named trainer configuration. `lambda` is the invariance-penalty
/// weight fed to `TrainConfig` (only the meta trainers read it); the
/// gate test weakens it to prove verdict flips are caught.
#[derive(Debug, Clone)]
pub struct TrainerSpec {
    pub name: &'static str,
    pub kind: TrainerKind,
    pub lambda: f64,
}

/// Every trainer of the paper's evaluation, at the battery's standard
/// penalty weight.
pub fn default_trainers() -> Vec<TrainerSpec> {
    use TrainerKind::*;
    [
        ("ERM", Erm),
        ("UpSampling", UpSampling),
        ("ERM+FineTune", FineTune),
        ("GroupDRO", GroupDro),
        ("V-REx", VRex),
        ("IRMv1", Irmv1),
        ("meta-IRM", MetaIrm),
        ("LightMIRM", LightMirm),
    ]
    .into_iter()
    .map(|(name, kind)| TrainerSpec {
        name,
        kind,
        lambda: 0.5,
    })
    .collect()
}

/// The battery's training configuration (same as `irm_unit.rs`).
fn base_cfg(lambda: f64) -> TrainConfig {
    TrainConfig {
        epochs: 60,
        inner_lr: 0.3,
        outer_lr: 1.0,
        lambda,
        reg: 1e-4,
        momentum: 0.0,
        seed: 5,
    }
}

/// Train one spec on one dataset. `erm_batch` only affects the ERM
/// reference (the other trainers are full-batch per-environment by
/// construction).
pub fn fit(spec: &TrainerSpec, data: &EnvDataset, erm_batch: Option<usize>) -> TrainOutput {
    let cfg = base_cfg(spec.lambda);
    match spec.kind {
        TrainerKind::Erm => match erm_batch {
            Some(b) => ErmTrainer::with_batch_size(cfg, b).fit(data, None),
            None => ErmTrainer::new(cfg).fit(data, None),
        },
        TrainerKind::UpSampling => UpSamplingTrainer::new(cfg).fit(data, None),
        TrainerKind::FineTune => FineTuneTrainer::new(cfg, 20, 0.05).fit(data, None),
        TrainerKind::GroupDro => GroupDroTrainer::new(cfg, 1.0).fit(data, None),
        TrainerKind::VRex => VRexTrainer::new(cfg, 2.0).fit(data, None),
        TrainerKind::Irmv1 => Irmv1Trainer::new(cfg, 1.0).fit(data, None),
        TrainerKind::MetaIrm => MetaIrmTrainer::new(cfg).fit(data, None),
        TrainerKind::LightMirm => LightMirmTrainer::new(cfg).fit(data, None),
    }
}

fn auc_on(model: &TrainedModel, data: &EnvDataset) -> f64 {
    let rows = data.all_rows();
    let scores = model.predict_rows(&data.x, &rows, &data.env_ids);
    lightmirm_metrics::auc(&scores, &data.labels).expect("SEM data has both classes")
}

/// Compute the full scorecard for a grid with the default trainers.
pub fn compute_scorecard(grid: Grid) -> Value {
    compute_scorecard_with(grid, &default_trainers())
}

/// Compute the scorecard for an explicit trainer list (the gate test
/// injects a deliberately weakened LightMIRM through this hook).
pub fn compute_scorecard_with(grid: Grid, trainers: &[TrainerSpec]) -> Value {
    let scenarios = scenarios(grid);
    let scenario_docs: Vec<Value> = scenarios
        .iter()
        .map(|s| {
            serde_json::json!({
                "id": s.id,
                "family": s.family,
                "n_envs": s.train.rows_per_env.len() as u64,
                "n_rows": s.train.n_rows() as u64,
                "pooled_rho_spur": s.train.pooled_rho_spur(),
                "erm_batch": s.erm_batch.map(|b| b as u64),
            })
        })
        .collect();

    // Cache the sampled datasets: every trainer sees identical bytes.
    let sampled: Vec<(EnvDataset, EnvDataset)> = scenarios
        .iter()
        .map(|s| (s.train.sample(), s.ood.sample()))
        .collect();

    // The crossover sweep shares one OOD set across sizes so curves
    // are comparable.
    let sizes = crossover_sizes(grid);
    let cross_train: Vec<EnvDataset> = sizes
        .iter()
        .map(|&n| {
            SemSpec::flip(&[n, n], 0.5, &[0.9, -0.2])
                .with_seed(31)
                .sample()
        })
        .collect();
    let cross_ood = SemSpec::flip(&[800], 0.5, &[-0.9]).with_seed(1031).sample();
    let erm_spec = TrainerSpec {
        name: "ERM",
        kind: TrainerKind::Erm,
        lambda: 0.5,
    };
    let erm_curve: Vec<f64> = cross_train
        .iter()
        .map(|d| log_loss(&fit(&erm_spec, d, None).model, &cross_ood))
        .collect();

    let trainer_docs: Vec<Value> = trainers
        .iter()
        .map(|t| {
            let cells: Vec<Value> = scenarios
                .iter()
                .zip(&sampled)
                .map(|(s, (train, ood))| {
                    let out = fit(t, train, s.erm_batch);
                    let ratio = spurious_ratio(out.model.global());
                    let auc_id = auc_on(&out.model, train);
                    let auc_ood = auc_on(&out.model, ood);
                    let ll_ood = log_loss(&out.model, ood);
                    let pass = ratio <= PASS_SPURIOUS_RATIO && ll_ood <= PASS_MAX_OOD_LOG_LOSS;
                    serde_json::json!({
                        "scenario": s.id,
                        "spurious_ratio": ratio,
                        "auc_id": auc_id,
                        "auc_ood": auc_ood,
                        "ood_auc_gap": auc_id - auc_ood,
                        "ood_log_loss": ll_ood,
                        "pass": pass,
                    })
                })
                .collect();
            let n_pass = cells.iter().filter(|c| c["pass"] == true).count() as u64;
            let curve: Vec<f64> = cross_train
                .iter()
                .map(|d| log_loss(&fit(t, d, None).model, &cross_ood))
                .collect();
            // Smallest per-env size where this trainer beats the ERM
            // reference out of distribution (Ahuja et al. predict ERM
            // wins below the crossover, IRM above).
            let crossover_n = sizes
                .iter()
                .zip(&curve)
                .zip(&erm_curve)
                .find(|((_, t_ll), erm_ll)| t_ll < erm_ll)
                .map(|((n, _), _)| *n as u64);
            serde_json::json!({
                "name": t.name,
                "lambda": t.lambda,
                "n_pass": n_pass,
                "cells": cells,
                "crossover": serde_json::json!({
                    "sizes": sizes.iter().map(|&n| n as u64).collect::<Vec<_>>(),
                    "ood_log_loss": curve,
                    "crossover_n": crossover_n,
                }),
            })
        })
        .collect();

    serde_json::json!({
        "snapshot": "stresslab_scorecard",
        "version": SCORECARD_VERSION,
        "grid": grid.name(),
        "tolerance": TOLERANCE,
        "pass_spurious_ratio": PASS_SPURIOUS_RATIO,
        "pass_max_ood_log_loss": PASS_MAX_OOD_LOG_LOSS,
        "scenarios": scenario_docs,
        "trainers": trainer_docs,
    })
}

const CELL_METRICS: [&str; 5] = [
    "spurious_ratio",
    "auc_id",
    "auc_ood",
    "ood_auc_gap",
    "ood_log_loss",
];

fn cmp_f64(drift: &mut Vec<String>, label: &str, want: Option<f64>, got: Option<f64>, tol: f64) {
    match (want, got) {
        (Some(w), Some(g)) if (w - g).abs() <= tol => {}
        (Some(w), Some(g)) => drift.push(format!(
            "{label}: pinned {w:.12} vs fresh {g:.12} (|Δ| {:.3e} > {tol:.0e})",
            (w - g).abs()
        )),
        _ => drift.push(format!("{label}: not a number in one scorecard")),
    }
}

/// Compare a freshly computed scorecard against the pinned one. Returns
/// a human-readable drift report, empty when conformant. Two classes of
/// finding:
///
/// - `REGRESSION` — a previously-passing (trainer, scenario) cell now
///   fails, or a crossover point moved. This is the gate the issue's
///   invariance claims ride on.
/// - numeric drift beyond the golden tolerance — any metric moved; an
///   intentional change must re-bless the snapshot.
pub fn compare_scorecard(pinned: &Value, fresh: &Value) -> Vec<String> {
    let mut drift = Vec::new();
    let tol = pinned["tolerance"].as_f64().unwrap_or(TOLERANCE);
    if pinned["version"] != fresh["version"] {
        drift.push("scorecard version mismatch".into());
    }
    if pinned["grid"] != fresh["grid"] {
        drift.push(format!(
            "grid mismatch: pinned {:?} vs fresh {:?}",
            pinned["grid"].as_str(),
            fresh["grid"].as_str()
        ));
    }
    let empty = Vec::new();
    let pinned_trainers = pinned["trainers"].as_array().unwrap_or(&empty);
    let fresh_trainers = fresh["trainers"].as_array().unwrap_or(&empty);
    if pinned_trainers.is_empty() {
        drift.push("pinned scorecard has no trainers".into());
    }
    for p in pinned_trainers {
        let name = p["name"].as_str().unwrap_or("?");
        let Some(f) = fresh_trainers.iter().find(|f| f["name"] == p["name"]) else {
            drift.push(format!("{name}: missing from fresh scorecard"));
            continue;
        };
        let pcells = p["cells"].as_array().unwrap_or(&empty);
        let fcells = f["cells"].as_array().unwrap_or(&empty);
        for pc in pcells {
            let sid = pc["scenario"].as_str().unwrap_or("?");
            let Some(fc) = fcells.iter().find(|c| c["scenario"] == pc["scenario"]) else {
                drift.push(format!("{name} × {sid}: missing from fresh scorecard"));
                continue;
            };
            match (pc["pass"].as_bool(), fc["pass"].as_bool()) {
                (Some(true), Some(false)) => drift.push(format!(
                    "REGRESSION {name} × {sid}: previously-passing scenario now fails \
                     (spurious_ratio {:.4} → {:.4})",
                    pc["spurious_ratio"].as_f64().unwrap_or(f64::NAN),
                    fc["spurious_ratio"].as_f64().unwrap_or(f64::NAN),
                )),
                (Some(false), Some(true)) => drift.push(format!(
                    "{name} × {sid}: verdict improved fail → pass; re-bless the scorecard"
                )),
                (Some(_), Some(_)) => {}
                _ => drift.push(format!("{name} × {sid}: pass flag missing")),
            }
            for metric in CELL_METRICS {
                cmp_f64(
                    &mut drift,
                    &format!("{name} × {sid}.{metric}"),
                    pc[metric].as_f64(),
                    fc[metric].as_f64(),
                    tol,
                );
            }
        }
        // Crossover curve: sizes must agree exactly, losses within
        // tolerance, and the crossover point must not move.
        let (px, fx) = (&p["crossover"], &f["crossover"]);
        if px["sizes"] != fx["sizes"] {
            drift.push(format!("{name}: crossover size grid changed"));
        } else {
            let pll = px["ood_log_loss"].as_array().unwrap_or(&empty);
            let fll = fx["ood_log_loss"].as_array().unwrap_or(&empty);
            let psizes = px["sizes"].as_array().unwrap_or(&empty);
            for (i, s) in psizes.iter().enumerate() {
                cmp_f64(
                    &mut drift,
                    &format!("{name}.crossover[n={}]", s.as_u64().unwrap_or(0)),
                    pll.get(i).and_then(Value::as_f64),
                    fll.get(i).and_then(Value::as_f64),
                    tol,
                );
            }
        }
        if px["crossover_n"] != fx["crossover_n"] {
            drift.push(format!(
                "REGRESSION {name}: crossover point moved ({:?} → {:?})",
                px["crossover_n"].as_u64(),
                fx["crossover_n"].as_u64(),
            ));
        }
    }
    drift
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built two-trainer scorecard for comparator unit tests —
    /// no training involved.
    fn fake_scorecard() -> Value {
        let cell = |scenario: &str, ratio: f64, pass: bool| {
            serde_json::json!({
                "scenario": scenario,
                "spurious_ratio": ratio,
                "auc_id": 0.8,
                "auc_ood": 0.7,
                "ood_auc_gap": 0.1,
                "ood_log_loss": 0.6,
                "pass": pass,
            })
        };
        let trainer = |name: &str, ratio: f64, pass: bool, cn: Option<u64>| {
            serde_json::json!({
                "name": name,
                "lambda": 0.5,
                "n_pass": u64::from(pass),
                "cells": vec![cell("spur_strong", ratio, pass)],
                "crossover": serde_json::json!({
                    "sizes": vec![60u64, 150],
                    "ood_log_loss": vec![0.7, 0.65],
                    "crossover_n": cn,
                }),
            })
        };
        serde_json::json!({
            "snapshot": "stresslab_scorecard",
            "version": SCORECARD_VERSION,
            "grid": "quick",
            "tolerance": 1e-9,
            "trainers": vec![
                trainer("LightMIRM", 0.05, true, Some(150)),
                trainer("ERM", 0.9, false, None),
            ],
        })
    }

    fn with_lightmirm_cell(card: &Value, ratio: f64, pass: bool) -> Value {
        // Functional rebuild: the vendored Value has no mutable indexing.
        let mut trainers = card["trainers"].as_array().unwrap().clone();
        let mut t0 = trainers[0].as_object().unwrap().clone();
        let mut c0 = t0.get("cells").unwrap().as_array().unwrap()[0]
            .as_object()
            .unwrap()
            .clone();
        c0.insert("spurious_ratio".into(), Value::Float(ratio));
        c0.insert("pass".into(), Value::Bool(pass));
        t0.insert("cells".into(), Value::Array(vec![Value::Object(c0)]));
        trainers[0] = Value::Object(t0);
        let mut root = card.as_object().unwrap().clone();
        root.insert("trainers".into(), Value::Array(trainers));
        Value::Object(root)
    }

    #[test]
    fn identical_scorecards_conform() {
        let s = fake_scorecard();
        assert!(compare_scorecard(&s, &s).is_empty());
    }

    #[test]
    fn a_verdict_flip_is_a_hard_regression() {
        let pinned = fake_scorecard();
        let fresh = with_lightmirm_cell(&pinned, 0.6, false);
        let drift = compare_scorecard(&pinned, &fresh);
        assert!(
            drift
                .iter()
                .any(|d| d.starts_with("REGRESSION LightMIRM × spur_strong")),
            "{drift:?}"
        );
    }

    #[test]
    fn metric_drift_beyond_tolerance_is_reported() {
        let pinned = fake_scorecard();
        let fresh = with_lightmirm_cell(&pinned, 0.05 + 1e-6, true);
        let drift = compare_scorecard(&pinned, &fresh);
        assert!(
            drift
                .iter()
                .any(|d| d.contains("LightMIRM × spur_strong.spurious_ratio")),
            "{drift:?}"
        );
    }

    #[test]
    fn drift_within_tolerance_is_forgiven() {
        let pinned = fake_scorecard();
        let fresh = with_lightmirm_cell(&pinned, 0.05 + 1e-13, true);
        assert!(compare_scorecard(&pinned, &fresh).is_empty());
    }

    #[test]
    fn a_moved_crossover_point_is_a_regression() {
        let pinned = fake_scorecard();
        let mut trainers = pinned["trainers"].as_array().unwrap().clone();
        let mut t0 = trainers[0].as_object().unwrap().clone();
        let mut x = t0.get("crossover").unwrap().as_object().unwrap().clone();
        x.insert("crossover_n".into(), Value::Null);
        t0.insert("crossover".into(), Value::Object(x));
        trainers[0] = Value::Object(t0);
        let mut root = pinned.as_object().unwrap().clone();
        root.insert("trainers".into(), Value::Array(trainers));
        let fresh = Value::Object(root);
        let drift = compare_scorecard(&pinned, &fresh);
        assert!(
            drift.iter().any(|d| d.contains("crossover point moved")),
            "{drift:?}"
        );
    }

    #[test]
    fn missing_trainers_are_reported() {
        let pinned = fake_scorecard();
        let fresh = serde_json::json!({
            "version": SCORECARD_VERSION,
            "grid": "quick",
            "trainers": Vec::<Value>::new(),
        });
        let drift = compare_scorecard(&pinned, &fresh);
        assert!(drift.iter().any(|d| d.contains("missing")), "{drift:?}");
    }

    #[test]
    fn fake_scorecard_roundtrips_through_json() {
        let card = fake_scorecard();
        let text = serde_json::to_string_pretty(&card).unwrap();
        let back: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(back, card);
        assert!(compare_scorecard(&card, &back).is_empty());
    }
}
