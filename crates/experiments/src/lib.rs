//! Shared harness for the per-table/per-figure experiment binaries.
//!
//! Every binary builds the same world — a seeded synthetic Chery-FS-like
//! dataset, temporally split 2016–19 / 2020, pushed through the ERM-trained
//! GBDT feature extractor — then trains whichever methods its
//! table/figure compares and prints both the paper's reference numbers and
//! the measured ones. Flags: `--rows N --seed N --seeds K --epochs N
//! --trees N --min-eval-rows N --out DIR` (see [`ExpConfig::from_args`]).

use std::time::Instant;

use lightmirm_core::prelude::*;
use lightmirm_core::trainers::TrainConfig;
use loansim::{generate, temporal_split, GeneratorConfig, LoanFrame, ProvinceCatalog};

pub mod golden;
pub mod reference;
pub mod runs;
pub mod stresslab;

/// Experiment-wide configuration, parsed from CLI flags.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Total generated rows (split ~4:1 into train/test by year).
    pub rows: usize,
    /// World seed.
    pub seed: u64,
    /// Training epochs for the IRM-family trainers.
    pub epochs: usize,
    /// Training epochs for the single-level baselines (they take cheaper
    /// steps, so they get proportionally more).
    pub baseline_epochs: usize,
    /// Number of GBDT trees in the feature extractor.
    pub trees: usize,
    /// Minimum test rows for a province to enter mKS/wKS summaries.
    pub min_eval_rows: usize,
    /// Number of seeds to average over in the ablation/sampling binaries
    /// (world seeds `seed, seed+1, …`).
    pub n_seeds: usize,
    /// Output directory for JSON result rows.
    pub out_dir: std::path::PathBuf,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            rows: 100_000,
            seed: 7,
            epochs: 60,
            baseline_epochs: 150,
            trees: 64,
            min_eval_rows: 80,
            n_seeds: 3,
            out_dir: std::path::PathBuf::from("results"),
        }
    }
}

impl ExpConfig {
    /// Parse `--rows/--seed/--epochs/--baseline-epochs/--trees/--out`
    /// from `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed flags.
    pub fn from_args() -> Self {
        let mut cfg = ExpConfig::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let value = |j: usize| -> &str {
                args.get(j + 1)
                    .unwrap_or_else(|| panic!("flag {} needs a value", args[j]))
            };
            match args[i].as_str() {
                "--rows" => cfg.rows = value(i).parse().expect("--rows N"),
                "--seed" => cfg.seed = value(i).parse().expect("--seed N"),
                "--epochs" => cfg.epochs = value(i).parse().expect("--epochs N"),
                "--baseline-epochs" => {
                    cfg.baseline_epochs = value(i).parse().expect("--baseline-epochs N")
                }
                "--trees" => cfg.trees = value(i).parse().expect("--trees N"),
                "--min-eval-rows" => {
                    cfg.min_eval_rows = value(i).parse().expect("--min-eval-rows N")
                }
                "--seeds" => cfg.n_seeds = value(i).parse().expect("--seeds N"),
                "--out" => cfg.out_dir = value(i).into(),
                other => panic!("unknown flag {other}"),
            }
            i += 2;
        }
        cfg
    }

    /// The trainer config shared by the meta/IRM-family methods. No
    /// momentum: Algorithm 1/2 use plain SGD steps, and the sampling-noise
    /// sensitivity that motivates the MRQ (paper Table II / Fig. 6) only
    /// shows under plain SGD — momentum would smooth the sampled variants'
    /// noise and hide exactly the effect the paper measures.
    pub fn train_config(&self) -> TrainConfig {
        TrainConfig {
            epochs: self.epochs,
            inner_lr: 0.1,
            outer_lr: 0.3,
            lambda: 0.5,
            reg: 1e-4,
            momentum: 0.0,
            seed: self.seed,
        }
    }

    /// The baseline trainer config: heavier-ball momentum and more epochs
    /// (single-level objectives tolerate it and converge faster).
    pub fn baseline_config(&self) -> TrainConfig {
        TrainConfig {
            epochs: self.baseline_epochs,
            outer_lr: 0.05,
            momentum: 0.9,
            ..self.train_config()
        }
    }
}

/// The fully prepared experimental world.
pub struct World {
    pub catalog: ProvinceCatalog,
    pub names: Vec<String>,
    pub frame_train: LoanFrame,
    pub frame_test: LoanFrame,
    pub extractor: FeatureExtractor,
    pub train: EnvDataset,
    pub test: EnvDataset,
}

/// Generate, split temporally at 2020, fit the GBDT extractor on train,
/// and transform both splits.
///
/// # Panics
///
/// Panics on generation/training failures — these are deterministic
/// configuration errors, not runtime conditions.
pub fn build_world(cfg: &ExpConfig) -> World {
    let frame = generate(&GeneratorConfig {
        rows: cfg.rows,
        seed: cfg.seed,
        ..Default::default()
    });
    let split = temporal_split(&frame, 2020);
    build_world_from_frames(cfg, split.train, split.test)
}

/// Build a world from pre-split frames (used by the i.i.d. setting of
/// Table VI).
pub fn build_world_from_frames(
    cfg: &ExpConfig,
    frame_train: LoanFrame,
    frame_test: LoanFrame,
) -> World {
    let catalog = ProvinceCatalog::standard();
    let names = catalog.names();
    let mut fe_cfg = FeatureExtractorConfig::default();
    fe_cfg.gbdt.n_trees = cfg.trees;
    let extractor =
        FeatureExtractor::fit(&frame_train, &fe_cfg).expect("GBDT fits the training frame");
    let train = extractor
        .to_env_dataset(&frame_train, names.clone(), None)
        .expect("train transform");
    let test = extractor
        .to_env_dataset(&frame_test, names.clone(), None)
        .expect("test transform");
    World {
        catalog,
        names,
        frame_train,
        frame_test,
        extractor,
        train,
        test,
    }
}

/// The methods of the paper's main comparison (Table I order), plus the
/// meta-IRM sampling variants of Table II and the IRMv1 extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    Erm,
    ErmFineTune,
    UpSampling,
    GroupDro,
    VRex,
    Irmv1,
    /// `None` = complete; `Some(s)` = meta-IRM(s).
    MetaIrm(Option<usize>),
    /// `(mrq_len, gamma_x100)` — γ passed as integer hundredths so the
    /// enum stays `Eq`/`Copy` for registry use.
    LightMirm(usize, u32),
}

impl Method {
    /// Display name matching the paper's tables.
    pub fn name(self) -> String {
        match self {
            Method::Erm => "ERM".into(),
            Method::ErmFineTune => "ERM + fine-tuning".into(),
            Method::UpSampling => "Up Sampling".into(),
            Method::GroupDro => "Group DRO".into(),
            Method::VRex => "V-REx".into(),
            Method::Irmv1 => "IRMv1".into(),
            Method::MetaIrm(None) => "meta-IRM".into(),
            Method::MetaIrm(Some(s)) => format!("meta-IRM({s})"),
            Method::LightMirm(5, 90) => "LightMIRM(our)".into(),
            Method::LightMirm(l, g) => format!("LightMIRM(L={l},g={:.2})", g as f64 / 100.0),
        }
    }

    /// The default LightMIRM configuration (L = 5, γ = 0.9).
    pub fn light_mirm_default() -> Method {
        Method::LightMirm(5, 90)
    }
}

/// A trained method with bookkeeping.
pub struct MethodRun {
    pub method: Method,
    pub output: TrainOutput,
    pub wall_seconds: f64,
}

/// Train one method on the world with the config's hyper-parameters.
/// `observer` is invoked per epoch for curve recording.
pub fn run_method(
    cfg: &ExpConfig,
    world: &World,
    method: Method,
    observer: Option<lightmirm_core::trainers::EpochObserver<'_>>,
) -> MethodRun {
    let start = Instant::now();
    let tc = cfg.train_config();
    let bc = cfg.baseline_config();
    let output = match method {
        Method::Erm => ErmTrainer::new(bc).fit(&world.train, observer),
        Method::ErmFineTune => FineTuneTrainer::new(bc, 80, 0.05).fit(&world.train, observer),
        Method::UpSampling => UpSamplingTrainer::new(bc).fit(&world.train, observer),
        Method::GroupDro => GroupDroTrainer::new(bc, 1.0).fit(&world.train, observer),
        Method::VRex => VRexTrainer::new(bc, 2.0).fit(&world.train, observer),
        Method::Irmv1 => Irmv1Trainer::new(bc, 1.0).fit(&world.train, observer),
        Method::MetaIrm(None) => MetaIrmTrainer::new(tc).fit(&world.train, observer),
        Method::MetaIrm(Some(s)) => {
            MetaIrmTrainer::with_sample_size(tc, s).fit(&world.train, observer)
        }
        Method::LightMirm(l, g) => {
            LightMirmTrainer::with_mrq(tc, l, g as f64 / 100.0).fit(&world.train, observer)
        }
    };
    MethodRun {
        method,
        output,
        wall_seconds: start.elapsed().as_secs_f64(),
    }
}

/// Evaluate a run on the test environments with the configured row floor.
pub fn summarize(
    cfg: &ExpConfig,
    world: &World,
    run: &MethodRun,
) -> lightmirm_metrics::FairnessSummary {
    evaluate_filtered(&run.output.model, &world.test, cfg.min_eval_rows)
        .expect("test split has scorable provinces")
}

/// Render a metrics table row.
pub fn fmt_row(name: &str, s: &lightmirm_metrics::FairnessSummary) -> String {
    format!(
        "{name:<22} {:>7.4} {:>7.4} {:>7.4} {:>7.4}",
        s.m_ks, s.w_ks, s.m_auc, s.w_auc
    )
}

/// Print the standard table header.
pub fn print_header(title: &str) {
    println!("\n== {title} ==");
    println!(
        "{:<22} {:>7} {:>7} {:>7} {:>7}",
        "method", "mKS", "wKS", "mAUC", "wAUC"
    );
}

/// Build one world per seed (`cfg.seed, cfg.seed+1, …`), for seed-averaged
/// comparisons. Each world regenerates data and refits the extractor, so
/// binaries should build the set once and reuse it across methods.
pub fn build_seed_worlds(cfg: &ExpConfig) -> Vec<(ExpConfig, World)> {
    (0..cfg.n_seeds)
        .map(|k| {
            let mut c = cfg.clone();
            c.seed = cfg.seed + k as u64;
            let world = build_world(&c);
            (c, world)
        })
        .collect()
}

/// Train `method` on every seed world and return the seed-averaged
/// `(mKS, wKS, mAUC, wAUC, mean wall seconds)`. Used by the ablation and
/// sampling-comparison binaries, where single-seed worst-province numbers
/// are dominated by which provinces a pool or queue happens to favour.
pub fn run_method_avg(worlds: &[(ExpConfig, World)], method: Method) -> (f64, f64, f64, f64, f64) {
    let mut acc = [0.0f64; 4];
    let mut wall = 0.0;
    for (c, world) in worlds {
        let run = run_method(c, world, method, None);
        let s = summarize(c, world, &run);
        acc[0] += s.m_ks;
        acc[1] += s.w_ks;
        acc[2] += s.m_auc;
        acc[3] += s.w_auc;
        wall += run.wall_seconds;
    }
    let n = worlds.len() as f64;
    (acc[0] / n, acc[1] / n, acc[2] / n, acc[3] / n, wall / n)
}

/// Load a previously written JSON artifact, if present.
pub fn load_json(cfg: &ExpConfig, name: &str) -> Option<serde_json::Value> {
    let path = cfg.out_dir.join(format!("{name}.json"));
    let text = std::fs::read_to_string(path).ok()?;
    serde_json::from_str(&text).ok()
}

/// Load `name`.json if it already exists (so figure binaries can reuse the
/// table runs that produced their data), otherwise compute and write it.
pub fn load_or_compute(
    cfg: &ExpConfig,
    name: &str,
    compute: impl FnOnce() -> serde_json::Value,
) -> serde_json::Value {
    if let Some(v) = load_json(cfg, name) {
        println!(
            "[reusing] {}/{name}.json (delete it to recompute)",
            cfg.out_dir.display()
        );
        return v;
    }
    let v = compute();
    write_json(cfg, name, &v);
    v
}

/// Write a JSON result artifact under the configured output directory.
pub fn write_json(cfg: &ExpConfig, name: &str, value: &serde_json::Value) {
    std::fs::create_dir_all(&cfg.out_dir).expect("create results dir");
    let path = cfg.out_dir.join(format!("{name}.json"));
    std::fs::write(
        &path,
        serde_json::to_string_pretty(value).expect("serialize"),
    )
    .expect("write results");
    println!("[written] {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExpConfig {
        ExpConfig {
            rows: 4000,
            seed: 3,
            epochs: 3,
            baseline_epochs: 5,
            trees: 6,
            min_eval_rows: 10,
            n_seeds: 1,
            out_dir: std::env::temp_dir().join("lightmirm-exp-tests"),
        }
    }

    #[test]
    fn world_builds_and_splits() {
        let cfg = tiny_cfg();
        let world = build_world(&cfg);
        assert!(world.train.n_rows() > world.test.n_rows());
        assert_eq!(world.train.n_cols(), world.test.n_cols());
        assert!(world.train.active_envs().len() > 3);
    }

    #[test]
    fn every_method_runs_and_evaluates() {
        let cfg = tiny_cfg();
        let world = build_world(&cfg);
        for method in [
            Method::Erm,
            Method::ErmFineTune,
            Method::UpSampling,
            Method::GroupDro,
            Method::VRex,
            Method::Irmv1,
            Method::MetaIrm(Some(2)),
            Method::light_mirm_default(),
        ] {
            let run = run_method(&cfg, &world, method, None);
            let s = summarize(&cfg, &world, &run);
            assert!(s.m_auc.is_finite(), "{:?}", method);
        }
    }

    #[test]
    fn method_names_match_paper_tables() {
        assert_eq!(Method::Erm.name(), "ERM");
        assert_eq!(Method::MetaIrm(None).name(), "meta-IRM");
        assert_eq!(Method::MetaIrm(Some(5)).name(), "meta-IRM(5)");
        assert_eq!(Method::light_mirm_default().name(), "LightMIRM(our)");
        assert_eq!(Method::LightMirm(7, 50).name(), "LightMIRM(L=7,g=0.50)");
    }

    #[test]
    fn json_artifacts_round_trip() {
        let cfg = tiny_cfg();
        write_json(&cfg, "selftest", &serde_json::json!({"x": 1}));
        let read = std::fs::read_to_string(cfg.out_dir.join("selftest.json")).unwrap();
        let v: serde_json::Value = serde_json::from_str(&read).unwrap();
        assert_eq!(v["x"], 1);
    }
}
