//! The paper's published numbers, transcribed for side-by-side reporting.
//!
//! Experiment binaries print these next to the measured values so
//! EXPERIMENTS.md can record paper-vs-measured for every artifact. The
//! reproduction contract is *shape*, not absolute values (our substrate is
//! a synthetic world, not the Chery FS platform).

/// One row of paper Table I / II / VI: `(method, mKS, wKS, mAUC, wAUC)`.
pub type MetricRow = (&'static str, f64, f64, f64, f64);

/// Paper Table I — main comparison, temporal split.
pub const TABLE_I: &[MetricRow] = &[
    ("ERM", 0.5784, 0.3887, 0.8356, 0.7438),
    ("ERM + fine-tuning", 0.5767, 0.4144, 0.8337, 0.7483),
    ("Up Sampling", 0.5781, 0.3992, 0.8330, 0.7468),
    ("Group DRO", 0.5615, 0.3835, 0.8253, 0.7406),
    ("V-REx", 0.5762, 0.4000, 0.8329, 0.7471),
    ("meta-IRM", 0.5781, 0.4069, 0.8332, 0.7460),
    ("LightMIRM(our)", 0.5794, 0.4183, 0.8351, 0.7518),
];

/// Paper Table II — meta-IRM sampling variants vs LightMIRM.
pub const TABLE_II: &[MetricRow] = &[
    ("meta-IRM", 0.5781, 0.4069, 0.8332, 0.7460),
    ("meta-IRM(20)", 0.5762, 0.4079, 0.8334, 0.7335),
    ("meta-IRM(10)", 0.5728, 0.3670, 0.8335, 0.7304),
    ("meta-IRM(5)", 0.5736, 0.3630, 0.8342, 0.7333),
    ("LightMIRM(our)", 0.5794, 0.4183, 0.8351, 0.7518),
];

/// Paper Table III — seconds per step (meta-IRM, meta-IRM(5), LightMIRM).
pub const TABLE_III: &[(&str, f64, f64, f64)] = &[
    ("loading data", 0.0007, 0.0007, 0.0007),
    ("transforming the format", 0.0039, 0.0042, 0.0043),
    ("inner optimization", 0.0058, 0.0057, 0.0063),
    ("calculating the meta-losses", 0.3067, 0.0054, 0.0113),
    ("backward propagation", 0.0536, 0.0320, 0.0314),
    ("the whole epoch", 6124.0, 1466.0, 520.0),
];

/// Paper Table IV — γ ablation `(γ, mKS, wKS, mAUC, wAUC)`.
pub const TABLE_IV: &[(f64, f64, f64, f64, f64)] = &[
    (0.1, 0.5784, 0.4172, 0.8343, 0.7548),
    (0.3, 0.5779, 0.4150, 0.8348, 0.7521),
    (0.5, 0.5792, 0.4191, 0.8345, 0.7523),
    (0.7, 0.5781, 0.4144, 0.8349, 0.7526),
    (0.9, 0.5794, 0.4183, 0.8351, 0.7518),
    (1.0, 0.5777, 0.4170, 0.8341, 0.7489),
];

/// Paper Table V — Guangdong OOD slice `(method, KS, AUC)`.
pub const TABLE_V: &[(&str, f64, f64)] = &[
    ("ERM", 0.6409, 0.8818),
    ("Up Sampling", 0.6475, 0.8791),
    ("Group DRO", 0.6365, 0.8711),
    ("V-REx", 0.6485, 0.8794),
    ("meta-IRM", 0.6489, 0.8789),
    ("LightMIRM(our)", 0.6539, 0.8821),
];

/// Paper Table VI — i.i.d. random split.
// The wKS value 0.5235 is the paper's number; it merely resembles π/6.
#[allow(clippy::approx_constant)]
pub const TABLE_VI: &[MetricRow] = &[
    ("Up Sampling", 0.6056, 0.4983, 0.8709, 0.8093),
    ("Group DRO", 0.5977, 0.4944, 0.8669, 0.8110),
    ("V-REx", 0.6058, 0.5019, 0.8715, 0.8147),
    ("meta-IRM(5)", 0.6067, 0.5216, 0.8717, 0.8208),
    ("meta-IRM", 0.6081, 0.5188, 0.8722, 0.8235),
    ("LightMIRM(our)", 0.6066, 0.5235, 0.8715, 0.8223),
];

/// Fig. 5 / §IV-C1 online numbers: incumbent bad-debt 2.09 %, with the
/// companion at τ = 0.5 reducing it to 0.73 % (−63 %).
pub const ONLINE_INCUMBENT_BAD_DEBT: f64 = 0.0209;
/// Companion-assisted bad-debt rate at τ = 0.5.
pub const ONLINE_COMPANION_BAD_DEBT: f64 = 0.0073;

/// Fig. 1's headline gap: the ERM model performs 39.05 % worse (KS) on
/// Xinjiang than on Heilongjiang.
pub const FIG1_XINJIANG_GAP: f64 = 0.3905;

/// Fig. 9's reported peaks: best mKS at MRQ length 7, best wKS at 5.
pub const FIG9_BEST_MEAN_LEN: usize = 7;
/// MRQ length with the best worst-province KS.
pub const FIG9_BEST_WORST_LEN: usize = 5;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_internally_consistent() {
        // LightMIRM wins wKS in Table I (the paper's headline claim).
        let light = TABLE_I.iter().find(|r| r.0 == "LightMIRM(our)").unwrap();
        for row in TABLE_I {
            assert!(light.2 >= row.2, "{} beats LightMIRM on wKS", row.0);
        }
        // ERM has the best mAUC in Table I.
        let erm = TABLE_I.iter().find(|r| r.0 == "ERM").unwrap();
        for row in TABLE_I {
            assert!(erm.3 >= row.3, "{} beats ERM on mAUC", row.0);
        }
    }

    #[test]
    fn table_ii_shows_degradation_with_fewer_samples() {
        let s10 = TABLE_II.iter().find(|r| r.0 == "meta-IRM(10)").unwrap();
        let complete = TABLE_II.iter().find(|r| r.0 == "meta-IRM").unwrap();
        assert!(s10.2 < complete.2, "wKS should degrade under sampling");
    }

    #[test]
    fn table_iii_meta_loss_dominates_complete_meta_irm() {
        let meta_loss = TABLE_III
            .iter()
            .find(|r| r.0 == "calculating the meta-losses")
            .unwrap();
        assert!(meta_loss.1 > 20.0 * meta_loss.3, "paper reports ~30x");
    }

    #[test]
    fn online_numbers_show_63_percent_reduction() {
        let reduction = 1.0 - ONLINE_COMPANION_BAD_DEBT / ONLINE_INCUMBENT_BAD_DEBT;
        assert!((reduction - 0.63).abs() < 0.05);
    }
}
