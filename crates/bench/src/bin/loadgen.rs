//! Sharded serving load generator.
//!
//! Replays the deterministic traces from `lightmirm_serve::loadgen`
//! (diurnal ramps, flash crowds, mixed priorities, per-shard skew)
//! through a [`ShardedEngine`] and reports aggregate throughput plus the
//! tail of the enqueue-to-reply latency distribution — the numbers
//! behind DESIGN.md §5k. Each trace pattern appends its own
//! commit-stamped cohort (`loadgen_<pattern>`) to the perf trajectory so
//! the regression gate tracks every traffic shape independently; a
//! flash-crowd slowdown cannot hide inside diurnal history.
//!
//! Usage: `cargo run --release -p lightmirm-bench --bin loadgen
//! [-- --quick] [--shards N] [--out path.json] [--trajectory path.jsonl]`.
//! `--quick` shrinks the traces for CI smoke runs; numbers from it are
//! not meaningful, only the schema. The per-pattern score digest is
//! printed so two runs of the same trace can be diffed for determinism
//! from the logs alone.

use lightmirm_core::bundle::{BundleMetadata, ModelBundle};
use lightmirm_core::lr::LrModel;
use lightmirm_core::trainers::TrainedModel;
use lightmirm_serve::loadgen::{replay, synthesize_trace, TraceConfig, TracePattern};
use lightmirm_serve::{EngineConfig, ShardConfig, ShardedEngine};
use loansim::{generate, GeneratorConfig};
use serde_json::json;
use std::time::Duration;

/// A bundle with a quickly-fit GBDT extractor and a synthetic LR head:
/// replay cost is leaf transform + dot product, not training.
fn synthetic_bundle(frame: &loansim::LoanFrame, trees: usize) -> ModelBundle {
    let cfg = lightmirm_gbdt::GbdtConfig {
        n_trees: trees,
        ..Default::default()
    };
    let gbdt = lightmirm_gbdt::Gbdt::fit(
        frame.feature_matrix(),
        frame.n_features(),
        &frame.label,
        &cfg,
    )
    .expect("GBDT fits the synthetic frame");
    let weights: Vec<f64> = (0..gbdt.total_leaves())
        .map(|i| ((i % 17) as f64 - 8.0) * 0.03)
        .collect();
    ModelBundle::new(
        gbdt,
        &TrainedModel::Global(LrModel { weights }),
        BundleMetadata {
            trainer: "synthetic".into(),
            seed: 0,
            notes: "loadgen bench head".into(),
        },
    )
    .expect("dimensions match by construction")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let arg_after = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let shards: usize = arg_after("--shards")
        .map(|s| s.parse().expect("--shards takes a positive integer"))
        .unwrap_or(4);
    assert!(shards > 0, "--shards takes a positive integer");
    let out_path = arg_after("--out").unwrap_or_else(|| "results/BENCH_loadgen.json".to_string());
    let trajectory_path =
        arg_after("--trajectory").unwrap_or_else(|| "results/BENCH_trajectory.jsonl".to_string());

    let (rows, trees, events, submitters) = if quick {
        (4_000, 16, 300, 2)
    } else {
        (20_000, 64, 4_000, 4)
    };

    let frame = generate(&GeneratorConfig::small(rows, 41));
    let bundle = synthetic_bundle(&frame, trees);
    let n_features = frame.n_features();
    let envs = frame
        .province
        .iter()
        .copied()
        .max()
        .map(|p| p as usize + 1)
        .unwrap_or(1);
    eprintln!(
        "loadgen: {shards} shards, {trees} trees, {events} events/trace, \
         {submitters} submitters, {n_features} features"
    );

    let mut runs = Vec::new();
    for pattern in TracePattern::ALL {
        let mut tc = TraceConfig::quick(pattern, n_features as u32, envs as u16);
        tc.events = events;
        let trace = synthesize_trace(&tc);
        let trace_bytes = trace.len();

        let engine = ShardedEngine::new(
            &bundle,
            &ShardConfig {
                shards,
                engine: EngineConfig {
                    max_batch: 256,
                    max_wait: Duration::from_micros(500),
                    queue_capacity: 4096,
                    ..EngineConfig::default()
                },
                ..ShardConfig::default()
            },
        );
        let outcome = replay(&engine, trace, submitters).expect("synthesized trace decodes");
        let tail = engine.merged_enqueue_to_reply();
        let p99_us = tail.quantile(0.99) as f64 / 1_000.0;
        let p999_us = tail.quantile(0.999) as f64 / 1_000.0;
        let stats = engine.shutdown();
        let shard_rows: Vec<u64> = stats.iter().map(|s| s.rows_scored).collect();
        let rows_per_sec = outcome.rows_per_sec();
        let digest = outcome.score_digest();

        eprintln!(
            "{:>14}: {:>9.0} rows/s, p99 {p99_us:>8.1}us, p99.9 {p999_us:>8.1}us, \
             {} rows over {} events ({} sheds retried), digest {digest:016x}",
            pattern.name(),
            rows_per_sec,
            outcome.rows,
            outcome.events,
            outcome.retried_sheds,
        );

        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let record = lightmirm_bench::trajectory::TrajectoryRecord::now(
            &format!("loadgen_{}", pattern.name()),
            quick,
            threads,
            vec![
                ("aggregate_rows_per_sec".to_string(), rows_per_sec),
                ("enqueue_to_reply_p99_us".to_string(), p99_us),
                ("enqueue_to_reply_p999_us".to_string(), p999_us),
            ],
        );
        record
            .append(std::path::Path::new(&trajectory_path))
            .expect("append trajectory");

        runs.push(json!({
            "pattern": pattern.name(),
            "seed": tc.seed,
            "events": outcome.events,
            "rows": outcome.rows,
            "trace_bytes": trace_bytes,
            "retried_sheds": outcome.retried_sheds,
            "secs": outcome.elapsed.as_secs_f64(),
            "aggregate_rows_per_sec": rows_per_sec,
            "enqueue_to_reply_p99_us": p99_us,
            "enqueue_to_reply_p999_us": p999_us,
            "score_digest": format!("{digest:016x}"),
            "shard_rows_scored": shard_rows,
        }));
    }

    let report = json!({
        "bench": "loadgen",
        "quick": quick,
        "hardware": json!({
            "logical_cpus": std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            "kernel_backend": lightmirm_core::simd::backend().name(),
        }),
        "setup": json!({
            "shards": shards,
            "submitters": submitters,
            "gbdt_trees": trees,
            "events_per_trace": events,
            "n_raw_features": n_features,
            "envs": envs,
            "leaf_features": bundle.extractor.total_leaves(),
        }),
        "runs": runs,
    });

    let text = serde_json::to_string_pretty(&report).expect("report serializes");
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).expect("output directory");
    }
    std::fs::write(&out_path, text + "\n").expect("write report");
    eprintln!("wrote {out_path}; appended loadgen_* cohorts to {trajectory_path}");
}
