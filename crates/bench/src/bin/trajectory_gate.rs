//! Perf-trajectory regression gate.
//!
//! Reads the append-only `results/BENCH_trajectory.jsonl` written by the
//! `hotpath` and `serve_hotpath` bins and compares the newest run of
//! each `(bench, quick, threads)` cohort against the rolling median of
//! up to `--window` (default 5) immediately preceding runs, flagging
//! hot-path metrics more than `--tolerance` (default 0.2 = 20%) slower.
//! This covers the per-`nnz_per_row` sweep cohorts (`hotpath_nnz8` …
//! `hotpath_nnz64`) the same way as the primary scenarios: each sweep
//! point regresses only against its own history.
//!
//! Warn-only by default — benchmark noise on shared CI runners must not
//! block merges — the exit code is 0 unless `--strict` is passed, in
//! which case any flagged metric exits 1.
//!
//! Usage: `cargo run --release -p lightmirm-bench --bin trajectory_gate
//! [-- --trajectory path.jsonl] [--window N] [--tolerance F] [--strict]`.

use lightmirm_bench::trajectory::{check_regressions, load};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let path = flag("--trajectory").unwrap_or_else(|| "results/BENCH_trajectory.jsonl".to_string());
    let window: usize = flag("--window").map_or(5, |v| v.parse().expect("--window is an integer"));
    let tolerance: f64 =
        flag("--tolerance").map_or(0.2, |v| v.parse().expect("--tolerance is a number"));
    let strict = args.iter().any(|a| a == "--strict");

    let records = load(std::path::Path::new(&path));
    if records.is_empty() {
        println!("trajectory gate: no history yet at {path}; run the bench bins to start one");
        return;
    }
    println!(
        "trajectory gate: {} records at {path}, window {window}, tolerance {:.0}%",
        records.len(),
        tolerance * 100.0
    );
    let flagged = check_regressions(&records, window, tolerance);
    if flagged.is_empty() {
        println!("trajectory gate: no regressions beyond tolerance");
        return;
    }
    for r in &flagged {
        println!(
            "WARNING: {}::{} is {:.0}% slower than the rolling median ({:.4} vs {:.4})",
            r.bench,
            r.metric,
            r.slowdown * 100.0,
            r.current,
            r.median
        );
    }
    println!(
        "trajectory gate: {} metric(s) regressed{}",
        flagged.len(),
        if strict { "" } else { " (warn-only)" }
    );
    if strict {
        std::process::exit(1);
    }
}
