//! Hot-path kernel throughput harness.
//!
//! Measures the fused loss+gradient kernel against the separate serial
//! reference passes, the logit-caching HVP against the recomputing one,
//! and batched prediction — each serial (1-thread pool) and with the
//! default thread count — then writes `results/BENCH_hotpath.json` with
//! rows/sec, ns/row, and the resulting speedup ratios.
//!
//! Usage: `cargo run --release -p lightmirm-bench --bin hotpath [-- --quick]
//! [--out path.json] [--trajectory path.jsonl]`. `--quick` shrinks the
//! dataset and repetition count for CI smoke runs; numbers from it are not
//! meaningful, only the schema. Besides the snapshot JSON, every run
//! appends a commit- and thread-count-stamped record to the perf
//! trajectory (`results/BENCH_trajectory.jsonl` by default) for the
//! longitudinal regression gate (`scripts/check_bench_regression.sh`).

use lightmirm_core::kernels;
use lightmirm_core::lr;
use lightmirm_core::prelude::*;
use lightmirm_core::simd;
use rayon::ThreadPoolBuilder;
use serde_json::json;
use std::time::Instant;

struct Scenario {
    rows: usize,
    n_cols: usize,
    nnz: usize,
    n_envs: usize,
    reps: usize,
}

/// Deterministic multi-hot instance, same hash family as the kernel tests.
fn synthetic(rows: usize, n_cols: usize, nnz: usize) -> (MultiHotMatrix, Vec<u8>, Vec<f64>) {
    let idx: Vec<u32> = (0..rows * nnz)
        .map(|i| {
            let h = (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            (h % n_cols as u64) as u32
        })
        .collect();
    let x = MultiHotMatrix::new(idx, nnz, n_cols).expect("well-formed synthetic matrix");
    let labels: Vec<u8> = (0..rows).map(|i| (i % 3 == 0) as u8).collect();
    let theta: Vec<f64> = (0..n_cols).map(|i| (i as f64) * 1e-3 - 0.25).collect();
    (x, labels, theta)
}

/// Median wall time of `reps` runs, in seconds.
fn median_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    times[times.len() / 2]
}

fn record(name: &str, secs: f64, rows: usize) -> serde_json::Value {
    json!({
        "name": name,
        "median_secs": secs,
        "ns_per_row": secs * 1e9 / rows as f64,
        "rows_per_sec": rows as f64 / secs,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "results/BENCH_hotpath.json".to_string());
    let trajectory_path = args
        .iter()
        .position(|a| a == "--trajectory")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "results/BENCH_trajectory.jsonl".to_string());

    let sc = if quick {
        Scenario {
            rows: 20_000,
            n_cols: 256,
            nnz: 16,
            n_envs: 8,
            reps: 3,
        }
    } else {
        Scenario {
            rows: 120_000,
            n_cols: 512,
            nnz: 32,
            n_envs: 8,
            reps: 7,
        }
    };

    let (x, labels, theta) = synthetic(sc.rows, sc.n_cols, sc.nnz);
    let rows: Vec<u32> = (0..sc.rows as u32).collect();
    // Contiguous equal-size environment blocks, 8-env regime.
    let env_rows: Vec<Vec<u32>> = (0..sc.n_envs)
        .map(|e| {
            let per = sc.rows / sc.n_envs;
            (e * per..(e + 1) * per).map(|r| r as u32).collect()
        })
        .collect();
    let v: Vec<f64> = (0..sc.n_cols).map(|i| 0.5 - (i as f64) * 1e-3).collect();
    let reg = 1e-4;

    let serial_pool = ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("1-thread pool");
    let threads = rayon::current_num_threads();
    eprintln!(
        "hotpath: {} rows x {} cols (nnz {}), {} reps, {} thread(s)",
        sc.rows, sc.n_cols, sc.nnz, sc.reps, threads
    );

    let mut grad = vec![0.0; sc.n_cols];
    let mut logits = vec![0.0; sc.rows];
    let mut hvp = vec![0.0; sc.n_cols];

    // Separate reference passes: one forward for the loss, one full
    // recomputation of the logits for the gradient.
    let separate = median_secs(sc.reps, || {
        let loss = lr::env_loss(&theta, &x, &labels, &rows, reg);
        lr::env_grad(&theta, &x, &labels, &rows, reg, &mut grad);
        assert!(loss.is_finite());
    });

    // Fused single pass, pinned to one worker.
    let fused_serial = median_secs(sc.reps, || {
        serial_pool.install(|| {
            kernels::env_loss_grad(&theta, &x, &labels, &rows, reg, &mut grad);
        })
    });

    // Fused single pass with the default thread count (chunk-parallel).
    let fused_parallel = median_secs(sc.reps, || {
        kernels::env_loss_grad(&theta, &x, &labels, &rows, reg, &mut grad);
    });

    // HVP: recomputing the logits vs reusing the fused pass's cache.
    kernels::env_loss_grad_cached(&theta, &x, &labels, &rows, reg, &mut grad, &mut logits);
    let hvp_reference = median_secs(sc.reps, || {
        lr::env_hvp(&theta, &x, &labels, &rows, reg, &v, &mut hvp);
    });
    let hvp_cached = median_secs(sc.reps, || {
        kernels::hvp_from_logits(&logits, &x, &rows, reg, &v, &mut hvp);
    });

    // Env-parallel epoch shape: one fused pass per environment (the
    // trainers' hot loop), serial pool vs the default thread count.
    let mut env_grads = vec![vec![0.0; sc.n_cols]; sc.n_envs];
    let env_epoch = |grads: &mut Vec<Vec<f64>>| {
        use rayon::prelude::*;
        grads.par_iter_mut().enumerate().for_each(|(i, g)| {
            kernels::env_loss_grad(&theta, &x, &labels, &env_rows[i], reg, g);
        });
    };
    let env_epoch_serial = median_secs(sc.reps, || {
        serial_pool.install(|| env_epoch(&mut env_grads))
    });
    let env_epoch_parallel = median_secs(sc.reps, || env_epoch(&mut env_grads));

    // Prediction: the serial per-row loop vs the chunk-parallel batch.
    let mut preds = vec![0.0; sc.rows];
    let predict_serial = median_secs(sc.reps, || {
        for (p, &r) in preds.iter_mut().zip(&rows) {
            *p = lr::sigmoid(x.dot_row(r as usize, &theta));
        }
    });
    let predict_parallel = median_secs(sc.reps, || {
        kernels::predict_rows_into(&theta, &x, &rows, &mut preds);
    });

    // Backend split: the same kernels pinned explicitly to the blocked
    // SIMD path and the portable scalar path, on the 1-thread pool so the
    // inner loop — not scheduling — is what's measured.
    let mut backend_kernels = Vec::new();
    let mut backend_metrics: Vec<(String, f64)> = Vec::new();
    let mut fused_by_backend = [0.0f64; 2];
    let mut predict_by_backend = [0.0f64; 2];
    for (bi, backend) in [Backend::Simd, Backend::Scalar].into_iter().enumerate() {
        let name = backend.name();
        let fused_b = median_secs(sc.reps, || {
            serial_pool.install(|| {
                kernels::env_loss_grad_on(backend, &theta, &x, &labels, &rows, reg, &mut grad);
            })
        });
        let hvp_b = median_secs(sc.reps, || {
            serial_pool.install(|| {
                kernels::hvp_from_logits_on(backend, &logits, &x, &rows, reg, &v, &mut hvp);
            })
        });
        let predict_b = median_secs(sc.reps, || {
            serial_pool.install(|| {
                kernels::predict_rows_into_on(backend, &theta, &x, &rows, &mut preds);
            })
        });
        fused_by_backend[bi] = fused_b;
        predict_by_backend[bi] = predict_b;
        for (kernel, secs) in [
            ("fused_loss_grad", fused_b),
            ("hvp_cached", hvp_b),
            ("predict", predict_b),
        ] {
            backend_kernels.push(record(&format!("{kernel}_{name}"), secs, sc.rows));
            backend_metrics.push((
                format!("{kernel}_{name}_ns_per_row"),
                secs * 1e9 / sc.rows as f64,
            ));
        }
    }
    let simd_vs_scalar_fused = fused_by_backend[1] / fused_by_backend[0];
    let simd_vs_scalar_predict = predict_by_backend[1] / predict_by_backend[0];
    backend_metrics.push(("simd_vs_scalar_fused_speedup".into(), simd_vs_scalar_fused));
    backend_metrics.push((
        "simd_vs_scalar_predict_speedup".into(),
        simd_vs_scalar_predict,
    ));

    let report = json!({
        "bench": "hotpath",
        "quick": quick,
        "hardware": json!({
            "logical_cpus": std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            "rayon_threads": threads,
            "kernel_backend": simd::backend().name(),
        }),
        "dataset": json!({
            "rows": sc.rows,
            "n_cols": sc.n_cols,
            "nnz_per_row": sc.nnz,
            "n_envs": sc.n_envs,
            "chunk_rows": CHUNK_ROWS,
            "reps": sc.reps,
        }),
        "kernels": [
            record("separate_loss_grad", separate, sc.rows),
            record("fused_loss_grad_serial", fused_serial, sc.rows),
            record("fused_loss_grad_parallel", fused_parallel, sc.rows),
            record("hvp_recompute_logits", hvp_reference, sc.rows),
            record("hvp_cached_logits", hvp_cached, sc.rows),
            record("env_parallel_epoch_serial", env_epoch_serial, sc.rows),
            record("env_parallel_epoch_parallel", env_epoch_parallel, sc.rows),
            record("predict_serial", predict_serial, sc.rows),
            record("predict_parallel", predict_parallel, sc.rows),
        ],
        "backends": backend_kernels,
        "speedups": json!({
            "fused_vs_separate": separate / fused_serial,
            "parallel_vs_serial": fused_serial / fused_parallel,
            "env_parallel_vs_serial": env_epoch_serial / env_epoch_parallel,
            "hvp_cached_vs_recompute": hvp_reference / hvp_cached,
            "predict_parallel_vs_serial": predict_serial / predict_parallel,
            "simd_vs_scalar_fused": simd_vs_scalar_fused,
            "simd_vs_scalar_predict": simd_vs_scalar_predict,
        }),
    });

    let text = serde_json::to_string_pretty(&report).expect("report serializes");
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).expect("output directory");
    }
    std::fs::write(&out_path, text + "\n").expect("write report");
    eprintln!("wrote {out_path}");

    // Longitudinal record: ns/row per kernel plus the speedup ratios,
    // stamped with commit + thread count for like-for-like comparison.
    let mut metrics = vec![
        (
            "separate_loss_grad_ns_per_row".into(),
            separate * 1e9 / sc.rows as f64,
        ),
        (
            "fused_loss_grad_serial_ns_per_row".into(),
            fused_serial * 1e9 / sc.rows as f64,
        ),
        (
            "fused_loss_grad_parallel_ns_per_row".into(),
            fused_parallel * 1e9 / sc.rows as f64,
        ),
        (
            "hvp_recompute_logits_ns_per_row".into(),
            hvp_reference * 1e9 / sc.rows as f64,
        ),
        (
            "hvp_cached_logits_ns_per_row".into(),
            hvp_cached * 1e9 / sc.rows as f64,
        ),
        (
            "env_parallel_epoch_serial_ns_per_row".into(),
            env_epoch_serial * 1e9 / sc.rows as f64,
        ),
        (
            "env_parallel_epoch_parallel_ns_per_row".into(),
            env_epoch_parallel * 1e9 / sc.rows as f64,
        ),
        (
            "predict_serial_ns_per_row".into(),
            predict_serial * 1e9 / sc.rows as f64,
        ),
        (
            "predict_parallel_ns_per_row".into(),
            predict_parallel * 1e9 / sc.rows as f64,
        ),
        ("fused_vs_separate_speedup".into(), separate / fused_serial),
        (
            "hvp_cached_vs_recompute_speedup".into(),
            hvp_reference / hvp_cached,
        ),
    ];
    metrics.extend(backend_metrics);
    let record =
        lightmirm_bench::trajectory::TrajectoryRecord::now("hotpath", quick, threads, metrics);
    let tp = std::path::Path::new(&trajectory_path);
    record.append(tp).expect("append trajectory");
    eprintln!(
        "appended {} ({}) to {trajectory_path}",
        record.commit, record.bench
    );

    // nnz sweep: the fused and predict kernels on both backends across
    // GBDT sizes (trees per row), each appended under its own cohort name
    // (`hotpath_nnz8` …) so the longitudinal gate tracks them separately.
    let sweep_rows = if quick { 10_000 } else { 60_000 };
    for sweep_nnz in [8usize, 16, 32, 64] {
        let (sx, sy, stheta) = synthetic(sweep_rows, sc.n_cols, sweep_nnz);
        let srows: Vec<u32> = (0..sweep_rows as u32).collect();
        let mut sgrad = vec![0.0; sc.n_cols];
        let mut spreds = vec![0.0; sweep_rows];
        let mut sweep_metrics: Vec<(String, f64)> = Vec::new();
        let mut sweep_fused = [0.0f64; 2];
        for (bi, backend) in [Backend::Simd, Backend::Scalar].into_iter().enumerate() {
            let name = backend.name();
            let fused_b = median_secs(sc.reps, || {
                serial_pool.install(|| {
                    kernels::env_loss_grad_on(backend, &stheta, &sx, &sy, &srows, reg, &mut sgrad);
                })
            });
            let predict_b = median_secs(sc.reps, || {
                serial_pool.install(|| {
                    kernels::predict_rows_into_on(backend, &stheta, &sx, &srows, &mut spreds);
                })
            });
            sweep_fused[bi] = fused_b;
            sweep_metrics.push((
                format!("fused_loss_grad_{name}_ns_per_row"),
                fused_b * 1e9 / sweep_rows as f64,
            ));
            sweep_metrics.push((
                format!("predict_{name}_ns_per_row"),
                predict_b * 1e9 / sweep_rows as f64,
            ));
        }
        sweep_metrics.push((
            "simd_vs_scalar_fused_speedup".into(),
            sweep_fused[1] / sweep_fused[0],
        ));
        let bench_name = format!("hotpath_nnz{sweep_nnz}");
        let srecord = lightmirm_bench::trajectory::TrajectoryRecord::now(
            &bench_name,
            quick,
            threads,
            sweep_metrics,
        );
        srecord.append(tp).expect("append sweep trajectory");
        eprintln!(
            "appended {} ({}, simd {:.3}x over scalar) to {trajectory_path}",
            srecord.commit,
            srecord.bench,
            sweep_fused[1] / sweep_fused[0],
        );
    }

    println!(
        "fused_vs_separate {:.3}x | parallel_vs_serial {:.3}x | hvp_cached {:.3}x | predict {:.3}x | simd_vs_scalar fused {:.3}x predict {:.3}x",
        separate / fused_serial,
        fused_serial / fused_parallel,
        hvp_reference / hvp_cached,
        predict_serial / predict_parallel,
        simd_vs_scalar_fused,
        simd_vs_scalar_predict,
    );
}
