//! Serving-engine throughput harness.
//!
//! Drives a synthetic request stream through the `lightmirm-serve`
//! micro-batching engine across a grid of micro-batch sizes and worker
//! counts, then writes `results/BENCH_serve.json` with rows/sec and the
//! engine's own latency distributions for each configuration — the
//! numbers behind the serving section of DESIGN.md.
//!
//! Three latency views are reported per run, because they answer
//! different questions and conflating them overstated queueing cost:
//!
//! - `latency_*`: queued-to-reply, clocked from the moment the request
//!   entered the queue. Excludes submit-side blocking, so it isolates
//!   batching + scoring from backpressure.
//! - `enqueue_to_reply_*`: clocked from `submit()` entry, *including*
//!   any wait for queue space. This is what a caller experiences.
//! - `score_*`: pure `score_batch` kernel time per dispatched batch —
//!   the floor the other two sit on.
//!
//! Usage: `cargo run --release -p lightmirm-bench --bin serve_hotpath
//! [-- --quick] [--out path.json] [--trajectory path.jsonl]`. `--quick`
//! shrinks the stream and the sweep for CI smoke runs; numbers from it
//! are not meaningful, only the schema. Besides the snapshot JSON, every
//! run appends a commit-stamped record per configuration to the perf
//! trajectory (`results/BENCH_trajectory.jsonl` by default) for the
//! longitudinal regression gate (`scripts/check_bench_regression.sh`).

use lightmirm_core::bundle::{BundleMetadata, ModelBundle};
use lightmirm_core::lr::LrModel;
use lightmirm_core::trainers::TrainedModel;
use lightmirm_serve::{EngineConfig, ScoringEngine};
use loansim::{generate, GeneratorConfig};
use serde_json::json;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Scenario {
    /// Rows in the synthetic application stream.
    rows: usize,
    /// GBDT trees in the extractor (leaf transform cost per row).
    trees: usize,
    /// Rows per submitted request.
    chunk: usize,
    /// Concurrent submitter threads.
    submitters: usize,
    batch_sizes: Vec<usize>,
    worker_counts: Vec<usize>,
}

/// A bundle with a quickly-fit GBDT extractor and a synthetic LR head:
/// the serving cost is in the leaf transform + dot product, not in how
/// the weights were obtained.
fn synthetic_bundle(frame: &loansim::LoanFrame, trees: usize) -> ModelBundle {
    let cfg = lightmirm_gbdt::GbdtConfig {
        n_trees: trees,
        ..Default::default()
    };
    let gbdt = lightmirm_gbdt::Gbdt::fit(
        frame.feature_matrix(),
        frame.n_features(),
        &frame.label,
        &cfg,
    )
    .expect("GBDT fits the synthetic frame");
    let weights: Vec<f64> = (0..gbdt.total_leaves())
        .map(|i| ((i % 17) as f64 - 8.0) * 0.03)
        .collect();
    ModelBundle::new(
        gbdt,
        &TrainedModel::Global(LrModel { weights }),
        BundleMetadata {
            trainer: "synthetic".into(),
            seed: 0,
            notes: "serve_hotpath bench head".into(),
        },
    )
    .expect("dimensions match by construction")
}

/// Score the whole stream through one engine configuration from
/// `submitters` concurrent threads and report wall-clock seconds plus the
/// engine's final stats.
fn run_config(
    bundle: &ModelBundle,
    frame: &Arc<loansim::LoanFrame>,
    sc: &Scenario,
    max_batch: usize,
    workers: usize,
) -> (f64, lightmirm_serve::EngineStats) {
    let engine = Arc::new(ScoringEngine::new(
        bundle.clone(),
        EngineConfig {
            max_batch,
            max_wait: Duration::from_micros(500),
            queue_capacity: (4 * max_batch).max(4096),
            workers,
            ..EngineConfig::default()
        },
    ));
    let started = Instant::now();
    let handles: Vec<_> = (0..sc.submitters)
        .map(|t| {
            let engine = Arc::clone(&engine);
            let frame = Arc::clone(frame);
            let chunk = sc.chunk;
            let submitters = sc.submitters;
            std::thread::spawn(move || {
                let nf = frame.n_features();
                // Submitter t owns every t-th chunk of the stream.
                let mut pending = Vec::new();
                let mut start = t * chunk;
                while start < frame.len() {
                    let n = chunk.min(frame.len() - start);
                    let mut features = Vec::with_capacity(n * nf);
                    let mut env_ids = Vec::with_capacity(n);
                    for k in start..start + n {
                        features.extend_from_slice(frame.row(k));
                        env_ids.push(frame.province[k]);
                    }
                    pending.push(engine.submit(features, env_ids).expect("accepted"));
                    start += submitters * chunk;
                }
                for p in pending {
                    let scores = p.wait().expect("scored");
                    assert!(scores.iter().all(|s| s.is_finite()));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("submitter thread");
    }
    let secs = started.elapsed().as_secs_f64();
    let engine = Arc::into_inner(engine).expect("all submitters joined");
    let stats = engine.shutdown();
    assert_eq!(stats.rows_scored as usize, frame.len());
    (secs, stats)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "results/BENCH_serve.json".to_string());
    let trajectory_path = args
        .iter()
        .position(|a| a == "--trajectory")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "results/BENCH_trajectory.jsonl".to_string());

    let sc = if quick {
        Scenario {
            rows: 10_000,
            trees: 16,
            chunk: 4,
            submitters: 2,
            batch_sizes: vec![64, 256],
            worker_counts: vec![1, 2],
        }
    } else {
        Scenario {
            rows: 60_000,
            trees: 64,
            chunk: 4,
            submitters: 4,
            batch_sizes: vec![16, 64, 256, 1024],
            worker_counts: vec![1, 2, 4],
        }
    };

    let frame = Arc::new(generate(&GeneratorConfig::small(sc.rows, 41)));
    let bundle = synthetic_bundle(&frame, sc.trees);
    eprintln!(
        "serve_hotpath: {} rows, {} trees, {}-row requests from {} submitters",
        frame.len(),
        sc.trees,
        sc.chunk,
        sc.submitters
    );

    let mut runs = Vec::new();
    let mut traj_metrics: Vec<(String, f64)> = Vec::new();
    for &workers in &sc.worker_counts {
        for &max_batch in &sc.batch_sizes {
            let (secs, stats) = run_config(&bundle, &frame, &sc, max_batch, workers);
            let rows_per_sec = frame.len() as f64 / secs;
            traj_metrics.push((
                format!("w{workers}_b{max_batch}_rows_per_sec"),
                rows_per_sec,
            ));
            traj_metrics.push((
                format!("w{workers}_b{max_batch}_score_p50_us"),
                stats.score_p50_ns as f64 / 1_000.0,
            ));
            eprintln!(
                "workers {workers} batch {max_batch:>5}: {rows_per_sec:>9.0} rows/s, \
                 queued p50 {:>6.1}us p99 {:>7.1}us, e2e p50 {:>6.1}us p99 {:>7.1}us, \
                 score p50 {:>6.1}us/batch, mean dispatch {:.1} rows",
                stats.latency_p50_ns as f64 / 1_000.0,
                stats.latency_p99_ns as f64 / 1_000.0,
                stats.enqueue_to_reply_p50_ns as f64 / 1_000.0,
                stats.enqueue_to_reply_p99_ns as f64 / 1_000.0,
                stats.score_p50_ns as f64 / 1_000.0,
                stats.batch_rows_mean
            );
            runs.push(json!({
                "workers": workers,
                "max_batch": max_batch,
                "secs": secs,
                "rows_per_sec": rows_per_sec,
                // Queued-to-reply: excludes submit-side blocking.
                "latency_p50_us": stats.latency_p50_ns as f64 / 1_000.0,
                "latency_p99_us": stats.latency_p99_ns as f64 / 1_000.0,
                "latency_mean_us": stats.latency_mean_ns / 1_000.0,
                // Enqueue-to-reply: includes any wait for queue space.
                "enqueue_to_reply_p50_us": stats.enqueue_to_reply_p50_ns as f64 / 1_000.0,
                "enqueue_to_reply_p99_us": stats.enqueue_to_reply_p99_ns as f64 / 1_000.0,
                "enqueue_to_reply_mean_us": stats.enqueue_to_reply_mean_ns / 1_000.0,
                "enqueue_to_reply_max_us": stats.enqueue_to_reply_max_ns as f64 / 1_000.0,
                // Pure score_batch time per dispatched batch.
                "score_p50_us": stats.score_p50_ns as f64 / 1_000.0,
                "score_p99_us": stats.score_p99_ns as f64 / 1_000.0,
                "score_mean_us": stats.score_mean_ns / 1_000.0,
                "mean_dispatch_rows": stats.batch_rows_mean,
                "max_dispatch_rows": stats.batch_rows_max,
                "queue_depth_p50": stats.queue_depth_p50,
                "queue_depth_max": stats.queue_depth_max,
            }));
        }
    }

    let report = json!({
        "bench": "serve",
        "quick": quick,
        "hardware": json!({
            "logical_cpus": std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            "kernel_backend": lightmirm_core::simd::backend().name(),
        }),
        "stream": json!({
            "rows": sc.rows,
            "gbdt_trees": sc.trees,
            "request_rows": sc.chunk,
            "submitters": sc.submitters,
            "n_raw_features": frame.n_features(),
            "leaf_features": bundle.extractor.total_leaves(),
        }),
        "runs": runs,
    });

    let text = serde_json::to_string_pretty(&report).expect("report serializes");
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).expect("output directory");
    }
    std::fs::write(&out_path, text + "\n").expect("write report");
    eprintln!("wrote {out_path}");

    // Longitudinal record: rows/sec and p50 kernel time per (workers,
    // batch) configuration, commit-stamped for the regression gate.
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let record =
        lightmirm_bench::trajectory::TrajectoryRecord::now("serve", quick, threads, traj_metrics);
    let tp = std::path::Path::new(&trajectory_path);
    record.append(tp).expect("append trajectory");
    eprintln!(
        "appended {} ({}) to {trajectory_path}",
        record.commit, record.bench
    );
}
