//! `lightmirm-bench` — shared fixtures for the Criterion benchmarks.
//!
//! The benches back the paper's efficiency artifacts: per-iteration
//! meta-loss cost vs the number of environments `M` (Table III / Fig. 7,
//! quadratic vs linear), the inner-loop step, GBDT training throughput,
//! metric computation, and data generation.

use lightmirm_core::prelude::*;
use lightmirm_core::trainers::TrainConfig;
use loansim::{generate, temporal_split, GeneratorConfig, ProvinceCatalog};

pub mod trajectory;

/// Build a small benchmark world: `rows` records through a `trees`-tree
/// extractor, temporally split, returning the train-side [`EnvDataset`].
pub fn bench_dataset(rows: usize, trees: usize, seed: u64) -> EnvDataset {
    let frame = generate(&GeneratorConfig {
        rows,
        seed,
        ..Default::default()
    });
    let split = temporal_split(&frame, 2020);
    let mut fe = FeatureExtractorConfig::default();
    fe.gbdt.n_trees = trees;
    let extractor = FeatureExtractor::fit(&split.train, &fe).expect("bench world fits");
    extractor
        .to_env_dataset(&split.train, ProvinceCatalog::standard().names(), None)
        .expect("bench transform")
}

/// Restrict a dataset to its `m` largest environments (relabelled 0..m),
/// for sweeps over the environment count.
pub fn restrict_envs(data: &EnvDataset, m: usize) -> EnvDataset {
    let mut sized: Vec<(usize, usize)> = data
        .active_envs()
        .into_iter()
        .map(|e| (e, data.env_rows(e).len()))
        .collect();
    sized.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    sized.truncate(m);
    let keep: std::collections::HashMap<usize, u16> = sized
        .iter()
        .enumerate()
        .map(|(new, &(old, _))| (old, new as u16))
        .collect();

    let mut indices = Vec::new();
    let mut labels = Vec::new();
    let mut env_ids = Vec::new();
    for r in 0..data.n_rows() {
        if let Some(&new_env) = keep.get(&(data.env_ids[r] as usize)) {
            indices.extend_from_slice(data.x.row(r));
            labels.push(data.labels[r]);
            env_ids.push(new_env);
        }
    }
    let x = MultiHotMatrix::new(indices, data.x.nnz_per_row(), data.x.n_cols())
        .expect("restricted matrix is well-formed");
    let names = (0..m).map(|i| format!("env{i}")).collect();
    EnvDataset::new(x, labels, env_ids, names).expect("restricted dataset is aligned")
}

/// A short trainer config for per-iteration measurements.
pub fn bench_train_config(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        inner_lr: 0.1,
        outer_lr: 0.05,
        lambda: 0.5,
        reg: 1e-4,
        momentum: 0.9,
        seed: 11,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_dataset_builds() {
        let d = bench_dataset(3000, 6, 5);
        assert!(d.n_rows() > 1000);
        assert!(d.active_envs().len() > 3);
    }

    #[test]
    fn restrict_envs_keeps_largest() {
        let d = bench_dataset(4000, 6, 5);
        let r = restrict_envs(&d, 3);
        assert_eq!(r.active_envs().len(), 3);
        assert!(r.n_rows() < d.n_rows());
        // Largest kept environment is at least as big as any dropped one.
        let kept_min = r
            .env_sizes()
            .iter()
            .copied()
            .filter(|&n| n > 0)
            .min()
            .unwrap();
        let total_dropped = d.n_rows() - r.n_rows();
        assert!(kept_min * d.active_envs().len() >= total_dropped / d.active_envs().len());
    }
}
