//! Perf trajectory: commit-stamped bench records appended over time.
//!
//! Each bench bin writes its snapshot JSON as before, and *additionally*
//! appends one JSON line per run to `results/BENCH_trajectory.jsonl`:
//!
//! ```json
//! {"bench":"hotpath","quick":true,"commit":"b431bbe","unix_time":1754,
//!  "threads":8,"metrics":{"fused_loss_grad_parallel_ns_per_row":11.2}}
//! ```
//!
//! The append-only file is the repo's longitudinal perf record: CI
//! uploads it as an artifact, and [`check_regressions`] (driven by
//! `scripts/check_bench_regression.sh` via the `trajectory_gate` bin)
//! compares the newest run of each `(bench, quick, threads)` cohort
//! against the rolling median of the prior runs, warning when a hot-path
//! metric degrades by more than the tolerance.
//!
//! Cohort names in the file today: `hotpath` and `serve` (the primary
//! scenarios), plus the `hotpath_nnz8` / `hotpath_nnz16` /
//! `hotpath_nnz32` / `hotpath_nnz64` sweep the `hotpath` bin appends to
//! track the SIMD-vs-scalar kernel split across GBDT sizes. Each sweep
//! point is its own cohort, so a regression at one `nnz_per_row` cannot
//! hide inside another's history; all cohorts stay warn-only.
//!
//! Metric direction is encoded in the name: metrics ending in
//! `_rows_per_sec` are higher-is-better; everything else (`_ns_per_row`,
//! `_us`, `_secs`) is lower-is-better.

use std::io::Write;
use std::path::Path;

/// One appended trajectory entry.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryRecord {
    /// Bench bin name, e.g. `"hotpath"` or `"serve"`.
    pub bench: String,
    /// Whether the run used the shrunken `--quick` scenario.
    pub quick: bool,
    /// Short git commit hash, or `"unknown"` outside a work tree.
    pub commit: String,
    /// Seconds since the Unix epoch at record time.
    pub unix_time: u64,
    /// Worker threads the run used (rayon threads or logical CPUs).
    pub threads: usize,
    /// Flat metric name → value map, insertion-ordered.
    pub metrics: Vec<(String, f64)>,
}

impl TrajectoryRecord {
    /// A record stamped with the current commit and wall clock.
    pub fn now(bench: &str, quick: bool, threads: usize, metrics: Vec<(String, f64)>) -> Self {
        TrajectoryRecord {
            bench: bench.to_string(),
            quick,
            commit: short_commit(),
            unix_time: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            threads,
            metrics,
        }
    }

    /// Serialize as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let metrics: serde_json::Map = self
            .metrics
            .iter()
            .map(|(k, v)| (k.clone(), serde_json::json!(*v)))
            .collect();
        serde_json::to_string(&serde_json::json!({
            "bench": self.bench,
            "quick": self.quick,
            "commit": self.commit,
            "unix_time": self.unix_time,
            "threads": self.threads,
            "metrics": serde_json::Value::Object(metrics),
        }))
        .expect("trajectory line serializes")
    }

    /// Parse one JSON line; `None` for malformed or wrongly-shaped lines
    /// (the trajectory file is append-only across format revisions, so
    /// readers must skip what they cannot interpret).
    pub fn from_json_line(line: &str) -> Option<Self> {
        let v: serde_json::Value = serde_json::from_str(line).ok()?;
        let metrics = v
            .get("metrics")?
            .as_object()?
            .iter()
            .filter_map(|(k, val)| val.as_f64().map(|f| (k.clone(), f)))
            .collect();
        Some(TrajectoryRecord {
            bench: v.get("bench")?.as_str()?.to_string(),
            quick: v.get("quick")?.as_bool()?,
            commit: v.get("commit")?.as_str()?.to_string(),
            unix_time: v.get("unix_time")?.as_u64()?,
            threads: v.get("threads")?.as_u64()? as usize,
            metrics,
        })
    }

    /// Append this record to the trajectory file, creating parents as
    /// needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn append(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        writeln!(f, "{}", self.to_json_line())
    }
}

/// Load every parseable record from a trajectory file, in append order.
/// A missing file is an empty history.
pub fn load(path: &Path) -> Vec<TrajectoryRecord> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(TrajectoryRecord::from_json_line)
        .collect()
}

/// `git rev-parse --short HEAD`, or `"unknown"`.
pub fn short_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Whether a larger value of `metric` means a faster run.
fn higher_is_better(metric: &str) -> bool {
    metric.ends_with("_rows_per_sec") || metric.ends_with("_speedup")
}

/// One flagged metric from [`check_regressions`].
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    pub bench: String,
    pub metric: String,
    /// Value in the newest run.
    pub current: f64,
    /// Rolling median over the comparison window.
    pub median: f64,
    /// Fractional slowdown vs the median (0.2 = 20% slower).
    pub slowdown: f64,
}

/// Compare the newest record of every `(bench, quick, threads)` cohort
/// against the rolling median of up to `window` immediately preceding
/// records of the same cohort, flagging metrics more than `tolerance`
/// slower (e.g. `0.2` = 20%). Cohorts with no history produce nothing —
/// a first run cannot regress.
pub fn check_regressions(
    records: &[TrajectoryRecord],
    window: usize,
    tolerance: f64,
) -> Vec<Regression> {
    let mut cohorts: Vec<(String, bool, usize)> = Vec::new();
    for r in records {
        let key = (r.bench.clone(), r.quick, r.threads);
        if !cohorts.contains(&key) {
            cohorts.push(key);
        }
    }
    let mut flagged = Vec::new();
    for (bench, quick, threads) in cohorts {
        let runs: Vec<&TrajectoryRecord> = records
            .iter()
            .filter(|r| r.bench == bench && r.quick == quick && r.threads == threads)
            .collect();
        let (&current, history) = runs.split_last().expect("cohort has its defining record");
        if history.is_empty() {
            continue;
        }
        let window_runs = &history[history.len().saturating_sub(window)..];
        for (metric, value) in &current.metrics {
            let value = *value;
            let mut prior: Vec<f64> = window_runs
                .iter()
                .filter_map(|r| r.metrics.iter().find(|(k, _)| k == metric).map(|&(_, v)| v))
                .filter(|v| v.is_finite() && *v > 0.0)
                .collect();
            if prior.is_empty() || !value.is_finite() || value <= 0.0 {
                continue;
            }
            prior.sort_by(|a, b| a.partial_cmp(b).expect("finite metrics"));
            let median = prior[prior.len() / 2];
            let slowdown = if higher_is_better(metric) {
                median / value - 1.0
            } else {
                value / median - 1.0
            };
            if slowdown > tolerance {
                flagged.push(Regression {
                    bench: bench.clone(),
                    metric: metric.clone(),
                    current: value,
                    median,
                    slowdown,
                });
            }
        }
    }
    flagged
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(bench: &str, threads: usize, metrics: &[(&str, f64)]) -> TrajectoryRecord {
        TrajectoryRecord {
            bench: bench.into(),
            quick: true,
            commit: "deadbee".into(),
            unix_time: 1_700_000_000,
            threads,
            metrics: metrics.iter().map(|&(k, v)| (k.into(), v)).collect(),
        }
    }

    #[test]
    fn json_line_round_trips() {
        let r = rec(
            "hotpath",
            4,
            &[("fused_ns_per_row", 11.25), ("x_rows_per_sec", 9e6)],
        );
        let parsed = TrajectoryRecord::from_json_line(&r.to_json_line()).expect("parses");
        assert_eq!(parsed.bench, "hotpath");
        assert_eq!(parsed.threads, 4);
        assert_eq!(parsed.metrics.len(), 2);
        assert!(parsed
            .metrics
            .iter()
            .any(|(k, v)| k == "fused_ns_per_row" && (*v - 11.25).abs() < 1e-12));
        assert!(TrajectoryRecord::from_json_line("not json").is_none());
        assert!(TrajectoryRecord::from_json_line("{\"bench\":3}").is_none());
    }

    #[test]
    fn append_and_load_round_trip() {
        let dir = std::env::temp_dir().join("lightmirm-trajectory-test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("traj.jsonl");
        let _ = std::fs::remove_file(&path);
        rec("hotpath", 1, &[("a_ns_per_row", 5.0)])
            .append(&path)
            .expect("appends");
        rec("serve", 2, &[("w2_rows_per_sec", 1e6)])
            .append(&path)
            .expect("appends");
        let loaded = load(&path);
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].bench, "hotpath");
        assert_eq!(loaded[1].bench, "serve");
        assert!(load(&dir.join("missing.jsonl")).is_empty());
    }

    #[test]
    fn regression_flags_slowdowns_in_both_directions() {
        let mut records: Vec<TrajectoryRecord> = (0..5)
            .map(|i| {
                rec(
                    "hotpath",
                    4,
                    &[
                        ("k_ns_per_row", 10.0 + (i % 2) as f64 * 0.2),
                        ("k_rows_per_sec", 1e6),
                    ],
                )
            })
            .collect();
        // Latest run: ns/row 50% worse, rows/sec 40% worse.
        records.push(rec(
            "hotpath",
            4,
            &[("k_ns_per_row", 15.0), ("k_rows_per_sec", 0.6e6)],
        ));
        let flagged = check_regressions(&records, 5, 0.2);
        assert_eq!(flagged.len(), 2, "{flagged:?}");
        assert!(flagged.iter().all(|f| f.slowdown > 0.2));
        // Within tolerance: nothing flagged.
        let mut ok = records[..5].to_vec();
        ok.push(rec(
            "hotpath",
            4,
            &[("k_ns_per_row", 11.0), ("k_rows_per_sec", 0.95e6)],
        ));
        assert!(check_regressions(&ok, 5, 0.2).is_empty());
    }

    #[test]
    fn empty_history_is_a_clean_no_op() {
        // A fresh checkout has no trajectory file; an aborted bench run
        // can leave an empty or whitespace-only one. All three must load
        // as an empty history that produces no regressions.
        assert!(check_regressions(&[], 5, 0.2).is_empty());
        let dir = std::env::temp_dir().join("lightmirm-trajectory-empty-test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("empty.jsonl");
        std::fs::write(&path, "").expect("writes");
        assert!(load(&path).is_empty());
        std::fs::write(&path, "\n  \n").expect("writes");
        let records = load(&path);
        assert!(records.is_empty());
        assert!(check_regressions(&records, 5, 0.2).is_empty());
    }

    #[test]
    fn first_run_and_disjoint_cohorts_cannot_regress() {
        let solo = [rec("hotpath", 4, &[("k_ns_per_row", 99.0)])];
        assert!(check_regressions(&solo, 5, 0.2).is_empty());
        // Different thread counts are different cohorts: a 1-thread run
        // is not "slower" than a 8-thread history.
        let mixed = [
            rec("hotpath", 8, &[("k_ns_per_row", 5.0)]),
            rec("hotpath", 1, &[("k_ns_per_row", 40.0)]),
        ];
        assert!(check_regressions(&mixed, 5, 0.2).is_empty());
    }

    #[test]
    fn nnz_sweep_cohorts_are_tracked_independently() {
        // The hotpath bin appends one record per sweep point; a slowdown
        // at nnz=64 must be flagged against nnz=64 history only, not
        // averaged away against the (faster) nnz=8 cohort.
        let mut records = Vec::new();
        for _ in 0..4 {
            records.push(rec(
                "hotpath_nnz8",
                1,
                &[("fused_loss_grad_simd_ns_per_row", 20.0)],
            ));
            records.push(rec(
                "hotpath_nnz64",
                1,
                &[("fused_loss_grad_simd_ns_per_row", 120.0)],
            ));
        }
        records.push(rec(
            "hotpath_nnz8",
            1,
            &[("fused_loss_grad_simd_ns_per_row", 21.0)],
        ));
        records.push(rec(
            "hotpath_nnz64",
            1,
            &[("fused_loss_grad_simd_ns_per_row", 170.0)],
        ));
        let flagged = check_regressions(&records, 5, 0.2);
        assert_eq!(flagged.len(), 1, "{flagged:?}");
        assert_eq!(flagged[0].bench, "hotpath_nnz64");
        // The speedup-suffixed sweep metric is higher-is-better.
        assert!(higher_is_better("simd_vs_scalar_fused_speedup"));
    }

    #[test]
    fn rolling_window_forgets_ancient_history() {
        // Five fast ancient runs, then five slow recent ones; the newest
        // slow run is within tolerance of the recent median.
        let mut records: Vec<TrajectoryRecord> = (0..5)
            .map(|_| rec("serve", 2, &[("k_ns_per_row", 1.0)]))
            .collect();
        records.extend((0..6).map(|_| rec("serve", 2, &[("k_ns_per_row", 10.0)])));
        assert!(check_regressions(&records, 5, 0.2).is_empty());
    }
}
