//! The paper's §III-F complexity claim in wall-clock form: per-iteration
//! cost of meta-IRM grows quadratically in the number of environments M,
//! LightMIRM's linearly (Table III / Fig. 7 backing).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lightmirm_bench::{bench_dataset, bench_train_config, restrict_envs};
use lightmirm_core::prelude::*;

fn meta_loss_scaling(c: &mut Criterion) {
    let base = bench_dataset(12_000, 16, 3);
    let mut group = c.benchmark_group("per_epoch_cost_vs_M");
    group.sample_size(10);
    for m in [4usize, 8, 16] {
        let data = restrict_envs(&base, m);
        group.bench_with_input(BenchmarkId::new("meta_irm", m), &data, |b, data| {
            b.iter(|| MetaIrmTrainer::new(bench_train_config(1)).fit(data, None))
        });
        group.bench_with_input(BenchmarkId::new("light_mirm", m), &data, |b, data| {
            b.iter(|| LightMirmTrainer::new(bench_train_config(1)).fit(data, None))
        });
    }
    group.finish();
}

fn second_order_overhead(c: &mut Criterion) {
    // The HVP's cost (the "backward propagation" row of Table III): full
    // second-order vs the first-order ablation.
    let base = bench_dataset(12_000, 16, 3);
    let data = restrict_envs(&base, 8);
    let mut group = c.benchmark_group("second_order_overhead");
    group.sample_size(10);
    group.bench_function("meta_irm_second_order", |b| {
        b.iter(|| MetaIrmTrainer::new(bench_train_config(1)).fit(&data, None))
    });
    group.bench_function("meta_irm_first_order", |b| {
        let mut t = MetaIrmTrainer::new(bench_train_config(1));
        t.first_order = true;
        b.iter(|| t.fit(&data, None))
    });
    group.finish();
}

criterion_group!(benches, meta_loss_scaling, second_order_overhead);
criterion_main!(benches);
