//! Data-platform throughput: generation, serialization, splits.

use criterion::{criterion_group, criterion_main, Criterion};
use loansim::{generate, random_split, temporal_split, GeneratorConfig, LoanFrame};

fn datagen_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("loansim");
    group.sample_size(10);
    group.bench_function("generate_10k_rows", |b| {
        b.iter(|| generate(&GeneratorConfig::small(10_000, 1)))
    });

    let frame = generate(&GeneratorConfig::small(10_000, 1));
    group.bench_function("temporal_split_10k", |b| {
        b.iter(|| temporal_split(&frame, 2020))
    });
    group.bench_function("random_split_10k", |b| {
        b.iter(|| random_split(&frame, 0.8, 7))
    });
    group.bench_function("serialize_10k", |b| b.iter(|| frame.to_bytes()));
    let bytes = frame.to_bytes();
    group.bench_function("deserialize_10k", |b| {
        b.iter(|| LoanFrame::from_bytes(bytes.clone()).expect("round trip"))
    });
    group.finish();
}

criterion_group!(benches, datagen_benches);
criterion_main!(benches);
