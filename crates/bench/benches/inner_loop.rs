//! Microbenchmarks of the atomic operations §III-F counts: one env loss
//! (forward), one env gradient (backward), and one Hessian-vector product
//! — plus the fused kernel-layer variants that share a single logit pass.

use criterion::{criterion_group, criterion_main, Criterion};
use lightmirm_bench::bench_dataset;
use lightmirm_core::kernels;
use lightmirm_core::prelude::*;

fn atomic_ops(c: &mut Criterion) {
    let data = bench_dataset(20_000, 32, 5);
    let envs = data.active_envs();
    let biggest = *envs
        .iter()
        .max_by_key(|&&m| data.env_rows(m).len())
        .expect("nonempty");
    let rows = data.env_rows(biggest);
    let theta = vec![0.01; data.n_cols()];
    let v = vec![0.5; data.n_cols()];
    let mut out = vec![0.0; data.n_cols()];

    let mut group = c.benchmark_group("atomic_env_ops");
    group.bench_function("env_loss_forward", |b| {
        b.iter(|| env_loss(&theta, &data.x, &data.labels, rows, 1e-4))
    });
    group.bench_function("env_grad_backward", |b| {
        b.iter(|| env_grad(&theta, &data.x, &data.labels, rows, 1e-4, &mut out))
    });
    group.bench_function("env_hvp", |b| {
        b.iter(|| env_hvp(&theta, &data.x, &data.labels, rows, 1e-4, &v, &mut out))
    });
    group.finish();
}

/// The fused kernel layer against the separate reference passes: one
/// physical pass for loss+gradient, and an HVP reusing cached logits.
fn fused_kernels(c: &mut Criterion) {
    let data = bench_dataset(20_000, 32, 5);
    let envs = data.active_envs();
    let biggest = *envs
        .iter()
        .max_by_key(|&&m| data.env_rows(m).len())
        .expect("nonempty");
    let rows = data.env_rows(biggest);
    let theta = vec![0.01; data.n_cols()];
    let v = vec![0.5; data.n_cols()];
    let mut grad = vec![0.0; data.n_cols()];
    let mut out = vec![0.0; data.n_cols()];
    let mut logits = vec![0.0; rows.len()];

    let mut group = c.benchmark_group("fused_kernels");
    group.bench_function("separate_loss_then_grad", |b| {
        b.iter(|| {
            let l = env_loss(&theta, &data.x, &data.labels, rows, 1e-4);
            env_grad(&theta, &data.x, &data.labels, rows, 1e-4, &mut grad);
            l
        })
    });
    group.bench_function("fused_loss_grad", |b| {
        b.iter(|| env_loss_grad(&theta, &data.x, &data.labels, rows, 1e-4, &mut grad))
    });
    group.bench_function("fused_loss_grad_cached", |b| {
        b.iter(|| {
            env_loss_grad_cached(
                &theta,
                &data.x,
                &data.labels,
                rows,
                1e-4,
                &mut grad,
                &mut logits,
            )
        })
    });
    env_loss_grad_cached(
        &theta,
        &data.x,
        &data.labels,
        rows,
        1e-4,
        &mut grad,
        &mut logits,
    );
    group.bench_function("hvp_from_cached_logits", |b| {
        b.iter(|| hvp_from_logits(&logits, &data.x, rows, 1e-4, &v, &mut out))
    });
    group.bench_function("predict_rows_batched", |b| {
        let mut preds = vec![0.0; rows.len()];
        b.iter(|| kernels::predict_rows_into(&theta, &data.x, rows, &mut preds))
    });
    group.finish();
}

fn mrq_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("mrq");
    group.bench_function("push_and_replay_l5", |b| {
        let mut q = MetaReplayQueue::new(5);
        let mut i = 0.0f64;
        b.iter(|| {
            i += 1.0;
            q.push(i);
            q.replayed_mean(0.9)
        })
    });
    group.finish();
}

criterion_group!(benches, atomic_ops, fused_kernels, mrq_ops);
criterion_main!(benches);
