//! Microbenchmarks of the atomic operations §III-F counts: one env loss
//! (forward), one env gradient (backward), and one Hessian-vector product.

use criterion::{criterion_group, criterion_main, Criterion};
use lightmirm_bench::bench_dataset;
use lightmirm_core::prelude::*;

fn atomic_ops(c: &mut Criterion) {
    let data = bench_dataset(20_000, 32, 5);
    let envs = data.active_envs();
    let biggest = *envs
        .iter()
        .max_by_key(|&&m| data.env_rows(m).len())
        .expect("nonempty");
    let rows = data.env_rows(biggest);
    let theta = vec![0.01; data.n_cols()];
    let v = vec![0.5; data.n_cols()];
    let mut out = vec![0.0; data.n_cols()];

    let mut group = c.benchmark_group("atomic_env_ops");
    group.bench_function("env_loss_forward", |b| {
        b.iter(|| env_loss(&theta, &data.x, &data.labels, rows, 1e-4))
    });
    group.bench_function("env_grad_backward", |b| {
        b.iter(|| env_grad(&theta, &data.x, &data.labels, rows, 1e-4, &mut out))
    });
    group.bench_function("env_hvp", |b| {
        b.iter(|| env_hvp(&theta, &data.x, &data.labels, rows, 1e-4, &v, &mut out))
    });
    group.finish();
}

fn mrq_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("mrq");
    group.bench_function("push_and_replay_l5", |b| {
        let mut q = MetaReplayQueue::new(5);
        let mut i = 0.0f64;
        b.iter(|| {
            i += 1.0;
            q.push(i);
            q.replayed_mean(0.9)
        })
    });
    group.finish();
}

criterion_group!(benches, atomic_ops, mrq_ops);
criterion_main!(benches);
