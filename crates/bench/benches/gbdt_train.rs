//! GBDT feature-extractor throughput: training, prediction, and the
//! leaf-index transform (the Table III "transforming the format" row).

use criterion::{criterion_group, criterion_main, Criterion};
use lightmirm_gbdt::{Gbdt, GbdtConfig, GrowConfig};
use loansim::{generate, GeneratorConfig};

fn gbdt_benches(c: &mut Criterion) {
    let frame = generate(&GeneratorConfig::small(10_000, 9));
    let config = GbdtConfig {
        n_trees: 16,
        learning_rate: 0.15,
        max_bins: 64,
        grow: GrowConfig {
            max_leaves: 8,
            min_data_in_leaf: 40,
            lambda_l2: 1.0,
            min_gain: 1e-6,
        },
        ..Default::default()
    };

    let mut group = c.benchmark_group("gbdt");
    group.sample_size(10);
    group.bench_function("fit_16_trees_10k_rows", |b| {
        b.iter(|| {
            Gbdt::fit(
                frame.feature_matrix(),
                frame.n_features(),
                &frame.label,
                &config,
            )
            .expect("fits")
        })
    });

    let model = Gbdt::fit(
        frame.feature_matrix(),
        frame.n_features(),
        &frame.label,
        &config,
    )
    .expect("fits");
    group.bench_function("predict_proba_10k_rows", |b| {
        b.iter(|| model.predict_proba_batch(frame.feature_matrix()))
    });
    group.bench_function("transform_leaf_indices_10k_rows", |b| {
        b.iter(|| model.transform_batch(frame.feature_matrix()))
    });
    group.finish();
}

criterion_group!(benches, gbdt_benches);
criterion_main!(benches);
