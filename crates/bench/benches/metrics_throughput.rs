//! Metric computation throughput: the evaluation side of every table.

use criterion::{criterion_group, criterion_main, Criterion};
use lightmirm_metrics::{auc, ks, roc_curve, threshold_sweep};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn scored_sample(n: usize) -> (Vec<f64>, Vec<u8>) {
    let mut rng = ChaCha8Rng::seed_from_u64(21);
    let mut scores = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let y = (rng.gen::<f64>() < 0.1) as u8;
        scores.push(rng.gen::<f64>() * 0.8 + y as f64 * 0.2);
        labels.push(y);
    }
    (scores, labels)
}

fn metric_benches(c: &mut Criterion) {
    let (scores, labels) = scored_sample(100_000);
    let mut group = c.benchmark_group("metrics_100k");
    group.bench_function("auc", |b| b.iter(|| auc(&scores, &labels).expect("auc")));
    group.bench_function("ks", |b| b.iter(|| ks(&scores, &labels).expect("ks")));
    group.bench_function("roc_curve", |b| {
        b.iter(|| roc_curve(&scores, &labels).expect("roc"))
    });
    let grid: Vec<f64> = (0..=20).map(|i| i as f64 / 20.0).collect();
    group.bench_function("threshold_sweep_21", |b| {
        b.iter(|| threshold_sweep(&scores, &labels, &grid).expect("sweep"))
    });
    group.finish();
}

criterion_group!(benches, metric_benches);
criterion_main!(benches);
