//! Dataset statistics backing the paper's data-analysis figures.
//!
//! - [`vehicle_mix_by_year`] — paper Fig. 4 (vehicle-type distribution per
//!   year).
//! - [`province_share_by_year`] — paper Fig. 10 (Guangdong's transaction
//!   ratio over 2016–2020).
//! - [`default_rate_by_province`] — context for Fig. 1.

use crate::frame::LoanFrame;
use crate::schema::VehicleType;

/// Fraction of each vehicle type per year.
///
/// Returns `(years, mix)` where `mix[i][v]` is the share of vehicle type
/// `v` (discriminant order) in `years[i]`. Years appear sorted; years with
/// no rows are omitted.
pub fn vehicle_mix_by_year(frame: &LoanFrame) -> (Vec<u16>, Vec<[f64; 6]>) {
    let mut years: Vec<u16> = frame.year.clone();
    years.sort_unstable();
    years.dedup();
    let mut mix = Vec::with_capacity(years.len());
    for &year in &years {
        let mut counts = [0usize; 6];
        let mut total = 0usize;
        for r in 0..frame.len() {
            if frame.year[r] == year {
                counts[frame.vehicle[r] as usize] += 1;
                total += 1;
            }
        }
        let mut shares = [0.0f64; 6];
        for (s, &c) in shares.iter_mut().zip(&counts) {
            *s = c as f64 / total as f64;
        }
        mix.push(shares);
    }
    (years, mix)
}

/// Share of transactions per province per year.
///
/// Returns `(years, share)` where `share[i][p]` is the fraction of year
/// `years[i]`'s rows that belong to province `p`.
pub fn province_share_by_year(frame: &LoanFrame, n_provinces: usize) -> (Vec<u16>, Vec<Vec<f64>>) {
    let mut years: Vec<u16> = frame.year.clone();
    years.sort_unstable();
    years.dedup();
    let mut out = Vec::with_capacity(years.len());
    for &year in &years {
        let mut counts = vec![0usize; n_provinces];
        let mut total = 0usize;
        for r in 0..frame.len() {
            if frame.year[r] == year {
                counts[frame.province[r] as usize] += 1;
                total += 1;
            }
        }
        out.push(counts.iter().map(|&c| c as f64 / total as f64).collect());
    }
    (years, out)
}

/// Default rate per province over the whole frame (`None` for provinces
/// with no rows).
pub fn default_rate_by_province(frame: &LoanFrame, n_provinces: usize) -> Vec<Option<f64>> {
    let mut pos = vec![0usize; n_provinces];
    let mut total = vec![0usize; n_provinces];
    for r in 0..frame.len() {
        let p = frame.province[r] as usize;
        total[p] += 1;
        if frame.label[r] != 0 {
            pos[p] += 1;
        }
    }
    pos.iter()
        .zip(&total)
        .map(|(&p, &t)| {
            if t == 0 {
                None
            } else {
                Some(p as f64 / t as f64)
            }
        })
        .collect()
}

/// Pretty-print a vehicle mix table (used by the fig4 experiment binary).
pub fn format_vehicle_mix(years: &[u16], mix: &[[f64; 6]]) -> String {
    let mut s = String::from("year");
    for v in VehicleType::ALL {
        s.push_str(&format!("\t{}", v.name()));
    }
    s.push('\n');
    for (y, row) in years.iter().zip(mix) {
        s.push_str(&format!("{y}"));
        for share in row {
            s.push_str(&format!("\t{share:.3}"));
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, GeneratorConfig};

    #[test]
    fn vehicle_mix_rows_sum_to_one() {
        let f = generate(&GeneratorConfig::small(20_000, 41));
        let (years, mix) = vehicle_mix_by_year(&f);
        assert_eq!(years, vec![2016, 2017, 2018, 2019, 2020]);
        for row in &mix {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn vehicle_mix_shows_suv_drift() {
        let f = generate(&GeneratorConfig::small(60_000, 43));
        let (years, mix) = vehicle_mix_by_year(&f);
        let first = years.iter().position(|&y| y == 2016).unwrap();
        let last = years.iter().position(|&y| y == 2020).unwrap();
        let suv = VehicleType::Suv as usize;
        assert!(mix[last][suv] > mix[first][suv]);
    }

    #[test]
    fn province_share_sums_to_one() {
        let f = generate(&GeneratorConfig::small(20_000, 47));
        let (_, share) = province_share_by_year(&f, 28);
        for row in &share {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn guangdong_share_drops_in_2020() {
        let f = generate(&GeneratorConfig::small(80_000, 53));
        let (years, share) = province_share_by_year(&f, 28);
        let i2018 = years.iter().position(|&y| y == 2018).unwrap();
        let i2020 = years.iter().position(|&y| y == 2020).unwrap();
        assert!(share[i2020][0] < 0.7 * share[i2018][0]);
    }

    #[test]
    fn default_rates_cover_all_present_provinces() {
        let f = generate(&GeneratorConfig::small(20_000, 59));
        let rates = default_rate_by_province(&f, 28);
        // Big provinces must have rows at this size.
        for r in rates.iter().take(10) {
            assert!(r.is_some());
        }
        for r in rates.iter().flatten() {
            assert!((0.0..=1.0).contains(r));
        }
    }

    #[test]
    fn format_vehicle_mix_is_tabular() {
        let f = generate(&GeneratorConfig::small(5000, 61));
        let (years, mix) = vehicle_mix_by_year(&f);
        let s = format_vehicle_mix(&years, &mix);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), years.len() + 1);
        assert!(lines[0].contains("SUV"));
    }
}
