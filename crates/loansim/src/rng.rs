//! Small sampling utilities on top of `rand`, kept dependency-free.
//!
//! `rand` 0.8 without `rand_distr` only exposes uniform sampling; the
//! generator needs Gaussians, categorical draws, and Poisson-ish counts.

use rand::Rng;

/// Standard normal via the Box–Muller transform.
///
/// Consumes two uniforms per call; simple, branch-free, and plenty fast for
/// data generation (the generator is not the hot path).
pub fn randn<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard against ln(0) by sampling the half-open interval from the top.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Sample an index from unnormalized non-negative weights.
///
/// # Panics
///
/// Panics if `weights` is empty or sums to zero.
pub fn sample_weighted<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(
        !weights.is_empty() && total > 0.0,
        "weights must be nonempty with positive sum"
    );
    let mut t = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        t -= w;
        if t <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Poisson sample via Knuth's multiplication method (fine for small λ).
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u32 {
    debug_assert!(lambda >= 0.0);
    let l = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l || k > 1000 {
            return k;
        }
        k += 1;
    }
}

/// Numerically-stable logistic function.
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn randn_moments() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| randn(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn randn_is_finite() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..10_000 {
            assert!(randn(&mut rng).is_finite());
        }
    }

    #[test]
    fn weighted_sampling_matches_weights() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let w = [1.0, 3.0, 6.0];
        let mut counts = [0usize; 3];
        let n = 30_000;
        for _ in 0..n {
            counts[sample_weighted(&mut rng, &w)] += 1;
        }
        assert!((counts[0] as f64 / n as f64 - 0.1).abs() < 0.01);
        assert!((counts[1] as f64 / n as f64 - 0.3).abs() < 0.01);
        assert!((counts[2] as f64 / n as f64 - 0.6).abs() < 0.01);
    }

    #[test]
    fn weighted_sampling_handles_zero_weight_entries() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for _ in 0..1000 {
            let idx = sample_weighted(&mut rng, &[0.0, 1.0, 0.0]);
            assert_eq!(idx, 1);
        }
    }

    #[test]
    #[should_panic(expected = "positive sum")]
    fn weighted_sampling_rejects_empty() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let _ = sample_weighted(&mut rng, &[]);
    }

    #[test]
    fn poisson_mean_is_lambda() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let n = 20_000;
        let mean = (0..n).map(|_| poisson(&mut rng, 2.5) as f64).sum::<f64>() / n as f64;
        assert!((mean - 2.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn poisson_zero_lambda_is_zero() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn sigmoid_symmetry_and_bounds() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-12);
        assert!(sigmoid(-800.0) >= 0.0);
        assert!(sigmoid(800.0) <= 1.0);
        assert!(sigmoid(-800.0) < 1e-10);
    }
}
