//! `loansim` — a synthetic auto-loan data platform.
//!
//! The LightMIRM paper evaluates on proprietary transaction data from the
//! Chery FS auto-loan platform (1.4 M records × 210 features, 2016–2020,
//! provinces as environments). That data is unavailable, so this crate
//! implements the closest synthetic equivalent: a seeded causal generative
//! model whose mechanisms reproduce every property the paper's evaluation
//! relies on:
//!
//! - **environments** — 28 provinces with heterogeneous sizes, default
//!   rates, and feature distributions ([`provinces`]);
//! - **an invariant predictor exists** — latent creditworthiness drives
//!   defaults through stable coefficients everywhere ([`mod@generate`]);
//! - **spurious shortcuts** — an anti-causal channel block whose coupling
//!   varies across provinces and collapses in 2020;
//! - **covariate shift** — Guangdong's transaction share halves in 2020
//!   (paper Fig. 10), Xinjiang is tiny and shifted (Fig. 1);
//! - **concept shift** — a COVID shock hits Hubei in 2020-H1 and recovers
//!   in H2 (Fig. 11); vehicle mixes drift year over year (Fig. 4).
//!
//! # Quick start
//!
//! ```
//! use loansim::{generate, GeneratorConfig, temporal_split};
//!
//! let frame = generate(&GeneratorConfig::small(1000, 42));
//! let split = temporal_split(&frame, 2020);
//! assert!(split.train.len() + split.test.len() == 1000);
//! ```

pub mod frame;
pub mod generate;
pub mod io;
pub mod provinces;
pub mod rng;
pub mod schema;
pub mod split;
pub mod stats;

pub use frame::{FrameError, LoanFrame};
pub use generate::{generate, generate_with_schema, GeneratorConfig, RecordStream};
pub use io::{from_csv, to_csv};
pub use provinces::{Province, ProvinceCatalog, ProvinceId};
pub use schema::{FeatureDef, FeatureGroup, Schema, VehicleType, NUM_FEATURES};
pub use split::{
    half_year_rows, province_rows, random_split, rows_by_province, temporal_split, Split,
};
pub use stats::{
    default_rate_by_province, format_vehicle_mix, province_share_by_year, vehicle_mix_by_year,
};
