//! Text interop: CSV export/import of loan frames.
//!
//! The binary format in [`crate::frame`] is the fast path; CSV exists so
//! generated worlds can be inspected with standard tools or consumed by
//! non-Rust baselines. The layout is
//! `year,half,province,vehicle,label,<feature columns...>` with feature
//! column names taken from the schema.

use crate::frame::{FrameError, LoanFrame};
use crate::schema::Schema;

/// Serialize a frame to CSV with a schema-named header.
pub fn to_csv(frame: &LoanFrame, schema: &Schema) -> String {
    assert_eq!(
        schema.len(),
        frame.n_features(),
        "schema width must match the frame"
    );
    let mut out = String::with_capacity(frame.len() * frame.n_features() * 8);
    out.push_str("year,half,province,vehicle,label");
    for f in schema.features() {
        out.push(',');
        out.push_str(&f.name);
    }
    out.push('\n');
    for r in 0..frame.len() {
        out.push_str(&format!(
            "{},{},{},{},{}",
            frame.year[r], frame.half[r], frame.province[r], frame.vehicle[r], frame.label[r]
        ));
        for &v in frame.row(r) {
            out.push(',');
            out.push_str(&format_f32(v));
        }
        out.push('\n');
    }
    out
}

/// Shortest representation that round-trips an `f32` through `parse`.
fn format_f32(v: f32) -> String {
    let mut s = format!("{v}");
    if s.parse::<f32>() != Ok(v) {
        s = format!("{v:?}");
    }
    s
}

/// Parse a CSV produced by [`to_csv`].
///
/// # Errors
///
/// Returns [`FrameError::Corrupt`] on structural problems; the feature
/// width is inferred from the header.
pub fn from_csv(text: &str) -> Result<LoanFrame, FrameError> {
    let mut lines = text.lines();
    let header = lines.next().ok_or(FrameError::Corrupt("missing header"))?;
    let columns: Vec<&str> = header.split(',').collect();
    if columns.len() < 6 || columns[..5] != ["year", "half", "province", "vehicle", "label"] {
        return Err(FrameError::Corrupt("unexpected header"));
    }
    let n_features = columns.len() - 5;
    let mut frame = LoanFrame::with_width(n_features);
    let mut features = vec![0.0f32; n_features];
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split(',');
        let mut next = || fields.next().ok_or(FrameError::Corrupt("short row"));
        let year: u16 = parse_field(next()?)?;
        let half: u8 = parse_field(next()?)?;
        let province: u16 = parse_field(next()?)?;
        let vehicle: u8 = parse_field(next()?)?;
        let label: u8 = parse_field(next()?)?;
        for slot in features.iter_mut() {
            let field = fields.next().ok_or(FrameError::Corrupt("short row"))?;
            *slot = field
                .parse::<f32>()
                .map_err(|_| FrameError::Corrupt("bad float"))?;
        }
        if fields.next().is_some() {
            return Err(FrameError::Corrupt("long row"));
        }
        frame.push(&features, year, half, province, vehicle, label)?;
    }
    Ok(frame)
}

fn parse_field<T: std::str::FromStr>(s: &str) -> Result<T, FrameError> {
    s.parse().map_err(|_| FrameError::Corrupt("bad integer"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, GeneratorConfig};

    #[test]
    fn csv_round_trip() {
        let frame = generate(&GeneratorConfig::small(50, 77));
        let schema = Schema::standard();
        let csv = to_csv(&frame, &schema);
        let back = from_csv(&csv).unwrap();
        assert_eq!(frame, back);
    }

    #[test]
    fn header_lists_schema_names() {
        let frame = generate(&GeneratorConfig::small(2, 77));
        let schema = Schema::standard();
        let csv = to_csv(&frame, &schema);
        let header = csv.lines().next().unwrap();
        assert!(header.starts_with("year,half,province,vehicle,label,age,"));
        assert_eq!(header.split(',').count(), 5 + schema.len());
    }

    #[test]
    fn from_csv_rejects_bad_header() {
        assert_eq!(
            from_csv("a,b,c\n").unwrap_err(),
            FrameError::Corrupt("unexpected header")
        );
        assert_eq!(
            from_csv("").unwrap_err(),
            FrameError::Corrupt("missing header")
        );
    }

    #[test]
    fn from_csv_rejects_ragged_rows() {
        let csv = "year,half,province,vehicle,label,f0\n2016,0,1,2,0\n";
        assert_eq!(from_csv(csv).unwrap_err(), FrameError::Corrupt("short row"));
        let csv = "year,half,province,vehicle,label,f0\n2016,0,1,2,0,1.5,9.9\n";
        assert_eq!(from_csv(csv).unwrap_err(), FrameError::Corrupt("long row"));
    }

    #[test]
    fn from_csv_rejects_bad_numbers() {
        let csv = "year,half,province,vehicle,label,f0\nxx,0,1,2,0,1.5\n";
        assert_eq!(
            from_csv(csv).unwrap_err(),
            FrameError::Corrupt("bad integer")
        );
        let csv = "year,half,province,vehicle,label,f0\n2016,0,1,2,0,zz\n";
        assert_eq!(from_csv(csv).unwrap_err(), FrameError::Corrupt("bad float"));
    }

    #[test]
    fn empty_frame_round_trips() {
        let frame = crate::frame::LoanFrame::with_width(3);
        let csv = "year,half,province,vehicle,label,a,b,c\n";
        let back = from_csv(csv).unwrap();
        assert_eq!(frame.len(), back.len());
        assert_eq!(back.n_features(), 3);
    }

    #[test]
    fn float_formatting_round_trips_tricky_values() {
        for v in [0.1f32, 1e-20, 3.4e38, -0.0, 123_456.79] {
            let s = format_f32(v);
            assert_eq!(s.parse::<f32>().unwrap(), v, "{v} via {s}");
        }
    }
}
