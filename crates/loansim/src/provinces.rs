//! Province catalog: the environments of the LightMIRM paper.
//!
//! Each province carries the knobs the generative model needs:
//!
//! - a transaction-share weight per year (Guangdong's share halves in 2020,
//!   reproducing the covariate shift of paper Fig. 10);
//! - a base default-logit offset (provinces differ in baseline risk);
//! - a spurious-coupling strength (how strongly the label leaks into the
//!   spurious feature block during training years — the mechanism ERM
//!   exploits and IRM resists);
//! - a feature-distribution offset (underrepresented provinces such as
//!   Xinjiang have shifted applicant profiles, paper Fig. 1);
//! - a COVID shock applied in 2020-H1 (largest in Hubei, paper Fig. 11).

use serde::{Deserialize, Serialize};

/// Identifier of a province (index into [`ProvinceCatalog::provinces`]).
pub type ProvinceId = u16;

/// Static description of one province environment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Province {
    /// Human-readable name, e.g. `"Guangdong"`.
    pub name: &'static str,
    /// Transaction-share weight for 2016–2019 (unnormalized).
    pub weight_pre2020: f64,
    /// Transaction-share weight for 2020 (unnormalized).
    pub weight_2020: f64,
    /// Base default-logit offset: positive means riskier portfolio.
    pub base_logit: f64,
    /// Spurious coupling γ_e during 2016–2019: the label shifts the
    /// spurious feature block by `γ_e` standard deviations. Varies by
    /// province, which is exactly the across-environment instability IRM
    /// detects.
    pub spurious_gamma: f64,
    /// Mean offset applied to the applicant feature block (covariate shift
    /// for underrepresented provinces).
    pub feature_shift: f64,
    /// Additional default-logit shock in 2020 H1 (COVID).
    pub covid_shock_h1: f64,
    /// Residual shock in 2020 H2 (recovery).
    pub covid_shock_h2: f64,
}

/// The full catalog of provinces used by the simulator.
#[derive(Debug, Clone)]
pub struct ProvinceCatalog {
    provinces: Vec<Province>,
}

impl ProvinceCatalog {
    /// The default catalog: 28 provinces mirroring the paper's setting.
    ///
    /// Weight and risk values are synthetic but shaped to reproduce the
    /// paper's qualitative facts: Guangdong dominant pre-2020 and halved in
    /// 2020 (Fig. 10); Xinjiang tiny, shifted, and hard (Fig. 1); Hubei hit
    /// by a large 2020-H1 shock that mostly recovers in H2 (Fig. 11);
    /// Heilongjiang a low-risk, well-modelled province (Fig. 1's dark end).
    pub fn standard() -> Self {
        // (name, w_pre, w_2020, base_logit, gamma, feat_shift, covid_h1, covid_h2)
        type Row = (&'static str, f64, f64, f64, f64, f64, f64, f64);
        const P: &[Row] = &[
            ("Guangdong", 0.140, 0.070, -0.10, 1.60, 0.00, 0.25, 0.05),
            ("Jiangsu", 0.090, 0.100, -0.20, 1.35, 0.05, 0.20, 0.05),
            ("Shandong", 0.080, 0.090, 0.00, 1.20, 0.00, 0.20, 0.05),
            ("Zhejiang", 0.070, 0.080, -0.25, 1.45, 0.05, 0.20, 0.05),
            ("Henan", 0.070, 0.080, 0.15, 1.05, -0.05, 0.25, 0.05),
            ("Sichuan", 0.060, 0.070, 0.10, 1.00, 0.00, 0.20, 0.05),
            ("Hebei", 0.050, 0.055, 0.10, 0.90, -0.05, 0.20, 0.05),
            ("Hunan", 0.050, 0.055, 0.05, 1.10, 0.00, 0.25, 0.05),
            ("Hubei", 0.050, 0.045, 0.05, 1.05, 0.00, 1.40, 0.15),
            ("Anhui", 0.050, 0.055, 0.10, 0.85, -0.05, 0.20, 0.05),
            ("Fujian", 0.040, 0.045, -0.15, 1.25, 0.05, 0.20, 0.05),
            ("Shaanxi", 0.030, 0.035, 0.15, 0.70, -0.10, 0.20, 0.05),
            ("Liaoning", 0.030, 0.030, 0.25, 0.60, -0.10, 0.20, 0.05),
            ("Jiangxi", 0.030, 0.035, 0.10, 0.80, -0.05, 0.20, 0.05),
            ("Guangxi", 0.030, 0.035, 0.20, 0.55, -0.10, 0.20, 0.05),
            ("Yunnan", 0.030, 0.030, 0.25, 0.40, -0.15, 0.20, 0.05),
            ("Shanxi", 0.020, 0.022, 0.20, 0.55, -0.10, 0.20, 0.05),
            ("Chongqing", 0.020, 0.022, 0.05, 0.95, 0.00, 0.25, 0.05),
            ("Guizhou", 0.020, 0.020, 0.30, 0.35, -0.15, 0.20, 0.05),
            ("Heilongjiang", 0.020, 0.018, -0.30, 1.15, 0.05, 0.15, 0.05),
            ("Jilin", 0.015, 0.014, 0.10, 0.65, -0.05, 0.15, 0.05),
            ("Gansu", 0.012, 0.012, 0.35, 0.25, -0.20, 0.20, 0.05),
            ("InnerMongolia", 0.012, 0.012, 0.20, 0.40, -0.15, 0.15, 0.05),
            ("Tianjin", 0.010, 0.010, -0.10, 1.10, 0.05, 0.20, 0.05),
            ("Xinjiang", 0.006, 0.006, 0.45, 0.10, -0.35, 0.20, 0.05),
            ("Ningxia", 0.004, 0.004, 0.35, 0.15, -0.25, 0.20, 0.05),
            ("Qinghai", 0.003, 0.003, 0.40, 0.12, -0.30, 0.20, 0.05),
            ("Hainan", 0.003, 0.003, 0.15, 0.60, -0.10, 0.25, 0.05),
        ];
        let provinces = P
            .iter()
            .map(
                |&(name, w_pre, w_2020, base, gamma, shift, h1, h2)| Province {
                    name,
                    weight_pre2020: w_pre,
                    weight_2020: w_2020,
                    base_logit: base,
                    spurious_gamma: gamma,
                    feature_shift: shift,
                    covid_shock_h1: h1,
                    covid_shock_h2: h2,
                },
            )
            .collect();
        ProvinceCatalog { provinces }
    }

    /// A reduced catalog with the first `n` provinces of the standard one
    /// (weights renormalize implicitly). Useful for small tests and for
    /// benchmark sweeps over the number of environments `M`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds the standard catalog size.
    pub fn truncated(n: usize) -> Self {
        let std = Self::standard();
        assert!(n >= 1 && n <= std.provinces.len(), "1 <= n <= 28 required");
        ProvinceCatalog {
            provinces: std.provinces[..n].to_vec(),
        }
    }

    /// Number of provinces (the paper's `M`).
    pub fn len(&self) -> usize {
        self.provinces.len()
    }

    /// Whether the catalog is empty (never true for built-in catalogs).
    pub fn is_empty(&self) -> bool {
        self.provinces.is_empty()
    }

    /// All provinces in id order.
    pub fn provinces(&self) -> &[Province] {
        &self.provinces
    }

    /// Look up a province by id.
    pub fn get(&self, id: ProvinceId) -> &Province {
        &self.provinces[id as usize]
    }

    /// Find a province id by name.
    pub fn id_of(&self, name: &str) -> Option<ProvinceId> {
        self.provinces
            .iter()
            .position(|p| p.name == name)
            .map(|i| i as ProvinceId)
    }

    /// Province names in id order (for reports).
    pub fn names(&self) -> Vec<String> {
        self.provinces.iter().map(|p| p.name.to_string()).collect()
    }

    /// Sampling weights (normalized) for the given year.
    pub fn weights_for_year(&self, year: u16) -> Vec<f64> {
        let raw: Vec<f64> = self
            .provinces
            .iter()
            .map(|p| {
                if year >= 2020 {
                    p.weight_2020
                } else {
                    p.weight_pre2020
                }
            })
            .collect();
        let total: f64 = raw.iter().sum();
        raw.into_iter().map(|w| w / total).collect()
    }

    /// The default-logit shock for a province in a given (year, half).
    /// `half` is 0 for January–June, 1 for July–December.
    pub fn covid_shock(&self, id: ProvinceId, year: u16, half: u8) -> f64 {
        if year != 2020 {
            return 0.0;
        }
        let p = self.get(id);
        if half == 0 {
            p.covid_shock_h1
        } else {
            p.covid_shock_h2
        }
    }

    /// The spurious coupling for a province in a given year. During
    /// training years the coupling is the province's `spurious_gamma`; in
    /// 2020 the coupling partially collapses (channel/policy changes), and
    /// it collapses *more* in provinces whose transaction share dropped —
    /// the same business restructuring that halved Guangdong's share
    /// (Fig. 10) also broke its channel correlations, which is what makes
    /// its 2020 slice genuinely out-of-distribution (Table V).
    pub fn spurious_gamma(&self, id: ProvinceId, year: u16) -> f64 {
        let p = self.get(id);
        if year >= 2020 {
            let share_ratio = (p.weight_2020 / p.weight_pre2020).min(1.0);
            0.60 * share_ratio * p.spurious_gamma
        } else {
            p.spurious_gamma
        }
    }

    /// Half-year-aware spurious coupling: during the 2020-H1 COVID shock
    /// the dealer/channel pipelines are disrupted in proportion to the
    /// province's shock, collapsing the coupling further (Hubei most,
    /// Fig. 11); H2 reverts to the year-level coupling.
    pub fn spurious_gamma_at(&self, id: ProvinceId, year: u16, half: u8) -> f64 {
        let base = self.spurious_gamma(id, year);
        if year != 2020 {
            return base;
        }
        let p = self.get(id);
        if half == 0 {
            // Channels disrupted in proportion to the province's shock.
            base * (1.0 - (p.covid_shock_h1 / 1.5).min(0.9))
        } else {
            // H2: the rebound restores old channel patterns in proportion
            // to how sharply the shock receded — Hubei's pre-pandemic
            // correlations "roll back" (paper §IV-F1), so an ERM model
            // shines there again while the shifted provinces stay shifted.
            let recovery = ((p.covid_shock_h1 - p.covid_shock_h2) / 1.5).clamp(0.0, 1.0);
            base + (p.spurious_gamma - base) * recovery
        }
    }

    /// How much the COVID shock dilutes the *feature-dependence* of
    /// defaults: during the shock, borrowers default for exogenous reasons,
    /// so the risk score explains less of the outcome (a concept shift
    /// that lowers every model's KS in the affected slice, Fig. 11).
    /// Returns a factor in `[0, 0.5]` by which the risk term is shrunk.
    pub fn risk_dilution(&self, id: ProvinceId, year: u16, half: u8) -> f64 {
        if year != 2020 {
            return 0.0;
        }
        let p = self.get(id);
        let shock = if half == 0 {
            p.covid_shock_h1
        } else {
            p.covid_shock_h2
        };
        (shock * 0.32).min(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_catalog_has_28_provinces() {
        let c = ProvinceCatalog::standard();
        assert_eq!(c.len(), 28);
        assert!(!c.is_empty());
    }

    #[test]
    fn names_are_unique() {
        let c = ProvinceCatalog::standard();
        let mut names: Vec<_> = c.provinces().iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), c.len());
    }

    #[test]
    fn guangdong_share_halves_in_2020() {
        let c = ProvinceCatalog::standard();
        let gd = c.id_of("Guangdong").unwrap();
        let pre = c.weights_for_year(2018)[gd as usize];
        let post = c.weights_for_year(2020)[gd as usize];
        assert!(
            post < 0.6 * pre,
            "Guangdong share should roughly halve: pre={pre:.4} post={post:.4}"
        );
    }

    #[test]
    fn weights_normalize() {
        let c = ProvinceCatalog::standard();
        for year in [2016u16, 2019, 2020] {
            let s: f64 = c.weights_for_year(year).iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "year {year} sums to {s}");
        }
    }

    #[test]
    fn xinjiang_is_underrepresented_and_shifted() {
        let c = ProvinceCatalog::standard();
        let xj = c.id_of("Xinjiang").unwrap();
        let w = c.weights_for_year(2018)[xj as usize];
        assert!(w < 0.01, "Xinjiang weight {w} should be tiny");
        assert!(c.get(xj).feature_shift < -0.2);
        assert!(c.get(xj).base_logit > 0.3);
    }

    #[test]
    fn hubei_covid_shock_spikes_in_h1_recovers_in_h2() {
        let c = ProvinceCatalog::standard();
        let hb = c.id_of("Hubei").unwrap();
        let h1 = c.covid_shock(hb, 2020, 0);
        let h2 = c.covid_shock(hb, 2020, 1);
        assert!(h1 > 1.0);
        assert!(h2 < 0.3);
        assert_eq!(c.covid_shock(hb, 2019, 0), 0.0);
        // Hubei's H1 shock dwarfs everyone else's.
        for (i, p) in c.provinces().iter().enumerate() {
            if p.name != "Hubei" {
                assert!(c.covid_shock(i as ProvinceId, 2020, 0) < 0.5);
            }
        }
    }

    #[test]
    fn spurious_coupling_collapses_in_2020() {
        let c = ProvinceCatalog::standard();
        for id in 0..c.len() as ProvinceId {
            let train = c.spurious_gamma(id, 2017);
            let test = c.spurious_gamma(id, 2020);
            assert!(test.abs() < 0.65 * train.abs() + 1e-12);
        }
    }

    #[test]
    fn spurious_coupling_varies_across_provinces() {
        // IRM can only detect instability if gamma differs across envs.
        let c = ProvinceCatalog::standard();
        let gammas: Vec<f64> = (0..c.len() as ProvinceId)
            .map(|id| c.spurious_gamma(id, 2017))
            .collect();
        let min = gammas.iter().cloned().fold(f64::MAX, f64::min);
        let max = gammas.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max - min > 0.5, "gamma spread {min}..{max} too small");
    }

    #[test]
    fn truncated_keeps_prefix() {
        let c = ProvinceCatalog::truncated(5);
        assert_eq!(c.len(), 5);
        assert_eq!(c.get(0).name, "Guangdong");
        let s: f64 = c.weights_for_year(2018).iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "1 <= n <= 28")]
    fn truncated_rejects_oversize() {
        let _ = ProvinceCatalog::truncated(99);
    }

    #[test]
    fn id_of_unknown_is_none() {
        assert!(ProvinceCatalog::standard().id_of("Atlantis").is_none());
    }
}
