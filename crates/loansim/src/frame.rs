//! Columnar-ish storage for generated loan records.
//!
//! [`LoanFrame`] keeps the dense feature matrix row-major (generation and
//! prediction are row-wise; the GBDT crate re-bins into its own columnar
//! layout) and the metadata columns (year, half, province, vehicle, label)
//! as separate typed vectors — the usual hybrid layout of analytic stores.

use crate::schema::NUM_FEATURES;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// A batch of loan records with aligned metadata columns.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LoanFrame {
    n_features: usize,
    /// Row-major `n_rows × n_features` feature matrix.
    features: Vec<f32>,
    /// Application year, e.g. 2016..=2020.
    pub year: Vec<u16>,
    /// Half of the year: 0 = Jan–Jun, 1 = Jul–Dec.
    pub half: Vec<u8>,
    /// Province (environment) id.
    pub province: Vec<u16>,
    /// Vehicle type code (see [`crate::schema::VehicleType`]).
    pub vehicle: Vec<u8>,
    /// Default label: 1 = the customer failed to repay.
    pub label: Vec<u8>,
}

/// Errors from frame operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// A row had the wrong number of features.
    BadRowWidth { expected: usize, got: usize },
    /// Deserialization found a malformed buffer.
    Corrupt(&'static str),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadRowWidth { expected, got } => {
                write!(f, "row has {got} features, schema expects {expected}")
            }
            FrameError::Corrupt(what) => write!(f, "corrupt frame buffer: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl LoanFrame {
    /// An empty frame with the standard 210-feature width.
    pub fn new() -> Self {
        Self::with_width(NUM_FEATURES)
    }

    /// An empty frame with a custom feature width (tests, reduced worlds).
    pub fn with_width(n_features: usize) -> Self {
        LoanFrame {
            n_features,
            features: Vec::new(),
            year: Vec::new(),
            half: Vec::new(),
            province: Vec::new(),
            vehicle: Vec::new(),
            label: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.year.len()
    }

    /// Whether the frame holds no rows.
    pub fn is_empty(&self) -> bool {
        self.year.is_empty()
    }

    /// Feature width per row.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Append a record.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::BadRowWidth`] when `features` does not match
    /// the frame width.
    pub fn push(
        &mut self,
        features: &[f32],
        year: u16,
        half: u8,
        province: u16,
        vehicle: u8,
        label: u8,
    ) -> Result<(), FrameError> {
        if features.len() != self.n_features {
            return Err(FrameError::BadRowWidth {
                expected: self.n_features,
                got: features.len(),
            });
        }
        self.features.extend_from_slice(features);
        self.year.push(year);
        self.half.push(half);
        self.province.push(province);
        self.vehicle.push(vehicle);
        self.label.push(label);
        Ok(())
    }

    /// The feature row at `row`.
    pub fn row(&self, row: usize) -> &[f32] {
        let start = row * self.n_features;
        &self.features[start..start + self.n_features]
    }

    /// The whole row-major feature matrix.
    pub fn feature_matrix(&self) -> &[f32] {
        &self.features
    }

    /// One feature column, gathered into a fresh vector.
    pub fn column(&self, col: usize) -> Vec<f32> {
        assert!(col < self.n_features, "column {col} out of range");
        (0..self.len())
            .map(|r| self.features[r * self.n_features + col])
            .collect()
    }

    /// A new frame containing only the selected row indices, in order.
    pub fn select(&self, rows: &[usize]) -> LoanFrame {
        let mut out = LoanFrame::with_width(self.n_features);
        out.features.reserve(rows.len() * self.n_features);
        for &r in rows {
            out.features.extend_from_slice(self.row(r));
            out.year.push(self.year[r]);
            out.half.push(self.half[r]);
            out.province.push(self.province[r]);
            out.vehicle.push(self.vehicle[r]);
            out.label.push(self.label[r]);
        }
        out
    }

    /// Row indices matching a predicate over `(year, half, province)`.
    pub fn filter_rows(&self, mut pred: impl FnMut(u16, u8, u16) -> bool) -> Vec<usize> {
        (0..self.len())
            .filter(|&r| pred(self.year[r], self.half[r], self.province[r]))
            .collect()
    }

    /// Add `delta` to the given feature columns of every row matching a
    /// predicate over `(year, half, province)` — the controlled covariate
    /// shift used by the drift and adaptation replays. Returns how many
    /// rows were shifted.
    pub fn shift_features(
        &mut self,
        mut pred: impl FnMut(u16, u8, u16) -> bool,
        columns: &[usize],
        delta: f32,
    ) -> usize {
        for &c in columns {
            assert!(c < self.n_features, "column {c} out of range");
        }
        let mut shifted = 0;
        for r in 0..self.len() {
            if pred(self.year[r], self.half[r], self.province[r]) {
                for &c in columns {
                    self.features[r * self.n_features + c] += delta;
                }
                shifted += 1;
            }
        }
        shifted
    }

    /// Append all rows of `other` (must have the same width).
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::BadRowWidth`] on width mismatch.
    pub fn append(&mut self, other: &LoanFrame) -> Result<(), FrameError> {
        if other.n_features != self.n_features {
            return Err(FrameError::BadRowWidth {
                expected: self.n_features,
                got: other.n_features,
            });
        }
        self.features.extend_from_slice(&other.features);
        self.year.extend_from_slice(&other.year);
        self.half.extend_from_slice(&other.half);
        self.province.extend_from_slice(&other.province);
        self.vehicle.extend_from_slice(&other.vehicle);
        self.label.extend_from_slice(&other.label);
        Ok(())
    }

    /// Empirical default rate over all rows (`NaN` on empty frames).
    pub fn default_rate(&self) -> f64 {
        let pos = self.label.iter().filter(|&&y| y != 0).count();
        pos as f64 / self.len() as f64
    }

    /// Serialize to a compact binary buffer (little-endian, versioned).
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(
            16 + self.features.len() * 4 + self.len() * (2 + 1 + 2 + 1 + 1),
        );
        buf.put_u32_le(FRAME_MAGIC);
        buf.put_u16_le(FRAME_VERSION);
        buf.put_u32_le(self.n_features as u32);
        buf.put_u64_le(self.len() as u64);
        for &f in &self.features {
            buf.put_f32_le(f);
        }
        for &y in &self.year {
            buf.put_u16_le(y);
        }
        buf.put_slice(&self.half);
        for &p in &self.province {
            buf.put_u16_le(p);
        }
        buf.put_slice(&self.vehicle);
        buf.put_slice(&self.label);
        buf.freeze()
    }

    /// Deserialize a buffer produced by [`LoanFrame::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::Corrupt`] on magic/version/length mismatches.
    pub fn from_bytes(mut buf: Bytes) -> Result<Self, FrameError> {
        if buf.remaining() < 18 {
            return Err(FrameError::Corrupt("header truncated"));
        }
        if buf.get_u32_le() != FRAME_MAGIC {
            return Err(FrameError::Corrupt("bad magic"));
        }
        if buf.get_u16_le() != FRAME_VERSION {
            return Err(FrameError::Corrupt("unsupported version"));
        }
        let n_features = buf.get_u32_le() as usize;
        let n_rows = buf.get_u64_le() as usize;
        let need = n_rows * n_features * 4 + n_rows * (2 + 1 + 2 + 1 + 1);
        if buf.remaining() != need {
            return Err(FrameError::Corrupt("payload length mismatch"));
        }
        let mut frame = LoanFrame::with_width(n_features);
        frame.features = (0..n_rows * n_features).map(|_| buf.get_f32_le()).collect();
        frame.year = (0..n_rows).map(|_| buf.get_u16_le()).collect();
        frame.half = (0..n_rows).map(|_| buf.get_u8()).collect();
        frame.province = (0..n_rows).map(|_| buf.get_u16_le()).collect();
        frame.vehicle = (0..n_rows).map(|_| buf.get_u8()).collect();
        frame.label = (0..n_rows).map(|_| buf.get_u8()).collect();
        Ok(frame)
    }
}

const FRAME_MAGIC: u32 = 0x4C4F_414E; // "LOAN"
const FRAME_VERSION: u16 = 1;

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_frame() -> LoanFrame {
        let mut f = LoanFrame::with_width(3);
        f.push(&[1.0, 2.0, 3.0], 2016, 0, 5, 1, 0).unwrap();
        f.push(&[4.0, 5.0, 6.0], 2020, 1, 7, 3, 1).unwrap();
        f.push(&[7.0, 8.0, 9.0], 2018, 0, 5, 0, 1).unwrap();
        f
    }

    #[test]
    fn push_and_row_access() {
        let f = tiny_frame();
        assert_eq!(f.len(), 3);
        assert_eq!(f.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(f.n_features(), 3);
    }

    #[test]
    fn shift_features_targets_matching_rows_and_columns_only() {
        let mut f = tiny_frame();
        let shifted = f.shift_features(|_, _, p| p == 5, &[0, 2], 10.0);
        assert_eq!(shifted, 2);
        assert_eq!(f.row(0), &[11.0, 2.0, 13.0]);
        assert_eq!(f.row(1), &[4.0, 5.0, 6.0]); // province 7: untouched
        assert_eq!(f.row(2), &[17.0, 8.0, 19.0]);
    }

    #[test]
    #[should_panic(expected = "column 9 out of range")]
    fn shift_features_rejects_out_of_range_columns() {
        let mut f = tiny_frame();
        f.shift_features(|_, _, _| true, &[9], 1.0);
    }

    #[test]
    fn push_rejects_bad_width() {
        let mut f = LoanFrame::with_width(3);
        let err = f.push(&[1.0], 2016, 0, 0, 0, 0).unwrap_err();
        assert_eq!(
            err,
            FrameError::BadRowWidth {
                expected: 3,
                got: 1
            }
        );
    }

    #[test]
    fn column_gathers_strided_values() {
        let f = tiny_frame();
        assert_eq!(f.column(1), vec![2.0, 5.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn column_out_of_range_panics() {
        let _ = tiny_frame().column(3);
    }

    #[test]
    fn select_preserves_metadata_alignment() {
        let f = tiny_frame();
        let g = f.select(&[2, 0]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.row(0), &[7.0, 8.0, 9.0]);
        assert_eq!(g.year, vec![2018, 2016]);
        assert_eq!(g.label, vec![1, 0]);
        assert_eq!(g.province, vec![5, 5]);
    }

    #[test]
    fn filter_rows_by_predicate() {
        let f = tiny_frame();
        let rows = f.filter_rows(|year, _, _| year < 2020);
        assert_eq!(rows, vec![0, 2]);
        let rows = f.filter_rows(|_, half, _| half == 1);
        assert_eq!(rows, vec![1]);
    }

    #[test]
    fn append_concatenates() {
        let mut a = tiny_frame();
        let b = tiny_frame();
        a.append(&b).unwrap();
        assert_eq!(a.len(), 6);
        assert_eq!(a.row(4), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn append_rejects_width_mismatch() {
        let mut a = tiny_frame();
        let b = LoanFrame::with_width(2);
        assert!(a.append(&b).is_err());
    }

    #[test]
    fn default_rate() {
        let f = tiny_frame();
        assert!((f.default_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn bytes_round_trip() {
        let f = tiny_frame();
        let buf = f.to_bytes();
        let g = LoanFrame::from_bytes(buf).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn bytes_round_trip_empty() {
        let f = LoanFrame::with_width(4);
        let g = LoanFrame::from_bytes(f.to_bytes()).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn from_bytes_rejects_bad_magic() {
        let mut raw = BytesMut::new();
        raw.put_u32_le(0xDEADBEEF);
        raw.put_u16_le(1);
        raw.put_u32_le(0);
        raw.put_u64_le(0);
        assert_eq!(
            LoanFrame::from_bytes(raw.freeze()).unwrap_err(),
            FrameError::Corrupt("bad magic")
        );
    }

    #[test]
    fn from_bytes_rejects_truncation() {
        let f = tiny_frame();
        let buf = f.to_bytes();
        let truncated = buf.slice(0..buf.len() - 1);
        assert!(LoanFrame::from_bytes(truncated).is_err());
    }

    #[test]
    fn from_bytes_rejects_wrong_version() {
        let f = LoanFrame::with_width(1);
        let mut raw = BytesMut::from(&f.to_bytes()[..]);
        raw[4] = 99; // version low byte
        assert_eq!(
            LoanFrame::from_bytes(raw.freeze()).unwrap_err(),
            FrameError::Corrupt("unsupported version")
        );
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn round_trip_any_frame(
                rows in proptest::collection::vec(
                    (proptest::collection::vec(-1e3f32..1e3, 4),
                     2015u16..2021, 0u8..2, 0u16..30, 0u8..6, 0u8..2),
                    0..20,
                )
            ) {
                let mut f = LoanFrame::with_width(4);
                for (feat, y, h, p, v, l) in &rows {
                    f.push(feat, *y, *h, *p, *v, *l).unwrap();
                }
                let g = LoanFrame::from_bytes(f.to_bytes()).unwrap();
                prop_assert_eq!(f, g);
            }

            #[test]
            fn select_then_len(rows in 1usize..20) {
                let mut f = LoanFrame::with_width(2);
                for i in 0..rows {
                    f.push(&[i as f32, 0.0], 2016, 0, 0, 0, 0).unwrap();
                }
                let idx: Vec<usize> = (0..rows).rev().collect();
                let g = f.select(&idx);
                prop_assert_eq!(g.len(), rows);
                prop_assert_eq!(g.row(0)[0], (rows - 1) as f32);
            }
        }
    }
}
