//! Feature schema of the synthetic loan dataset.
//!
//! The paper's dataset has 210-dimensional raw features drawn from three
//! groups: basic applicant information, information from banks, and other
//! (vehicle/contract) information. We mirror that layout with a fixed,
//! named 210-column schema:
//!
//! | block | columns | content |
//! |---|---|---|
//! | applicant | 0..40 | age, income, employment, household, … |
//! | bank | 40..80 | credit score, defaults, utilization, … |
//! | vehicle | 80..110 | vehicle type/price/term/down payment, … |
//! | spurious | 110..140 | channel/promo codes coupled to the label per province |
//! | noise | 140..210 | pure noise (realistic irrelevant columns) |

use serde::{Deserialize, Serialize};

/// Total number of raw feature columns — matches the paper's 210.
pub const NUM_FEATURES: usize = 210;

/// Column ranges of each feature block.
pub const APPLICANT_RANGE: std::ops::Range<usize> = 0..40;
/// Bank-sourced features.
pub const BANK_RANGE: std::ops::Range<usize> = 40..80;
/// Vehicle/contract features.
pub const VEHICLE_RANGE: std::ops::Range<usize> = 80..110;
/// Spurious, province-coupled channel features.
pub const SPURIOUS_RANGE: std::ops::Range<usize> = 110..140;
/// Pure-noise columns.
pub const NOISE_RANGE: std::ops::Range<usize> = 140..210;

/// Semantic group of a feature column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureGroup {
    /// Basic applicant information (age, income, …).
    Applicant,
    /// Information from banks (credit records, …).
    Bank,
    /// Vehicle and contract information.
    Vehicle,
    /// Channel features that are spuriously coupled to the label.
    Spurious,
    /// Irrelevant noise columns.
    Noise,
}

/// Metadata for one feature column.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeatureDef {
    /// Column index in the raw feature matrix.
    pub index: usize,
    /// Column name, unique within the schema.
    pub name: String,
    /// Semantic group.
    pub group: FeatureGroup,
}

/// The fixed 210-column schema.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Schema {
    features: Vec<FeatureDef>,
}

impl Schema {
    /// Build the standard 210-column schema.
    pub fn standard() -> Self {
        let mut features = Vec::with_capacity(NUM_FEATURES);
        let named_applicant = [
            "age",
            "monthly_income",
            "employment_years",
            "num_dependents",
            "education_level",
            "occupation_code",
            "marital_status",
            "residence_type",
            "city_tier",
            "has_mortgage",
        ];
        let named_bank = [
            "credit_score",
            "num_past_defaults",
            "num_credit_lines",
            "credit_utilization",
            "months_since_delinquency",
            "total_debt",
            "debt_to_income",
            "num_credit_inquiries",
            "savings_balance",
            "has_credit_card",
        ];
        let named_vehicle = [
            "vehicle_type",
            "vehicle_price",
            "down_payment_ratio",
            "loan_term_months",
            "is_used_vehicle",
            "vehicle_age_years",
            "monthly_installment",
            "dealer_tier",
        ];
        for i in 0..NUM_FEATURES {
            let (group, name) = if APPLICANT_RANGE.contains(&i) {
                let k = i - APPLICANT_RANGE.start;
                let name = named_applicant
                    .get(k)
                    .map(|s| s.to_string())
                    .unwrap_or_else(|| format!("applicant_attr_{k:02}"));
                (FeatureGroup::Applicant, name)
            } else if BANK_RANGE.contains(&i) {
                let k = i - BANK_RANGE.start;
                let name = named_bank
                    .get(k)
                    .map(|s| s.to_string())
                    .unwrap_or_else(|| format!("bank_attr_{k:02}"));
                (FeatureGroup::Bank, name)
            } else if VEHICLE_RANGE.contains(&i) {
                let k = i - VEHICLE_RANGE.start;
                let name = named_vehicle
                    .get(k)
                    .map(|s| s.to_string())
                    .unwrap_or_else(|| format!("vehicle_attr_{k:02}"));
                (FeatureGroup::Vehicle, name)
            } else if SPURIOUS_RANGE.contains(&i) {
                let k = i - SPURIOUS_RANGE.start;
                (FeatureGroup::Spurious, format!("channel_code_{k:02}"))
            } else {
                let k = i - NOISE_RANGE.start;
                (FeatureGroup::Noise, format!("misc_attr_{k:02}"))
            };
            features.push(FeatureDef {
                index: i,
                name,
                group,
            });
        }
        Schema { features }
    }

    /// All feature definitions in column order.
    pub fn features(&self) -> &[FeatureDef] {
        &self.features
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the schema is empty (never for the standard schema).
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Look up a column index by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.features.iter().position(|f| f.name == name)
    }

    /// Column indices belonging to a group.
    pub fn group_indices(&self, group: FeatureGroup) -> Vec<usize> {
        self.features
            .iter()
            .filter(|f| f.group == group)
            .map(|f| f.index)
            .collect()
    }
}

/// Vehicle types sold on the platform; their mix drifts by year (paper
/// Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum VehicleType {
    Sedan = 0,
    Suv = 1,
    Mpv = 2,
    TrailerTruck = 3,
    LightTruck = 4,
    UsedCar = 5,
}

impl VehicleType {
    /// All vehicle types, discriminant order.
    pub const ALL: [VehicleType; 6] = [
        VehicleType::Sedan,
        VehicleType::Suv,
        VehicleType::Mpv,
        VehicleType::TrailerTruck,
        VehicleType::LightTruck,
        VehicleType::UsedCar,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            VehicleType::Sedan => "Sedan",
            VehicleType::Suv => "SUV",
            VehicleType::Mpv => "MPV",
            VehicleType::TrailerTruck => "TrailerTruck",
            VehicleType::LightTruck => "LightTruck",
            VehicleType::UsedCar => "UsedCar",
        }
    }

    /// Decode from the `u8` stored in the frame.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range codes — frame columns are produced only by
    /// this crate, so that indicates corruption.
    pub fn from_code(code: u8) -> Self {
        Self::ALL[code as usize]
    }

    /// The unnormalized mix weight of this vehicle type in a given year,
    /// modulated by how economically developed the province is
    /// (`develop` in roughly `[-0.4, 0.1]`, the province `feature_shift`).
    ///
    /// The mix drifts year over year: SUVs rise at the expense of sedans,
    /// used cars grow in less developed provinces, and trailer trucks
    /// concentrate in trade-heavy (developed) provinces — the patterns
    /// paper Fig. 4 and §IV-B describe.
    pub fn mix_weight(self, year: u16, develop: f64) -> f64 {
        let t = (year.clamp(2015, 2020) - 2015) as f64; // 0..5
        let w = match self {
            VehicleType::Sedan => 0.40 - 0.03 * t,
            VehicleType::Suv => 0.20 + 0.03 * t,
            VehicleType::Mpv => 0.10,
            VehicleType::TrailerTruck => 0.10 + 0.25 * (develop + 0.2).max(0.0),
            VehicleType::LightTruck => 0.08,
            VehicleType::UsedCar => 0.12 + 0.4 * (-develop).max(0.0) + 0.01 * t,
        };
        w.max(0.01)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_has_210_columns() {
        let s = Schema::standard();
        assert_eq!(s.len(), NUM_FEATURES);
        assert!(!s.is_empty());
    }

    #[test]
    fn schema_names_are_unique() {
        let s = Schema::standard();
        let mut names: Vec<&str> = s.features().iter().map(|f| f.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NUM_FEATURES);
    }

    #[test]
    fn schema_indices_are_sequential() {
        let s = Schema::standard();
        for (i, f) in s.features().iter().enumerate() {
            assert_eq!(f.index, i);
        }
    }

    #[test]
    fn group_ranges_partition_columns() {
        let s = Schema::standard();
        let total: usize = [
            FeatureGroup::Applicant,
            FeatureGroup::Bank,
            FeatureGroup::Vehicle,
            FeatureGroup::Spurious,
            FeatureGroup::Noise,
        ]
        .iter()
        .map(|&g| s.group_indices(g).len())
        .sum();
        assert_eq!(total, NUM_FEATURES);
        assert_eq!(s.group_indices(FeatureGroup::Spurious).len(), 30);
        assert_eq!(s.group_indices(FeatureGroup::Noise).len(), 70);
    }

    #[test]
    fn named_columns_resolve() {
        let s = Schema::standard();
        assert_eq!(s.index_of("age"), Some(0));
        assert_eq!(s.index_of("credit_score"), Some(40));
        assert_eq!(s.index_of("vehicle_type"), Some(80));
        assert_eq!(s.index_of("nonexistent"), None);
    }

    #[test]
    fn vehicle_codes_round_trip() {
        for v in VehicleType::ALL {
            assert_eq!(VehicleType::from_code(v as u8), v);
        }
    }

    #[test]
    fn suv_share_rises_and_sedan_falls() {
        let early = VehicleType::Suv.mix_weight(2016, 0.0);
        let late = VehicleType::Suv.mix_weight(2020, 0.0);
        assert!(late > early);
        let sedan_early = VehicleType::Sedan.mix_weight(2016, 0.0);
        let sedan_late = VehicleType::Sedan.mix_weight(2020, 0.0);
        assert!(sedan_late < sedan_early);
    }

    #[test]
    fn trailer_trucks_concentrate_in_developed_provinces() {
        let developed = VehicleType::TrailerTruck.mix_weight(2018, 0.05);
        let backward = VehicleType::TrailerTruck.mix_weight(2018, -0.35);
        assert!(developed > backward);
    }

    #[test]
    fn used_cars_concentrate_in_less_developed_provinces() {
        let developed = VehicleType::UsedCar.mix_weight(2018, 0.05);
        let backward = VehicleType::UsedCar.mix_weight(2018, -0.35);
        assert!(backward > developed);
    }

    #[test]
    fn mix_weights_positive() {
        for v in VehicleType::ALL {
            for year in 2015..=2020 {
                for &d in &[-0.4, 0.0, 0.1] {
                    assert!(v.mix_weight(year, d) > 0.0);
                }
            }
        }
    }
}
