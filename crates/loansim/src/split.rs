//! Train/test splitting strategies used in the paper's evaluation.
//!
//! - [`temporal_split`] — the paper's main setting: train on 2016–2019,
//!   test on 2020 (covariate + concept shift between the two).
//! - [`random_split`] — the i.i.d. setting of Table VI.
//! - [`province_rows`], [`half_year_rows`] — slicing helpers for the
//!   special-province analyses (Guangdong, Hubei H1/H2).

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::frame::LoanFrame;

/// A train/test pair of frames.
#[derive(Debug, Clone)]
pub struct Split {
    pub train: LoanFrame,
    pub test: LoanFrame,
}

/// Split by year boundary: rows with `year < test_year` train, rows with
/// `year == test_year` test. Rows after `test_year` are dropped.
pub fn temporal_split(frame: &LoanFrame, test_year: u16) -> Split {
    let train_rows = frame.filter_rows(|y, _, _| y < test_year);
    let test_rows = frame.filter_rows(|y, _, _| y == test_year);
    Split {
        train: frame.select(&train_rows),
        test: frame.select(&test_rows),
    }
}

/// Shuffle rows with the seeded RNG and split at `train_fraction`.
///
/// # Panics
///
/// Panics unless `0.0 < train_fraction < 1.0`.
pub fn random_split(frame: &LoanFrame, train_fraction: f64, seed: u64) -> Split {
    assert!(
        train_fraction > 0.0 && train_fraction < 1.0,
        "train_fraction must be in (0, 1)"
    );
    let mut rows: Vec<usize> = (0..frame.len()).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    rows.shuffle(&mut rng);
    let cut = ((frame.len() as f64) * train_fraction).round() as usize;
    Split {
        train: frame.select(&rows[..cut]),
        test: frame.select(&rows[cut..]),
    }
}

/// Row indices of one province.
pub fn province_rows(frame: &LoanFrame, province: u16) -> Vec<usize> {
    frame.filter_rows(|_, _, p| p == province)
}

/// Row indices of one `(year, half)` slice of one province.
pub fn half_year_rows(frame: &LoanFrame, province: u16, year: u16, half: u8) -> Vec<usize> {
    frame.filter_rows(|y, h, p| p == province && y == year && h == half)
}

/// Group row indices by province id; index `i` of the result holds the
/// rows of province `i` (empty vectors for absent provinces).
pub fn rows_by_province(frame: &LoanFrame, n_provinces: usize) -> Vec<Vec<usize>> {
    let mut groups = vec![Vec::new(); n_provinces];
    for r in 0..frame.len() {
        let p = frame.province[r] as usize;
        assert!(p < n_provinces, "province id {p} out of catalog range");
        groups[p].push(r);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, GeneratorConfig};

    fn sample() -> LoanFrame {
        generate(&GeneratorConfig::small(5000, 31))
    }

    #[test]
    fn temporal_split_partitions_years() {
        let f = sample();
        let s = temporal_split(&f, 2020);
        assert!(s.train.year.iter().all(|&y| y < 2020));
        assert!(s.test.year.iter().all(|&y| y == 2020));
        assert_eq!(s.train.len() + s.test.len(), f.len());
    }

    #[test]
    fn temporal_split_drops_future_years() {
        let f = sample();
        let s = temporal_split(&f, 2019);
        assert!(s.train.year.iter().all(|&y| y < 2019));
        assert!(s.test.year.iter().all(|&y| y == 2019));
        assert!(s.train.len() + s.test.len() < f.len());
    }

    #[test]
    fn random_split_sizes() {
        let f = sample();
        let s = random_split(&f, 0.8, 1);
        assert_eq!(s.train.len(), 4000);
        assert_eq!(s.test.len(), 1000);
    }

    #[test]
    fn random_split_is_seeded() {
        let f = sample();
        let a = random_split(&f, 0.5, 9);
        let b = random_split(&f, 0.5, 9);
        assert_eq!(a.train, b.train);
        let c = random_split(&f, 0.5, 10);
        assert_ne!(a.train, c.train);
    }

    #[test]
    #[should_panic(expected = "train_fraction")]
    fn random_split_rejects_bad_fraction() {
        let f = sample();
        let _ = random_split(&f, 1.0, 0);
    }

    #[test]
    fn random_split_mixes_years() {
        let f = sample();
        let s = random_split(&f, 0.8, 2);
        // i.i.d. setting: 2020 rows appear in train too.
        assert!(s.train.year.contains(&2020));
        assert!(s.test.year.iter().any(|&y| y < 2020));
    }

    #[test]
    fn province_rows_filters() {
        let f = sample();
        let rows = province_rows(&f, 0);
        assert!(!rows.is_empty());
        assert!(rows.iter().all(|&r| f.province[r] == 0));
    }

    #[test]
    fn half_year_rows_filters() {
        let f = generate(&GeneratorConfig::small(50_000, 37));
        let rows = half_year_rows(&f, 8, 2020, 0); // Hubei H1 2020
        assert!(!rows.is_empty());
        for &r in &rows {
            assert_eq!(f.province[r], 8);
            assert_eq!(f.year[r], 2020);
            assert_eq!(f.half[r], 0);
        }
    }

    #[test]
    fn rows_by_province_partitions() {
        let f = sample();
        let groups = rows_by_province(&f, 28);
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, f.len());
        for (pid, rows) in groups.iter().enumerate() {
            for &r in rows {
                assert_eq!(f.province[r] as usize, pid);
            }
        }
    }
}
