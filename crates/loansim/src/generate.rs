//! The causal generative model behind the synthetic loan platform.
//!
//! Each record is produced by the following structural model (DESIGN.md §2
//! explains why this preserves the paper's comparisons):
//!
//! 1. Draw `(year, half)` and a province `e` by the year's transaction-share
//!    weights ([`crate::provinces`]), then a vehicle type by the drifting
//!    mix ([`crate::schema::VehicleType::mix_weight`]).
//! 2. Draw latent creditworthiness `u ~ N(μ_e, 1)` and income stability
//!    `s ~ N(0, 1)`. Underrepresented provinces have lower `μ_e`
//!    (covariate shift).
//! 3. Fill the applicant/bank/vehicle blocks as noisy nonlinear views of
//!    `(u, s)` — these are the *invariant* features: their relationship to
//!    default is identical in every province and every year.
//! 4. Compute the default logit
//!    `η = intercept + base_e + covid(e, year, half) + risk(u, s, contract)`
//!    and draw `y ~ Bernoulli(σ(η))`.
//! 5. Fill the spurious channel block *anti-causally*:
//!    `x_j = a_j · γ_e(year) · (2y−1) + ε`. The coupling `γ_e` differs per
//!    province during 2016–2019 (large provinces have strong couplings) and
//!    collapses in 2020 — a shortcut that helps ERM in-distribution and
//!    betrays it out-of-distribution, while varying across environments so
//!    IRM can detect and discard it.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::frame::LoanFrame;
use crate::provinces::ProvinceCatalog;
use crate::rng::{poisson, randn, sample_weighted, sigmoid};
use crate::schema::{
    Schema, VehicleType, APPLICANT_RANGE, BANK_RANGE, NOISE_RANGE, NUM_FEATURES, SPURIOUS_RANGE,
    VEHICLE_RANGE,
};

/// Configuration of the generator.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Total number of records to generate.
    pub rows: usize,
    /// RNG seed; equal configs with equal seeds produce identical frames.
    pub seed: u64,
    /// Years to generate and their relative volumes. Defaults to
    /// 2016–2020 with equal volumes (the paper trains on 2016–2019 and
    /// tests on 2020).
    pub year_weights: Vec<(u16, f64)>,
    /// Province catalog (the environments).
    pub catalog: ProvinceCatalog,
    /// Global multiplier on the spurious couplings; `0.0` removes the
    /// shortcut entirely (useful in ablations).
    pub spurious_scale: f64,
    /// Global intercept of the default logit; more negative means fewer
    /// defaults. The default of `-2.9` yields roughly an 8–12 % default
    /// rate depending on province.
    pub intercept: f64,
    /// Probability that any individual applicant/bank/vehicle feature cell
    /// is missing (`NaN`), as on a real platform where bureau pulls and
    /// form fields fail. `0.0` (default) disables missingness. The label
    /// process always sees the true values — missingness is an
    /// observation defect, not a causal one.
    pub missing_rate: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            rows: 100_000,
            seed: 7,
            year_weights: vec![
                (2016, 1.0),
                (2017, 1.0),
                (2018, 1.0),
                (2019, 1.0),
                (2020, 1.0),
            ],
            catalog: ProvinceCatalog::standard(),
            spurious_scale: 1.0,
            intercept: -2.9,
            missing_rate: 0.0,
        }
    }
}

impl GeneratorConfig {
    /// A small config for tests: `rows` records, standard world.
    pub fn small(rows: usize, seed: u64) -> Self {
        GeneratorConfig {
            rows,
            seed,
            ..Default::default()
        }
    }
}

/// Per-column loading of the spurious block: column `j` moves by
/// `SPURIOUS_LOADING[j] · γ_e · (2y−1)` standard deviations. The loadings
/// decay so the aggregate shortcut is informative but not dominant.
fn spurious_loading(j: usize) -> f64 {
    0.42 / (1.0 + j as f64 * 0.40)
}

/// Generate a full dataset under the config.
///
/// Deterministic: the same config (including seed) produces a bit-identical
/// [`LoanFrame`]. For platform-scale datasets that should not be held in
/// memory at once, use [`RecordStream`] — its chunks concatenate to
/// exactly this frame.
pub fn generate(config: &GeneratorConfig) -> LoanFrame {
    let mut stream = RecordStream::new(config.clone());
    stream.next_chunk(config.rows).unwrap_or_default()
}

/// A resumable, chunked generator: the paper's platform processes 1.4 M
/// records, which need not be materialized at once. Chunks drawn from one
/// stream concatenate bit-identically to [`generate`]'s output for the
/// same config.
#[derive(Debug, Clone)]
pub struct RecordStream {
    config: GeneratorConfig,
    rng: ChaCha8Rng,
    remaining: usize,
    years: Vec<u16>,
    year_w: Vec<f64>,
    province_w: Vec<Vec<f64>>,
}

impl RecordStream {
    /// Open a stream over the config's `rows` records.
    pub fn new(config: GeneratorConfig) -> Self {
        let rng = ChaCha8Rng::seed_from_u64(config.seed);
        let years: Vec<u16> = config.year_weights.iter().map(|&(y, _)| y).collect();
        let year_w: Vec<f64> = config.year_weights.iter().map(|&(_, w)| w).collect();
        let province_w: Vec<Vec<f64>> = years
            .iter()
            .map(|&y| config.catalog.weights_for_year(y))
            .collect();
        let remaining = config.rows;
        RecordStream {
            config,
            rng,
            remaining,
            years,
            year_w,
            province_w,
        }
    }

    /// Records not yet emitted.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Produce the next up-to-`n` records; `None` once exhausted.
    pub fn next_chunk(&mut self, n: usize) -> Option<LoanFrame> {
        if self.remaining == 0 {
            return None;
        }
        let take = n.min(self.remaining);
        self.remaining -= take;
        let mut frame = LoanFrame::new();
        let mut features = vec![0.0f32; NUM_FEATURES];
        for _ in 0..take {
            let yi = sample_weighted(&mut self.rng, &self.year_w);
            let year = self.years[yi];
            let half = self.rng.gen_range(0..2u8);
            let province = sample_weighted(&mut self.rng, &self.province_w[yi]) as u16;
            let record = generate_record(
                &self.config,
                &mut self.rng,
                year,
                half,
                province,
                &mut features,
            );
            frame
                .push(
                    &features,
                    year,
                    half,
                    province,
                    record.vehicle as u8,
                    record.label,
                )
                .expect("generator always emits full-width rows");
        }
        Some(frame)
    }
}

struct RecordMeta {
    vehicle: VehicleType,
    label: u8,
}

/// Generate a single record in-place into `features`.
fn generate_record(
    config: &GeneratorConfig,
    rng: &mut ChaCha8Rng,
    year: u16,
    half: u8,
    province: u16,
    features: &mut [f32],
) -> RecordMeta {
    let p = config.catalog.get(province);
    let develop = p.feature_shift;

    // Vehicle type follows the drifting, province-modulated mix.
    let mix: Vec<f64> = VehicleType::ALL
        .iter()
        .map(|v| v.mix_weight(year, develop))
        .collect();
    let vehicle = VehicleType::ALL[sample_weighted(rng, &mix)];

    // Latents: creditworthiness u and income stability s. Covariate shift
    // enters through the province mean of u.
    let u = randn(rng) + 0.6 * develop;
    let s = randn(rng);

    // ---- applicant block -------------------------------------------------
    let age = (32.0 + 9.0 * randn(rng)).clamp(20.0, 62.0);
    let income = (8.6 + 0.45 * u + 0.35 * develop + 0.22 * randn(rng)).exp();
    let employment_years = (2.0 + 1.8 * (u + 1.0).max(0.0) + randn(rng).abs()).min(30.0);
    let dependents = poisson(rng, 1.2) as f64;
    let education = sample_weighted(
        rng,
        &[
            1.0,
            2.0 + develop.max(0.0) * 3.0,
            2.0,
            1.0 + develop.max(0.0) * 4.0,
            0.5,
        ],
    ) as f64;
    let occupation = rng.gen_range(0..10) as f64;
    let marital = rng.gen_range(0..4) as f64;
    let residence = rng.gen_range(0..3) as f64;
    let city_tier = (2.0 - 2.0 * develop + 0.8 * randn(rng))
        .clamp(1.0, 5.0)
        .round();
    let has_mortgage = (rng.gen::<f64>() < sigmoid(0.4 * u - 0.2)) as u8 as f64;
    let applicant_named = [
        age,
        income,
        employment_years,
        dependents,
        education,
        occupation,
        marital,
        residence,
        city_tier,
        has_mortgage,
    ];
    for (k, idx) in APPLICANT_RANGE.enumerate() {
        features[idx] = if k < applicant_named.len() {
            applicant_named[k] as f32
        } else {
            // Weakly informative filler: faint views of the latents.
            (0.15 * u + 0.10 * s + 0.05 * develop + randn(rng)) as f32
        };
    }

    // ---- bank block -------------------------------------------------------
    let credit_score = (620.0 + 70.0 * u + 12.0 * randn(rng)).clamp(300.0, 850.0);
    let past_defaults = poisson(rng, (0.25 - 0.55 * u).exp().min(8.0)) as f64;
    let credit_lines = (1.0 + poisson(rng, 2.0) as f64).min(15.0);
    let utilization = sigmoid(0.2 - 0.7 * u + 0.4 * randn(rng));
    let months_since_delinq =
        (6.0 + 14.0 * (u + 1.2).max(0.0) + 4.0 * randn(rng)).clamp(0.0, 120.0);
    let total_debt = (7.5 - 0.35 * u + 0.45 * randn(rng)).exp();
    let dti = sigmoid(-0.7 * u - 0.4 * s + 0.35 * randn(rng));
    let inquiries = poisson(rng, (0.6 - 0.3 * u).exp().min(6.0)) as f64;
    let savings = (6.0 + 0.8 * u + 0.5 * s + 0.6 * randn(rng)).exp();
    let has_card = (rng.gen::<f64>() < sigmoid(0.8 * u + 0.5)) as u8 as f64;
    let bank_named = [
        credit_score,
        past_defaults,
        credit_lines,
        utilization,
        months_since_delinq,
        total_debt,
        dti,
        inquiries,
        savings,
        has_card,
    ];
    for (k, idx) in BANK_RANGE.enumerate() {
        features[idx] = if k < bank_named.len() {
            bank_named[k] as f32
        } else {
            (0.18 * u + 0.08 * s + randn(rng)) as f32
        };
    }

    // ---- vehicle block ----------------------------------------------------
    let base_price = match vehicle {
        VehicleType::Sedan => 10.5,
        VehicleType::Suv => 11.0,
        VehicleType::Mpv => 10.8,
        VehicleType::TrailerTruck => 11.8,
        VehicleType::LightTruck => 10.9,
        VehicleType::UsedCar => 9.8,
    };
    let vehicle_price = (base_price + 0.25 * u + 0.15 * develop + 0.25 * randn(rng)).exp();
    let down_payment_ratio = (0.25 + 0.08 * u + 0.05 * randn(rng)).clamp(0.10, 0.60);
    let loan_term = *[24.0f64, 36.0, 48.0, 60.0]
        .get(sample_weighted(rng, &[1.0, 3.0, 3.0, 1.5]))
        .expect("4 weights");
    let is_used = matches!(vehicle, VehicleType::UsedCar) as u8 as f64;
    let vehicle_age = if is_used > 0.0 {
        (1.0 + 4.0 * rng.gen::<f64>()).round()
    } else {
        0.0
    };
    let installment = vehicle_price * (1.0 - down_payment_ratio) / loan_term;
    let dealer_tier = rng.gen_range(1..4) as f64;
    let vehicle_named = [
        vehicle as u8 as f64,
        vehicle_price,
        down_payment_ratio,
        loan_term,
        is_used,
        vehicle_age,
        installment,
        dealer_tier,
    ];
    for (k, idx) in VEHICLE_RANGE.enumerate() {
        features[idx] = if k < vehicle_named.len() {
            vehicle_named[k] as f32
        } else {
            (0.1 * develop + randn(rng)) as f32
        };
    }

    // ---- default label ----------------------------------------------------
    let vehicle_risk = match vehicle {
        VehicleType::UsedCar => 0.30,
        VehicleType::TrailerTruck => 0.20,
        VehicleType::LightTruck => 0.10,
        _ => 0.0,
    };
    let risk = -1.70 * u - 0.70 * s - 2.2 * (down_payment_ratio - 0.25)
        + 0.9 * (dti - 0.5)
        + 0.4 * (utilization - 0.5)
        + 0.012 * (installment / 180.0 - 1.0)
        + vehicle_risk;
    // During the COVID shock, defaults decouple from the risk features
    // (exogenous income loss): the risk slope is diluted while the
    // intercept shock raises the base rate.
    let dilution = config.catalog.risk_dilution(province, year, half);
    let eta = config.intercept
        + p.base_logit
        + config.catalog.covid_shock(province, year, half)
        + (1.0 - dilution) * risk;
    let label = (rng.gen::<f64>() < sigmoid(eta)) as u8;

    // ---- spurious block (anti-causal, env-coupled) -------------------------
    let gamma = config.spurious_scale * config.catalog.spurious_gamma_at(province, year, half);
    let dir = if label == 1 { 1.0 } else { -1.0 };
    for (j, idx) in SPURIOUS_RANGE.enumerate() {
        features[idx] = (spurious_loading(j) * gamma * dir + randn(rng)) as f32;
    }

    // ---- noise block --------------------------------------------------------
    for idx in NOISE_RANGE {
        features[idx] = randn(rng) as f32;
    }

    // ---- observation defects -------------------------------------------------
    if config.missing_rate > 0.0 {
        // Only the observed applicant/bank/vehicle blocks can go missing;
        // the platform always knows its own channel codes.
        for idx in APPLICANT_RANGE.chain(BANK_RANGE).chain(VEHICLE_RANGE) {
            if rng.gen::<f64>() < config.missing_rate {
                features[idx] = f32::NAN;
            }
        }
    }

    RecordMeta { vehicle, label }
}

/// Convenience: generate and return both the frame and its schema.
pub fn generate_with_schema(config: &GeneratorConfig) -> (LoanFrame, Schema) {
    (generate(config), Schema::standard())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> LoanFrame {
        generate(&GeneratorConfig::small(4000, 11))
    }

    #[test]
    fn generator_is_deterministic() {
        let a = generate(&GeneratorConfig::small(500, 3));
        let b = generate(&GeneratorConfig::small(500, 3));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&GeneratorConfig::small(200, 3));
        let b = generate(&GeneratorConfig::small(200, 4));
        assert_ne!(a, b);
    }

    #[test]
    fn rows_and_width_match_config() {
        let f = small();
        assert_eq!(f.len(), 4000);
        assert_eq!(f.n_features(), NUM_FEATURES);
    }

    #[test]
    fn default_rate_is_moderate() {
        let rate = small().default_rate();
        assert!(
            (0.03..0.25).contains(&rate),
            "default rate {rate} out of the plausible band"
        );
    }

    #[test]
    fn all_years_and_provinces_appear() {
        let f = generate(&GeneratorConfig::small(20_000, 5));
        for y in 2016..=2020u16 {
            assert!(f.year.contains(&y), "missing year {y}");
        }
        // The big provinces must all appear at this sample size.
        for pid in 0..10u16 {
            assert!(f.province.contains(&pid), "missing province {pid}");
        }
    }

    #[test]
    fn features_are_finite() {
        let f = small();
        for r in 0..f.len() {
            for &v in f.row(r) {
                assert!(v.is_finite());
            }
        }
    }

    #[test]
    fn guangdong_share_declines_in_2020() {
        let f = generate(&GeneratorConfig::small(60_000, 9));
        let cat = ProvinceCatalog::standard();
        let gd = cat.id_of("Guangdong").unwrap();
        let share = |year: u16| {
            let total = f.year.iter().filter(|&&y| y == year).count() as f64;
            let in_gd = (0..f.len())
                .filter(|&r| f.year[r] == year && f.province[r] == gd)
                .count() as f64;
            in_gd / total
        };
        assert!(
            share(2020) < 0.65 * share(2018),
            "2018 {:.3} vs 2020 {:.3}",
            share(2018),
            share(2020)
        );
    }

    #[test]
    fn hubei_default_rate_spikes_in_2020_h1() {
        let f = generate(&GeneratorConfig::small(200_000, 13));
        let cat = ProvinceCatalog::standard();
        let hb = cat.id_of("Hubei").unwrap();
        let rate = |year: u16, half: u8| {
            let rows: Vec<usize> = f.filter_rows(|y, h, p| y == year && h == half && p == hb);
            let pos = rows.iter().filter(|&&r| f.label[r] != 0).count() as f64;
            pos / rows.len() as f64
        };
        let pre = rate(2019, 0);
        let h1 = rate(2020, 0);
        let h2 = rate(2020, 1);
        assert!(
            h1 > 1.35 * pre,
            "H1 2020 {h1:.3} should spike above {pre:.3}"
        );
        assert!(h2 < 0.7 * h1, "H2 2020 {h2:.3} should recover from {h1:.3}");
    }

    #[test]
    fn spurious_block_separates_labels_in_training_years() {
        let f = generate(&GeneratorConfig::small(30_000, 17));
        // Mean of the first spurious column conditioned on the label,
        // restricted to a high-gamma province (Guangdong=0) pre-2020.
        let col = SPURIOUS_RANGE.start;
        let mut pos = (0.0, 0usize);
        let mut neg = (0.0, 0usize);
        for r in 0..f.len() {
            if f.province[r] == 0 && f.year[r] < 2020 {
                let v = f.row(r)[col] as f64;
                if f.label[r] != 0 {
                    pos = (pos.0 + v, pos.1 + 1);
                } else {
                    neg = (neg.0 + v, neg.1 + 1);
                }
            }
        }
        let gap = pos.0 / pos.1 as f64 - neg.0 / neg.1 as f64;
        assert!(gap > 0.5, "spurious gap {gap} should be strong pre-2020");
    }

    #[test]
    fn spurious_block_collapses_in_2020() {
        let f = generate(&GeneratorConfig::small(60_000, 17));
        let col = SPURIOUS_RANGE.start;
        let gap_for = |want_2020: bool| {
            let mut pos = (0.0, 0usize);
            let mut neg = (0.0, 0usize);
            for r in 0..f.len() {
                if (f.year[r] == 2020) == want_2020 {
                    let v = f.row(r)[col] as f64;
                    if f.label[r] != 0 {
                        pos = (pos.0 + v, pos.1 + 1);
                    } else {
                        neg = (neg.0 + v, neg.1 + 1);
                    }
                }
            }
            pos.0 / pos.1 as f64 - neg.0 / neg.1 as f64
        };
        let train_gap = gap_for(false);
        let test_gap = gap_for(true);
        assert!(
            test_gap.abs() < 0.55 * train_gap.abs(),
            "2020 spurious gap {test_gap} should collapse well below the training gap {train_gap}"
        );
    }

    #[test]
    fn spurious_scale_zero_removes_coupling() {
        let mut cfg = GeneratorConfig::small(30_000, 19);
        cfg.spurious_scale = 0.0;
        let f = generate(&cfg);
        let col = SPURIOUS_RANGE.start;
        let mut pos = (0.0, 0usize);
        let mut neg = (0.0, 0usize);
        for r in 0..f.len() {
            let v = f.row(r)[col] as f64;
            if f.label[r] != 0 {
                pos = (pos.0 + v, pos.1 + 1);
            } else {
                neg = (neg.0 + v, neg.1 + 1);
            }
        }
        let gap = pos.0 / pos.1 as f64 - neg.0 / neg.1 as f64;
        assert!(gap.abs() < 0.1, "gap {gap} should vanish at scale 0");
    }

    #[test]
    fn underrepresented_provinces_have_higher_default_rates() {
        let f = generate(&GeneratorConfig::small(200_000, 23));
        let cat = ProvinceCatalog::standard();
        let rate = |name: &str| {
            let id = cat.id_of(name).unwrap();
            let rows = f.filter_rows(|y, _, p| p == id && y < 2020);
            let pos = rows.iter().filter(|&&r| f.label[r] != 0).count() as f64;
            pos / rows.len() as f64
        };
        assert!(rate("Xinjiang") > rate("Heilongjiang") + 0.02);
    }

    #[test]
    fn missingness_injects_nans_only_in_observed_blocks() {
        let mut cfg = GeneratorConfig::small(4000, 83);
        cfg.missing_rate = 0.05;
        let f = generate(&cfg);
        let mut nan_observed = 0usize;
        let mut total_observed = 0usize;
        for r in 0..f.len() {
            let row = f.row(r);
            for idx in APPLICANT_RANGE.chain(BANK_RANGE).chain(VEHICLE_RANGE) {
                total_observed += 1;
                if row[idx].is_nan() {
                    nan_observed += 1;
                }
            }
            for idx in SPURIOUS_RANGE.chain(NOISE_RANGE) {
                assert!(!row[idx].is_nan(), "platform-side blocks never go missing");
            }
        }
        let rate = nan_observed as f64 / total_observed as f64;
        assert!(
            (0.04..0.06).contains(&rate),
            "observed missing rate {rate} should be near 5%"
        );
    }

    #[test]
    fn zero_missing_rate_produces_no_nans() {
        let f = generate(&GeneratorConfig::small(500, 83));
        for r in 0..f.len() {
            assert!(f.row(r).iter().all(|v| !v.is_nan()));
        }
    }

    #[test]
    fn chunked_stream_concatenates_to_generate() {
        let cfg = GeneratorConfig::small(1000, 91);
        let whole = generate(&cfg);
        let mut stream = RecordStream::new(cfg);
        let mut rebuilt = LoanFrame::new();
        while let Some(chunk) = stream.next_chunk(137) {
            rebuilt.append(&chunk).unwrap();
        }
        assert_eq!(whole, rebuilt);
        assert_eq!(stream.remaining(), 0);
        assert!(stream.next_chunk(10).is_none());
    }

    #[test]
    fn stream_chunk_sizes_respect_request() {
        let mut stream = RecordStream::new(GeneratorConfig::small(10, 3));
        assert_eq!(stream.next_chunk(4).unwrap().len(), 4);
        assert_eq!(stream.remaining(), 6);
        assert_eq!(stream.next_chunk(100).unwrap().len(), 6);
        assert!(stream.next_chunk(1).is_none());
    }

    #[test]
    fn custom_year_weights_restrict_years() {
        let cfg = GeneratorConfig {
            rows: 2000,
            seed: 3,
            year_weights: vec![(2018, 1.0), (2019, 3.0)],
            ..Default::default()
        };
        let f = generate(&cfg);
        assert!(f.year.iter().all(|&y| y == 2018 || y == 2019));
        let n2019 = f.year.iter().filter(|&&y| y == 2019).count() as f64;
        let share = n2019 / f.len() as f64;
        assert!(
            (0.70..0.80).contains(&share),
            "2019 share {share} should be ~75%"
        );
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(12))]
            #[test]
            fn generated_metadata_is_always_in_range(
                rows in 50usize..400,
                seed in 0u64..50,
                spurious in 0.0f64..2.0,
            ) {
                let cfg = GeneratorConfig {
                    rows,
                    seed,
                    spurious_scale: spurious,
                    ..Default::default()
                };
                let f = generate(&cfg);
                prop_assert_eq!(f.len(), rows);
                for r in 0..f.len() {
                    prop_assert!((2016..=2020).contains(&f.year[r]));
                    prop_assert!(f.half[r] <= 1);
                    prop_assert!((f.province[r] as usize) < cfg.catalog.len());
                    prop_assert!(f.vehicle[r] < 6);
                    prop_assert!(f.label[r] <= 1);
                    prop_assert!(f.row(r).iter().all(|v| v.is_finite()));
                }
            }

            #[test]
            fn stream_prefix_matches_generate_prefix(
                rows in 20usize..200,
                chunk in 1usize..64,
                seed in 0u64..20,
            ) {
                let cfg = GeneratorConfig { rows, seed, ..Default::default() };
                let whole = generate(&cfg);
                let mut stream = RecordStream::new(cfg);
                let first = stream.next_chunk(chunk).expect("rows > 0");
                let prefix_rows: Vec<usize> = (0..first.len()).collect();
                prop_assert_eq!(whole.select(&prefix_rows), first);
            }
        }
    }

    #[test]
    fn credit_score_is_anticorrelated_with_default() {
        let f = generate(&GeneratorConfig::small(30_000, 29));
        let col = BANK_RANGE.start; // credit_score
        let mut pos = (0.0, 0usize);
        let mut neg = (0.0, 0usize);
        for r in 0..f.len() {
            let v = f.row(r)[col] as f64;
            if f.label[r] != 0 {
                pos = (pos.0 + v, pos.1 + 1);
            } else {
                neg = (neg.0 + v, neg.1 + 1);
            }
        }
        assert!(
            neg.0 / neg.1 as f64 > pos.0 / pos.1 as f64 + 10.0,
            "defaulters should have visibly lower credit scores"
        );
    }
}
